(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6) on the simulated substrate, printing the same rows and
   series the paper reports (actual vs synthetic plus error percentages),
   followed by Bechamel micro-benchmarks of the simulation kernels.

     dune exec bench/main.exe            # all experiments
     dune exec bench/main.exe table1 fig5 errors
     dune exec bench/main.exe micro      # Bechamel only

   The experiment -> module mapping is documented in DESIGN.md; measured
   results are recorded against the paper in EXPERIMENTS.md.

   The harness is multicore: apps are profiled and cloned concurrently on a
   Ditto_util.Pool (DITTO_DOMAINS domains; DITTO_DOMAINS=1 pins the
   sequential schedule, with identical output). `--json FILE` additionally
   records per-experiment wall-clock, the error summary, the tuner
   trajectory and the clone-accuracy scorecards for tracking performance
   across PRs; `--trace FILE` turns on self-tracing and writes a Chrome
   trace-event file (FILE) plus a Jaeger export (FILE.jaeger.json, or
   --trace-jaeger FILE).

   Regression gate: `--check` diffs the run's accuracy metrics against the
   committed baseline (bench/baselines/default.json, or --baseline FILE)
   and exits 1 if any error worsened past its tolerance;
   `--update-baselines` rewrites the baseline from the current run;
   `--check-json FILE` gates a previously saved --json document without
   re-running any simulation. `--apps a,b` restricts the registry-wide
   experiments (fig5/fig7/fig8/errors/ablation/scorecards) to those apps.
   `--chaos` (or the `chaos` experiment name) additionally validates each
   app under the three canonical fault plans and records failure-fidelity
   metrics in the --json document's "chaos" section. *)

open Ditto_app
module Pipeline = Ditto_core.Pipeline
module Registry = Ditto_apps.Registry
module Platform = Ditto_uarch.Platform
module Counters = Ditto_uarch.Counters
module Table = Ditto_util.Table
module Stats = Ditto_util.Stats
module Obs = Ditto_obs.Obs

let fmt = Printf.sprintf
let ms x = fmt "%.3f" (1e3 *. x)
let pct x = fmt "%.2f%%" (100.0 *. x)
let banner title = Printf.printf "\n================ %s ================\n%!" title

(* Shorter DES windows than production runs keep the full harness in
   minutes; shapes are stable at these durations. *)
let duration = 0.6
let wall = Unix.gettimeofday

(* {1 Clone cache: each app is profiled and cloned once, at medium load}

   Cloning the registry is the dominant cost of the harness and every app
   is independent, so [preclone] submits one future per requested clone on
   the shared domain pool — longest-processing-time first, so the slowest
   clone starts earliest — and chains each app's medium-load validation
   behind its clone. Experiments then [await] exactly the clone they need
   instead of a barrier over the whole batch. [get_clone] stays as the
   sequential fallback for names cloned outside a preclone pass. *)

let pool = Ditto_util.Pool.default ()

(* --apps filter: restricts the registry-wide experiments. Entries accept
   '*' globs (e.g. --apps 'synth-*'), and any pattern naming an extra
   (synth graphs, DeathStarBench ports) pulls it into the run. *)
let apps_filter : string list option ref = ref None

let glob_match pattern name =
  let np = String.length pattern and nn = String.length name in
  (* backtracking wildcard match; patterns are tiny *)
  let rec go p n star_p star_n =
    if n = nn then
      if p = np then true
      else if pattern.[p] = '*' then go (p + 1) n star_p star_n
      else false
    else if p < np && pattern.[p] = '*' then go (p + 1) n (Some p) n
    else if p < np && pattern.[p] = name.[n] then go (p + 1) (n + 1) star_p star_n
    else
      match star_p with
      | Some sp -> go (sp + 1) (star_n + 1) star_p (star_n + 1)
      | None -> false
  in
  go 0 0 None (-1)

let registry_entries () =
  match !apps_filter with
  | None -> Registry.all
  | Some pats ->
      List.filter
        (fun (e : Registry.entry) -> List.exists (fun p -> glob_match p e.Registry.name) pats)
        (Registry.all @ Registry.extras)

let clones : (string, Service.load * Pipeline.clone_result) Hashtbl.t = Hashtbl.create 8
let clone_secs : (string * float) list ref = ref []

let clone_one name =
  let entry = Registry.by_name name in
  let _, med, _ = entry.Registry.loads in
  let load =
    Ditto_loadgen.Workload.to_load entry.Registry.workload ~qps:med ~duration ()
  in
  let t0 = wall () in
  let result =
    Obs.Span.with_span ~name:"bench.clone" ~attrs:[ ("app", Obs.Str name) ] (fun () ->
        Pipeline.clone ~pool ~platform:Platform.a ~load (entry.Registry.spec ()))
  in
  (name, load, result, wall () -. t0)

let report_clone (name, _load, result, secs) =
  clone_secs := (name, secs) :: !clone_secs;
  Printf.printf "[clone] %s profiled+generated+tuned in %.1fs%s\n%!" name secs
    (match result.Pipeline.tuning with
    | Some r ->
        fmt " (tuning: %d iters, K=%d, best worst-error %.1f%%)"
          (List.length r.Ditto_tune.Tuner.iterations)
          r.Ditto_tune.Tuner.speculation
          (100.
          *. List.fold_left
               (fun a (i : Ditto_tune.Tuner.iteration) ->
                 Float.min a i.Ditto_tune.Tuner.worst_error)
               infinity r.Ditto_tune.Tuner.iterations)
    | None -> "")

(* {1 Validation cache}

   Several experiments validate the same clone under the same (platform,
   load) pair with the default runner config — fig5's medium cell, fig7's
   platform-A cell, fig8's top-down breakdown and the scorecards are all
   the same simulation. Each distinct cell runs once; hits only rewrite
   the comparison's label. Experiments that customise the config (fig10's
   stressors, fig11's core scaling) bypass the cache. *)

let validate_mutex = Mutex.create ()

let validate_cache : (string * string * float * float, Pipeline.comparison) Hashtbl.t =
  Hashtbl.create 32

let validate_cached ~platform ~load ~label result =
  let key =
    ( result.Pipeline.original.Spec.app_name,
      platform.Platform.name,
      load.Service.qps,
      load.Service.duration )
  in
  let cached =
    Mutex.lock validate_mutex;
    let c = Hashtbl.find_opt validate_cache key in
    Mutex.unlock validate_mutex;
    c
  in
  match cached with
  | Some c -> { c with Pipeline.label }
  | None ->
      let c = Pipeline.validate ~pool ~platform ~load ~label result in
      Mutex.lock validate_mutex;
      if not (Hashtbl.mem validate_cache key) then Hashtbl.add validate_cache key c;
      Mutex.unlock validate_mutex;
      c

(* In-flight preclone futures: [get_clone] claims these before falling back
   to cloning inline. *)
type clone_timed = string * Service.load * Pipeline.clone_result * float

let clone_futures : (string, clone_timed Ditto_util.Pool.future) Hashtbl.t = Hashtbl.create 8

let claim_future name =
  match Hashtbl.find_opt clone_futures name with
  | None -> None
  | Some fut ->
      let ((_, load, result, _) as timed) = Ditto_util.Pool.await pool fut in
      Hashtbl.remove clone_futures name;
      report_clone timed;
      Hashtbl.add clones name (load, result);
      Some (load, result)

let get_clone name =
  match Hashtbl.find_opt clones name with
  | Some (load, result) -> (load, result)
  | None -> (
      match claim_future name with
      | Some pair -> pair
      | None ->
          let ((_, load, result, _) as timed) = clone_one name in
          report_clone timed;
          Hashtbl.add clones name (load, result);
          (load, result))

(* Approximate clone cost (seconds at BENCH_4), for longest-processing-time
   scheduling of the preclone futures: submitting the most expensive clone
   first minimises the makespan on a finite pool. Only the order matters,
   so stale figures are harmless. *)
let clone_cost = function
  | "social_network" -> 192.0
  | "mongodb" -> 43.0
  | "memcached" -> 26.0
  | "nginx" -> 18.0
  | "redis" -> 9.0
  | _ -> 30.0

let preclone_secs = ref 0.0

let preclone names =
  let names = List.filter (fun n -> not (Hashtbl.mem clones n)) names in
  if names <> [] then begin
    let t0 = wall () in
    Printf.printf "[clone] cloning %d app(s) on %d domain(s)...\n%!" (List.length names)
      (Ditto_util.Pool.size pool);
    let names =
      List.sort (fun a b -> compare (clone_cost b) (clone_cost a)) names
    in
    Obs.Span.with_span ~name:"bench.preclone"
      ~attrs:
        [ ("apps", Obs.Int (List.length names)); ("domains", Obs.Int (Ditto_util.Pool.size pool)) ]
      (fun () ->
        List.iter
          (fun name ->
            let fut = Ditto_util.Pool.submit pool (fun () -> clone_one name) in
            Hashtbl.replace clone_futures name fut;
            (* DAG edge clone -> validate: the medium-load cell every
               registry-wide experiment reads is warmed as soon as its
               clone lands, without waiting for the other apps. *)
            ignore
              (Ditto_util.Pool.submit pool (fun () ->
                   let _, load, result, _ = Ditto_util.Pool.await pool fut in
                   ignore (validate_cached ~platform:Platform.a ~load ~label:"med" result))))
          names;
        (* Claim every future here so clone wall-clock is attributed to the
           preclone stage, not to whichever experiment touches it first. *)
        List.iter (fun name -> ignore (claim_future name)) names);
    preclone_secs := wall () -. t0
  end

(* {1 E1 error accumulator (fed by fig5)} *)

let error_acc : (string, float list ref) Hashtbl.t = Hashtbl.create 16

let record_errors errs =
  List.iter
    (fun (axis, e) ->
      let r =
        match Hashtbl.find_opt error_acc axis with
        | Some r -> r
        | None ->
            let r = ref [] in
            Hashtbl.add error_acc axis r;
            r
      in
      r := e :: !r)
    errs

(* {1 Table 1} *)

let table1 () =
  banner "Table 1: Server platform specifications";
  Table.print ~title:"Platforms (simulated per Table 1)"
    ~header:[ ""; "Platform A"; "Platform B"; "Platform C" ]
    Platform.table1_rows

(* {1 Figure 5: metrics under varying load} *)

let metric_cells (m : Metrics.t) =
  [
    fmt "%.3f" m.Metrics.ipc;
    pct m.Metrics.branch_miss_rate;
    pct m.Metrics.l1i_miss_rate;
    pct m.Metrics.l1d_miss_rate;
    pct m.Metrics.l2_miss_rate;
    pct m.Metrics.llc_miss_rate;
    fmt "%.1f" m.Metrics.net_mbps;
    fmt "%.1f" m.Metrics.disk_mbps;
    ms m.Metrics.lat_avg;
    ms m.Metrics.lat_p95;
    ms m.Metrics.lat_p99;
  ]

let fig5_header =
  [ "load"; "who"; "IPC"; "Branch"; "L1i"; "L1d"; "L2"; "LLC"; "Net MB/s"; "Dsk MB/s";
    "avg ms"; "p95 ms"; "p99 ms" ]

let fig5_one app_name =
  let entry = Registry.by_name app_name in
  let low, med, high = entry.Registry.loads in
  let _, result = get_clone app_name in
  let rows = ref [] in
  (* The three load points are independent cells: validate them on the
     pool, then print and accumulate errors in deterministic order. *)
  let cells =
    Ditto_util.Pool.map pool
      (fun (label, qps) ->
        let load =
          Ditto_loadgen.Workload.to_load entry.Registry.workload ~qps ~duration ()
        in
        (label, qps, validate_cached ~platform:Platform.a ~load ~label result))
      [ ("low", low); ("med", med); ("high", high) ]
  in
  List.iter
    (fun (label, qps, c) ->
      List.iter
        (fun tier ->
          let actual = List.assoc tier c.Pipeline.actual in
          let synth = List.assoc tier c.Pipeline.synthetic in
          let tl = if List.length entry.Registry.focus_tiers > 1 then "/" ^ tier else "" in
          let name = fmt "%s%s@%.0fk" label tl (qps /. 1000.) in
          rows :=
            (name, "synthetic", metric_cells synth)
            :: (name, "actual", metric_cells actual)
            :: !rows;
          record_errors (Metrics.error_pct ~actual ~synthetic:synth);
          (* Latency errors are accumulated below saturation only: the paper
             itself notes p99 divergence at high load from network-stack
             queueing (and reports §6.2.1 averages for CPU/BW metrics). *)
          if label <> "high" then
            record_errors
              (List.map
                 (fun (a, e) -> ("latency " ^ a, e))
                 (Metrics.latency_error_pct ~actual ~synthetic:synth)))
        entry.Registry.focus_tiers)
    cells;
  Table.print ~title:(fmt "Fig. 5 — %s (profiled at medium load only)" app_name)
    ~header:fig5_header
    (List.rev_map (fun (l, w, cells) -> l :: w :: cells) !rows)

let fig5 () =
  banner "Figure 5: CPU, network, disk and latency under varying load (Platform A)";
  List.iter (fun (e : Registry.entry) -> fig5_one e.Registry.name) (registry_entries ())

(* {1 Figure 6: Social Network end-to-end latency} *)

let fig6 () =
  banner "Figure 6: Social Network end-to-end latency vs QPS";
  let entry = Registry.by_name "social_network" in
  let _, result = get_clone "social_network" in
  let rows =
    Ditto_util.Pool.map pool
      (fun qps ->
        let load =
          Ditto_loadgen.Workload.to_load entry.Registry.workload ~qps ~duration ()
        in
        let c = validate_cached ~platform:Platform.a ~load ~label:(fmt "%.0f" qps) result in
        let a = c.Pipeline.actual_end_to_end and s = c.Pipeline.synthetic_end_to_end in
        (* Whole-distribution agreement, not just percentiles. *)
        let ks = Stats.ks_distance c.Pipeline.actual_raw c.Pipeline.synthetic_raw in
        [
          fmt "%.0f" qps;
          ms a.Stats.p50; ms s.Stats.p50;
          ms a.Stats.p95; ms s.Stats.p95;
          ms a.Stats.p99; ms s.Stats.p99;
          fmt "%.3f" ks;
        ])
      Ditto_apps.Social_network.fig6_qps
  in
  Table.print ~title:"Fig. 6 — end-to-end latency (every tier replaced by its clone)"
    ~header:[ "QPS"; "act p50"; "syn p50"; "act p95"; "syn p95"; "act p99"; "syn p99"; "KS" ]
    rows

(* {1 Figure 7: cross-platform validation (profiled on A only)} *)

let fig7 () =
  banner "Figure 7: portability across platforms (profiled on A, no reprofiling)";
  List.iter
    (fun (entry : Registry.entry) ->
      let _, med, _ = entry.Registry.loads in
      let _, result = get_clone entry.Registry.name in
      let rows = ref [] in
      let cells =
        Ditto_util.Pool.map pool
          (fun (plat : Platform.t) ->
            (* B and C are smaller machines: drive them at a fraction of A's
               medium load, same for original and synthetic. *)
            let qps = if plat.Platform.name = "A" then med else med /. 2.5 in
            let load =
              Ditto_loadgen.Workload.to_load entry.Registry.workload ~qps ~duration ()
            in
            (plat, validate_cached ~platform:plat ~load ~label:plat.Platform.name result))
          [ Platform.a; Platform.b; Platform.c ]
      in
      List.iter
        (fun ((plat : Platform.t), c) ->
          List.iter
            (fun tier ->
              let actual = List.assoc tier c.Pipeline.actual in
              let synth = List.assoc tier c.Pipeline.synthetic in
              let tl = if List.length entry.Registry.focus_tiers > 1 then "/" ^ tier else "" in
              let name = fmt "%s%s" plat.Platform.name tl in
              rows :=
                (name, "synthetic", metric_cells synth)
                :: (name, "actual", metric_cells actual)
                :: !rows)
            entry.Registry.focus_tiers)
        cells;
      Table.print
        ~title:(fmt "Fig. 7 — %s across platforms" entry.Registry.name)
        ~header:fig5_header
        (List.rev_map (fun (l, w, cells) -> l :: w :: cells) !rows))
    (registry_entries ())

(* {1 Figure 8: CPI top-down breakdown} *)

let fig8 () =
  banner "Figure 8: cycles-per-instruction top-down breakdown (A: actual, S: synthetic)";
  let rows = ref [] in
  List.iter
    (fun (entry : Registry.entry) ->
      let load, result = get_clone entry.Registry.name in
      let c = validate_cached ~platform:Platform.a ~load ~label:"topdown" result in
      List.iter
        (fun tier ->
          let show who (m : Metrics.t) =
            let td = Counters.topdown_cpi m.Metrics.counters in
            [
              fmt "%s/%s" tier who;
              fmt "%.3f" (Counters.cpi m.Metrics.counters);
              fmt "%.3f" td.Counters.retiring;
              fmt "%.3f" td.Counters.frontend;
              fmt "%.3f" td.Counters.bad_speculation;
              fmt "%.3f" td.Counters.backend;
            ]
          in
          rows := show "S" (List.assoc tier c.Pipeline.synthetic) :: !rows;
          rows := show "A" (List.assoc tier c.Pipeline.actual) :: !rows)
        entry.Registry.focus_tiers)
    (registry_entries ());
  Table.print ~title:"Fig. 8 — CPI breakdown"
    ~header:[ "service"; "CPI"; "retiring"; "frontend"; "bad spec"; "backend" ]
    (List.rev !rows)

(* {1 Figure 9: accuracy decomposition for MongoDB} *)

let fig9 () =
  banner "Figure 9: IPC/instructions/cycles/p99 as Ditto adds sophistication (MongoDB)";
  let load, result = get_clone "mongodb" in
  let cfg = Runner.config Platform.a in
  let rows = ref [] in
  let add label spec =
    let out = Runner.run cfg ~load spec in
    let m = Runner.tier_metrics out "mongodb" in
    let c = m.Metrics.counters in
    let per_req v = v /. float_of_int (max 1 (List.assoc "mongodb" out.Runner.measured).Measure.requests_measured) in
    rows :=
      [
        label;
        fmt "%.3f" (Counters.ipc c);
        fmt "%.0f" (per_req (float_of_int c.Counters.insts));
        fmt "%.0f" (per_req (Counters.cycles c));
        ms m.Metrics.lat_p99;
      ]
      :: !rows
  in
  add "target (original)" result.Pipeline.original;
  List.iter
    (fun (stage, label) ->
      let features = Ditto_gen.Body_gen.stage stage in
      let synth = Ditto_gen.Clone.synth_app ~features result.Pipeline.profile in
      add (fmt "%c:%s" stage label) synth)
    [
      ('A', "skeleton"); ('B', "+syscalls"); ('C', "+#insts"); ('D', "+inst mix");
      ('E', "+branch"); ('F', "+I-mem"); ('G', "+D-mem"); ('H', "+data dep");
    ];
  add "I:+tune (final clone)" result.Pipeline.synthetic;
  add "user-level baseline" (Ditto_baseline.Userlevel_clone.synth_app result.Pipeline.profile);
  Table.print ~title:"Fig. 9 — decomposition of Ditto's accuracy (MongoDB, medium load)"
    ~header:[ "stage"; "IPC"; "insts/req"; "cycles/req"; "p99 ms" ]
    (List.rev !rows)

(* {1 Figure 10: interference on NGINX} *)

let fig10 () =
  banner "Figure 10: interference impact on NGINX (profiled in isolation)";
  let load, result = get_clone "nginx" in
  let scenarios =
    [
      ("Orig.", fun p -> Runner.config p);
      ( "HT",
        fun p ->
          Runner.config ~stressor:Ditto_apps.Stressors.cpu_spin ~stressor_placement:`Same_core
            ~smt_pressure:0.55 p );
      ( "L1d",
        fun p ->
          Runner.config ~stressor:Ditto_apps.Stressors.l1d ~stressor_placement:`Same_core
            ~smt_pressure:0.8 p );
      ( "L2",
        fun p ->
          Runner.config ~stressor:Ditto_apps.Stressors.l2 ~stressor_placement:`Same_core
            ~smt_pressure:0.8 p );
      ( "LLC",
        fun p ->
          Runner.config ~stressor:Ditto_apps.Stressors.llc ~stressor_placement:`Other_core p );
      ("Net", fun p -> Runner.config ~net_interference_gbps:6.0 p);
    ]
  in
  let rows =
    (* Each interference scenario is an independent cell; run them on the
       pool and keep the printed order. *)
    List.concat
    @@ Ditto_util.Pool.map pool
      (fun (label, config_of) ->
        let c = Pipeline.validate ~pool ~config_of ~platform:Platform.a ~load ~label result in
        let show who (m : Metrics.t) =
          [
            fmt "%s/%s" label who;
            fmt "%.3f" m.Metrics.ipc;
            ms m.Metrics.lat_p99;
            pct m.Metrics.l1i_miss_rate;
            pct m.Metrics.l1d_miss_rate;
            pct m.Metrics.l2_miss_rate;
            pct m.Metrics.llc_miss_rate;
          ]
        in
        [
          show "A" (List.assoc "nginx" c.Pipeline.actual);
          show "S" (List.assoc "nginx" c.Pipeline.synthetic);
        ])
      scenarios
  in
  Table.print ~title:"Fig. 10 — NGINX under co-located interference (A: actual, S: synthetic)"
    ~header:[ "interf."; "IPC"; "p99 ms"; "L1i"; "L1d"; "L2"; "LLC" ]
    rows

(* {1 Figure 11: core count x frequency power-management heatmap} *)

(* Deployment-level scaling knob (memcached -t N): applies to original and
   clone identically, no reprofiling (the paper's "Portability" bullet). *)
let with_workers (spec : Spec.t) n =
  {
    spec with
    Spec.tiers =
      List.map
        (fun (t : Spec.tier) ->
          { t with Spec.thread_model = { t.Spec.thread_model with Spec.workers = n } })
        spec.Spec.tiers;
  }

let fig11 () =
  banner "Figure 11: Memcached p99 under CPU core and frequency scaling (QoS = 1ms)";
  (* A compute-bound configuration (12-key multigets of 512B values): with
     4KB single GETs the NIC binds first and neither cores nor frequency
     move the latency. Cloned once, at the default platform. *)
  let original = Ditto_apps.Memcached.spec_multiget ~keys:12 ~value_bytes:512 () in
  let profile_load =
    Ditto_loadgen.Workload.to_load Ditto_apps.Memcached.workload ~qps:60_000. ~duration:0.5 ()
  in
  let result = Pipeline.clone ~pool ~platform:Platform.a ~load:profile_load original in
  let load =
    Ditto_loadgen.Workload.to_load Ditto_apps.Memcached.workload ~qps:150_000. ~duration:0.3 ()
  in
  let cores_axis = [ 4; 6; 8; 10; 12; 14; 16 ] in
  let freq_axis = [ 2.1; 1.9; 1.7; 1.5; 1.3; 1.1 ] in
  let qos = 1e-3 in
  (* One validate per cell serves both grids. The 42 cells are independent,
     so they fan out over the pool; the grids regroup them by frequency. *)
  let cell (freq, cores) =
    let plat = Platform.with_frequency Platform.a freq in
    (* scale worker threads with the allotted cores *)
    let scaled =
      {
        result with
        Pipeline.original = with_workers result.Pipeline.original cores;
        synthetic = with_workers result.Pipeline.synthetic cores;
      }
    in
    let c =
      Pipeline.validate ~pool
        ~config_of:(fun p -> Runner.config ~cores ~requests:140 p)
        ~platform:plat ~load
        ~label:(fmt "%dc@%.1f" cores freq)
        scaled
    in
    ((freq, cores), c)
  in
  let flat =
    Ditto_util.Pool.map pool cell
      (List.concat_map (fun f -> List.map (fun c -> (f, c)) cores_axis) freq_axis)
  in
  let cells =
    List.map
      (fun freq ->
        ( freq,
          List.filter_map
            (fun ((f, cores), c) -> if f = freq then Some (cores, c) else None)
            flat ))
      freq_axis
  in
  let grid which =
    let rows =
      List.map
        (fun (freq, row) ->
          fmt "%.1fGHz" freq
          :: List.map
               (fun (_, c) ->
                 let s =
                   match which with
                   | `Actual -> c.Pipeline.actual_end_to_end
                   | `Synthetic -> c.Pipeline.synthetic_end_to_end
                 in
                 if s.Stats.p99 > qos then "X" else fmt "%.2f" (1e3 *. s.Stats.p99))
               row)
        cells
    in
    Table.print
      ~title:
        (fmt "Fig. 11 — %s Memcached p99 (ms; X = QoS violated)"
           (match which with `Actual -> "actual" | `Synthetic -> "synthetic"))
      ~header:("freq \\ cores" :: List.map string_of_int cores_axis)
      rows
  in
  grid `Actual;
  grid `Synthetic

(* {1 E1: error summary (after fig5)} *)

let errors () =
  banner "Error summary (per-axis mean absolute error across apps/loads, cf. §6.2.1)";
  if Hashtbl.length error_acc = 0 then fig5 ();
  let rows =
    Hashtbl.fold
      (fun axis values acc ->
        let vs = !values in
        let mean = List.fold_left ( +. ) 0.0 vs /. float_of_int (max 1 (List.length vs)) in
        (axis, mean, List.length vs) :: acc)
      error_acc []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
    |> List.map (fun (axis, mean, n) -> [ axis; fmt "%.1f%%" mean; string_of_int n ])
  in
  Table.print ~title:"Average validation errors"
    ~header:[ "metric"; "mean error"; "samples" ]
    rows;
  Printf.printf
    "\n(paper, §6.2.1: IPC 4.1%%, branch 9.9%%, L1i 7.1%%, L1d 5.1%%, L2 6.9%%, LLC 12.1%%,\n\
    \ network BW 0.1%%, disk BW 0.1%%)\n"

(* {1 Ablation: tuned clone vs untuned clone vs user-level baseline} *)

let ablation () =
  banner "Ablation: what end-to-end cloning and tuning buy (per-metric mean error, medium load)";
  let axes = [ "IPC"; "Branch"; "L1i"; "L1d"; "L2"; "LLC" ] in
  let acc = Hashtbl.create 8 in
  let record variant errs =
    List.iter
      (fun (axis, e) ->
        if List.mem axis axes then begin
          let key = (variant, axis) in
          let cur = Option.value ~default:[] (Hashtbl.find_opt acc key) in
          Hashtbl.replace acc key (e :: cur)
        end)
      errs
  in
  let lat_acc = Hashtbl.create 8 in
  let record_lat variant e =
    let cur = Option.value ~default:[] (Hashtbl.find_opt lat_acc variant) in
    Hashtbl.replace lat_acc variant (e :: cur)
  in
  List.iter
    (fun (entry : Registry.entry) ->
      let load, result = get_clone entry.Registry.name in
      let cfg = Runner.config Platform.a in
      (* The clone pipeline already ran the original at this exact
         (config, load): its reference output is bit-identical to
         re-running it here, so reuse it. *)
      let actual_out = result.Pipeline.reference in
      let variants =
        [
          ("ditto (tuned)", result.Pipeline.synthetic);
          ("ditto (untuned)", Ditto_gen.Clone.synth_app result.Pipeline.profile);
          ("user-level baseline", Ditto_baseline.Userlevel_clone.synth_app result.Pipeline.profile);
        ]
      in
      let outs =
        Ditto_util.Pool.map pool
          (fun (variant, spec) -> (variant, Runner.run cfg ~load spec))
          variants
      in
      List.iter
        (fun (variant, out) ->
          List.iter
            (fun tier ->
              let actual = List.assoc tier actual_out.Runner.per_tier in
              match List.assoc_opt tier out.Runner.per_tier with
              | Some synth ->
                  record variant (Metrics.error_pct ~actual ~synthetic:synth);
                  if actual.Metrics.lat_p99 > 0.0 then
                    record_lat variant
                      (100.
                      *. Float.abs (synth.Metrics.lat_p99 -. actual.Metrics.lat_p99)
                      /. actual.Metrics.lat_p99)
              | None -> ())
            entry.Registry.focus_tiers)
        outs)
    (registry_entries ());
  let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (max 1 (List.length xs)) in
  let rows =
    List.map
      (fun variant ->
        variant
        :: (List.map
              (fun axis ->
                match Hashtbl.find_opt acc (variant, axis) with
                | Some xs -> fmt "%.1f%%" (mean xs)
                | None -> "-")
              axes
           @ [
               (match Hashtbl.find_opt lat_acc variant with
               | Some xs -> fmt "%.1f%%" (mean xs)
               | None -> "-");
             ]))
      [ "ditto (tuned)"; "ditto (untuned)"; "user-level baseline" ]
  in
  Table.print ~title:"mean error vs original across the six services"
    ~header:("variant" :: axes @ [ "p99" ])
    rows;
  print_endline
    "
(the user-level baseline models no kernel work, I/O or skeleton: its
    \ counters can look plausible while its latency is far off — the paper's
    \ §2.3 argument for end-to-end cloning)"

(* {1 Bechamel micro-benchmarks of the simulation kernels} *)

let micro () =
  banner "Bechamel micro-benchmarks (simulation kernels)";
  let open Bechamel in
  let open Toolkit in
  let cache_bench =
    let c = Ditto_uarch.Cache.create ~size_bytes:32768 ~assoc:8 () in
    let hit = ref false in
    let i = ref 0 in
    Test.make ~name:"cache.access"
      (Staged.stage (fun () ->
           incr i;
           Ditto_uarch.Cache.access c (!i * 64) ~hit))
  in
  let predictor_bench =
    let bp = Ditto_uarch.Branch_pred.create ~entries:16384 ~btb_entries:4096 () in
    let k = ref 0 in
    Test.make ~name:"branch.predict"
      (Staged.stage (fun () ->
           incr k;
           ignore
             (Ditto_uarch.Branch_pred.predict_and_update bp ~pc:0x100
                ~taken:(Ditto_isa.Block.branch_outcome ~m:2 ~n:4 !k))))
  in
  let engine_bench =
    Test.make ~name:"des.1000-events"
      (Staged.stage (fun () ->
           let e = Ditto_sim.Engine.create () in
           Ditto_sim.Engine.spawn e (fun () ->
               for _ = 1 to 1000 do
                 Ditto_sim.Engine.wait 1e-6
               done);
           Ditto_sim.Engine.run e))
  in
  let core_bench =
    let mem = Ditto_uarch.Memory.create Platform.a ~ncores:1 in
    let core = Ditto_uarch.Core_model.create mem ~core:0 in
    let block =
      Ditto_isa.Block.make ~label:"bench" ~code_base:0x100000
        (List.init 64 (fun i ->
             Ditto_isa.Block.temp
               (Ditto_isa.Iform.by_name "ADD_GPR64_GPR64")
               ~dst:(i mod 8)
               ~srcs:[| (i + 1) mod 8 |]))
    in
    let rng = Ditto_util.Rng.create 1 in
    Test.make ~name:"core.6400-insts"
      (Staged.stage (fun () -> Ditto_uarch.Core_model.exec_block core ~rng block ~iterations:100))
  in
  let gen_bench =
    let app = Ditto_apps.Redis.spec () in
    let profile = Ditto_profile.Tier_profile.profile_app ~requests:30 ~seed:7 app in
    Test.make ~name:"gen.clone-redis"
      (Staged.stage (fun () -> ignore (Ditto_gen.Clone.synth_app profile)))
  in
  let tests = [ cache_bench; predictor_bench; engine_bench; core_bench; gen_bench ] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-22s %12.1f ns/iter\n%!" name est
          | _ -> Printf.printf "  %-22s (no estimate)\n%!" name)
        results)
    tests

(* {1 Clone-accuracy scorecards (fidelity observatory)} *)

module Scorecard = Ditto_report.Scorecard

let scorecards_tbl : (string, Scorecard.t) Hashtbl.t = Hashtbl.create 8

let scorecards () =
  banner "Clone-accuracy scorecards (per tier x per counter, medium load, 95% target)";
  List.iter
    (fun (entry : Registry.entry) ->
      let name = entry.Registry.name in
      let load, result = get_clone name in
      let c = validate_cached ~platform:Platform.a ~load ~label:"med" result in
      let card =
        Scorecard.of_comparison ~app:name ?tuning:result.Pipeline.tuning c
      in
      Scorecard.print card;
      Hashtbl.replace scorecards_tbl name card)
    (registry_entries ())

(* {1 Chaos: fidelity under failure (bench --chaos)} *)

module Plan = Ditto_fault.Plan

(* Flat "<app>/<plan>/<metric>" keys fed into the --json document's "chaos"
   section and, through Baseline.flatten, into the regression gate. *)
let chaos_acc : (string * float) list ref = ref []

let chaos () =
  banner "Chaos: fidelity under failure (canonical plans, medium load)";
  List.iter
    (fun (entry : Registry.entry) ->
      let name = entry.Registry.name in
      let load, result = get_clone name in
      let tiers =
        List.map (fun (t : Spec.tier) -> t.Spec.tier_name) result.Pipeline.original.Spec.tiers
      in
      List.iter
        (fun plan ->
          let ch =
            Pipeline.validate_under ~pool ~platform:Platform.a ~load ~plan
              ~label:(fmt "chaos:%s" plan.Plan.plan_name)
              result
          in
          let card = Scorecard.of_chaos ~app:name ?tuning:result.Pipeline.tuning ch in
          Scorecard.print card;
          let fail_delta metric =
            match card.Scorecard.failure with
            | None -> 0.0
            | Some f -> (
                match
                  List.find_opt
                    (fun (r : Scorecard.failure_row) -> r.Scorecard.f_metric = metric)
                    f.Scorecard.failure_rows
                with
                | Some r -> r.Scorecard.f_delta
                | None -> 0.0)
          in
          let key metric = fmt "%s/%s/%s" name plan.Plan.plan_name metric in
          chaos_acc :=
            (key "throughput_err_pct", fail_delta "throughput")
            :: (key "p99_err_pct", fail_delta "lat_p99")
            :: (key "error_rate_pp", fail_delta "error_rate")
            :: !chaos_acc)
        (Plan.canonical ~duration ~tiers))
    (registry_entries ())

(* {1 Timeline: transient fidelity from windowed telemetry (bench timeline)} *)

(* Flat "<app>/<plan>/<metric>" keys for the --json "timeline" section
   (schema v7), gated like the chaos keys. *)
let timeline_acc : (string * float) list ref = ref []

let timeline () =
  banner "Timeline: transient fidelity under kill-mid-tier (windowed telemetry)";
  (* The enable flag is global; validate_under runs both sides on this
     pool, and the collectors are per-run, so concurrent runs do not
     interfere — but scope the flag tightly anyway so unrelated stages
     never pay collector allocations. *)
  Ditto_obs.Timeseries.enable ();
  Fun.protect ~finally:Ditto_obs.Timeseries.disable (fun () ->
      List.iter
        (fun (entry : Registry.entry) ->
          let name = entry.Registry.name in
          let load, result = get_clone name in
          let tiers =
            List.map
              (fun (t : Spec.tier) -> t.Spec.tier_name)
              result.Pipeline.original.Spec.tiers
          in
          let plan = Plan.kill_mid_tier ~duration ~tiers () in
          let ch =
            Pipeline.validate_under ~pool ~platform:Platform.a ~load ~plan
              ~label:(fmt "timeline:%s" plan.Plan.plan_name)
              result
          in
          match
            ( ch.Pipeline.actual_service.Ditto_app.Service.timeline,
              ch.Pipeline.synthetic_service.Ditto_app.Service.timeline )
          with
          | Some actual, Some clone ->
              let tl =
                Ditto_report.Timeline.of_timelines ~app:name ~plan:plan.Plan.plan_name
                  ~actual ~clone ()
              in
              Ditto_report.Timeline.print tl;
              timeline_acc := Ditto_report.Timeline.flat tl @ !timeline_acc
          | _ -> Printf.printf "  %s: no timeline collected (telemetry disabled?)\n" name)
        (registry_entries ()))

(* {1 Critpath: critical-path divergence from request tracing (bench critpath)} *)

(* Flat "critpath/<app>/<plan>/..." keys for the --json "critpath" section
   (schema v8), gated like the timeline keys. *)
let critpath_acc : (string * float) list ref = ref []

let critpath () =
  banner "Critpath: critical-path divergence from sampled request traces";
  (* Same flag discipline as the timeline stage: the enable flag is
     global but the collectors are per-run, so scope it tightly. *)
  Ditto_obs.Reqtrace.enable ();
  Fun.protect ~finally:Ditto_obs.Reqtrace.disable (fun () ->
      List.iter
        (fun (entry : Registry.entry) ->
          let name = entry.Registry.name in
          let load, result = get_clone name in
          let c =
            Pipeline.validate ~pool ~platform:Platform.a ~load
              ~label:(fmt "critpath:%s" name) result
          in
          match
            ( c.Pipeline.actual_service.Ditto_app.Service.reqtrace,
              c.Pipeline.synthetic_service.Ditto_app.Service.reqtrace )
          with
          | Some _, Some _ ->
              let d = Ditto_report.Critpath.of_comparison ~app:name c in
              Ditto_report.Critpath.print d;
              critpath_acc := Ditto_report.Critpath.flat d @ !critpath_acc
          | _ -> Printf.printf "  %s: no request traces collected (tracing disabled?)\n" name)
        (registry_entries ()))

(* {1 Surge: overload fidelity under a flash crowd (bench surge)} *)

(* Flat "<app>/<scenario>/<metric>" keys for the --json "surge" section
   (schema v9), gated like the timeline keys. *)
let surge_acc : (string * float) list ref = ref []

let surge () =
  banner "Surge: overload fidelity (flash crowd + kill-mid-tier, autoscaling armed)";
  (* Same flag discipline as the timeline stage. The queue bound is tight
     enough that the 4x flash crowd actually sheds, so the saturation-onset
     and shed-rate keys measure something on every app. *)
  Ditto_obs.Timeseries.enable ();
  Fun.protect ~finally:Ditto_obs.Timeseries.disable (fun () ->
      List.iter
        (fun (entry : Registry.entry) ->
          let name = entry.Registry.name in
          let load, result = get_clone name in
          let tiers =
            List.map
              (fun (t : Spec.tier) -> t.Spec.tier_name)
              result.Pipeline.original.Spec.tiers
          in
          let plan = Plan.kill_mid_tier ~duration ~tiers () in
          let profile = Ditto_loadgen.Profile.flash_crowd ~duration () in
          let ch =
            Pipeline.validate_under ~pool ~platform:Platform.a ~load
              ~resilience:(Spec.resilient ~queue_bound:48 ())
              ~autoscale:(Spec.autoscale ~max_replicas:4 ())
              ~plan ~profile
              ~label:(fmt "surge:%s" name)
              result
          in
          let sc = Ditto_report.Surge.of_chaos ~app:name ch in
          Ditto_report.Surge.print sc;
          surge_acc := Ditto_report.Surge.flat sc @ !surge_acc)
        (registry_entries ()))

(* {1 Perf smoke: the warm-memo fast path (gated by bin/ci.sh)} *)

let perfsmoke () =
  banner "Perf smoke: warm measurement-memo revalidation (redis, platform B)";
  let load, result = get_clone "redis" in
  (* Direct Pipeline.validate — not the bench-level comparison cache — so
     the second run exercises the runner's measurement-phase memo rather
     than reusing a finished comparison. A size-1 pool pins both runs to
     this domain (the memo is domain-local), and platform B keeps the cell
     disjoint from the preclone-warmed medium/A cell. *)
  let seq = Ditto_util.Pool.create ~size:1 () in
  let run () =
    ignore (Pipeline.validate ~pool:seq ~platform:Platform.b ~load ~label:"perfsmoke" result)
  in
  let time f =
    let t0 = wall () in
    f ();
    wall () -. t0
  in
  let cold = time run in
  let warm = time run in
  let s = Runner.measure_memo_stats () in
  Printf.printf
    "  cold %.3fs, warm %.3fs (%.2fx); measurement memo: %d hit(s), %d miss(es), %d entries\n%!"
    cold warm
    (cold /. Float.max 1e-9 warm)
    s.Ditto_uarch.Memo.hits s.Ditto_uarch.Memo.misses s.Ditto_uarch.Memo.entries;
  (* With memoization disabled (DITTO_MEMO=0) the smoke is vacuous: pass. *)
  if (not (Ditto_uarch.Memo.enabled ())) || warm < cold then print_endline "  PERF-SMOKE-OK"
  else print_endline "  PERF-SMOKE-FAIL (warm run not faster than cold)"

(* {1 Synth scale: production-shaped graphs through the full pipeline}

   One experiment per registered graph size, so each stage lands its own
   "experiments/<name>/wall_seconds" budget in the committed baseline and
   `bench --check` gates scaling speed alongside fidelity. synth-100 is
   cloned with tuning and contributes its scorecard to the fidelity gate
   (the paper's 95% bar); the 500- and 1000-tier graphs run untuned —
   their budgets pin that clone+validate stays far below the naive
   per-tier extrapolation from social_network (~6.4 s/tier at BENCH_4,
   i.e. ~6400 s for 1000 tiers; the committed budgets demand >= 5x better). *)

let synth_one ~tune n =
  let name = Ditto_gen.Topology.app_name n in
  banner (fmt "Synth scale: %s (%s)" name (if tune then "tuned" else "untuned"));
  let entry = Registry.by_name name in
  let _, med, _ = entry.Registry.loads in
  let load =
    Ditto_loadgen.Workload.to_load entry.Registry.workload ~qps:med ~duration:0.4 ()
  in
  let t0 = wall () in
  let result = Pipeline.clone ~pool ~tune ~platform:Platform.a ~load (entry.Registry.spec ()) in
  let cloned = wall () -. t0 in
  clone_secs := (name, cloned) :: !clone_secs;
  let c = Pipeline.validate ~pool ~platform:Platform.a ~load ~label:"synth" result in
  let card = Scorecard.of_comparison ~app:name ?tuning:result.Pipeline.tuning c in
  Hashtbl.replace clones name (load, result);
  (* A 1000-tier scorecard is ~12k rows; print the verdict, not the table. *)
  let knob_rows =
    List.filter (fun (r : Scorecard.row) -> r.Scorecard.knob_group <> None) card.Scorecard.rows
  in
  let knob_pass = List.length (List.filter (fun (r : Scorecard.row) -> r.Scorecard.pass) knob_rows) in
  let secs = wall () -. t0 in
  Printf.printf
    "[synth] %s: clone %.1fs, clone+validate %.1fs (%.2f s/tier); scorecard %s (%d/%d counter \
     rows within 5%%); peak heap events %d\n%!"
    name cloned secs
    (secs /. float_of_int n)
    (if Scorecard.passed card then "PASS" else "FAIL")
    knob_pass (List.length knob_rows)
    (Ditto_sim.Engine.global_peak_heap_events ());
  if tune then Hashtbl.replace scorecards_tbl name card

let synth100 () = synth_one ~tune:true 100
let synth500 () = synth_one ~tune:false 500
let synth1000 () = synth_one ~tune:false 1000

(* {1 Main} *)

let all_experiments =
  [
    ("table1", table1);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("errors", errors);
    ("ablation", ablation);
    ("scorecards", scorecards);
    ("micro", micro);
  ]

(* Off the default path: chaos arms faults and resilience; timeline adds
   windowed telemetry on top; perfsmoke is the CI warm-memo gate.
   Reachable by experiment name (or --chaos). *)
let opt_in_experiments =
  [
    ("chaos", chaos); ("timeline", timeline); ("critpath", critpath);
    ("surge", surge);
    ("perfsmoke", perfsmoke);
    ("synth100", synth100); ("synth500", synth500); ("synth1000", synth1000);
  ]

(* Which registry clones an experiment consumes, so the preclone pass can
   build exactly those concurrently before the (ordered, printing)
   experiment loop starts. fig11 and micro build their own specs. *)
let clone_needs = function
  | "fig5" | "fig7" | "fig8" | "errors" | "ablation" | "scorecards" | "chaos" | "timeline"
  | "critpath" | "surge" ->
      List.map (fun (e : Registry.entry) -> e.Registry.name) (registry_entries ())
  | "fig6" -> [ "social_network" ]
  | "fig9" -> [ "mongodb" ]
  | "fig10" -> [ "nginx" ]
  | "perfsmoke" -> [ "redis" ]
  | _ -> []

module Baseline = Ditto_report.Baseline
module Bench_json = Ditto_report.Bench_json

let default_baseline_path = "bench/baselines/default.json"

let read_file path =
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* Diff [current] (flattened metrics) against the baseline file; prints the
   verdict and returns false on regression. *)
let run_check ~baseline_path current =
  if not (Sys.file_exists baseline_path) then begin
    Printf.eprintf
      "[bench] --check: baseline %s not found (run with --update-baselines first)\n"
      baseline_path;
    exit 2
  end;
  let baseline = Baseline.load baseline_path in
  (* A filtered run's total wall covers only the experiments it ran, so
     gating it against the full-sweep pin would flag any subset slower
     than the whole default sweep (the synth stages alone are). Rebuild
     the pinned total as the sum of the pinned per-stage walls for the
     stages present in [current]; if any stage is new to the baseline the
     total is dropped and only the per-stage budgets gate. *)
  let baseline =
    let total_key = "experiments/total/wall_seconds" in
    let is_stage_wall k =
      k <> total_key
      && String.starts_with ~prefix:"experiments/" k
      && String.ends_with ~suffix:"/wall_seconds" k
    in
    let stage_keys = List.filter_map (fun (k, _) -> if is_stage_wall k then Some k else None) current in
    let pinned = List.map (fun k -> List.assoc_opt k baseline.Baseline.metrics) stage_keys in
    if List.mem_assoc total_key baseline.Baseline.metrics && stage_keys <> [] then
      let metrics = List.remove_assoc total_key baseline.Baseline.metrics in
      let metrics =
        if List.for_all Option.is_some pinned then
          (total_key, List.fold_left (fun acc v -> acc +. Option.get v) 0.0 pinned) :: metrics
        else metrics
      in
      { baseline with Baseline.metrics }
    else baseline
  in
  let regressions, checked = Baseline.diff baseline current in
  match regressions with
  | [] ->
      Printf.printf "[bench] check OK: %d metric(s) within tolerance of %s\n" checked
        baseline_path;
      true
  | regs ->
      Printf.printf "[bench] check FAILED: %d of %d metric(s) regressed vs %s\n"
        (List.length regs) checked baseline_path;
      List.iter
        (fun (r : Baseline.regression) ->
          Printf.printf "  %-45s %.2f%% -> %.2f%% (allowed +%.1fpp)\n" r.Baseline.key
            r.Baseline.baseline r.Baseline.current r.Baseline.allowed_pp)
        regs;
      false

let () =
  let t0 = wall () in
  let json_file = ref None
  and trace_file = ref None
  and trace_jaeger_file = ref None
  and check = ref false
  and baseline_file = ref None
  and update_baselines = ref false
  and chaos_flag = ref false
  and check_json = ref None
  and update_json = ref None in
  let rec parse_args acc = function
    | [] -> List.rev acc
    | "--json" :: file :: rest ->
        json_file := Some file;
        parse_args acc rest
    | "--trace" :: file :: rest ->
        trace_file := Some file;
        parse_args acc rest
    | "--trace-jaeger" :: file :: rest ->
        trace_jaeger_file := Some file;
        parse_args acc rest
    | "--apps" :: apps :: rest ->
        apps_filter := Some (String.split_on_char ',' apps);
        parse_args acc rest
    | "--baseline" :: file :: rest ->
        baseline_file := Some file;
        parse_args acc rest
    | "--check-json" :: file :: rest ->
        check_json := Some file;
        parse_args acc rest
    | "--update-baselines-json" :: file :: rest ->
        update_json := Some file;
        parse_args acc rest
    | "--check" :: rest ->
        check := true;
        parse_args acc rest
    | "--update-baselines" :: rest ->
        update_baselines := true;
        parse_args acc rest
    | "--chaos" :: rest ->
        chaos_flag := true;
        parse_args acc rest
    | [ ("--json" | "--trace" | "--trace-jaeger" | "--apps" | "--baseline" | "--check-json"
        | "--update-baselines-json") as
        flag ] ->
        Printf.eprintf "%s requires an argument\n" flag;
        exit 2
    | a :: rest -> parse_args (a :: acc) rest
  in
  let names = parse_args [] (List.tl (Array.to_list Sys.argv)) in
  let baseline_path = Option.value ~default:default_baseline_path !baseline_file in
  (* --check-json gates a saved --json document without re-running anything;
     --update-baselines-json likewise refreshes the baseline from one. *)
  (match !update_json with
  | None -> ()
  | Some path ->
      let doc = Ditto_util.Jsonx.of_string (read_file path) in
      let next =
        if Sys.file_exists baseline_path then
          Baseline.merge ~into:(Baseline.load baseline_path) (Baseline.flatten doc)
        else Baseline.make (Baseline.flatten doc)
      in
      Baseline.save ~path:baseline_path next;
      Printf.printf "[bench] wrote baseline %s\n" baseline_path;
      exit 0);
  (match !check_json with
  | None -> ()
  | Some path ->
      let doc = Ditto_util.Jsonx.of_string (read_file path) in
      exit (if run_check ~baseline_path (Baseline.flatten doc) then 0 else 1));
  if !trace_file <> None || !trace_jaeger_file <> None then Obs.enable ();
  let trace_file = !trace_file and trace_jaeger_file = !trace_jaeger_file in
  let selected =
    match names with
    | [] -> all_experiments
    | names ->
        List.map
          (fun n ->
            match List.assoc_opt n (all_experiments @ opt_in_experiments) with
            | Some f -> (n, f)
            | None ->
                Printf.eprintf "unknown experiment %S (have: %s; flags: --json FILE)\n" n
                  (String.concat ", "
                     (List.map fst (all_experiments @ opt_in_experiments)));
                exit 2)
          names
  in
  let selected =
    if !chaos_flag && not (List.mem_assoc "chaos" selected) then
      selected @ [ ("chaos", chaos) ]
    else selected
  in
  (* Per-stage scheduling telemetry: wall seconds, the parallelism degree
     offered, and busy/(domains x wall) — the fraction of the stage's
     capacity actually spent executing pool tasks. *)
  let domains = Ditto_util.Pool.size pool in
  let busy () = (Ditto_util.Pool.stats ()).Ditto_util.Pool.busy_seconds in
  let experiment_record name f =
    let te0 = wall () and b0 = busy () in
    f ();
    let secs = wall () -. te0 in
    let eff =
      if secs <= 0.0 then 0.0
      else Float.min 1.0 ((busy () -. b0) /. (float_of_int domains *. secs))
    in
    {
      Bench_json.exp_name = name;
      exp_seconds = secs;
      exp_domains = domains;
      exp_parallel_efficiency = eff;
    }
  in
  let preclone_record =
    experiment_record "preclone" (fun () ->
        preclone
          (List.sort_uniq compare (List.concat_map (fun (n, _) -> clone_needs n) selected)))
  in
  let timings = preclone_record :: List.map (fun (name, f) -> experiment_record name f) selected in
  let total = wall () -. t0 in
  Printf.printf "\n[bench] total wall time %.1fs (%d domain(s))\n" total domains;
  List.iter
    (fun (e : Bench_json.experiment) ->
      Printf.printf "[bench]   %-12s %6.1fs  (eff %.2f on %d domain(s))\n" e.Bench_json.exp_name
        e.Bench_json.exp_seconds e.Bench_json.exp_parallel_efficiency e.Bench_json.exp_domains)
    timings;
  (* The v3 --json document doubles as the regression-gate input, so it is
     assembled whenever --json, --check or --update-baselines asked for it. *)
  let doc =
    if !json_file = None && not (!check || !update_baselines) then None
    else begin
      let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (max 1 (List.length xs)) in
      let errors =
        Hashtbl.fold (fun axis values acc -> (axis, mean !values) :: acc) error_acc []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      (* Per-app tuner trajectory: iterations with per-counter errors and the
         knob vectors kept at each step (see README for the schema). *)
      let tuning =
        Hashtbl.fold
          (fun name (_, result) acc ->
            match result.Pipeline.tuning with
            | Some report -> (name, Ditto_tune.Tuner.report_to_json report) :: acc
            | None -> acc)
          clones []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      let cards =
        Hashtbl.fold (fun _ card acc -> card :: acc) scorecards_tbl []
        |> List.sort (fun (a : Scorecard.t) b -> compare a.Scorecard.app b.Scorecard.app)
      in
      Some
        (Bench_json.assemble
           {
             Bench_json.domains = Ditto_util.Pool.size pool;
             total_seconds = total;
             experiments = timings;
             clone_seconds = List.rev !clone_secs;
             mean_error_pct = errors;
             tuning;
             metrics = Obs.Metrics.snapshot ();
             scorecards = cards;
             chaos = List.sort compare !chaos_acc;
             timeline = List.sort compare !timeline_acc;
             critpath = List.sort compare !critpath_acc;
             surge = List.sort compare !surge_acc;
             peak_heap_events = Ditto_sim.Engine.global_peak_heap_events ();
             tier_counts =
               Hashtbl.fold
                 (fun name (_, result) acc ->
                   (name, List.length result.Pipeline.original.Ditto_app.Spec.tiers) :: acc)
                 clones []
               |> List.sort (fun (a, _) (b, _) -> compare a b);
           })
    end
  in
  (match (!json_file, doc) with
  | Some path, Some json ->
      let oc = open_out path in
      output_string oc (Ditto_util.Jsonx.to_string ~pretty:true json);
      output_char oc '\n';
      close_out oc;
      Printf.printf "[bench] wrote %s\n" path
  | _ -> ());
  (match (!update_baselines, doc) with
  | true, Some json ->
      (* Merge into the committed baseline (keeping its tolerances): a
         partial run — --apps, a chaos-only pass — refreshes its slice
         without discarding everyone else's metrics. *)
      let next =
        if Sys.file_exists baseline_path then
          Baseline.merge ~into:(Baseline.load baseline_path) (Baseline.flatten json)
        else Baseline.make (Baseline.flatten json)
      in
      Baseline.save ~path:baseline_path next;
      Printf.printf "[bench] wrote baseline %s\n" baseline_path
  | _ -> ());
  let check_ok =
    match (!check, doc) with
    | true, Some json -> run_check ~baseline_path (Baseline.flatten json)
    | _ -> true
  in
  (match (trace_file, trace_jaeger_file) with
  | None, None -> ()
  | trace, jaeger ->
      let nspans = List.length (Obs.Export.spans ()) in
      (match trace with
      | Some path ->
          Obs.Export.write_chrome path;
          Printf.printf "[bench] wrote %s (%d spans, %d dropped)\n" path nspans
            (Obs.Export.dropped ())
      | None -> ());
      let jaeger_path =
        match (jaeger, trace) with
        | Some p, _ -> Some p
        | None, Some p -> Some (p ^ ".jaeger.json")
        | None, None -> None
      in
      (match jaeger_path with
      | Some path ->
          Obs.Export.write_jaeger path;
          Printf.printf "[bench] wrote %s\n" path
      | None -> ()));
  if not check_ok then exit 1
