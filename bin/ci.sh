#!/bin/sh
# Tier-1 gate: full build, the 17 test suites, a benchmark smoke run, a
# self-tracing smoke test (Chrome + Jaeger exports re-parsed via Jsonx), a
# sampled-profiler smoke test, and the fidelity regression gate (scorecards
# diffed against the committed baseline, plus a proof that the gate rejects
# a perturbed baseline).
# Usage: bin/ci.sh   (from the repo root; DITTO_DOMAINS caps the pool)
set -eu

cd "$(dirname "$0")/.."

# All scratch files live in one tmpdir removed on any exit, so a failing
# step cannot leave stray trace/profile files behind.
tmpdir=$(mktemp -d /tmp/ditto_ci.XXXXXX)
trap 'rm -rf "$tmpdir"' EXIT INT TERM

echo "== dune build =="
build_log="$tmpdir/build.log"
dune build 2>&1 | tee "$build_log"
# lib/obs and lib/report are the observability layers: keep them warning-clean.
if grep -i "warning" "$build_log" | grep -qE "lib/(obs|report)"; then
  echo "ci: FAIL — build warnings in lib/obs or lib/report" >&2
  exit 1
fi

echo "== dune runtest =="
dune runtest

echo "== bench smoke (micro kernels) =="
dune exec bench/main.exe -- micro

echo "== trace smoke (ditto_cli --trace, re-parsed with Jsonx) =="
trace_file="$tmpdir/trace.json"
dune exec bin/ditto_cli.exe -- run redis --qps 2000 --trace "$trace_file"
dune exec bin/ditto_cli.exe -- inspect-trace "$trace_file"
dune exec bin/ditto_cli.exe -- inspect-trace "$trace_file.jaeger.json"
rm -f "$trace_file" "$trace_file.jaeger.json"

echo "== profile smoke (collapsed stacks reconcile with measured CPU) =="
# `profile` exits non-zero itself if the sampled weights diverge >1% from
# the measured on-CPU time.
dune exec bin/ditto_cli.exe -- profile redis --out "$tmpdir/redis.folded" --top 5
test -s "$tmpdir/redis.folded"

echo "== scorecard regression gate (vs bench/baselines/default.json) =="
bench_json="$tmpdir/bench.json"
dune exec bench/main.exe -- scorecards --apps redis,memcached --json "$bench_json" --check

echo "== regression gate rejects a perturbed baseline =="
# Lower one baseline entry to -100%: any non-negative current error now
# exceeds baseline + tolerance, so --check-json must fail.
bad_baseline="$tmpdir/bad_baseline.json"
sed 's/"scorecards\/redis\/redis\/l1i": [-0-9.eE+]*/"scorecards\/redis\/redis\/l1i": -100.0/' \
  bench/baselines/default.json > "$bad_baseline"
if ! grep -q -- '-100.0' "$bad_baseline"; then
  echo "ci: FAIL — could not perturb the baseline (key missing?)" >&2
  exit 1
fi
if dune exec bench/main.exe -- --check-json "$bench_json" --baseline "$bad_baseline"; then
  echo "ci: FAIL — regression gate accepted a perturbed baseline" >&2
  exit 1
fi
echo "(rejected, as intended)"

echo "ci: OK"
