#!/bin/sh
# Tier-1 gate: full build, the 23 test suites, a benchmark smoke run, a
# self-tracing smoke test (Chrome + Jaeger exports re-parsed via Jsonx), a
# sampled-profiler smoke test, a chaos smoke test (fault injection +
# resilience counters), a synth scaling smoke (100-tier generated graph
# cloned + validated under a wall budget), a timeline smoke (windowed
# telemetry + transient-fidelity scorecard + OpenMetrics export), a
# critpath smoke (request-level critical-path tracing + divergence
# attribution + Jaeger round-trip), a surge smoke (flash-crowd overload
# with autoscaling and admission control fired on both sides), and the
# fidelity regression gate
# (scorecards diffed against the committed baseline, plus a proof that
# the gate rejects a perturbed baseline).
# Usage: bin/ci.sh   (from the repo root; DITTO_DOMAINS caps the pool)
set -eu

cd "$(dirname "$0")/.."

# All scratch files live in one tmpdir removed on any exit, so a failing
# step cannot leave stray trace/profile files behind.
tmpdir=$(mktemp -d /tmp/ditto_ci.XXXXXX)
trap 'rm -rf "$tmpdir"' EXIT INT TERM

echo "== dune build =="
build_log="$tmpdir/build.log"
dune build 2>&1 | tee "$build_log"
# lib/obs, lib/report and lib/fault are the observability and chaos
# layers; lib/util, lib/uarch, lib/tune and bench carry the performance
# architecture (pool futures, memo caches, machine pooling, the bench
# DAG); lib/sim, lib/app, lib/apps, lib/gen and lib/trace carry the
# topology-synthesis scaling path; lib/core and lib/net carry the
# pipeline and the socket layer the request-trace context rides on;
# lib/loadgen carries the arrival-rate profiles the surge path samples.
# Keep them all warning-clean.
if grep -i "warning" "$build_log" | grep -qE "lib/(obs|report|fault|util|uarch|tune|sim|app|apps|gen|trace|core|net|loadgen)|bench/|bin/"; then
  echo "ci: FAIL — build warnings in the gated modules" >&2
  exit 1
fi

echo "== dune runtest =="
dune runtest

echo "== bench smoke (micro kernels) =="
dune exec bench/main.exe -- micro

echo "== perf smoke (warm measurement memo beats the cold run) =="
# perfsmoke clones redis once, then validates the same cell twice through
# the runner: the second pass must be served by the measurement-phase memo
# and come back faster. The experiment prints PERF-SMOKE-OK/FAIL.
perf_log="$tmpdir/perfsmoke.log"
dune exec bench/main.exe -- perfsmoke | tee "$perf_log"
if ! grep -q "PERF-SMOKE-OK" "$perf_log"; then
  echo "ci: FAIL — warm-memo run was not faster than the cold run" >&2
  exit 1
fi

echo "== trace smoke (ditto_cli --trace, re-parsed with Jsonx) =="
trace_file="$tmpdir/trace.json"
dune exec bin/ditto_cli.exe -- run redis --qps 2000 --trace "$trace_file"
dune exec bin/ditto_cli.exe -- inspect-trace "$trace_file"
dune exec bin/ditto_cli.exe -- inspect-trace "$trace_file.jaeger.json"
rm -f "$trace_file" "$trace_file.jaeger.json"

echo "== profile smoke (collapsed stacks reconcile with measured CPU) =="
# `profile` exits non-zero itself if the sampled weights diverge >1% from
# the measured on-CPU time.
dune exec bin/ditto_cli.exe -- profile redis --out "$tmpdir/redis.folded" --top 5
test -s "$tmpdir/redis.folded"

echo "== chaos smoke (kill-mid-tier on memcached, resilience counters fired) =="
# The crash plan must actually exercise the resilience machinery: the
# post-restart backlog sheds requests and the client retry budget is spent,
# so both counters in the greppable totals line must be non-zero — and the
# command itself must exit cleanly.
chaos_log="$tmpdir/chaos.log"
dune exec bin/ditto_cli.exe -- chaos memcached --only kill-mid-tier --no-tune | tee "$chaos_log"
awk '
  /^chaos-totals:/ {
    seen = 1
    shed = retries = -1
    for (i = 1; i <= NF; i++) {
      if ($i ~ /^shed=/)    { sub(/^shed=/, "", $i);    shed = $i + 0 }
      if ($i ~ /^retries=/) { sub(/^retries=/, "", $i); retries = $i + 0 }
    }
    if (shed <= 0 || retries <= 0) {
      printf "ci: FAIL — chaos counters did not fire (shed=%d retries=%d)\n", shed, retries > "/dev/stderr"
      exit 1
    }
  }
  END { if (!seen) { print "ci: FAIL — no chaos-totals line" > "/dev/stderr"; exit 1 } }
' "$chaos_log"

echo "== synth scaling smoke (100-tier generated graph, clone + validate) =="
# A seeded 100-tier production-shaped graph must round-trip through Jaeger
# (generate -> export -> recover DAG -> shape check), then clone and
# validate end-to-end inside a wall budget. The command prints the
# greppable SYNTH-SMOKE-OK line and exits non-zero if the recovered DAG
# does not match the generator's ground truth.
synth_log="$tmpdir/synth.log"
synth_start=$(date +%s)
dune exec bin/ditto_cli.exe -- synth synth-100 --no-tune | tee "$synth_log"
synth_wall=$(( $(date +%s) - synth_start ))
if ! grep -q "SYNTH-SMOKE-OK" "$synth_log"; then
  echo "ci: FAIL — synth smoke did not reach SYNTH-SMOKE-OK" >&2
  exit 1
fi
if [ "$synth_wall" -gt 240 ]; then
  echo "ci: FAIL — synth smoke took ${synth_wall}s (budget 240s)" >&2
  exit 1
fi

echo "== timeline smoke (windowed telemetry + transient-fidelity scorecard) =="
# A short kill-mid-tier run on memcached with telemetry on: the command
# must print the greppable TIMELINE-SMOKE-OK line with a strictly
# positive reconvergence time (a fault fired, so by construction
# reconvergence is at least the remainder of the fault window), and the
# OpenMetrics export must be a complete document (ends with # EOF).
timeline_log="$tmpdir/timeline.log"
om_file="$tmpdir/timeline.om"
dune exec bin/ditto_cli.exe -- timeline memcached --no-tune --openmetrics "$om_file" | tee "$timeline_log"
if ! grep -q "TIMELINE-SMOKE-OK" "$timeline_log"; then
  echo "ci: FAIL — timeline smoke did not reach TIMELINE-SMOKE-OK" >&2
  exit 1
fi
if ! grep -Eq 'reconverge_ms=[1-9][0-9]*' "$timeline_log"; then
  echo "ci: FAIL — reconvergence time not strictly positive under a fault plan" >&2
  exit 1
fi
if ! grep -q '^# EOF' "$om_file"; then
  echo "ci: FAIL — OpenMetrics export incomplete (no # EOF terminator)" >&2
  exit 1
fi

echo "== critpath smoke (critical-path divergence + Jaeger round-trip) =="
# Request-level tracing on redis: the command must print a top divergence
# row (CRITPATH worst=...) and the greppable CRITPATH-SMOKE-OK line, and
# the Jaeger export of the sampled traces must re-ingest cleanly through
# inspect-trace (non-empty roots report, client entry tier in the DAG).
critpath_log="$tmpdir/critpath.log"
critpath_jaeger="$tmpdir/critpath.jaeger.json"
dune exec bin/ditto_cli.exe -- critpath redis --no-tune --jaeger "$critpath_jaeger" | tee "$critpath_log"
if ! grep -q "CRITPATH-SMOKE-OK" "$critpath_log"; then
  echo "ci: FAIL — critpath smoke did not reach CRITPATH-SMOKE-OK" >&2
  exit 1
fi
if ! grep -Eq 'CRITPATH worst=[^ ]+/[^ ]+ err_pp=' "$critpath_log"; then
  echo "ci: FAIL — critpath smoke printed no top divergence row" >&2
  exit 1
fi
inspect_log="$tmpdir/critpath.inspect.log"
dune exec bin/ditto_cli.exe -- inspect-trace "$critpath_jaeger" | tee "$inspect_log"
if ! grep -Eq '[1-9][0-9]* root\(s\)' "$inspect_log"; then
  echo "ci: FAIL — Jaeger export re-ingest found no trace roots" >&2
  exit 1
fi
if ! grep -q 'client' "$inspect_log"; then
  echo "ci: FAIL — Jaeger export re-ingest lost the client entry tier" >&2
  exit 1
fi

echo "== surge smoke (flash crowd on memcached, autoscaling + shedding fired) =="
# An open-loop flash-crowd profile with autoscaling armed must actually
# exercise the overload machinery on both sides: at least one scale-out
# event fired, the admission controller shed a non-zero number of
# requests, and the spike left a strictly positive reconvergence time in
# the transient scorecard — and the command must exit cleanly with the
# greppable SURGE-SMOKE-OK line.
surge_log="$tmpdir/surge.log"
dune exec bin/ditto_cli.exe -- surge memcached --profile flash-crowd --no-tune | tee "$surge_log"
if ! grep -q "SURGE-SMOKE-OK" "$surge_log"; then
  echo "ci: FAIL — surge smoke did not reach SURGE-SMOKE-OK" >&2
  exit 1
fi
if ! grep -Eq 'scale_out_events=[1-9]' "$surge_log"; then
  echo "ci: FAIL — autoscaler never scaled out under the flash crowd" >&2
  exit 1
fi
if ! grep -Eq 'shed_total=[1-9]' "$surge_log"; then
  echo "ci: FAIL — admission control shed nothing under the flash crowd" >&2
  exit 1
fi
if ! grep -Eq 'reconverge_ms=[1-9][0-9]*' "$surge_log"; then
  echo "ci: FAIL — reconvergence time not strictly positive under the surge" >&2
  exit 1
fi

echo "== scorecard regression gate (vs bench/baselines/default.json) =="
bench_json="$tmpdir/bench.json"
dune exec bench/main.exe -- scorecards --apps redis,memcached --json "$bench_json" --check

echo "== regression gate rejects a perturbed baseline =="
# Lower one baseline entry to -100%: any non-negative current error now
# exceeds baseline + tolerance, so --check-json must fail.
bad_baseline="$tmpdir/bad_baseline.json"
sed 's/"scorecards\/redis\/redis\/l1i": [-0-9.eE+]*/"scorecards\/redis\/redis\/l1i": -100.0/' \
  bench/baselines/default.json > "$bad_baseline"
if ! grep -q -- '-100.0' "$bad_baseline"; then
  echo "ci: FAIL — could not perturb the baseline (key missing?)" >&2
  exit 1
fi
if dune exec bench/main.exe -- --check-json "$bench_json" --baseline "$bad_baseline"; then
  echo "ci: FAIL — regression gate accepted a perturbed baseline" >&2
  exit 1
fi
echo "(rejected, as intended)"

echo "ci: OK"
