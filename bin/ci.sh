#!/bin/sh
# Tier-1 gate: full build, the 15 test suites, and a benchmark smoke run.
# Usage: bin/ci.sh   (from the repo root; DITTO_DOMAINS caps the pool)
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== bench smoke (micro kernels) =="
dune exec bench/main.exe -- micro

echo "ci: OK"
