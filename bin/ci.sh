#!/bin/sh
# Tier-1 gate: full build, the 16 test suites, a benchmark smoke run, and a
# self-tracing smoke test (Chrome + Jaeger exports re-parsed via Jsonx).
# Usage: bin/ci.sh   (from the repo root; DITTO_DOMAINS caps the pool)
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
build_log=$(mktemp)
dune build 2>&1 | tee "$build_log"
# lib/obs is a fresh library: keep it warning-clean.
if grep -i "warning" "$build_log" | grep -q "lib/obs"; then
  echo "ci: FAIL — build warnings in lib/obs" >&2
  rm -f "$build_log"
  exit 1
fi
rm -f "$build_log"

echo "== dune runtest =="
dune runtest

echo "== bench smoke (micro kernels) =="
dune exec bench/main.exe -- micro

echo "== trace smoke (ditto_cli --trace, re-parsed with Jsonx) =="
trace_file=$(mktemp /tmp/ditto_ci_trace.XXXXXX.json)
dune exec bin/ditto_cli.exe -- run redis --qps 2000 --trace "$trace_file"
dune exec bin/ditto_cli.exe -- inspect-trace "$trace_file"
dune exec bin/ditto_cli.exe -- inspect-trace "$trace_file.jaeger.json"
rm -f "$trace_file" "$trace_file.jaeger.json"

echo "ci: OK"
