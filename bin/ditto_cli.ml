(* Command-line driver for the Ditto reproduction.

     ditto-cli run <app> [--qps N] [--platform A|B|C]
         run an original model service and print its metrics
     ditto-cli clone <app> [--qps N] [--no-tune] [--save FILE]
         profile, generate and fine-tune a clone; print profile + validation
     ditto-cli synth <profile.json> [--qps N] [--platform A|B|C]
         regenerate a clone from a shared profile file and run it
     ditto-cli export-trace <app> <out.trace>
         export a clone's memory trace in Ramulator format
     ditto-cli stages <app> [--qps N]
         the Fig. 9 decomposition (stages A..H + tuned clone)
     ditto-cli chaos <app> [--plan FILE] [--only PLAN] [--no-tune] [--qps N]
         fidelity under failure: run original and clone under a fault plan
         (default: the three canonical plans) with identical resilience
         armour, print the failure scorecards and a greppable
         "chaos-totals:" counter line
     ditto-cli timeline <app> [--plan FILE] [--no-tune] [--qps N]
                        [--openmetrics FILE] [--trace FILE]
         transient fidelity: run original and clone under a fault plan
         (default: kill-mid-tier) with windowed DES-clock telemetry,
         print the per-window scorecard with time-to-reconvergence and a
         greppable "TIMELINE-SMOKE-OK" line; optionally export the
         timelines as OpenMetrics text or Chrome counter events
     ditto-cli critpath <app> [--plan FILE] [--no-tune] [--qps N] [--jaeger FILE]
         request-level critical-path tracing: run original and clone with
         deterministic request sampling, extract each sampled request's
         critical path, and print the actual-vs-clone divergence scorecard
         (tier x segment contribution errors) with a greppable
         "CRITPATH-SMOKE-OK" line; optionally export the actual side's
         sampled span trees as Jaeger JSON (re-ingestable by inspect-trace)
     ditto-cli inspect-trace <trace.json>
         parse a Chrome or Jaeger trace back and summarise it
         (span counts, counter series min/mean/max, all roots with
         per-root span counts, recovered DAG, top-10 slowest spans)
     ditto-cli profile <app> [--qps N] [--original] [--out FILE] [--top N] [--period CYC]
         sampled profile of the clone's (or original's) execution, written
         as a collapsed-stack file for flamegraph.pl / inferno
     ditto-cli list
         list available model applications

   run/clone/stages take [--trace FILE]: record spans of the pipeline's own
   execution and write a Chrome trace-event file plus FILE.jaeger.json
   (or --trace-jaeger FILE). *)

module Pipeline = Ditto_core.Pipeline
module Registry = Ditto_apps.Registry
module Platform = Ditto_uarch.Platform
module Obs = Ditto_obs.Obs
open Ditto_app

(* Enable self-tracing for the duration of [f] and write the exports. *)
let with_tracing trace trace_jaeger f =
  if trace = None && trace_jaeger = None then f ()
  else begin
    Obs.enable ();
    let finish () =
      (match trace with
      | Some path ->
          Obs.Export.write_chrome path;
          Printf.printf "trace: wrote %s (%d spans, %d dropped)\n" path
            (List.length (Obs.Export.spans ()))
            (Obs.Export.dropped ())
      | None -> ());
      match
        match (trace_jaeger, trace) with
        | Some p, _ -> Some p
        | None, Some p -> Some (p ^ ".jaeger.json")
        | None, None -> None
      with
      | Some path ->
          Obs.Export.write_jaeger path;
          Printf.printf "trace: wrote %s\n" path
      | None -> ()
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let load_for name qps duration =
  let entry = Registry.by_name name in
  let _, med, _ = entry.Registry.loads in
  let qps = match qps with Some q -> q | None -> med in
  (entry, Ditto_loadgen.Workload.to_load entry.Registry.workload ~qps ~duration ())

let print_tiers out =
  Ditto_util.Table.print ~title:"per-tier metrics" ~header:Metrics.header
    (List.map (fun (_, m) -> Metrics.pp_row m) out.Runner.per_tier);
  let s = out.Runner.end_to_end in
  Printf.printf "end-to-end: avg=%.3fms p95=%.3fms p99=%.3fms n=%d\n"
    (1e3 *. s.Ditto_util.Stats.mean) (1e3 *. s.Ditto_util.Stats.p95)
    (1e3 *. s.Ditto_util.Stats.p99) s.Ditto_util.Stats.count

let run_app name qps platform trace trace_jaeger =
  with_tracing trace trace_jaeger @@ fun () ->
  let entry, load = load_for name qps 1.0 in
  let plat = Platform.by_name platform in
  let t0 = Unix.gettimeofday () in
  let out = Runner.run (Runner.config plat) ~load (entry.Registry.spec ()) in
  print_tiers out;
  Printf.printf "(wall %.1fs)\n" (Unix.gettimeofday () -. t0)

let clone_app name qps no_tune save trace trace_jaeger =
  with_tracing trace trace_jaeger @@ fun () ->
  let entry, load = load_for name qps 0.8 in
  let t0 = Unix.gettimeofday () in
  let result =
    Pipeline.clone ~tune:(not no_tune) ~platform:Platform.a ~load (entry.Registry.spec ())
  in
  Printf.printf "cloned %s in %.1fs\n\n" name (Unix.gettimeofday () -. t0);
  (match save with
  | Some path ->
      Ditto_profile.Profile_io.save path result.Pipeline.profile;
      Printf.printf "profile written to %s\n" path
  | None -> ());
  (match result.Pipeline.dag with
  | Some dag -> Format.printf "RPC dependency graph:@.%a@." Ditto_trace.Dag.pp dag
  | None -> ());
  List.iter
    (fun tp -> Format.printf "%a@." Ditto_profile.Tier_profile.pp tp)
    result.Pipeline.profile.Ditto_profile.Tier_profile.tiers;
  let c = Pipeline.validate ~platform:Platform.a ~load ~label:"validate" result in
  List.iter
    (fun (tier, errs) ->
      Printf.printf "%s errors: %s\n" tier
        (String.concat "  " (List.map (fun (a, e) -> Printf.sprintf "%s=%.1f%%" a e) errs)))
    (Pipeline.comparison_errors c)

let stages_app name qps trace trace_jaeger =
  with_tracing trace trace_jaeger @@ fun () ->
  let entry, load = load_for name qps 0.8 in
  let result = Pipeline.clone ~platform:Platform.a ~load (entry.Registry.spec ()) in
  let cfg = Runner.config Platform.a in
  let tier0 = (List.hd result.Pipeline.original.Spec.tiers).Spec.tier_name in
  let row label spec =
    let out = Runner.run cfg ~load spec in
    let m = Runner.tier_metrics out tier0 in
    [ label;
      Printf.sprintf "%.3f" m.Metrics.ipc;
      Printf.sprintf "%.3f" (1e3 *. m.Metrics.lat_p99) ]
  in
  let rows =
    row "original" result.Pipeline.original
    :: List.map
         (fun stage ->
           row
             (Printf.sprintf "stage %c" stage)
             (Ditto_gen.Clone.synth_app
                ~features:(Ditto_gen.Body_gen.stage stage)
                result.Pipeline.profile))
         [ 'A'; 'B'; 'C'; 'D'; 'E'; 'F'; 'G'; 'H' ]
    @ [ row "tuned" result.Pipeline.synthetic ]
  in
  Ditto_util.Table.print ~title:"Fig. 9-style decomposition"
    ~header:[ "stage"; "IPC"; "p99 ms" ]
    rows

(* Fidelity under failure: clone, then run original and clone side by side
   under a fault plan (the three canonical plans, a --plan file, or the one
   selected by --only) with identical resilience armour, and print the
   failure scorecards. The final "chaos-totals:" line aggregates the
   resilience counters of every run (both sides) so CI can grep-assert the
   chaos machinery actually fired. *)
let chaos_app name qps no_tune plan_file only trace trace_jaeger =
  let module Plan = Ditto_fault.Plan in
  with_tracing trace trace_jaeger @@ fun () ->
  let entry, load = load_for name qps 0.8 in
  let t0 = Unix.gettimeofday () in
  let result =
    Pipeline.clone ~tune:(not no_tune) ~platform:Platform.a ~load (entry.Registry.spec ())
  in
  Printf.printf "cloned %s in %.1fs\n" name (Unix.gettimeofday () -. t0);
  let tiers =
    List.map (fun (t : Spec.tier) -> t.Spec.tier_name) result.Pipeline.original.Spec.tiers
  in
  let plans =
    match plan_file with
    | Some path -> (
        match
          let p = Plan.load path in
          Plan.validate ~tiers p;
          p
        with
        | p -> [ p ]
        | exception Sys_error msg ->
            Printf.eprintf "chaos: %s\n" msg;
            exit 2
        | exception Ditto_util.Jsonx.Parse_error msg ->
            Printf.eprintf "chaos: %s: %s\n" path msg;
            exit 2
        | exception Invalid_argument msg ->
            Printf.eprintf "chaos: %s: %s\n" path msg;
            exit 2)
    | None -> Plan.canonical ~duration:load.Service.duration ~tiers
  in
  let plans =
    match only with
    | None -> plans
    | Some sel -> (
        match List.filter (fun (p : Plan.t) -> p.Plan.plan_name = sel) plans with
        | [] ->
            Printf.eprintf "chaos: no plan named %S (have: %s)\n" sel
              (String.concat ", " (List.map (fun (p : Plan.t) -> p.Plan.plan_name) plans));
            exit 2
        | ps -> ps)
  in
  let shed = ref 0 and retries = ref 0 and timeouts = ref 0 in
  let errors = ref 0 and drops = ref 0 in
  let tally (r : Service.result) =
    errors := !errors + r.Service.errors;
    retries := !retries + r.Service.client_retries;
    timeouts := !timeouts + r.Service.client_timeouts;
    List.iter
      (fun (o : Service.tier_obs) ->
        shed := !shed + o.Service.obs_shed;
        retries := !retries + o.Service.obs_retries;
        timeouts := !timeouts + o.Service.obs_timeouts;
        drops := !drops + o.Service.obs_link_drops)
      r.Service.tiers
  in
  List.iter
    (fun (plan : Plan.t) ->
      let ch =
        Pipeline.validate_under ~platform:Platform.a ~load ~plan
          ~label:(Printf.sprintf "chaos:%s" plan.Plan.plan_name)
          result
      in
      Ditto_report.Scorecard.print
        (Ditto_report.Scorecard.of_chaos ~app:name ?tuning:result.Pipeline.tuning ch);
      tally ch.Pipeline.actual_service;
      tally ch.Pipeline.synthetic_service)
    plans;
  Printf.printf "chaos-totals: shed=%d retries=%d timeouts=%d errors=%d drops=%d\n" !shed
    !retries !timeouts !errors !drops

(* Transient fidelity: clone the app, enable the windowed telemetry layer,
   run original and clone side by side under one fault plan, and print the
   per-window scorecard (worst/mean window error, time-to-reconvergence).
   The closing "TIMELINE-SMOKE-OK" line is what CI greps; reconverge_ms is
   nonzero whenever the plan fired a fault (reconvergence is measured to
   the end of a window, never less than the remainder of the fault
   window). *)
let timeline_app name qps no_tune plan_file openmetrics trace =
  let module Plan = Ditto_fault.Plan in
  let module Ts = Ditto_obs.Timeseries in
  let module Tl = Ditto_report.Timeline in
  let module J = Ditto_util.Jsonx in
  if trace <> None then Obs.enable ();
  let entry, load = load_for name qps 0.8 in
  let t0 = Unix.gettimeofday () in
  let result =
    Pipeline.clone ~tune:(not no_tune) ~platform:Platform.a ~load (entry.Registry.spec ())
  in
  Printf.printf "cloned %s in %.1fs\n" name (Unix.gettimeofday () -. t0);
  let tiers =
    List.map (fun (t : Spec.tier) -> t.Spec.tier_name) result.Pipeline.original.Spec.tiers
  in
  let plan =
    match plan_file with
    | Some path -> (
        match
          let p = Plan.load path in
          Plan.validate ~tiers p;
          p
        with
        | p -> p
        | exception Sys_error msg ->
            Printf.eprintf "timeline: %s\n" msg;
            exit 2
        | exception Ditto_util.Jsonx.Parse_error msg ->
            Printf.eprintf "timeline: %s: %s\n" path msg;
            exit 2
        | exception Invalid_argument msg ->
            Printf.eprintf "timeline: %s: %s\n" path msg;
            exit 2)
    | None -> Plan.kill_mid_tier ~duration:load.Service.duration ~tiers ()
  in
  Ts.enable ();
  let ch =
    Fun.protect ~finally:Ts.disable (fun () ->
        Pipeline.validate_under ~platform:Platform.a ~load ~plan
          ~label:(Printf.sprintf "timeline:%s" plan.Plan.plan_name)
          result)
  in
  match
    ( ch.Pipeline.actual_service.Service.timeline,
      ch.Pipeline.synthetic_service.Service.timeline )
  with
  | Some actual, Some clone ->
      let tl = Tl.of_timelines ~app:name ~plan:plan.Plan.plan_name ~actual ~clone () in
      Tl.print tl;
      (match openmetrics with
      | Some path ->
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc
                (Ts.openmetrics
                   [
                     ([ ("app", name); ("side", "actual") ], actual);
                     ([ ("app", name); ("side", "clone") ], clone);
                   ]));
          Printf.printf "openmetrics: wrote %s\n" path
      | None -> ());
      (match trace with
      | Some path ->
          (* Counter tracks (simulated-clock timestamps) land in their own
             per-side processes next to the wall-clock pipeline spans. *)
          let counters =
            Ts.chrome_events ~pid:100 ~process_name:(name ^ " actual (sim time)") actual
            @ Ts.chrome_events ~pid:101 ~process_name:(name ^ " clone (sim time)") clone
          in
          let doc =
            match Obs.Export.to_chrome () with
            | J.Obj kvs ->
                J.Obj
                  (List.map
                     (fun (k, v) ->
                       match (k, v) with
                       | "traceEvents", J.List evs -> (k, J.List (evs @ counters))
                       | _ -> (k, v))
                     kvs)
            | j -> j
          in
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc (J.to_string doc));
          Printf.printf "trace: wrote %s (%d span(s) + %d counter event(s))\n" path
            (List.length (Obs.Export.spans ()))
            (List.length counters)
      | None -> ());
      Printf.printf
        "TIMELINE-SMOKE-OK windows=%d worst=%.1f%% mean=%.1f%% reconverge_ms=%d reconverged=%b\n"
        (List.length tl.Tl.rows) tl.Tl.worst_window_err_pct tl.Tl.mean_window_err_pct
        (int_of_float (Float.round (tl.Tl.reconverge_seconds *. 1e3)))
        tl.Tl.reconverged
  | _ ->
      Printf.eprintf "timeline: no telemetry collected (Timeseries disabled?)\n";
      exit 1

(* Request-level critical-path tracing: clone the app, enable deterministic
   request sampling, run original and clone side by side (steady state, or
   under a --plan fault file), extract each sampled request's critical
   path, and print the divergence scorecard ranking tier x segment pairs
   by contribution error. The closing "CRITPATH-SMOKE-OK" line is what CI
   greps; --jaeger exports the actual side's sampled span trees in the
   same Jaeger JSON the inspect-trace command re-ingests. *)
let critpath_app name qps no_tune plan_file jaeger =
  let module Plan = Ditto_fault.Plan in
  let module Rq = Ditto_obs.Reqtrace in
  let module Cp = Ditto_report.Critpath in
  let entry, load = load_for name qps 0.8 in
  let t0 = Unix.gettimeofday () in
  let result =
    Pipeline.clone ~tune:(not no_tune) ~platform:Platform.a ~load (entry.Registry.spec ())
  in
  Printf.printf "cloned %s in %.1fs\n" name (Unix.gettimeofday () -. t0);
  let tiers =
    List.map (fun (t : Spec.tier) -> t.Spec.tier_name) result.Pipeline.original.Spec.tiers
  in
  let plan =
    match plan_file with
    | Some path -> (
        match
          let p = Plan.load path in
          Plan.validate ~tiers p;
          p
        with
        | p -> Some p
        | exception Sys_error msg ->
            Printf.eprintf "critpath: %s\n" msg;
            exit 2
        | exception Ditto_util.Jsonx.Parse_error msg ->
            Printf.eprintf "critpath: %s: %s\n" path msg;
            exit 2
        | exception Invalid_argument msg ->
            Printf.eprintf "critpath: %s: %s\n" path msg;
            exit 2)
    | None -> None
  in
  Rq.enable ();
  let c =
    Fun.protect ~finally:Rq.disable (fun () ->
        match plan with
        | None -> Pipeline.validate ~platform:Platform.a ~load ~label:"critpath" result
        | Some plan ->
            let ch =
              Pipeline.validate_under ~platform:Platform.a ~load ~plan
                ~label:(Printf.sprintf "critpath:%s" plan.Plan.plan_name)
                result
            in
            ch.Pipeline.comparison)
  in
  match
    (c.Pipeline.actual_service.Service.reqtrace, c.Pipeline.synthetic_service.Service.reqtrace)
  with
  | Some actual, Some clone_rq ->
      let d =
        Cp.of_comparison ~app:name
          ?plan:(Option.map (fun (p : Plan.t) -> p.Plan.plan_name) plan)
          c
      in
      Cp.print d;
      (match jaeger with
      | Some path ->
          Rq.write_jaeger path actual;
          Printf.printf "jaeger: wrote %s (%d sampled trace(s) of %d request(s))\n" path
            (Rq.sampled actual) (Rq.requests_seen actual)
      | None -> ());
      let worst_s, err =
        match Cp.worst d with
        | Some r -> (Printf.sprintf "%s/%s" r.Cp.d_tier r.Cp.d_segment, r.Cp.d_err_pp)
        | None -> ("none", 0.0)
      in
      Printf.printf "CRITPATH-SMOKE-OK actual_traces=%d clone_traces=%d worst=%s err_pp=%+.2f\n"
        (Rq.sampled actual) (Rq.sampled clone_rq) worst_s err
  | _ ->
      Printf.eprintf "critpath: no request traces collected (Reqtrace disabled?)\n";
      exit 1

(* Overload robustness: clone the app, drive an open-loop surge profile
   (default flash-crowd; --profile takes a canonical name or a Rate JSON
   file) against original and clone with autoscaling and load shedding
   armed — optionally composed with a --plan fault file — and print the
   surge-fidelity scorecard (shed-rate error, replica-trajectory match,
   saturation-onset timing). The closing "SURGE-SMOKE-OK" line is what CI
   greps: scale_out_events and shed_total prove the controller and the
   shedder actually fired, reconverge_ms that the surge registered as a
   transient. *)
let surge_app name qps no_tune profile_sel plan_file queue_bound openmetrics =
  let module Plan = Ditto_fault.Plan in
  let module Ts = Ditto_obs.Timeseries in
  let module Sg = Ditto_report.Surge in
  let module Profile = Ditto_loadgen.Profile in
  let entry, load = load_for name qps 0.8 in
  let t0 = Unix.gettimeofday () in
  let result =
    Pipeline.clone ~tune:(not no_tune) ~platform:Platform.a ~load (entry.Registry.spec ())
  in
  Printf.printf "cloned %s in %.1fs\n" name (Unix.gettimeofday () -. t0);
  let tiers =
    List.map (fun (t : Spec.tier) -> t.Spec.tier_name) result.Pipeline.original.Spec.tiers
  in
  let duration = load.Service.duration in
  let profile =
    match profile_sel with
    | None -> Profile.flash_crowd ~duration ()
    | Some sel when List.mem sel Profile.names -> Profile.by_name ~duration sel
    | Some path -> (
        match Profile.load path with
        | p -> p
        | exception Sys_error msg ->
            Printf.eprintf "surge: %s\n" msg;
            exit 2
        | exception Ditto_util.Jsonx.Parse_error msg ->
            Printf.eprintf "surge: %s: %s\n" path msg;
            exit 2
        | exception Invalid_argument msg ->
            Printf.eprintf "surge: %s: %s\n" path msg;
            exit 2)
  in
  let plan =
    match plan_file with
    | Some path -> (
        match
          let p = Plan.load path in
          Plan.validate ~duration ~tiers p;
          p
        with
        | p -> Some p
        | exception Sys_error msg ->
            Printf.eprintf "surge: %s\n" msg;
            exit 2
        | exception Ditto_util.Jsonx.Parse_error msg ->
            Printf.eprintf "surge: %s: %s\n" path msg;
            exit 2
        | exception Invalid_argument msg ->
            Printf.eprintf "surge: %s: %s\n" path msg;
            exit 2)
    | None -> None
  in
  Ts.enable ();
  let ch =
    Fun.protect ~finally:Ts.disable (fun () ->
        Pipeline.validate_under ~platform:Platform.a ~load
          ~resilience:(Spec.resilient ~queue_bound ())
          ~autoscale:(Spec.autoscale ())
          ?plan ~profile
          ~label:(Printf.sprintf "surge:%s" name)
          result)
  in
  let sc = Sg.of_chaos ~app:name ch in
  Sg.print sc;
  (match openmetrics with
  | Some path -> (
      match
        ( ch.Pipeline.actual_service.Service.timeline,
          ch.Pipeline.synthetic_service.Service.timeline )
      with
      | Some actual, Some clone ->
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc
                (Ts.openmetrics
                   [
                     ([ ("app", name); ("side", "actual") ], actual);
                     ([ ("app", name); ("side", "clone") ], clone);
                   ]));
          Printf.printf "openmetrics: wrote %s\n" path
      | _ -> ())
  | None -> ());
  Printf.printf
    "SURGE-SMOKE-OK windows=%d worst=%.1f%% shed_err_pp=%.2f scale_out_events=%d shed_total=%d \
     reconverge_ms=%d\n"
    (List.length sc.Sg.timeline.Ditto_report.Timeline.rows)
    sc.Sg.timeline.Ditto_report.Timeline.worst_window_err_pct sc.Sg.shed_fraction_err_pp
    (sc.Sg.scale_out_actual + sc.Sg.scale_out_clone)
    (sc.Sg.shed_total_actual + sc.Sg.shed_total_clone)
    (int_of_float
       (Float.round (sc.Sg.timeline.Ditto_report.Timeline.reconverge_seconds *. 1e3)))

(* Scale round trip: generate a production-shaped graph, export its traces
   through the Jaeger writer, recover the DAG from the re-ingested spans,
   check it against the ground truth, then clone and validate the graph
   end-to-end. The closing "SYNTH-SMOKE-OK" line is what CI asserts. *)
let synth_topology n qps platform no_tune save =
  let module Topology = Ditto_gen.Topology in
  let t0 = Unix.gettimeofday () in
  let t = Topology.generate (Topology.default ~tiers:n ()) in
  Printf.printf "generated %s: %d tiers, %d edges, depth %d\n" t.Topology.name n
    (List.length t.Topology.dag.Ditto_trace.Dag.edges)
    (Array.fold_left max 0 t.Topology.layers);
  let json = Ditto_trace.Jaeger.to_string (Topology.spans t) in
  let recovered = Ditto_trace.Dag.of_spans (Ditto_trace.Jaeger.of_string json) in
  if not (Topology.same_shape t.Topology.dag recovered) then begin
    Printf.eprintf "synth: Jaeger round trip lost the DAG shape\n";
    exit 1
  end;
  Printf.printf "trace round trip: %d bytes of Jaeger JSON -> DAG shape preserved\n"
    (String.length json);
  (* Enough default traffic that per-tier request counts converge even on
     rare request-type paths: relative counter errors on a handful of
     requests are single-event noise, not fidelity. *)
  let qps = match qps with Some q -> q | None -> Float.max 50.0 (200_000.0 /. float_of_int n) in
  let load =
    Ditto_loadgen.Workload.to_load Ditto_loadgen.Workload.wrk2_open ~qps ~duration:0.5 ()
  in
  let plat = Platform.by_name platform in
  let result = Pipeline.clone ~tune:(not no_tune) ~platform:plat ~load t.Topology.spec in
  (match save with
  | Some path ->
      Ditto_profile.Profile_io.save path result.Pipeline.profile;
      Printf.printf "profile saved to %s\n" path
  | None -> ());
  let c = Pipeline.validate ~platform:plat ~load ~label:"synth-validate" result in
  let card =
    Ditto_report.Scorecard.of_comparison ~app:t.Topology.name ?tuning:result.Pipeline.tuning c
  in
  Ditto_report.Scorecard.print card;
  let wall = Unix.gettimeofday () -. t0 in
  Printf.printf "peak heap events: %d\n" (Ditto_sim.Engine.global_peak_heap_events ());
  Printf.printf "SYNTH-SMOKE-OK tiers=%d pass=%b wall=%.1fs\n" n
    (Ditto_report.Scorecard.passed card)
    wall

let synth_profile path qps platform no_tune save =
  match Ditto_gen.Topology.parse_name path with
  | Some n -> synth_topology n qps platform no_tune save
  | None ->
      let profile = Ditto_profile.Profile_io.load path in
      let clone = Ditto_gen.Clone.synth_app profile in
      Printf.printf "regenerated %s (%d tiers) from %s\n" clone.Spec.app_name
        (List.length clone.Spec.tiers) path;
      let qps = Option.value ~default:1000.0 qps in
      let load = Service.load ~qps ~duration:1.0 () in
      let out = Runner.run (Runner.config (Platform.by_name platform)) ~load clone in
      print_tiers out

let export_trace name out_path =
  let entry, _ = load_for name None 0.5 in
  let app = entry.Registry.spec () in
  let load = Service.load ~qps:1000.0 ~duration:0.4 () in
  let result = Pipeline.clone ~tune:false ~platform:Platform.a ~load app in
  let tier = List.hd result.Pipeline.synthetic.Spec.tiers in
  let n = Ditto_gen.Trace_export.save ~path:out_path ~tier ~requests:50 ~seed:1 () in
  Printf.printf "wrote %d accesses to %s\n" n out_path

(* Re-parse an exported trace, proving the telemetry is machine-readable:
   Chrome files get event counts per domain; Jaeger files are fed through
   the DAG recovery the cloning pipeline itself uses. Both end with the
   top-10 slowest spans (name, duration, tier/app attribute). *)
let print_slowest spans =
  (* spans: (name, duration_us, attr) *)
  let top =
    List.stable_sort (fun (_, a, _) (_, b, _) -> compare (b : float) a) spans
    |> List.filteri (fun i _ -> i < 10)
  in
  if top <> [] then
    Ditto_util.Table.print ~title:"slowest spans"
      ~header:[ "span"; "ms"; "tier" ]
      (List.map
         (fun (name, dur_us, attr) ->
           [ name; Printf.sprintf "%.3f" (dur_us /. 1e3); attr ])
         top)

let inspect_trace path =
  let module J = Ditto_util.Jsonx in
  let src =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error msg ->
      Printf.eprintf "inspect-trace: %s\n" msg;
      exit 1
  in
  (* The span attribute naming the service: microservice spans carry "tier",
     pipeline spans carry "app". *)
  let attr_str v = match v with J.Str s -> Some s | _ -> None in
  let tier_of obj =
    match attr_str (J.member "tier" obj) with
    | Some s -> s
    | None -> Option.value ~default:"-" (attr_str (J.member "app" obj))
  in
  try
    match J.of_string src with
    | exception J.Parse_error msg ->
        Printf.eprintf "inspect-trace: %s: %s\n" path msg;
        exit 1
    | json -> (
        match J.member "traceEvents" json with
        | J.List events ->
            let spans = List.filter (fun e -> J.member "ph" e = J.Str "X") events in
            let tids =
              List.sort_uniq compare (List.map (fun e -> J.to_int (J.member "tid" e)) spans)
            in
            Printf.printf "%s: Chrome trace, %d span event(s) across %d domain(s)\n" path
              (List.length spans) (List.length tids);
            List.iter
              (fun tid ->
                let n =
                  List.length (List.filter (fun e -> J.to_int (J.member "tid" e) = tid) spans)
                in
                Printf.printf "  domain %d: %d span(s)\n" tid n)
              tids;
            (* Counter ("C"-phase) series, e.g. the windowed telemetry
               tracks: summarise instead of ignoring. *)
            let counters = List.filter (fun e -> J.member "ph" e = J.Str "C") events in
            if counters <> [] then begin
              let tbl : (string, float list) Hashtbl.t = Hashtbl.create 32 in
              List.iter
                (fun e ->
                  let name = J.to_str (J.member "name" e) in
                  match J.member "args" e with
                  | J.Obj kvs ->
                      List.iter
                        (fun (k, v) ->
                          match v with
                          | J.Num x ->
                              let key = if k = "value" then name else name ^ "." ^ k in
                              let cur = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
                              Hashtbl.replace tbl key (x :: cur)
                          | _ -> ())
                        kvs
                  | _ -> ())
                counters;
              let rows =
                Hashtbl.fold (fun k vs acc -> (k, vs) :: acc) tbl []
                |> List.sort (fun (a, _) (b, _) -> compare a b)
                |> List.map (fun (k, vs) ->
                       let n = float_of_int (List.length vs) in
                       let sum = List.fold_left ( +. ) 0.0 vs in
                       [
                         k;
                         Printf.sprintf "%d" (List.length vs);
                         Printf.sprintf "%.3f" (List.fold_left Float.min infinity vs);
                         Printf.sprintf "%.3f" (sum /. n);
                         Printf.sprintf "%.3f" (List.fold_left Float.max neg_infinity vs);
                       ])
              in
              Printf.printf "  %d counter event(s) in %d series\n" (List.length counters)
                (List.length rows);
              Ditto_util.Table.print ~title:"counter series"
                ~header:[ "series"; "samples"; "min"; "mean"; "max" ]
                rows
            end;
            print_slowest
              (List.map
                 (fun e ->
                   ( J.to_str (J.member "name" e),
                     J.to_float (J.member "dur" e),
                     tier_of (J.member "args" e) ))
                 spans)
        | _ -> (
            match Ditto_trace.Jaeger.of_json json with
            | exception J.Parse_error msg ->
                Printf.eprintf "inspect-trace: %s: not a Chrome or Jaeger trace: %s\n" path msg;
                exit 1
            | exception Ditto_trace.Jaeger.Ingest_error { span_id; reason } ->
                Printf.eprintf "inspect-trace: %s: bad span %s: %s\n" path span_id reason;
                exit 1
            | spans ->
                let traces =
                  List.sort_uniq compare
                    (List.map (fun (s : Ditto_trace.Span.t) -> s.Ditto_trace.Span.trace_id) spans)
                in
                Printf.printf "%s: Jaeger trace, %d span(s) in %d trace(s)\n" path
                  (List.length spans) (List.length traces);
                (match Ditto_trace.Dag.roots spans with
                | [] -> ()
                | roots ->
                    (* Report every root, not just the one the DAG recovery
                       happens to pick first: a critpath export has one
                       root per sampled request, so identical
                       (service, span-count) shapes are aggregated. *)
                    let groups : (string * int, int) Hashtbl.t = Hashtbl.create 16 in
                    List.iter
                      (fun ((s : Ditto_trace.Span.t), count) ->
                        let key = (s.Ditto_trace.Span.service, count) in
                        let c = Option.value ~default:0 (Hashtbl.find_opt groups key) in
                        Hashtbl.replace groups key (c + 1))
                      roots;
                    Printf.printf "  %d root(s):\n" (List.length roots);
                    Hashtbl.fold (fun k v acc -> (k, v) :: acc) groups []
                    |> List.sort compare
                    |> List.iter (fun ((service, count), n) ->
                           Printf.printf "    %s: %d trace(s) x %d span(s)\n" service n count);
                    let dag = Ditto_trace.Dag.of_spans spans in
                    Printf.printf "  DAG: entry=%s services=%d edges=%d\n"
                      dag.Ditto_trace.Dag.entry
                      (List.length dag.Ditto_trace.Dag.services)
                      (List.length dag.Ditto_trace.Dag.edges));
                (* Re-ingested Span.t drops duration, so read the raw spans. *)
                let tag_of s key =
                  List.find_map
                    (fun t ->
                      if J.member "key" t = J.Str key then attr_str (J.member "value" t)
                      else None)
                    (J.to_list (J.member "tags" s))
                in
                print_slowest
                  (J.member "data" json |> J.to_list
                  |> List.concat_map (fun trace -> J.to_list (J.member "spans" trace))
                  |> List.map (fun s ->
                         let tag =
                           match tag_of s "tier" with
                           | Some t -> t
                           | None -> Option.value ~default:"-" (tag_of s "app")
                         in
                         ( J.to_str (J.member "operationName" s),
                           J.to_float (J.member "duration" s),
                           tag )))))
  with J.Parse_error msg ->
    Printf.eprintf "inspect-trace: %s: malformed trace: %s\n" path msg;
    exit 1

(* Sampled profiler (fidelity observatory): clone an app, run the clone (or
   the original with --original) with Ditto_obs.Profiler enabled, and write
   the on-CPU profile as a collapsed-stack file for flamegraph.pl/inferno,
   plus a top-N table. The sampler is quantized, so the file's weights must
   reconcile with the measured on-CPU time — a >1% gap is a bug and exits
   non-zero. *)
let profile_app name qps original out top period =
  let module Profiler = Ditto_obs.Profiler in
  let module Flame = Ditto_report.Flame in
  let entry, load = load_for name qps 0.8 in
  let spec =
    if original then entry.Registry.spec ()
    else begin
      let t0 = Unix.gettimeofday () in
      let result =
        Pipeline.clone ~tune:false ~platform:Platform.a ~load (entry.Registry.spec ())
      in
      Printf.printf "cloned %s (untuned) in %.1fs\n" name (Unix.gettimeofday () -. t0);
      result.Pipeline.synthetic
    end
  in
  Profiler.reset ();
  (match period with Some p -> Profiler.set_cpu_period p | None -> ());
  Profiler.enable ();
  let out_run = Runner.run (Runner.config Platform.a) ~load spec in
  Profiler.disable ();
  (* Ground truth: the sampler covers exactly the measurement-phase requests
     plus the background threads, whose on-CPU time the traces record. *)
  let measured =
    List.fold_left
      (fun acc (_, (r : Measure.tier_result)) ->
        Array.fold_left (fun a tr -> a +. Measure.trace_cpu_seconds tr) acc r.Measure.traces
        +. Option.fold ~none:0.0 ~some:Measure.trace_cpu_seconds r.Measure.background_trace)
      0.0 out_run.Runner.measured
  in
  let cpu = Profiler.samples Profiler.Cpu in
  let sampled = Profiler.total_seconds Profiler.Cpu in
  let path = Option.value ~default:(name ^ ".folded") out in
  let lines = Flame.write_collapsed ~path cpu in
  Printf.printf "%s: wrote %s (%d stack(s); flamegraph.pl %s > %s.svg)\n"
    (if original then name else name ^ " (clone)")
    path lines path name;
  Flame.print_top ~n:top cpu;
  let sim = Profiler.total_seconds Profiler.Sim in
  if sim > 0.0 then
    Printf.printf "DES track: %.1f ms of virtual time sampled (not in %s)\n" (1e3 *. sim) path;
  let err = if measured > 0.0 then Float.abs (sampled -. measured) /. measured else 1.0 in
  Printf.printf "on-CPU: measured %.3f ms, sampled %.3f ms (err %.3f%%)\n" (1e3 *. measured)
    (1e3 *. sampled) (100.0 *. err);
  if err > 0.01 then begin
    Printf.eprintf "profile: sampled time diverges from measured on-CPU time by >1%%\n";
    exit 1
  end

let list_apps () =
  (* Committed-gate summary per app: which baseline key families (steady
     scorecard, chaos, timeline, critpath) and wall budgets the regression
     gate in bench/baselines/default.json already pins for it. *)
  let module Baseline = Ditto_report.Baseline in
  let baseline =
    let path = "bench/baselines/default.json" in
    if Sys.file_exists path then
      match Baseline.load path with b -> Some b | exception _ -> None
    else None
  in
  let gates name =
    match baseline with
    | None -> "(no baseline)"
    | Some b ->
        let keys = List.map fst b.Baseline.metrics in
        let has prefix = List.exists (fun k -> String.starts_with ~prefix k) keys in
        let fams =
          List.filter_map
            (fun (label, prefix) -> if has prefix then Some label else None)
            [
              ("scorecard", Printf.sprintf "scorecards/%s/" name);
              ("chaos", Printf.sprintf "chaos/%s/" name);
              ("timeline", Printf.sprintf "timeline/%s/" name);
              ("critpath", Printf.sprintf "critpath/%s/" name);
              ("surge", Printf.sprintf "surge/%s/" name);
              (* synth graph wall budgets: experiments/synth100/... for
                 app "synth-100" *)
              ( "wall",
                Printf.sprintf "experiments/%s/wall_seconds"
                  (String.concat "" (String.split_on_char '-' name)) );
            ]
        in
        if fams = [] then "-" else String.concat "+" fams
  in
  List.iter
    (fun (e : Registry.entry) ->
      let low, med, high = e.Registry.loads in
      let tiers = List.length (e.Registry.spec ()).Spec.tiers in
      Printf.printf
        "%-18s %4d tier%s  %-10s loads: %.0f / %.0f / %.0f qps; gates: %-24s focus: %s\n"
        e.Registry.name tiers
        (if tiers = 1 then " " else "s")
        e.Registry.workload.Ditto_loadgen.Workload.gen_name low med high (gates e.Registry.name)
        (String.concat ", " e.Registry.focus_tiers))
    (Registry.all @ Registry.extras)

open Cmdliner

let app_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP" ~doc:"Application name")

let qps_arg = Arg.(value & opt (some float) None & info [ "qps" ] ~doc:"Offered load (QPS)")

let platform_arg =
  Arg.(value & opt string "A" & info [ "platform" ] ~doc:"Platform (A, B or C)")

let no_tune_arg = Arg.(value & flag & info [ "no-tune" ] ~doc:"Skip fine tuning")

let save_arg =
  Arg.(value & opt (some string) None & info [ "save" ] ~doc:"Write the profile to FILE")

let path_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Profile file")

let out_arg =
  Arg.(required & pos 1 (some string) None & info [] ~docv:"OUT" ~doc:"Output trace file")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Record the pipeline's own spans and write a Chrome trace-event file")

let trace_jaeger_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-jaeger" ] ~docv:"FILE"
        ~doc:"Write the recorded spans as Jaeger JSON (default: \\$(b,FILE).jaeger.json)")

let trace_file_arg =
  Arg.(
    required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Chrome or Jaeger trace file")

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Run an original model service and print metrics")
    Term.(const run_app $ app_arg $ qps_arg $ platform_arg $ trace_arg $ trace_jaeger_arg)

let clone_cmd =
  Cmd.v
    (Cmd.info "clone" ~doc:"Clone a service and validate the clone")
    Term.(
      const clone_app $ app_arg $ qps_arg $ no_tune_arg $ save_arg $ trace_arg $ trace_jaeger_arg)

let synth_cmd =
  Cmd.v
    (Cmd.info "synth"
       ~doc:
         "Regenerate and run a clone from a shared profile file, or — given a synth-<n> name — \
          generate an n-tier production-shaped graph, round-trip its traces through Jaeger, and \
          clone + validate it")
    Term.(const synth_profile $ path_arg $ qps_arg $ platform_arg $ no_tune_arg $ save_arg)

let export_cmd =
  Cmd.v
    (Cmd.info "export-trace" ~doc:"Export a clone's memory trace (Ramulator format)")
    Term.(const export_trace $ app_arg $ out_arg)

let stages_cmd =
  Cmd.v
    (Cmd.info "stages" ~doc:"Fig. 9-style accuracy decomposition")
    Term.(const stages_app $ app_arg $ qps_arg $ trace_arg $ trace_jaeger_arg)

let inspect_cmd =
  Cmd.v
    (Cmd.info "inspect-trace" ~doc:"Parse an exported trace back and summarise it")
    Term.(const inspect_trace $ trace_file_arg)

let plan_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "plan" ] ~docv:"FILE" ~doc:"Fault plan JSON file (default: the canonical plans)")

let only_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "only" ] ~docv:"PLAN"
        ~doc:"Run only the named canonical plan (kill-mid-tier, brownout-leaf, flaky-link)")

let chaos_cmd =
  Cmd.v
    (Cmd.info "chaos" ~doc:"Validate fidelity under failure (fault plans + resilience)")
    Term.(
      const chaos_app $ app_arg $ qps_arg $ no_tune_arg $ plan_arg $ only_arg $ trace_arg
      $ trace_jaeger_arg)

let openmetrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "openmetrics" ] ~docv:"FILE"
        ~doc:"Write both windowed timelines (actual + clone) as an OpenMetrics text exposition")

let timeline_cmd =
  Cmd.v
    (Cmd.info "timeline"
       ~doc:
         "Transient fidelity: windowed DES-clock telemetry under a fault plan (default \
          kill-mid-tier), with time-to-reconvergence")
    Term.(
      const timeline_app $ app_arg $ qps_arg $ no_tune_arg $ plan_arg $ openmetrics_arg
      $ trace_arg)

let jaeger_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "jaeger" ] ~docv:"FILE"
        ~doc:
          "Export the actual side's sampled request span trees as Jaeger JSON (re-ingestable \
           by $(b,inspect-trace))")

let critpath_cmd =
  Cmd.v
    (Cmd.info "critpath"
       ~doc:
         "Request-level critical-path tracing: actual-vs-clone divergence attribution per tier \
          x segment")
    Term.(const critpath_app $ app_arg $ qps_arg $ no_tune_arg $ plan_arg $ jaeger_arg)

let profile_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile" ] ~docv:"NAME|FILE"
        ~doc:
          "Rate profile: a canonical name (flash-crowd, diurnal, ramp-to-saturation) or a Rate \
           JSON file (default: flash-crowd)")

let queue_bound_arg =
  Arg.(
    value & opt int 48
    & info [ "queue-bound" ] ~docv:"N"
        ~doc:"Per-replica shed threshold overlaid on every tier (default 48)")

let surge_cmd =
  Cmd.v
    (Cmd.info "surge"
       ~doc:
         "Overload robustness: open-loop surge profile vs original and clone, with autoscaling \
          and graceful degradation armed")
    Term.(
      const surge_app $ app_arg $ qps_arg $ no_tune_arg $ profile_file_arg $ plan_arg
      $ queue_bound_arg $ openmetrics_arg)

let original_arg =
  Arg.(value & flag & info [ "original" ] ~doc:"Profile the original instead of its clone")

let prof_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE" ~doc:"Collapsed-stack output file (default APP.folded)")

let top_arg =
  Arg.(value & opt int 10 & info [ "top" ] ~doc:"Rows in the top-stacks table")

let period_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "period" ] ~docv:"CYCLES" ~doc:"CPU sampling period in cycles (default 20000)")

let profile_cmd =
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Sampled profile of a clone's execution, as a collapsed-stack flamegraph file")
    Term.(
      const profile_app $ app_arg $ qps_arg $ original_arg $ prof_out_arg $ top_arg $ period_arg)

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List model applications") Term.(const list_apps $ const ())

let () =
  let info = Cmd.info "ditto-cli" ~doc:"Ditto (ASPLOS'23) reproduction CLI" in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd; clone_cmd; synth_cmd; export_cmd; stages_cmd; chaos_cmd; timeline_cmd;
            critpath_cmd; surge_cmd; inspect_cmd; profile_cmd; list_cmd;
          ]))
