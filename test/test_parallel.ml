(* The multicore execution layer: Pool semantics (ordering, exception
   propagation, nesting, sizing) and the end-to-end guarantee the rest of
   the codebase builds on — a clone/validate pipeline run is bit-identical
   whatever the pool size, because parallelism lives across runs and every
   run builds its own engine, RNG streams and hardware state. *)
open Ditto_app
module Pool = Ditto_util.Pool
module Pipeline = Ditto_core.Pipeline
module Platform = Ditto_uarch.Platform

let with_pool size f =
  let pool = Pool.create ~size () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* {1 Pool.map semantics} *)

let test_map_order size () =
  with_pool size (fun pool ->
      let xs = List.init 25 (fun i -> i) in
      Alcotest.(check (list int))
        "order preserved" (List.map (fun x -> x * x) xs)
        (Pool.map pool (fun x -> x * x) xs);
      Alcotest.(check (list int)) "empty" [] (Pool.map pool (fun x -> x) []);
      Alcotest.(check (list int)) "singleton" [ 9 ] (Pool.map pool (fun x -> x + 2) [ 7 ]);
      Alcotest.(check int) "size" size (Pool.size pool))

let test_map_exception size () =
  with_pool size (fun pool ->
      Alcotest.check_raises "re-raised at join" (Failure "boom") (fun () ->
          ignore (Pool.map pool (fun x -> if x = 7 then failwith "boom" else x) [ 1; 7; 9 ]));
      (* the pool survives a failed batch *)
      Alcotest.(check (list int)) "usable after failure" [ 2; 4 ]
        (Pool.map pool (fun x -> 2 * x) [ 1; 2 ]))

(* {2 Failure paths}

   The speculative tuner and the chaos harness lean on these guarantees: a
   raising task must not leak domains or wedge the joiner, and when several
   candidates fail the winner is decided by submission order, not by which
   domain happened to crash first. *)

exception Boom of int

let test_map_exception_order size () =
  (* Task 0 fails slowly, task 1 fails instantly: with 2+ domains task 1's
     exception lands first in wall-clock order, but the join must still
     re-raise task 0's — the deterministic, pool-size-independent choice. *)
  with_pool size (fun pool ->
      Alcotest.check_raises "lowest submission index wins" (Boom 0) (fun () ->
          ignore
            (Pool.map pool
               (fun i ->
                 if i = 0 then begin
                   Unix.sleepf 0.05;
                   raise (Boom 0)
                 end
                 else raise (Boom i))
               [ 0; 1; 2; 3 ])))

let test_map_failure_runs_batch_to_completion size () =
  (* One failure must not cancel siblings: every task still executes
     exactly once (joiners would otherwise wait on abandoned slots). *)
  with_pool size (fun pool ->
      let ran = Array.make 8 false in
      (try
         ignore
           (Pool.map pool
              (fun i ->
                ran.(i) <- true;
                if i = 3 then failwith "mid-batch")
              (List.init 8 (fun i -> i)))
       with Failure _ -> ());
      Alcotest.(check bool) "all siblings ran" true (Array.for_all Fun.id ran))

let test_nested_map_failure size () =
  (* An inner map raising from inside a pool task: the inner join re-raises
     on the worker, the outer join re-raises to the caller, and nothing
     deadlocks — the helping scheme keeps draining through the unwind. *)
  with_pool size (fun pool ->
      Alcotest.check_raises "inner failure surfaces" (Boom 42) (fun () ->
          ignore
            (Pool.map pool
               (fun i ->
                 List.length
                   (Pool.map pool
                      (fun j -> if i = 2 && j = 1 then raise (Boom 42) else j)
                      [ 0; 1; 2 ]))
               (List.init 6 (fun i -> i))));
      (* repeated failing batches leave no wedged worker behind *)
      for _ = 1 to 3 do
        try ignore (Pool.map pool (fun () -> failwith "again") [ (); (); () ])
        with Failure _ -> ()
      done;
      Alcotest.(check (list int)) "pool still maps" [ 1; 2; 3 ]
        (Pool.map pool succ [ 0; 1; 2 ]))

let test_both_failure () =
  with_pool 4 (fun pool ->
      Alcotest.check_raises "left thunk's exception" (Boom 1) (fun () ->
          ignore (Pool.both pool (fun () -> raise (Boom 1)) (fun () -> 2)));
      let a, b = Pool.both pool (fun () -> 5) (fun () -> 6) in
      Alcotest.(check (pair int int)) "usable after failure" (5, 6) (a, b))

let test_both () =
  with_pool 4 (fun pool ->
      let a, b = Pool.both pool (fun () -> 1 + 2) (fun () -> "x" ^ "y") in
      Alcotest.(check int) "left" 3 a;
      Alcotest.(check string) "right" "xy" b)

let test_nested_map () =
  (* A map issued from inside a pool task (clone -> tuner candidates) must
     not deadlock even when tasks outnumber domains: the submitting domain
     helps drain the queue. *)
  with_pool 4 (fun pool ->
      let sums =
        Pool.map pool
          (fun i ->
            List.fold_left ( + ) 0 (Pool.map pool (fun j -> (10 * i) + j) [ 1; 2; 3; 4; 5 ]))
          (List.init 8 (fun i -> i))
      in
      Alcotest.(check (list int))
        "nested results"
        (List.init 8 (fun i -> (50 * i) + 15))
        sums)

let test_env_sizing () =
  Unix.putenv "DITTO_DOMAINS" "3";
  Alcotest.(check int) "env size" 3 (Pool.default_size ());
  with_pool (Pool.default_size ()) (fun pool ->
      Alcotest.(check int) "create honors env via default_size" 3 (Pool.size pool));
  Unix.putenv "DITTO_DOMAINS" "0";
  Alcotest.(check bool) "clamped to >= 1" true (Pool.default_size () >= 1);
  Unix.putenv "DITTO_DOMAINS" "1"

(* {1 Pipeline determinism across pool sizes} *)

let clone_with pool =
  let app = Ditto_apps.Redis.spec () in
  let load = Service.load ~qps:20000.0 ~open_loop:false ~duration:0.3 () in
  let r =
    Pipeline.clone ~pool ~requests:60 ~profile_requests:40 ~seed:7 ~platform:Platform.a ~load
      app
  in
  let v = Pipeline.validate ~pool ~platform:Platform.a ~load ~label:"det" r in
  (r, v)

let seq_parallel =
  lazy
    (let seq = with_pool 1 clone_with in
     let par = with_pool 4 clone_with in
     (seq, par))

let test_clone_determinism () =
  let (r1, _), (r4, _) = Lazy.force seq_parallel in
  let params r =
    match r.Pipeline.tuning with
    | Some (rep : Ditto_tune.Tuner.report) -> rep.Ditto_tune.Tuner.final_params
    | None -> Alcotest.fail "tuning report missing"
  in
  Alcotest.(check bool) "identical final_params" true (params r1 = params r4);
  Alcotest.(check int) "same iteration count"
    (List.length (Option.get r1.Pipeline.tuning).Ditto_tune.Tuner.iterations)
    (List.length (Option.get r4.Pipeline.tuning).Ditto_tune.Tuner.iterations)

let test_validate_determinism () =
  let (_, v1), (_, v4) = Lazy.force seq_parallel in
  Alcotest.(check bool) "actual end-to-end identical" true
    (v1.Pipeline.actual_end_to_end = v4.Pipeline.actual_end_to_end);
  Alcotest.(check bool) "synthetic end-to-end identical" true
    (v1.Pipeline.synthetic_end_to_end = v4.Pipeline.synthetic_end_to_end);
  Alcotest.(check bool) "per-tier metrics identical" true
    (v1.Pipeline.actual = v4.Pipeline.actual && v1.Pipeline.synthetic = v4.Pipeline.synthetic)

let test_speculation_reported () =
  let (r1, _), _ = Lazy.force seq_parallel in
  match r1.Pipeline.tuning with
  | Some rep -> Alcotest.(check int) "default K" 2 rep.Ditto_tune.Tuner.speculation
  | None -> Alcotest.fail "tuning report missing"

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map order (size 1)" `Quick (test_map_order 1);
          Alcotest.test_case "map order (size 4)" `Quick (test_map_order 4);
          Alcotest.test_case "map exception (size 1)" `Quick (test_map_exception 1);
          Alcotest.test_case "map exception (size 4)" `Quick (test_map_exception 4);
          Alcotest.test_case "exception order (size 1)" `Quick (test_map_exception_order 1);
          Alcotest.test_case "exception order (size 4)" `Quick (test_map_exception_order 4);
          Alcotest.test_case "failure runs batch (size 1)" `Quick
            (test_map_failure_runs_batch_to_completion 1);
          Alcotest.test_case "failure runs batch (size 4)" `Quick
            (test_map_failure_runs_batch_to_completion 4);
          Alcotest.test_case "nested map failure (size 1)" `Quick (test_nested_map_failure 1);
          Alcotest.test_case "nested map failure (size 4)" `Quick (test_nested_map_failure 4);
          Alcotest.test_case "both failure" `Quick test_both_failure;
          Alcotest.test_case "both" `Quick test_both;
          Alcotest.test_case "nested map" `Quick test_nested_map;
          Alcotest.test_case "env sizing" `Quick test_env_sizing;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "clone across pool sizes" `Slow test_clone_determinism;
          Alcotest.test_case "validate across pool sizes" `Slow test_validate_determinism;
          Alcotest.test_case "speculation reported" `Quick test_speculation_reported;
        ] );
    ]
