(* The multicore execution layer: Pool semantics (ordering, exception
   propagation, nesting, sizing) and the end-to-end guarantee the rest of
   the codebase builds on — a clone/validate pipeline run is bit-identical
   whatever the pool size, because parallelism lives across runs and every
   run builds its own engine, RNG streams and hardware state. *)
open Ditto_app
module Pool = Ditto_util.Pool
module Pipeline = Ditto_core.Pipeline
module Platform = Ditto_uarch.Platform

let with_pool size f =
  let pool = Pool.create ~size () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* {1 Pool.map semantics} *)

let test_map_order size () =
  with_pool size (fun pool ->
      let xs = List.init 25 (fun i -> i) in
      Alcotest.(check (list int))
        "order preserved" (List.map (fun x -> x * x) xs)
        (Pool.map pool (fun x -> x * x) xs);
      Alcotest.(check (list int)) "empty" [] (Pool.map pool (fun x -> x) []);
      Alcotest.(check (list int)) "singleton" [ 9 ] (Pool.map pool (fun x -> x + 2) [ 7 ]);
      Alcotest.(check int) "size" size (Pool.size pool))

let test_map_exception size () =
  with_pool size (fun pool ->
      Alcotest.check_raises "re-raised at join" (Failure "boom") (fun () ->
          ignore (Pool.map pool (fun x -> if x = 7 then failwith "boom" else x) [ 1; 7; 9 ]));
      (* the pool survives a failed batch *)
      Alcotest.(check (list int)) "usable after failure" [ 2; 4 ]
        (Pool.map pool (fun x -> 2 * x) [ 1; 2 ]))

(* {2 Failure paths}

   The speculative tuner and the chaos harness lean on these guarantees: a
   raising task must not leak domains or wedge the joiner, and when several
   candidates fail the winner is decided by submission order, not by which
   domain happened to crash first. *)

exception Boom of int

let test_map_exception_order size () =
  (* Task 0 fails slowly, task 1 fails instantly: with 2+ domains task 1's
     exception lands first in wall-clock order, but the join must still
     re-raise task 0's — the deterministic, pool-size-independent choice. *)
  with_pool size (fun pool ->
      Alcotest.check_raises "lowest submission index wins" (Boom 0) (fun () ->
          ignore
            (Pool.map pool
               (fun i ->
                 if i = 0 then begin
                   Unix.sleepf 0.05;
                   raise (Boom 0)
                 end
                 else raise (Boom i))
               [ 0; 1; 2; 3 ])))

let test_map_failure_runs_batch_to_completion size () =
  (* One failure must not cancel siblings: every task still executes
     exactly once (joiners would otherwise wait on abandoned slots). *)
  with_pool size (fun pool ->
      let ran = Array.make 8 false in
      (try
         ignore
           (Pool.map pool
              (fun i ->
                ran.(i) <- true;
                if i = 3 then failwith "mid-batch")
              (List.init 8 (fun i -> i)))
       with Failure _ -> ());
      Alcotest.(check bool) "all siblings ran" true (Array.for_all Fun.id ran))

let test_nested_map_failure size () =
  (* An inner map raising from inside a pool task: the inner join re-raises
     on the worker, the outer join re-raises to the caller, and nothing
     deadlocks — the helping scheme keeps draining through the unwind. *)
  with_pool size (fun pool ->
      Alcotest.check_raises "inner failure surfaces" (Boom 42) (fun () ->
          ignore
            (Pool.map pool
               (fun i ->
                 List.length
                   (Pool.map pool
                      (fun j -> if i = 2 && j = 1 then raise (Boom 42) else j)
                      [ 0; 1; 2 ]))
               (List.init 6 (fun i -> i))));
      (* repeated failing batches leave no wedged worker behind *)
      for _ = 1 to 3 do
        try ignore (Pool.map pool (fun () -> failwith "again") [ (); (); () ])
        with Failure _ -> ()
      done;
      Alcotest.(check (list int)) "pool still maps" [ 1; 2; 3 ]
        (Pool.map pool succ [ 0; 1; 2 ]))

let test_both_failure () =
  with_pool 4 (fun pool ->
      Alcotest.check_raises "left thunk's exception" (Boom 1) (fun () ->
          ignore (Pool.both pool (fun () -> raise (Boom 1)) (fun () -> 2)));
      let a, b = Pool.both pool (fun () -> 5) (fun () -> 6) in
      Alcotest.(check (pair int int)) "usable after failure" (5, 6) (a, b))

let test_both () =
  with_pool 4 (fun pool ->
      let a, b = Pool.both pool (fun () -> 1 + 2) (fun () -> "x" ^ "y") in
      Alcotest.(check int) "left" 3 a;
      Alcotest.(check string) "right" "xy" b)

let test_nested_map () =
  (* A map issued from inside a pool task (clone -> tuner candidates) must
     not deadlock even when tasks outnumber domains: the submitting domain
     helps drain the queue. *)
  with_pool 4 (fun pool ->
      let sums =
        Pool.map pool
          (fun i ->
            List.fold_left ( + ) 0 (Pool.map pool (fun j -> (10 * i) + j) [ 1; 2; 3; 4; 5 ]))
          (List.init 8 (fun i -> i))
      in
      Alcotest.(check (list int))
        "nested results"
        (List.init 8 (fun i -> (50 * i) + 15))
        sums)

(* {1 Futures} *)

let test_future_basic size () =
  with_pool size (fun pool ->
      let f1 = Pool.submit pool (fun () -> 6 * 7) in
      let f2 = Pool.submit pool (fun () -> String.concat "-" [ "a"; "b" ]) in
      Alcotest.(check int) "first future" 42 (Pool.await pool f1);
      Alcotest.(check string) "second future" "a-b" (Pool.await pool f2);
      (* await is idempotent *)
      Alcotest.(check int) "re-await" 42 (Pool.await pool f1))

let test_future_exception size () =
  with_pool size (fun pool ->
      let f = Pool.submit pool (fun () -> raise (Boom 7)) in
      Alcotest.check_raises "exception surfaces at await" (Boom 7) (fun () ->
          ignore (Pool.await pool f));
      Alcotest.check_raises "and again on re-await" (Boom 7) (fun () ->
          ignore (Pool.await pool f));
      let ok = Pool.submit pool (fun () -> 5) in
      Alcotest.(check int) "pool usable after failed future" 5 (Pool.await pool ok))

let test_future_chain size () =
  (* A dependent future awaiting its input (the bench's clone -> validate
     DAG edge): the helping scheme keeps it deadlock-free at any size. *)
  with_pool size (fun pool ->
      let a = Pool.submit pool (fun () -> 10) in
      let b = Pool.submit pool (fun () -> Pool.await pool a + 5) in
      Alcotest.(check int) "chained futures" 15 (Pool.await pool b))

(* {1 Stats: steal counts, busy and idle time} *)

let test_stats_accumulate () =
  let s0 = Pool.stats () in
  with_pool 2 (fun pool ->
      ignore
        (Pool.map pool
           (fun x ->
             Unix.sleepf 0.01;
             x)
           [ 1; 2; 3; 4 ]));
  let s1 = Pool.stats () in
  Alcotest.(check int) "batch queued" (s0.Pool.tasks_queued + 4) s1.Pool.tasks_queued;
  Alcotest.(check int) "every task ran on a worker or was stolen"
    (s0.Pool.tasks_by_workers + s0.Pool.tasks_stolen + 4)
    (s1.Pool.tasks_by_workers + s1.Pool.tasks_stolen);
  Alcotest.(check bool) "busy time covers the sleeps" true
    (s1.Pool.busy_seconds -. s0.Pool.busy_seconds >= 0.04);
  Alcotest.(check bool) "idle time monotonic" true
    (s1.Pool.idle_seconds >= s0.Pool.idle_seconds)

let test_stats_sequential_busy () =
  (* The sequential fallback still charges busy time (a 1-domain host would
     otherwise report zero parallel efficiency). *)
  let s0 = Pool.stats () in
  with_pool 1 (fun pool -> ignore (Pool.map pool (fun x -> Unix.sleepf 0.01; x) [ 1; 2 ]));
  let s1 = Pool.stats () in
  Alcotest.(check int) "nothing queued on the sequential path" s0.Pool.tasks_queued
    s1.Pool.tasks_queued;
  Alcotest.(check bool) "busy time accrues anyway" true
    (s1.Pool.busy_seconds -. s0.Pool.busy_seconds >= 0.02)

let test_env_sizing () =
  Unix.putenv "DITTO_DOMAINS" "3";
  Alcotest.(check int) "env size" 3 (Pool.default_size ());
  with_pool (Pool.default_size ()) (fun pool ->
      Alcotest.(check int) "create honors env via default_size" 3 (Pool.size pool));
  Unix.putenv "DITTO_DOMAINS" "0";
  Alcotest.(check bool) "clamped to >= 1" true (Pool.default_size () >= 1);
  Unix.putenv "DITTO_DOMAINS" "1"

(* {1 Pipeline determinism across pool sizes} *)

let clone_with pool =
  let app = Ditto_apps.Redis.spec () in
  let load = Service.load ~qps:20000.0 ~open_loop:false ~duration:0.3 () in
  let r =
    Pipeline.clone ~pool ~requests:60 ~profile_requests:40 ~seed:7 ~platform:Platform.a ~load
      app
  in
  let v = Pipeline.validate ~pool ~platform:Platform.a ~load ~label:"det" r in
  (r, v)

let seq_parallel =
  lazy
    (let seq = with_pool 1 clone_with in
     let par = with_pool 4 clone_with in
     (seq, par))

(* The memoization layer (measurement memo, tuner revalidation cache,
   machine pooling) must be invisible to results: the {memo on, memo off} x
   {sequential, 4-domain} matrix agrees bit-for-bit. The memo-on pair is
   [seq_parallel]; this computes the memo-off pair. *)
let seq_parallel_memo_off =
  lazy
    (Ditto_uarch.Memo.set_enabled false;
     Fun.protect
       ~finally:(fun () -> Ditto_uarch.Memo.set_enabled true)
       (fun () ->
         let seq = with_pool 1 clone_with in
         let par = with_pool 4 clone_with in
         (seq, par)))

let test_memo_pool_matrix () =
  let (r_on1, v_on1), (r_on4, v_on4) = Lazy.force seq_parallel in
  let (r_off1, v_off1), (r_off4, v_off4) = Lazy.force seq_parallel_memo_off in
  let params r =
    match r.Pipeline.tuning with
    | Some (rep : Ditto_tune.Tuner.report) -> rep.Ditto_tune.Tuner.final_params
    | None -> Alcotest.fail "tuning report missing"
  in
  let baseline_p = params r_on1 and baseline_v = v_on1 in
  List.iteri
    (fun i (r, v) ->
      let tag s = Printf.sprintf "%s (variant %d)" s i in
      Alcotest.(check bool) (tag "final params match") true (params r = baseline_p);
      Alcotest.(check bool) (tag "per-tier metrics match") true
        (v.Pipeline.actual = baseline_v.Pipeline.actual
        && v.Pipeline.synthetic = baseline_v.Pipeline.synthetic);
      Alcotest.(check bool) (tag "end-to-end match") true
        (v.Pipeline.actual_end_to_end = baseline_v.Pipeline.actual_end_to_end
        && v.Pipeline.synthetic_end_to_end = baseline_v.Pipeline.synthetic_end_to_end))
    [ (r_on4, v_on4); (r_off1, v_off1); (r_off4, v_off4) ]

let test_clone_determinism () =
  let (r1, _), (r4, _) = Lazy.force seq_parallel in
  let params r =
    match r.Pipeline.tuning with
    | Some (rep : Ditto_tune.Tuner.report) -> rep.Ditto_tune.Tuner.final_params
    | None -> Alcotest.fail "tuning report missing"
  in
  Alcotest.(check bool) "identical final_params" true (params r1 = params r4);
  Alcotest.(check int) "same iteration count"
    (List.length (Option.get r1.Pipeline.tuning).Ditto_tune.Tuner.iterations)
    (List.length (Option.get r4.Pipeline.tuning).Ditto_tune.Tuner.iterations)

let test_validate_determinism () =
  let (_, v1), (_, v4) = Lazy.force seq_parallel in
  Alcotest.(check bool) "actual end-to-end identical" true
    (v1.Pipeline.actual_end_to_end = v4.Pipeline.actual_end_to_end);
  Alcotest.(check bool) "synthetic end-to-end identical" true
    (v1.Pipeline.synthetic_end_to_end = v4.Pipeline.synthetic_end_to_end);
  Alcotest.(check bool) "per-tier metrics identical" true
    (v1.Pipeline.actual = v4.Pipeline.actual && v1.Pipeline.synthetic = v4.Pipeline.synthetic)

(* A generated wide graph (40 tiers > the runner's 32-tier sharding
   threshold) goes down the tier-sharded measurement path; the shard split
   is keyed on tier index, not pool size, so the clone/validate pair must
   stay bit-identical between a sequential and a 4-domain pool. Untuned:
   the tuner's determinism is already covered by the redis matrix. *)
let synth_clone_with pool =
  let app = (Ditto_gen.Topology.generate (Ditto_gen.Topology.default ~tiers:40 ())).Ditto_gen.Topology.spec in
  let load = Service.load ~qps:120.0 ~open_loop:true ~duration:0.3 () in
  let r =
    Pipeline.clone ~pool ~tune:false ~requests:60 ~profile_requests:40 ~seed:7
      ~platform:Platform.a ~load app
  in
  let v = Pipeline.validate ~pool ~platform:Platform.a ~load ~label:"det" r in
  (r, v)

let test_synth_determinism () =
  let _, v1 = with_pool 1 synth_clone_with in
  let _, v4 = with_pool 4 synth_clone_with in
  Alcotest.(check bool) "sharded per-tier metrics identical" true
    (v1.Pipeline.actual = v4.Pipeline.actual && v1.Pipeline.synthetic = v4.Pipeline.synthetic);
  Alcotest.(check bool) "end-to-end identical" true
    (v1.Pipeline.actual_end_to_end = v4.Pipeline.actual_end_to_end
    && v1.Pipeline.synthetic_end_to_end = v4.Pipeline.synthetic_end_to_end)

(* Telemetry must be invisible to simulation results: the windowed
   collector only adds read-only, zero-virtual-time ticker events, so a
   telemetry-on run agrees bit-for-bit with the telemetry-off baseline
   ([seq_parallel]) and across pool sizes. *)
let telemetry_clone_with pool =
  Ditto_obs.Timeseries.enable ();
  Fun.protect ~finally:Ditto_obs.Timeseries.disable (fun () -> clone_with pool)

let test_telemetry_invariance () =
  let (_, v_off), _ = Lazy.force seq_parallel in
  let _, v1 = with_pool 1 telemetry_clone_with in
  let _, v4 = with_pool 4 telemetry_clone_with in
  Alcotest.(check bool) "telemetry-on matches telemetry-off baseline" true
    (v1.Pipeline.actual = v_off.Pipeline.actual
    && v1.Pipeline.synthetic = v_off.Pipeline.synthetic
    && v1.Pipeline.actual_end_to_end = v_off.Pipeline.actual_end_to_end
    && v1.Pipeline.synthetic_end_to_end = v_off.Pipeline.synthetic_end_to_end);
  Alcotest.(check bool) "telemetry-on identical across pool sizes" true
    (v1.Pipeline.actual = v4.Pipeline.actual
    && v1.Pipeline.synthetic = v4.Pipeline.synthetic
    && v1.Pipeline.actual_end_to_end = v4.Pipeline.actual_end_to_end
    && v1.Pipeline.synthetic_end_to_end = v4.Pipeline.synthetic_end_to_end)

(* Request tracing must be just as invisible: sampling hashes a private
   per-run sequence counter (never a simulation RNG stream) and recording
   performs no engine effects, so a tracing-on run matches the
   tracing-off baseline bit-for-bit — and the sampled traces themselves
   are pinned across pool sizes. *)
let reqtrace_clone_with pool =
  Ditto_obs.Reqtrace.enable ();
  Fun.protect ~finally:Ditto_obs.Reqtrace.disable (fun () -> clone_with pool)

let test_reqtrace_invariance () =
  let (_, v_off), _ = Lazy.force seq_parallel in
  let _, v1 = with_pool 1 reqtrace_clone_with in
  let _, v4 = with_pool 4 reqtrace_clone_with in
  Alcotest.(check bool) "tracing-on matches tracing-off baseline" true
    (v1.Pipeline.actual = v_off.Pipeline.actual
    && v1.Pipeline.synthetic = v_off.Pipeline.synthetic
    && v1.Pipeline.actual_end_to_end = v_off.Pipeline.actual_end_to_end
    && v1.Pipeline.synthetic_end_to_end = v_off.Pipeline.synthetic_end_to_end);
  Alcotest.(check bool) "tracing-on identical across pool sizes" true
    (v1.Pipeline.actual = v4.Pipeline.actual
    && v1.Pipeline.synthetic = v4.Pipeline.synthetic
    && v1.Pipeline.actual_end_to_end = v4.Pipeline.actual_end_to_end
    && v1.Pipeline.synthetic_end_to_end = v4.Pipeline.synthetic_end_to_end);
  let jaeger_of (v : Pipeline.comparison) =
    match v.Pipeline.actual_service.Service.reqtrace with
    | Some c ->
        Alcotest.(check bool) "sampled some requests" true (Ditto_obs.Reqtrace.sampled c > 0);
        Ditto_util.Jsonx.to_string (Ditto_obs.Reqtrace.jaeger c)
    | None -> Alcotest.fail "tracing enabled but no collector on the actual run"
  in
  Alcotest.(check bool) "sampled span trees bit-identical across pool sizes" true
    (jaeger_of v1 = jaeger_of v4)

(* A constant rate profile must be a true no-op: the arrival loop takes
   the pre-profile code path, so a profile-carrying load agrees
   bit-for-bit with the profile-free baseline ([seq_parallel]) and across
   pool sizes. *)
let constant_profile_clone_with pool =
  let app = Ditto_apps.Redis.spec () in
  let load =
    Service.load ~qps:20000.0 ~open_loop:false ~duration:0.3 ~profile:Rate.constant ()
  in
  let r =
    Pipeline.clone ~pool ~requests:60 ~profile_requests:40 ~seed:7 ~platform:Platform.a ~load
      app
  in
  (r, Pipeline.validate ~pool ~platform:Platform.a ~load ~label:"det" r)

let test_constant_profile_invariance () =
  let (_, v_off), _ = Lazy.force seq_parallel in
  let _, v1 = with_pool 1 constant_profile_clone_with in
  let _, v4 = with_pool 4 constant_profile_clone_with in
  Alcotest.(check bool) "constant profile matches profile-free baseline" true
    (v1.Pipeline.actual = v_off.Pipeline.actual
    && v1.Pipeline.synthetic = v_off.Pipeline.synthetic
    && v1.Pipeline.actual_end_to_end = v_off.Pipeline.actual_end_to_end
    && v1.Pipeline.synthetic_end_to_end = v_off.Pipeline.synthetic_end_to_end);
  Alcotest.(check bool) "constant profile identical across pool sizes" true
    (v1.Pipeline.actual = v4.Pipeline.actual
    && v1.Pipeline.synthetic = v4.Pipeline.synthetic
    && v1.Pipeline.actual_end_to_end = v4.Pipeline.actual_end_to_end
    && v1.Pipeline.synthetic_end_to_end = v4.Pipeline.synthetic_end_to_end)

let test_speculation_reported () =
  let (r1, _), _ = Lazy.force seq_parallel in
  match r1.Pipeline.tuning with
  | Some rep -> Alcotest.(check int) "default K" 2 rep.Ditto_tune.Tuner.speculation
  | None -> Alcotest.fail "tuning report missing"

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map order (size 1)" `Quick (test_map_order 1);
          Alcotest.test_case "map order (size 4)" `Quick (test_map_order 4);
          Alcotest.test_case "map exception (size 1)" `Quick (test_map_exception 1);
          Alcotest.test_case "map exception (size 4)" `Quick (test_map_exception 4);
          Alcotest.test_case "exception order (size 1)" `Quick (test_map_exception_order 1);
          Alcotest.test_case "exception order (size 4)" `Quick (test_map_exception_order 4);
          Alcotest.test_case "failure runs batch (size 1)" `Quick
            (test_map_failure_runs_batch_to_completion 1);
          Alcotest.test_case "failure runs batch (size 4)" `Quick
            (test_map_failure_runs_batch_to_completion 4);
          Alcotest.test_case "nested map failure (size 1)" `Quick (test_nested_map_failure 1);
          Alcotest.test_case "nested map failure (size 4)" `Quick (test_nested_map_failure 4);
          Alcotest.test_case "both failure" `Quick test_both_failure;
          Alcotest.test_case "both" `Quick test_both;
          Alcotest.test_case "nested map" `Quick test_nested_map;
          Alcotest.test_case "future basic (size 1)" `Quick (test_future_basic 1);
          Alcotest.test_case "future basic (size 4)" `Quick (test_future_basic 4);
          Alcotest.test_case "future exception (size 1)" `Quick (test_future_exception 1);
          Alcotest.test_case "future exception (size 4)" `Quick (test_future_exception 4);
          Alcotest.test_case "future chain (size 1)" `Quick (test_future_chain 1);
          Alcotest.test_case "future chain (size 4)" `Quick (test_future_chain 4);
          Alcotest.test_case "stats accumulate" `Quick test_stats_accumulate;
          Alcotest.test_case "stats on sequential path" `Quick test_stats_sequential_busy;
          Alcotest.test_case "env sizing" `Quick test_env_sizing;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "clone across pool sizes" `Slow test_clone_determinism;
          Alcotest.test_case "validate across pool sizes" `Slow test_validate_determinism;
          Alcotest.test_case "memo x pool-size matrix" `Slow test_memo_pool_matrix;
          Alcotest.test_case "synth graph across pool sizes" `Slow test_synth_determinism;
          Alcotest.test_case "telemetry on/off x pool sizes" `Slow test_telemetry_invariance;
          Alcotest.test_case "reqtrace on/off x pool sizes" `Slow test_reqtrace_invariance;
          Alcotest.test_case "constant profile x pool sizes" `Slow
            test_constant_profile_invariance;
          Alcotest.test_case "speculation reported" `Quick test_speculation_reported;
        ] );
    ]
