(* Tests for the fidelity observatory (lib/report + Ditto_obs.Profiler):
   scorecards, the sampled profiler's reconciliation invariant, the
   collapsed-stack export, the baseline regression gate and the bench
   --json schema check. *)
open Ditto_app
module Pipeline = Ditto_core.Pipeline
module Platform = Ditto_uarch.Platform
module Profiler = Ditto_obs.Profiler
module Scorecard = Ditto_report.Scorecard
module Flame = Ditto_report.Flame
module Baseline = Ditto_report.Baseline
module Bench_json = Ditto_report.Bench_json
module J = Ditto_util.Jsonx

(* One small untuned redis clone + validation, shared by the scorecard and
   schema tests (cloning dominates this suite's runtime). *)
let comparison =
  lazy
    (let app = Ditto_apps.Redis.spec () in
     let load = Service.load ~qps:20_000.0 ~duration:0.3 () in
     let result =
       Pipeline.clone ~tune:false ~requests:60 ~profile_requests:40 ~platform:Platform.a ~load
         app
     in
     Pipeline.validate
       ~config_of:(fun p -> Runner.config ~requests:60 p)
       ~platform:Platform.a ~load ~label:"test" result)

(* {1 Scorecards} *)

let test_scorecard_rows () =
  let card = Scorecard.of_comparison ~app:"redis" (Lazy.force comparison) in
  Alcotest.(check string) "label from comparison" "test" card.Scorecard.label;
  let metrics = List.map (fun (r : Scorecard.row) -> r.Scorecard.metric) card.Scorecard.rows in
  List.iter
    (fun m ->
      Alcotest.(check bool) (m ^ " row present") true (List.mem m metrics))
    [ "ipc"; "insts"; "branch"; "l1i"; "l1d"; "l2"; "llc"; "throughput"; "lat_avg";
      "lat_p95"; "lat_p99" ];
  List.iter
    (fun (r : Scorecard.row) ->
      let expect =
        match r.Scorecard.metric with
        | "l1i" | "branch" -> Some "frontend"
        | "l1d" | "l2" | "llc" -> Some "data"
        | "ipc" | "insts" -> Some "work"
        | _ -> None
      in
      Alcotest.(check (option string))
        (r.Scorecard.metric ^ " knob group") expect r.Scorecard.knob_group;
      Alcotest.(check bool)
        (r.Scorecard.metric ^ " err consistent with pass") r.Scorecard.pass
        (r.Scorecard.err_pct <= card.Scorecard.target_pct))
    card.Scorecard.rows

let test_scorecard_attribution () =
  let report : Ditto_tune.Tuner.report =
    {
      Ditto_tune.Tuner.iterations = [];
      converged = true;
      final_params = [];
      speculation = 0;
      attribution = [ ("redis/data", 0.031); ("redis/frontend", 0.012) ];
    }
  in
  let card = Scorecard.of_comparison ~app:"redis" ~tuning:report (Lazy.force comparison) in
  (* percent, not fraction *)
  Alcotest.(check (float 1e-9)) "data residual in pct" 3.1
    (List.assoc "redis/data" card.Scorecard.attribution);
  Alcotest.(check (float 1e-9)) "frontend residual in pct" 1.2
    (List.assoc "redis/frontend" card.Scorecard.attribution)

let test_attribution_of_errors () =
  let errors =
    [
      ("redis/ipc", 0.02); ("redis/insts", 0.05); ("redis/branch", 0.01);
      ("redis/l1i", 0.07); ("redis/l1d", 0.03); ("redis/llc", 0.09);
      ("redis/unknown_counter", 0.9);
    ]
  in
  let a = Ditto_tune.Tuner.attribution_of_errors errors in
  Alcotest.(check (float 1e-12)) "work keeps the worst of ipc/insts" 0.05
    (List.assoc "redis/work" a);
  Alcotest.(check (float 1e-12)) "frontend keeps the worst of l1i/branch" 0.07
    (List.assoc "redis/frontend" a);
  Alcotest.(check (float 1e-12)) "data keeps the worst of l1d/llc" 0.09
    (List.assoc "redis/data" a);
  Alcotest.(check int) "unowned metrics dropped" 3 (List.length a)

(* {1 Sampled profiler} *)

let run_profiled () =
  let app = Ditto_apps.Redis.spec () in
  let load = Service.load ~qps:20_000.0 ~duration:0.3 () in
  Profiler.reset ();
  Profiler.enable ();
  let out = Runner.run (Runner.config ~requests:80 ~seed:5 Platform.a) ~load app in
  Profiler.disable ();
  out

let measured_cpu_seconds out =
  List.fold_left
    (fun acc (_, (r : Measure.tier_result)) ->
      Array.fold_left (fun a tr -> a +. Measure.trace_cpu_seconds tr) acc r.Measure.traces
      +. Option.fold ~none:0.0 ~some:Measure.trace_cpu_seconds r.Measure.background_trace)
    0.0 out.Runner.measured

let test_profiler_reconciles () =
  let out = run_profiled () in
  let measured = measured_cpu_seconds out in
  let sampled = Profiler.total_seconds Profiler.Cpu in
  Alcotest.(check bool) "measured some on-CPU time" true (measured > 0.0);
  let err = Float.abs (sampled -. measured) /. measured in
  if err > 0.01 then
    Alcotest.failf "sampled %.6fms vs measured %.6fms: err %.2f%% > 1%%" (1e3 *. sampled)
      (1e3 *. measured) (100.0 *. err);
  (* Every stack is rooted at the tier and phased. *)
  List.iter
    (fun (s : Profiler.sample) ->
      match s.Profiler.stack with
      | tier :: phase :: _ :: [] ->
          Alcotest.(check string) "tier frame" "redis" tier;
          Alcotest.(check bool) ("phase " ^ phase) true
            (List.mem phase [ "recv"; "handler"; "send"; "background" ])
      | st -> Alcotest.failf "unexpected stack shape: %s" (String.concat ";" st))
    (Profiler.samples Profiler.Cpu)

let test_profiler_off_records_nothing () =
  Profiler.reset ();
  Profiler.disable ();
  let app = Ditto_apps.Redis.spec () in
  let load = Service.load ~qps:20_000.0 ~duration:0.2 () in
  ignore (Runner.run (Runner.config ~requests:30 ~seed:6 Platform.a) ~load app);
  Alcotest.(check (float 0.0)) "cpu track empty" 0.0 (Profiler.total_seconds Profiler.Cpu);
  Alcotest.(check (float 0.0)) "sim track empty" 0.0 (Profiler.total_seconds Profiler.Sim)

let test_collapsed_format () =
  let out = run_profiled () in
  ignore out;
  let path = Filename.temp_file "ditto_prof" ".folded" in
  let lines_written = Flame.write_collapsed ~path (Profiler.samples Profiler.Cpu) in
  let lines = In_channel.with_open_text path In_channel.input_lines in
  Sys.remove path;
  Alcotest.(check int) "reported line count" lines_written (List.length lines);
  Alcotest.(check bool) "non-empty" true (lines <> []);
  List.iter
    (fun line ->
      (* "frame;frame;frame <positive-integer>" *)
      match String.rindex_opt line ' ' with
      | None -> Alcotest.failf "no weight separator: %S" line
      | Some i ->
          let stack = String.sub line 0 i in
          let count = String.sub line (i + 1) (String.length line - i - 1) in
          Alcotest.(check bool) ("integer weight: " ^ count) true
            (match int_of_string_opt count with Some n -> n > 0 | None -> false);
          Alcotest.(check bool) ("stack has frames: " ^ stack) true
            (String.length stack > 0 && String.split_on_char ';' stack <> []))
    lines

(* {1 Baseline diff} *)

let test_baseline_diff () =
  let base =
    Baseline.make
      ~tolerance_pp:[ ("default", 2.0); ("llc", 4.0) ]
      [
        ("mean_error_pct/IPC", 3.0);
        ("scorecards/redis/redis/llc", 10.0);
        ("scorecards/redis/redis/l1d", 5.0);
        ("mean_error_pct/gone", 1.0);
      ]
  in
  (* within tolerance, improvement, and a missing key: no regression *)
  let regs, checked =
    Baseline.diff base
      [
        ("mean_error_pct/IPC", 4.9);
        ("scorecards/redis/redis/llc", 13.9);
        ("scorecards/redis/redis/l1d", 1.0);
        ("mean_error_pct/new_axis", 50.0);
      ]
  in
  Alcotest.(check int) "three keys compared" 3 checked;
  Alcotest.(check int) "no regressions" 0 (List.length regs);
  (* past tolerance: flagged, with the per-metric tolerance applied *)
  let regs, _ =
    Baseline.diff base
      [ ("mean_error_pct/IPC", 5.1); ("scorecards/redis/redis/llc", 14.1) ]
  in
  Alcotest.(check int) "both regressed" 2 (List.length regs);
  let llc = List.find (fun (r : Baseline.regression) -> r.Baseline.key <> "mean_error_pct/IPC") regs in
  Alcotest.(check (float 1e-9)) "llc tolerance from last component" 4.0 llc.Baseline.allowed_pp

let test_baseline_merge () =
  let base = Baseline.make [ ("a", 1.0); ("b", 2.0) ] in
  let merged = Baseline.merge ~into:base [ ("b", 9.0); ("c", 3.0) ] in
  (* replaced, kept, extended — in that order of interest *)
  Alcotest.(check (float 1e-12)) "b replaced" 9.0 (List.assoc "b" merged.Baseline.metrics);
  Alcotest.(check (float 1e-12)) "a kept" 1.0 (List.assoc "a" merged.Baseline.metrics);
  Alcotest.(check (float 1e-12)) "c added" 3.0 (List.assoc "c" merged.Baseline.metrics);
  Alcotest.(check int) "no duplicates" 3 (List.length merged.Baseline.metrics)

let test_baseline_roundtrip () =
  let base = Baseline.make [ ("a/b", 1.5); ("c", 2.5) ] in
  let path = Filename.temp_file "ditto_base" ".json" in
  Baseline.save ~path base;
  let loaded = Baseline.load path in
  Sys.remove path;
  Alcotest.(check (float 1e-12)) "metric a/b" 1.5 (List.assoc "a/b" loaded.Baseline.metrics);
  Alcotest.(check (float 1e-12)) "default tolerance" 2.0 (Baseline.tolerance_for loaded "a/b");
  Alcotest.(check (float 1e-12)) "llc tolerance survives" 4.0
    (Baseline.tolerance_for loaded "x/llc")

(* {1 bench --json schema} *)

let sample_doc () =
  let card = Scorecard.of_comparison ~app:"redis" (Lazy.force comparison) in
  Bench_json.assemble
    {
      Bench_json.domains = 1;
      total_seconds = 1.25;
      experiments =
        [
          {
            Bench_json.exp_name = "scorecards";
            exp_seconds = 1.0;
            exp_domains = 1;
            exp_parallel_efficiency = 0.9;
          };
        ];
      clone_seconds = [ ("redis", 0.8) ];
      mean_error_pct = [ ("IPC", 3.5) ];
      tuning = [];
      metrics = [ ("sim.events", 1000.0) ];
      scorecards = [ card ];
      chaos = [ ("redis/kill-mid-tier/error_rate_pp", 1.2) ];
      timeline = [ ("redis/kill-mid-tier/worst_window_err_pct", 3.0) ];
      critpath = [ ("redis/steady/redis/service/share_err_pp", 1.1) ];
      surge = [ ("redis/flash-crowd/shed_fraction_err_pp", 0.7) ];
      peak_heap_events = 4096;
      tier_counts = [ ("redis", 1) ];
    }

let test_schema_valid () =
  let doc = sample_doc () in
  (match Bench_json.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "assembled doc rejected: %s" e);
  (* survives a JSON round-trip (what bench --check-json re-reads) *)
  match Bench_json.validate (J.of_string (J.to_string doc)) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "round-tripped doc rejected: %s" e

let test_schema_drift_rejected () =
  let doc = sample_doc () in
  let drop key = function
    | J.Obj kvs -> J.Obj (List.filter (fun (k, _) -> k <> key) kvs)
    | j -> j
  in
  let set key v = function
    | J.Obj kvs -> J.Obj (List.map (fun (k, old) -> (k, if k = key then v else old)) kvs)
    | j -> j
  in
  List.iter
    (fun (what, bad) ->
      match Bench_json.validate bad with
      | Ok () -> Alcotest.failf "%s accepted" what
      | Error _ -> ())
    [
      ("missing scorecards", drop "scorecards" doc);
      ("missing mean_error_pct", drop "mean_error_pct" doc);
      ("missing engine section", drop "engine" doc);
      ("missing tier_counts", drop "tier_counts" doc);
      ("missing timeline", drop "timeline" doc);
      ("stringly timeline value", set "timeline" (J.Obj [ ("k", J.Str "3") ]) doc);
      ("missing critpath", drop "critpath" doc);
      ("stringly critpath value", set "critpath" (J.Obj [ ("k", J.Str "3") ]) doc);
      ("old schema version", set "schema_version" (J.int 2) doc);
      ("stringly total_seconds", set "total_seconds" (J.Str "1.25") doc);
      ( "scorecard row missing err_pct",
        set "scorecards"
          (J.Obj
             [
               ( "redis",
                 J.Obj
                   [
                     ("app", J.Str "redis"); ("label", J.Str "t"); ("target_pct", J.Num 5.0);
                     ("passed", J.Bool true);
                     ("rows", J.List [ J.Obj [ ("tier", J.Str "redis") ] ]);
                     ("attribution", J.Obj []);
                   ] );
             ])
          doc );
    ]

(* The flattened metric keys the regression gate compares are derived from
   the same document the schema check accepts. *)
let test_flatten_keys () =
  let doc = sample_doc () in
  let flat = Baseline.flatten doc in
  Alcotest.(check bool) "mean_error_pct key present" true
    (List.mem_assoc "mean_error_pct/IPC" flat);
  Alcotest.(check bool) "scorecard row key present" true
    (List.mem_assoc "scorecards/redis/redis/ipc" flat);
  Alcotest.(check bool) "chaos key present" true
    (List.mem_assoc "chaos/redis/kill-mid-tier/error_rate_pp" flat);
  Alcotest.(check bool) "timeline key present" true
    (List.mem_assoc "timeline/redis/kill-mid-tier/worst_window_err_pct" flat);
  Alcotest.(check bool) "critpath key present" true
    (List.mem_assoc "critpath/redis/steady/redis/service/share_err_pp" flat);
  Alcotest.(check (float 1e-12)) "experiment wall key" 1.0
    (List.assoc "experiments/scorecards/wall_seconds" flat);
  Alcotest.(check (float 1e-12)) "total wall key" 1.25
    (List.assoc "experiments/total/wall_seconds" flat);
  Alcotest.(check bool) "all errors non-negative" true
    (List.for_all (fun (_, v) -> v >= 0.0) flat)

let () =
  Alcotest.run "report"
    [
      ( "scorecard",
        [
          Alcotest.test_case "rows and knob groups" `Slow test_scorecard_rows;
          Alcotest.test_case "attribution to pct" `Slow test_scorecard_attribution;
          Alcotest.test_case "attribution fold" `Quick test_attribution_of_errors;
        ] );
      ( "profiler",
        [
          Alcotest.test_case "reconciles with measured CPU" `Slow test_profiler_reconciles;
          Alcotest.test_case "off by default records nothing" `Slow
            test_profiler_off_records_nothing;
          Alcotest.test_case "collapsed format" `Slow test_collapsed_format;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "diff" `Quick test_baseline_diff;
          Alcotest.test_case "merge" `Quick test_baseline_merge;
          Alcotest.test_case "roundtrip" `Quick test_baseline_roundtrip;
        ] );
      ( "bench_json",
        [
          Alcotest.test_case "schema valid" `Slow test_schema_valid;
          Alcotest.test_case "schema drift rejected" `Slow test_schema_drift_rejected;
          Alcotest.test_case "flatten keys" `Slow test_flatten_keys;
        ] );
    ]
