(* Request-centric tracing and critical-path attribution: the Reqtrace
   collector (sampling determinism, per-type quota, finalize semantics),
   the Critpath backward walk (segment/RPC decomposition, retries, shed
   requests, tie-breaking), the divergence scorecard, and the Jaeger
   round trip through the ingest path inspect-trace uses. All tests
   fabricate traces through the public recorder API — no engine, no
   pool — so the suite is trivially deterministic across DITTO_DOMAINS. *)
module Rq = Ditto_obs.Reqtrace
module Cp = Ditto_report.Critpath
module J = Ditto_util.Jsonx

let feq = Alcotest.(check (float 1e-9))

(* A canonical single-tier request at [t0]:
     client [t0, t0+10ms], rpc [t0+1ms, t0+9ms] -> redis server
     (arrive t0+2ms, handle from t0+3ms, 4ms of service, reply t0+7ms).
   Critical path: redis/service 4ms, client/rpc:redis 3ms (the 8ms wait
   minus the 5ms the server held the request), redis/queue 1ms, and 2ms
   of client gaps -> "other". *)
let single_tier_trace ?(service_dur = 0.004) t ~t0 =
  let root = Rq.client_start t ~at:t0 in
  let rpc = Rq.rpc_begin t ~parent:root ~target:"redis" ~bytes:100 ~at:(t0 +. 0.001) in
  let srv =
    Rq.server_begin t ~parent:rpc ~tier:"redis" ~bytes:100 ~arrived:(t0 +. 0.002)
      ~at:(t0 +. 0.003)
  in
  Rq.server_op t ~span:srv ~op:0;
  Rq.segment t ~span:srv Rq.Service ~start:(t0 +. 0.003) ~dur:service_dur;
  Rq.server_end t ~span:srv ~bytes:200 ~at:(t0 +. 0.003 +. service_dur) Rq.Ok;
  Rq.rpc_end t ~span:rpc ~bytes:200 ~at:(t0 +. 0.005 +. service_dur) Rq.Ok;
  Rq.client_finish t ~span:root ~at:(t0 +. 0.006 +. service_dur) Rq.Ok;
  root

let collect_all () = Rq.create ~sample_every:1 ~seed:11 ()

let contribution cs tier seg =
  List.fold_left (fun acc (t, s, v) -> if t = tier && s = seg then acc +. v else acc) 0.0 cs

(* {1 Collector} *)

let sampled_pattern ~seed n =
  let t = Rq.create ~seed () in
  let pat = List.init n (fun i -> Rq.client_start t ~at:(0.001 *. float_of_int i) <> 0) in
  Alcotest.(check int) "every request counted" n (Rq.requests_seen t);
  pat

let test_sampling_deterministic () =
  let a = sampled_pattern ~seed:42 500 and b = sampled_pattern ~seed:42 500 in
  Alcotest.(check bool) "same seed, same sampled set" true (a = b);
  let c = sampled_pattern ~seed:43 500 in
  Alcotest.(check bool) "different seed, different sampled set" true (a <> c);
  (* roughly 1 in sample_every (default 7), not all and not none *)
  let n = List.length (List.filter Fun.id a) in
  Alcotest.(check bool) "plausible sample count" true (n > 20 && n < 200)

let test_max_traces_cap () =
  let t = Rq.create ~sample_every:1 ~max_traces:3 ~seed:1 () in
  for i = 0 to 9 do
    ignore (single_tier_trace t ~t0:(0.1 *. float_of_int i))
  done;
  Rq.finalize t ~at:10.0;
  Alcotest.(check int) "all requests seen" 10 (Rq.requests_seen t);
  Alcotest.(check int) "trace cap enforced" 3 (Rq.sampled t);
  Alcotest.(check int) "traces reader agrees" 3 (List.length (Rq.traces t))

let test_per_type_quota () =
  let t = Rq.create ~sample_every:1 ~max_per_type:2 ~seed:1 () in
  for i = 0 to 4 do
    ignore (single_tier_trace t ~t0:(0.1 *. float_of_int i))
  done;
  Rq.finalize t ~at:10.0;
  (* all five requests replay trace index 0 (server_op 0), so the
     per-type quota keeps only the first two *)
  Alcotest.(check int) "per-type quota enforced" 2 (Rq.sampled t);
  List.iter
    (fun (r : Rq.span) -> Alcotest.(check int) "type propagated to root" 0 r.Rq.sp_op)
    (Rq.traces t)

let test_finalize_closes_open_spans () =
  let t = collect_all () in
  let root = Rq.client_start t ~at:0.0 in
  let rpc = Rq.rpc_begin t ~parent:root ~target:"web" ~bytes:10 ~at:0.001 in
  Alcotest.(check bool) "rpc span allocated" true (rpc <> 0);
  Rq.finalize t ~at:0.5;
  Rq.finalize t ~at:9.9 (* idempotent: the second call must not reopen *);
  match Rq.traces t with
  | [ r ] ->
      feq "root closed at finalize time" 0.5 r.Rq.sp_end;
      Alcotest.(check bool) "in-flight request marked timeout" true (r.Rq.sp_outcome = Rq.Timeout);
      (match r.Rq.sp_children with
      | [ c ] ->
          feq "child rpc closed too" 0.5 c.Rq.sp_end;
          Alcotest.(check bool) "child timeout" true (c.Rq.sp_outcome = Rq.Timeout)
      | l -> Alcotest.failf "expected 1 child, got %d" (List.length l))
  | l -> Alcotest.failf "expected 1 trace, got %d" (List.length l)

(* {1 Critical-path extraction} *)

let test_single_tier_decomposition () =
  let t = collect_all () in
  let _ = single_tier_trace t ~t0:0.0 in
  Rq.finalize t ~at:1.0;
  let root = List.hd (Rq.traces t) in
  let cs = Cp.contributions root in
  feq "service" 0.004 (contribution cs "redis" "service");
  feq "network (rpc wait minus server time)" 0.003 (contribution cs "client" "rpc:redis");
  feq "accept-queue wait" 0.001 (contribution cs "redis" "queue");
  feq "uncovered client gaps" 0.002 (contribution cs "client" "other");
  feq "contributions cover the whole e2e" 0.010
    (List.fold_left (fun a (_, _, v) -> a +. v) 0.0 cs);
  (* descending-seconds order, service first *)
  match cs with
  | (t0, s0, _) :: _ ->
      Alcotest.(check string) "largest contributor first" "redis/service" (t0 ^ "/" ^ s0)
  | [] -> Alcotest.fail "empty contributions"

let test_retry_dominated_path () =
  let t = collect_all () in
  let root = Rq.client_start t ~at:0.0 in
  (* first attempt times out after 10ms with no server-side span *)
  let rpc1 = Rq.rpc_begin t ~parent:root ~target:"db" ~bytes:50 ~at:0.001 in
  Rq.rpc_end t ~span:rpc1 ~at:0.011 Rq.Timeout;
  (* retry succeeds quickly *)
  let rpc2 = Rq.rpc_begin t ~parent:root ~target:"db" ~bytes:50 ~at:0.012 in
  let srv = Rq.server_begin t ~parent:rpc2 ~tier:"db" ~bytes:50 ~arrived:0.0125 ~at:0.0125 in
  Rq.segment t ~span:srv Rq.Service ~start:0.0125 ~dur:0.001;
  Rq.server_end t ~span:srv ~bytes:80 ~at:0.0135 Rq.Ok;
  Rq.rpc_end t ~span:rpc2 ~bytes:80 ~at:0.014 Rq.Ok;
  Rq.client_finish t ~span:root ~at:0.015 Rq.Ok;
  Rq.finalize t ~at:1.0;
  let cs = Cp.contributions (List.hd (Rq.traces t)) in
  (* the timed-out attempt (10ms, whole interval: the callee never ran)
     plus the successful attempt's 1ms network share *)
  feq "rpc wait dominates" 0.011 (contribution cs "db" "rpc:db" +. contribution cs "client" "rpc:db");
  feq "retried service time" 0.001 (contribution cs "db" "service");
  feq "gaps" 0.003 (contribution cs "client" "other");
  match cs with
  | (tier, seg, _) :: _ -> Alcotest.(check string) "retry leads" "client/rpc:db" (tier ^ "/" ^ seg)
  | [] -> Alcotest.fail "empty contributions"

let test_shed_request () =
  let t = collect_all () in
  let root = Rq.client_start t ~at:0.0 in
  let rpc = Rq.rpc_begin t ~parent:root ~target:"web" ~bytes:50 ~at:0.001 in
  (* the tier sheds at delivery: no queue segment, no service work *)
  let srv = Rq.server_begin t ~parent:rpc ~tier:"web" ~bytes:50 ~arrived:0.002 ~at:0.002 in
  Rq.server_end t ~span:srv ~bytes:8 ~at:0.002 Rq.Shed;
  Rq.rpc_end t ~span:rpc ~bytes:8 ~at:0.003 Rq.Err;
  Rq.client_finish t ~span:root ~at:0.004 Rq.Err;
  Rq.finalize t ~at:1.0;
  let root_sp = List.hd (Rq.traces t) in
  Alcotest.(check bool) "client outcome is err" true (root_sp.Rq.sp_outcome = Rq.Err);
  let shed_server =
    match root_sp.Rq.sp_children with
    | [ r ] -> List.hd r.Rq.sp_children
    | _ -> Alcotest.fail "expected a single rpc child"
  in
  Alcotest.(check bool) "server outcome is shed" true (shed_server.Rq.sp_outcome = Rq.Shed);
  let cs = Cp.contributions root_sp in
  (* the whole rpc wait is network/reject overhead: the server held the
     request for zero time *)
  feq "rpc wait" 0.002 (contribution cs "client" "rpc:web");
  feq "no service time" 0.0 (contribution cs "web" "service");
  feq "covers e2e" 0.004 (List.fold_left (fun a (_, _, v) -> a +. v) 0.0 cs)

let test_tie_breaking () =
  (* Two async fan-out calls with byte-identical [start, end] intervals:
     the walk must deterministically descend into the later-recorded one
     (what the join "waited on" last), and must not double-count the
     other. *)
  let build () =
    let t = collect_all () in
    let root = Rq.client_start t ~at:0.0 in
    let attempt target =
      let rpc = Rq.rpc_begin t ~parent:root ~target ~bytes:10 ~at:0.001 in
      let srv = Rq.server_begin t ~parent:rpc ~tier:target ~bytes:10 ~arrived:0.002 ~at:0.002 in
      Rq.segment t ~span:srv Rq.Service ~start:0.002 ~dur:0.006;
      Rq.server_end t ~span:srv ~at:0.008 Rq.Ok;
      Rq.rpc_end t ~span:rpc ~at:0.009 Rq.Ok
    in
    attempt "alpha";
    attempt "beta";
    Rq.client_finish t ~span:root ~at:0.010 Rq.Ok;
    Rq.finalize t ~at:1.0;
    Cp.contributions (List.hd (Rq.traces t))
  in
  let cs = build () in
  Alcotest.(check bool) "later-recorded twin wins" true (contribution cs "beta" "service" > 0.0);
  feq "earlier twin not double-counted" 0.0 (contribution cs "alpha" "service");
  feq "covers e2e exactly once" 0.010 (List.fold_left (fun a (_, _, v) -> a +. v) 0.0 cs);
  (* and extraction is reproducible *)
  Alcotest.(check bool) "deterministic" true (build () = cs)

(* {1 Tables and divergence} *)

let table_of ~service_dur n =
  let t = collect_all () in
  for i = 0 to n - 1 do
    ignore (single_tier_trace ~service_dur t ~t0:(0.1 *. float_of_int i))
  done;
  Rq.finalize t ~at:100.0;
  Cp.of_traces (Rq.traces t)

let test_of_traces_shares () =
  let tbl = table_of ~service_dur:0.004 8 in
  Alcotest.(check int) "samples" 8 tbl.Cp.t_samples;
  feq "mean e2e" 0.010 tbl.Cp.t_mean_e2e;
  let cell tier seg =
    List.find (fun c -> c.Cp.c_tier = tier && c.Cp.c_segment = seg) tbl.Cp.t_cells
  in
  feq "service share" 40.0 (cell "redis" "service").Cp.c_share_pct;
  feq "rpc share" 30.0 (cell "client" "rpc:redis").Cp.c_share_pct;
  feq "queue share" 10.0 (cell "redis" "queue").Cp.c_share_pct;
  feq "identical traces: p99 = mean" (cell "redis" "service").Cp.c_mean
    (cell "redis" "service").Cp.c_p99;
  (* cells ranked by share, descending *)
  match tbl.Cp.t_cells with
  | a :: b :: _ -> Alcotest.(check bool) "sorted" true (a.Cp.c_share_pct >= b.Cp.c_share_pct)
  | _ -> Alcotest.fail "expected several cells"

let test_divergence_ranking () =
  (* clone spends 2ms instead of 4ms in service: with the 8ms skeleton
     around it, its service share drops from 40% to 25% — the worst
     divergence must name redis/service with err_pp = -15. *)
  let actual = table_of ~service_dur:0.004 8 in
  let clone = table_of ~service_dur:0.002 8 in
  let d = Cp.divergence ~app:"unit" ~actual ~clone () in
  (match Cp.worst d with
  | Some r ->
      Alcotest.(check string) "worst tier" "redis" r.Cp.d_tier;
      Alcotest.(check string) "worst segment" "service" r.Cp.d_segment;
      feq "signed error in pp" (-15.0) r.Cp.d_err_pp
  | None -> Alcotest.fail "no divergence rows");
  let flat = Cp.flat d in
  feq "per-cell flat key (absolute pp)" 15.0
    (List.assoc "unit/steady/redis/service/share_err_pp" flat);
  feq "worst summary" 15.0 (List.assoc "unit/steady/worst_share_err_pp" flat);
  Alcotest.(check bool) "mean summary present" true
    (List.mem_assoc "unit/steady/mean_share_err_pp" flat);
  (* a plan name lands in the key path *)
  let flat_p = Cp.flat (Cp.divergence ~app:"unit" ~plan:"kill" ~actual ~clone ()) in
  Alcotest.(check bool) "plan in key" true (List.mem_assoc "unit/kill/worst_share_err_pp" flat_p)

let test_empty_traces () =
  let tbl = Cp.of_traces [] in
  Alcotest.(check int) "no samples" 0 tbl.Cp.t_samples;
  Alcotest.(check bool) "no cells" true (tbl.Cp.t_cells = []);
  let d = Cp.divergence ~app:"unit" ~actual:tbl ~clone:tbl () in
  Alcotest.(check bool) "no worst row" true (Cp.worst d = None);
  Alcotest.(check bool) "summary keys still emitted" true
    (List.mem_assoc "unit/steady/worst_share_err_pp" (Cp.flat d))

(* {1 Jaeger round trip} *)

let test_jaeger_roundtrip () =
  let t = collect_all () in
  let _ = single_tier_trace t ~t0:0.0 in
  let _ = single_tier_trace t ~t0:1.0 in
  Rq.finalize t ~at:2.0;
  let spans = Ditto_trace.Jaeger.of_string (J.to_string (Rq.jaeger t)) in
  (* client root + server span per trace; RPC spans are folded away *)
  Alcotest.(check int) "two spans per trace" 4 (List.length spans);
  let roots = Ditto_trace.Dag.roots spans in
  Alcotest.(check int) "one root per sampled request" 2 (List.length roots);
  List.iter
    (fun ((r : Ditto_trace.Span.t), count) ->
      Alcotest.(check string) "root is the client" Rq.client_tier r.Ditto_trace.Span.service;
      Alcotest.(check int) "root reaches the whole tree" 2 count)
    roots;
  let dag = Ditto_trace.Dag.of_spans spans in
  Alcotest.(check string) "recovered entry" Rq.client_tier dag.Ditto_trace.Dag.entry;
  Alcotest.(check int) "client -> redis edge" 1 (List.length dag.Ditto_trace.Dag.edges)

let () =
  Alcotest.run "critpath"
    [
      ( "collector",
        [
          Alcotest.test_case "sampling deterministic in the seed" `Quick
            test_sampling_deterministic;
          Alcotest.test_case "max_traces cap" `Quick test_max_traces_cap;
          Alcotest.test_case "per-type quota" `Quick test_per_type_quota;
          Alcotest.test_case "finalize closes open spans" `Quick
            test_finalize_closes_open_spans;
        ] );
      ( "critical path",
        [
          Alcotest.test_case "single-tier decomposition" `Quick test_single_tier_decomposition;
          Alcotest.test_case "retry-dominated path" `Quick test_retry_dominated_path;
          Alcotest.test_case "shed request" `Quick test_shed_request;
          Alcotest.test_case "equal-length paths tie-break" `Quick test_tie_breaking;
        ] );
      ( "divergence",
        [
          Alcotest.test_case "contribution table shares" `Quick test_of_traces_shares;
          Alcotest.test_case "divergence ranking and flat keys" `Quick test_divergence_ranking;
          Alcotest.test_case "empty trace sets" `Quick test_empty_traces;
        ] );
      ( "jaeger",
        [ Alcotest.test_case "export re-ingests cleanly" `Quick test_jaeger_roundtrip ] );
    ]
