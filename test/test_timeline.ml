(* The telemetry layer: DDSketch histogram error/merge guarantees, the
   windowed Timeseries collector and its exporters, the transient-fidelity
   scorecard, and the end-to-end guarantee that enabled timelines are
   bit-identical across pool sizes. *)
module Histogram = Ditto_obs.Histogram
module Ts = Ditto_obs.Timeseries
module Tl = Ditto_report.Timeline
module Rng = Ditto_util.Rng
module Pool = Ditto_util.Pool
module Pipeline = Ditto_core.Pipeline
module Platform = Ditto_uarch.Platform
module Plan = Ditto_fault.Plan
open Ditto_app

(* {1 Histogram} *)

(* Exact nearest-rank quantile, same convention as Histogram.quantile:
   the sample at 1-based rank [max 1 (ceil (q * n))]. *)
let exact_quantile sorted q =
  let n = Array.length sorted in
  let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
  sorted.(rank - 1)

let mixed_samples ~seed n =
  let rng = Rng.create seed in
  Array.init n (fun _ ->
      match Rng.int rng 3 with
      | 0 -> 1e-6 +. Rng.float rng 0.001 (* microsecond scale *)
      | 1 -> 0.01 +. Rng.float rng 1.0 (* unit scale *)
      | _ -> 1.0 +. Rng.float rng 1000.0 (* three decades up *))

let test_quantile_bound () =
  let alpha = 0.01 in
  let values = mixed_samples ~seed:42 2000 in
  let h = Histogram.create ~alpha () in
  Array.iter (Histogram.add h) values;
  let sorted = Array.copy values in
  Array.sort compare sorted;
  List.iter
    (fun q ->
      let exact = exact_quantile sorted q in
      let est = Histogram.quantile h q in
      let err = Float.abs (est -. exact) /. exact in
      if err > alpha +. 1e-9 then
        Alcotest.failf "q=%g: estimate %g vs exact %g, rel err %g > alpha %g" q est exact err
          alpha)
    [ 0.0; 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99; 0.999; 1.0 ];
  Alcotest.(check int) "count" 2000 (Histogram.count h);
  Alcotest.(check (float 0.0)) "exact min" sorted.(0) (Histogram.min_value h);
  Alcotest.(check (float 0.0)) "exact max" sorted.(1999) (Histogram.max_value h)

let test_merge_associative () =
  let mk seed n =
    let h = Histogram.create () in
    Array.iter (Histogram.add h) (mixed_samples ~seed n);
    h
  in
  let a = mk 1 500 and b = mk 2 300 and c = mk 3 700 in
  let l = Histogram.merge (Histogram.merge a b) c in
  let r = Histogram.merge a (Histogram.merge b c) in
  (* integer bucket counts merge, so the sketch state is bit-identical
     whatever the merge order — not just approximately equal *)
  Alcotest.(check bool) "buckets identical" true (Histogram.buckets l = Histogram.buckets r);
  Alcotest.(check int) "counts" (Histogram.count l) (Histogram.count r);
  Alcotest.(check (float 0.0)) "p99 bit-equal" (Histogram.quantile l 0.99)
    (Histogram.quantile r 0.99);
  Alcotest.(check bool) "commutative" true
    (Histogram.buckets (Histogram.merge a b) = Histogram.buckets (Histogram.merge b a));
  Alcotest.(check int) "merged size" 1500 (Histogram.count l);
  (* a merged histogram still honors the error bound *)
  let all = Array.concat [ mixed_samples ~seed:1 500; mixed_samples ~seed:2 300; mixed_samples ~seed:3 700 ] in
  Array.sort compare all;
  List.iter
    (fun q ->
      let exact = exact_quantile all q and est = Histogram.quantile l q in
      Alcotest.(check bool)
        (Printf.sprintf "merged bound at q=%g" q)
        true
        (Float.abs (est -. exact) /. exact <= Histogram.alpha l +. 1e-9))
    [ 0.5; 0.95; 0.99 ]

let test_monotone_quantiles () =
  let h = Histogram.create () in
  Array.iter (Histogram.add h) (mixed_samples ~seed:7 1000);
  let p50 = Histogram.quantile h 0.5
  and p95 = Histogram.quantile h 0.95
  and p99 = Histogram.quantile h 0.99 in
  Alcotest.(check bool) "p50 <= p95" true (p50 <= p95);
  Alcotest.(check bool) "p95 <= p99" true (p95 <= p99)

let test_histogram_edges () =
  let h = Histogram.create () in
  Alcotest.(check (float 0.0)) "empty quantile" 0.0 (Histogram.quantile h 0.5);
  Alcotest.(check (float 0.0)) "empty min" 0.0 (Histogram.min_value h);
  Histogram.add h 0.0;
  Histogram.add h (-3.0);
  Alcotest.(check int) "zero bucket counts non-positives" 2 (Histogram.zero_count h);
  Alcotest.(check (float 0.0)) "all-zero quantile" 0.0 (Histogram.quantile h 1.0);
  Histogram.add h 5.0;
  (* ranks 1-2 sit in the zero bucket, rank 3 is the real sample *)
  Alcotest.(check (float 0.0)) "zero-bucket rank" 0.0 (Histogram.quantile h 0.5);
  Alcotest.(check bool) "top rank near 5.0" true
    (Float.abs (Histogram.quantile h 1.0 -. 5.0) /. 5.0 <= Histogram.alpha h);
  Alcotest.check_raises "q out of range" (Invalid_argument "Histogram.quantile: q outside [0, 1]")
    (fun () -> ignore (Histogram.quantile h 1.5));
  Alcotest.check_raises "alpha mismatch"
    (Invalid_argument "Histogram.merge: alpha mismatch") (fun () ->
      ignore (Histogram.merge h (Histogram.create ~alpha:0.02 ())))

let test_histogram_empty_merge () =
  (* Pins for the degenerate merges the windowed scorecards lean on: a
     window with no samples merges as a true identity element, and
     quantiles of a zero-count sketch are 0 at every rank, not NaN or an
     exception. *)
  let empty () = Histogram.create () in
  let e = Histogram.merge (empty ()) (empty ()) in
  Alcotest.(check int) "empty+empty count" 0 (Histogram.count e);
  Alcotest.(check int) "empty+empty zero bucket" 0 (Histogram.zero_count e);
  Alcotest.(check bool) "empty+empty buckets" true (Histogram.buckets e = []);
  Alcotest.(check (float 0.0)) "empty+empty min" 0.0 (Histogram.min_value e);
  Alcotest.(check (float 0.0)) "empty+empty max" 0.0 (Histogram.max_value e);
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "zero-count quantile q=%g" q)
        0.0 (Histogram.quantile e q))
    [ 0.0; 0.5; 0.99; 1.0 ];
  (* empty is an identity on either side: merging it in changes nothing *)
  let h = Histogram.create () in
  Array.iter (Histogram.add h) (mixed_samples ~seed:11 500);
  let le = Histogram.merge (empty ()) h and re = Histogram.merge h (empty ()) in
  List.iter
    (fun (side, m) ->
      Alcotest.(check int) (side ^ " count") (Histogram.count h) (Histogram.count m);
      Alcotest.(check bool) (side ^ " buckets") true (Histogram.buckets h = Histogram.buckets m);
      Alcotest.(check (float 0.0)) (side ^ " min") (Histogram.min_value h) (Histogram.min_value m);
      Alcotest.(check (float 0.0)) (side ^ " max") (Histogram.max_value h) (Histogram.max_value m);
      List.iter
        (fun q ->
          Alcotest.(check (float 0.0))
            (Printf.sprintf "%s quantile q=%g bit-equal" side q)
            (Histogram.quantile h q) (Histogram.quantile m q))
        [ 0.0; 0.5; 0.95; 0.99; 1.0 ])
    [ ("empty<-h", le); ("h<-empty", re) ];
  (* a sketch holding only zero-bucket samples still reports 0 everywhere
     after a merge, and keeps its exact (negative) min *)
  let z = Histogram.create () in
  Histogram.add z 0.0;
  Histogram.add z (-1.0);
  let zm = Histogram.merge z (empty ()) in
  Alcotest.(check int) "zero-only count survives merge" 2 (Histogram.count zm);
  Alcotest.(check int) "zero-only zero bucket" 2 (Histogram.zero_count zm);
  Alcotest.(check (float 0.0)) "zero-only p100" 0.0 (Histogram.quantile zm 1.0);
  Alcotest.(check (float 0.0)) "zero-only exact min" (-1.0) (Histogram.min_value zm)

(* {1 Timeseries windowing} *)

let test_windowing () =
  let t = Ts.create ~windows:10 ~start:10.0 ~duration:1.0 ~tiers:[ "web" ] () in
  Alcotest.(check (float 1e-12)) "window width" 0.1 (Ts.window_seconds t);
  Alcotest.(check (list string)) "tiers + synthetic client" [ "web"; Ts.client_tier ] (Ts.tiers t);
  Ts.record_latency t ~tier:"web" ~at:10.05 ~seconds:0.002;
  Ts.record_latency t ~tier:"web" ~at:10.99 ~seconds:0.004;
  (* outside [start, start + duration): dropped, not clamped *)
  Ts.record_latency t ~tier:"web" ~at:11.0 ~seconds:0.1;
  Ts.record_latency t ~tier:"web" ~at:9.999 ~seconds:0.1;
  Alcotest.(check int) "first window" 1 (Ts.row t ~tier:"web" 0).Ts.r_completed;
  Alcotest.(check int) "last window" 1 (Ts.row t ~tier:"web" 9).Ts.r_completed;
  let total = ref 0 in
  for i = 0 to 9 do
    total := !total + (Ts.row t ~tier:"web" i).Ts.r_completed
  done;
  Alcotest.(check int) "drain and pre-start samples dropped" 2 !total;
  Ts.record_counter t ~tier:"web" ~at:10.31 Ts.Timeouts;
  Ts.record_counter t ~tier:"web" ~at:10.33 Ts.Retries;
  Ts.record_queue t ~tier:"web" ~at:10.32 ~depth:4;
  Ts.record_queue t ~tier:"web" ~at:10.34 ~depth:2;
  Ts.record_cpu t ~tier:"web" ~at:10.35 ~seconds:0.01;
  let r = Ts.row t ~tier:"web" 3 in
  Alcotest.(check int) "timeout counter" 1 r.Ts.r_timeouts;
  Alcotest.(check int) "retry counter" 1 r.Ts.r_retries;
  Alcotest.(check int) "queue keeps max" 4 r.Ts.r_queue_depth;
  Alcotest.(check (float 1e-12)) "cpu accumulates" 0.01 r.Ts.r_cpu_seconds;
  Ts.mark t ~at:42.0 ~label:"crash:web";
  Alcotest.(check bool) "marks kept outside the window range" true
    (Ts.marks t = [ (42.0, "crash:web") ]);
  Alcotest.check_raises "unknown tier" (Invalid_argument "Timeseries: unknown tier db")
    (fun () -> ignore (Ts.row t ~tier:"db" 0))

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_openmetrics () =
  let t = Ts.create ~windows:4 ~start:0.0 ~duration:0.4 ~tiers:[ "web" ] () in
  Ts.record_latency t ~tier:"web" ~at:0.05 ~seconds:0.002;
  Ts.record_latency t ~tier:Ts.client_tier ~at:0.05 ~seconds:0.003;
  Ts.set_rate_basis t ~tier:"web" ~insts_per_req:1000.0;
  let doc = Ts.openmetrics [ ([ ("side", "actual") ], t) ] in
  Alcotest.(check bool) "ends with EOF" true
    (String.length doc >= 6 && String.sub doc (String.length doc - 6) 6 = "# EOF\n");
  List.iter
    (fun needle -> Alcotest.(check bool) ("contains " ^ needle) true (contains ~needle doc))
    [
      "# TYPE ditto_throughput_qps gauge";
      "# TYPE ditto_latency_seconds gauge";
      "tier=\"web\",side=\"actual\"";
      "quantile=\"0.95\"";
      "kind=\"timeout\"";
      "ditto_insts_per_sec";
    ];
  (* rate-form series only where a basis was set: web yes, client no *)
  Alcotest.(check bool) "no client insts series" false
    (contains ~needle:("ditto_insts_per_sec{tier=\"" ^ Ts.client_tier) doc)

let test_chrome_events () =
  let t = Ts.create ~windows:2 ~start:0.0 ~duration:0.2 ~tiers:[ "web" ] () in
  Ts.record_latency t ~tier:"web" ~at:0.05 ~seconds:0.002;
  Ts.mark t ~at:0.1 ~label:"crash:web";
  let evs = Ts.chrome_events ~pid:100 ~process_name:"redis actual" t in
  let render = List.map (fun e -> Ditto_util.Jsonx.to_string e) evs in
  let count needle = List.length (List.filter (contains ~needle) render) in
  Alcotest.(check int) "one process_name meta" 1 (count "\"process_name\"");
  (* one thread per tier plus the client series *)
  Alcotest.(check int) "thread_name metas" 2 (count "\"thread_name\"");
  (* 2 windows x 2 tiers x 4 counter series (no rate basis set) *)
  Alcotest.(check int) "counter events" 16 (count "\"ph\":\"C\"");
  Alcotest.(check int) "fault instant marker" 1 (count "\"ph\":\"i\"");
  Alcotest.(check bool) "tier tid is 1-based" true
    (List.exists (fun s -> contains ~needle:"\"web qps\"" s && contains ~needle:"\"tid\":1" s) render)

(* {1 Transient-fidelity scorecard} *)

let collector_with completed =
  (* one client latency sample per completion, all at the same value so
     p95 agrees between sides and only throughput drives the error *)
  let n = Array.length completed in
  let t = Ts.create ~windows:n ~start:0.0 ~duration:(0.1 *. float_of_int n) ~tiers:[ "web" ] () in
  Array.iteri
    (fun i c ->
      let at = (0.1 *. float_of_int i) +. 0.05 in
      for _ = 1 to c do
        Ts.record_latency t ~tier:Ts.client_tier ~at ~seconds:0.002;
        Ts.record_latency t ~tier:"web" ~at ~seconds:0.001
      done)
    completed;
  t

let test_scorecard_steady () =
  let actual = collector_with [| 10; 10; 10; 10 |] in
  let clone = collector_with [| 10; 10; 10; 10 |] in
  let tl = Tl.of_timelines ~app:"unit" ~actual ~clone () in
  Alcotest.(check int) "one row per window" 4 (List.length tl.Tl.rows);
  Alcotest.(check (float 0.0)) "worst" 0.0 tl.Tl.worst_window_err_pct;
  Alcotest.(check bool) "no fault" true (tl.Tl.fault_at = None);
  Alcotest.(check bool) "trivially reconverged" true tl.Tl.reconverged;
  Alcotest.(check (float 0.0)) "zero reconvergence" 0.0 tl.Tl.reconverge_seconds;
  Alcotest.(check bool) "tier series scored" true (tl.Tl.tier_worst = [ ("web", 0.0) ])

let test_scorecard_reconvergence () =
  let actual = collector_with [| 10; 10; 10; 10 |] in
  let clone = collector_with [| 10; 20; 20; 10 |] in
  Ts.mark actual ~at:0.15 ~label:"crash:web";
  let tl = Tl.of_timelines ~app:"unit" ~plan:"kill" ~actual ~clone () in
  Alcotest.(check bool) "fault placed" true (tl.Tl.fault_at = Some 0.15);
  Alcotest.(check (float 1e-9)) "worst window is the 100% miss" 100.0 tl.Tl.worst_window_err_pct;
  Alcotest.(check bool) "reconverged" true tl.Tl.reconverged;
  (* windows 1-2 disagree, window 3 opens the compliant streak: the
     reconvergence time runs from the fault to that window's end *)
  Alcotest.(check (float 1e-9)) "fault -> end of first compliant window" 0.25
    tl.Tl.reconverge_seconds;
  let keys = List.map fst (Tl.flat tl) in
  Alcotest.(check (list string)) "flat gate keys"
    [
      "unit/kill/worst_window_err_pct";
      "unit/kill/mean_window_err_pct";
      "unit/kill/reconverge_seconds";
    ]
    keys

let test_scorecard_not_reconverged () =
  let actual = collector_with [| 10; 10; 10; 10 |] in
  let clone = collector_with [| 10; 20; 20; 20 |] in
  Ts.mark actual ~at:0.15 ~label:"crash:web";
  let tl = Tl.of_timelines ~app:"unit" ~actual ~clone () in
  Alcotest.(check bool) "never reconverges" false tl.Tl.reconverged;
  (* capped at run end: 0.4 - 0.15 *)
  Alcotest.(check (float 1e-9)) "capped at run end" 0.25 tl.Tl.reconverge_seconds

let test_scorecard_multi_fault () =
  (* flaky-link-style plan: two markers, each opening its own divergence
     episode — per-marker reconvergence rows, legacy fields = first *)
  let actual = collector_with [| 10; 10; 10; 10; 10; 10 |] in
  let clone = collector_with [| 10; 20; 10; 10; 20; 10 |] in
  Ts.mark actual ~at:0.15 ~label:"link-down:web";
  Ts.mark actual ~at:0.45 ~label:"link-up:web";
  let tl = Tl.of_timelines ~app:"unit" ~plan:"flaky" ~actual ~clone () in
  Alcotest.(check int) "one row per marker" 2 (List.length tl.Tl.faults);
  (match tl.Tl.faults with
  | [ f0; f1 ] ->
      Alcotest.(check string) "first label" "link-down:web" f0.Tl.f_label;
      Alcotest.(check (float 1e-9)) "first at" 0.15 f0.Tl.f_at;
      (* window 1 misses, windows 2-3 open the compliant streak *)
      Alcotest.(check (float 1e-9)) "first reconverge" 0.15 f0.Tl.f_reconverge_seconds;
      Alcotest.(check bool) "first reconverged" true f0.Tl.f_reconverged;
      (* window 4 misses, final window 5 agrees *)
      Alcotest.(check string) "second label" "link-up:web" f1.Tl.f_label;
      Alcotest.(check (float 1e-9)) "second reconverge" 0.15 f1.Tl.f_reconverge_seconds;
      Alcotest.(check bool) "second reconverged" true f1.Tl.f_reconverged
  | _ -> Alcotest.fail "expected two fault rows");
  (* legacy first-fault fields keep their meaning *)
  Alcotest.(check bool) "fault_at is the first marker" true (tl.Tl.fault_at = Some 0.15);
  Alcotest.(check (float 1e-9)) "legacy reconverge = first row" 0.15 tl.Tl.reconverge_seconds;
  (* multi-event plans gate each marker *)
  let flat = Tl.flat tl in
  Alcotest.(check bool) "per-fault flat keys" true
    (List.mem_assoc "unit/flaky/fault0/reconverge_seconds" flat
    && List.mem_assoc "unit/flaky/fault1/reconverge_seconds" flat)

let test_scorecard_grid_mismatch () =
  let actual = collector_with [| 10; 10 |] in
  let clone = collector_with [| 10; 10; 10 |] in
  Alcotest.check_raises "grids must match"
    (Invalid_argument "Timeline.of_timelines: window grids differ") (fun () ->
      ignore (Tl.of_timelines ~app:"unit" ~actual ~clone ()))

(* {1 End-to-end determinism across pool sizes} *)

let with_pool size f =
  let pool = Pool.create ~size () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* A full chaos validation with telemetry on: the exported timelines
   (openmetrics text is a byte-level serialisation of the collector
   state) must be identical between a sequential and a 4-domain pool. *)
let timelines_with pool =
  let app = Ditto_apps.Redis.spec () in
  let load = Service.load ~qps:20000.0 ~open_loop:false ~duration:0.3 () in
  let r =
    Pipeline.clone ~pool ~tune:false ~requests:60 ~profile_requests:40 ~seed:7
      ~platform:Platform.a ~load app
  in
  let tiers = List.map (fun (t : Spec.tier) -> t.Spec.tier_name) r.Pipeline.original.Spec.tiers in
  let plan = Plan.kill_mid_tier ~duration:load.Service.duration ~tiers () in
  Ts.enable ();
  Fun.protect ~finally:Ts.disable (fun () ->
      let ch = Pipeline.validate_under ~pool ~platform:Platform.a ~load ~plan ~label:"tl" r in
      match
        ( ch.Pipeline.actual_service.Service.timeline,
          ch.Pipeline.synthetic_service.Service.timeline )
      with
      | Some a, Some c -> (Ts.to_openmetrics a, Ts.to_openmetrics c, a, c)
      | _ -> Alcotest.fail "telemetry enabled but no timeline collected")

let test_timeline_pool_determinism () =
  let a1, c1, act, clone = with_pool 1 timelines_with in
  let a4, c4, _, _ = with_pool 4 timelines_with in
  Alcotest.(check bool) "actual timeline bit-identical across pool sizes" true (a1 = a4);
  Alcotest.(check bool) "clone timeline bit-identical across pool sizes" true (c1 = c4);
  (* and the scorecard built from them is sane: a fault fired, so the
     reconvergence time is strictly positive *)
  let tl = Tl.of_timelines ~app:"redis" ~plan:"kill-mid-tier" ~actual:act ~clone () in
  Alcotest.(check int) "default window count" 24 (List.length tl.Tl.rows);
  Alcotest.(check bool) "fault marker recorded" true (tl.Tl.fault_at <> None);
  Alcotest.(check bool) "reconvergence strictly positive" true (tl.Tl.reconverge_seconds > 0.0)

let () =
  Alcotest.run "timeline"
    [
      ( "histogram",
        [
          Alcotest.test_case "quantiles within error bound" `Quick test_quantile_bound;
          Alcotest.test_case "merge associative and bit-stable" `Quick test_merge_associative;
          Alcotest.test_case "monotone p50<=p95<=p99" `Quick test_monotone_quantiles;
          Alcotest.test_case "edge cases" `Quick test_histogram_edges;
          Alcotest.test_case "empty merge and zero-count quantiles" `Quick
            test_histogram_empty_merge;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "windowing and counters" `Quick test_windowing;
          Alcotest.test_case "openmetrics exposition" `Quick test_openmetrics;
          Alcotest.test_case "chrome counter events" `Quick test_chrome_events;
        ] );
      ( "scorecard",
        [
          Alcotest.test_case "steady state" `Quick test_scorecard_steady;
          Alcotest.test_case "reconvergence after fault" `Quick test_scorecard_reconvergence;
          Alcotest.test_case "never reconverges" `Quick test_scorecard_not_reconverged;
          Alcotest.test_case "per-marker reconvergence (multi-event)" `Quick
            test_scorecard_multi_fault;
          Alcotest.test_case "grid mismatch rejected" `Quick test_scorecard_grid_mismatch;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "timelines across pool sizes" `Slow test_timeline_pool_determinism;
        ] );
    ]
