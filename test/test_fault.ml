(* The chaos layer: fault-plan validation and JSON, the circuit-breaker
   state machine at pinned thresholds, deterministic fault injection
   (bit-identical degraded runs across pool sizes), resilience mechanisms
   moving latency/errors in the expected direction, and fidelity under
   failure — the clone degrading like the original under the canonical
   plans. *)
open Ditto_app
open Ditto_isa
module Plan = Ditto_fault.Plan
module Breaker = Ditto_fault.Breaker
module Pipeline = Ditto_core.Pipeline
module Scorecard = Ditto_report.Scorecard
module Pool = Ditto_util.Pool
module Platform = Ditto_uarch.Platform
module Stats = Ditto_util.Stats

(* {1 Plan} *)

let crash ?(at = 0.1) ?(down_for = 0.1) tier =
  { Plan.at; tier; kind = Plan.Crash { down_for } }

let test_plan_validation () =
  let invalid msg events =
    match Plan.make ~name:"bad" events with
    | _ -> Alcotest.failf "%s accepted" msg
    | exception Invalid_argument _ -> ()
  in
  invalid "negative at" [ crash ~at:(-0.1) "a" ];
  invalid "non-positive down_for" [ crash ~down_for:0.0 "a" ];
  invalid "factor below 1"
    [ { Plan.at = 0.1; tier = "a"; kind = Plan.Slowdown { factor = 0.5; lasts = 0.1 } } ];
  invalid "drop above 1"
    [
      {
        Plan.at = 0.1;
        tier = "a";
        kind = Plan.Link { add_latency = 0.0; drop = 1.5; lasts = 0.1 };
      };
    ];
  invalid "negative partition"
    [ { Plan.at = 0.1; tier = "a"; kind = Plan.Partition { lasts = -1.0 } } ];
  (* events are kept sorted by [at] *)
  let p = Plan.make ~name:"ok" [ crash ~at:0.3 "a"; crash ~at:0.1 "b" ] in
  Alcotest.(check (list (float 1e-12))) "sorted by at" [ 0.1; 0.3 ]
    (List.map (fun (e : Plan.event) -> e.Plan.at) p.Plan.events);
  (* tier names are checked against the spec, with "client" reserved *)
  Plan.validate ~tiers:[ "a"; "b" ] p;
  Plan.validate ~tiers:[ "a" ] (Plan.make ~name:"c" [ crash Plan.client_tier ]);
  let contains hay needle =
    let h = String.length hay and n = String.length needle in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  match Plan.validate ~tiers:[ "a" ] p with
  | () -> Alcotest.fail "unknown tier accepted"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "names the tier" true (contains msg "b")

let test_plan_late_events () =
  (* An event at/past the load duration can never fire. The default is a
     stderr warning (validate still returns unit); under [~strict:true]
     the same plan is rejected with a message naming the plan, the tier
     and both times. *)
  let contains hay needle =
    let h = String.length hay and n = String.length needle in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  let late = Plan.make ~name:"late" [ crash ~at:0.1 "a"; crash ~at:0.6 "b" ] in
  (* without a duration nothing is late *)
  Plan.validate ~tiers:[ "a"; "b" ] late;
  Plan.validate ~strict:true ~tiers:[ "a"; "b" ] late;
  (* warn-only: still unit *)
  Plan.validate ~duration:0.5 ~tiers:[ "a"; "b" ] late;
  (* exactly at the duration boundary is late (the run has already ended) *)
  (match Plan.validate ~duration:0.6 ~strict:true ~tiers:[ "a"; "b" ] late with
  | () -> Alcotest.fail "event at t = duration accepted under strict"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "names the plan" true (contains msg "late");
      Alcotest.(check bool) "names the tier" true (contains msg "b");
      Alcotest.(check bool) "says never fire" true (contains msg "never fire"));
  (* strictly inside the window passes even under strict *)
  Plan.validate ~duration:0.61 ~strict:true ~tiers:[ "a"; "b" ] late

let all_kinds_plan =
  Plan.make ~name:"everything"
    [
      crash ~at:0.05 "a";
      { Plan.at = 0.1; tier = "b"; kind = Plan.Slowdown { factor = 2.5; lasts = 0.2 } };
      { Plan.at = 0.15; tier = "a"; kind = Plan.Link { add_latency = 1e-4; drop = 0.1; lasts = 0.3 } };
      { Plan.at = 0.2; tier = Plan.client_tier; kind = Plan.Partition { lasts = 0.05 } };
    ]

let test_plan_json_roundtrip () =
  let back = Plan.of_json (Plan.to_json all_kinds_plan) in
  Alcotest.(check string) "name survives" "everything" back.Plan.plan_name;
  Alcotest.(check bool) "events survive" true (back.Plan.events = all_kinds_plan.Plan.events);
  let path = Filename.temp_file "ditto_plan" ".json" in
  Plan.save ~path all_kinds_plan;
  let loaded = Plan.load path in
  Sys.remove path;
  Alcotest.(check bool) "file roundtrip" true (loaded.Plan.events = all_kinds_plan.Plan.events);
  (* unknown kinds are a parse error, not silent garbage *)
  let module J = Ditto_util.Jsonx in
  match
    Plan.of_json
      (J.Obj
         [
           ("name", J.Str "x");
           ( "events",
             J.List [ J.Obj [ ("at", J.Num 0.1); ("tier", J.Str "a"); ("kind", J.Str "meteor") ] ]
           );
         ])
  with
  | _ -> Alcotest.fail "unknown kind accepted"
  | exception J.Parse_error _ -> ()

let test_plan_canonical () =
  let tiers = [ "front"; "mid"; "back" ] in
  let plans = Plan.canonical ~duration:1.0 ~tiers in
  Alcotest.(check (list string))
    "the three scenarios"
    [ "kill-mid-tier"; "brownout-leaf"; "flaky-link" ]
    (List.map (fun (p : Plan.t) -> p.Plan.plan_name) plans);
  List.iter (fun p -> Plan.validate ~tiers p) plans;
  (* all events fit inside the load window *)
  List.iter
    (fun (p : Plan.t) ->
      List.iter
        (fun (e : Plan.event) ->
          Alcotest.(check bool) "event inside run" true (e.Plan.at >= 0.0 && e.Plan.at < 1.0))
        p.Plan.events)
    plans

(* {1 Breaker: pinned thresholds} *)

let breaker_config =
  { Breaker.failure_threshold = 0.5; window = 4; cooldown = 1.0; half_open_probes = 2 }

let check_state msg expected b =
  let show = function
    | Breaker.Closed -> "closed"
    | Breaker.Open -> "open"
    | Breaker.Half_open -> "half-open"
  in
  Alcotest.(check string) msg (show expected) (show (Breaker.state b))

let test_breaker_trips_at_threshold () =
  let b = Breaker.create ~config:breaker_config () in
  (* three failures: window (4) not yet full, so no trip even at 100% *)
  for _ = 1 to 3 do
    Breaker.record b ~now:0.0 ~ok:false
  done;
  check_state "below window" Breaker.Closed b;
  (* fourth outcome fills the window at 75% >= 50%: trips now *)
  Breaker.record b ~now:0.1 ~ok:true;
  check_state "tripped when window full" Breaker.Open b;
  Alcotest.(check int) "one transition" 1 (Breaker.transitions b);
  (* exactly at the threshold trips too: 2 failures in 4 *)
  let b2 = Breaker.create ~config:breaker_config () in
  List.iter (fun ok -> Breaker.record b2 ~now:0.0 ~ok) [ true; false; true; false ];
  check_state "50% = threshold trips" Breaker.Open b2;
  (* below it does not: 1 failure in 4, then the window keeps sliding *)
  let b3 = Breaker.create ~config:breaker_config () in
  List.iter (fun ok -> Breaker.record b3 ~now:0.0 ~ok) [ true; false; true; true; true ];
  check_state "25% stays closed" Breaker.Closed b3

let test_breaker_open_half_open_cycle () =
  let b = Breaker.create ~config:breaker_config () in
  for _ = 1 to 4 do
    Breaker.record b ~now:2.0 ~ok:false
  done;
  check_state "open" Breaker.Open b;
  Alcotest.(check bool) "fast-fails during cooldown" false (Breaker.allow b ~now:2.5);
  Alcotest.(check bool) "still failing just before" false (Breaker.allow b ~now:2.999);
  (* cooldown (1s) elapsed: first allow flips to half-open and admits *)
  Alcotest.(check bool) "probe admitted" true (Breaker.allow b ~now:3.0);
  check_state "half-open" Breaker.Half_open b;
  Alcotest.(check bool) "second probe admitted" true (Breaker.allow b ~now:3.01);
  Alcotest.(check bool) "probe budget (2) exhausted" false (Breaker.allow b ~now:3.02);
  (* both probes succeed: closed again *)
  Breaker.record b ~now:3.05 ~ok:true;
  check_state "one success not enough" Breaker.Half_open b;
  Breaker.record b ~now:3.06 ~ok:true;
  check_state "probes close it" Breaker.Closed b;
  Alcotest.(check int) "open -> half-open -> closed" 3 (Breaker.transitions b)

let test_breaker_probe_failure_reopens () =
  let b = Breaker.create ~config:breaker_config () in
  for _ = 1 to 4 do
    Breaker.record b ~now:0.0 ~ok:false
  done;
  Alcotest.(check bool) "probe admitted" true (Breaker.allow b ~now:1.5);
  Breaker.record b ~now:1.6 ~ok:false;
  check_state "probe failure reopens" Breaker.Open b;
  (* the cooldown restarts from the re-open *)
  Alcotest.(check bool) "cooldown restarted" false (Breaker.allow b ~now:2.0);
  Alcotest.(check bool) "probing again later" true (Breaker.allow b ~now:2.7)

let test_breaker_probe_budget_exhaustion () =
  (* Once the half-open probe budget is spent, no amount of elapsed time
     re-admits traffic: only a recorded outcome moves the state machine.
     The cooldown clock governs Open -> Half_open, not Half_open itself. *)
  let b = Breaker.create ~config:breaker_config () in
  for _ = 1 to 4 do
    Breaker.record b ~now:0.0 ~ok:false
  done;
  Alcotest.(check bool) "probe 1 admitted" true (Breaker.allow b ~now:1.0);
  Alcotest.(check bool) "probe 2 admitted" true (Breaker.allow b ~now:1.0);
  Alcotest.(check bool) "budget spent" false (Breaker.allow b ~now:1.0);
  (* far past another cooldown interval: still half-open, still refusing *)
  Alcotest.(check bool) "time does not refill the budget" false (Breaker.allow b ~now:100.0);
  check_state "stuck half-open until probes resolve" Breaker.Half_open b;
  (* one success is not enough to close, and does NOT refill the budget *)
  Breaker.record b ~now:100.1 ~ok:true;
  check_state "one of two probes back" Breaker.Half_open b;
  Alcotest.(check bool) "still no extra admissions" false (Breaker.allow b ~now:100.2);
  (* the second success closes it and traffic flows freely again *)
  Breaker.record b ~now:100.3 ~ok:true;
  check_state "second probe closes" Breaker.Closed b;
  Alcotest.(check bool) "closed admits everything" true (Breaker.allow b ~now:100.4)

let test_breaker_reopen_race () =
  (* Two probes in flight; the first comes back a failure and re-opens
     the breaker. The second probe's success then arrives late — it must
     be dropped on the floor: no state change, no transition count, and
     no corruption of the fresh cooldown window. *)
  let b = Breaker.create ~config:breaker_config () in
  for _ = 1 to 4 do
    Breaker.record b ~now:0.0 ~ok:false
  done;
  Alcotest.(check bool) "probe A admitted" true (Breaker.allow b ~now:1.0);
  Alcotest.(check bool) "probe B admitted" true (Breaker.allow b ~now:1.0);
  Breaker.record b ~now:1.1 ~ok:false;
  check_state "probe A failure re-opens" Breaker.Open b;
  let transitions_after_reopen = Breaker.transitions b in
  (* probe B's success lands after the re-open: ignored *)
  Breaker.record b ~now:1.2 ~ok:true;
  check_state "late success ignored while open" Breaker.Open b;
  Alcotest.(check int) "no transition from the stale probe" transitions_after_reopen
    (Breaker.transitions b);
  (* the new cooldown runs from the re-open (1.1), not the stale record *)
  Alcotest.(check bool) "cooldown from re-open holds" false (Breaker.allow b ~now:2.05);
  Alcotest.(check bool) "probing resumes after it" true (Breaker.allow b ~now:2.15);
  check_state "half-open again" Breaker.Half_open b;
  (* and a full clean probe round still closes it: the stale success did
     not pre-count toward the fresh probe quorum *)
  Alcotest.(check bool) "second probe of the new round" true (Breaker.allow b ~now:2.2);
  Breaker.record b ~now:2.3 ~ok:true;
  check_state "one fresh success is not quorum" Breaker.Half_open b;
  Breaker.record b ~now:2.4 ~ok:true;
  check_state "fresh quorum closes" Breaker.Closed b

let test_breaker_bad_config_rejected () =
  let bad msg config =
    match Breaker.create ~config () with
    | _ -> Alcotest.failf "%s accepted" msg
    | exception Invalid_argument _ -> ()
  in
  bad "zero threshold" { breaker_config with Breaker.failure_threshold = 0.0 };
  bad "threshold above 1" { breaker_config with Breaker.failure_threshold = 1.5 };
  bad "zero window" { breaker_config with Breaker.window = 0 };
  bad "negative cooldown" { breaker_config with Breaker.cooldown = -1.0 };
  bad "zero probes" { breaker_config with Breaker.half_open_probes = 0 }

(* {1 A small two-tier app for service-level chaos tests} *)

let make_block ~tier_index ~label n =
  let space = Layout.space ~tier_index ~heap_bytes:(1 lsl 20) ~shared_bytes:(1 lsl 16) in
  Block.make ~label ~code_base:(Layout.code_window space ~index:0)
    (List.init n (fun i ->
         Block.temp (Iform.by_name "ADD_GPR64_GPR64") ~dst:(i mod 8) ~srcs:[| (i + 1) mod 8 |]))

let chaos_app () =
  let front_block = make_block ~tier_index:0 ~label:"front" 64 in
  let back_block = make_block ~tier_index:1 ~label:"back" 96 in
  let front _rng _req =
    [
      Spec.Compute (front_block, 3);
      Spec.Call { target = "back"; req_bytes = 128; resp_bytes = 256 };
      Spec.Compute (front_block, 2);
    ]
  in
  let back _rng _req = [ Spec.Compute (back_block, 4) ] in
  Spec.make ~name:"chaos_app"
    [
      Spec.tier ~name:"front" ~workers:2 ~heap_bytes:(1 lsl 20) ~shared_bytes:(1 lsl 16)
        ~handler:front ();
      Spec.tier ~name:"back" ~workers:2 ~heap_bytes:(1 lsl 20) ~shared_bytes:(1 lsl 16)
        ~handler:back ();
    ]

let chaos_load ?(client_timeout = 0.02) ?(client_retries = 1) () =
  Service.load ~qps:2500.0 ~duration:0.5 ~client_timeout ~client_retries ()

let run_armoured ?fault_plan ?(resilience = Spec.resilient ()) ?load spec =
  let load = match load with Some l -> l | None -> chaos_load () in
  let cfg = Runner.config ?fault_plan ~requests:40 Platform.a in
  Runner.run cfg ~load (Spec.with_resilience resilience spec)

(* {1 Deterministic injection} *)

let service_fingerprint (r : Service.result) =
  ( ( r.Service.completed,
      r.Service.errors,
      r.Service.client_timeouts,
      r.Service.client_retries ),
    Array.to_list r.Service.latency_raw,
    List.map
      (fun (o : Service.tier_obs) ->
        ( o.Service.obs_name,
          ( o.Service.obs_timeouts,
            o.Service.obs_retries,
            o.Service.obs_shed,
            o.Service.obs_failures,
            o.Service.obs_breaker_transitions,
            o.Service.obs_link_drops ) ))
      r.Service.tiers )

let clone_lazy =
  lazy
    (let app = chaos_app () in
     let load = chaos_load () in
     (load, Pipeline.clone ~requests:80 ~profile_requests:60 ~platform:Platform.a ~load app))

let validate_under_with ~pool_size plan =
  let load, r = Lazy.force clone_lazy in
  let pool = Pool.create ~size:pool_size () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      Pipeline.validate_under ~pool ~platform:Platform.a ~load ~plan
        ~label:plan.Plan.plan_name r)

let test_chaos_determinism_across_pools () =
  let _, r = Lazy.force clone_lazy in
  let tiers = List.map (fun (t : Spec.tier) -> t.Spec.tier_name) r.Pipeline.original.Spec.tiers in
  let plan = List.hd (Plan.canonical ~duration:0.5 ~tiers) in
  let seq = validate_under_with ~pool_size:1 plan in
  let par = validate_under_with ~pool_size:3 plan in
  let again = validate_under_with ~pool_size:3 plan in
  Alcotest.(check bool) "actual side bit-identical (1 vs 3 domains)" true
    (service_fingerprint seq.Pipeline.actual_service
    = service_fingerprint par.Pipeline.actual_service);
  Alcotest.(check bool) "synthetic side bit-identical (1 vs 3 domains)" true
    (service_fingerprint seq.Pipeline.synthetic_service
    = service_fingerprint par.Pipeline.synthetic_service);
  Alcotest.(check bool) "repeat run bit-identical" true
    (service_fingerprint par.Pipeline.actual_service
    = service_fingerprint again.Pipeline.actual_service);
  (* the plan actually did something: the degraded run saw faults *)
  let faults (r : Service.result) =
    List.fold_left
      (fun acc (o : Service.tier_obs) ->
        acc + o.Service.obs_timeouts + o.Service.obs_shed + o.Service.obs_link_drops
        + o.Service.obs_failures)
      (* client-side evidence counts too *)
      (r.Service.errors + r.Service.client_timeouts + r.Service.client_retries)
      r.Service.tiers
  in
  Alcotest.(check bool) "faults observed" true (faults seq.Pipeline.actual_service > 0)

(* {1 Resilience direction} *)

let test_brownout_raises_tail_latency () =
  let app = chaos_app () in
  let plan =
    Plan.make ~name:"brownout"
      [ { Plan.at = 0.05; tier = "back"; kind = Plan.Slowdown { factor = 4.0; lasts = 0.4 } } ]
  in
  let clean = run_armoured app in
  let degraded = run_armoured ~fault_plan:plan app in
  Alcotest.(check bool)
    (Printf.sprintf "degraded p99 %.3fms >= clean p99 %.3fms"
       (1e3 *. degraded.Runner.service.Service.latency.Stats.p99)
       (1e3 *. clean.Runner.service.Service.latency.Stats.p99))
    true
    (degraded.Runner.service.Service.latency.Stats.p99
    >= clean.Runner.service.Service.latency.Stats.p99)

let test_client_retries_reduce_errors () =
  let app = chaos_app () in
  let plan =
    Plan.make ~name:"flaky"
      [
        {
          Plan.at = 0.05;
          tier = "front";
          kind = Plan.Link { add_latency = 1e-4; drop = 0.25; lasts = 0.4 };
        };
      ]
  in
  let err_rate retries =
    let out =
      run_armoured ~fault_plan:plan ~load:(chaos_load ~client_retries:retries ()) app
    in
    let r = out.Runner.service in
    Pipeline.error_rate r
  in
  let none = err_rate 0 and retried = err_rate 3 in
  Alcotest.(check bool)
    (Printf.sprintf "drops surface as errors without retries (%.3f)" none)
    true (none > 0.0);
  Alcotest.(check bool)
    (Printf.sprintf "retries shrink the error rate (%.3f -> %.3f)" none retried)
    true
    (retried < none)

let test_crash_triggers_timeouts_and_breaker () =
  let app = chaos_app () in
  let plan =
    Plan.make ~name:"kill-back" [ crash ~at:0.1 ~down_for:0.15 "back" ]
  in
  let out = run_armoured ~fault_plan:plan app in
  let front =
    List.find
      (fun (o : Service.tier_obs) -> o.Service.obs_name = "front")
      out.Runner.service.Service.tiers
  in
  Alcotest.(check bool) "downstream calls timed out" true (front.Service.obs_timeouts > 0);
  Alcotest.(check bool) "timed-out calls were retried" true (front.Service.obs_retries > 0);
  Alcotest.(check bool) "breaker reacted" true (front.Service.obs_breaker_transitions > 0);
  (* the run ends with the tier back up: traffic flows again afterwards *)
  Alcotest.(check bool) "service recovered" true
    (out.Runner.service.Service.completed > 0)

let test_partition_drops_messages () =
  let app = chaos_app () in
  let plan =
    Plan.make ~name:"split"
      [ { Plan.at = 0.1; tier = "back"; kind = Plan.Partition { lasts = 0.1 } } ]
  in
  let out = run_armoured ~fault_plan:plan app in
  let drops =
    List.fold_left
      (fun acc (o : Service.tier_obs) -> acc + o.Service.obs_link_drops)
      0 out.Runner.service.Service.tiers
  in
  Alcotest.(check bool) "partition dropped traffic" true (drops > 0)

let test_disabled_faults_identical () =
  (* Resilience knobs off + no plan must be byte-identical to the seed
     behaviour: the whole chaos layer is opt-in. *)
  let app = chaos_app () in
  let load = Service.load ~qps:2500.0 ~duration:0.5 () in
  let run () = Runner.run (Runner.config ~requests:40 Platform.a) ~load app in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical fingerprints" true
    (service_fingerprint a.Runner.service = service_fingerprint b.Runner.service);
  Alcotest.(check int) "no errors" 0 a.Runner.service.Service.errors;
  Alcotest.(check int) "no shed"
    0
    (List.fold_left
       (fun acc (o : Service.tier_obs) -> acc + o.Service.obs_shed)
       0 a.Runner.service.Service.tiers)

(* {1 Fidelity under failure: the clone degrades like the original} *)

let test_canonical_plans_within_tolerance () =
  let load, r = Lazy.force clone_lazy in
  let tiers = List.map (fun (t : Spec.tier) -> t.Spec.tier_name) r.Pipeline.original.Spec.tiers in
  List.iter
    (fun (plan : Plan.t) ->
      let ch =
        Pipeline.validate_under ~platform:Platform.a ~load ~plan ~label:plan.Plan.plan_name r
      in
      let card = Scorecard.of_chaos ~app:"chaos_app" ?tuning:r.Pipeline.tuning ch in
      let failure =
        match card.Scorecard.failure with
        | Some f -> f
        | None -> Alcotest.fail "chaos scorecard without failure section"
      in
      let row name =
        List.find
          (fun (fr : Scorecard.failure_row) -> fr.Scorecard.f_metric = name)
          failure.Scorecard.failure_rows
      in
      let er = row "error_rate" and p99 = row "lat_p99" in
      Alcotest.(check bool)
        (Printf.sprintf "%s: error rate within 5pp (actual %.3f synth %.3f delta %.2fpp)"
           plan.Plan.plan_name er.Scorecard.f_actual er.Scorecard.f_synthetic
           er.Scorecard.f_delta)
        true er.Scorecard.f_pass;
      Alcotest.(check bool)
        (Printf.sprintf "%s: degraded p99 within 5%% (actual %.4fms synth %.4fms err %.2f%%)"
           plan.Plan.plan_name (1e3 *. p99.Scorecard.f_actual)
           (1e3 *. p99.Scorecard.f_synthetic) p99.Scorecard.f_delta)
        true p99.Scorecard.f_pass)
    (Plan.canonical ~duration:load.Service.duration ~tiers)

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        [
          Alcotest.test_case "validation" `Quick test_plan_validation;
          Alcotest.test_case "late events warn or reject" `Quick test_plan_late_events;
          Alcotest.test_case "json roundtrip" `Quick test_plan_json_roundtrip;
          Alcotest.test_case "canonical plans" `Quick test_plan_canonical;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "trips at threshold" `Quick test_breaker_trips_at_threshold;
          Alcotest.test_case "open/half-open cycle" `Quick test_breaker_open_half_open_cycle;
          Alcotest.test_case "probe failure reopens" `Quick test_breaker_probe_failure_reopens;
          Alcotest.test_case "probe budget exhaustion" `Quick test_breaker_probe_budget_exhaustion;
          Alcotest.test_case "re-open race" `Quick test_breaker_reopen_race;
          Alcotest.test_case "bad config rejected" `Quick test_breaker_bad_config_rejected;
        ] );
      ( "injection",
        [
          Alcotest.test_case "deterministic across pools" `Slow
            test_chaos_determinism_across_pools;
          Alcotest.test_case "disabled faults identical" `Slow test_disabled_faults_identical;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "brownout raises p99" `Slow test_brownout_raises_tail_latency;
          Alcotest.test_case "retries reduce errors" `Slow test_client_retries_reduce_errors;
          Alcotest.test_case "crash: timeouts and breaker" `Slow
            test_crash_triggers_timeouts_and_breaker;
          Alcotest.test_case "partition drops" `Slow test_partition_drops_messages;
        ] );
      ( "fidelity",
        [
          Alcotest.test_case "canonical plans within tolerance" `Slow
            test_canonical_plans_within_tolerance;
        ] );
    ]
