(* Tests for the analytical queueing estimator and the extra application
   topologies (pipeline-generality checks). *)
open Ditto_app
module Q = Queueing
module Platform = Ditto_uarch.Platform

let check_close msg tolerance expected actual =
  if Float.abs (expected -. actual) > tolerance then
    Alcotest.failf "%s: expected %g within %g, got %g" msg expected tolerance actual

(* {1 Queueing model on known distributions} *)

let deterministic_model ~servers ~service =
  Q.of_samples ~servers (Array.make 1000 service)

let test_q_basics () =
  let m = deterministic_model ~servers:2 ~service:1e-3 in
  check_close "mean" 1e-12 1e-3 (Q.service_mean m);
  check_close "scv of constant is 0" 1e-9 0.0 (Q.service_scv m);
  check_close "capacity 2 servers" 1e-6 2000.0 (Q.capacity m);
  check_close "utilization" 1e-9 0.5 (Q.utilization m ~qps:1000.0)

let test_q_wait_grows_with_load () =
  let m = deterministic_model ~servers:1 ~service:1e-3 in
  let w20 = Q.mean_wait m ~qps:200.0 in
  let w80 = Q.mean_wait m ~qps:800.0 in
  let w95 = Q.mean_wait m ~qps:950.0 in
  Alcotest.(check bool) "monotone in load" true (w20 < w80 && w80 < w95);
  Alcotest.(check bool) "unstable beyond capacity" true
    (Q.mean_wait m ~qps:1100.0 = infinity)

let test_q_md1_exact () =
  (* M/D/1: Wq = rho/(2 mu (1-rho)); Allen-Cunneen is exact here. *)
  let m = deterministic_model ~servers:1 ~service:1e-3 in
  let rho = 0.5 in
  let expected = rho /. (2.0 *. 1000.0 *. (1.0 -. rho)) in
  check_close "M/D/1 wait" 1e-7 expected (Q.mean_wait m ~qps:500.0)

let test_q_mm1_exact () =
  (* Exponential service: scv = 1, Wq = rho/(mu - lambda). *)
  let rng = Ditto_util.Rng.create 5 in
  let samples = Array.init 200_000 (fun _ -> Ditto_util.Dist.exponential rng ~mean:1e-3) in
  let m = Q.of_samples ~servers:1 samples in
  check_close "scv ~ 1" 0.05 1.0 (Q.service_scv m);
  let lambda = 600.0 in
  let mu = 1.0 /. Q.service_mean m in
  let expected = lambda /. (mu *. (mu -. lambda)) in
  check_close "M/M/1 wait" (expected *. 0.08) expected (Q.mean_wait m ~qps:lambda)

let test_q_more_servers_less_wait () =
  let m1 = deterministic_model ~servers:1 ~service:1e-3 in
  let m4 = deterministic_model ~servers:4 ~service:1e-3 in
  Alcotest.(check bool) "4 servers wait less at same load" true
    (Q.mean_wait m4 ~qps:900.0 < Q.mean_wait m1 ~qps:900.0)

let test_q_percentiles () =
  let m = deterministic_model ~servers:1 ~service:1e-3 in
  let p50 = Q.percentile_latency m ~qps:800.0 50.0 in
  let p99 = Q.percentile_latency m ~qps:800.0 99.0 in
  Alcotest.(check bool) "p99 > p50 >= service" true (p99 > p50 && p50 >= 1e-3)

let test_q_percentiles_monotone () =
  (* A spread-out service distribution, loaded: p50 <= p95 <= p99. *)
  let rng = Ditto_util.Rng.create 17 in
  let samples = Array.init 5000 (fun _ -> Ditto_util.Dist.exponential rng ~mean:1e-3) in
  let m = Q.of_samples ~servers:2 samples in
  let qps = 1200.0 in
  let p50 = Q.percentile_latency m ~qps 50.0 in
  let p95 = Q.percentile_latency m ~qps 95.0 in
  let p99 = Q.percentile_latency m ~qps 99.0 in
  Alcotest.(check bool) "non-decreasing in quantile" true (p50 <= p95 && p95 <= p99)

let test_q_percentile_idle_is_service () =
  (* As qps -> 0 the wait vanishes: the latency percentile must reduce to
     the service-time percentile itself. *)
  let rng = Ditto_util.Rng.create 23 in
  let samples = Array.init 4001 (fun _ -> Ditto_util.Dist.exponential rng ~mean:1e-3) in
  let m = Q.of_samples ~servers:4 samples in
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  List.iter
    (fun q ->
      let rank = int_of_float (Float.round (q /. 100.0 *. float_of_int 4000)) in
      check_close
        (Printf.sprintf "p%g at qps~0 is the service percentile" q)
        1e-12 sorted.(rank)
        (Q.percentile_latency m ~qps:1e-9 q))
    [ 50.0; 95.0; 99.0 ]

let test_q_percentile_range_checked () =
  let m = deterministic_model ~servers:1 ~service:1e-3 in
  List.iter
    (fun q ->
      match Q.percentile_latency m ~qps:100.0 q with
      | exception Invalid_argument _ -> ()
      | v -> Alcotest.failf "quantile %g accepted (returned %g)" q v)
    [ -1.0; -0.001; 100.001; 150.0 ]

let test_q_saturation_search () =
  let m = deterministic_model ~servers:1 ~service:1e-3 in
  let q = Q.saturation_qps m ~target_latency:2e-3 in
  check_close "latency at found qps meets target" 1e-4 2e-3 (Q.mean_latency m ~qps:q);
  check_close "unreachable target" 1e-9 0.0 (Q.saturation_qps m ~target_latency:1e-4)

let test_q_cross_checks_des () =
  (* The analytical estimate should land in the same regime as the DES for
     a single-worker service below saturation. *)
  let app = Ditto_apps.Redis.spec () in
  let cfg = Runner.config ~requests:100 ~seed:3 Platform.a in
  let qps = 20_000.0 in
  let load = Service.load ~qps ~open_loop:false ~duration:0.5 () in
  let out = Runner.run cfg ~load app in
  let m = Q.of_measure ~servers:1 (List.assoc "redis" out.Runner.measured) in
  Alcotest.(check bool) "stable at offered load" true (Q.utilization m ~qps < 1.0);
  let analytic = Q.mean_latency m ~qps in
  let des_service_part = (List.assoc "redis" out.Runner.measured).Measure.cpu_mean in
  Alcotest.(check bool) "analytic within 5x of service scale" true
    (analytic > des_service_part /. 5.0 && analytic < des_service_part *. 5.0)

let test_q_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Queueing.of_samples: empty") (fun () ->
      ignore (Q.of_samples ~servers:1 [||]))

(* {1 Hotel Reservation topology} *)

let test_hotel_runs () =
  let entry = Ditto_apps.Registry.by_name "hotel_reservation" in
  let app = entry.Ditto_apps.Registry.spec () in
  Alcotest.(check int) "eleven services" 11 (List.length app.Spec.tiers);
  let cfg = Runner.config ~requests:50 ~seed:7 Platform.a in
  let load = Service.load ~qps:1000.0 ~duration:0.4 () in
  let out = Runner.run cfg ~load app in
  Alcotest.(check bool) "serves traffic" true
    (out.Runner.end_to_end.Ditto_util.Stats.count > 100);
  (* disk-backed stores actually hit the disk *)
  let m = Runner.tier_metrics out "ProfileDB" in
  Alcotest.(check bool) "stores use the disk" true (m.Metrics.disk_mbps > 0.0)

let test_hotel_dag () =
  let entry = Ditto_apps.Registry.by_name "hotel_reservation" in
  let app = entry.Ditto_apps.Registry.spec () in
  let cfg = Runner.config ~requests:40 ~seed:8 Platform.a in
  let load = Service.load ~qps:800.0 ~duration:0.4 () in
  let out = Runner.run cfg ~load app in
  let results name = List.assoc name out.Runner.measured in
  let spans = Ditto_trace.Collector.collect ~entry:"frontend" ~results ~samples:150 ~seed:9 in
  let dag = Ditto_trace.Dag.of_spans spans in
  Alcotest.(check int) "all services traced" 11
    (List.length dag.Ditto_trace.Dag.services);
  let search = Ditto_trace.Dag.downstreams dag "SearchService" in
  Alcotest.(check int) "search fans out to geo and rate" 2 (List.length search);
  Alcotest.(check int) "acyclic" 11 (List.length (Ditto_trace.Dag.topo_order dag))

let test_hotel_clones () =
  let entry = Ditto_apps.Registry.by_name "hotel_reservation" in
  let app = entry.Ditto_apps.Registry.spec () in
  let load = Service.load ~qps:1200.0 ~duration:0.4 () in
  let r =
    Ditto_core.Pipeline.clone ~tune:false ~requests:50 ~profile_requests:40
      ~platform:Platform.a ~load app
  in
  let c = Ditto_core.Pipeline.validate ~platform:Platform.a ~load ~label:"hr" r in
  let rel =
    Float.abs
      (c.Ditto_core.Pipeline.synthetic_end_to_end.Ditto_util.Stats.mean
      -. c.Ditto_core.Pipeline.actual_end_to_end.Ditto_util.Stats.mean)
    /. c.Ditto_core.Pipeline.actual_end_to_end.Ditto_util.Stats.mean
  in
  Alcotest.(check bool) "end-to-end mean within 60%" true (rel < 0.6)

(* {1 Memcached multiget variant} *)

let test_multiget_heavier () =
  let light = Ditto_apps.Memcached.spec () in
  let heavy = Ditto_apps.Memcached.spec_multiget ~keys:12 ~value_bytes:512 () in
  let cfg = Runner.config ~requests:60 ~seed:11 Platform.a in
  let load = Service.load ~qps:20_000.0 ~connections:96 ~duration:0.3 () in
  let cpu spec =
    let out = Runner.run cfg ~load spec in
    (List.assoc "memcached" out.Runner.measured).Measure.cpu_mean
  in
  Alcotest.(check bool) "multiget costs more CPU per request" true
    (cpu heavy > 2.0 *. cpu light)

let () =
  Alcotest.run "queueing_and_extras"
    [
      ( "queueing",
        [
          Alcotest.test_case "basics" `Quick test_q_basics;
          Alcotest.test_case "wait grows" `Quick test_q_wait_grows_with_load;
          Alcotest.test_case "M/D/1" `Quick test_q_md1_exact;
          Alcotest.test_case "M/M/1" `Quick test_q_mm1_exact;
          Alcotest.test_case "multi-server" `Quick test_q_more_servers_less_wait;
          Alcotest.test_case "percentiles" `Quick test_q_percentiles;
          Alcotest.test_case "percentiles monotone" `Quick test_q_percentiles_monotone;
          Alcotest.test_case "percentile at idle" `Quick test_q_percentile_idle_is_service;
          Alcotest.test_case "percentile range" `Quick test_q_percentile_range_checked;
          Alcotest.test_case "saturation search" `Quick test_q_saturation_search;
          Alcotest.test_case "cross-check DES" `Slow test_q_cross_checks_des;
          Alcotest.test_case "empty" `Quick test_q_empty_rejected;
        ] );
      ( "hotel_reservation",
        [
          Alcotest.test_case "runs" `Slow test_hotel_runs;
          Alcotest.test_case "dag" `Slow test_hotel_dag;
          Alcotest.test_case "clones" `Slow test_hotel_clones;
        ] );
      ( "media_service",
        [
          Alcotest.test_case "runs and clones" `Slow
            (fun () ->
              let entry = Ditto_apps.Registry.by_name "media_service" in
              let app = entry.Ditto_apps.Registry.spec () in
              Alcotest.(check int) "ten services" 10 (List.length app.Spec.tiers);
              let load = Service.load ~qps:800.0 ~duration:0.4 () in
              let r =
                Ditto_core.Pipeline.clone ~tune:false ~requests:50 ~profile_requests:40
                  ~platform:Platform.a ~load app
              in
              (match r.Ditto_core.Pipeline.dag with
              | Some dag ->
                  Alcotest.(check int) "dag covers all" 10
                    (List.length dag.Ditto_trace.Dag.services)
              | None -> Alcotest.fail "expected dag");
              let c = Ditto_core.Pipeline.validate ~platform:Platform.a ~load ~label:"ms" r in
              Alcotest.(check bool) "clone serves" true
                (c.Ditto_core.Pipeline.synthetic_end_to_end.Ditto_util.Stats.count > 50));
        ] );
      ( "memcached_variants",
        [ Alcotest.test_case "multiget heavier" `Slow test_multiget_heavier ] );
    ]
