(* The performance-architecture layer: result memoization (Ditto_uarch.Memo
   and its users), machine pooling, and the engine's immediate-event fast
   path. Every fast path is pinned bit-identical to its cold equivalent —
   the caches may only change wall-clock time, never a counter. *)

open Ditto_app
module Memo = Ditto_uarch.Memo
module Platform = Ditto_uarch.Platform
module Engine = Ditto_sim.Engine
module Pool = Ditto_util.Pool

(* {1 Memo semantics} *)

let test_memo_basic () =
  let m = Memo.create ~max_entries:4 () in
  let calls = ref 0 in
  let f k =
    Memo.find_or_add m k (fun () ->
        incr calls;
        k * 2)
  in
  Alcotest.(check int) "computed" 6 (f 3);
  Alcotest.(check int) "cached" 6 (f 3);
  Alcotest.(check int) "one computation" 1 !calls;
  let s = Memo.stats m in
  Alcotest.(check int) "hits" 1 s.Memo.hits;
  Alcotest.(check int) "misses" 1 s.Memo.misses

let test_memo_cap () =
  let m = Memo.create ~max_entries:2 () in
  Memo.add m 1 "a";
  Memo.add m 2 "b";
  Memo.add m 3 "c";
  Alcotest.(check int) "capped" 2 (Memo.stats m).Memo.entries;
  Alcotest.(check bool) "oldest evicted" true (Memo.find_opt m 1 = None);
  Alcotest.(check bool) "newest kept" true (Memo.find_opt m 3 = Some "c")

let test_memo_invalidate () =
  let m = Memo.create () in
  List.iter (fun k -> Memo.add m k k) [ 1; 2; 3; 4 ];
  let dropped = Memo.invalidate m (fun k -> k mod 2 = 0) in
  Alcotest.(check int) "dropped the matching group" 2 dropped;
  Alcotest.(check bool) "untouched key survives" true (Memo.find_opt m 3 = Some 3);
  Alcotest.(check bool) "invalidated key gone" true (Memo.find_opt m 2 = None);
  Alcotest.(check int) "invalidations counted" 2 (Memo.stats m).Memo.invalidations

let test_memo_disable () =
  let m = Memo.create () in
  Memo.add m 1 10;
  Memo.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Memo.set_enabled true)
    (fun () ->
      Alcotest.(check bool) "disabled lookup misses" true (Memo.find_opt m 1 = None);
      let calls = ref 0 in
      ignore
        (Memo.find_or_add m 1 (fun () ->
             incr calls;
             99));
      ignore
        (Memo.find_or_add m 1 (fun () ->
             incr calls;
             99));
      Alcotest.(check int) "thunk always runs when disabled" 2 !calls);
  Alcotest.(check bool) "re-enabled sees the old entry" true (Memo.find_opt m 1 = Some 10)

(* Keys embed the whole platform record: any platform change — here just
   +0.1 GHz — must miss, and the fingerprint must move with it. *)
let test_memo_platform_key () =
  let m = Memo.create () in
  Memo.add m (Platform.a, 42) "cached";
  let faster = Platform.with_frequency Platform.a (Platform.a.Platform.freq_ghz +. 0.1) in
  Alcotest.(check bool) "identical platform hits" true
    (Memo.find_opt m (Platform.a, 42) = Some "cached");
  Alcotest.(check bool) "changed platform misses" true (Memo.find_opt m (faster, 42) = None);
  Alcotest.(check bool) "changed seed misses" true (Memo.find_opt m (Platform.a, 43) = None);
  Alcotest.(check bool) "fingerprint tracks the change" true
    (Platform.fingerprint Platform.a <> Platform.fingerprint faster);
  Alcotest.(check int) "fingerprint is structural" (Platform.fingerprint Platform.a)
    (Platform.fingerprint { Platform.a with Platform.name = Platform.a.Platform.name })

(* {1 Runner: measurement memo + machine pooling} *)

let small_load = Service.load ~qps:15000.0 ~open_loop:false ~duration:0.15 ()

(* Two consecutive runs of the same spec: the second reuses pooled machines
   and hits the measurement memo, and must still be byte-identical. *)
let test_warm_rerun_identical () =
  let app = Ditto_apps.Redis.spec () in
  let cfg = Runner.config ~requests:40 Platform.a in
  let o1 = Runner.run cfg ~load:small_load app in
  let o2 = Runner.run cfg ~load:small_load app in
  Alcotest.(check bool) "per-tier metrics identical" true (o1.Runner.per_tier = o2.Runner.per_tier);
  Alcotest.(check bool) "end-to-end identical" true (o1.Runner.end_to_end = o2.Runner.end_to_end)

(* The warm (memoized) run must match a cold run with memoization globally
   disabled — the cache can only save time, never change a counter. *)
let test_memo_matches_cold () =
  let app = Ditto_apps.Redis.spec () in
  let cfg = Runner.config ~requests:40 Platform.a in
  let warm =
    ignore (Runner.run cfg ~load:small_load app);
    Runner.run cfg ~load:small_load app
  in
  Memo.set_enabled false;
  let cold =
    Fun.protect
      ~finally:(fun () -> Memo.set_enabled true)
      (fun () -> Runner.run cfg ~load:small_load app)
  in
  Alcotest.(check bool) "memoized == cold per-tier" true
    (warm.Runner.per_tier = cold.Runner.per_tier);
  Alcotest.(check bool) "memoized == cold end-to-end" true
    (warm.Runner.end_to_end = cold.Runner.end_to_end)

(* A cached measurement never survives a platform change: rerunning on the
   same platform hits, switching to platform B only misses. *)
let test_runner_memo_platform_isolation () =
  let app = Ditto_apps.Redis.spec () in
  ignore (Runner.run (Runner.config ~requests:30 Platform.a) ~load:small_load app);
  let s1 = Runner.measure_memo_stats () in
  ignore (Runner.run (Runner.config ~requests:30 Platform.a) ~load:small_load app);
  let s2 = Runner.measure_memo_stats () in
  Alcotest.(check bool) "same-platform rerun hits" true (s2.Memo.hits > s1.Memo.hits);
  ignore (Runner.run (Runner.config ~requests:30 Platform.b) ~load:small_load app);
  let s3 = Runner.measure_memo_stats () in
  Alcotest.(check int) "platform change never hits" s2.Memo.hits s3.Memo.hits;
  Alcotest.(check bool) "platform change recomputes" true (s3.Memo.misses > s2.Memo.misses)

(* {1 Tuner: incremental revalidation}

   The tuner re-simulates only tiers whose knob vector changed, reusing
   per-(tier, params) cached measurements for the rest — including frozen
   tiers and speculative candidates that perturb a single knob group. The
   whole trajectory (every iteration's errors and kept knob vector) must be
   bit-identical with the caches disabled, i.e. to cold full
   re-simulation of every candidate. *)
let tune_once () =
  let app = Ditto_apps.Redis.spec () in
  let load = Service.load ~qps:20000.0 ~open_loop:false ~duration:0.25 () in
  let cfg = Runner.config ~requests:50 ~seed:11 Platform.a in
  let reference = Runner.run cfg ~load app in
  let profile = Ditto_profile.Tier_profile.profile_app ~requests:40 ~seed:12 app in
  let pool = Pool.create ~size:1 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      Ditto_tune.Tuner.tune ~max_iterations:6 ~seed:5 ~pool ~config:cfg ~load ~reference
        ~profile ())

let test_tuner_memo_bitidentical () =
  let _, warm = tune_once () in
  Memo.set_enabled false;
  let _, cold = Fun.protect ~finally:(fun () -> Memo.set_enabled true) tune_once in
  let module T = Ditto_tune.Tuner in
  Alcotest.(check int) "same iteration count"
    (List.length warm.T.iterations)
    (List.length cold.T.iterations);
  Alcotest.(check bool) "identical final params" true (warm.T.final_params = cold.T.final_params);
  List.iter2
    (fun (w : T.iteration) (c : T.iteration) ->
      Alcotest.(check int) "same winner" w.T.winner c.T.winner;
      Alcotest.(check bool) "identical per-metric errors" true (w.T.errors = c.T.errors);
      Alcotest.(check bool) "identical kept params" true (w.T.params = c.T.params))
    warm.T.iterations cold.T.iterations;
  Alcotest.(check bool) "identical attribution" true (warm.T.attribution = cold.T.attribution)

(* {1 Engine: immediate-event fast path}

   Events scheduled at or before the current time take the FIFO side queue
   instead of the heap; dispatch order must equal the pure-heap schedule
   (insertion order among same-time events, earliest-time first against
   the heap). *)
let test_engine_zero_delay_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  let emit tag = log := tag :: !log in
  let proc name =
    emit (name ^ "0");
    Engine.wait 0.0;
    emit (name ^ "1");
    Engine.wait 1e-6;
    emit (name ^ "2")
  in
  Engine.spawn e (fun () -> proc "a");
  Engine.spawn e (fun () -> proc "b");
  Engine.run e;
  Alcotest.(check (list string))
    "insertion-order dispatch at equal times"
    [ "a0"; "b0"; "a1"; "b1"; "a2"; "b2" ]
    (List.rev !log)

let test_engine_imm_vs_heap_priority () =
  (* An immediate event must still yield to an earlier-scheduled heap event
     at the same timestamp (the (time, seq) order of the plain heap). *)
  let e = Engine.create () in
  let log = ref [] in
  Engine.spawn e ~at:1e-3 (fun () -> log := "heap" :: !log);
  Engine.spawn e (fun () ->
      Engine.wait 1e-3;
      log := "imm" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "heap event first at the tie" [ "heap"; "imm" ] (List.rev !log)

let () =
  Alcotest.run "perf"
    [
      ( "memo",
        [
          Alcotest.test_case "hit/miss accounting" `Quick test_memo_basic;
          Alcotest.test_case "FIFO cap" `Quick test_memo_cap;
          Alcotest.test_case "group invalidation" `Quick test_memo_invalidate;
          Alcotest.test_case "global disable" `Quick test_memo_disable;
          Alcotest.test_case "platform-sensitive keys" `Quick test_memo_platform_key;
        ] );
      ( "runner",
        [
          Alcotest.test_case "warm rerun bit-identical" `Slow test_warm_rerun_identical;
          Alcotest.test_case "memoized == cold" `Slow test_memo_matches_cold;
          Alcotest.test_case "platform isolation" `Slow test_runner_memo_platform_isolation;
        ] );
      ( "tuner",
        [ Alcotest.test_case "memo on/off trajectory identical" `Slow test_tuner_memo_bitidentical ] );
      ( "engine",
        [
          Alcotest.test_case "zero-delay FIFO order" `Quick test_engine_zero_delay_fifo;
          Alcotest.test_case "imm yields to earlier heap event" `Quick
            test_engine_imm_vs_heap_priority;
        ] );
    ]
