(* Tests for the microarchitecture layer: caches, predictor, prefetcher,
   counters/top-down, memory hierarchy, interval core model. *)
open Ditto_uarch
open Ditto_isa
module Rng = Ditto_util.Rng

let check_close msg tolerance expected actual =
  if Float.abs (expected -. actual) > tolerance then
    Alcotest.failf "%s: expected %g within %g, got %g" msg expected tolerance actual

(* {1 Cache} *)

let test_cache_hit_after_fill () =
  let c = Cache.create ~size_bytes:4096 ~assoc:4 () in
  let hit = ref false in
  Cache.access c 0x1000 ~hit;
  Alcotest.(check bool) "first is miss" false !hit;
  Cache.access c 0x1000 ~hit;
  Alcotest.(check bool) "second is hit" true !hit;
  Cache.access c 0x1010 ~hit;
  Alcotest.(check bool) "same line hits" true !hit

let test_cache_capacity_eviction () =
  (* A working set larger than the cache must miss when cycled (LRU). *)
  let c = Cache.create ~size_bytes:1024 ~assoc:2 () in
  let hit = ref false in
  let lines = 32 in
  for pass = 1 to 3 do
    for i = 0 to lines - 1 do
      Cache.access c (i * 64) ~hit;
      if pass > 1 then Alcotest.(check bool) "cyclic > capacity always misses" false !hit
    done
  done

let test_cache_fits_working_set () =
  let c = Cache.create ~size_bytes:4096 ~assoc:8 () in
  let hit = ref false in
  for pass = 1 to 3 do
    for i = 0 to 31 do
      (* 2KB working set in a 4KB cache *)
      Cache.access c (i * 64) ~hit;
      if pass > 1 then Alcotest.(check bool) "resident set hits" true !hit
    done
  done

let test_cache_lru_order () =
  let c = Cache.create ~size_bytes:128 ~assoc:2 () in
  (* one set of 2 ways with 64B lines -> addresses 0, 128, 256 map together
     only if sets=1; 128/64/2 = 1 set. *)
  let hit = ref false in
  Cache.access c 0 ~hit;
  Cache.access c 64 ~hit;
  Cache.access c 0 ~hit;
  (* 0 is MRU; inserting a third line evicts 64 *)
  Cache.access c 128 ~hit;
  Cache.access c 0 ~hit;
  Alcotest.(check bool) "MRU survived" true !hit;
  Cache.access c 64 ~hit;
  Alcotest.(check bool) "LRU evicted" false !hit

let test_cache_invalidate_probe () =
  let c = Cache.create ~size_bytes:1024 ~assoc:4 () in
  let hit = ref false in
  Cache.access c 0x40 ~hit;
  Alcotest.(check bool) "probe present" true (Cache.probe c 0x40);
  Alcotest.(check bool) "invalidate hit" true (Cache.invalidate c 0x40);
  Alcotest.(check bool) "probe absent" false (Cache.probe c 0x40);
  Alcotest.(check bool) "invalidate miss" false (Cache.invalidate c 0x40)

let test_cache_flush () =
  let c = Cache.create ~size_bytes:1024 ~assoc:4 () in
  let hit = ref false in
  Cache.access c 0 ~hit;
  Cache.flush c;
  Cache.access c 0 ~hit;
  Alcotest.(check bool) "cold after flush" false !hit

let test_cache_plru () =
  let c = Cache.create ~replacement:Cache.Plru ~size_bytes:4096 ~assoc:8 () in
  let hit = ref false in
  for i = 0 to 7 do
    Cache.access c (i * 512) ~hit (* map to the same set region *)
  done;
  Cache.access c 0 ~hit;
  Alcotest.(check bool) "plru retains within capacity" true (Cache.sets c >= 1)

(* {1 Branch predictor} *)

let test_predictor_biased_branch () =
  let bp = Branch_pred.create ~entries:4096 ~btb_entries:1024 () in
  let mp = ref 0 in
  for _ = 1 to 1000 do
    match Branch_pred.predict_and_update bp ~pc:0x100 ~taken:true with
    | `Mispredict -> incr mp
    | `Correct | `Btb_miss -> ()
  done;
  Alcotest.(check bool) "always-taken nearly perfect" true (!mp < 25)

let test_predictor_periodic_pattern () =
  let bp = Branch_pred.create ~entries:16384 ~btb_entries:4096 () in
  let mp = ref 0 in
  for k = 0 to 9999 do
    let taken = Block.branch_outcome ~m:2 ~n:4 k in
    match Branch_pred.predict_and_update bp ~pc:0x200 ~taken with
    | `Mispredict -> incr mp
    | `Correct | `Btb_miss -> ()
  done;
  Alcotest.(check bool) "periodic pattern learned (<10% miss)" true (!mp < 1000)

let test_predictor_random_hard () =
  let bp = Branch_pred.create ~entries:4096 ~btb_entries:1024 () in
  let rng = Rng.create 77 in
  let mp = ref 0 in
  for _ = 1 to 4000 do
    match Branch_pred.predict_and_update bp ~pc:0x300 ~taken:(Rng.bool rng) with
    | `Mispredict -> incr mp
    | `Correct | `Btb_miss -> ()
  done;
  Alcotest.(check bool) "random is hard (>30% miss)" true (!mp > 1200)

let test_btb_miss_on_new_target () =
  let bp = Branch_pred.create ~entries:64 ~btb_entries:64 () in
  Alcotest.(check bool) "first unconditional misses BTB" true
    (Branch_pred.note_unconditional bp ~pc:0x999 = `Btb_miss);
  Alcotest.(check bool) "second hits" true
    (Branch_pred.note_unconditional bp ~pc:0x999 = `Correct)

(* {1 Prefetcher} *)

let test_prefetcher_stride () =
  let p = Prefetcher.create ~degree:2 () in
  let fills = ref [] in
  for i = 0 to 9 do
    Prefetcher.observe p ~pc:0x10 ~addr:(i * 64) (fun a -> fills := a :: !fills)
  done;
  Alcotest.(check bool) "stride confirmed -> prefetches issued" true (List.length !fills > 0);
  (* prefetches land ahead of the stream *)
  List.iter (fun a -> Alcotest.(check bool) "ahead" true (a > 0)) !fills

let test_prefetcher_random_silent () =
  let p = Prefetcher.create () in
  let rng = Rng.create 9 in
  let fills = ref 0 in
  for _ = 1 to 200 do
    Prefetcher.observe p ~pc:0x20 ~addr:(64 * Rng.int rng 100000) (fun _ -> incr fills)
  done;
  Alcotest.(check bool) "random stream mostly silent" true (!fills < 20)

(* {1 Counters and top-down} *)

let test_counters_derived () =
  let c = Counters.create () in
  c.Counters.insts <- 1000;
  c.Counters.s.Counters.cycles <- 500.0;
  c.Counters.branches <- 100;
  c.Counters.mispredicts <- 5;
  c.Counters.l1d_accesses <- 400;
  c.Counters.l1d_misses <- 40;
  Alcotest.(check (float 1e-9)) "ipc" 2.0 (Counters.ipc c);
  Alcotest.(check (float 1e-9)) "cpi" 0.5 (Counters.cpi c);
  Alcotest.(check (float 1e-9)) "branch miss" 0.05 (Counters.branch_miss_rate c);
  Alcotest.(check (float 1e-9)) "l1d miss" 0.1 (Counters.l1d_miss_rate c);
  Alcotest.(check (float 1e-9)) "mpki" 5.0 (Counters.branch_mpki c)

let test_counters_sub_acc () =
  let a = Counters.create () and b = Counters.create () in
  a.Counters.insts <- 10;
  b.Counters.insts <- 4;
  let d = Counters.sub a b in
  Alcotest.(check int) "sub" 6 d.Counters.insts;
  Counters.acc b d;
  Alcotest.(check int) "acc" 10 b.Counters.insts;
  Counters.reset a;
  Alcotest.(check int) "reset" 0 a.Counters.insts

let test_topdown_normalised () =
  let c = Counters.create () in
  c.Counters.s.Counters.retiring <- 30.0;
  c.Counters.s.Counters.frontend <- 30.0;
  c.Counters.s.Counters.bad_spec <- 20.0;
  c.Counters.s.Counters.backend <- 20.0;
  let td = Counters.topdown c in
  check_close "sums to 1" 1e-9 1.0
    (td.Counters.retiring +. td.Counters.frontend +. td.Counters.bad_speculation
   +. td.Counters.backend);
  Alcotest.(check (float 1e-9)) "retiring" 0.3 td.Counters.retiring

(* {1 Platform} *)

let test_platform_table1 () =
  Alcotest.(check int) "A cores" 22 Platform.a.Platform.cores;
  Alcotest.(check int) "B L2" (256 * 1024) Platform.b.Platform.l2_bytes;
  Alcotest.(check int) "A L2 = 1MB" (1024 * 1024) Platform.a.Platform.l2_bytes;
  Alcotest.(check bool) "A has SSD" true (Platform.a.Platform.disk = Platform.Ssd);
  Alcotest.(check bool) "C is Skylake" true (Platform.c.Platform.family = "Skylake");
  Alcotest.(check (float 1e-9)) "A net 10G" 10.0 Platform.a.Platform.net_gbps;
  Alcotest.(check int) "rows cover Table 1" 11 (List.length Platform.table1_rows)

let test_platform_frequency_scaling () =
  let half = Platform.with_frequency Platform.a 1.05 in
  Alcotest.(check (float 1e-9)) "freq set" 1.05 half.Platform.freq_ghz;
  Alcotest.(check bool) "dram cycles scale down" true
    (half.Platform.lat_mem < Platform.a.Platform.lat_mem)

let test_platform_lookup () =
  Alcotest.(check string) "by name" "Gold 6152" (Platform.by_name "A").Platform.cpu_model;
  Alcotest.check_raises "unknown" Not_found (fun () -> ignore (Platform.by_name "Z"))

(* {1 Memory hierarchy} *)

let test_memory_latency_ladder () =
  let mem = Memory.create Platform.a ~ncores:2 in
  let l1 = Memory.access_data mem ~core:0 ~addr:0x1_0000 ~write:false ~shared:false in
  Alcotest.(check bool) "cold miss costs at least DRAM (plus TLB walk)" true
    (l1 >= Platform.a.Platform.lat_mem);
  let l2 = Memory.access_data mem ~core:0 ~addr:0x1_0000 ~write:false ~shared:false in
  Alcotest.(check int) "then L1 hit" Platform.a.Platform.lat_l1 l2

let test_memory_counters_attribution () =
  let mem = Memory.create Platform.a ~ncores:2 in
  ignore (Memory.access_data mem ~core:1 ~addr:0x2_0000 ~write:false ~shared:false);
  let c0 = Memory.counters mem 0 and c1 = Memory.counters mem 1 in
  Alcotest.(check int) "core 0 untouched" 0 c0.Counters.l1d_accesses;
  Alcotest.(check int) "core 1 counted" 1 c1.Counters.l1d_accesses

let test_memory_set_counter () =
  let mem = Memory.create Platform.a ~ncores:1 in
  let mine = Counters.create () in
  Memory.set_counter mem 0 mine;
  ignore (Memory.access_data mem ~core:0 ~addr:0x40 ~write:true ~shared:false);
  Alcotest.(check int) "swapped counter sees access" 1 mine.Counters.l1d_accesses

let test_memory_coherence () =
  let mem = Memory.create Platform.a ~ncores:2 in
  (* Core 0 writes a shared line; core 1's read must pay a coherence miss
     even after having cached it. *)
  ignore (Memory.access_data mem ~core:1 ~addr:0x8000 ~write:false ~shared:true);
  ignore (Memory.access_data mem ~core:1 ~addr:0x8000 ~write:false ~shared:true);
  ignore (Memory.access_data mem ~core:0 ~addr:0x8000 ~write:true ~shared:true);
  let before = (Memory.counters mem 1).Counters.coherence_misses in
  let lat = Memory.access_data mem ~core:1 ~addr:0x8000 ~write:false ~shared:true in
  let after = (Memory.counters mem 1).Counters.coherence_misses in
  Alcotest.(check bool) "coherence miss counted" true (after > before);
  Alcotest.(check bool) "transfer latency beyond L1" true (lat > Platform.a.Platform.lat_l1)

let test_memory_inst_side () =
  let mem = Memory.create Platform.a ~ncores:1 in
  let cold = Memory.access_inst mem ~core:0 ~addr:0x1_0000 in
  Alcotest.(check bool) "cold fetch bubble" true (cold > 0);
  let warm = Memory.access_inst mem ~core:0 ~addr:0x1_0000 in
  Alcotest.(check int) "warm fetch free" 0 warm

(* {1 Core model} *)

let heap = Block.make_region ~base:0x4000_0000 ~bytes:(1 lsl 24) ~shared:false

let run_block ?(iterations = 1000) temps =
  let mem = Memory.create Platform.a ~ncores:1 in
  let core = Core_model.create mem ~core:0 in
  let b = Block.make ~label:"t" ~code_base:0x10_0000 temps in
  Core_model.exec_block core ~rng:(Rng.create 1) b ~iterations;
  Core_model.counters core

let test_core_serial_vs_parallel () =
  (* A dependent chain must be slower than independent instructions. *)
  let serial =
    List.init 8 (fun _ ->
        Block.temp (Iform.by_name "IMUL_GPR64_GPR64") ~dst:0 ~srcs:[| 0; 0 |])
  in
  let parallel =
    List.init 8 (fun i ->
        Block.temp (Iform.by_name "ADD_GPR64_GPR64") ~dst:(i mod 8) ~srcs:[| (i + 1) mod 8 |])
  in
  let cs = run_block serial and cp = run_block parallel in
  Alcotest.(check bool) "serial IPC lower" true (Counters.ipc cs < Counters.ipc cp);
  Alcotest.(check bool) "parallel IPC decent" true (Counters.ipc cp > 1.0)

let test_core_port_contention () =
  (* Divides serialise on the lone divider port. *)
  let divs =
    List.init 4 (fun i -> Block.temp (Iform.by_name "IDIV_GPR64") ~dst:i ~srcs:[| i + 4 |])
  in
  let c = run_block divs in
  Alcotest.(check bool) "division-bound IPC << 1" true (Counters.ipc c < 0.3)

let test_core_memory_latency_hurts () =
  let hot =
    [ Block.temp (Iform.by_name "MOV_GPR64_MEM") ~dst:0 ~srcs:[| 1 |]
        ~mem:(Block.Fixed_offset { region = heap; offset = 0 }) ]
  in
  let streaming =
    [ Block.temp (Iform.by_name "MOV_GPR64_MEM") ~dst:0 ~srcs:[| 1 |]
        ~mem:(Block.Seq_stride { region = heap; start = 0; stride = 64; span = 1 lsl 24 }) ]
  in
  let ch = run_block ~iterations:4000 hot and cs = run_block ~iterations:4000 streaming in
  Alcotest.(check bool) "streaming slower than hot line" true
    (Counters.ipc cs < Counters.ipc ch)

let test_core_pointer_chase_serialises () =
  let chase =
    [ Block.temp (Iform.by_name "MOV_GPR64_MEM") ~dst:11 ~srcs:[| 11 |]
        ~mem:(Block.Chase { region = heap; start = 0; span = 1 lsl 24 }) ]
  in
  let independent =
    [ Block.temp (Iform.by_name "MOV_GPR64_MEM") ~dst:0 ~srcs:[| 1 |]
        ~mem:(Block.Rand_uniform { region = heap; start = 0; span = 1 lsl 24 }) ]
  in
  let cc = run_block ~iterations:2000 chase and ci = run_block ~iterations:2000 independent in
  Alcotest.(check bool) "chasing slower than independent misses" true
    (Counters.cpi cc > Counters.cpi ci)

let test_core_counts_insts () =
  let c =
    run_block ~iterations:123
      [ Block.temp (Iform.by_name "ADD_GPR64_GPR64") ~dst:0 ~srcs:[| 1 |];
        Block.temp (Iform.by_name "NOP") ]
  in
  Alcotest.(check int) "dynamic instruction count" 246 c.Counters.insts

let test_core_branches_counted () =
  let c =
    run_block ~iterations:512
      [ Block.temp (Iform.by_name "JNZ_REL") ~branch:{ Block.m = 1; n = 3; invert = false } ]
  in
  Alcotest.(check int) "branches" 512 c.Counters.branches;
  Alcotest.(check bool) "some mispredicts early" true (c.Counters.mispredicts > 0)

let test_core_width_factor () =
  let mk factor =
    let mem = Memory.create Platform.a ~ncores:1 in
    let core = Core_model.create mem ~core:0 in
    Core_model.set_width_factor core factor;
    let temps =
      List.init 16 (fun i ->
          Block.temp (Iform.by_name "ADD_GPR64_GPR64") ~dst:(i mod 8) ~srcs:[| (i + 1) mod 8 |])
    in
    let b = Block.make ~label:"w" ~code_base:0x20_0000 temps in
    Core_model.exec_block core ~rng:(Rng.create 2) b ~iterations:500;
    Counters.ipc (Core_model.counters core)
  in
  Alcotest.(check bool) "halving width halves throughput-bound IPC" true
    (mk 0.5 < mk 1.0)

let test_core_rep_string_scales () =
  let rep n =
    let c =
      run_block ~iterations:50
        [ Block.temp (Iform.by_name "REP_MOVSB") ~srcs:[| 6 |] ~rep_count:n
            ~mem:(Block.Seq_stride { region = heap; start = 0; stride = 64; span = 1 lsl 20 }) ]
    in
    Counters.cycles c
  in
  Alcotest.(check bool) "bigger copies cost more" true (rep 4096 > rep 256)

let test_core_topdown_accumulates () =
  let c =
    run_block ~iterations:2000
      [ Block.temp (Iform.by_name "MOV_GPR64_MEM") ~dst:0 ~srcs:[| 0 |]
          ~mem:(Block.Chase { region = heap; start = 0; span = 1 lsl 24 }) ]
  in
  let td = Counters.topdown c in
  Alcotest.(check bool) "memory-bound stream is backend-bound" true
    (td.Counters.backend > td.Counters.retiring)

let () =
  Alcotest.run "uarch"
    [
      ( "cache",
        [
          Alcotest.test_case "hit after fill" `Quick test_cache_hit_after_fill;
          Alcotest.test_case "capacity eviction" `Quick test_cache_capacity_eviction;
          Alcotest.test_case "fits working set" `Quick test_cache_fits_working_set;
          Alcotest.test_case "lru order" `Quick test_cache_lru_order;
          Alcotest.test_case "invalidate/probe" `Quick test_cache_invalidate_probe;
          Alcotest.test_case "flush" `Quick test_cache_flush;
          Alcotest.test_case "plru" `Quick test_cache_plru;
        ] );
      ( "branch_pred",
        [
          Alcotest.test_case "biased branch" `Quick test_predictor_biased_branch;
          Alcotest.test_case "periodic pattern" `Quick test_predictor_periodic_pattern;
          Alcotest.test_case "random hard" `Quick test_predictor_random_hard;
          Alcotest.test_case "btb" `Quick test_btb_miss_on_new_target;
        ] );
      ( "prefetcher",
        [
          Alcotest.test_case "stride" `Quick test_prefetcher_stride;
          Alcotest.test_case "random silent" `Quick test_prefetcher_random_silent;
        ] );
      ( "counters",
        [
          Alcotest.test_case "derived" `Quick test_counters_derived;
          Alcotest.test_case "sub/acc/reset" `Quick test_counters_sub_acc;
          Alcotest.test_case "topdown" `Quick test_topdown_normalised;
        ] );
      ( "platform",
        [
          Alcotest.test_case "table1" `Quick test_platform_table1;
          Alcotest.test_case "frequency scaling" `Quick test_platform_frequency_scaling;
          Alcotest.test_case "lookup" `Quick test_platform_lookup;
        ] );
      ( "memory",
        [
          Alcotest.test_case "latency ladder" `Quick test_memory_latency_ladder;
          Alcotest.test_case "attribution" `Quick test_memory_counters_attribution;
          Alcotest.test_case "set_counter" `Quick test_memory_set_counter;
          Alcotest.test_case "coherence" `Quick test_memory_coherence;
          Alcotest.test_case "inst side" `Quick test_memory_inst_side;
        ] );
      ( "core_model",
        [
          Alcotest.test_case "serial vs parallel" `Quick test_core_serial_vs_parallel;
          Alcotest.test_case "port contention" `Quick test_core_port_contention;
          Alcotest.test_case "memory latency" `Quick test_core_memory_latency_hurts;
          Alcotest.test_case "pointer chase" `Quick test_core_pointer_chase_serialises;
          Alcotest.test_case "inst counting" `Quick test_core_counts_insts;
          Alcotest.test_case "branch counting" `Quick test_core_branches_counted;
          Alcotest.test_case "width factor" `Quick test_core_width_factor;
          Alcotest.test_case "rep scaling" `Quick test_core_rep_string_scales;
          Alcotest.test_case "topdown backend" `Quick test_core_topdown_accumulates;
        ] );
    ]
