(* Tests for the self-tracing layer (Ditto_obs): span nesting and recording,
   the metrics registry, ring-buffer wrap-around, the Chrome and Jaeger
   exporters, the Pool task hook — and the "Ditto clones Ditto" loop, where
   the pipeline's own spans are exported as Jaeger JSON and fed back through
   the topology recovery the cloning pipeline applies to traced services. *)

module Obs = Ditto_obs.Obs
module Jsonx = Ditto_util.Jsonx
module Pool = Ditto_util.Pool
module Pipeline = Ditto_core.Pipeline
module Platform = Ditto_uarch.Platform
open Ditto_app

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Every test owns the (global) recording state end to end. *)
let fresh () =
  Obs.enable ();
  Obs.set_capacity 65536;
  Obs.Export.clear ();
  Obs.Metrics.reset ()

let find_span name spans =
  match List.find_opt (fun (s : Obs.completed) -> s.Obs.name = name) spans with
  | Some s -> s
  | None -> Alcotest.failf "span %S not recorded" name

(* {1 Spans} *)

let test_disabled_records_nothing () =
  fresh ();
  Obs.disable ();
  Obs.Span.with_span ~name:"hidden" (fun () -> ());
  check_bool "no current context" true (Obs.current () = None);
  check_int "no spans" 0 (List.length (Obs.Export.spans ()));
  Obs.enable ();
  check_int "disabled span really dropped" 0 (List.length (Obs.Export.spans ()))

let test_nesting () =
  fresh ();
  let v =
    Obs.Span.with_span ~name:"root" (fun () ->
        Obs.Span.with_span ~name:"child" (fun () ->
            Obs.Span.with_span ~name:"grand" (fun () -> ()));
        Obs.Span.with_span ~name:"child2" (fun () -> 41) + 1)
  in
  check_int "value passes through" 42 v;
  let spans = Obs.Export.spans () in
  check_int "four spans" 4 (List.length spans);
  let root = find_span "root" spans in
  let child = find_span "child" spans in
  let grand = find_span "grand" spans in
  let child2 = find_span "child2" spans in
  check_bool "root is a root" true (root.Obs.parent_id = None);
  check_bool "child under root" true (child.Obs.parent_id = Some root.Obs.span_id);
  check_bool "grand under child" true (grand.Obs.parent_id = Some child.Obs.span_id);
  check_bool "child2 under root" true (child2.Obs.parent_id = Some root.Obs.span_id);
  List.iter
    (fun (s : Obs.completed) ->
      check_bool "one trace" true (s.Obs.trace_id = root.Obs.trace_id);
      check_bool "duration non-negative" true (s.Obs.dur_ns >= 0L))
    spans;
  check_bool "root spans the children" true
    (root.Obs.start_ns <= child.Obs.start_ns && root.Obs.dur_ns >= child.Obs.dur_ns);
  check_bool "no open context after" true (Obs.current () = None)

let test_sibling_traces_distinct () =
  fresh ();
  Obs.Span.with_span ~name:"a" (fun () -> ());
  Obs.Span.with_span ~name:"b" (fun () -> ());
  let spans = Obs.Export.spans () in
  check_bool "separate roots, separate traces" true
    ((find_span "a" spans).Obs.trace_id <> (find_span "b" spans).Obs.trace_id)

let test_span_on_exception () =
  fresh ();
  (try Obs.Span.with_span ~name:"boom" (fun () -> failwith "expected") with
  | Failure _ -> ());
  let s = find_span "boom" (Obs.Export.spans ()) in
  check_bool "recorded despite raise" true (s.Obs.name = "boom");
  check_bool "stack unwound" true (Obs.current () = None)

let test_attrs () =
  fresh ();
  Obs.Span.with_span ~name:"attrs"
    ~attrs:[ ("k", Obs.Str "v") ]
    (fun () -> Obs.Span.add_attr "n" (Obs.Int 7));
  let s = find_span "attrs" (Obs.Export.spans ()) in
  check_bool "initial attr" true (List.assoc_opt "k" s.Obs.attrs = Some (Obs.Str "v"));
  check_bool "added attr" true (List.assoc_opt "n" s.Obs.attrs = Some (Obs.Int 7))

let test_ring_wrap () =
  fresh ();
  Obs.set_capacity 8;
  Obs.Export.clear ();
  for i = 1 to 20 do
    Obs.Span.with_span ~name:(Printf.sprintf "s%d" i) (fun () -> ())
  done;
  check_int "capacity retained" 8 (List.length (Obs.Export.spans ()));
  check_int "overflow counted" 12 (Obs.Export.dropped ());
  (* the ring keeps the newest spans *)
  ignore (find_span "s20" (Obs.Export.spans ()));
  Obs.set_capacity 65536;
  Obs.Export.clear ();
  check_int "clear resets dropped" 0 (Obs.Export.dropped ())

(* {1 Metrics} *)

let test_metrics () =
  fresh ();
  let c = Obs.Metrics.counter "test.counter" in
  Obs.disable ();
  Obs.Metrics.incr c;
  check_int "updates dropped while disabled" 0 (Obs.Metrics.value c);
  Obs.enable ();
  Obs.Metrics.incr c;
  Obs.Metrics.add c 4;
  check_int "incr + add" 5 (Obs.Metrics.value c);
  check_bool "same name, same counter" true
    (Obs.Metrics.value (Obs.Metrics.counter "test.counter") = 5);
  Obs.Metrics.register_gauge "test.gauge" (fun () -> 2.5);
  let snap = Obs.Metrics.snapshot () in
  check_bool "counter in snapshot" true (List.assoc_opt "test.counter" snap = Some 5.0);
  check_bool "gauge in snapshot" true (List.assoc_opt "test.gauge" snap = Some 2.5);
  check_bool "snapshot sorted" true
    (let names = List.map fst snap in
     names = List.sort compare names);
  Obs.Metrics.reset ();
  check_int "reset zeroes counters" 0 (Obs.Metrics.value c)

(* {1 Exporters} *)

let test_chrome_export () =
  fresh ();
  Obs.Span.with_span ~name:"outer" (fun () ->
      Obs.Span.with_span ~name:"inner" (fun () -> ()));
  let j = Obs.Export.to_chrome () in
  let events = Jsonx.to_list (Jsonx.member "traceEvents" j) in
  let complete = List.filter (fun e -> Jsonx.member "ph" e = Jsonx.Str "X") events in
  let meta = List.filter (fun e -> Jsonx.member "ph" e = Jsonx.Str "M") events in
  check_int "one complete event per span" 2 (List.length complete);
  check_bool "thread-name metadata present" true (meta <> []);
  List.iter
    (fun e ->
      check_bool "ts/dur/tid well-formed" true
        (Jsonx.to_float (Jsonx.member "ts" e) >= 0.0
        && Jsonx.to_float (Jsonx.member "dur" e) >= 0.0
        && Jsonx.to_int (Jsonx.member "tid" e) >= 0))
    complete;
  (match Jsonx.member "dittoMetrics" j with
  | Jsonx.Obj _ -> ()
  | _ -> Alcotest.fail "dittoMetrics missing");
  (* the export is valid JSON end to end *)
  check_bool "serialises and re-parses" true
    (Jsonx.of_string (Jsonx.to_string j) = j)

let test_jaeger_roundtrip () =
  fresh ();
  Obs.Span.with_span ~name:"frontend" (fun () ->
      Obs.Span.with_span ~name:"cache" ~attrs:[ ("req_bytes", Obs.Int 128) ] (fun () -> ());
      Obs.Span.with_span ~name:"db" (fun () ->
          Obs.Span.with_span ~name:"disk" (fun () -> ())));
  let spans = Ditto_trace.Jaeger.of_string (Jsonx.to_string (Obs.Export.to_jaeger ())) in
  check_int "all spans survive" 4 (List.length spans);
  let by_service name =
    List.find (fun (s : Ditto_trace.Span.t) -> s.Ditto_trace.Span.service = name) spans
  in
  check_bool "root has no parent" true (Ditto_trace.Span.root (by_service "frontend"));
  check_bool "tags carry sizes" true ((by_service "cache").Ditto_trace.Span.req_bytes = 128);
  let dag = Ditto_trace.Dag.of_spans spans in
  check_bool "entry recovered" true (dag.Ditto_trace.Dag.entry = "frontend");
  check_int "services" 4 (List.length dag.Ditto_trace.Dag.services);
  check_int "edges" 3 (List.length dag.Ditto_trace.Dag.edges);
  check_int "topological order covers the DAG" 4
    (List.length (Ditto_trace.Dag.topo_order dag))

(* {1 Pool task hook} *)

let test_pool_hook () =
  fresh ();
  let before = (Pool.stats ()).Pool.tasks_queued in
  let pool = Pool.create ~size:2 () in
  let results =
    Obs.Span.with_span ~name:"submitter" (fun () ->
        Pool.map pool
          (fun i -> Obs.Span.with_span ~name:(Printf.sprintf "task%d" i) (fun () -> 2 * i))
          [ 1; 2; 3; 4 ])
  in
  Pool.shutdown pool;
  check_bool "results in order" true (results = [ 2; 4; 6; 8 ]);
  check_bool "queue counter advanced" true ((Pool.stats ()).Pool.tasks_queued >= before + 4);
  let spans = Obs.Export.spans () in
  let submitter = find_span "submitter" spans in
  let hooks =
    List.filter (fun (s : Obs.completed) -> s.Obs.name = "pool.task:submitter") spans
  in
  check_int "one hook span per task" 4 (List.length hooks);
  List.iter
    (fun (h : Obs.completed) ->
      check_bool "parented to the submitter, across domains" true
        (h.Obs.parent_id = Some submitter.Obs.span_id
        && h.Obs.trace_id = submitter.Obs.trace_id))
    hooks;
  for i = 1 to 4 do
    let t = find_span (Printf.sprintf "task%d" i) spans in
    check_bool "task span nests under its hook span" true
      (List.exists (fun (h : Obs.completed) -> t.Obs.parent_id = Some h.Obs.span_id) hooks)
  done

(* {1 Ditto clones Ditto} *)

(* Trace the pipeline cloning redis (tuning on a 2-domain pool), export the
   spans as Jaeger JSON, and recover the pipeline's own call DAG with the
   very topology analysis the pipeline applies to services it clones. *)
let test_ditto_clones_ditto () =
  fresh ();
  let pool = Pool.create ~size:2 () in
  let load = Service.load ~qps:20000.0 ~open_loop:false ~duration:0.3 () in
  let result =
    Pipeline.clone ~pool ~requests:60 ~profile_requests:40 ~seed:7 ~platform:Platform.a ~load
      (Ditto_apps.Redis.spec ())
  in
  Pool.shutdown pool;
  check_bool "clone tuned" true (result.Pipeline.tuning <> None);
  check_int "nothing dropped" 0 (Obs.Export.dropped ());
  let snap = Obs.Metrics.snapshot () in
  let at least key =
    match List.assoc_opt key snap with
    | Some v -> check_bool (key ^ " counted") true (v >= least)
    | None -> Alcotest.failf "metric %s missing" key
  in
  at 1.0 "sim.events";
  at 1.0 "gen.blocks";
  at 1.0 "gen.synth_apps";
  at 1.0 "pool.tasks_queued";
  let spans = Ditto_trace.Jaeger.of_string (Jsonx.to_string (Obs.Export.to_jaeger ())) in
  check_bool "pipeline produced spans" true (List.length spans > 10);
  let dag = Ditto_trace.Dag.of_spans spans in
  check_bool "entry is the pipeline" true (dag.Ditto_trace.Dag.entry = "pipeline.clone");
  let services = dag.Ditto_trace.Dag.services in
  List.iter
    (fun name -> check_bool (name ^ " traced") true (List.mem name services))
    [ "pipeline.clone"; "clone.reference"; "clone.profile"; "tune"; "tune.evaluate";
      "runner.run"; "sim.run"; "pool.task:tune.iteration" ];
  check_bool "edges recovered" true (List.length dag.Ditto_trace.Dag.edges >= 5);
  (* well-formed tier DAG: acyclic, every service reachable in topo order *)
  let order = Ditto_trace.Dag.topo_order dag in
  check_int "topo order covers all services" (List.length services) (List.length order);
  check_bool "pipeline.clone first" true (List.hd order = "pipeline.clone")

let () =
  (* Leave the library disabled for any test binary linking this module. *)
  at_exit Obs.disable;
  Alcotest.run "obs"
    [
      ( "span",
        [
          Alcotest.test_case "disabled records nothing" `Quick test_disabled_records_nothing;
          Alcotest.test_case "nesting" `Quick test_nesting;
          Alcotest.test_case "sibling traces" `Quick test_sibling_traces_distinct;
          Alcotest.test_case "exception safety" `Quick test_span_on_exception;
          Alcotest.test_case "attributes" `Quick test_attrs;
          Alcotest.test_case "ring wrap" `Quick test_ring_wrap;
        ] );
      ("metrics", [ Alcotest.test_case "counters and gauges" `Quick test_metrics ]);
      ( "export",
        [
          Alcotest.test_case "chrome" `Quick test_chrome_export;
          Alcotest.test_case "jaeger roundtrip" `Quick test_jaeger_roundtrip;
        ] );
      ("pool", [ Alcotest.test_case "task hook parentage" `Quick test_pool_hook ]);
      ( "integration",
        [ Alcotest.test_case "ditto clones ditto" `Slow test_ditto_clones_ditto ] );
    ]
