(* Tests for the network and storage device models. *)
open Ditto_sim
open Ditto_net
module Disk = Ditto_storage.Disk
module Platform = Ditto_uarch.Platform

let check_close msg tolerance expected actual =
  if Float.abs (expected -. actual) > tolerance then
    Alcotest.failf "%s: expected %g within %g, got %g" msg expected tolerance actual

(* {1 Disk} *)

let test_disk_service_times () =
  let engine = Engine.create () in
  let ssd = Disk.create engine Platform.Ssd and hdd = Disk.create engine Platform.Hdd in
  Alcotest.(check bool) "HDD random >> SSD random" true
    (Disk.service_time hdd ~bytes:4096 ~random:true
    > 10.0 *. Disk.service_time ssd ~bytes:4096 ~random:true);
  Alcotest.(check bool) "sequential cheaper than random" true
    (Disk.service_time hdd ~bytes:4096 ~random:false
    < Disk.service_time hdd ~bytes:4096 ~random:true);
  Alcotest.(check bool) "bigger transfers cost more" true
    (Disk.service_time ssd ~bytes:(1 lsl 20) ~random:false
    > Disk.service_time ssd ~bytes:4096 ~random:false)

let test_disk_hdd_queueing () =
  (* One actuator: two concurrent random reads serialise. *)
  let engine = Engine.create () in
  let hdd = Disk.create engine Platform.Hdd in
  let finish = ref [] in
  for _ = 1 to 2 do
    Engine.spawn engine (fun () ->
        Disk.read hdd ~bytes:4096 ~random:true;
        finish := Engine.time () :: !finish)
  done;
  Engine.run engine;
  let t1 = Disk.service_time hdd ~bytes:4096 ~random:true in
  let latest = List.fold_left Float.max 0.0 !finish in
  check_close "second waits for first" 1e-6 (2.0 *. t1) latest

let test_disk_ssd_parallel_channels () =
  let engine = Engine.create () in
  let ssd = Disk.create engine Platform.Ssd in
  let finish = ref [] in
  for _ = 1 to 4 do
    Engine.spawn engine (fun () ->
        Disk.read ssd ~bytes:4096 ~random:true;
        finish := Engine.time () :: !finish)
  done;
  Engine.run engine;
  let t1 = Disk.service_time ssd ~bytes:4096 ~random:true in
  List.iter (fun t -> check_close "parallel channels" 1e-6 t1 t) !finish

let test_disk_stats () =
  let engine = Engine.create () in
  let d = Disk.create engine Platform.Ssd in
  Engine.spawn engine (fun () ->
      Disk.read d ~bytes:1000 ~random:false;
      Disk.write d ~bytes:500);
  Engine.run engine;
  Alcotest.(check int) "read bytes" 1000 (Disk.bytes_read d);
  Alcotest.(check int) "written bytes" 500 (Disk.bytes_written d);
  Disk.reset_stats d;
  Alcotest.(check int) "reset" 0 (Disk.bytes_read d)

(* {1 NIC} *)

let test_nic_serialisation_time () =
  let engine = Engine.create () in
  let nic = Nic.create engine ~gbps:1.0 in
  let t = ref 0.0 in
  Engine.spawn engine (fun () ->
      Nic.transmit nic ~bytes:125_000;
      (* 1ms at 1Gbps *)
      t := Engine.time ());
  Engine.run engine;
  Alcotest.(check bool) "roughly 1ms (plus framing)" true (!t >= 1e-3 && !t < 1.2e-3)

let test_nic_queueing () =
  let engine = Engine.create () in
  let nic = Nic.create engine ~gbps:1.0 in
  let finish = ref [] in
  for _ = 1 to 3 do
    Engine.spawn engine (fun () ->
        Nic.transmit nic ~bytes:125_000;
        finish := Engine.time () :: !finish)
  done;
  Engine.run engine;
  let latest = List.fold_left Float.max 0.0 !finish in
  Alcotest.(check bool) "three messages serialise" true (latest >= 3e-3)

let test_nic_stats () =
  let engine = Engine.create () in
  let nic = Nic.create engine ~gbps:10.0 in
  Engine.spawn engine (fun () -> Nic.transmit nic ~bytes:100);
  Engine.run engine;
  Nic.note_received nic ~bytes:50;
  Alcotest.(check int) "sent" 100 (Nic.bytes_sent nic);
  Alcotest.(check int) "received" 50 (Nic.bytes_received nic);
  Alcotest.(check (float 1e-9)) "gbps" 10.0 (Nic.gbps nic)

(* {1 Socket} *)

let make_pair engine =
  let a_nic = Nic.create engine ~gbps:10.0 and b_nic = Nic.create engine ~gbps:10.0 in
  Socket.pair engine ~a_nic ~b_nic ~latency:1e-4

let test_socket_delivery () =
  let engine = Engine.create () in
  let a, b = make_pair engine in
  let got = ref 0 and at = ref 0.0 in
  Engine.spawn engine (fun () ->
      got := Socket.recv b;
      at := Engine.time ());
  Engine.spawn engine (fun () -> Socket.send a ~bytes:1500);
  Engine.run engine;
  Alcotest.(check int) "size delivered" 1500 !got;
  Alcotest.(check bool) "after link latency" true (!at >= 1e-4)

let test_socket_bidirectional () =
  let engine = Engine.create () in
  let a, b = make_pair engine in
  let reply = ref 0 in
  Engine.spawn engine (fun () ->
      let req = Socket.recv b in
      Socket.send b ~bytes:(req * 2));
  Engine.spawn engine (fun () ->
      Socket.send a ~bytes:21;
      reply := Socket.recv a);
  Engine.run engine;
  Alcotest.(check int) "request/response" 42 !reply

let test_socket_recv_timed () =
  let engine = Engine.create () in
  let a, b = make_pair engine in
  let arrived = ref 0.0 in
  Engine.spawn engine (fun () ->
      let _, t = Socket.recv_timed b in
      arrived := t);
  Engine.spawn engine (fun () ->
      Engine.wait 0.5;
      Socket.send a ~bytes:10);
  Engine.run engine;
  Alcotest.(check bool) "delivery timestamp carried" true (!arrived >= 0.5)

let test_socket_try_recv_and_pending () =
  let engine = Engine.create () in
  let a, b = make_pair engine in
  Engine.spawn engine (fun () ->
      Socket.send a ~bytes:7;
      Engine.wait 1.0;
      Alcotest.(check int) "pending" 1 (Socket.pending b);
      Alcotest.(check (option int)) "try_recv" (Some 7) (Socket.try_recv b);
      Alcotest.(check (option int)) "empty" None (Socket.try_recv b));
  Engine.run engine

(* {1 Epoll} *)

let test_epoll_ready_and_wait () =
  let engine = Engine.create () in
  let a, b = make_pair engine in
  let ep = Socket.Epoll.create () in
  Socket.Epoll.add ep b;
  let woke = ref [] in
  Engine.spawn engine (fun () -> woke := Socket.Epoll.wait ep);
  Engine.spawn engine (fun () -> Socket.send a ~bytes:5);
  Engine.run engine;
  Alcotest.(check int) "one ready endpoint" 1 (List.length !woke)

let test_epoll_timeout () =
  let engine = Engine.create () in
  let _, b = make_pair engine in
  let ep = Socket.Epoll.create () in
  Socket.Epoll.add ep b;
  let result = ref [ b ] in
  Engine.spawn engine (fun () -> result := Socket.Epoll.wait ~timeout:0.01 ep);
  Engine.run engine;
  Alcotest.(check int) "timeout returns empty" 0 (List.length !result)

let test_epoll_zero_timeout_polls () =
  (* timeout:0. is a poll: with data queued it returns the ready endpoints,
     and empty it returns [] instead of blocking. The empty-poll path must
     perform no engine effect — calling it outside any process context
     (below, after Engine.run has finished) would crash if it suspended. *)
  let engine = Engine.create () in
  let a, b = make_pair engine in
  let ep = Socket.Epoll.create () in
  Socket.Epoll.add ep b;
  Engine.spawn engine (fun () ->
      Alcotest.(check int) "empty poll returns immediately" 0
        (List.length (Socket.Epoll.wait ~timeout:0.0 ep));
      Alcotest.(check (float 1e-12)) "no virtual time consumed" 0.0 (Engine.time ());
      Socket.send a ~bytes:3;
      Engine.wait 1.0;
      Alcotest.(check int) "queued data polls ready" 1
        (List.length (Socket.Epoll.wait ~timeout:0.0 ep)));
  Engine.run engine;
  Alcotest.(check int) "callable outside process context" 1
    (List.length (Socket.Epoll.wait ~timeout:0.0 ep))

let test_epoll_add_while_waiting () =
  (* Regression: a connection attached after the worker parked in wait must
     still wake it (without this, first requests stall a full timeout). *)
  let engine = Engine.create () in
  let ep = Socket.Epoll.create () in
  let woke_at = ref infinity in
  Engine.spawn engine (fun () ->
      ignore (Socket.Epoll.wait ~timeout:10.0 ep);
      woke_at := Engine.time ());
  Engine.spawn engine (fun () ->
      Engine.wait 0.1;
      let a, b = make_pair engine in
      Socket.Epoll.add ep b;
      Socket.send a ~bytes:9);
  Engine.run engine;
  Alcotest.(check bool) "woken promptly, not at timeout" true (!woke_at < 1.0)

let test_epoll_multiple_endpoints () =
  let engine = Engine.create () in
  let pairs = List.init 4 (fun _ -> make_pair engine) in
  let ep = Socket.Epoll.create () in
  List.iter (fun (_, b) -> Socket.Epoll.add ep b) pairs;
  let ready_count = ref 0 in
  Engine.spawn engine (fun () ->
      let ready = Socket.Epoll.wait ep in
      ready_count := List.length ready);
  Engine.spawn engine (fun () ->
      let a1, _ = List.nth pairs 1 and a3, _ = List.nth pairs 3 in
      Socket.send a1 ~bytes:1;
      Socket.send a3 ~bytes:1);
  Engine.run engine;
  Alcotest.(check bool) "at least one ready" true (!ready_count >= 1)

let () =
  Alcotest.run "net_storage"
    [
      ( "disk",
        [
          Alcotest.test_case "service times" `Quick test_disk_service_times;
          Alcotest.test_case "hdd queueing" `Quick test_disk_hdd_queueing;
          Alcotest.test_case "ssd channels" `Quick test_disk_ssd_parallel_channels;
          Alcotest.test_case "stats" `Quick test_disk_stats;
        ] );
      ( "nic",
        [
          Alcotest.test_case "serialisation" `Quick test_nic_serialisation_time;
          Alcotest.test_case "queueing" `Quick test_nic_queueing;
          Alcotest.test_case "stats" `Quick test_nic_stats;
        ] );
      ( "socket",
        [
          Alcotest.test_case "delivery" `Quick test_socket_delivery;
          Alcotest.test_case "bidirectional" `Quick test_socket_bidirectional;
          Alcotest.test_case "recv timed" `Quick test_socket_recv_timed;
          Alcotest.test_case "try_recv/pending" `Quick test_socket_try_recv_and_pending;
        ] );
      ( "epoll",
        [
          Alcotest.test_case "ready and wait" `Quick test_epoll_ready_and_wait;
          Alcotest.test_case "timeout" `Quick test_epoll_timeout;
          Alcotest.test_case "zero timeout polls" `Quick test_epoll_zero_timeout_polls;
          Alcotest.test_case "add while waiting" `Quick test_epoll_add_while_waiting;
          Alcotest.test_case "multiple endpoints" `Quick test_epoll_multiple_endpoints;
        ] );
    ]
