(* Unit and property tests for Ditto_util: RNG, distributions, statistics,
   histograms, clustering, tree edit distance, tables. *)
open Ditto_util

let check_float = Alcotest.(check (float 1e-9))
let check_close msg tolerance expected actual =
  if Float.abs (expected -. actual) > tolerance then
    Alcotest.failf "%s: expected %g within %g, got %g" msg expected tolerance actual

(* {1 Rng} *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_split_independent () =
  let root = Rng.create 7 in
  let a = Rng.split root and b = Rng.split root in
  Alcotest.(check bool) "split streams differ" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_copy () =
  let a = Rng.create 9 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.range rng 5 15 in
    Alcotest.(check bool) "in range" true (v >= 5 && v < 15)
  done

let test_rng_uniformity () =
  let rng = Rng.create 11 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Rng.int rng 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      check_close (Printf.sprintf "bucket %d" i) 0.02 0.1 (float_of_int c /. float_of_int n))
    buckets

let prop_int_bounds =
  QCheck.Test.make ~name:"Rng.int always in [0,n)" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let v = Rng.int rng n in
      v >= 0 && v < n)

let test_shuffle_permutation () =
  let rng = Rng.create 5 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 Fun.id) sorted

(* {1 Dist} *)

let test_exponential_mean () =
  let rng = Rng.create 13 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Dist.exponential rng ~mean:2.5
  done;
  check_close "exponential mean" 0.05 2.5 (!sum /. float_of_int n)

let test_normal_moments () =
  let rng = Rng.create 17 in
  let n = 50_000 in
  let s = Stats.create () in
  for _ = 1 to n do
    Stats.add s (Dist.normal rng ~mean:3.0 ~std:2.0)
  done;
  check_close "normal mean" 0.05 3.0 (Stats.mean s);
  check_close "normal std" 0.05 2.0 (Stats.std s)

let test_zipf_skew () =
  let rng = Rng.create 23 in
  let z = Dist.zipf ~n:1000 ~s:0.99 in
  let counts = Array.make 1000 0 in
  for _ = 1 to 50_000 do
    let i = Dist.zipf_sample z rng in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "rank 0 most popular" true (counts.(0) > counts.(10));
  Alcotest.(check bool) "rank 10 beats rank 500" true (counts.(10) > counts.(500))

let test_discrete_weights () =
  let rng = Rng.create 29 in
  let d = Dist.discrete [ ("a", 1.0); ("b", 3.0) ] in
  let a = ref 0 and n = 40_000 in
  for _ = 1 to n do
    if Dist.discrete_sample d rng = "a" then incr a
  done;
  check_close "weight ratio" 0.02 0.25 (float_of_int !a /. float_of_int n)

let test_discrete_support_normalised () =
  let d = Dist.discrete [ (1, 2.0); (2, 2.0); (3, 4.0) ] in
  let total = Array.fold_left (fun acc (_, p) -> acc +. p) 0.0 (Dist.discrete_support d) in
  check_float "probabilities sum to 1" 1.0 total

let test_discrete_rejects_empty () =
  Alcotest.check_raises "empty support" (Invalid_argument "Dist.discrete: empty or non-positive support")
    (fun () -> ignore (Dist.discrete ([] : (int * float) list)))

let test_empirical () =
  let e = Dist.empirical [| 1.0; 2.0; 3.0 |] in
  check_float "mean" 2.0 (Dist.empirical_mean e);
  let rng = Rng.create 31 in
  for _ = 1 to 100 do
    let v = Dist.empirical_sample e rng in
    Alcotest.(check bool) "sample from support" true (v = 1.0 || v = 2.0 || v = 3.0)
  done

let test_pareto_heavy_tail () =
  let rng = Rng.create 37 in
  let all_above = ref true in
  for _ = 1 to 1000 do
    if Dist.pareto rng ~scale:1.0 ~shape:2.0 < 1.0 then all_above := false
  done;
  Alcotest.(check bool) "pareto >= scale" true !all_above

(* {1 Stats} *)

let test_stats_basics () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  Alcotest.(check int) "count" 5 (Stats.count s);
  check_float "mean" 3.0 (Stats.mean s);
  check_float "p50" 3.0 (Stats.percentile s 50.0);
  check_float "p0" 1.0 (Stats.percentile s 0.0);
  check_float "p100" 5.0 (Stats.percentile s 100.0)

let test_stats_percentile_interpolation () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 0.0; 10.0 ];
  check_float "p25 interpolates" 2.5 (Stats.percentile s 25.0)

let test_stats_add_after_sort () =
  let s = Stats.create () in
  Stats.add s 5.0;
  ignore (Stats.percentile s 50.0);
  Stats.add s 1.0;
  check_float "resorts after add" 1.0 (Stats.percentile s 0.0)

let test_stats_summary () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  let sum = Stats.summary s in
  check_float "min" 1.0 sum.Stats.min;
  check_float "max" 100.0 sum.Stats.max;
  check_close "p99" 1.0 99.0 sum.Stats.p99

let test_stats_mape () =
  let m = Stats.mape ~actual:[| 10.0; 20.0 |] ~predicted:[| 11.0; 18.0 |] in
  check_close "mape" 1e-6 10.0 m

let test_stats_mape_skips_zero () =
  let m = Stats.mape ~actual:[| 0.0; 10.0 |] ~predicted:[| 5.0; 10.0 |] in
  check_float "zero actual skipped" 0.0 m

let prop_percentile_monotonic =
  QCheck.Test.make ~name:"percentiles are monotonic" ~count:200
    QCheck.(list_of_size (Gen.int_range 2 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      Stats.percentile s 10.0 <= Stats.percentile s 50.0
      && Stats.percentile s 50.0 <= Stats.percentile s 95.0)

let prop_mean_between_min_max =
  QCheck.Test.make ~name:"mean within [min,max]" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-1e6) 1e6))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let sum = Stats.summary s in
      sum.Stats.mean >= sum.Stats.min -. 1e-6 && sum.Stats.mean <= sum.Stats.max +. 1e-6)

(* {1 Histogram} *)

let test_histogram_counts () =
  let h = Histogram.create () in
  Histogram.add h 3;
  Histogram.add ~count:4 h 3;
  Histogram.add h 7;
  Alcotest.(check int) "count 3" 5 (Histogram.count h 3);
  Alcotest.(check int) "total" 6 (Histogram.total h);
  Alcotest.(check (list (pair int int))) "bindings sorted" [ (3, 5); (7, 1) ] (Histogram.bindings h)

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.add a 1;
  Histogram.add b 1;
  Histogram.add b 2;
  let m = Histogram.merge a b in
  Alcotest.(check int) "merged 1" 2 (Histogram.count m 1);
  Alcotest.(check int) "merged 2" 1 (Histogram.count m 2)

let test_log2_bins () =
  Alcotest.(check int) "log2 1" 0 (Histogram.log2_bin 1);
  Alcotest.(check int) "log2 2" 1 (Histogram.log2_bin 2);
  Alcotest.(check int) "log2 1023" 9 (Histogram.log2_bin 1023);
  Alcotest.(check int) "log2 1024" 10 (Histogram.log2_bin 1024)

let test_rate_quantization () =
  Alcotest.(check int) "rate 0.5 -> bin 1" 1 (Histogram.log2_bin_rate 0.5);
  Alcotest.(check int) "rate 1.0 -> bin 0" 0 (Histogram.log2_bin_rate 1.0);
  Alcotest.(check int) "rate 2^-10" 10 (Histogram.log2_bin_rate (1.0 /. 1024.0));
  Alcotest.(check int) "tiny rates clamp to 10" 10 (Histogram.log2_bin_rate 1e-9);
  check_float "inverse" 0.25 (Histogram.rate_of_log2_bin 2)

let prop_rate_roundtrip =
  QCheck.Test.make ~name:"rate quantization roundtrip within bin" ~count:100
    QCheck.(int_range 0 10)
    (fun b -> Histogram.log2_bin_rate (Histogram.rate_of_log2_bin b) = b)

(* {1 Cluster} *)

let test_cluster_two_groups () =
  let items = [| 0.0; 0.1; 0.2; 10.0; 10.1; 10.2 |] in
  let clusters =
    Cluster.agglomerative ~distance:(fun a b -> Float.abs (a -. b)) ~threshold:1.0 items
  in
  Alcotest.(check int) "two clusters" 2 (List.length clusters);
  List.iter
    (fun c -> Alcotest.(check int) "each of size 3" 3 (List.length c))
    clusters

let test_cluster_k () =
  let items = Array.init 10 float_of_int in
  let clusters =
    Cluster.agglomerative_k ~distance:(fun a b -> Float.abs (a -. b)) ~k:3 items
  in
  Alcotest.(check int) "exactly k" 3 (List.length clusters)

let test_cluster_singletons () =
  let items = [| 0.0; 100.0 |] in
  let clusters =
    Cluster.agglomerative ~distance:(fun a b -> Float.abs (a -. b)) ~threshold:1.0 items
  in
  Alcotest.(check int) "far apart stay separate" 2 (List.length clusters)

let test_cluster_empty () =
  let clusters =
    Cluster.agglomerative ~distance:(fun _ _ -> 0.0) ~threshold:1.0 ([||] : int array)
  in
  Alcotest.(check int) "empty input" 0 (List.length clusters)

let test_cluster_preserves_items () =
  let items = Array.init 12 Fun.id in
  let clusters =
    Cluster.agglomerative
      ~distance:(fun a b -> float_of_int (abs (a - b)))
      ~threshold:2.5 items
  in
  let all = List.concat clusters |> List.sort compare in
  Alcotest.(check (list int)) "no item lost" (Array.to_list items) all

(* {1 Tree_edit} *)

let test_tree_identical () =
  let t = Tree_edit.node "a" [ Tree_edit.leaf "b"; Tree_edit.leaf "c" ] in
  check_float "zero distance" 0.0 (Tree_edit.distance t t)

let test_tree_relabel () =
  let a = Tree_edit.leaf "x" and b = Tree_edit.leaf "y" in
  check_float "single relabel" 1.0 (Tree_edit.distance a b)

let test_tree_insert () =
  let a = Tree_edit.node "r" [ Tree_edit.leaf "x" ] in
  let b = Tree_edit.node "r" [ Tree_edit.leaf "x"; Tree_edit.leaf "y" ] in
  check_float "one insertion" 1.0 (Tree_edit.distance a b)

let test_tree_symmetry () =
  let a = Tree_edit.node "r" [ Tree_edit.leaf "x"; Tree_edit.node "m" [ Tree_edit.leaf "z" ] ] in
  let b = Tree_edit.node "r" [ Tree_edit.leaf "w" ] in
  check_float "symmetric" (Tree_edit.distance a b) (Tree_edit.distance b a)

let test_tree_size_depth () =
  let t = Tree_edit.node 1 [ Tree_edit.leaf 2; Tree_edit.node 3 [ Tree_edit.leaf 4 ] ] in
  Alcotest.(check int) "size" 4 (Tree_edit.size t);
  Alcotest.(check int) "depth" 3 (Tree_edit.depth t)

let test_tree_normalized_bounds () =
  let a = Tree_edit.node "r" (List.init 5 (fun i -> Tree_edit.leaf (string_of_int i))) in
  let b = Tree_edit.leaf "q" in
  let d = Tree_edit.normalized_distance a b in
  Alcotest.(check bool) "normalised in [0,1]" true (d >= 0.0 && d <= 1.0)

(* {1 Jsonx} *)

let test_jsonx_unicode_escapes () =
  (* built with concatenation so the source holds the escape sequences,
     not the decoded characters *)
  let esc hexes = "\"" ^ String.concat "" (List.map (fun h -> "\\u" ^ h) hexes) ^ "\"" in
  let str s = Jsonx.to_str (Jsonx.of_string s) in
  Alcotest.(check string) "ascii" "A" (str (esc [ "0041" ]));
  Alcotest.(check string) "latin-1 e-acute" "\xc3\xa9" (str (esc [ "00e9" ]));
  Alcotest.(check string) "euro sign" "\xe2\x82\xac" (str (esc [ "20ac" ]));
  Alcotest.(check string) "uppercase hex" "\xe2\x82\xac" (str (esc [ "20AC" ]));
  Alcotest.(check string) "surrogate pair (emoji)" "\xf0\x9f\x98\x80"
    (str (esc [ "d83d"; "de00" ]));
  Alcotest.(check string) "control char" "\x01" (str (esc [ "0001" ]));
  Alcotest.(check string) "raw utf-8 passes through" "\xc3\xa9"
    (str "\"\xc3\xa9\"")

let expect_parse_error label s =
  match Jsonx.of_string s with
  | exception Jsonx.Parse_error _ -> ()
  | _ -> Alcotest.failf "%s: expected Parse_error on %s" label s

let test_jsonx_bad_escapes () =
  expect_parse_error "lone high surrogate" {|"\ud800"|};
  expect_parse_error "lone low surrogate" {|"\udc00"|};
  expect_parse_error "high then non-surrogate" {|"\ud800A"|};
  expect_parse_error "high then literal" {|"\ud800x"|};
  expect_parse_error "bad hex digit" {|"\u12g4"|};
  expect_parse_error "underscore is not hex" {|"\u1_23"|};
  expect_parse_error "truncated" {|"\u12|}

let test_jsonx_to_int () =
  Alcotest.(check int) "integral float" 3 (Jsonx.to_int (Jsonx.Num 3.0));
  Alcotest.(check int) "negative" (-7) (Jsonx.to_int (Jsonx.Num (-7.0)));
  List.iter
    (fun (label, v) ->
      match Jsonx.to_int (Jsonx.Num v) with
      | exception Jsonx.Parse_error _ -> ()
      | i -> Alcotest.failf "to_int %s: expected Parse_error, got %d" label i)
    [ ("nan", Float.nan); ("inf", Float.infinity); ("-inf", Float.neg_infinity) ]

(* Round-trip generator: arbitrary byte strings (control chars exercise the
   \uXXXX escapes; bytes >= 128 pass through raw) and finite numbers only —
   Jsonx has no representation for nan/inf, which is what to_int guards. *)
let json_gen =
  let open QCheck.Gen in
  let finite_float =
    map (fun f -> if Float.is_finite f then f else 0.5) float
  in
  let scalar =
    oneof
      [
        return Jsonx.Null;
        map (fun b -> Jsonx.Bool b) bool;
        map (fun f -> Jsonx.Num f) finite_float;
        map (fun i -> Jsonx.Num (float_of_int i)) int;
        map (fun s -> Jsonx.Str s) (string_size (int_bound 12));
      ]
  in
  let rec value n =
    if n <= 0 then scalar
    else
      frequency
        [
          (3, scalar);
          (1, map (fun l -> Jsonx.List l) (list_size (int_bound 4) (value (n / 2))));
          ( 1,
            map
              (fun l -> Jsonx.Obj l)
              (list_size (int_bound 4) (pair (string_size (int_bound 8)) (value (n / 2)))) );
        ]
  in
  sized (fun n -> value (min n 8))

let prop_jsonx_roundtrip =
  QCheck.Test.make ~name:"Jsonx to_string |> of_string = id" ~count:500
    (QCheck.make json_gen ~print:(fun v -> Jsonx.to_string v))
    (fun v ->
      Jsonx.of_string (Jsonx.to_string v) = v
      && Jsonx.of_string (Jsonx.to_string ~pretty:true v) = v)

(* {1 Table} *)

let test_table_render () =
  let out = Table.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  Alcotest.(check bool) "contains rule" true (String.contains out '-');
  Alcotest.(check bool) "contains cells" true
    (String.length out > 0
    && String.index_opt out '3' <> None)

let test_table_fmt () =
  Alcotest.(check string) "zero" "0" (Table.fmt_float 0.0);
  Alcotest.(check string) "pct" "12.3%" (Table.fmt_pct 12.34)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "range" `Quick test_rng_range;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
          qt prop_int_bounds;
        ] );
      ( "dist",
        [
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "normal moments" `Quick test_normal_moments;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
          Alcotest.test_case "discrete weights" `Quick test_discrete_weights;
          Alcotest.test_case "discrete support" `Quick test_discrete_support_normalised;
          Alcotest.test_case "discrete empty" `Quick test_discrete_rejects_empty;
          Alcotest.test_case "empirical" `Quick test_empirical;
          Alcotest.test_case "pareto" `Quick test_pareto_heavy_tail;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "interpolation" `Quick test_stats_percentile_interpolation;
          Alcotest.test_case "add after sort" `Quick test_stats_add_after_sort;
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "mape" `Quick test_stats_mape;
          Alcotest.test_case "mape zero" `Quick test_stats_mape_skips_zero;
          qt prop_percentile_monotonic;
          qt prop_mean_between_min_max;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "counts" `Quick test_histogram_counts;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "log2 bins" `Quick test_log2_bins;
          Alcotest.test_case "rate quantization" `Quick test_rate_quantization;
          qt prop_rate_roundtrip;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "two groups" `Quick test_cluster_two_groups;
          Alcotest.test_case "k clusters" `Quick test_cluster_k;
          Alcotest.test_case "singletons" `Quick test_cluster_singletons;
          Alcotest.test_case "empty" `Quick test_cluster_empty;
          Alcotest.test_case "preserves items" `Quick test_cluster_preserves_items;
        ] );
      ( "tree_edit",
        [
          Alcotest.test_case "identical" `Quick test_tree_identical;
          Alcotest.test_case "relabel" `Quick test_tree_relabel;
          Alcotest.test_case "insert" `Quick test_tree_insert;
          Alcotest.test_case "symmetry" `Quick test_tree_symmetry;
          Alcotest.test_case "size/depth" `Quick test_tree_size_depth;
          Alcotest.test_case "normalized bounds" `Quick test_tree_normalized_bounds;
        ] );
      ( "jsonx",
        [
          Alcotest.test_case "unicode escapes" `Quick test_jsonx_unicode_escapes;
          Alcotest.test_case "bad escapes" `Quick test_jsonx_bad_escapes;
          Alcotest.test_case "to_int non-finite" `Quick test_jsonx_to_int;
          qt prop_jsonx_roundtrip;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "formats" `Quick test_table_fmt;
        ] );
    ]
