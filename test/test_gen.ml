(* Tests for the generator, tuner, and user-level baseline. *)
open Ditto_app
open Ditto_gen
module P = Ditto_profile
module Platform = Ditto_uarch.Platform

let redis_profile =
  lazy
    (let app = Ditto_apps.Redis.spec () in
     P.Tier_profile.profile_app ~requests:80 ~seed:30 app)

let redis_tier_profile () = List.hd (Lazy.force redis_profile).P.Tier_profile.tiers

(* {1 Stages} *)

let test_stage_features_monotone () =
  (* Each later stage enables a superset of features. *)
  let as_list (f : Body_gen.features) =
    [
      f.Body_gen.f_syscalls; f.Body_gen.f_inst_count; f.Body_gen.f_inst_mix;
      f.Body_gen.f_branches; f.Body_gen.f_i_mem; f.Body_gen.f_d_mem; f.Body_gen.f_deps;
    ]
  in
  let stages = [ 'A'; 'B'; 'C'; 'D'; 'E'; 'F'; 'G'; 'H' ] in
  let rec check = function
    | a :: (b :: _ as rest) ->
        let fa = as_list (Body_gen.stage a) and fb = as_list (Body_gen.stage b) in
        List.iter2
          (fun x y -> Alcotest.(check bool) (Printf.sprintf "%c <= %c" a b) true ((not x) || y))
          fa fb;
        check rest
    | _ -> ()
  in
  check stages;
  Alcotest.(check bool) "A empty" true (Body_gen.stage 'A' = Body_gen.no_features);
  Alcotest.(check bool) "H full" true (Body_gen.stage 'H' = Body_gen.all_features)

let test_stage_invalid () =
  Alcotest.check_raises "bad stage" (Invalid_argument "Body_gen.stage: Z") (fun () ->
      ignore (Body_gen.stage 'Z'))

(* {1 Generated handlers} *)

let space = Layout.space ~tier_index:0 ~heap_bytes:(160 * 1024 * 1024) ~shared_bytes:(1 lsl 16)

let gen_ops ?(features = Body_gen.all_features) ?(params = Params.default) () =
  let handler =
    Body_gen.generate ~profile:(redis_tier_profile ()) ~space ~features ~params ~downstream:[]
      ~seed:31
  in
  handler (Ditto_util.Rng.create 32) 0

let dynamic_insts ops =
  List.fold_left
    (fun acc op ->
      match op with
      | Spec.Compute (b, iters) -> acc + (b.Ditto_isa.Block.static_insts * iters)
      | _ -> acc)
    0 ops

let test_generate_stage_a_empty_body () =
  let ops = gen_ops ~features:(Body_gen.stage 'A') () in
  Alcotest.(check int) "no work at stage A" 0 (List.length ops)

let test_generate_inst_count_matches_profile () =
  let profile = redis_tier_profile () in
  let target = profile.P.Tier_profile.instmix.P.Instmix.insts_per_request in
  (* average across several requests (probabilistic blocks) *)
  let handler =
    Body_gen.generate ~profile ~space ~features:Body_gen.all_features ~params:Params.default
      ~downstream:[] ~seed:33
  in
  let rng = Ditto_util.Rng.create 34 in
  let total = ref 0 in
  let n = 50 in
  for req = 0 to n - 1 do
    total := !total + dynamic_insts (handler rng req)
  done;
  let mean = float_of_int !total /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "insts within 25%% (target %.0f, got %.0f)" target mean)
    true
    (Float.abs (mean -. target) /. target < 0.25)

let mean_dynamic_insts ?params () =
  let handler =
    Body_gen.generate ~profile:(redis_tier_profile ()) ~space ~features:Body_gen.all_features
      ~params:(Option.value ~default:Params.default params)
      ~downstream:[] ~seed:31
  in
  let rng = Ditto_util.Rng.create 32 in
  let total = ref 0 in
  for req = 0 to 49 do
    total := !total + dynamic_insts (handler rng req)
  done;
  float_of_int !total /. 50.0

let test_generate_inst_scale_knob () =
  let base = mean_dynamic_insts () in
  let doubled = mean_dynamic_insts ~params:{ Params.default with Params.inst_scale = 2.0 } () in
  Alcotest.(check bool) "inst_scale doubles work" true (doubled > 1.5 *. base)

let test_generate_distinct_from_original () =
  (* The synthetic code must not reuse the original's code addresses. *)
  let app = Ditto_apps.Redis.spec () in
  let orig_tier = List.hd app.Spec.tiers in
  let orig_bases = ref [] in
  List.iter
    (fun op ->
      match op with
      | Spec.Compute (b, _) -> orig_bases := b.Ditto_isa.Block.code_base :: !orig_bases
      | _ -> ())
    (orig_tier.Spec.handler (Ditto_util.Rng.create 1) 0);
  List.iter
    (fun op ->
      match op with
      | Spec.Compute (b, _) ->
          Alcotest.(check bool) "distinct code addresses" true
            (not (List.mem b.Ditto_isa.Block.code_base !orig_bases))
      | _ -> ())
    (gen_ops ())

let test_generate_downstream_calls () =
  let edge =
    {
      Ditto_trace.Dag.caller = "t";
      callee = "backend";
      calls_per_request = 1.0;
      probability = 1.0;
      req_bytes = 256;
      resp_bytes = 512;
    }
  in
  let handler =
    Body_gen.generate ~profile:(redis_tier_profile ()) ~space ~features:Body_gen.all_features
      ~params:Params.default ~downstream:[ edge ] ~seed:35
  in
  let ops = handler (Ditto_util.Rng.create 36) 0 in
  let calls =
    List.filter (function Spec.Call { target = "backend"; _ } -> true | _ -> false) ops
  in
  Alcotest.(check int) "one call per request" 1 (List.length calls)

let test_generate_i_footprint_scales () =
  (* Sum the footprint of all distinct blocks seen across many requests
     (some blocks execute probabilistically). *)
  let footprint ?params () =
    let handler =
      Body_gen.generate ~profile:(redis_tier_profile ()) ~space
        ~features:Body_gen.all_features
        ~params:(Option.value ~default:Params.default params)
        ~downstream:[] ~seed:31
    in
    let rng = Ditto_util.Rng.create 32 in
    let seen = Hashtbl.create 16 in
    for req = 0 to 19 do
      List.iter
        (fun op ->
          match op with
          | Spec.Compute (b, _) ->
              Hashtbl.replace seen b.Ditto_isa.Block.uid b.Ditto_isa.Block.code_bytes
          | _ -> ())
        (handler rng req)
    done;
    Hashtbl.fold (fun _ bytes acc -> acc + bytes) seen 0
  in
  let base = footprint () in
  let wide = footprint ~params:{ Params.default with Params.i_ws_scale = 4.0 } () in
  Alcotest.(check bool) "i_ws_scale grows footprint" true (wide > base)

(* {1 Clone assembly} *)

let test_clone_preserves_skeleton () =
  let app = Ditto_apps.Mongodb.spec () in
  let profile = P.Tier_profile.profile_app ~requests:40 ~seed:37 app in
  let synth = Clone.synth_app profile in
  Alcotest.(check string) "name suffixed" "mongodb_synth" synth.Spec.app_name;
  let orig_tier = List.hd app.Spec.tiers and synth_tier = List.hd synth.Spec.tiers in
  Alcotest.(check bool) "server model preserved" true
    (synth_tier.Spec.server_model = orig_tier.Spec.server_model);
  Alcotest.(check int) "workers preserved" orig_tier.Spec.thread_model.Spec.workers
    synth_tier.Spec.thread_model.Spec.workers;
  Alcotest.(check bool) "dynamic threads preserved" true
    (synth_tier.Spec.thread_model.Spec.dynamic_threads
    = orig_tier.Spec.thread_model.Spec.dynamic_threads);
  Alcotest.(check int) "response bytes preserved" orig_tier.Spec.response_bytes
    synth_tier.Spec.response_bytes;
  Alcotest.(check int) "file footprint preserved" orig_tier.Spec.file_bytes
    synth_tier.Spec.file_bytes;
  Alcotest.(check bool) "background thread cloned" true
    (synth_tier.Spec.background_handler <> None);
  Alcotest.(check bool) "page cache hint carried" true
    (synth.Spec.page_cache_hint = app.Spec.page_cache_hint)

let test_clone_deterministic () =
  let profile = Lazy.force redis_profile in
  let a = Clone.synth_app ~seed:40 profile and b = Clone.synth_app ~seed:40 profile in
  let ops spec = (List.hd spec.Spec.tiers).Spec.handler (Ditto_util.Rng.create 1) 0 in
  Alcotest.(check int) "same op count" (List.length (ops a)) (List.length (ops b))

(* {1 Tuner} *)

let test_counter_errors () =
  let a = Ditto_uarch.Counters.create () and b = Ditto_uarch.Counters.create () in
  a.Ditto_uarch.Counters.insts <- 1000;
  a.Ditto_uarch.Counters.s.Ditto_uarch.Counters.cycles <- 1000.0;
  b.Ditto_uarch.Counters.insts <- 1000;
  b.Ditto_uarch.Counters.s.Ditto_uarch.Counters.cycles <- 2000.0;
  let errs =
    Ditto_tune.Tuner.counter_errors ~original:a ~synthetic:b ~orig_requests:10
      ~synth_requests:10
  in
  Alcotest.(check (float 1e-9)) "ipc halved = 50% error" 0.5 (List.assoc "ipc" errs);
  Alcotest.(check (float 1e-9)) "insts exact" 0.0 (List.assoc "insts" errs)

let test_tuner_improves_or_converges () =
  let app = Ditto_apps.Redis.spec () in
  let load = Service.load ~qps:20000.0 ~open_loop:false ~duration:0.4 () in
  let config = Runner.config ~requests:120 ~seed:41 Platform.a in
  let reference = Runner.run config ~load app in
  let profile = P.Tier_profile.profile_app ~requests:80 ~seed:42 app in
  let _synth, report =
    Ditto_tune.Tuner.tune ~max_iterations:4 ~config ~load ~reference ~profile ()
  in
  Alcotest.(check bool) "iterations ran" true (List.length report.Ditto_tune.Tuner.iterations >= 1);
  let first = List.hd report.Ditto_tune.Tuner.iterations in
  let best =
    List.fold_left
      (fun acc (it : Ditto_tune.Tuner.iteration) -> Float.min acc it.Ditto_tune.Tuner.worst_error)
      infinity report.Ditto_tune.Tuner.iterations
  in
  Alcotest.(check bool) "best iterate no worse than first" true
    (best <= first.Ditto_tune.Tuner.worst_error +. 1e-9);
  List.iter
    (fun (_, (p : Params.t)) ->
      Alcotest.(check bool) "params within clamps" true
        (p.Params.inst_scale >= 0.25 && p.Params.inst_scale <= 4.0))
    report.Ditto_tune.Tuner.final_params

(* {1 Baseline} *)

let test_baseline_categories () =
  Alcotest.(check int) "alu" 0 (Ditto_baseline.Userlevel_clone.category_of Ditto_isa.Iclass.Int_alu);
  Alcotest.(check int) "div" 2 (Ditto_baseline.Userlevel_clone.category_of Ditto_isa.Iclass.Int_div);
  Alcotest.(check int) "load" 5 (Ditto_baseline.Userlevel_clone.category_of Ditto_isa.Iclass.Load);
  Alcotest.(check int) "branch" 7
    (Ditto_baseline.Userlevel_clone.category_of Ditto_isa.Iclass.Branch_cond)

let test_baseline_no_syscalls () =
  let profile = Lazy.force redis_profile in
  let synth = Ditto_baseline.Userlevel_clone.synth_app profile in
  Alcotest.(check string) "name" "redis_userlevel" synth.Spec.app_name;
  let tier = List.hd synth.Spec.tiers in
  let ops = tier.Spec.handler (Ditto_util.Rng.create 1) 0 in
  List.iter
    (fun op ->
      match op with
      | Spec.Compute _ -> ()
      | _ -> Alcotest.fail "baseline must be user-level compute only")
    ops

let test_baseline_misses_kernel_time () =
  (* The headline claim: a user-level clone undershoots per-request work
     because it has no kernel component. *)
  let app = Ditto_apps.Redis.spec () in
  let cfg = Runner.config ~requests:80 ~seed:43 Platform.a in
  let load = Service.load ~qps:20000.0 ~open_loop:false ~duration:0.4 () in
  let orig = Runner.run cfg ~load app in
  let base = Runner.run cfg ~load (Ditto_baseline.Userlevel_clone.synth_app (Lazy.force redis_profile)) in
  let insts out = (List.assoc "redis" out.Runner.measured).Measure.counters.Ditto_uarch.Counters.insts in
  Alcotest.(check bool) "baseline executes fewer instructions than the original" true
    (insts base < insts orig)

let () =
  Alcotest.run "gen"
    [
      ( "stages",
        [
          Alcotest.test_case "monotone" `Quick test_stage_features_monotone;
          Alcotest.test_case "invalid" `Quick test_stage_invalid;
        ] );
      ( "body_gen",
        [
          Alcotest.test_case "stage A empty" `Quick test_generate_stage_a_empty_body;
          Alcotest.test_case "inst count" `Quick test_generate_inst_count_matches_profile;
          Alcotest.test_case "inst scale" `Quick test_generate_inst_scale_knob;
          Alcotest.test_case "distinct code" `Quick test_generate_distinct_from_original;
          Alcotest.test_case "downstream calls" `Quick test_generate_downstream_calls;
          Alcotest.test_case "i footprint" `Quick test_generate_i_footprint_scales;
        ] );
      ( "clone",
        [
          Alcotest.test_case "skeleton preserved" `Slow test_clone_preserves_skeleton;
          Alcotest.test_case "deterministic" `Quick test_clone_deterministic;
        ] );
      ( "tuner",
        [
          Alcotest.test_case "counter errors" `Quick test_counter_errors;
          Alcotest.test_case "improves" `Slow test_tuner_improves_or_converges;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "categories" `Quick test_baseline_categories;
          Alcotest.test_case "no syscalls" `Quick test_baseline_no_syscalls;
          Alcotest.test_case "misses kernel time" `Slow test_baseline_misses_kernel_time;
        ] );
    ]
