(* Tests for the application layer: layout, spec, machine, measurement
   phase, DES service phase, runner. *)
open Ditto_app
open Ditto_isa
module Rng = Ditto_util.Rng
module Platform = Ditto_uarch.Platform

(* {1 Layout} *)

let test_layout_disjoint () =
  let a = Layout.space ~tier_index:0 ~heap_bytes:(1 lsl 20) ~shared_bytes:(1 lsl 16) in
  let b = Layout.space ~tier_index:1 ~heap_bytes:(1 lsl 20) ~shared_bytes:(1 lsl 16) in
  Alcotest.(check bool) "code disjoint" true (a.Layout.code_base <> b.Layout.code_base);
  let a_end = a.Layout.heap.Block.region_base + a.Layout.heap.Block.region_bytes in
  Alcotest.(check bool) "heaps disjoint" true (a_end <= b.Layout.heap.Block.region_base)

let test_layout_shared_region () =
  let s = Layout.space ~tier_index:2 ~heap_bytes:4096 ~shared_bytes:8192 in
  Alcotest.(check bool) "shared flagged" true s.Layout.shared.Block.shared;
  Alcotest.(check bool) "heap private" false s.Layout.heap.Block.shared

let test_layout_code_windows () =
  let s = Layout.space ~tier_index:0 ~heap_bytes:4096 ~shared_bytes:64 in
  Alcotest.(check int) "window stride 4KB" 4096
    (Layout.code_window s ~index:1 - Layout.code_window s ~index:0)

let test_layout_sub_heap () =
  let s = Layout.space ~tier_index:0 ~heap_bytes:(1 lsl 20) ~shared_bytes:64 in
  let sub = Layout.sub_heap s ~offset:65536 ~bytes:4096 in
  Alcotest.(check int) "offset applied"
    (s.Layout.heap.Block.region_base + 65536)
    sub.Block.region_base

(* {1 Spec} *)

let trivial_handler _rng _req = []

let test_spec_construction () =
  let t = Spec.tier ~name:"x" ~handler:trivial_handler () in
  let app = Spec.make ~name:"app" [ t ] in
  Alcotest.(check string) "entry defaults to first tier" "x" app.Spec.entry;
  Alcotest.(check bool) "single tier is not microservice" false (Spec.is_microservice app);
  Alcotest.(check string) "find_tier" "x" (Spec.find_tier app "x").Spec.tier_name

let test_spec_unknown_tier () =
  let app = Spec.make ~name:"app" [ Spec.tier ~name:"x" ~handler:trivial_handler () ] in
  Alcotest.check_raises "unknown tier"
    (Invalid_argument "Spec.find_tier: unknown tier \"nope\"") (fun () ->
      ignore (Spec.find_tier app "nope"))

let test_spec_empty_rejected () =
  Alcotest.check_raises "no tiers" (Invalid_argument "Spec.make: no tiers") (fun () ->
      ignore (Spec.make ~name:"app" []))

let test_spec_model_names () =
  Alcotest.(check string) "io mux" "io-multiplexing" (Spec.server_model_name Spec.Io_multiplexing);
  Alcotest.(check string) "sync" "synchronous" (Spec.client_model_name Spec.Sync_client)

(* {1 Machine} *)

let test_machine_defaults () =
  let engine = Ditto_sim.Engine.create () in
  let m = Machine.create engine Platform.c in
  Alcotest.(check int) "cores from platform" 4 (Machine.ncores m);
  let m2 = Machine.create ~cores:2 engine Platform.c in
  Alcotest.(check int) "core override" 2 (Machine.ncores m2)

let test_machine_cycles_to_seconds () =
  let engine = Ditto_sim.Engine.create () in
  let m = Machine.create engine Platform.a in
  Alcotest.(check (float 1e-12)) "2.1GHz" (1.0 /. 2.1e9) (Machine.cycles_to_seconds m 1.0)

(* {1 A small test application} *)

let small_app ?(file_bytes = 0) ?(call_target = None) () =
  let space = Layout.space ~tier_index:0 ~heap_bytes:(1 lsl 20) ~shared_bytes:(1 lsl 16) in
  let block =
    let temps =
      List.init 64 (fun i ->
          Block.temp (Iform.by_name "ADD_GPR64_GPR64") ~dst:(i mod 8) ~srcs:[| (i + 1) mod 8 |])
    in
    Block.make ~label:"small" ~code_base:(Layout.code_window space ~index:0) temps
  in
  let handler _rng _req =
    List.concat
      [
        [ Spec.Compute (block, 4) ];
        (if file_bytes > 0 then [ Spec.File_read { offset = 0; bytes = 4096; random = true } ]
         else []);
        (match call_target with
        | Some t -> [ Spec.Call { target = t; req_bytes = 64; resp_bytes = 128 } ]
        | None -> []);
      ]
  in
  Spec.tier ~name:"small" ~workers:2 ~heap_bytes:(1 lsl 20) ~shared_bytes:(1 lsl 16)
    ~file_bytes ~handler ()

(* {1 Measure} *)

let measure_small ?config ?(file_bytes = 0) () =
  let engine = Ditto_sim.Engine.create () in
  let machine = Machine.create engine Platform.a in
  let tier = small_app ~file_bytes () in
  let space = Layout.space ~tier_index:0 ~heap_bytes:(1 lsl 20) ~shared_bytes:(1 lsl 16) in
  List.hd (Measure.run ?config ~machine ~seed:1 ~requests:50 [ (tier, space) ])

let test_measure_produces_traces () =
  let r = measure_small () in
  Alcotest.(check int) "one trace per request" 50 (Array.length r.Measure.traces);
  Alcotest.(check int) "requests measured" 50 r.Measure.requests_measured;
  Alcotest.(check bool) "cpu time positive" true (r.Measure.cpu_mean > 0.0);
  Array.iter
    (fun tr ->
      Alcotest.(check bool) "every trace has cpu work" true (Measure.trace_cpu_seconds tr > 0.0))
    r.Measure.traces

let test_measure_counts_kernel_work () =
  let r = measure_small () in
  let c = r.Measure.counters in
  (* user block = 256 insts/request; kernel skeleton adds thousands *)
  Alcotest.(check bool) "kernel instructions dominate skeleton" true
    (c.Ditto_uarch.Counters.insts > 50 * 500)

let test_measure_disk_trace () =
  (* With a dataset far larger than the page cache, reads reach the disk. *)
  let engine = Ditto_sim.Engine.create () in
  let machine = Machine.create ~page_cache_bytes:(1 lsl 20) engine Platform.a in
  let tier = small_app ~file_bytes:(1 lsl 30) () in
  let tier =
    { tier with
      Spec.handler =
        (fun rng _ ->
          [ Spec.File_read { offset = 4096 * Rng.int rng 200_000; bytes = 4096; random = true } ]);
    }
  in
  let space = Layout.space ~tier_index:0 ~heap_bytes:(1 lsl 20) ~shared_bytes:(1 lsl 16) in
  let r = List.hd (Measure.run ~machine ~seed:2 ~requests:50 [ (tier, space) ]) in
  let has_disk =
    Array.exists
      (List.exists (function Measure.Disk_read _ -> true | _ -> false))
      r.Measure.traces
  in
  Alcotest.(check bool) "disk segments present" true has_disk

let test_measure_call_trace () =
  let engine = Ditto_sim.Engine.create () in
  let machine = Machine.create engine Platform.a in
  let tier = small_app ~call_target:(Some "down") () in
  let space = Layout.space ~tier_index:0 ~heap_bytes:(1 lsl 20) ~shared_bytes:(1 lsl 16) in
  let r = List.hd (Measure.run ~machine ~seed:3 ~requests:10 [ (tier, space) ]) in
  Array.iter
    (fun tr ->
      Alcotest.(check bool) "downstream recorded" true
        (List.exists (function Measure.Downstream { target = "down"; _ } -> true | _ -> false) tr))
    r.Measure.traces

let test_measure_deterministic () =
  let a = measure_small () and b = measure_small () in
  Alcotest.(check (float 1e-12)) "same seed, same cpu_mean" a.Measure.cpu_mean b.Measure.cpu_mean

let test_measure_idle_pollution_slows () =
  let base = Measure.default_config in
  let polluted = { base with Measure.idle_per_request = 1e-3 } in
  let a = measure_small ~config:base () and b = measure_small ~config:polluted () in
  Alcotest.(check bool) "housekeeping pollution increases per-request cpu" true
    (b.Measure.cpu_mean > a.Measure.cpu_mean)

let test_measure_server_model_kernel_cost () =
  (* §4.3.1: the network model changes the kernel work per request — an
     epoll server pays the epoll_wait path a blocking server does not. *)
  let measure_with model =
    let engine = Ditto_sim.Engine.create () in
    let machine = Machine.create engine Platform.a in
    let tier = { (small_app ()) with Spec.server_model = model } in
    let space = Layout.space ~tier_index:0 ~heap_bytes:(1 lsl 20) ~shared_bytes:(1 lsl 16) in
    let r = List.hd (Measure.run ~machine ~seed:1 ~requests:50 [ (tier, space) ]) in
    r.Measure.counters.Ditto_uarch.Counters.insts
  in
  let epoll = measure_with Spec.Io_multiplexing in
  let blocking = measure_with Spec.Blocking in
  Alcotest.(check bool) "epoll server executes more kernel instructions" true
    (epoll > blocking)

let test_measure_smt_pressure_slows () =
  let pressured = { Measure.default_config with Measure.smt_pressure = 0.5 } in
  let a = measure_small () and b = measure_small ~config:pressured () in
  Alcotest.(check bool) "smt halving slows" true (b.Measure.cpu_mean > a.Measure.cpu_mean)

(* {1 Service + Runner} *)

let run_small ?(qps = 2000.0) ?(open_loop = true) () =
  let tier = small_app () in
  let app = Spec.make ~name:"small_app" [ tier ] in
  let cfg = Runner.config ~requests:60 ~seed:5 Platform.a in
  let load = Service.load ~qps ~open_loop ~duration:0.5 () in
  Runner.run cfg ~load app

let test_runner_end_to_end () =
  let out = run_small () in
  let lat = out.Runner.end_to_end in
  Alcotest.(check bool) "requests completed" true (lat.Ditto_util.Stats.count > 100);
  Alcotest.(check bool) "latency positive" true (lat.Ditto_util.Stats.mean > 0.0);
  Alcotest.(check bool) "p99 >= p50" true
    (lat.Ditto_util.Stats.p99 >= lat.Ditto_util.Stats.p50)

let test_runner_achieved_qps () =
  let out = run_small ~qps:2000.0 () in
  let q = out.Runner.service.Service.achieved_qps in
  Alcotest.(check bool) "achieved close to offered" true (q > 1500.0 && q < 2500.0)

let test_runner_metrics_present () =
  let out = run_small () in
  let m = Runner.tier_metrics out "small" in
  Alcotest.(check bool) "ipc sane" true (m.Metrics.ipc > 0.05 && m.Metrics.ipc < 4.0);
  Alcotest.(check bool) "net bandwidth measured" true (m.Metrics.net_mbps > 0.0)

let test_runner_deterministic () =
  let a = run_small () and b = run_small () in
  let ma = Runner.tier_metrics a "small" and mb = Runner.tier_metrics b "small" in
  Alcotest.(check (float 1e-9)) "same seed same ipc" ma.Metrics.ipc mb.Metrics.ipc;
  Alcotest.(check (float 1e-9)) "same latency" ma.Metrics.lat_p99 mb.Metrics.lat_p99

let test_runner_closed_loop_bounded () =
  (* Closed loop: outstanding requests bounded by connections, so offered
     overload does not blow up latency. *)
  let out = run_small ~qps:1e9 ~open_loop:false () in
  Alcotest.(check bool) "closed loop saturates gracefully" true
    (out.Runner.end_to_end.Ditto_util.Stats.p99 < 1.0)

let test_runner_load_latency_grows () =
  (* Queueing only shows near saturation: use a single-worker tier with a
     heavier body so the knee is reachable quickly. *)
  let heavy () =
    let tier = small_app () in
    let tier =
      {
        tier with
        Spec.thread_model = { tier.Spec.thread_model with Spec.workers = 1 };
        handler =
          (fun rng req ->
            List.map
              (function Spec.Compute (b, _) -> Spec.Compute (b, 120) | op -> op)
              (tier.Spec.handler rng req));
      }
    in
    Spec.make ~name:"heavy" [ tier ]
  in
  let run qps =
    let cfg = Runner.config ~requests:60 ~seed:5 Platform.a in
    let load = Service.load ~qps ~open_loop:true ~duration:0.3 () in
    Runner.run cfg ~load (heavy ())
  in
  let low = run 20_000.0 and high = run 210_000.0 in
  Alcotest.(check bool) "p99 grows near saturation" true
    (high.Runner.end_to_end.Ditto_util.Stats.p99
    > 1.2 *. low.Runner.end_to_end.Ditto_util.Stats.p99)

let test_idle_estimate () =
  Alcotest.(check bool) "low qps -> more idle" true
    (Runner.estimate_idle_per_request ~qps:100.0 ~workers:1
    > Runner.estimate_idle_per_request ~qps:100000.0 ~workers:1);
  Alcotest.(check bool) "clamped" true
    (Runner.estimate_idle_per_request ~qps:0.001 ~workers:4 <= 5e-3)

(* {1 Metrics} *)

let test_metrics_errors () =
  let mk ipc l1i =
    {
      Metrics.label = "m";
      qps = 1.0;
      ipc;
      branch_miss_rate = 0.1;
      l1i_miss_rate = l1i;
      l1d_miss_rate = 0.1;
      l2_miss_rate = 0.1;
      llc_miss_rate = 0.1;
      net_mbps = 10.0;
      disk_mbps = 0.0;
      lat_avg = 1e-3;
      lat_p50 = 1e-3;
      lat_p95 = 2e-3;
      lat_p99 = 3e-3;
      topdown =
        { Ditto_uarch.Counters.retiring = 0.25; frontend = 0.25; bad_speculation = 0.25; backend = 0.25 };
      counters = Ditto_uarch.Counters.create ();
      faults = Metrics.no_faults;
    }
  in
  let errs = Metrics.error_pct ~actual:(mk 1.0 0.1) ~synthetic:(mk 1.1 0.1) in
  Alcotest.(check (float 1e-6)) "10% ipc error" 10.0 (List.assoc "IPC" errs);
  Alcotest.(check (float 1e-6)) "0% L1i error" 0.0 (List.assoc "L1i" errs);
  let lat = Metrics.latency_error_pct ~actual:(mk 1.0 0.1) ~synthetic:(mk 1.0 0.1) in
  Alcotest.(check (float 1e-6)) "latency exact" 0.0 (List.assoc "p99" lat)

let () =
  Alcotest.run "app"
    [
      ( "layout",
        [
          Alcotest.test_case "disjoint" `Quick test_layout_disjoint;
          Alcotest.test_case "shared region" `Quick test_layout_shared_region;
          Alcotest.test_case "code windows" `Quick test_layout_code_windows;
          Alcotest.test_case "sub heap" `Quick test_layout_sub_heap;
        ] );
      ( "spec",
        [
          Alcotest.test_case "construction" `Quick test_spec_construction;
          Alcotest.test_case "unknown tier" `Quick test_spec_unknown_tier;
          Alcotest.test_case "empty rejected" `Quick test_spec_empty_rejected;
          Alcotest.test_case "model names" `Quick test_spec_model_names;
        ] );
      ( "machine",
        [
          Alcotest.test_case "defaults" `Quick test_machine_defaults;
          Alcotest.test_case "cycles to seconds" `Quick test_machine_cycles_to_seconds;
        ] );
      ( "measure",
        [
          Alcotest.test_case "traces" `Quick test_measure_produces_traces;
          Alcotest.test_case "kernel work" `Quick test_measure_counts_kernel_work;
          Alcotest.test_case "disk trace" `Quick test_measure_disk_trace;
          Alcotest.test_case "call trace" `Quick test_measure_call_trace;
          Alcotest.test_case "deterministic" `Quick test_measure_deterministic;
          Alcotest.test_case "idle pollution" `Quick test_measure_idle_pollution_slows;
          Alcotest.test_case "server model kernel cost" `Quick test_measure_server_model_kernel_cost;
          Alcotest.test_case "smt pressure" `Quick test_measure_smt_pressure_slows;
        ] );
      ( "runner",
        [
          Alcotest.test_case "end to end" `Quick test_runner_end_to_end;
          Alcotest.test_case "achieved qps" `Quick test_runner_achieved_qps;
          Alcotest.test_case "metrics present" `Quick test_runner_metrics_present;
          Alcotest.test_case "deterministic" `Quick test_runner_deterministic;
          Alcotest.test_case "closed loop bounded" `Quick test_runner_closed_loop_bounded;
          Alcotest.test_case "latency grows" `Quick test_runner_load_latency_grows;
          Alcotest.test_case "idle estimate" `Quick test_idle_estimate;
        ] );
      ("metrics", [ Alcotest.test_case "errors" `Quick test_metrics_errors ]);
    ]
