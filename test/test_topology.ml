(* Tests for the production-scale microservice-graph generator:
   structural invariants, determinism, distribution shape, and the
   Jaeger round trip back to the ground-truth DAG. *)
module Topology = Ditto_gen.Topology
module Dag = Ditto_trace.Dag
module Jaeger = Ditto_trace.Jaeger
module Spec = Ditto_app.Spec

let gen ?seed tiers = Topology.generate (Topology.default ?seed ~tiers ())

(* {1 Structure} *)

let test_sizes () =
  List.iter
    (fun n ->
      let t = gen n in
      Alcotest.(check int) "tier count" n (List.length t.Topology.spec.Spec.tiers);
      Alcotest.(check int) "dag services" n (List.length t.Topology.dag.Dag.services);
      Alcotest.(check string) "entry" "gateway" t.Topology.spec.Spec.entry)
    [ 2; 10; 100; 500 ]

let test_acyclic_and_layered () =
  let t = gen 200 in
  (* topo_order raises on a cyclic graph *)
  let order = Dag.topo_order t.Topology.dag in
  Alcotest.(check int) "topo covers all services" 200 (List.length order);
  (* every edge points to a strictly deeper layer *)
  let index = Hashtbl.create 256 in
  List.iteri (fun i s -> Hashtbl.replace index s i) t.Topology.dag.Dag.services;
  List.iter
    (fun (e : Dag.edge) ->
      let lu = t.Topology.layers.(Hashtbl.find index e.Dag.caller)
      and lv = t.Topology.layers.(Hashtbl.find index e.Dag.callee) in
      if lv <= lu then
        Alcotest.failf "edge %s(layer %d) -> %s(layer %d) not strictly deeper" e.Dag.caller lu
          e.Dag.callee lv)
    t.Topology.dag.Dag.edges;
  (* depth is respected and actually reached *)
  let maxl = Array.fold_left max 0 t.Topology.layers in
  Alcotest.(check int) "max depth reached" (gen 200).Topology.params.max_depth maxl

let test_connected () =
  let t = gen 300 in
  (* every non-entry service has an incoming edge; reachability then
     follows by layer induction, which test_acyclic_and_layered pins *)
  let called = Hashtbl.create 512 in
  List.iter (fun (e : Dag.edge) -> Hashtbl.replace called e.Dag.callee ()) t.Topology.dag.Dag.edges;
  List.iter
    (fun s ->
      if s <> "gateway" && not (Hashtbl.mem called s) then
        Alcotest.failf "service %s is unreachable" s)
    t.Topology.dag.Dag.services

let test_deterministic () =
  let a = gen ~seed:7 120 and b = gen ~seed:7 120 in
  Alcotest.(check bool) "same shape for same seed" true
    (Topology.same_shape a.Topology.dag b.Topology.dag);
  Alcotest.(check bool) "layers equal" true (a.Topology.layers = b.Topology.layers);
  let c = gen ~seed:8 120 in
  Alcotest.(check bool) "different seed, different graph" false
    (Topology.same_shape a.Topology.dag c.Topology.dag)

(* {1 Distribution shape} *)

let test_fanout_heavy_tail () =
  let t = gen 500 in
  let out = Hashtbl.create 512 in
  List.iter
    (fun (e : Dag.edge) ->
      if e.Dag.caller <> "gateway" then
        Hashtbl.replace out e.Dag.caller (1 + Option.value ~default:0 (Hashtbl.find_opt out e.Dag.caller)))
    t.Topology.dag.Dag.edges;
  let degrees = Hashtbl.fold (fun _ d acc -> d :: acc) out [] in
  let count p = List.length (List.filter p degrees) in
  (* Pareto out-degree: most callers are narrow, but a real tail exists *)
  Alcotest.(check bool) "majority out-degree <= 2" true
    (2 * count (fun d -> d <= 2) > List.length degrees);
  Alcotest.(check bool) "some caller fans out >= 4" true (count (fun d -> d >= 4) > 0)

let test_reuse_heavy_tail () =
  let t = gen 500 in
  let indeg = Hashtbl.create 512 in
  List.iter
    (fun (e : Dag.edge) ->
      Hashtbl.replace indeg e.Dag.callee
        (1 + Option.value ~default:0 (Hashtbl.find_opt indeg e.Dag.callee)))
    t.Topology.dag.Dag.edges;
  let max_in = Hashtbl.fold (fun _ d m -> max d m) indeg 0 in
  (* Zipf reuse: the most popular tier is called far above the mean
     in-degree (edges/services ~ a small constant) *)
  Alcotest.(check bool) "a hot shared tier exists" true (max_in >= 10)

let test_call_budget_bounds_tree () =
  let t = gen 400 in
  let by_caller = Hashtbl.create 512 in
  List.iter
    (fun (e : Dag.edge) ->
      if e.Dag.caller <> "gateway" then
        Hashtbl.replace by_caller e.Dag.caller
          (e.Dag.probability +. Option.value ~default:0.0 (Hashtbl.find_opt by_caller e.Dag.caller)))
    t.Topology.dag.Dag.edges;
  Hashtbl.iter
    (fun caller sum ->
      if sum > t.Topology.params.call_budget +. 1e-9 then
        Alcotest.failf "caller %s exceeds call budget: %.3f" caller sum)
    by_caller

(* {1 Round trip} *)

let test_spans_recover_dag () =
  let t = gen 150 in
  let recovered = Dag.of_spans (Topology.spans t) in
  Alcotest.(check bool) "of_spans recovers the generated DAG" true
    (Topology.same_shape t.Topology.dag recovered)

let test_jaeger_round_trip () =
  let t = gen 150 in
  let spans = Topology.spans t in
  let recovered = Dag.of_spans (Jaeger.of_string (Jaeger.to_string spans)) in
  Alcotest.(check bool) "jaeger round trip preserves the DAG" true
    (Topology.same_shape t.Topology.dag recovered);
  (* and the spans themselves survive verbatim *)
  let spans' = Jaeger.of_string (Jaeger.to_string spans) in
  Alcotest.(check int) "span count" (List.length spans) (List.length spans');
  Alcotest.(check bool) "spans identical" true (spans = spans')

(* {1 Names} *)

let test_names () =
  Alcotest.(check string) "app_name" "synth-100" (Topology.app_name 100);
  Alcotest.(check (option int)) "parse" (Some 1000) (Topology.parse_name "synth-1000");
  Alcotest.(check (option int)) "reject prefix" None (Topology.parse_name "synthetic-3");
  Alcotest.(check (option int)) "reject junk" None (Topology.parse_name "synth-x");
  Alcotest.(check (option int)) "reject other" None (Topology.parse_name "redis")

let test_registry_entries () =
  List.iter
    (fun n ->
      let e = Ditto_apps.Registry.by_name (Topology.app_name n) in
      let spec = e.Ditto_apps.Registry.spec () in
      Alcotest.(check int) "registry spec tier count" n (List.length spec.Spec.tiers))
    Ditto_apps.Registry.synth_sizes

let () =
  Alcotest.run "topology"
    [
      ( "structure",
        [
          Alcotest.test_case "sizes" `Quick test_sizes;
          Alcotest.test_case "acyclic layered" `Quick test_acyclic_and_layered;
          Alcotest.test_case "connected" `Quick test_connected;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "fanout heavy tail" `Quick test_fanout_heavy_tail;
          Alcotest.test_case "reuse heavy tail" `Quick test_reuse_heavy_tail;
          Alcotest.test_case "call budget" `Quick test_call_budget_bounds_tree;
        ] );
      ( "round-trip",
        [
          Alcotest.test_case "spans recover dag" `Quick test_spans_recover_dag;
          Alcotest.test_case "jaeger round trip" `Quick test_jaeger_round_trip;
        ] );
      ( "names",
        [
          Alcotest.test_case "naming" `Quick test_names;
          Alcotest.test_case "registry" `Quick test_registry_entries;
        ] );
    ]
