(* The overload layer: rate profiles as data (shape validation, the
   multiplier algebra, JSON), the canonical surge profiles, the arrival
   process they drive, the queue-depth PI autoscaler (deterministic
   scale events, bounds, cooldown), graceful degradation, the
   bit-identity guarantee (a constant/absent profile leaves the event
   stream exactly as the pre-profile code), and the surge-fidelity
   scorecard. *)
open Ditto_app
open Ditto_isa
module Profile = Ditto_loadgen.Profile
module Plan = Ditto_fault.Plan
module Pipeline = Ditto_core.Pipeline
module Surge = Ditto_report.Surge
module Ts = Ditto_obs.Timeseries
module Platform = Ditto_uarch.Platform
module Rng = Ditto_util.Rng
module Pool = Ditto_util.Pool

let contains hay needle =
  let h = String.length hay and n = String.length needle in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* {1 Rate: validation and the multiplier algebra} *)

let test_rate_validation () =
  let invalid msg shape =
    match Rate.make ~name:"bad" shape with
    | _ -> Alcotest.failf "%s accepted" msg
    | exception Invalid_argument _ -> ()
  in
  invalid "amplitude above 1" [ Rate.Sinusoid { amplitude = 1.5; period = 1.0; phase = 0.0 } ];
  invalid "negative amplitude" [ Rate.Sinusoid { amplitude = -0.1; period = 1.0; phase = 0.0 } ];
  invalid "zero period" [ Rate.Sinusoid { amplitude = 0.5; period = 0.0; phase = 0.0 } ];
  invalid "negative ramp target" [ Rate.Ramp { to_mult = -1.0; over = 1.0 } ];
  invalid "zero ramp duration" [ Rate.Ramp { to_mult = 2.0; over = 0.0 } ];
  invalid "zero-extent spike"
    [ Rate.Spike { at = 0.1; rise = 0.0; hold = 0.0; fall = 0.0; mult = 4.0 } ];
  invalid "negative spike mult"
    [ Rate.Spike { at = 0.1; rise = 0.1; hold = 0.1; fall = 0.1; mult = -1.0 } ];
  invalid "empty piecewise" [ Rate.Piecewise [] ];
  invalid "unsorted piecewise" [ Rate.Piecewise [ (0.2, 2.0); (0.1, 3.0) ] ];
  invalid "negative piecewise mult" [ Rate.Piecewise [ (0.1, -2.0) ] ];
  (match Rate.make ~burst:{ Rate.batch_mean = 0.5 } ~name:"b" [] with
  | _ -> Alcotest.fail "sub-1 burst mean accepted"
  | exception Invalid_argument _ -> ());
  (match Rate.make ~name:"" [] with
  | _ -> Alcotest.fail "empty name accepted"
  | exception Invalid_argument _ -> ());
  (* and the error names the profile *)
  match Rate.make ~name:"my-prof" [ Rate.Ramp { to_mult = 2.0; over = 0.0 } ] with
  | _ -> Alcotest.fail "bad ramp accepted"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "names the profile" true (contains msg "my-prof")

let test_rate_mult_math () =
  let fl = Alcotest.float 1e-9 in
  let spike =
    Rate.make ~name:"s" [ Rate.Spike { at = 0.2; rise = 0.1; hold = 0.2; fall = 0.1; mult = 5.0 } ]
  in
  Alcotest.(check fl) "before spike" 1.0 (Rate.mult_at spike ~t:0.1);
  Alcotest.(check fl) "mid-rise" 3.0 (Rate.mult_at spike ~t:0.25);
  Alcotest.(check fl) "hold" 5.0 (Rate.mult_at spike ~t:0.4);
  Alcotest.(check fl) "mid-fall" 3.0 (Rate.mult_at spike ~t:0.55);
  Alcotest.(check fl) "after spike" 1.0 (Rate.mult_at spike ~t:0.9);
  let ramp = Rate.make ~name:"r" [ Rate.Ramp { to_mult = 4.0; over = 1.0 } ] in
  Alcotest.(check fl) "ramp start" 1.0 (Rate.mult_at ramp ~t:0.0);
  Alcotest.(check fl) "ramp midpoint" 2.5 (Rate.mult_at ramp ~t:0.5);
  Alcotest.(check fl) "ramp held past end" 4.0 (Rate.mult_at ramp ~t:2.0);
  let steps = Rate.make ~name:"p" [ Rate.Piecewise [ (0.1, 2.0); (0.3, 0.5) ] ] in
  Alcotest.(check fl) "before first step" 1.0 (Rate.mult_at steps ~t:0.05);
  Alcotest.(check fl) "first step" 2.0 (Rate.mult_at steps ~t:0.2);
  Alcotest.(check fl) "second step held" 0.5 (Rate.mult_at steps ~t:9.0);
  (* a full-amplitude sinusoid touches zero at the trough, never below *)
  let sine = Rate.make ~name:"sin" [ Rate.Sinusoid { amplitude = 1.0; period = 1.0; phase = 0.0 } ] in
  Alcotest.(check fl) "sinusoid trough clamps at 0" 0.0 (Rate.mult_at sine ~t:0.75);
  Alcotest.(check fl) "sinusoid crest" 2.0 (Rate.mult_at sine ~t:0.25);
  (* composition multiplies term-wise; scale is a constant factor *)
  let both = Rate.compose spike ramp in
  Alcotest.(check fl) "compose multiplies" (5.0 *. 2.2) (Rate.mult_at both ~t:0.4);
  Alcotest.(check string) "compose names" "s+r" both.Rate.profile_name;
  let half = Rate.scale 0.5 ramp in
  Alcotest.(check fl) "scale by 0.5" 1.25 (Rate.mult_at half ~t:0.5);
  Alcotest.(check fl) "peak is the spike mult" 5.0 (Rate.peak_mult spike);
  Alcotest.(check fl) "peak of a product bounds" 20.0 (Rate.peak_mult both);
  (* the constant identity *)
  Alcotest.(check bool) "constant is constant" true (Rate.is_constant Rate.constant);
  Alcotest.(check bool) "explicit Constant terms too" true
    (Rate.is_constant (Rate.make ~name:"c" [ Rate.Constant; Rate.Constant ]));
  Alcotest.(check bool) "burst defeats constancy" false
    (Rate.is_constant (Rate.make ~burst:{ Rate.batch_mean = 3.0 } ~name:"c" []));
  Alcotest.(check bool) "spike is not constant" false (Rate.is_constant spike);
  Alcotest.(check fl) "constant mean" 1.0 (Rate.mean_mult Rate.constant ~duration:1.0);
  (* ramp 1 -> 4 over the whole window: mean 2.5 *)
  Alcotest.(check (Alcotest.float 1e-2)) "ramp mean" 2.5 (Rate.mean_mult ramp ~duration:1.0)

let all_terms_profile =
  Rate.make ~burst:{ Rate.batch_mean = 3.0 } ~name:"everything"
    [
      Rate.Constant;
      Rate.Sinusoid { amplitude = 0.4; period = 2.0; phase = 0.5 };
      Rate.Ramp { to_mult = 2.0; over = 1.5 };
      Rate.Spike { at = 0.3; rise = 0.05; hold = 0.2; fall = 0.15; mult = 4.0 };
      Rate.Piecewise [ (0.0, 1.0); (0.5, 1.5) ];
    ]

let test_rate_json_roundtrip () =
  let back = Rate.of_json (Rate.to_json all_terms_profile) in
  Alcotest.(check string) "name survives" "everything" back.Rate.profile_name;
  Alcotest.(check bool) "shape survives" true (back.Rate.shape = all_terms_profile.Rate.shape);
  Alcotest.(check bool) "burst survives" true (back.Rate.burst = all_terms_profile.Rate.burst);
  let path = Filename.temp_file "ditto_rate" ".json" in
  Rate.save ~path all_terms_profile;
  let loaded = Rate.load path in
  Sys.remove path;
  Alcotest.(check bool) "file roundtrip" true
    (loaded.Rate.shape = all_terms_profile.Rate.shape
    && loaded.Rate.burst = all_terms_profile.Rate.burst);
  (* unknown kinds are a parse error, not silent garbage *)
  let module J = Ditto_util.Jsonx in
  match
    Rate.of_json
      (J.Obj
         [
           ("name", J.Str "x");
           ("shape", J.List [ J.Obj [ ("kind", J.Str "meteor") ] ]);
         ])
  with
  | _ -> Alcotest.fail "unknown kind accepted"
  | exception J.Parse_error _ -> ()

(* {1 Canonical profiles} *)

let test_profile_canonical () =
  let fl = Alcotest.float 1e-9 in
  Alcotest.(check (list string))
    "the three scenarios"
    [ "flash-crowd"; "diurnal"; "ramp-to-saturation" ]
    Profile.names;
  Alcotest.(check (list string)) "canonical order matches names" Profile.names
    (List.map
       (fun (p : Rate.t) -> p.Rate.profile_name)
       (Profile.canonical ~duration:2.0));
  List.iter
    (fun name ->
      let p = Profile.by_name ~duration:2.0 name in
      Alcotest.(check string) "by_name finds it" name p.Rate.profile_name;
      Alcotest.(check bool) "canonical profiles are not constant" false (Rate.is_constant p))
    Profile.names;
  (match Profile.by_name ~duration:2.0 "tsunami" with
  | _ -> Alcotest.fail "unknown profile accepted"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "lists the known names" true (contains msg "flash-crowd"));
  (* phase boundaries scale with the duration *)
  let fc = Profile.flash_crowd ~duration:2.0 () in
  Alcotest.(check fl) "flash crowd quiet before onset" 1.0 (Rate.mult_at fc ~t:0.5);
  Alcotest.(check fl) "flash crowd peak 4x by default" 4.0 (Rate.peak_mult fc);
  Alcotest.(check fl) "holding at 45% of the run" 4.0 (Rate.mult_at fc ~t:0.9);
  Alcotest.(check fl) "receded by 70%" 1.0 (Rate.mult_at fc ~t:1.5);
  let rs = Profile.ramp_to_saturation ~duration:2.0 () in
  Alcotest.(check fl) "ramp hits 6x at 80%" 6.0 (Rate.mult_at rs ~t:1.6);
  let di = Profile.diurnal ~amplitude:0.5 ~duration:2.0 () in
  Alcotest.(check (Alcotest.float 1e-6)) "diurnal crest at quarter period" 1.5
    (Rate.mult_at di ~t:0.5)

(* {1 Arrival process} *)

let test_arrival_process () =
  (* Plain Poisson: mean gap = 1/rate, batches of one. *)
  let n = 20_000 in
  let rng = Rng.create 42 in
  let total = ref 0.0 in
  for _ = 1 to n do
    let a = Rate.next_arrival Rate.constant rng ~base_qps:1000.0 ~t:0.0 in
    Alcotest.(check int) "no burst: batch of one" 1 a.Rate.batch;
    total := !total +. a.Rate.gap
  done;
  let mean_gap = !total /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean gap %.2e near 1ms" mean_gap)
    true
    (Float.abs (mean_gap -. 1e-3) /. 1e-3 < 0.05);
  (* a 4x multiplier quadruples the instantaneous rate *)
  let spike =
    Rate.make ~name:"s" [ Rate.Spike { at = 0.0; rise = 0.0; hold = 1.0; fall = 0.0; mult = 4.0 } ]
  in
  let total4 = ref 0.0 in
  for _ = 1 to n do
    total4 := !total4 +. (Rate.next_arrival spike rng ~base_qps:1000.0 ~t:0.5).Rate.gap
  done;
  let mean4 = !total4 /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "4x mult quarters the gap (%.2e)" mean4)
    true
    (Float.abs (mean4 -. 0.25e-3) /. 0.25e-3 < 0.05);
  (* bursty arrivals preserve the offered rate: batch/gap ~ base_qps *)
  let bursty = Rate.make ~burst:{ Rate.batch_mean = 4.0 } ~name:"b" [] in
  let gaps = ref 0.0 and arrivals = ref 0 in
  for _ = 1 to n do
    let a = Rate.next_arrival bursty rng ~base_qps:1000.0 ~t:0.0 in
    Alcotest.(check bool) "batch at least one" true (a.Rate.batch >= 1);
    gaps := !gaps +. a.Rate.gap;
    arrivals := !arrivals + a.Rate.batch
  done;
  let offered = float_of_int !arrivals /. !gaps in
  Alcotest.(check bool)
    (Printf.sprintf "bursty offered rate preserved (%.0f qps)" offered)
    true
    (Float.abs (offered -. 1000.0) /. 1000.0 < 0.1);
  Alcotest.(check bool)
    (Printf.sprintf "mean batch near 4 (%.2f)" (float_of_int !arrivals /. float_of_int n))
    true
    (Float.abs ((float_of_int !arrivals /. float_of_int n) -. 4.0) < 0.4);
  (* same stream, same draws: the process is a pure function of the RNG *)
  let sample seed =
    let rng = Rng.create seed in
    List.init 100 (fun i ->
        Rate.next_arrival all_terms_profile rng ~base_qps:2000.0 ~t:(0.01 *. float_of_int i))
  in
  Alcotest.(check bool) "deterministic from the seed" true (sample 7 = sample 7);
  Alcotest.(check bool) "different seed, different draws" true (sample 7 <> sample 8)

(* {1 A small two-tier app under overload} *)

let make_block ~tier_index ~label n =
  let space = Layout.space ~tier_index ~heap_bytes:(1 lsl 20) ~shared_bytes:(1 lsl 16) in
  Block.make ~label ~code_base:(Layout.code_window space ~index:0)
    (List.init n (fun i ->
         Block.temp (Iform.by_name "ADD_GPR64_GPR64") ~dst:(i mod 8) ~srcs:[| (i + 1) mod 8 |]))

let surge_app () =
  let front_block = make_block ~tier_index:0 ~label:"front" 64 in
  let back_block = make_block ~tier_index:1 ~label:"back" 96 in
  let front _rng _req =
    [
      Spec.Compute (front_block, 3);
      Spec.Call { target = "back"; req_bytes = 128; resp_bytes = 256 };
      Spec.Compute (front_block, 2);
    ]
  in
  (* the back tier holds its worker ~150us per request, so a 2-worker
     tier saturates near 13k qps: the 8x crowd on a 2.5-4k base is
     genuinely past capacity while the pre-spike base stays healthy *)
  let back _rng _req =
    [
      Spec.Compute (back_block, 4);
      Spec.Syscall (Ditto_os.Syscall.Nanosleep { seconds = 1.5e-4 });
    ]
  in
  Spec.make ~name:"surge_app"
    [
      Spec.tier ~name:"front" ~workers:2 ~heap_bytes:(1 lsl 20) ~shared_bytes:(1 lsl 16)
        ~handler:front ();
      Spec.tier ~name:"back" ~workers:2 ~heap_bytes:(1 lsl 20) ~shared_bytes:(1 lsl 16)
        ~handler:back ();
    ]

let surge_load ?profile ?(qps = 2500.0) () =
  Service.load ~qps ~duration:0.5 ~open_loop:true ~client_timeout:0.02 ~client_retries:1
    ?profile ()

let surge_policy =
  Spec.autoscale ~min_replicas:1 ~max_replicas:3 ~target_queue:4.0 ~interval:0.02
    ~cooldown:0.04 ()

let run_surge ?profile ?(resilience = Spec.resilient ~queue_bound:16 ()) ?autoscale
    ?(qps = 2500.0) () =
  let app =
    let armoured = Spec.with_resilience resilience (surge_app ()) in
    match autoscale with None -> armoured | Some p -> Spec.with_autoscale p armoured
  in
  let out =
    Runner.run (Runner.config ~requests:40 Platform.a) ~load:(surge_load ?profile ~qps ()) app
  in
  out.Runner.service

let service_fingerprint (r : Service.result) =
  ( ( r.Service.completed,
      r.Service.errors,
      r.Service.client_timeouts,
      r.Service.client_retries ),
    Array.to_list r.Service.latency_raw,
    r.Service.scale_events,
    List.map
      (fun (o : Service.tier_obs) ->
        ( o.Service.obs_name,
          ( o.Service.obs_timeouts,
            o.Service.obs_retries,
            o.Service.obs_shed,
            o.Service.obs_degraded,
            o.Service.obs_failures,
            o.Service.obs_replicas ) ))
      r.Service.tiers )

let test_constant_profile_bit_identity () =
  (* The tentpole invariant: a [None] profile, [Rate.constant] and an
     explicit all-Constant shape must produce byte-identical runs — the
     profile machinery is provably off on those paths. *)
  let bare = run_surge () in
  let const = run_surge ~profile:Rate.constant () in
  let explicit = run_surge ~profile:(Rate.make ~name:"c" [ Rate.Constant ]) () in
  Alcotest.(check bool) "constant profile = no profile" true
    (service_fingerprint bare = service_fingerprint const);
  Alcotest.(check bool) "explicit Constant terms too" true
    (service_fingerprint bare = service_fingerprint explicit);
  (* and a non-constant profile actually changes the run *)
  let surged = run_surge ~profile:(Profile.flash_crowd ~duration:0.5 ()) () in
  Alcotest.(check bool) "flash crowd perturbs the run" true
    (service_fingerprint bare <> service_fingerprint surged)

let test_autoscaler_scales_out () =
  let r =
    run_surge
      ~profile:(Profile.flash_crowd ~mult:8.0 ~duration:0.5 ())
      ~autoscale:surge_policy ~qps:4000.0 ()
  in
  let events = r.Service.scale_events in
  Alcotest.(check bool)
    (Printf.sprintf "scale events fired (%d)" (List.length events))
    true (events <> []);
  let outs =
    List.filter (fun (e : Service.scale_event) -> e.Service.se_to > e.Service.se_from) events
  in
  Alcotest.(check bool) "at least one scale-out" true (outs <> []);
  List.iter
    (fun (e : Service.scale_event) ->
      Alcotest.(check bool) "replicas within policy bounds" true
        (e.Service.se_to >= 1 && e.Service.se_to <= 3);
      Alcotest.(check bool) "every event moves the count" true
        (e.Service.se_to <> e.Service.se_from);
      Alcotest.(check bool) "tier named" true
        (List.mem e.Service.se_tier [ "front"; "back" ]))
    events;
  (* chronological, and cooldown-separated per tier *)
  let rec check_order = function
    | (a : Service.scale_event) :: (b :: _ as rest) ->
        Alcotest.(check bool) "chronological" true (a.Service.se_at <= b.Service.se_at);
        check_order rest
    | _ -> ()
  in
  check_order events;
  List.iter
    (fun tier ->
      let mine =
        List.filter (fun (e : Service.scale_event) -> e.Service.se_tier = tier) events
      in
      let rec gaps = function
        | (a : Service.scale_event) :: (b :: _ as rest) ->
            Alcotest.(check bool)
              (Printf.sprintf "cooldown respected on %s (%.3f -> %.3f)" tier a.Service.se_at
                 b.Service.se_at)
              true
              (b.Service.se_at -. a.Service.se_at >= 0.04 -. 1e-9);
            gaps rest
        | _ -> ()
      in
      gaps mine)
    [ "front"; "back" ];
  (* teardown replica counts are live and inside the bounds *)
  List.iter
    (fun (o : Service.tier_obs) ->
      Alcotest.(check bool) "teardown replicas in bounds" true
        (o.Service.obs_replicas >= 1 && o.Service.obs_replicas <= 3))
    r.Service.tiers;
  (* without a policy the log is empty and every tier reports one replica *)
  let flat = run_surge ~profile:(Profile.flash_crowd ~duration:0.5 ()) () in
  Alcotest.(check bool) "no policy, no events" true (flat.Service.scale_events = []);
  List.iter
    (fun (o : Service.tier_obs) ->
      Alcotest.(check int) "single replica without policy" 1 o.Service.obs_replicas)
    flat.Service.tiers

let test_autoscaler_deterministic () =
  let go () =
    run_surge
      ~profile:(Profile.flash_crowd ~mult:8.0 ~duration:0.5 ())
      ~autoscale:surge_policy ~qps:4000.0 ()
  in
  let a = go () and b = go () in
  Alcotest.(check bool) "identical scale-event logs" true
    (a.Service.scale_events = b.Service.scale_events);
  Alcotest.(check bool) "identical fingerprints" true
    (service_fingerprint a = service_fingerprint b)

let test_degraded_service () =
  (* Arm degradation with a low backlog bar: under the flash crowd some
     requests must be served degraded; without the knob, none are. *)
  let degrading =
    Spec.resilient ~queue_bound:64 ~degrade:(Spec.degraded ~queue:2 ()) ()
  in
  let profile = Profile.flash_crowd ~mult:8.0 ~duration:0.5 () in
  let soft = run_surge ~profile ~resilience:degrading ~qps:4000.0 () in
  let hard = run_surge ~profile ~qps:4000.0 () in
  let degraded r =
    List.fold_left (fun acc (o : Service.tier_obs) -> acc + o.Service.obs_degraded) 0
      r.Service.tiers
  in
  Alcotest.(check bool)
    (Printf.sprintf "degraded mode served requests (%d)" (degraded soft))
    true
    (degraded soft > 0);
  Alcotest.(check int) "off by default" 0 (degraded hard)

let test_shedding_under_surge () =
  let shed r =
    List.fold_left (fun acc (o : Service.tier_obs) -> acc + o.Service.obs_shed) 0
      r.Service.tiers
  in
  let surged =
    run_surge
      ~profile:(Profile.flash_crowd ~mult:8.0 ~duration:0.5 ())
      ~resilience:(Spec.resilient ~queue_bound:8 ())
      ~qps:4000.0 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "flash crowd sheds (%d)" (shed surged))
    true (shed surged > 0)

(* {1 Surge scorecard} *)

let clone_lazy =
  lazy
    (let app = surge_app () in
     let load = surge_load () in
     (load, Pipeline.clone ~requests:80 ~profile_requests:60 ~platform:Platform.a ~load app))

let test_surge_scorecard () =
  let load, r = Lazy.force clone_lazy in
  let profile = Profile.flash_crowd ~mult:8.0 ~duration:load.Service.duration () in
  let run () =
    Pipeline.validate_under ~platform:Platform.a ~load
      ~resilience:(Spec.resilient ~queue_bound:8 ())
      ~autoscale:surge_policy ~profile ~label:"surge-test" r
  in
  (* without telemetry the scorecard refuses loudly *)
  (match Surge.of_chaos ~app:"surge_app" (run ()) with
  | _ -> Alcotest.fail "scorecard built without telemetry"
  | exception Invalid_argument _ -> ());
  Ts.enable ();
  let ch = Fun.protect ~finally:Ts.disable run in
  let sc = Surge.of_chaos ~app:"surge_app" ch in
  Alcotest.(check string) "scenario is the profile name" "flash-crowd" sc.Surge.scenario;
  (* whole-run shed fractions are raw fractions; the gap is in points *)
  let frac_ok f = f >= 0.0 && f <= 1.0 in
  Alcotest.(check bool) "actual shed fraction sane" true (frac_ok sc.Surge.shed_fraction_actual);
  Alcotest.(check bool) "clone shed fraction sane" true (frac_ok sc.Surge.shed_fraction_clone);
  Alcotest.(check (Alcotest.float 1e-9)) "err_pp is the absolute gap in points"
    (100.0 *. Float.abs (sc.Surge.shed_fraction_actual -. sc.Surge.shed_fraction_clone))
    sc.Surge.shed_fraction_err_pp;
  Alcotest.(check bool) "replica trajectory err in [0,100]" true
    (sc.Surge.replica_traj_err_pp >= 0.0 && sc.Surge.replica_traj_err_pp <= 100.0);
  Alcotest.(check bool) "onset err non-negative" true (sc.Surge.saturation_onset_err_s >= 0.0);
  (* the queue bound of 8 under an 8x crowd forces both sides to shed *)
  Alcotest.(check bool) "actual shed" true (sc.Surge.shed_total_actual > 0);
  Alcotest.(check bool) "clone shed" true (sc.Surge.shed_total_clone > 0);
  (match sc.Surge.saturation_onset_actual with
  | Some at -> Alcotest.(check bool) "onset inside the run" true (at >= 0.0 && at <= 0.5)
  | None -> Alcotest.fail "actual side shed but reports no onset");
  (* the flat keys are exactly the gated family, under app/scenario *)
  let keys = List.map fst (Surge.flat sc) in
  List.iter
    (fun metric ->
      let key = "surge_app/flash-crowd/" ^ metric in
      Alcotest.(check bool) ("flat has " ^ key) true (List.mem key keys))
    [
      "worst_window_err_pct";
      "mean_window_err_pct";
      "reconverge_seconds";
      "shed_fraction_err_pp";
      "worst_shed_window_err_pp";
      "replica_traj_err_pp";
      "saturation_onset_err_s";
    ];
  Alcotest.(check int) "and nothing else" 7 (List.length keys)

let test_scenario_name () =
  let plan = Plan.make ~name:"kill" [] in
  let prof = Profile.flash_crowd ~duration:1.0 () in
  Alcotest.(check string) "steady" "steady" (Pipeline.scenario_name ());
  Alcotest.(check string) "plan only" "kill" (Pipeline.scenario_name ~plan ());
  Alcotest.(check string) "profile only" "flash-crowd" (Pipeline.scenario_name ~surge:prof ());
  Alcotest.(check string) "both" "kill+flash-crowd"
    (Pipeline.scenario_name ~plan ~surge:prof ())

let () =
  Alcotest.run "surge"
    [
      ( "rate",
        [
          Alcotest.test_case "shape validation" `Quick test_rate_validation;
          Alcotest.test_case "multiplier algebra" `Quick test_rate_mult_math;
          Alcotest.test_case "json roundtrip" `Quick test_rate_json_roundtrip;
        ] );
      ( "profiles",
        [
          Alcotest.test_case "canonical profiles" `Quick test_profile_canonical;
          Alcotest.test_case "arrival process" `Quick test_arrival_process;
          Alcotest.test_case "scenario naming" `Quick test_scenario_name;
        ] );
      ( "service",
        [
          Alcotest.test_case "constant profile bit-identical" `Slow
            test_constant_profile_bit_identity;
          Alcotest.test_case "autoscaler scales out" `Slow test_autoscaler_scales_out;
          Alcotest.test_case "autoscaler deterministic" `Slow test_autoscaler_deterministic;
          Alcotest.test_case "graceful degradation" `Slow test_degraded_service;
          Alcotest.test_case "shedding under surge" `Slow test_shedding_under_surge;
        ] );
      ( "scorecard",
        [ Alcotest.test_case "surge fidelity" `Slow test_surge_scorecard ] );
    ]
