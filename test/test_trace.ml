(* Tests for distributed tracing: spans, collection, DAG extraction. *)
open Ditto_trace
open Ditto_app
module Platform = Ditto_uarch.Platform

let span ~trace_id ~span_id ?parent ~service () =
  {
    Span.trace_id;
    span_id;
    parent_span = parent;
    service;
    req_bytes = 100;
    resp_bytes = 200;
  }

(* {1 Span} *)

let test_span_root () =
  Alcotest.(check bool) "root" true (Span.root (span ~trace_id:0 ~span_id:0 ~service:"a" ()));
  Alcotest.(check bool) "child" false
    (Span.root (span ~trace_id:0 ~span_id:1 ~parent:0 ~service:"b" ()))

(* {1 Dag.of_spans on hand-built spans} *)

let two_tier_spans n =
  (* every request: a -> b; every second request: a -> c twice *)
  List.concat
    (List.init n (fun t ->
         let base = t * 10 in
         [ span ~trace_id:t ~span_id:base ~service:"a" ();
           span ~trace_id:t ~span_id:(base + 1) ~parent:base ~service:"b" () ]
         @
         if t mod 2 = 0 then
           [ span ~trace_id:t ~span_id:(base + 2) ~parent:base ~service:"c" ();
             span ~trace_id:t ~span_id:(base + 3) ~parent:base ~service:"c" () ]
         else []))

let test_dag_extraction () =
  let dag = Dag.of_spans (two_tier_spans 100) in
  Alcotest.(check string) "entry" "a" dag.Dag.entry;
  Alcotest.(check int) "three services" 3 (List.length dag.Dag.services);
  let ab = List.find (fun e -> e.Dag.callee = "b") dag.Dag.edges in
  Alcotest.(check (float 1e-9)) "a->b once per request" 1.0 ab.Dag.calls_per_request;
  Alcotest.(check (float 1e-9)) "a->b every request" 1.0 ab.Dag.probability;
  let ac = List.find (fun e -> e.Dag.callee = "c") dag.Dag.edges in
  Alcotest.(check (float 1e-9)) "a->c twice every other request" 1.0 ac.Dag.calls_per_request;
  Alcotest.(check (float 1e-9)) "a->c probability 0.5" 0.5 ac.Dag.probability;
  Alcotest.(check int) "req bytes" 100 ab.Dag.req_bytes

let test_dag_downstreams () =
  let dag = Dag.of_spans (two_tier_spans 10) in
  Alcotest.(check int) "a has two downstream edges" 2 (List.length (Dag.downstreams dag "a"));
  Alcotest.(check int) "b is a leaf" 0 (List.length (Dag.downstreams dag "b"))

let test_dag_topo_order () =
  let dag = Dag.of_spans (two_tier_spans 10) in
  match Dag.topo_order dag with
  | "a" :: rest ->
      Alcotest.(check int) "all services ordered" 2 (List.length rest)
  | other -> Alcotest.failf "entry not first: %s" (String.concat "," other)

let test_dag_no_root_rejected () =
  Alcotest.check_raises "no root" (Invalid_argument "Dag.of_spans: no root span") (fun () ->
      ignore (Dag.of_spans [ span ~trace_id:0 ~span_id:1 ~parent:0 ~service:"x" () ]))

let test_dag_deep_chain () =
  let spans =
    List.concat
      (List.init 20 (fun t ->
           [ span ~trace_id:t ~span_id:0 ~service:"a" ();
             span ~trace_id:t ~span_id:1 ~parent:0 ~service:"b" ();
             span ~trace_id:t ~span_id:2 ~parent:1 ~service:"c" () ]))
  in
  let dag = Dag.of_spans spans in
  let bc = List.find (fun e -> e.Dag.caller = "b") dag.Dag.edges in
  Alcotest.(check string) "b calls c" "c" bc.Dag.callee;
  Alcotest.(check (list string)) "topological" [ "a"; "b"; "c" ] (Dag.topo_order dag)

(* {1 Jaeger ingest hardening} *)

(* Hand-written Jaeger documents: structurally valid JSON whose span
   content is broken must raise the typed Ingest_error naming the span —
   never Stack_overflow (cycles) or silent garbage (negative durations). *)
let jaeger_doc spans =
  Printf.sprintf {|{"data": [{"traceID": "1", "spans": [%s]}]}|} (String.concat ", " spans)

let jaeger_span ?parent ?duration ~id () =
  let refs =
    match parent with
    | None -> ""
    | Some p -> Printf.sprintf {|, "references": [{"refType": "CHILD_OF", "spanID": "%s"}]|} p
  in
  let dur = match duration with None -> "" | Some d -> Printf.sprintf {|, "duration": %s|} d in
  Printf.sprintf {|{"traceID": "1", "spanID": "%s", "operationName": "svc-%s"%s%s}|} id id refs
    dur

let check_ingest_error ~expect_span doc =
  match Jaeger.of_string doc with
  | spans -> Alcotest.failf "broken document accepted (%d spans)" (List.length spans)
  | exception Jaeger.Ingest_error { span_id; reason = _ } ->
      Alcotest.(check string) "offending span named" expect_span span_id

let test_jaeger_valid_roundtrip () =
  let doc =
    jaeger_doc [ jaeger_span ~id:"a" (); jaeger_span ~id:"b" ~parent:"a" ~duration:"12.5" () ]
  in
  let spans = Jaeger.of_string doc in
  Alcotest.(check int) "both spans" 2 (List.length spans);
  Alcotest.(check bool) "one root" true (List.exists Span.root spans)

let test_jaeger_self_parent () =
  check_ingest_error ~expect_span:"a" (jaeger_doc [ jaeger_span ~id:"a" ~parent:"a" () ])

let test_jaeger_cycle () =
  (* b -> c -> d -> b: a cycle no single span's reference reveals. The old
     recursive ancestry walk would never terminate on this. *)
  check_ingest_error ~expect_span:"b"
    (jaeger_doc
       [
         jaeger_span ~id:"a" ();
         jaeger_span ~id:"b" ~parent:"c" ();
         jaeger_span ~id:"c" ~parent:"d" ();
         jaeger_span ~id:"d" ~parent:"b" ();
       ])

let test_jaeger_malformed_parent () =
  check_ingest_error ~expect_span:"a"
    (jaeger_doc [ jaeger_span ~id:"a" ~parent:"not-hex!" () ])

let test_jaeger_negative_duration () =
  check_ingest_error ~expect_span:"b"
    (jaeger_doc [ jaeger_span ~id:"a" (); jaeger_span ~id:"b" ~parent:"a" ~duration:"-3" () ])

let test_jaeger_long_chain_ok () =
  (* A deep but acyclic chain must pass the cycle check (bound is the
     parented-span count, not an arbitrary depth limit). *)
  let n = 500 in
  let spans =
    jaeger_span ~id:"0" ()
    :: List.init n (fun i ->
           jaeger_span ~id:(Printf.sprintf "%x" (i + 1)) ~parent:(Printf.sprintf "%x" i) ())
  in
  Alcotest.(check int) "all ingested" (n + 1) (List.length (Jaeger.of_string (jaeger_doc spans)))

(* {1 Collector over a real measured microservice} *)

let collect_social () =
  let app = Ditto_apps.Social_network.spec () in
  let cfg = Runner.config ~requests:40 ~seed:11 Platform.a in
  let load = Service.load ~qps:400.0 ~duration:0.4 () in
  let out = Runner.run cfg ~load app in
  let results name = List.assoc name out.Runner.measured in
  Collector.collect ~entry:app.Spec.entry ~results ~samples:120 ~seed:13

let test_collector_spans () =
  let spans = collect_social () in
  Alcotest.(check bool) "many spans" true (List.length spans > 200);
  let roots = List.filter Span.root spans in
  Alcotest.(check int) "one root per sampled trace" 120 (List.length roots);
  List.iter
    (fun (s : Span.t) ->
      Alcotest.(check bool) "frontend roots" true
        (not (Span.root s) || s.Span.service = "frontend"))
    spans

let test_collector_dag_is_social_topology () =
  let dag = Dag.of_spans (collect_social ()) in
  Alcotest.(check string) "entry" "frontend" dag.Dag.entry;
  (* All 22 services should appear in enough samples. *)
  Alcotest.(check int) "all tiers discovered" 22 (List.length dag.Dag.services);
  (* frontend calls exactly compose-post and home-timeline *)
  let fe = Dag.downstreams dag "frontend" |> List.map (fun e -> e.Dag.callee) in
  Alcotest.(check bool) "frontend -> compose" true (List.mem "ComposePostService" fe);
  Alcotest.(check bool) "frontend -> home timeline" true (List.mem "HomeTimelineService" fe);
  Alcotest.(check int) "only those two" 2 (List.length fe);
  (* text-service fans out to url-shorten and user-mention with p ~ 0.5 *)
  let tx = Dag.downstreams dag "TextService" in
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Printf.sprintf "text edge p in (0.2,0.8): %s" e.Dag.callee)
        true
        (e.Dag.probability > 0.2 && e.Dag.probability < 0.8))
    tx;
  (* acyclic *)
  Alcotest.(check int) "topo covers all" 22 (List.length (Dag.topo_order dag))

let test_dag_pp_smoke () =
  let dag = Dag.of_spans (two_tier_spans 4) in
  let s = Format.asprintf "%a" Dag.pp dag in
  Alcotest.(check bool) "pp mentions entry" true (String.length s > 10)

let () =
  Alcotest.run "trace"
    [
      ("span", [ Alcotest.test_case "root" `Quick test_span_root ]);
      ( "dag",
        [
          Alcotest.test_case "extraction" `Quick test_dag_extraction;
          Alcotest.test_case "downstreams" `Quick test_dag_downstreams;
          Alcotest.test_case "topo order" `Quick test_dag_topo_order;
          Alcotest.test_case "no root" `Quick test_dag_no_root_rejected;
          Alcotest.test_case "deep chain" `Quick test_dag_deep_chain;
          Alcotest.test_case "pp" `Quick test_dag_pp_smoke;
        ] );
      ( "jaeger",
        [
          Alcotest.test_case "valid roundtrip" `Quick test_jaeger_valid_roundtrip;
          Alcotest.test_case "self parent" `Quick test_jaeger_self_parent;
          Alcotest.test_case "cycle" `Quick test_jaeger_cycle;
          Alcotest.test_case "malformed parent ref" `Quick test_jaeger_malformed_parent;
          Alcotest.test_case "negative duration" `Quick test_jaeger_negative_duration;
          Alcotest.test_case "long acyclic chain" `Quick test_jaeger_long_chain_ok;
        ] );
      ( "collector",
        [
          Alcotest.test_case "spans" `Slow test_collector_spans;
          Alcotest.test_case "social topology" `Slow test_collector_dag_is_social_topology;
        ] );
    ]
