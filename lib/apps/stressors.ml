open Ditto_isa
open Ditto_app

type t = Ditto_util.Rng.t -> int -> Spec.op list

(* Stressors live in their own address range, above all tier heaps. *)
let stress_region bytes = Block.make_region ~base:0x70_0000_0000 ~bytes ~shared:false
let stress_code = 0x6FFF_0000

(* A sweep block whose load templates are phase-staggered across the window
   so one pass touches [temps * iterations] distinct lines — one antagonist
   turn is the work a continuously-running stress thread does while the
   victim handles one request. *)
let sweep_block ~label ~bytes ~insts =
  let region = stress_region bytes in
  let lines = max 1 (bytes / 64) in
  let temps =
    List.init insts (fun i ->
        if i mod 4 = 3 then
          Block.temp (Iform.by_name "ADD_GPR64_GPR64") ~dst:(Block.gp (i mod 8))
            ~srcs:[| Block.gp (i mod 8); Block.gp ((i + 1) mod 8) |]
        else begin
          let t =
            Block.temp (Iform.by_name "MOV_GPR64_MEM")
              ~dst:(Block.gp (i mod 8))
              ~srcs:[| Block.gp 10 |]
              ~mem:(Block.Seq_stride { region; start = 0; stride = 64; span = bytes })
          in
          Block.set_phase t (i * lines / max 1 insts);
          t
        end)
  in
  Block.make ~label ~code_base:stress_code temps

let spin_block () =
  let temps =
    List.init 64 (fun i ->
        Block.temp (Iform.by_name "IMUL_GPR64_GPR64") ~dst:(Block.gp (i mod 10))
          ~srcs:[| Block.gp (i mod 10); Block.gp ((i + 3) mod 10) |])
  in
  Block.make ~label:"stress_cpu" ~code_base:stress_code temps

(* Stressor blocks carry mutable stream cursors, so they are memoised
   per-domain rather than in a shared [lazy]: parallel actual/synthetic
   validation runs (Ditto_util.Pool) would otherwise race on the cursors of
   one shared block. Each domain builds identical copies deterministically. *)
let block_memo_key : (string, Block.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let memo_block name build =
  let memo = Domain.DLS.get block_memo_key in
  match Hashtbl.find_opt memo name with
  | Some b -> b
  | None ->
      let b = build () in
      Hashtbl.add memo name b;
      b

let l1d_block () = sweep_block ~label:"stress_l1d" ~bytes:(32 * 1024) ~insts:256
let l2_block () = sweep_block ~label:"stress_l2" ~bytes:(768 * 1024) ~insts:256
let llc_block () = sweep_block ~label:"stress_llc" ~bytes:(64 * 1024 * 1024) ~insts:256

(* Iteration counts size each turn's distinct-line footprint: L1d turns
   cover ~2x a 32KB L1d, L2 turns ~1.5x a 1MB L2, LLC turns roughly half of
   a 30MB LLC (an iBench-grade antagonist streaming flat out). *)
let cpu_spin _rng _seq = [ Spec.Compute (memo_block "cpu" spin_block, 24) ]
let l1d _rng _seq = [ Spec.Compute (memo_block "l1d" l1d_block, 6) ]
let l2 _rng _seq = [ Spec.Compute (memo_block "l2" l2_block, 128) ]
let llc _rng _seq = [ Spec.Compute (memo_block "llc" llc_block, 1200) ]

let by_name = function
  | "HT" -> cpu_spin
  | "L1d" -> l1d
  | "L2" -> l2
  | "LLC" -> llc
  | _ -> raise Not_found
