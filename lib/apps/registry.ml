type entry = {
  name : string;
  spec : unit -> Ditto_app.Spec.t;
  workload : Ditto_loadgen.Workload.t;
  loads : float * float * float;
  focus_tiers : string list;
}

let all =
  [
    {
      name = "memcached";
      spec = Memcached.spec;
      workload = Memcached.workload;
      loads = Memcached.loads;
      focus_tiers = [ "memcached" ];
    };
    {
      name = "nginx";
      spec = Nginx.spec;
      workload = Nginx.workload;
      loads = Nginx.loads;
      focus_tiers = [ "nginx" ];
    };
    {
      name = "mongodb";
      spec = Mongodb.spec;
      workload = Mongodb.workload;
      loads = Mongodb.loads;
      focus_tiers = [ "mongodb" ];
    };
    {
      name = "redis";
      spec = Redis.spec;
      workload = Redis.workload;
      loads = Redis.loads;
      focus_tiers = [ "redis" ];
    };
    {
      name = "social_network";
      spec = Social_network.spec;
      workload = Social_network.workload;
      loads = Social_network.loads;
      focus_tiers = [ "TextService"; "SocialGraphService" ];
    };
  ]

(* Synthesized production-scale graphs (DESIGN.md §11). Spec generation is
   deferred behind the [spec] thunk, so listing the registry stays cheap;
   loads scale inversely with graph width since every gateway request fans
   out across the whole tier population. *)
let synth_entry ~tiers ~loads =
  {
    name = Ditto_gen.Topology.app_name tiers;
    spec =
      (fun () ->
        (Ditto_gen.Topology.generate (Ditto_gen.Topology.default ~tiers ())).Ditto_gen.Topology.spec);
    workload = Ditto_loadgen.Workload.wrk2_open;
    loads;
    focus_tiers = [ "gateway" ];
  }

let synth_sizes = [ 100; 500; 1000 ]

let extras =
  [
    {
      name = "hotel_reservation";
      spec = Hotel_reservation.spec;
      workload = Hotel_reservation.workload;
      loads = Hotel_reservation.loads;
      focus_tiers = [ "SearchService"; "GeoService" ];
    };
    {
      name = "media_service";
      spec = Media_service.spec;
      workload = Media_service.workload;
      loads = Media_service.loads;
      focus_tiers = [ "PageService"; "ReviewStorageService" ];
    };
    (* Medium load must deliver enough requests per validation window that
       the Bernoulli edge draws converge: per-request-type subgraphs see
       only a popularity-weighted slice of the traffic, and near-zero
       per-tier request counts turn the scorecard's relative errors into
       single-event noise. *)
    synth_entry ~tiers:100 ~loads:(500., 2000., 4000.);
    synth_entry ~tiers:500 ~loads:(100., 400., 800.);
    synth_entry ~tiers:1000 ~loads:(50., 200., 400.);
  ]

let by_name name =
  match List.find_opt (fun e -> e.name = name) (all @ extras) with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Registry.by_name: unknown app %S" name)

let singles = List.filter (fun e -> e.name <> "social_network") all
