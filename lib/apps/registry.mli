(** The application roster of §6.1.2, with each service's load generator
    and the QPS points used for the low/medium/high sweeps. *)

type entry = {
  name : string;
  spec : unit -> Ditto_app.Spec.t;
  workload : Ditto_loadgen.Workload.t;
  loads : float * float * float;  (** low / medium / high QPS *)
  focus_tiers : string list;
      (** the tiers whose metrics Fig. 5 reports (the service itself for
          monoliths; TextService and SocialGraphService for Social
          Network) *)
}

val all : entry list
(** The paper's evaluation set (§6.1.2). *)

val extras : entry list
(** Additional topologies beyond the paper's set (pipeline-generality
    checks): DeathStarBench's Hotel Reservation and Media Service, plus
    the synthesized production-scale graphs [synth-100/500/1000]
    (DESIGN.md §11). *)

val synth_sizes : int list
(** Tier counts of the registered synthetic graphs. *)

val by_name : string -> entry
(** Searches [all] then [extras]. *)

val singles : entry list
(** The four single-tier services. *)
