(** Seeded synthesis of production-shaped microservice graphs.

    DeathStarBench tops out near thirty tiers; production graphs (Alibaba,
    Meta traces) run to hundreds or thousands, with heavy-tailed tier
    reuse — a few storage/cache tiers called from everywhere — multiple
    entry request types, and depth well past the benchmarks'. This module
    generates such graphs as ordinary {!Ditto_app.Spec.t} values so the
    clone/validate/tune pipeline exercises that scale unchanged, together
    with the ground-truth {!Ditto_trace.Dag.t} the recovered topology is
    checked against.

    Structure: tiers are arranged in layers (layer 0 is the single
    gateway); every edge points to a strictly deeper layer, so graphs are
    acyclic by construction. Out-degrees are Pareto-distributed
    (heavy-tailed fan-out), and call targets mix nearest-layer chaining
    with a Zipf-weighted draw over all deeper tiers ranked deepest-first,
    concentrating reuse on the deep storage tiers. The gateway exposes
    several request types, each owning a disjoint slice of the layer-1
    tiers, with Zipf-weighted type popularity. Per-caller downstream call
    probabilities are scaled to a budget so the expected per-request RPC
    tree stays bounded as the graph grows. All sampling flows from a
    single SplitMix64 seed: the same [params] always yield the same graph,
    bit for bit. *)

type params = {
  tiers : int;  (** total tier count including the gateway; >= 2 *)
  seed : int;
  max_depth : int;
      (** deepest layer; kept <= 8 so the trace collector's depth cap (16)
          is never clipped on any root-to-leaf path *)
  fanout_shape : float;  (** Pareto shape for out-degree; smaller = heavier tail *)
  fanout_scale : float;  (** Pareto scale (minimum out-degree mass) *)
  reuse_s : float;  (** Zipf exponent of deep-tier reuse popularity *)
  request_types : int;  (** gateway API endpoints; capped at layer-1 width *)
  call_budget : float;
      (** target sum of downstream call probabilities per caller; bounds
          the expected per-request RPC tree size independent of [tiers] *)
}

val default : ?seed:int -> tiers:int -> unit -> params
(** Production-flavoured defaults: depth 8, Pareto(1.0, 1.3) fan-out,
    Zipf 1.1 reuse, 6 request types, call budget 1.2. *)

type t = {
  params : params;
  name : string;  (** ["synth-<tiers>"] *)
  spec : Ditto_app.Spec.t;  (** runnable spec; entry tier is ["gateway"] *)
  dag : Ditto_trace.Dag.t;  (** ground-truth topology *)
  layers : int array;  (** layer of tier [i] in spec order; gateway = 0 *)
}

val generate : params -> t
(** Deterministic in [params]. Raises [Invalid_argument] if [tiers < 2] or
    [tiers > Layout.max_tiers]. *)

val spans : ?traces_per_type:int -> t -> Ditto_trace.Span.t list
(** Synthetic distributed-trace spans covering the full graph: gateway
    targets are chunked into request-type-sized groups, and each group
    emits [traces_per_type] traces (default 1) holding one span per DAG
    edge reachable under that group, with canonical parents so every
    span's parent precedes it. [Dag.of_spans (spans t)] recovers a DAG
    {!same_shape}-equal to [t.dag]; round-tripping the spans through
    {!Ditto_trace.Jaeger} preserves this. *)

val same_shape : Ditto_trace.Dag.t -> Ditto_trace.Dag.t -> bool
(** Structural equality: same entry, same service set, same
    (caller, callee, req_bytes, resp_bytes) edge set — ignoring call-rate
    statistics, which depend on how many traces were sampled. *)

val app_name : int -> string
(** [app_name n] is ["synth-<n>"]. *)

val parse_name : string -> int option
(** Inverse of {!app_name}; [None] for anything else. *)
