(** Generator tuning knobs, calibrated by {!Ditto_tune} (§4.5).

    Knobs are grouped: members of a group are jointly tuned because they
    influence the same counters (e.g. branch rates and the i-cache pattern
    both drive branch prediction); across groups they are close to
    orthogonal, which is what makes the paper's feedback heuristic work. *)

type t = {
  inst_scale : float;  (** scales dynamic instructions per request *)
  i_ws_scale : float;  (** scales instruction footprints (L1i/frontend) *)
  d_ws_scale : float;  (** scales data working-set sizes (L1d) *)
  big_mass_scale : float;
      (** scales the count of large-working-set accesses (L2/LLC traffic) *)
  branch_m_shift : int;  (** +1 = halve minority-direction rates *)
  branch_n_shift : int;
  chase_scale : float;  (** scales the pointer-chasing load fraction (MLP) *)
}

val default : t
val pp : Format.formatter -> t -> unit

(** The jointly-tuned knob groups. *)
type group = Frontend | Data | Work

val group_of_metric : string -> group option
(** Maps a counter name ("l1i" | "branch" | "l1d" | "l2" | "llc" | "ipc")
    to the knob group that owns it. *)

val group_name : group -> string
(** Stable lowercase name ("frontend" | "data" | "work") used in tuner
    attribution keys and scorecard rows. *)
