open Ditto_app
module P = Ditto_profile

let c_synth_apps = Ditto_obs.Obs.Metrics.counter "gen.synth_apps"

let synth_tier ?(features = Body_gen.all_features) ?(params = Params.default) ?(seed = 1009)
    ~(profile : P.Tier_profile.t) ~space ~downstream () =
  let sk = profile.P.Tier_profile.skeleton in
  let handler =
    Body_gen.generate ~profile ~space ~features ~params ~downstream ~seed
  in
  let background_handler =
    match profile.P.Tier_profile.background with
    | None -> None
    | Some bg_profile ->
        let bg =
          Body_gen.generate ~profile:bg_profile ~space ~features ~params ~downstream:[]
            ~seed:(seed + 13)
        in
        Some (fun rng -> bg rng 0)
  in
  Spec.tier ~name:profile.P.Tier_profile.tier_name
    ~server_model:sk.P.Skeleton.server_model ~client_model:sk.P.Skeleton.client_model
    ~workers:sk.P.Skeleton.worker_threads ~dynamic_threads:sk.P.Skeleton.dynamic_threads
    ~background:sk.P.Skeleton.background ?background_handler
    ~request_bytes:sk.P.Skeleton.request_bytes ~response_bytes:sk.P.Skeleton.response_bytes
    ~heap_bytes:profile.P.Tier_profile.heap_bytes
    ~shared_bytes:profile.P.Tier_profile.shared_bytes
    ~file_bytes:profile.P.Tier_profile.file_bytes ~handler ()

let synth_app ?(features = Body_gen.all_features) ?params ?(seed = 1009)
    (app : P.Tier_profile.app) =
  Ditto_obs.Obs.Metrics.incr c_synth_apps;
  let params_for name =
    match params with Some f -> f name | None -> Params.default
  in
  (* Index downstream edges by caller once: Dag.downstreams filters the
     whole edge list per call, which is O(tiers * edges) over the mapi
     below — a real cost on synth-1000 graphs. *)
  let downstream_tbl : (string, Ditto_trace.Dag.edge list ref) Hashtbl.t = Hashtbl.create 64 in
  (match app.P.Tier_profile.dag with
  | None -> ()
  | Some dag ->
      List.iter
        (fun (e : Ditto_trace.Dag.edge) ->
          match Hashtbl.find_opt downstream_tbl e.Ditto_trace.Dag.caller with
          | Some cell -> cell := e :: !cell
          | None -> Hashtbl.add downstream_tbl e.Ditto_trace.Dag.caller (ref [ e ]))
        dag.Ditto_trace.Dag.edges);
  let tiers =
    List.mapi
      (fun i (tp : P.Tier_profile.t) ->
        let space =
          Layout.space ~tier_index:i ~heap_bytes:tp.P.Tier_profile.heap_bytes
            ~shared_bytes:tp.P.Tier_profile.shared_bytes
        in
        let downstream =
          match Hashtbl.find_opt downstream_tbl tp.P.Tier_profile.tier_name with
          | Some cell -> List.rev !cell
          | None -> []
        in
        synth_tier ~features
          ~params:(params_for tp.P.Tier_profile.tier_name)
          ~seed:(seed + (17 * i))
          ~profile:tp ~space ~downstream ())
      app.P.Tier_profile.tiers
  in
  Spec.make
    ~name:(app.P.Tier_profile.app_name ^ "_synth")
    ~entry:app.P.Tier_profile.entry
    ?page_cache_hint:app.P.Tier_profile.page_cache_hint tiers
