open Ditto_isa
open Ditto_app
module Rng = Ditto_util.Rng
module Dist = Ditto_util.Dist
module P = Ditto_profile

let c_blocks = Ditto_obs.Obs.Metrics.counter "gen.blocks"
let made_block b = Ditto_obs.Obs.Metrics.incr c_blocks; b

type features = {
  f_syscalls : bool;
  f_inst_count : bool;
  f_inst_mix : bool;
  f_branches : bool;
  f_i_mem : bool;
  f_d_mem : bool;
  f_deps : bool;
}

let all_features =
  {
    f_syscalls = true;
    f_inst_count = true;
    f_inst_mix = true;
    f_branches = true;
    f_i_mem = true;
    f_d_mem = true;
    f_deps = true;
  }

let no_features =
  {
    f_syscalls = false;
    f_inst_count = false;
    f_inst_mix = false;
    f_branches = false;
    f_i_mem = false;
    f_d_mem = false;
    f_deps = false;
  }

let stage = function
  | 'A' -> no_features
  | 'B' -> { no_features with f_syscalls = true }
  | 'C' -> { no_features with f_syscalls = true; f_inst_count = true }
  | 'D' -> { no_features with f_syscalls = true; f_inst_count = true; f_inst_mix = true }
  | 'E' ->
      {
        no_features with
        f_syscalls = true;
        f_inst_count = true;
        f_inst_mix = true;
        f_branches = true;
      }
  | 'F' ->
      {
        no_features with
        f_syscalls = true;
        f_inst_count = true;
        f_inst_mix = true;
        f_branches = true;
        f_i_mem = true;
      }
  | 'G' -> { all_features with f_deps = false }
  | 'H' -> all_features
  | c -> invalid_arg (Printf.sprintf "Body_gen.stage: %c" c)

(* Registers: r9 is the loop counter, r10 the data base, r11 the
   pointer-chase register (Fig. 3's reserved registers); the rest clone
   dependency behaviour. *)
let gp_pool = Array.init 9 Block.gp
let xmm_pool = Array.init 12 Block.xmm

let rec log2_floor n = if n <= 1 then 0 else 1 + log2_floor (n / 2)

type genstate = {
  rng : Rng.t;
  mutable pos : int;
  last_def : int array;
}

(* Pick a register from [pool] whose last definition is closest to the
   sampled dependency distance. *)
let pick_by_distance st pool distance =
  let best = ref pool.(0) and best_err = ref max_int in
  Array.iter
    (fun r ->
      let d = st.pos - st.last_def.(r) in
      let err = abs (d - distance) in
      if err < !best_err then begin
        best_err := err;
        best := r
      end)
    pool;
  !best

let generate ~(profile : P.Tier_profile.t) ~(space : Layout.space) ~features ~(params : Params.t)
    ~downstream ~seed =
  let rng = Rng.create seed in
  let st = { rng; pos = 0; last_def = Array.make Block.num_regs (-4096) } in
  let heap_log2 = log2_floor (max 4096 profile.P.Tier_profile.heap_bytes) in
  let ws = profile.P.Tier_profile.working_set in
  let mix = profile.P.Tier_profile.instmix in
  let brs = profile.P.Tier_profile.branches in
  let deps = profile.P.Tier_profile.deps in

  (* Samplers (precomputed). *)
  let cluster_sampler =
    match mix.P.Instmix.clusters with
    | [] -> None
    | clusters ->
        let member_samplers =
          List.map
            (fun (ids, w) ->
              let weighted =
                List.map
                  (fun id ->
                    let c = try List.assoc id mix.P.Instmix.iform_counts with Not_found -> 1 in
                    (id, float_of_int (max 1 c)))
                  ids
              in
              (Dist.discrete weighted, w))
            clusters
        in
        Some (Dist.discrete member_samplers)
  in
  (* REP-prefixed instructions are rare but account for whole cache-line
     bursts; they are planned as a dedicated per-request block below rather
     than sampled (a sampled rep landing in a cold block would execute
     almost never while carrying most of the memory traffic). *)
  let rec sample_iform () =
    if not features.f_inst_mix then Iform.by_name "ADD_GPR64_GPR64"
    else
      match cluster_sampler with
      | None -> Iform.by_name "ADD_GPR64_GPR64"
      | Some cs ->
          let f = Iform.of_id (Dist.discrete_sample (Dist.discrete_sample cs rng) rng) in
          if f.Iform.klass = Iclass.Rep_string then sample_iform () else f
  in
  (* Bulk REP copies stream the largest working set and consume their line
     touches from its A_d mass; the remaining mass drives scattered loads
     and stores. Without this split the clone turns one overlapped burst
     into serial-ish scattered misses and loses IPC. *)
  let rep_lines_per_request =
    mix.P.Instmix.rep_fraction *. mix.P.Instmix.insts_per_request
    *. (mix.P.Instmix.rep_mean_count /. 64.0)
  in
  let largest_live_bin =
    List.fold_left
      (fun acc (l, a) -> if a > 0.01 && l > acc then l else acc)
      6 ws.P.Working_set.d_working_sets
  in
  let d_working_sets_scattered =
    let remaining = ref rep_lines_per_request in
    List.map
      (fun (l, a) ->
        let eat = Float.min a !remaining in
        remaining := !remaining -. eat;
        (l, a -. eat))
      (List.sort (fun (a, _) (b, _) -> compare b a) ws.P.Working_set.d_working_sets)
  in
  (* The mix contains more memory-operand instructions than the profiled
     access mass A_d (register spills and hot locals resolve to the same
     line). The surplus must stay on the hottest window or the clone
     over-scatters and inflates collateral evictions. *)
  let mem_fraction =
    let total = List.fold_left (fun a (_, c) -> a + c) 0 mix.P.Instmix.iform_counts in
    let mem =
      List.fold_left
        (fun a (id, c) ->
          let f = Iform.of_id id in
          if f.Iform.mem_width > 0 && f.Iform.klass <> Iclass.Rep_string then a + c else a)
        0 mix.P.Instmix.iform_counts
    in
    if total = 0 then 0.0 else float_of_int mem /. float_of_int total
  in
  let expected_mem_per_request = mix.P.Instmix.insts_per_request *. mem_fraction in
  let scattered_total =
    List.fold_left (fun a (_, x) -> a +. x) 0.0 d_working_sets_scattered
  in
  let hot_slack = Float.max 0.0 (expected_mem_per_request -. scattered_total) in
  (* Accesses to large working sets are emitted in bursts of [burst_len]
     (see the block builder), so their selection mass divides accordingly. *)
  let burst_len = 14 in
  let burst_bin l = l >= 18 in
  let d_bin_sampler =
    let live =
      (6, hot_slack)
      :: List.filter (fun (_, a) -> a > 0.01) d_working_sets_scattered
    in
    let live =
      List.map
        (fun (l, a) ->
          if burst_bin l then (l, a *. params.Params.big_mass_scale /. float_of_int burst_len)
          else (l, a))
        live
    in
    let live = List.filter (fun (_, a) -> a > 0.01) live in
    match live with [] -> None | l -> Some (Dist.discrete l)
  in
  let shift_bin l =
    let shift =
      int_of_float (Float.round (Float.log2 (Float.max 0.125 params.Params.d_ws_scale)))
    in
    min heap_log2 (max 6 (l + shift))
  in
  let sample_d_bin () =
    if not features.f_d_mem then 6
    else match d_bin_sampler with None -> 6 | Some s -> shift_bin (Dist.discrete_sample s rng)
  in
  (* Streaming structures (REP targets, chase chains) keep their profiled
     size: scaling them with the small-window knob can push a
     larger-than-LLC stream below LLC capacity and erase its misses. *)
  let sample_d_bin_unscaled () =
    if not features.f_d_mem then 6
    else
      match d_bin_sampler with
      | None -> 6
      | Some s -> min heap_log2 (max 6 (Dist.discrete_sample s rng))
  in
  (* Fig. 4: accesses of a 2^l working set live in the window
     [2^(l-1), 2^l) and loop within it. *)
  let window_of_bin l =
    if l <= 6 then (0, 64) else (1 lsl (l - 1), 1 lsl (l - 1))
  in
  let mem_pattern_for ~is_load =
    let l = sample_d_bin () in
    let start, span = window_of_bin l in
    let shared =
      features.f_d_mem
      && Rng.float rng 1.0 < ws.P.Working_set.shared_ratio
      && profile.P.Tier_profile.shared_bytes >= 4096
    in
    let region = if shared then space.Layout.shared else space.Layout.heap in
    let span = min span (max 64 (region.Block.region_bytes - start)) in
    let start = if start + span > region.Block.region_bytes then 0 else start in
    let regular =
      (not features.f_d_mem) || Rng.float rng 1.0 < ws.P.Working_set.regular_ratio
    in
    ignore is_load;
    if regular then (Block.Seq_stride { region; start; stride = 64; span }, span)
    else (Block.Rand_uniform { region; start; span }, 0)
  in
  let chase_pattern () =
    (* MLP cloning: chase windows come from the larger working sets. *)
    let l = max 12 (sample_d_bin_unscaled ()) in
    let l = min l heap_log2 in
    let start, span = window_of_bin l in
    Block.Chase { region = space.Layout.heap; start; span }
  in
  let branch_spec () =
    if not features.f_branches then { Block.m = 1; n = 1; invert = false }
    else begin
      let site = P.Branches.sample_site brs rng in
      {
        Block.m = max 0 (min 10 (site.P.Branches.m + params.Params.branch_m_shift));
        n = max 0 (min 10 (site.P.Branches.n + params.Params.branch_n_shift));
        invert = site.P.Branches.invert;
      }
    end
  in
  let chase_prob =
    if features.f_deps then deps.P.Deps.chase_fraction *. params.Params.chase_scale else 0.0
  in
  let emit_template () =
    st.pos <- st.pos + 1;
    let iform = sample_iform () in
    let is_xmm = Array.exists (fun o -> o = Iclass.Op_xmm) iform.Iform.operands in
    let pool = if is_xmm then xmm_pool else gp_pool in
    let pick_src () =
      if features.f_deps then
        pick_by_distance st pool (P.Deps.sample_distance deps.P.Deps.raw st.rng)
      else pick_by_distance st pool 1 (* strongest dependencies: chain *)
    in
    (* Address registers get their own measured distance profile: memory
       parallelism depends on how early addresses are known. *)
    let pick_addr_src () =
      if features.f_deps then
        pick_by_distance st pool (P.Deps.sample_distance deps.P.Deps.raw_addr st.rng)
      else pick_by_distance st pool 1
    in
    let pick_dst () =
      if features.f_deps then
        pick_by_distance st pool (P.Deps.sample_distance deps.P.Deps.waw st.rng)
      else pool.(0)
    in
    let klass = iform.Iform.klass in
    let temp =
      if Iclass.is_branch klass then
        Block.temp iform ~branch:(branch_spec ())
      else if klass = Iclass.Rep_string then begin
        let l = if features.f_d_mem then min heap_log2 largest_live_bin else 6 in
        let start, span = window_of_bin l in
        let span = min span (max 64 (space.Layout.heap.Block.region_bytes - start)) in
        let t =
          Block.temp iform
            ~srcs:[| Block.gp 6 |]
            ~mem:(Block.Seq_stride { region = space.Layout.heap; start; stride = 64; span })
            ~rep_count:(max 64 (int_of_float mix.P.Instmix.rep_mean_count))
        in
        if span >= 128 then Block.set_phase t (Rng.int rng (span / 64));
        t
      end
      else if iform.Iform.mem_width > 0 then begin
        let is_load = Iclass.is_memory_read klass in
        if is_load && Rng.float st.rng 1.0 < chase_prob then
          (* mov r11, [r11]: serialised pointer chase. *)
          Block.temp (Iform.by_name "MOV_GPR64_MEM") ~dst:(Block.gp 11)
            ~srcs:[| Block.gp 11 |]
            ~mem:(chase_pattern ())
        else begin
          let src = pick_addr_src () in
          let pattern, phase_span = mem_pattern_for ~is_load in
          (* Distinct hard-coded phase per instruction: templates sharing a
             window must not walk it in lockstep (Fig. 4 assigns each
             access its own offset). *)
          let phase span = if span >= 128 then Rng.int rng (span / 64) else 0 in
          let t =
            if is_load then begin
              let dst = pick_dst () in
              let t = Block.temp iform ~dst ~srcs:[| src |] ~mem:pattern in
              st.last_def.(dst) <- st.pos;
              t
            end
            else Block.temp iform ~srcs:[| src |] ~mem:pattern
          in
          Block.set_phase t (phase phase_span);
          t
        end
      end
      else begin
        let src = pick_src () in
        let dst = pick_dst () in
        let t = Block.temp iform ~dst ~srcs:[| src; dst |] in
        st.last_def.(dst) <- st.pos;
        t
      end
    in
    temp
  in
  (* Instruction blocks per the i-working-set decomposition (Eq. 2). *)
  let blocks =
    if not features.f_inst_count then []
    else begin
      let bins =
        if features.f_i_mem then
          List.filter (fun (_, e) -> e >= 8.0) ws.P.Working_set.i_working_sets
        else [ (9, mix.P.Instmix.insts_per_request) ] (* compact 512B footprint *)
      in
      let total_profiled = List.fold_left (fun a (_, e) -> a +. e) 0.0 bins in
      let target_total = mix.P.Instmix.insts_per_request *. params.Params.inst_scale in
      let norm = if total_profiled <= 0.0 then 1.0 else target_total /. total_profiled in
      List.mapi
        (fun bi (j, execs) ->
          let execs = execs *. norm in
          let footprint =
            let scaled =
              int_of_float (float_of_int (1 lsl j) *. params.Params.i_ws_scale)
            in
            max 64 (min (1 lsl 18) scaled)
          in
          (* Emit templates until [limit] encoded bytes. *)
          let emit_until limit =
            let temps = ref [] and bytes = ref 0 and count = ref 0 in
            let push t =
              temps := t :: !temps;
              bytes := !bytes + t.Block.iform.Iform.bytes;
              incr count
            in
            while !bytes < limit do
              let t = emit_template () in
              push t;
              (* Large-working-set accesses come from copy/scan loops: emit
                 them in bursts so their misses overlap in the ROB the way
                 the original's do (sampler mass divided by [burst_len]). *)
              (match t.Block.mem with
              | Block.Seq_stride { region; start; span; stride }
                when span >= 1 lsl 17 && t.Block.iform.Iform.mem_width > 0 ->
                  for b = 1 to burst_len - 1 do
                    let burst =
                      Block.temp t.Block.iform ~dst:t.Block.dst ~srcs:t.Block.srcs
                        ~mem:(Block.Seq_stride { region; start; span; stride })
                    in
                    Block.set_phase burst (t.Block.seq_phase + (b * (span / 64 / burst_len)));
                    push burst
                  done
              | Block.Rand_uniform { region; start; span }
                when span >= 1 lsl 17 && t.Block.iform.Iform.mem_width > 0 ->
                  for _ = 1 to burst_len - 1 do
                    push
                      (Block.temp t.Block.iform ~dst:t.Block.dst ~srcs:t.Block.srcs
                         ~mem:(Block.Rand_uniform { region; start; span }))
                  done
              | _ -> ())
            done;
            (List.rev !temps, !count)
          in
          let window k = Layout.code_window space ~index:(64 + (bi * 80) + (k * 18)) in
          let probe_temps, probe_count = emit_until (min footprint (1 lsl 14)) in
          let passes = execs /. float_of_int (max 1 probe_count) in
          if passes >= 1.0 && footprint <= 1 lsl 14 then begin
            (* Hot loop: the footprint fits a small block re-executed many
               times per request (Fig. 3's inner loops). *)
            let block =
              made_block
                (Block.make ~label:(Printf.sprintf "synth_i%d" j) ~code_base:(window 0)
                   probe_temps)
            in
            (`Loop (block, max 1 (int_of_float (Float.round passes))), execs)
          end
          else begin
            (* Straight-line code: executed front to back once per request.
               The per-request stream is sized to the bin's executions; the
               cross-request instruction footprint is widened by rotating
               among [replicas] identical-statistics copies at distinct
               addresses — this is what i_ws_scale tunes, so footprint
               grows without distorting instruction counts. *)
            let per_request_bytes =
              max 64 (min (1 lsl 17) (int_of_float (execs *. 3.7)))
            in
            let replicas =
              max 1 (min 8 (int_of_float (Float.round params.Params.i_ws_scale)))
            in
            let copies =
              Array.init replicas (fun k ->
                  let temps, _ = emit_until per_request_bytes in
                  made_block
                    (Block.make
                       ~label:(Printf.sprintf "synth_i%d_r%d" j k)
                       ~code_base:(window k) temps))
            in
            (`Replicated copies, execs)
          end)
        bins
    end
  in
  (* Hot blocks first: the loop nest in Fig. 3 runs small blocks often. *)
  let blocks =
    List.sort (fun (_, a) (_, b) -> compare b a) blocks |> List.map fst
  in
  (* Planned REP block: executes [rep_per_request] times per request on the
     profiled largest working set, reproducing the original's bulk-copy
     bursts deterministically. *)
  let rep_per_request =
    if features.f_inst_count && mix.P.Instmix.rep_fraction > 0.0 then
      mix.P.Instmix.rep_fraction *. mix.P.Instmix.insts_per_request *. params.Params.inst_scale
    else 0.0
  in
  let rep_block =
    if rep_per_request <= 0.0 then None
    else begin
      let l = if features.f_d_mem then min heap_log2 largest_live_bin else 6 in
      let start, span = window_of_bin l in
      let span = min span (max 64 (space.Layout.heap.Block.region_bytes - start)) in
      (* Each burst starts at a random record and streams sequentially
         within it — the copy semantics bulk operations actually have. *)
      let t =
        Block.temp (Iform.by_name "REP_MOVSB")
          ~srcs:[| Block.gp 6 |]
          ~mem:(Block.Rand_uniform { region = space.Layout.heap; start; span })
          ~rep_count:(max 64 (int_of_float mix.P.Instmix.rep_mean_count))
      in
      Some
        (made_block
           (Block.make ~label:"synth_rep" ~code_base:(Layout.code_window space ~index:60) [ t ]))
    end
  in
  let file = profile.P.Tier_profile.syscalls.P.Syscalls.file in
  let misc = profile.P.Tier_profile.syscalls.P.Syscalls.misc in
  let sample_count rng mean =
    let base = int_of_float mean in
    base + (if Rng.float rng 1.0 < mean -. float_of_int base then 1 else 0)
  in
  (* The generated handler. *)
  fun req_rng req ->
    let compute =
      List.map
        (fun block ->
          match block with
          | `Loop (b, iterations) -> Spec.Compute (b, iterations)
          | `Replicated copies ->
              Spec.Compute (copies.(req mod Array.length copies), 1))
        blocks
    in
    let compute =
      match rep_block with
      | None -> compute
      | Some rb ->
          let n = sample_count req_rng rep_per_request in
          if n > 0 then compute @ [ Spec.Compute (rb, n) ] else compute
    in
    let n = List.length compute in
    let seg k = List.filteri (fun i _ -> i * 3 / max 1 n = k) compute in
    let reads, writes =
      if not features.f_syscalls then ([], [])
      else
        match file with
        | None -> ([], [])
        | Some f ->
            let reads =
              List.init (sample_count req_rng f.P.Syscalls.reads_per_request) (fun _ ->
                  Spec.File_read
                    {
                      offset =
                        4096
                        * Rng.int req_rng (max 1 (f.P.Syscalls.offset_span / 4096));
                      bytes = max 1 f.P.Syscalls.read_bytes_mean;
                      random = Rng.float req_rng 1.0 < f.P.Syscalls.random_ratio;
                    })
            in
            let writes =
              List.init (sample_count req_rng f.P.Syscalls.writes_per_request) (fun _ ->
                  Spec.File_write { bytes = max 1 f.P.Syscalls.write_bytes_mean })
            in
            (reads, writes)
    in
    let misc_ops =
      if not features.f_syscalls then []
      else
        List.concat_map
          (fun (kind, mean) ->
            List.init (sample_count req_rng mean) (fun _ -> Spec.Syscall kind))
          misc
    in
    let calls =
      List.concat_map
        (fun (e : Ditto_trace.Dag.edge) ->
          List.init (sample_count req_rng e.Ditto_trace.Dag.calls_per_request) (fun _ ->
              Spec.Call
                {
                  target = e.Ditto_trace.Dag.callee;
                  req_bytes = e.Ditto_trace.Dag.req_bytes;
                  resp_bytes = e.Ditto_trace.Dag.resp_bytes;
                }))
        downstream
    in
    seg 0 @ reads @ seg 1 @ calls @ seg 2 @ writes @ misc_ops
