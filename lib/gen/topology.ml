open Ditto_app
module Block = Ditto_isa.Block
module Iform = Ditto_isa.Iform
module Rng = Ditto_util.Rng
module Dist = Ditto_util.Dist
module Dag = Ditto_trace.Dag
module Span = Ditto_trace.Span

type params = {
  tiers : int;
  seed : int;
  max_depth : int;
  fanout_shape : float;
  fanout_scale : float;
  reuse_s : float;
  request_types : int;
  call_budget : float;
}

let default ?(seed = 2023) ~tiers () =
  {
    tiers;
    seed;
    max_depth = 8;
    fanout_shape = 1.3;
    fanout_scale = 1.0;
    reuse_s = 1.1;
    request_types = 6;
    call_budget = 1.2;
  }

type t = {
  params : params;
  name : string;
  spec : Spec.t;
  dag : Dag.t;
  layers : int array;
}

let app_name n = Printf.sprintf "synth-%d" n

let parse_name name =
  match String.index_opt name '-' with
  | Some 5 when String.length name > 6 && String.sub name 0 5 = "synth" -> (
      match int_of_string_opt (String.sub name 6 (String.length name - 6)) with
      | Some n when n >= 2 -> Some n
      | _ -> None)
  | _ -> None

let entry_name = "gateway"
let tier_name i = if i = 0 then entry_name else Printf.sprintf "svc%03d" i

(* {1 Structure} *)

(* Layer occupancy follows a triangular profile peaked mid-depth — thin
   API edge, wide business-logic middle, consolidated storage bottom —
   which matches the hour-glass shape of published production graphs. *)
let assign_layers rng ~tiers ~depth =
  let layers = Array.make tiers 0 in
  (* One tier per layer first, so every depth is inhabited and the graph
     actually reaches [depth]. *)
  for i = 1 to depth do
    layers.(i) <- i
  done;
  let weight l = float_of_int (min l (depth + 1 - l)) in
  let dist = Dist.discrete (List.init depth (fun k -> (k + 1, weight (k + 1)))) in
  for i = depth + 1 to tiers - 1 do
    layers.(i) <- Dist.discrete_sample dist rng
  done;
  layers

(* In-memory edge being assembled; byte sizes and probabilities are filled
   in a second, canonically ordered pass. *)
type proto_edge = { mutable p : float; mutable rq : int; mutable rs : int }

let generate p =
  if p.tiers < 2 then invalid_arg "Topology.generate: need at least 2 tiers";
  if p.tiers > Layout.max_tiers then
    invalid_arg
      (Printf.sprintf "Topology.generate: %d tiers exceeds Layout.max_tiers (%d)" p.tiers
         Layout.max_tiers);
  let n = p.tiers in
  let master = Rng.create p.seed in
  let rng_struct = Rng.split master in
  let rng_bytes = Rng.split master in
  let rng_blocks = Rng.split master in
  let depth = max 1 (min p.max_depth (n - 1)) in
  let layers = assign_layers rng_struct ~tiers:n ~depth in
  let by_layer = Array.make (depth + 1) [] in
  for i = n - 1 downto 0 do
    by_layer.(layers.(i)) <- i :: by_layer.(layers.(i))
  done;
  let layer_arr = Array.map Array.of_list by_layer in
  (* out.(u) maps target index -> proto_edge; in_deg counts incoming. *)
  let out : (int, proto_edge) Hashtbl.t array = Array.init n (fun _ -> Hashtbl.create 4) in
  let in_deg = Array.make n 0 in
  let add_edge u v =
    if not (Hashtbl.mem out.(u) v) then begin
      Hashtbl.add out.(u) v { p = 1.0; rq = 0; rs = 0 };
      in_deg.(v) <- in_deg.(v) + 1
    end
  in
  (* Deep-reuse ranking: all tiers strictly below layer [l], deepest
     first, so Zipf rank 0 — the most popular target — is a bottom-layer
     storage tier shared across the graph. *)
  let deeper_than = Array.make (depth + 1) [||] in
  for l = 0 to depth - 1 do
    (* deepest layer first, index ascending within a layer *)
    let cells = ref [] in
    for dl = l + 1 to depth do
      cells := Array.to_list layer_arr.(dl) :: !cells
    done;
    deeper_than.(l) <- Array.of_list (List.concat !cells)
  done;
  let zipf_for = Array.make (depth + 1) None in
  for l = 0 to depth - 1 do
    let m = Array.length deeper_than.(l) in
    if m > 0 then zipf_for.(l) <- Some (Dist.zipf ~n:m ~s:p.reuse_s)
  done;
  (* Gateway request types: the layer-1 tiers are the API fan-out set,
     partitioned round-robin (after a seeded shuffle) into R endpoints. *)
  let layer1 = Array.copy layer_arr.(1) in
  Rng.shuffle rng_struct layer1;
  let ntypes = max 1 (min p.request_types (Array.length layer1)) in
  let type_targets = Array.make ntypes [] in
  Array.iteri (fun k v -> type_targets.(k mod ntypes) <- v :: type_targets.(k mod ntypes)) layer1;
  let type_targets = Array.map (fun l -> Array.of_list (List.rev l)) type_targets in
  Array.iter (fun v -> add_edge 0 v) layer1;
  (* Internal edges: per caller, a Pareto out-degree; each slot chains to
     the next layer with probability 1/2 or draws from the Zipf-ranked
     deep set, concentrating in-degree on the popular storage tiers. *)
  for u = 1 to n - 1 do
    let l = layers.(u) in
    if l < depth then begin
      let is_deep = l >= depth - 1 in
      let leaf = is_deep && Rng.float rng_struct 1.0 < 0.35 in
      if not leaf then begin
        let cand = deeper_than.(l) in
        let next = layer_arr.(l + 1) in
        let k = int_of_float (Dist.pareto rng_struct ~scale:p.fanout_scale ~shape:p.fanout_shape) in
        let k = max 1 (min k (min 16 (Array.length cand))) in
        let added = ref 0 and attempts = ref 0 in
        while !added < k && !attempts < 6 * k do
          incr attempts;
          let v =
            if Array.length next > 0 && Rng.float rng_struct 1.0 < 0.5 then
              Rng.choose rng_struct next
            else
              match zipf_for.(l) with
              | Some z -> cand.(Dist.zipf_sample z rng_struct)
              | None -> Rng.choose rng_struct cand
          in
          if not (Hashtbl.mem out.(u) v) then begin
            add_edge u v;
            incr added
          end
        done
      end
    end
  done;
  (* Connectivity patch: any tier at layer >= 2 nobody calls gets one
     caller from the layer above (layer-1 tiers are all gateway targets). *)
  for v = 1 to n - 1 do
    if in_deg.(v) = 0 && layers.(v) >= 2 then begin
      let above = layer_arr.(layers.(v) - 1) in
      add_edge (Rng.choose rng_struct above) v
    end
  done;
  (* Canonical pass: callers in index order, targets sorted ascending.
     Everything downstream (spec handlers, ground-truth DAG, spans) uses
     this order, so the graph is a pure function of params. *)
  let sorted_out =
    Array.init n (fun u ->
        let targets = Hashtbl.fold (fun v e acc -> (v, e) :: acc) out.(u) [] in
        let targets = List.sort (fun (a, _) (b, _) -> compare a b) targets in
        Array.of_list targets)
  in
  let msg_bytes =
    Dist.discrete [ (128, 4.0); (256, 3.0); (512, 2.0); (1024, 1.0); (4096, 0.4) ]
  in
  Array.iteri
    (fun u targets ->
      Array.iter
        (fun (_, e) ->
          e.rq <- Dist.discrete_sample msg_bytes rng_bytes + Rng.int rng_bytes 64;
          e.rs <- Dist.discrete_sample msg_bytes rng_bytes + Rng.int rng_bytes 64;
          e.p <- (if u = 0 then 1.0 else 0.35 +. Rng.float rng_bytes 0.6))
        targets)
    sorted_out;
  (* Call-probability budget: scale each internal caller's edge
     probabilities so their sum stays under budget — the expected RPC tree
     per request is then bounded by a geometric series independent of n. *)
  for u = 1 to n - 1 do
    let sum = Array.fold_left (fun a (_, e) -> a +. e.p) 0.0 sorted_out.(u) in
    if sum > p.call_budget then
      Array.iter (fun (_, e) -> e.p <- e.p *. p.call_budget /. sum) sorted_out.(u)
  done;
  (* Request-type popularity: Zipf-flavoured endpoint mix. *)
  let type_weights =
    Array.init ntypes (fun t -> 1.0 /. ((1.0 +. float_of_int t) ** 1.1))
  in
  let wsum = Array.fold_left ( +. ) 0.0 type_weights in
  let type_prob = Array.map (fun w -> w /. wsum) type_weights in
  let type_of_target = Hashtbl.create 32 in
  Array.iteri
    (fun t targets -> Array.iter (fun v -> Hashtbl.replace type_of_target v t) targets)
    type_targets;
  (* {2 Tier bodies} *)
  let iform = Iform.by_name in
  let add64 = iform "ADD_GPR64_GPR64"
  and xor64 = iform "XOR_GPR64_GPR64"
  and imul64 = iform "IMUL_GPR64_GPR64"
  and crc32 = iform "CRC32_GPR64_GPR64"
  and ld64 = iform "MOV_GPR64_MEM"
  and st64 = iform "MOV_MEM_GPR64"
  and cmpi = iform "CMP_GPR64_IMM"
  and jnz = iform "JNZ_REL" in
  let logic_block rng space ~label ~wset =
    let heap = space.Layout.heap in
    let span = min wset heap.Block.region_bytes in
    (* Long per-request instruction streams: the clone's bin sampler draws
       a working-set bin per emitted template, and large-bin selections are
       burst-quantized (14 accesses each). Short streams make the number
       of large-window templates a near-zero Poisson draw — entire tiers
       then clone with no L2/LLC traffic at all — so the block is sized to
       keep tens of large-bin templates in every emitted body. *)
    let ntemps = 300 + Rng.int rng 101 in
    let temps =
      List.init ntemps (fun j ->
          let dst = Block.gp (j mod 8) and src = Block.gp ((j + 3) mod 8) in
          match Rng.int rng 100 with
          | x when x < 26 -> Block.temp ~dst ~srcs:[| dst; src |] add64
          | x when x < 36 -> Block.temp ~dst ~srcs:[| dst; src |] xor64
          | x when x < 44 -> Block.temp ~dst ~srcs:[| dst; src |] imul64
          | x when x < 52 -> Block.temp ~dst ~srcs:[| dst; src |] crc32
          | x when x < 70 ->
              (* Most loads roam the working set uniformly: production heaps
                 miss, and strided walks alone emit near-zero L2/LLC traffic.
                 The remainder (plus the stores below) walk strided in
                 lockstep, collapsing onto a shared warm line — the cheap
                 L1-hit ballast that stands in for the original's hot locals.
                 The balance matters to the clone, not just the original:
                 warm-line reuse mass competes with the large-window bins in
                 the clone's access sampler, and if it dominates, tiers clone
                 with no L2/LLC traffic at all (the large-bin selection
                 weight is burst-quantized at 14 accesses per template). *)
              let mem =
                if Rng.int rng 10 < 3 then
                  Block.Seq_stride { region = heap; start = 0; stride = 64; span }
                else Block.Rand_uniform { region = heap; start = 0; span }
              in
              Block.temp ~dst ~mem ld64
          | x when x < 80 ->
              Block.temp ~srcs:[| src |]
                ~mem:(Block.Seq_stride { region = heap; start = 0; stride = 64; span })
                st64
          | x when x < 90 -> Block.temp ~srcs:[| dst |] cmpi
          | _ ->
              Block.temp
                ~branch:{ Block.m = 1 + Rng.int rng 3; n = 3 + Rng.int rng 3; invert = false }
                jnz)
    in
    Block.make ~label ~code_base:(Layout.code_window space ~index:0) temps
  in
  let probe_block space ~label ~span =
    let heap = space.Layout.heap in
    let span = min span heap.Block.region_bytes in
    let chase = Block.Chase { region = heap; start = 0; span } in
    let temps =
      List.init 16 (fun j ->
          let dst = Block.gp (j mod 8) in
          if j mod 2 = 0 then Block.temp ~dst ~mem:chase ld64
          else Block.temp ~dst ~srcs:[| dst; Block.gp ((j + 1) mod 8) |] add64)
    in
    Block.make ~label ~code_base:(Layout.code_window space ~index:1) temps
  in
  let mk_tier i =
    let name = tier_name i in
    let l = layers.(i) in
    let rng = Rng.split rng_blocks in
    let deep = i > 0 && l >= depth - 1 in
    (* Heap sizes are chosen so cache misses are intrinsic to the tier, not
       an artifact of co-residency: the clone pipeline reconstructs a
       working set of 2^l as a [2^(l-1), 2^l) window clamped to the heap,
       so a deep tier must roam >= 64MB for the reconstructed 32MB window
       to bust the 30MB LLC by itself, and a leaf/mid tier's 4-8MB set
       must sit in a heap large enough that its halved window still
       exceeds the 1MB L2. Contention-only misses do not survive cloning —
       the reconstructed footprints are too small to reproduce them. *)
    let heap_bytes =
      if i = 0 then 4 lsl 20
      else if deep then (64 lsl 20) + (Rng.int rng 3 * (16 lsl 20)) (* 64..96MB *)
      else (8 lsl 20) + (Rng.int rng 3 * (4 lsl 20)) (* 8..16MB *)
    in
    let space = Layout.space ~tier_index:i ~heap_bytes ~shared_bytes:(1 lsl 16) in
    let targets = sorted_out.(i) in
    let request_bytes = if i = 0 then 256 else 64 + Rng.int rng 448 in
    let response_bytes = if i = 0 then 1024 else 64 + Rng.int rng 960 in
    let calls =
      Array.map
        (fun (v, (e : proto_edge)) ->
          (tier_name v, e.p, Spec.Call { target = tier_name v; req_bytes = e.rq; resp_bytes = e.rs }))
        targets
    in
    let handler =
      if i = 0 then begin
        let parse = logic_block rng space ~label:(name ^ ".parse") ~wset:(2 lsl 20) in
        let type_dist =
          Dist.discrete (List.init ntypes (fun t -> (t, type_prob.(t))))
        in
        (* Per-type downstream lists are fixed, so they are precomputed
           and shared: the per-request allocation is one list cell. *)
        let call_by_target = Hashtbl.create 32 in
        Array.iter (fun (tn, _, call) -> Hashtbl.replace call_by_target tn call) calls;
        let type_calls =
          Array.map
            (fun tgts ->
              Array.to_list tgts
              |> List.map (fun v -> Hashtbl.find call_by_target (tier_name v)))
            type_targets
        in
        fun rng _req ->
          let t = Dist.discrete_sample type_dist rng in
          Spec.Compute (parse, 2) :: type_calls.(t)
      end
      else begin
        let wset = if deep then heap_bytes else 1 lsl (22 + Rng.int rng 2) in
        let iters = if deep then 2 + Rng.int rng 2 else 3 + Rng.int rng 3 in
        let logic = logic_block rng space ~label:(name ^ ".logic") ~wset in
        let probe =
          if deep then
            Some (Spec.Compute (probe_block space ~label:(name ^ ".probe") ~span:heap_bytes, 2))
          else None
        in
        let prefix =
          match probe with
          | Some pr -> [ Spec.Compute (logic, iters); pr ]
          | None -> [ Spec.Compute (logic, iters) ]
        in
        if Array.length calls = 0 then fun _rng _req -> prefix
        else
          fun rng _req ->
            let acc = ref [] in
            for j = Array.length calls - 1 downto 0 do
              let _, pcall, call = calls.(j) in
              if Rng.float rng 1.0 < pcall then acc := call :: !acc
            done;
            prefix @ !acc
      end
    in
    let server_model = if deep then Spec.Blocking else Spec.Io_multiplexing in
    let client_model =
      if i = 0 || Array.length targets >= 4 then Spec.Async_client else Spec.Sync_client
    in
    let workers = if i = 0 then 4 else 2 in
    Spec.tier ~server_model ~client_model ~workers ~request_bytes ~response_bytes ~heap_bytes
      ~shared_bytes:(1 lsl 16) ~name ~handler ()
  in
  let tiers = List.init n mk_tier in
  let spec = Spec.make ~name:(app_name n) ~entry:entry_name tiers in
  (* {2 Ground truth} *)
  let edges =
    List.concat
      (List.init n (fun u ->
           Array.to_list sorted_out.(u)
           |> List.map (fun (v, (e : proto_edge)) ->
                  let p =
                    if u = 0 then type_prob.(Hashtbl.find type_of_target v) else e.p
                  in
                  {
                    Dag.caller = tier_name u;
                    callee = tier_name v;
                    calls_per_request = p;
                    probability = p;
                    req_bytes = e.rq;
                    resp_bytes = e.rs;
                  })))
  in
  let dag = { Dag.entry = entry_name; services = List.init n tier_name; edges } in
  { params = p; name = app_name n; spec; dag; layers }

(* {1 Trace emission} *)

let spans ?(traces_per_type = 1) t =
  let n = t.params.tiers in
  let index_of = Hashtbl.create (2 * n) in
  List.iteri (fun i s -> Hashtbl.replace index_of s i) t.dag.Dag.services;
  let in_edges = Array.make n [] in
  let entry_targets = ref [] in
  List.iter
    (fun (e : Dag.edge) ->
      let u = Hashtbl.find index_of e.Dag.caller and v = Hashtbl.find index_of e.Dag.callee in
      in_edges.(v) <- (u, e) :: in_edges.(v);
      if u = 0 then entry_targets := v :: !entry_targets)
    t.dag.Dag.edges;
  Array.iteri (fun v l -> in_edges.(v) <- List.rev l) in_edges;
  (* Partition entry targets back into request types via the stored layer
     structure: they are exactly the layer-1 tiers; recover each target's
     type from its gateway edge (one per target), grouping by traversal. *)
  let out_edges = Array.make n [] in
  List.iter
    (fun (e : Dag.edge) ->
      let u = Hashtbl.find index_of e.Dag.caller and v = Hashtbl.find index_of e.Dag.callee in
      out_edges.(u) <- (v, e) :: out_edges.(u))
    t.dag.Dag.edges;
  Array.iteri (fun v l -> out_edges.(v) <- List.rev l) out_edges;
  (* One trace covers the closure of one entry target group; emitting the
     whole graph in a single trace would also work, but per-type traces
     mirror what a sampled tracer actually sees. Group = all gateway
     targets (types are a partition of them); we emit one trace per
     gateway target set chunk of size <= 8 to keep traces request-like. *)
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b -> compare (t.layers.(a), a) (t.layers.(b), b))
    order;
  let all_targets = List.rev !entry_targets in
  let groups =
    (* chunk entry targets so each trace resembles one request type *)
    let rec chunk acc cur k = function
      | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
      | v :: rest ->
          if k = 8 then chunk (List.rev cur :: acc) [ v ] 1 rest
          else chunk acc (v :: cur) (k + 1) rest
    in
    chunk [] [] 0 all_targets
  in
  let spans = ref [] in
  let next_trace = ref 1 in
  List.iter
    (fun group ->
      for _rep = 1 to traces_per_type do
        let tid = !next_trace in
        incr next_trace;
        let in_closure = Array.make n false in
        in_closure.(0) <- true;
        let q = Queue.create () in
        List.iter
          (fun v ->
            if not in_closure.(v) then begin
              in_closure.(v) <- true;
              Queue.push v q
            end)
          group;
        while not (Queue.is_empty q) do
          let u = Queue.pop q in
          List.iter
            (fun (v, _) ->
              if not in_closure.(v) then begin
                in_closure.(v) <- true;
                Queue.push v q
              end)
            out_edges.(u)
        done;
        let group_set = Hashtbl.create 16 in
        List.iter (fun v -> Hashtbl.replace group_set v ()) group;
        let canonical = Array.make n (-1) in
        let next_span = ref 1 in
        let emit ~service ~parent ~rq ~rs =
          let sid = !next_span in
          incr next_span;
          spans :=
            {
              Span.trace_id = tid;
              span_id = (tid * 0x1_0000) + sid;
              parent_span = parent;
              service;
              req_bytes = rq;
              resp_bytes = rs;
            }
            :: !spans;
          (tid * 0x1_0000) + sid
        in
        let root =
          emit ~service:t.dag.Dag.entry ~parent:None ~rq:256 ~rs:1024
        in
        canonical.(0) <- root;
        Array.iter
          (fun v ->
            if v <> 0 && in_closure.(v) then
              List.iter
                (fun (u, (e : Dag.edge)) ->
                  let covered =
                    if u = 0 then Hashtbl.mem group_set v
                    else in_closure.(u)
                  in
                  if covered then begin
                    let sid =
                      emit ~service:e.Dag.callee
                        ~parent:(Some canonical.(u))
                        ~rq:e.Dag.req_bytes ~rs:e.Dag.resp_bytes
                    in
                    if canonical.(v) = -1 then canonical.(v) <- sid
                  end)
                in_edges.(v))
          order
      done)
    groups;
  List.rev !spans

let same_shape (a : Dag.t) (b : Dag.t) =
  let key (e : Dag.edge) = (e.Dag.caller, e.Dag.callee, e.Dag.req_bytes, e.Dag.resp_bytes) in
  a.Dag.entry = b.Dag.entry
  && List.sort compare a.Dag.services = List.sort compare b.Dag.services
  && List.sort compare (List.map key a.Dag.edges) = List.sort compare (List.map key b.Dag.edges)
