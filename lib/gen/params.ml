type t = {
  inst_scale : float;
  i_ws_scale : float;
  d_ws_scale : float;
  big_mass_scale : float;
  branch_m_shift : int;
  branch_n_shift : int;
  chase_scale : float;
}

let default =
  {
    inst_scale = 1.0;
    i_ws_scale = 1.0;
    d_ws_scale = 1.0;
    big_mass_scale = 1.0;
    branch_m_shift = 0;
    branch_n_shift = 0;
    chase_scale = 1.0;
  }

let pp fmt t =
  Format.fprintf fmt "inst=%.3f iws=%.3f dws=%.3f big=%.3f bm=%+d bn=%+d chase=%.3f"
    t.inst_scale t.i_ws_scale t.d_ws_scale t.big_mass_scale t.branch_m_shift t.branch_n_shift
    t.chase_scale

type group = Frontend | Data | Work

let group_of_metric = function
  | "l1i" | "branch" -> Some Frontend
  | "l1d" | "l2" | "llc" -> Some Data
  | "ipc" | "insts" -> Some Work
  | _ -> None

let group_name = function Frontend -> "frontend" | Data -> "data" | Work -> "work"
