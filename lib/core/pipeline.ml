open Ditto_app
module P = Ditto_profile

type clone_result = {
  original : Spec.t;
  reference : Runner.output;
  dag : Ditto_trace.Dag.t option;
  profile : P.Tier_profile.app;
  synthetic : Spec.t;
  tuning : Ditto_tune.Tuner.report option;
}

module Obs = Ditto_obs.Obs

let clone ?pool ?(tune = true) ?(requests = 220) ?(profile_requests = 160) ?(seed = 42)
    ~platform ~load (original : Spec.t) =
  Obs.Span.with_span ~name:"pipeline.clone"
    ~attrs:[ ("app", Obs.Str original.Spec.app_name); ("seed", Obs.Int seed) ]
    (fun () ->
      let pool = match pool with Some p -> p | None -> Ditto_util.Pool.default () in
      let config = Runner.config ~requests ~seed platform in
      (* Step 1: run the original at the profiling load; this run provides the
         counter reference for tuning and the measured traces the distributed
         tracer samples. *)
      let reference =
        Obs.Span.with_span ~name:"clone.reference" (fun () -> Runner.run config ~load original)
      in
      (* Step 2: microservice topology from sampled end-to-end traces. *)
      let dag =
        if Spec.is_microservice original then begin
          let measured_tbl = Hashtbl.create 64 in
          List.iter
            (fun (name, r) -> Hashtbl.replace measured_tbl name r)
            reference.Runner.measured;
          let results name = Hashtbl.find measured_tbl name in
          Obs.Span.with_span ~name:"clone.dag" (fun () ->
              let spans =
                Ditto_trace.Collector.collect ~entry:original.Spec.entry ~results ~samples:256
                  ~seed:(seed + 3)
              in
              Some (Ditto_trace.Dag.of_spans spans))
        end
        else None
      in
      (* Step 3: profile skeleton and body of every tier. *)
      let profile =
        Obs.Span.with_span ~name:"clone.profile" (fun () ->
            P.Tier_profile.profile_app ~requests:profile_requests ~seed:(seed + 5) ?dag original)
      in
      (* Step 4: generate; Step 5: fine-tune. *)
      if tune then begin
        let synthetic, report =
          Ditto_tune.Tuner.tune ~seed:(seed + 11) ~pool ~config ~load ~reference ~profile ()
        in
        { original; reference; dag; profile; synthetic; tuning = Some report }
      end
      else begin
        let synthetic =
          Obs.Span.with_span ~name:"clone.generate" (fun () ->
              Ditto_gen.Clone.synth_app ~seed:(seed + 11) profile)
        in
        { original; reference; dag; profile; synthetic; tuning = None }
      end)

type comparison = {
  label : string;
  actual : (string * Metrics.t) list;
  synthetic : (string * Metrics.t) list;
  actual_end_to_end : Ditto_util.Stats.summary;
  synthetic_end_to_end : Ditto_util.Stats.summary;
  actual_raw : float array;
  synthetic_raw : float array;
  actual_measured : (string * Measure.tier_result) list;
  synthetic_measured : (string * Measure.tier_result) list;
  actual_service : Service.result;
  synthetic_service : Service.result;
}

let comparison_of_outputs ~label (actual_out : Runner.output) (synth_out : Runner.output) =
  {
    label;
    actual = actual_out.Runner.per_tier;
    synthetic = synth_out.Runner.per_tier;
    actual_end_to_end = actual_out.Runner.end_to_end;
    synthetic_end_to_end = synth_out.Runner.end_to_end;
    actual_raw = actual_out.Runner.service.Service.latency_raw;
    synthetic_raw = synth_out.Runner.service.Service.latency_raw;
    actual_measured = actual_out.Runner.measured;
    synthetic_measured = synth_out.Runner.measured;
    actual_service = actual_out.Runner.service;
    synthetic_service = synth_out.Runner.service;
  }

let validate ?pool ?config_of ~platform ~load ~label result =
  Obs.Span.with_span ~name:"pipeline.validate" ~attrs:[ ("label", Obs.Str label) ]
  @@ fun () ->
  let pool = match pool with Some p -> p | None -> Ditto_util.Pool.default () in
  let config =
    match config_of with Some f -> f platform | None -> Runner.config platform
  in
  (* The actual and the synthetic runs are independent (each builds its own
     engine and hardware state), so they ride two pool domains. *)
  let actual_out, synth_out =
    Ditto_util.Pool.both pool
      (fun () -> Runner.run config ~load result.original)
      (fun () -> Runner.run config ~load result.synthetic)
  in
  comparison_of_outputs ~label actual_out synth_out

type chaos = {
  chaos_label : string;
  plan : Ditto_fault.Plan.t option;
  surge : Rate.t option;
  comparison : comparison;
  actual_service : Service.result;
  synthetic_service : Service.result;
}

let scenario_name ?plan ?surge () =
  match (plan, surge) with
  | Some (p : Ditto_fault.Plan.t), Some (r : Rate.t) ->
      p.Ditto_fault.Plan.plan_name ^ "+" ^ r.Rate.profile_name
  | Some p, None -> p.Ditto_fault.Plan.plan_name
  | None, Some r -> r.Rate.profile_name
  | None, None -> "steady"

let error_rate (r : Service.result) =
  let total = r.Service.completed + r.Service.errors in
  if total = 0 then 0.0 else float_of_int r.Service.errors /. float_of_int total

let validate_under ?pool ?(resilience = Spec.resilient ()) ?(client_timeout = 0.03)
    ?(client_retries = 1) ?autoscale ?config_of ~platform ~load ?plan ?profile ~label result =
  Obs.Span.with_span ~name:"pipeline.validate_under"
    ~attrs:
      [ ("label", Obs.Str label); ("scenario", Obs.Str (scenario_name ?plan ?surge:profile ())) ]
  @@ fun () ->
  let pool = match pool with Some p -> p | None -> Ditto_util.Pool.default () in
  let base = match config_of with Some f -> f platform | None -> Runner.config platform in
  let config = { base with Runner.fault_plan = plan } in
  (* Both sides face the failure with identical armour: the same
     deployment-level resilience overlay, scaling policy and client
     behaviour — the comparison isolates the clone's fidelity, not its
     configuration. A surge profile replaces the load's (if any), so the
     same offered-rate shape hits original and clone. *)
  let load =
    let profile =
      match profile with Some _ -> profile | None -> load.Service.profile
    in
    { load with Service.client_timeout = Some client_timeout; client_retries; profile }
  in
  let armour spec =
    let spec = Spec.with_resilience resilience spec in
    match autoscale with None -> spec | Some pol -> Spec.with_autoscale pol spec
  in
  let actual_out, synth_out =
    Ditto_util.Pool.both pool
      (fun () -> Runner.run config ~load (armour result.original))
      (fun () -> Runner.run config ~load (armour result.synthetic))
  in
  {
    chaos_label = label;
    plan;
    surge = load.Service.profile;
    comparison = comparison_of_outputs ~label actual_out synth_out;
    actual_service = actual_out.Runner.service;
    synthetic_service = synth_out.Runner.service;
  }

let comparison_errors c =
  (* Index the synthetic side once: on synth-1000 graphs the per-name
     List.assoc scan turns this into an O(tiers^2) hot spot. *)
  let synth_tbl = Hashtbl.create 64 in
  List.iter (fun (name, m) -> Hashtbl.replace synth_tbl name m) c.synthetic;
  List.map
    (fun (name, actual) ->
      let synthetic = Hashtbl.find synth_tbl name in
      (name, Metrics.error_pct ~actual ~synthetic))
    c.actual
