(** The end-to-end Ditto pipeline (Fig. 3): profile an original service,
    extract the microservice topology, generate a synthetic clone, and
    fine-tune it — then validate original vs clone under arbitrary loads,
    platforms and interference, without reprofiling. *)

type clone_result = {
  original : Ditto_app.Spec.t;
  reference : Ditto_app.Runner.output;  (** original's run at the profiling load *)
  dag : Ditto_trace.Dag.t option;
  profile : Ditto_profile.Tier_profile.app;
  synthetic : Ditto_app.Spec.t;
  tuning : Ditto_tune.Tuner.report option;
}

val clone :
  ?pool:Ditto_util.Pool.t ->
  ?tune:bool ->
  ?requests:int ->
  ?profile_requests:int ->
  ?seed:int ->
  platform:Ditto_uarch.Platform.t ->
  load:Ditto_app.Service.load ->
  Ditto_app.Spec.t ->
  clone_result
(** Profile at [load] (the paper profiles only at medium load) on
    [platform] and produce the clone. [tune] (default true) runs the §4.5
    calibration loop. [pool] (default {!Ditto_util.Pool.default}) carries
    the speculative tuning candidates; results are bit-identical for any
    pool size with the same seed. *)

type comparison = {
  label : string;
  actual : (string * Ditto_app.Metrics.t) list;
  synthetic : (string * Ditto_app.Metrics.t) list;
  actual_end_to_end : Ditto_util.Stats.summary;
  synthetic_end_to_end : Ditto_util.Stats.summary;
  actual_raw : float array;  (** raw end-to-end latency samples *)
  synthetic_raw : float array;
  actual_measured : (string * Ditto_app.Measure.tier_result) list;
      (** per-tier measurement-phase results (request counts, raw counters)
          backing the scorecard's insts/req and MPKI rows *)
  synthetic_measured : (string * Ditto_app.Measure.tier_result) list;
  actual_service : Ditto_app.Service.result;
      (** full service-phase results of both sides; carries the optional
          {!Ditto_obs.Timeseries} / {!Ditto_obs.Reqtrace} collectors when
          those layers were enabled for the validation runs *)
  synthetic_service : Ditto_app.Service.result;
}

val validate :
  ?pool:Ditto_util.Pool.t ->
  ?config_of:(Ditto_uarch.Platform.t -> Ditto_app.Runner.config) ->
  platform:Ditto_uarch.Platform.t ->
  load:Ditto_app.Service.load ->
  label:string ->
  clone_result ->
  comparison
(** Run original and synthetic under identical fresh environments and
    collect both metric sets — on two pool domains when the pool has
    capacity (each run builds its own engine, so the pair is domain-safe
    and the outputs match the sequential schedule exactly). [config_of]
    customises the runner config (interference, core counts, ...). *)

val comparison_errors : comparison -> (string * (string * float) list) list
(** Per tier: the radar-axis error percentages. *)

(** {1 Fidelity under failure} *)

type chaos = {
  chaos_label : string;
  plan : Ditto_fault.Plan.t option;  (** the fault schedule armed, if any *)
  surge : Ditto_app.Rate.t option;  (** the rate profile driven, if any *)
  comparison : comparison;  (** degraded per-tier metrics, both sides *)
  actual_service : Ditto_app.Service.result;
  synthetic_service : Ditto_app.Service.result;
}

val scenario_name : ?plan:Ditto_fault.Plan.t -> ?surge:Ditto_app.Rate.t -> unit -> string
(** ["<plan>+<profile>"], either half alone, or ["steady"] — the scenario
    key used in scorecards and flat metric paths. *)

val error_rate : Ditto_app.Service.result -> float
(** Failed fraction of client requests: errors / (completed + errors). *)

val validate_under :
  ?pool:Ditto_util.Pool.t ->
  ?resilience:Ditto_app.Spec.resilience ->
  ?client_timeout:float ->
  ?client_retries:int ->
  ?autoscale:Ditto_app.Spec.autoscale ->
  ?config_of:(Ditto_uarch.Platform.t -> Ditto_app.Runner.config) ->
  platform:Ditto_uarch.Platform.t ->
  load:Ditto_app.Service.load ->
  ?plan:Ditto_fault.Plan.t ->
  ?profile:Ditto_app.Rate.t ->
  label:string ->
  clone_result ->
  chaos
(** {!validate}, but under adversity: [plan] (a fault schedule), [profile]
    (an open-loop surge, overriding the load's own), or both composed —
    with the same resilience armour ([resilience], default
    [Spec.resilient ()]; client deadline [client_timeout], default 30 ms,
    with [client_retries], default 1) and, when given, the same
    [autoscale] policy overlaid on every tier of original and clone alike
    — so the comparison probes whether the clone degrades (and scales)
    like the original, not whether it is configured like it.
    Deterministic for a given seed, plan and profile, for any pool
    size. *)
