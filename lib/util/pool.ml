type t = {
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  work_available : Condition.t;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  pool_size : int;
}

(* Process-wide instrumentation. The counters are plain atomics bumped
   once per task (tasks are whole pipeline runs, so this is far off the
   hot path); the hook lets a higher layer (Ditto_obs) wrap tasks at
   submission time without this library depending on it. Busy/idle time
   is kept in integer microseconds so it can be accumulated with
   [fetch_and_add]. *)
type stats = {
  tasks_queued : int;
  tasks_stolen : int;
  tasks_by_workers : int;
  busy_seconds : float;
  idle_seconds : float;
}

let n_queued = Atomic.make 0
let n_stolen = Atomic.make 0
let n_by_workers = Atomic.make 0
let busy_us = Atomic.make 0
let idle_us = Atomic.make 0

let stats () =
  {
    tasks_queued = Atomic.get n_queued;
    tasks_stolen = Atomic.get n_stolen;
    tasks_by_workers = Atomic.get n_by_workers;
    busy_seconds = float_of_int (Atomic.get busy_us) *. 1e-6;
    idle_seconds = float_of_int (Atomic.get idle_us) *. 1e-6;
  }

(* Time one pool-executed application and charge it to [busy_seconds],
   whichever path ran it (worker, helping submitter, or the sequential
   fallbacks) — on a single-core host the bench's parallel-efficiency
   figure would otherwise read zero. *)
let timed f x =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Unix.gettimeofday () -. t0 in
      ignore (Atomic.fetch_and_add busy_us (int_of_float (dt *. 1e6))))
    (fun () -> f x)

let task_hook : ((unit -> unit) -> unit -> unit) ref = ref (fun task -> task)
let set_task_hook f = task_hook := f

let default_size () =
  match Sys.getenv_opt "DITTO_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> max 1 n
      | None -> max 1 (Domain.recommended_domain_count () - 1))
  | None -> max 1 (Domain.recommended_domain_count () - 1)

let try_pop pool =
  Mutex.lock pool.mutex;
  let task = Queue.take_opt pool.queue in
  Mutex.unlock pool.mutex;
  task

(* Tasks wrap their own exception handling (see [map]); a raise escaping a
   task would otherwise kill the worker domain silently. *)
let run_task task = try task () with _ -> ()

let worker_loop pool =
  let continue = ref true in
  while !continue do
    Mutex.lock pool.mutex;
    if Queue.is_empty pool.queue && not pool.stop then begin
      let t0 = Unix.gettimeofday () in
      while Queue.is_empty pool.queue && not pool.stop do
        Condition.wait pool.work_available pool.mutex
      done;
      let dt = Unix.gettimeofday () -. t0 in
      ignore (Atomic.fetch_and_add idle_us (int_of_float (dt *. 1e6)))
    end;
    match Queue.take_opt pool.queue with
    | Some task ->
        Mutex.unlock pool.mutex;
        Atomic.incr n_by_workers;
        run_task task
    | None ->
        (* queue empty and stop set *)
        Mutex.unlock pool.mutex;
        continue := false
  done

let create ?size () =
  let pool_size = max 1 (match size with Some n -> n | None -> default_size ()) in
  let pool =
    {
      queue = Queue.create ();
      mutex = Mutex.create ();
      work_available = Condition.create ();
      stop = false;
      domains = [];
      pool_size;
    }
  in
  (* The submitting domain counts toward the parallelism degree (it helps
     drain the queue in [map]), so spawn size - 1 workers. *)
  if pool_size > 1 then
    pool.domains <-
      List.init (pool_size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size pool = pool.pool_size

let shutdown pool =
  Mutex.lock pool.mutex;
  let domains = pool.domains in
  pool.stop <- true;
  pool.domains <- [];
  Condition.broadcast pool.work_available;
  Mutex.unlock pool.mutex;
  List.iter Domain.join domains

(* Mirror the parallel path's failure semantics: run every task even after
   one raises, then re-raise the first (submission-order) exception at the
   join — so a failing batch has the same side effects at any pool size. *)
let sequential_map f xs =
  let first_error = ref None in
  let results =
    List.map
      (fun x ->
        try Some (timed f x)
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          if !first_error = None then first_error := Some (e, bt);
          None)
      xs
  in
  match !first_error with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> List.map (function Some r -> r | None -> assert false) results

let map pool f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ timed f x ]
  | xs when pool.pool_size <= 1 || pool.stop -> sequential_map f xs
  | xs ->
      let items = Array.of_list xs in
      let n = Array.length items in
      let results = Array.make n None in
      let first_error = Atomic.make None in
      let completed = Atomic.make 0 in
      let batch_mutex = Mutex.create () in
      let batch_done = Condition.create () in
      let run_one i =
        (try results.(i) <- Some (timed f items.(i))
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           (* keep the submission-order-first error: index i only installs
              itself if no lower index has already failed; a later lower
              index overwrites via compare-and-swap retry *)
           let rec record () =
             match Atomic.get first_error with
             | Some (j, _, _) when j < i -> ()
             | cur ->
                 if not (Atomic.compare_and_set first_error cur (Some (i, e, bt))) then
                   record ()
           in
           record ());
        Mutex.lock batch_mutex;
        Atomic.incr completed;
        if Atomic.get completed = n then Condition.broadcast batch_done;
        Mutex.unlock batch_mutex
      in
      (* Wrap at submission, not execution: an instrumentation hook can
         capture the submitter's context (e.g. its open span) here and
         carry it to whichever domain runs the task. *)
      let wrap = !task_hook in
      Mutex.lock pool.mutex;
      for i = 0 to n - 1 do
        Queue.push (wrap (fun () -> run_one i)) pool.queue
      done;
      ignore (Atomic.fetch_and_add n_queued n);
      Condition.broadcast pool.work_available;
      Mutex.unlock pool.mutex;
      (* Help: drain tasks (ours or another batch's) while waiting, so a
         [map] issued from inside a worker task always makes progress. *)
      let rec help () =
        if Atomic.get completed < n then
          match try_pop pool with
          | Some task ->
              Atomic.incr n_stolen;
              run_task task;
              help ()
          | None ->
              Mutex.lock batch_mutex;
              while Atomic.get completed < n do
                Condition.wait batch_done batch_mutex
              done;
              Mutex.unlock batch_mutex
      in
      help ();
      (match Atomic.get first_error with
      | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      Array.to_list
        (Array.map (function Some r -> r | None -> assert false) results)

(* Futures: a single submitted task whose result is claimed later. Used by
   the bench's experiment DAG — preclones are submitted cost-ordered and
   each dependent stage awaits the future it needs, instead of a barrier
   over a whole batch. *)
type 'a future = {
  fut_mutex : Mutex.t;
  fut_done : Condition.t;
  mutable fut_state : [ `Pending | `Ok of 'a | `Err of exn * Printexc.raw_backtrace ];
}

let submit pool f =
  let fut = { fut_mutex = Mutex.create (); fut_done = Condition.create (); fut_state = `Pending } in
  let task () =
    let state = try `Ok (timed f ()) with e -> `Err (e, Printexc.get_raw_backtrace ()) in
    Mutex.lock fut.fut_mutex;
    fut.fut_state <- state;
    Condition.broadcast fut.fut_done;
    Mutex.unlock fut.fut_mutex
  in
  if pool.pool_size <= 1 || pool.stop then
    (* Sequential pools execute eagerly at submission, preserving the
       deterministic submit-order schedule tests pin against. *)
    task ()
  else begin
    let wrap = !task_hook in
    Mutex.lock pool.mutex;
    Queue.push (wrap task) pool.queue;
    Atomic.incr n_queued;
    Condition.signal pool.work_available;
    Mutex.unlock pool.mutex
  end;
  fut

let await pool fut =
  let state () =
    Mutex.lock fut.fut_mutex;
    let s = fut.fut_state in
    Mutex.unlock fut.fut_mutex;
    s
  in
  let rec loop () =
    match state () with
    | `Ok v -> v
    | `Err (e, bt) -> Printexc.raise_with_backtrace e bt
    | `Pending -> (
        (* Help while waiting, exactly as [map] does, so awaiting from
           inside a worker task cannot deadlock: if the queue is empty the
           future's task is already running on some domain. *)
        match try_pop pool with
        | Some task ->
            Atomic.incr n_stolen;
            run_task task;
            loop ()
        | None ->
            Mutex.lock fut.fut_mutex;
            while fut.fut_state = `Pending do
              Condition.wait fut.fut_done fut.fut_mutex
            done;
            Mutex.unlock fut.fut_mutex;
            loop ())
  in
  loop ()

let both pool f g =
  let a = ref None and b = ref None in
  let tasks =
    [ (fun () -> a := Some (f ())); (fun () -> b := Some (g ())) ]
  in
  ignore (map pool (fun task -> task ()) tasks);
  match (!a, !b) with
  | Some a, Some b -> (a, b)
  | _ -> assert false

let default_pool = ref None
let default_mutex = Mutex.create ()

let default () =
  Mutex.lock default_mutex;
  let pool =
    match !default_pool with
    | Some pool -> pool
    | None ->
        let pool = create () in
        default_pool := Some pool;
        at_exit (fun () -> shutdown pool);
        pool
  in
  Mutex.unlock default_mutex;
  pool
