(** Fixed-size domain pool for run-level parallelism.

    Ditto's workflow is embarrassingly parallel at the run granularity:
    independent apps being cloned, the actual/synthetic validation pair, and
    the candidate knob vectors of a speculative tuning iteration. Each
    {!Ditto_app.Runner.run} builds its own engine, RNG streams and hardware
    state, so whole runs can execute on separate domains without sharing
    mutable state — parallelism lives {e across} runs, never inside one, and
    results stay bit-identical to the sequential schedule.

    The pool is a classic work queue guarded by a mutex/condition pair. The
    submitting domain {e helps}: while waiting for its batch it drains tasks
    from the queue itself, so nested [map] calls (an app clone running on a
    worker spawns its own tuning candidates) cannot deadlock even when every
    worker is busy. *)

type t

val create : ?size:int -> unit -> t
(** [create ()] sizes the pool from the [DITTO_DOMAINS] environment
    variable when set (clamped to at least 1), otherwise
    [Domain.recommended_domain_count () - 1]. A pool of size [n] runs up to
    [n] tasks concurrently ([n - 1] worker domains plus the submitting
    domain). At size <= 1 no domains are spawned and {!map} degrades to
    [List.map] — the deterministic sequential baseline tests pin against. *)

val size : t -> int
(** Degree of parallelism (>= 1). *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] applies [f] to every element, possibly concurrently, and
    returns the results in input order. If one or more applications raise,
    the batch still runs to completion and the first exception (in task
    submission order) is re-raised at the join point with its backtrace. *)

val both : t -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** [both t f g] evaluates the two thunks, concurrently when the pool has
    capacity, and returns their results. *)

type 'a future

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue one task and return a handle to its eventual result. On a
    sequential pool (size <= 1, or after {!shutdown}) the task runs
    eagerly at submission, so the schedule is the deterministic
    submission order at any pool size. *)

val await : t -> 'a future -> 'a
(** Claim a future's result, helping drain the pool's queue while it is
    pending (so awaiting from inside a worker task cannot deadlock). If
    the task raised, the exception is re-raised here with its original
    backtrace. [await] may be called multiple times and from multiple
    domains. *)

val shutdown : t -> unit
(** Drain queued tasks, stop the workers and join them. Idempotent. Calling
    {!map} after [shutdown] falls back to the sequential path. *)

val default : unit -> t
(** The process-wide shared pool, created on first use (and shut down via
    [at_exit]). All pipeline entry points use this when no explicit pool is
    given, so [DITTO_DOMAINS=1 bench/main.exe] pins the whole harness to the
    sequential schedule. *)

val default_size : unit -> int
(** The size {!create} would pick right now ([DITTO_DOMAINS] or
    [recommended_domain_count - 1]) — exposed for reports and tests. *)

(** {1 Instrumentation} *)

type stats = {
  tasks_queued : int;  (** tasks pushed onto any pool's shared queue *)
  tasks_stolen : int;  (** tasks the submitting domain drained back while helping *)
  tasks_by_workers : int;  (** tasks executed by worker domains *)
  busy_seconds : float;
      (** cumulative wall-clock time spent executing pool tasks, on any
          path — workers, helping submitters, and the sequential
          fallbacks all count (the bench derives parallel efficiency
          from deltas of this) *)
  idle_seconds : float;
      (** cumulative wall-clock time worker domains spent blocked waiting
          for work *)
}

val stats : unit -> stats
(** Process-wide task counters (across all pools, since process start).
    Tasks short-circuited by the sequential paths of {!map} (empty or
    singleton lists, pool size <= 1) are not queued and not counted —
    their execution time still lands in [busy_seconds]. *)

val set_task_hook : ((unit -> unit) -> unit -> unit) -> unit
(** Install a wrapper applied to every task at submission time — the
    observability layer uses this to span-wrap tasks with the submitter's
    context. The hook must be cheap when its backend is disabled; it is
    global and meant to be installed once, by [Ditto_obs]. *)
