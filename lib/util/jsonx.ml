type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let print_num n =
  if Float.is_integer n && Float.abs n < 1e15 then Printf.sprintf "%.0f" n
  else Printf.sprintf "%.17g" n

let to_string ?(pretty = false) t =
  let buf = Buffer.create 256 in
  let rec go indent t =
    let pad n = if pretty then Buffer.add_string buf (String.make (2 * n) ' ') in
    let newline () = if pretty then Buffer.add_char buf '\n' in
    match t with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num n -> Buffer.add_string buf (print_num n)
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        newline ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              newline ()
            end;
            pad (indent + 1);
            go (indent + 1) item)
          items;
        newline ();
        pad indent;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        newline ();
        List.iteri
          (fun i (k, v) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              newline ()
            end;
            pad (indent + 1);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\":";
            if pretty then Buffer.add_char buf ' ';
            go (indent + 1) v)
          fields;
        newline ();
        pad indent;
        Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

(* Recursive-descent parser. *)
type parser_state = { src : string; mutable pos : int }

let fail st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected %c" c)

let parse_literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st ("expected " ^ word)

let parse_string_body st =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
        | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance st; Buffer.add_char buf '/'; go ()
        | Some 'u' ->
            advance st;
            let read_hex4 () =
              if st.pos + 4 > String.length st.src then fail st "bad \\u escape";
              let hex = String.sub st.src st.pos 4 in
              let is_hex c =
                (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
              in
              if not (String.for_all is_hex hex) then fail st "bad \\u escape";
              st.pos <- st.pos + 4;
              int_of_string ("0x" ^ hex)
            in
            let code = read_hex4 () in
            let cp =
              if code >= 0xD800 && code <= 0xDBFF then begin
                (* High surrogate: a low surrogate must follow to form one
                   astral code point. *)
                if
                  st.pos + 2 <= String.length st.src
                  && st.src.[st.pos] = '\\'
                  && st.src.[st.pos + 1] = 'u'
                then begin
                  st.pos <- st.pos + 2;
                  let low = read_hex4 () in
                  if low < 0xDC00 || low > 0xDFFF then fail st "invalid low surrogate";
                  0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
                end
                else fail st "lone high surrogate"
              end
              else if code >= 0xDC00 && code <= 0xDFFF then fail st "lone low surrogate"
              else code
            in
            Buffer.add_utf_8_uchar buf (Uchar.of_int cp);
            go ()
        | _ -> fail st "bad escape")
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
  in
  let rec go () =
    match peek st with
    | Some c when is_num_char c ->
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with Some f -> f | None -> fail st "bad number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> parse_literal st "null" Null
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some '"' ->
      advance st;
      Str (parse_string_body st)
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let items = ref [ parse_value st ] in
        skip_ws st;
        while peek st = Some ',' do
          advance st;
          items := parse_value st :: !items;
          skip_ws st
        done;
        expect st ']';
        List (List.rev !items)
      end
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let field () =
          skip_ws st;
          expect st '"';
          let k = parse_string_body st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws st;
        while peek st = Some ',' do
          advance st;
          fields := field () :: !fields;
          skip_ws st
        done;
        expect st '}';
        Obj (List.rev !fields)
      end
  | Some _ -> Num (parse_number st)

let of_string src =
  let st = { src; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length src then fail st "trailing input";
  v

let member key = function
  | Obj fields -> ( match List.assoc_opt key fields with Some v -> v | None -> Null)
  | _ -> raise (Parse_error (Printf.sprintf "member %S of non-object" key))

let to_float = function
  | Num n -> n
  | _ -> raise (Parse_error "expected number")

let to_int v =
  let f = to_float v in
  if Float.is_finite f then int_of_float f else raise (Parse_error "expected integer")
let to_bool = function Bool b -> b | _ -> raise (Parse_error "expected bool")
let to_str = function Str s -> s | _ -> raise (Parse_error "expected string")
let to_list = function List l -> l | _ -> raise (Parse_error "expected list")

let int i = Num (float_of_int i)
let pair fa fb (a, b) = List [ fa a; fb b ]
let list f xs = List (List.map f xs)
