(** Sampling distributions used by workload generators and profilers. *)

val exponential : Rng.t -> mean:float -> float
(** Exponential inter-arrival with the given mean. *)

val lognormal : Rng.t -> mu:float -> sigma:float -> float
(** Log-normal sample, parameterised on the underlying normal. *)

val geometric : Rng.t -> mean:float -> int
(** Geometric batch size on support [{1, 2, ...}] with the given mean;
    one uniform draw per sample. [mean <= 1] always returns 1. *)

val normal : Rng.t -> mean:float -> std:float -> float
(** Gaussian sample (Box–Muller). *)

val pareto : Rng.t -> scale:float -> shape:float -> float
(** Pareto sample; heavy-tailed service demands. Requires [shape > 0]. *)

type zipf
(** Precomputed Zipf(n, s) sampler over ranks [0..n-1]. *)

val zipf : n:int -> s:float -> zipf
val zipf_sample : zipf -> Rng.t -> int

type 'a discrete
(** Weighted discrete distribution with O(log n) sampling. *)

val discrete : ('a * float) list -> 'a discrete
(** [discrete pairs] from (value, weight) pairs; weights need not sum to 1.
    Raises [Invalid_argument] if empty or all weights are <= 0. *)

val discrete_sample : 'a discrete -> Rng.t -> 'a
val discrete_support : 'a discrete -> ('a * float) array
(** Support with weights normalised to probabilities. *)

type empirical
(** Empirical distribution of floats built from observed samples. *)

val empirical : float array -> empirical
val empirical_sample : empirical -> Rng.t -> float
val empirical_mean : empirical -> float
