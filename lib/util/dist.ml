let exponential rng ~mean =
  let u = 1.0 -. Rng.float rng 1.0 in
  -.mean *. log u

let normal rng ~mean ~std =
  let u1 = 1.0 -. Rng.float rng 1.0 in
  let u2 = Rng.float rng 1.0 in
  mean +. (std *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let lognormal rng ~mu ~sigma = exp (normal rng ~mean:mu ~std:sigma)

let geometric rng ~mean =
  if mean <= 1.0 then 1
  else
    (* support {1, 2, ...}: P(k) = p (1-p)^(k-1) with p = 1/mean, sampled
       by inverting the CDF so one uniform draw yields one batch size *)
    let p = 1.0 /. mean in
    let u = 1.0 -. Rng.float rng 1.0 in
    1 + int_of_float (log u /. log (1.0 -. p))

let pareto rng ~scale ~shape =
  assert (shape > 0.0);
  let u = 1.0 -. Rng.float rng 1.0 in
  scale /. (u ** (1.0 /. shape))

type zipf = { cdf : float array }

let zipf ~n ~s =
  assert (n > 0);
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (1.0 /. (float_of_int (i + 1) ** s));
    cdf.(i) <- !acc
  done;
  let total = !acc in
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. total
  done;
  { cdf }

(* Binary search for the first index with cdf >= u. *)
let search_cdf cdf u =
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let zipf_sample z rng = search_cdf z.cdf (Rng.float rng 1.0)

type 'a discrete = { values : 'a array; probs : float array; cdf : float array }

let discrete pairs =
  let pairs = List.filter (fun (_, w) -> w > 0.0) pairs in
  if pairs = [] then invalid_arg "Dist.discrete: empty or non-positive support";
  let values = Array.of_list (List.map fst pairs) in
  let weights = Array.of_list (List.map snd pairs) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let probs = Array.map (fun w -> w /. total) weights in
  let cdf = Array.make (Array.length probs) 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i p ->
      acc := !acc +. p;
      cdf.(i) <- !acc)
    probs;
  cdf.(Array.length cdf - 1) <- 1.0;
  { values; probs; cdf }

let discrete_sample d rng = d.values.(search_cdf d.cdf (Rng.float rng 1.0))

let discrete_support d =
  Array.init (Array.length d.values) (fun i -> (d.values.(i), d.probs.(i)))

type empirical = { samples : float array; mean : float }

let empirical samples =
  if Array.length samples = 0 then invalid_arg "Dist.empirical: empty";
  let sum = Array.fold_left ( +. ) 0.0 samples in
  { samples; mean = sum /. float_of_int (Array.length samples) }

let empirical_sample e rng = e.samples.(Rng.int rng (Array.length e.samples))
let empirical_mean e = e.mean
