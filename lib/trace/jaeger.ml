module J = Ditto_util.Jsonx

(* Jaeger's JSON API writes span and trace ids as hex strings. *)
let id_of_hex s =
  let is_hex c =
    (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
  in
  if s = "" || String.length s > 16 || not (String.for_all is_hex s) then
    raise (J.Parse_error (Printf.sprintf "bad span id %S" s));
  int_of_string ("0x" ^ s)

let tag_int tags key =
  let rec go = function
    | [] -> 0
    | tag :: rest ->
        if (try J.to_str (J.member "key" tag) = key with J.Parse_error _ -> false) then
          match J.member "value" tag with
          | J.Num n -> int_of_float n
          | J.Str s -> ( match int_of_string_opt s with Some i -> i | None -> 0)
          | _ -> 0
        else go rest
  in
  go tags

exception Ingest_error of { span_id : string; reason : string }

let ingest_error span_id fmt =
  Printf.ksprintf (fun reason -> raise (Ingest_error { span_id; reason })) fmt

let span_of_json json =
  let sid_hex = J.to_str (J.member "spanID" json) in
  let span_id = id_of_hex sid_hex in
  let parent_span =
    (* First CHILD_OF reference wins; spans without one are roots. A
       reference that names the span itself or carries a non-hex id is
       content corruption, not a shape error, so it names the span. *)
    let refs = match J.member "references" json with J.List l -> l | _ -> [] in
    List.find_map
      (fun r ->
        match J.member "refType" r with
        | J.Str "CHILD_OF" -> (
            match id_of_hex (J.to_str (J.member "spanID" r)) with
            | p -> Some p
            | exception J.Parse_error msg ->
                ingest_error sid_hex "malformed parent reference: %s" msg)
        | _ -> None)
      refs
  in
  if parent_span = Some span_id then ingest_error sid_hex "span is its own parent";
  (match J.member "duration" json with
  | J.Num d when d < 0.0 -> ingest_error sid_hex "negative duration %g" d
  | _ -> ());
  let tags = match J.member "tags" json with J.List l -> l | _ -> [] in
  {
    Span.trace_id = id_of_hex (J.to_str (J.member "traceID" json));
    span_id;
    parent_span;
    service = J.to_str (J.member "operationName" json);
    req_bytes = tag_int tags "req_bytes";
    resp_bytes = tag_int tags "resp_bytes";
  }

(* Reject parent cycles before anything downstream (Dag.of_spans ancestry
   walks) can loop on them. The walk is iterative and bounded by the
   number of parented spans, so a cycle of any length is detected without
   recursion depth entering the picture. *)
let check_acyclic spans =
  let parent = Hashtbl.create 64 in
  List.iter
    (fun (s : Span.t) ->
      Option.iter (fun p -> Hashtbl.replace parent s.Span.span_id p) s.Span.parent_span)
    spans;
  let bound = Hashtbl.length parent + 1 in
  List.iter
    (fun (s : Span.t) ->
      let rec walk id steps =
        if steps > bound then
          ingest_error (Printf.sprintf "%x" s.Span.span_id) "cyclic parent references"
        else
          match Hashtbl.find_opt parent id with
          | Some p -> walk p (steps + 1)
          | None -> ()
      in
      walk s.Span.span_id 0)
    spans;
  spans

(* {1 Writer}

   Emits the same subset of the Jaeger JSON API the reader above consumes:
   hex ids, CHILD_OF references, operationName = service, req/resp byte
   tags. [of_string (to_string spans)] recovers the spans exactly (modulo
   list order within a trace), which is what the topology round-trip
   (generate -> export -> recover DAG) leans on. *)

let hex_id id = Printf.sprintf "%x" id

let span_to_json (s : Span.t) =
  let tag key value =
    J.Obj [ ("key", J.Str key); ("type", J.Str "int64"); ("value", J.int value) ]
  in
  let references =
    match s.Span.parent_span with
    | None -> []
    | Some p ->
        [
          J.Obj
            [
              ("refType", J.Str "CHILD_OF");
              ("traceID", J.Str (hex_id s.Span.trace_id));
              ("spanID", J.Str (hex_id p));
            ];
        ]
  in
  J.Obj
    [
      ("traceID", J.Str (hex_id s.Span.trace_id));
      ("spanID", J.Str (hex_id s.Span.span_id));
      ("operationName", J.Str s.Span.service);
      ("references", J.List references);
      ("startTime", J.int 0);
      ("duration", J.int 1);
      ("tags", J.List [ tag "req_bytes" s.Span.req_bytes; tag "resp_bytes" s.Span.resp_bytes ]);
    ]

let to_json spans =
  (* Group spans into traces, preserving first-seen trace order and span
     order within each trace. *)
  let order = ref [] in
  let by_trace : (int, Span.t list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (s : Span.t) ->
      match Hashtbl.find_opt by_trace s.Span.trace_id with
      | Some cell -> cell := s :: !cell
      | None ->
          Hashtbl.add by_trace s.Span.trace_id (ref [ s ]);
          order := s.Span.trace_id :: !order)
    spans;
  let traces =
    List.rev_map
      (fun tid ->
        let spans = List.rev !(Hashtbl.find by_trace tid) in
        J.Obj
          [
            ("traceID", J.Str (hex_id tid));
            ("spans", J.List (List.map span_to_json spans));
          ])
      !order
  in
  J.Obj [ ("data", J.List traces) ]

let to_string ?pretty spans = J.to_string ?pretty (to_json spans)

let of_json json =
  match J.member "data" json with
  | J.List traces ->
      List.concat_map
        (fun trace ->
          match J.member "spans" trace with
          | J.List spans -> List.map span_of_json spans
          | _ -> raise (J.Parse_error "trace entry without spans"))
        traces
      |> check_acyclic
  | _ -> raise (J.Parse_error "expected {\"data\": [...]}")

let of_string s = of_json (J.of_string s)
