module J = Ditto_util.Jsonx

(* Jaeger's JSON API writes span and trace ids as hex strings. *)
let id_of_hex s =
  let is_hex c =
    (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
  in
  if s = "" || String.length s > 16 || not (String.for_all is_hex s) then
    raise (J.Parse_error (Printf.sprintf "bad span id %S" s));
  int_of_string ("0x" ^ s)

let tag_int tags key =
  let rec go = function
    | [] -> 0
    | tag :: rest ->
        if (try J.to_str (J.member "key" tag) = key with J.Parse_error _ -> false) then
          match J.member "value" tag with
          | J.Num n -> int_of_float n
          | J.Str s -> ( match int_of_string_opt s with Some i -> i | None -> 0)
          | _ -> 0
        else go rest
  in
  go tags

let span_of_json json =
  let parent_span =
    (* First CHILD_OF reference wins; spans without one are roots. *)
    let refs = match J.member "references" json with J.List l -> l | _ -> [] in
    List.find_map
      (fun r ->
        match J.member "refType" r with
        | J.Str "CHILD_OF" -> Some (id_of_hex (J.to_str (J.member "spanID" r)))
        | _ -> None)
      refs
  in
  let tags = match J.member "tags" json with J.List l -> l | _ -> [] in
  {
    Span.trace_id = id_of_hex (J.to_str (J.member "traceID" json));
    span_id = id_of_hex (J.to_str (J.member "spanID" json));
    parent_span;
    service = J.to_str (J.member "operationName" json);
    req_bytes = tag_int tags "req_bytes";
    resp_bytes = tag_int tags "resp_bytes";
  }

let of_json json =
  match J.member "data" json with
  | J.List traces ->
      List.concat_map
        (fun trace ->
          match J.member "spans" trace with
          | J.List spans -> List.map span_of_json spans
          | _ -> raise (J.Parse_error "trace entry without spans"))
        traces
  | _ -> raise (J.Parse_error "expected {\"data\": [...]}")

let of_string s = of_json (J.of_string s)
