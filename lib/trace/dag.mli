(** RPC dependency-graph extraction from spans (§4.2).

    The microservice topology is a DAG whose nodes are services and whose
    edges carry call statistics: the mean number of calls a request to the
    caller makes to the callee (Fig. 3's edge weights) and message sizes.
    The DAG feeds the skeleton generator's API-interface synthesis. *)

type edge = {
  caller : string;
  callee : string;
  calls_per_request : float;
  probability : float;  (** fraction of caller requests issuing >=1 call *)
  req_bytes : int;  (** mean request size *)
  resp_bytes : int;
}

type t = { entry : string; services : string list; edges : edge list }

val of_spans : Span.t list -> t
(** Raises [Invalid_argument] if the spans contain no root. When several
    roots are present (one trace per request, as [ditto_cli critpath]
    exports), the topology is extracted with the first root's service as
    entry; use {!roots} to enumerate them all. *)

val roots : Span.t list -> (Span.t * int) list
(** Every root span paired with the number of spans reachable from it
    (itself included), in input order. *)

val downstreams : t -> string -> edge list
val topo_order : t -> string list
(** Entry first; raises [Invalid_argument] on a cyclic graph. *)

val pp : Format.formatter -> t -> unit
