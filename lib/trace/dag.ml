type edge = {
  caller : string;
  callee : string;
  calls_per_request : float;
  probability : float;
  req_bytes : int;
  resp_bytes : int;
}

type t = { entry : string; services : string list; edges : edge list }

let of_spans spans =
  let entry =
    match List.find_opt Span.root spans with
    | Some s -> s.Span.service
    | None -> invalid_arg "Dag.of_spans: no root span"
  in
  let services =
    List.fold_left
      (fun acc (s : Span.t) -> if List.mem s.Span.service acc then acc else s.Span.service :: acc)
      [] spans
    |> List.rev
  in
  (* Requests (spans) per service. *)
  let spans_per_service = Hashtbl.create 16 in
  List.iter
    (fun (s : Span.t) ->
      let c = Option.value ~default:0 (Hashtbl.find_opt spans_per_service s.Span.service) in
      Hashtbl.replace spans_per_service s.Span.service (c + 1))
    spans;
  let span_index = Hashtbl.create 256 in
  List.iter
    (fun (s : Span.t) -> Hashtbl.replace span_index (s.Span.trace_id, s.Span.span_id) s)
    spans;
  (* Aggregate child spans per (caller, callee). *)
  let agg : (string * string, int * int * int * (int * int, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 32
  in
  List.iter
    (fun (s : Span.t) ->
      match s.Span.parent_span with
      | None -> ()
      | Some parent_id -> (
          match Hashtbl.find_opt span_index (s.Span.trace_id, parent_id) with
          | None -> ()
          | Some parent ->
              let key = (parent.Span.service, s.Span.service) in
              let calls, req, resp, callers =
                match Hashtbl.find_opt agg key with
                | Some v -> v
                | None -> (0, 0, 0, Hashtbl.create 16)
              in
              Hashtbl.replace callers (s.Span.trace_id, parent_id) ();
              Hashtbl.replace agg key
                (calls + 1, req + s.Span.req_bytes, resp + s.Span.resp_bytes, callers)))
    spans;
  let edges =
    Hashtbl.fold
      (fun (caller, callee) (calls, req, resp, callers) acc ->
        let caller_requests =
          Option.value ~default:1 (Hashtbl.find_opt spans_per_service caller)
        in
        {
          caller;
          callee;
          calls_per_request = float_of_int calls /. float_of_int caller_requests;
          probability = float_of_int (Hashtbl.length callers) /. float_of_int caller_requests;
          req_bytes = req / max 1 calls;
          resp_bytes = resp / max 1 calls;
        }
        :: acc)
      agg []
    |> List.sort (fun a b -> compare (a.caller, a.callee) (b.caller, b.callee))
  in
  { entry; services; edges }

let roots spans =
  let children = Hashtbl.create 256 in
  List.iter
    (fun (s : Span.t) ->
      match s.Span.parent_span with
      | None -> ()
      | Some p -> Hashtbl.add children (s.Span.trace_id, p) s)
    spans;
  List.filter Span.root spans
  |> List.map (fun (root : Span.t) ->
         let count = ref 0 in
         let rec visit (s : Span.t) =
           incr count;
           List.iter visit (Hashtbl.find_all children (s.Span.trace_id, s.Span.span_id))
         in
         visit root;
         (root, !count))

let downstreams t service = List.filter (fun e -> e.caller = service) t.edges

let topo_order t =
  (* Kahn's algorithm from the entry. *)
  let in_deg = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace in_deg s 0) t.services;
  List.iter
    (fun e ->
      Hashtbl.replace in_deg e.callee (1 + Option.value ~default:0 (Hashtbl.find_opt in_deg e.callee)))
    t.edges;
  let queue = Queue.create () in
  List.iter (fun s -> if Hashtbl.find in_deg s = 0 then Queue.push s queue) t.services;
  let order = ref [] in
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    order := s :: !order;
    List.iter
      (fun e ->
        let d = Hashtbl.find in_deg e.callee - 1 in
        Hashtbl.replace in_deg e.callee d;
        if d = 0 then Queue.push e.callee queue)
      (downstreams t s)
  done;
  let order = List.rev !order in
  if List.length order <> List.length t.services then
    invalid_arg "Dag.topo_order: dependency graph is cyclic";
  order

let pp fmt t =
  Format.fprintf fmt "entry=%s services=[%s]@." t.entry (String.concat "; " t.services);
  List.iter
    (fun e ->
      Format.fprintf fmt "  %s -> %s (%.2f calls/req, p=%.2f, %dB/%dB)@." e.caller e.callee
        e.calls_per_request e.probability e.req_bytes e.resp_bytes)
    t.edges
