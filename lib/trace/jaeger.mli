(** Jaeger JSON ingestion.

    Parses the Jaeger API shape [{"data": [{"traceID"; "spans"; ...}]}] —
    the format {!Ditto_obs.Obs.Export.to_jaeger} emits and real Jaeger
    collectors serve — back into {!Span.t}s, so externally captured traces
    (including Ditto's own pipeline traces) feed {!Dag.of_spans}. The span's
    [operationName] becomes the service name; [req_bytes]/[resp_bytes] are
    read from integer tags of those names and default to 0. *)

val of_json : Ditto_util.Jsonx.t -> Span.t list
val of_string : string -> Span.t list
(** Raise {!Ditto_util.Jsonx.Parse_error} on malformed input (bad JSON,
    missing fields, non-hex ids). *)
