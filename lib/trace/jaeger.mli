(** Jaeger JSON ingestion.

    Parses the Jaeger API shape [{"data": [{"traceID"; "spans"; ...}]}] —
    the format {!Ditto_obs.Obs.Export.to_jaeger} emits and real Jaeger
    collectors serve — back into {!Span.t}s, so externally captured traces
    (including Ditto's own pipeline traces) feed {!Dag.of_spans}. The span's
    [operationName] becomes the service name; [req_bytes]/[resp_bytes] are
    read from integer tags of those names and default to 0. *)

exception Ingest_error of { span_id : string; reason : string }
(** A structurally valid Jaeger document whose span content is broken:
    a malformed [CHILD_OF] reference, a span that is its own parent or
    sits on a parent cycle, or a negative [duration]. [span_id] is the
    offending span's id as written in the document. Raised instead of
    looping or overflowing in downstream DAG recovery. *)

val of_json : Ditto_util.Jsonx.t -> Span.t list
val of_string : string -> Span.t list
(** Raise {!Ditto_util.Jsonx.Parse_error} on malformed input (bad JSON,
    missing fields, non-hex ids) and {!Ingest_error} on well-formed JSON
    carrying broken span content. The returned spans are guaranteed
    cycle-free, so {!Dag.of_spans} terminates on them. *)

val to_json : Span.t list -> Ditto_util.Jsonx.t
val to_string : ?pretty:bool -> Span.t list -> string
(** Serialise spans back to the same Jaeger API subset [of_string] reads:
    hex ids, [CHILD_OF] references, [operationName] = service, and
    [req_bytes]/[resp_bytes] integer tags. [of_string (to_string spans)]
    recovers the input spans (traces grouped, in-trace order preserved),
    which the topology synthesis round-trip relies on. *)
