open Ditto_sim
open Ditto_net
module Stats = Ditto_util.Stats
module Rng = Ditto_util.Rng
module Dist = Ditto_util.Dist
module Breaker = Ditto_fault.Breaker
module Injector = Ditto_fault.Injector
module Plan = Ditto_fault.Plan
module Rq = Ditto_obs.Reqtrace

type load = {
  qps : float;
  connections : int;
  open_loop : bool;
  duration : float;
  client_timeout : float option;
  client_retries : int;
  profile : Rate.t option;
}

let load ?(connections = 16) ?(open_loop = true) ?(duration = 2.0) ?client_timeout
    ?(client_retries = 0) ?profile ~qps () =
  (match profile with Some p -> Rate.check p | None -> ());
  { qps; connections; open_loop; duration; client_timeout; client_retries; profile }

type tier_obs = {
  obs_name : string;
  obs_latency : Stats.summary;
  obs_requests : int;
  obs_net_mbps : float;
  obs_disk_mbps : float;
  obs_timeouts : int;
  obs_retries : int;
  obs_shed : int;
  obs_degraded : int;
  obs_failures : int;
  obs_replicas : int;
  obs_breaker_transitions : int;
  obs_link_drops : int;
}

type scale_event = { se_at : float; se_tier : string; se_from : int; se_to : int }

type result = {
  latency : Stats.summary;
  latency_raw : float array;
  achieved_qps : float;
  completed : int;
  errors : int;
  client_timeouts : int;
  client_retries : int;
  elapsed : float;
  tiers : tier_obs list;
  scale_events : scale_event list;
      (** autoscaler actions in time order; [[]] when no tier carries a
          policy, so pre-surge results are structurally unchanged *)
  timeline : Ditto_obs.Timeseries.t option;
      (** windowed telemetry; [Some] only when {!Ditto_obs.Timeseries} was
          enabled when the run started *)
  reqtrace : Ditto_obs.Reqtrace.t option;
      (** sampled request span trees; [Some] only when
          {!Ditto_obs.Reqtrace} was enabled when the run started *)
}

(* One horizontally-scaled copy of a tier beyond the built-in primary: its
   own machine (fresh cores/NIC/disk) plus the per-server-model connection
   state. Deactivated replicas drain their attached connections but take
   no new ones, and are reactivated before any new machine is created. *)
type replica = {
  rep_id : int;
  rep_machine : Machine.t;
  rep_epolls : Socket.Epoll.t array;
  mutable rep_epoll_rr : int;
  mutable rep_poll_conns : Socket.endpoint list;
  mutable rep_active : bool;
  rep_nic0 : int;  (* NIC odometer at creation, for teardown bandwidth *)
  rep_disk0 : int;
}

type tier_rt = {
  spec : Spec.tier;
  machine : Machine.t;
  mres : Measure.tier_result;
  rng : Rng.t;
  epolls : Socket.Epoll.t array;
  mutable epoll_rr : int;
  mutable poll_conns : Socket.endpoint list;
  pools : (string, Socket.endpoint Queue.t) Hashtbl.t;
  breakers : (string, Breaker.t) Hashtbl.t;
  lat : Stats.t;
  mutable served : int;
  mutable inflight : int;
  mutable timeouts : int;
  mutable retries : int;
  mutable shed : int;
  mutable failures : int;
  mutable degraded : int;
  mutable replicas : replica list;  (* creation order; [] when autoscaling off *)
  mutable rep_rr : int;  (* round-robin cursor over primary + active replicas *)
  mutable stopped : bool;
}

(* Shared run context threaded through every handler; [inj = None] keeps the
   fault-free execution path byte-for-byte what it was before the chaos
   layer existed (test_parallel's bit-identity invariant). *)
type sys = {
  registry : (string, tier_rt) Hashtbl.t;
  tids : int ref;
  inj : Injector.t option;
  tl : Ditto_obs.Timeseries.t option;
      (** windowed telemetry collector; [None] (the default — the
          {!Ditto_obs.Timeseries.enabled} flag is off) keeps every hook to
          a single option match and the event stream byte-identical *)
  rq : Ditto_obs.Reqtrace.t option;
      (** request-trace collector, same discipline: [None] keeps every
          hook to a single option match; when [Some], hooks only fire for
          sampled requests (their span id rides [Socket.msg.meta]) *)
  scale_log : scale_event list ref;
      (** autoscaler actions, newest first; only the controller writes *)
}

let fresh_tid counter =
  incr counter;
  !counter

(* Crash-window poll granularity for parked workers of a down tier. *)
let down_poll = 1e-3

(* An error reply (shed / failed RPC) is a small status message, not the
   full response payload. *)
let err_bytes = 64

let tier_down sys rt =
  match sys.inj with
  | None -> false
  | Some inj -> not (Injector.tier_up inj rt.spec.Spec.tier_name)

let ts_counter sys rt c =
  match sys.tl with
  | None -> ()
  | Some ts ->
      Ditto_obs.Timeseries.record_counter ts ~tier:rt.spec.Spec.tier_name ~at:(Engine.time ()) c

(* Reqtrace helpers: every disabled-path call is one option match (and the
   per-request [span]/[rpc] guard keeps unsampled requests free too). *)
let rq_seg sys ~span kind ~t0 =
  match sys.rq with
  | Some c when span <> 0 -> Rq.segment c ~span kind ~start:t0 ~dur:(Engine.time () -. t0)
  | _ -> ()

let rq_rpc_end sys rpc ?bytes outcome =
  match sys.rq with
  | Some c when rpc <> 0 -> Rq.rpc_end c ~span:rpc ?bytes ~at:(Engine.time ()) outcome
  | _ -> ()

let rq_server_end sys span ?bytes outcome =
  match sys.rq with
  | Some c when span <> 0 -> Rq.server_end c ~span ?bytes ~at:(Engine.time ()) outcome
  | _ -> ()

(* [mach] is the machine serving the current request: the tier's primary,
   or a replica's when the autoscaler routed the connection there. With
   autoscaling off it is always [rt.machine]. *)
let run_cpu sys rt ~tid ~mach s =
  let s =
    match sys.inj with
    | None -> s
    | Some inj -> s *. Injector.slow_factor inj rt.spec.Spec.tier_name
  in
  (match sys.tl with
  | None -> ()
  | Some ts ->
      Ditto_obs.Timeseries.record_cpu ts ~tier:rt.spec.Spec.tier_name ~at:(Engine.time ())
        ~seconds:s);
  Ditto_os.Sched.run_oncpu mach.Machine.sched ~thread:tid s

(* Accept-queue depth for load shedding: undelivered messages plus requests
   already being replayed, summed over the primary and every replica. *)
let backlog rt =
  let base =
    match rt.spec.Spec.server_model with
    | Spec.Io_multiplexing ->
        Array.fold_left (fun acc e -> acc + Socket.Epoll.pending_total e) rt.inflight rt.epolls
    | Spec.Nonblocking ->
        List.fold_left (fun acc ep -> acc + Socket.pending ep) rt.inflight rt.poll_conns
    | Spec.Blocking -> rt.inflight
  in
  match rt.replicas with
  | [] -> base
  | reps ->
      List.fold_left
        (fun acc rep ->
          match rt.spec.Spec.server_model with
          | Spec.Io_multiplexing ->
              Array.fold_left (fun a e -> a + Socket.Epoll.pending_total e) acc rep.rep_epolls
          | Spec.Nonblocking ->
              List.fold_left (fun a ep -> a + Socket.pending ep) acc rep.rep_poll_conns
          | Spec.Blocking -> acc)
        base reps

(* Live serving capacity: the primary plus active replicas. The shed and
   degradation thresholds scale with it — the bounded accept queue is a
   per-replica resource. *)
let replica_count rt =
  1 + List.fold_left (fun acc r -> if r.rep_active then acc + 1 else acc) 0 rt.replicas

type slot = Primary | Rep of replica

let slot_machine rt = function Primary -> rt.machine | Rep r -> r.rep_machine

(* Replica-aware routing: new connections round-robin over the primary and
   the active replicas. With no replicas this is branch-free [Primary] and
   the cursor is never touched, keeping the disabled path identical. *)
let pick_slot rt =
  match rt.replicas with
  | [] -> Primary
  | reps ->
      let slots =
        Primary :: List.filter_map (fun r -> if r.rep_active then Some (Rep r) else None) reps
      in
      let k = rt.rep_rr mod List.length slots in
      rt.rep_rr <- rt.rep_rr + 1;
      List.nth slots k

(* Serve one request whose bytes arrived at [arrived]: replay a measured
   trace (CPU, disk, sleeps, downstream RPCs) then send the response — or
   shed it when the resilience knobs say the tier is overloaded, or serve
   it degraded when utilization crossed the degradation threshold. *)
let rec handle sys rt ~tid ~mach ep ~arrived ~meta ~bytes =
  if tier_down sys rt then (* the process died with the request in hand *) ()
  else
    (* [meta] is the sender's RPC span id when this request is sampled;
       the server span's queue segment is [arrived, now). *)
    let span =
      match sys.rq with
      | Some c when meta <> 0 ->
          Rq.server_begin c ~parent:meta ~tier:rt.spec.Spec.tier_name ~bytes ~arrived
            ~at:(Engine.time ())
      | _ -> 0
    in
    match rt.spec.Spec.resilience.Spec.queue_bound with
    | Some bound when backlog rt > bound * replica_count rt ->
        rt.shed <- rt.shed + 1;
        ts_counter sys rt Ditto_obs.Timeseries.Shed;
        rq_server_end sys span ~bytes:err_bytes Rq.Shed;
        Socket.send ~err:true ep ~bytes:err_bytes
    | _ ->
        let deg =
          match rt.spec.Spec.resilience.Spec.degrade with
          | Some d when backlog rt > d.Spec.degrade_queue * replica_count rt -> Some d
          | _ -> None
        in
        let tidx = Rng.int rt.rng (Array.length rt.mres.Measure.traces) in
        let trace = rt.mres.Measure.traces.(tidx) in
        (match sys.rq with
        | Some c when span <> 0 -> Rq.server_op c ~span ~op:tidx
        | _ -> ());
        rt.inflight <- rt.inflight + 1;
        let ok = replay sys rt ~tid ~mach ~span ~deg trace in
        rt.inflight <- rt.inflight - 1;
        if ok then begin
          let resp_bytes =
            match deg with
            | None -> rt.spec.Spec.response_bytes
            | Some d ->
                rt.degraded <- rt.degraded + 1;
                ts_counter sys rt Ditto_obs.Timeseries.Degraded;
                max 1
                  (int_of_float
                     (float_of_int rt.spec.Spec.response_bytes *. d.Spec.degrade_response_scale))
          in
          rq_server_end sys span ~bytes:resp_bytes Rq.Ok;
          Socket.send ep ~bytes:resp_bytes;
          let now = Engine.time () in
          Stats.add rt.lat (now -. arrived);
          rt.served <- rt.served + 1;
          match sys.tl with
          | None -> ()
          | Some ts ->
              Ditto_obs.Timeseries.record_latency ts ~tier:rt.spec.Spec.tier_name ~at:now
                ~seconds:(now -. arrived)
        end
        else begin
          rt.failures <- rt.failures + 1;
          ts_counter sys rt Ditto_obs.Timeseries.Failures;
          rq_server_end sys span ~bytes:err_bytes Rq.Err;
          Socket.send ~err:true ep ~bytes:err_bytes
        end

(* Replay a trace; false when a downstream call ultimately failed (after
   retries), in which case the remaining synchronous segments are skipped —
   the handler aborts like a real RPC server surfacing an upstream error. *)
and replay sys rt ~tid ~mach ~span ~deg trace =
  let pending = ref [] in
  let failed = ref false in
  (* On a sampled request, local work (CPU, disk, think) is bracketed into
     [Service] segments; the unsampled/disabled path runs the bare segment. *)
  let timed body =
    if span = 0 then body ()
    else begin
      let t0 = Engine.time () in
      body ();
      rq_seg sys ~span Rq.Service ~t0
    end
  in
  List.iter
    (fun seg ->
      if not !failed then
        match seg with
        | Measure.Cpu s ->
            let s =
              match deg with None -> s | Some d -> s *. d.Spec.degrade_cpu_scale
            in
            timed (fun () -> run_cpu sys rt ~tid ~mach s)
        | Measure.Disk_read { bytes; random } ->
            timed (fun () -> Ditto_storage.Disk.read mach.Machine.disk ~bytes ~random)
        | Measure.Disk_write { bytes } ->
            (* Buffered write: flushed in the background. *)
            Engine.fork (fun () -> Ditto_storage.Disk.write mach.Machine.disk ~bytes)
        | Measure.Sleep s -> (
            match deg with
            | Some d when d.Spec.degrade_skip_sleeps -> ()
            | _ -> timed (fun () -> Engine.wait s))
        | Measure.Downstream { target; req_bytes; resp_bytes } -> (
            match rt.spec.Spec.client_model with
            | Spec.Sync_client ->
                if not (downstream sys rt ~tid ~mach ~span target req_bytes resp_bytes) then
                  failed := true
            | Spec.Async_client ->
                let iv = Engine.Ivar.create () in
                Engine.fork (fun () ->
                    Engine.Ivar.fill iv
                      (downstream sys rt ~tid ~mach ~span target req_bytes resp_bytes));
                pending := iv :: !pending))
    trace;
  List.iter (fun iv -> if not (Engine.Ivar.read iv) then failed := true) !pending;
  not !failed

(* One downstream RPC under the tier's resilience knobs: circuit breaker
   (fail fast while open), per-call timeout (a timed-out connection is
   poisoned — a late reply must not desynchronise the request/response
   pairing, so it is dropped like a closed TCP connection), and bounded
   retries with exponential backoff + deterministic jitter from the tier's
   seeded RNG. Returns true on success. *)
and downstream sys rt ~tid ~mach ~span target req_bytes _resp_bytes =
  ignore tid;
  let drt =
    match Hashtbl.find_opt sys.registry target with
    | Some d -> d
    | None -> invalid_arg (Printf.sprintf "Service: unknown downstream tier %S" target)
  in
  let res = rt.spec.Spec.resilience in
  let pool =
    match Hashtbl.find_opt rt.pools target with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.add rt.pools target q;
        q
  in
  let breaker =
    match res.Spec.breaker with
    | None -> None
    | Some config -> (
        match Hashtbl.find_opt rt.breakers target with
        | Some br -> Some br
        | None ->
            let br = Breaker.create ~config () in
            Hashtbl.add rt.breakers target br;
            Some br)
  in
  let attempt () =
    match breaker with
    | Some br when not (Breaker.allow br ~now:(Engine.time ())) -> false
    | _ ->
        let conn =
          match Queue.take_opt pool with Some c -> c | None -> connect sys rt ~mach drt
        in
        (* One RPC span per attempt (client-side view: send until
           reply/timeout); its id rides the request message as [meta] so
           the callee's server span parents under it. *)
        let rpc =
          match sys.rq with
          | Some c when span <> 0 ->
              Rq.rpc_begin c ~parent:span ~target ~bytes:req_bytes ~at:(Engine.time ())
          | _ -> 0
        in
        if rpc = 0 then Socket.send conn ~bytes:req_bytes
        else Socket.send conn ~meta:rpc ~bytes:req_bytes;
        let ok =
          match res.Spec.call_timeout with
          | None ->
              let m = Socket.recv_msg conn in
              Queue.push conn pool;
              rq_rpc_end sys rpc ~bytes:m.Socket.bytes
                (if m.Socket.err then Rq.Err else Rq.Ok);
              not m.Socket.err
          | Some timeout -> (
              match Socket.recv_msg_timeout conn ~timeout with
              | Some m ->
                  Queue.push conn pool;
                  rq_rpc_end sys rpc ~bytes:m.Socket.bytes
                    (if m.Socket.err then Rq.Err else Rq.Ok);
                  not m.Socket.err
              | None ->
                  rt.timeouts <- rt.timeouts + 1;
                  ts_counter sys rt Ditto_obs.Timeseries.Timeouts;
                  rq_rpc_end sys rpc Rq.Timeout;
                  false)
        in
        (match breaker with
        | Some br -> Breaker.record br ~now:(Engine.time ()) ~ok
        | None -> ());
        ok
  in
  let rec go n =
    if attempt () then true
    else if n >= res.Spec.max_retries then false
    else begin
      rt.retries <- rt.retries + 1;
      ts_counter sys rt Ditto_obs.Timeseries.Retries;
      let backoff = res.Spec.retry_backoff *. (2.0 ** float_of_int n) in
      if backoff > 0.0 then begin
        let d = backoff *. (0.5 +. Rng.float rt.rng 1.0) in
        if span = 0 then Engine.wait d
        else begin
          let t0 = Engine.time () in
          Engine.wait d;
          rq_seg sys ~span Rq.Backoff ~t0
        end
      end;
      go (n + 1)
    end
  in
  go 0

and connect sys rt ~mach drt =
  (* Pick the destination replica first: the socket pair must land on the
     machine whose NIC will carry the bytes. *)
  let slot = pick_slot drt in
  let dmach = slot_machine drt slot in
  let same = mach == dmach in
  let a_nic = if same then mach.Machine.loopback else mach.Machine.nic in
  let b_nic = if same then dmach.Machine.loopback else dmach.Machine.nic in
  let latency = if same then 5e-6 else 20e-6 in
  let client_ep, server_ep = Socket.pair mach.Machine.engine ~a_nic ~b_nic ~latency in
  (match sys.inj with
  | None -> ()
  | Some inj ->
      let src = rt.spec.Spec.tier_name and dst = drt.spec.Spec.tier_name in
      Socket.set_disruptor client_ep (Some (Injector.disruptor inj ~src ~dst));
      Socket.set_disruptor server_ep (Some (Injector.disruptor inj ~src:dst ~dst:src)));
  attach_slot sys drt slot server_ep;
  client_ep

(* Register a new inbound connection according to the server's network and
   thread model, on the routing slot chosen by [pick_slot]. *)
and attach_slot sys rt slot ep =
  match (rt.spec.Spec.server_model, slot) with
  | Spec.Io_multiplexing, Primary ->
      Socket.Epoll.add rt.epolls.(rt.epoll_rr mod Array.length rt.epolls) ep;
      rt.epoll_rr <- rt.epoll_rr + 1
  | Spec.Io_multiplexing, Rep r ->
      Socket.Epoll.add r.rep_epolls.(r.rep_epoll_rr mod Array.length r.rep_epolls) ep;
      r.rep_epoll_rr <- r.rep_epoll_rr + 1
  | Spec.Blocking, _ ->
      (* Thread-per-connection (spawned dynamically for services like
         MongoDB whose thread count follows the connection count). *)
      let tid = fresh_tid sys.tids in
      let mach = slot_machine rt slot in
      Engine.fork (fun () -> blocking_loop sys rt ~tid ~mach ep)
  | Spec.Nonblocking, Primary -> rt.poll_conns <- ep :: rt.poll_conns
  | Spec.Nonblocking, Rep r -> r.rep_poll_conns <- ep :: r.rep_poll_conns


and blocking_loop sys rt ~tid ~mach ep =
  if not rt.stopped then
    if tier_down sys rt then begin
      Engine.wait down_poll;
      blocking_loop sys rt ~tid ~mach ep
    end
    else begin
      let m = Socket.recv_msg ep in
      handle sys rt ~tid ~mach ep ~arrived:m.Socket.arrived ~meta:m.Socket.meta
        ~bytes:m.Socket.bytes;
      blocking_loop sys rt ~tid ~mach ep
    end

(* Workers are bound to one machine (primary or replica) and, for the
   polling models, to that machine's connection set. *)
let epoll_worker sys rt ~tid ~mach epoll =
  let rec loop () =
    if not rt.stopped then
      if tier_down sys rt then begin
        Engine.wait down_poll;
        loop ()
      end
      else
        match Socket.Epoll.wait ~timeout:0.1 epoll with
        | [] -> loop ()
        | ready ->
            List.iter
              (fun ep ->
                let rec drain () =
                  (* Stop draining the instant the tier crashes: queued
                     requests must survive to be the restart's backlog. *)
                  if not (tier_down sys rt) then
                    match Socket.try_recv_msg ep with
                    | Some m ->
                        handle sys rt ~tid ~mach ep ~arrived:m.Socket.arrived
                          ~meta:m.Socket.meta ~bytes:m.Socket.bytes;
                        drain ()
                    | None -> ()
                in
                drain ())
              ready;
            loop ()
  in
  loop ()

let nonblocking_worker sys rt ~tid ~mach ~conns =
  let poll_interval = 20e-6 and poll_cpu = 1.5e-6 in
  let rec loop () =
    if not rt.stopped then
      if tier_down sys rt then begin
        Engine.wait down_poll;
        loop ()
      end
      else begin
        let got = ref false in
        List.iter
          (fun ep ->
            match Socket.try_recv_msg ep with
            | Some m ->
                got := true;
                handle sys rt ~tid ~mach ep ~arrived:m.Socket.arrived ~meta:m.Socket.meta
                  ~bytes:m.Socket.bytes
            | None -> ())
          (conns ());
        (* Polling burns CPU even when idle — the §4.3.1 caveat. *)
        run_cpu sys rt ~tid ~mach poll_cpu;
        if not !got then Engine.wait poll_interval;
        loop ()
      end
  in
  loop ()

let background_thread sys rt ~tid period trace =
  let rec loop () =
    if not rt.stopped then begin
      Engine.wait period;
      if not (tier_down sys rt) then
        List.iter
          (fun seg ->
            match seg with
            | Measure.Cpu s -> run_cpu sys rt ~tid ~mach:rt.machine s
            | Measure.Disk_read { bytes; random } ->
                Ditto_storage.Disk.read rt.machine.Machine.disk ~bytes ~random
            | Measure.Disk_write { bytes } ->
                Engine.fork (fun () -> Ditto_storage.Disk.write rt.machine.Machine.disk ~bytes)
            | Measure.Sleep s -> Engine.wait s
            | Measure.Downstream _ -> ())
          trace;
      loop ()
    end
  in
  loop ()

(* --- Horizontal autoscaling ------------------------------------------ *)

(* Bring one more replica online: reactivate a drained one if available
   (no machine churn), otherwise create a fresh machine mirroring the
   primary's platform/core count and spawn its worker set. [spawn] is
   [Engine.spawn engine] at setup time and [Engine.fork] from inside the
   controller process. *)
let scale_up_one sys rt ~spawn =
  match List.find_opt (fun r -> not r.rep_active) rt.replicas with
  | Some r -> r.rep_active <- true
  | None ->
      let mach =
        Machine.create ~cores:(Machine.ncores rt.machine) rt.machine.Machine.engine
          rt.machine.Machine.platform
      in
      let workers = max 1 rt.spec.Spec.thread_model.Spec.workers in
      let nepolls =
        match rt.spec.Spec.server_model with Spec.Io_multiplexing -> workers | _ -> 0
      in
      let rep =
        {
          rep_id = List.length rt.replicas + 1;
          rep_machine = mach;
          rep_epolls = Array.init nepolls (fun _ -> Socket.Epoll.create ());
          rep_epoll_rr = 0;
          rep_poll_conns = [];
          rep_active = true;
          rep_nic0 = Nic.bytes_sent mach.Machine.nic + Nic.bytes_received mach.Machine.nic;
          rep_disk0 =
            Ditto_storage.Disk.bytes_read mach.Machine.disk
            + Ditto_storage.Disk.bytes_written mach.Machine.disk;
        }
      in
      rt.replicas <- rt.replicas @ [ rep ];
      (match rt.spec.Spec.server_model with
      | Spec.Io_multiplexing ->
          Array.iter
            (fun epoll ->
              let tid = fresh_tid sys.tids in
              spawn (fun () -> epoll_worker sys rt ~tid ~mach epoll))
            rep.rep_epolls
      | Spec.Nonblocking ->
          for _ = 1 to workers do
            let tid = fresh_tid sys.tids in
            spawn (fun () -> nonblocking_worker sys rt ~tid ~mach ~conns:(fun () -> rep.rep_poll_conns))
          done
      | Spec.Blocking -> (* threads spawn per connection in [attach_slot] *) ())

(* Drain the newest active replica: it stops taking new connections but
   keeps serving the ones it has. The primary never scales in. *)
let scale_down_one rt =
  match List.rev (List.filter (fun r -> r.rep_active) rt.replicas) with
  | r :: _ -> r.rep_active <- false
  | [] -> ()

let apply_scale sys rt ~spawn ~from_n ~to_n =
  if to_n > from_n then
    for _ = from_n + 1 to to_n do scale_up_one sys rt ~spawn done
  else
    for _ = to_n + 1 to from_n do scale_down_one rt done;
  let now = Engine.time () in
  let tier = rt.spec.Spec.tier_name in
  sys.scale_log := { se_at = now; se_tier = tier; se_from = from_n; se_to = to_n } :: !(sys.scale_log);
  match sys.tl with
  | None -> ()
  | Some ts ->
      (* "scale:" prefix: Timeline must not score these as faults *)
      Ditto_obs.Timeseries.mark ts ~at:now
        ~label:(Printf.sprintf "scale:%s:%d->%d" tier from_n to_n);
      Ditto_obs.Timeseries.record_replicas ts ~tier ~at:now ~count:to_n

(* The controller is a DES process (Engine.every callbacks cannot spawn
   workers): every interval it reads the per-replica backlog — pure state,
   no RNG, no messages — and runs a PI step in the HPA style,
   [desired = n * (1 + kp*err + ki*integral)] with the error normalised to
   the queue setpoint. Hysteresis (deadband) and cooldown gate actuation;
   the integral is clamped (anti-windup) and reset after each scale event
   (bumpless restart). Everything it does is a deterministic function of
   the DES clock and queue state, so scale trajectories are reproducible
   bit-for-bit across runs and pool sizes. *)
let autoscaler sys rt ~engine ~t_end (pol : Spec.autoscale) =
  Engine.spawn engine (fun () ->
      let integral = ref 0.0 in
      let last_scale = ref neg_infinity in
      let rec loop () =
        Engine.wait pol.Spec.as_interval;
        let now = Engine.time () in
        if now < t_end && not rt.stopped then begin
          (if not (tier_down sys rt) then begin
             let n = replica_count rt in
             let q = float_of_int (backlog rt) /. float_of_int n in
             let err = (q -. pol.Spec.as_target_queue) /. pol.Spec.as_target_queue in
             if Float.abs err > pol.Spec.as_deadband then begin
               integral :=
                 Float.max (-4.0) (Float.min 4.0 (!integral +. (err *. pol.Spec.as_interval)));
               let adj = (pol.Spec.as_kp *. err) +. (pol.Spec.as_ki *. !integral) in
               let desired =
                 max pol.Spec.as_min_replicas
                   (min pol.Spec.as_max_replicas
                      (int_of_float (Float.round (float_of_int n *. (1.0 +. adj)))))
               in
               if desired <> n && now -. !last_scale >= pol.Spec.as_cooldown then begin
                 apply_scale sys rt ~spawn:Engine.fork ~from_n:n ~to_n:desired;
                 last_scale := now;
                 integral := 0.0
               end
             end
           end);
          loop ()
        end
      in
      loop ())

let dedupe_machines rts =
  let seen = Hashtbl.create 16 in
  List.fold_left
    (fun acc rt ->
      if Hashtbl.mem seen rt.machine.Machine.uid then acc
      else begin
        Hashtbl.add seen rt.machine.Machine.uid ();
        rt.machine :: acc
      end)
    [] rts

let run ~engine ~(app : Spec.t) ~placement ~results ~seed ?(net_interference_gbps = 0.0)
    ?fault_plan l =
  let registry : (string, tier_rt) Hashtbl.t = Hashtbl.create 8 in
  let tids = ref 0 in
  let root = Rng.create seed in
  let inj =
    match fault_plan with
    | None -> None
    | Some plan ->
        Plan.validate ~duration:l.duration
          ~tiers:(List.map (fun t -> t.Spec.tier_name) app.Spec.tiers)
          plan;
        (* The injector draws from its own stream, offset from the run seed
           so fault coin-flips never perturb the tiers' trace selection. *)
        Some (Injector.create ~engine ~seed:(seed + 104729) plan)
  in
  let tl =
    if not (Ditto_obs.Timeseries.enabled ()) then None
    else
      (* [Engine.now] here equals the load-phase start: the clock cannot
         advance before [Engine.run] below. *)
      Some
        (Ditto_obs.Timeseries.create ~start:(Engine.now engine) ~duration:l.duration
           ~tiers:(List.map (fun (t : Spec.tier) -> t.Spec.tier_name) app.Spec.tiers)
           ())
  in
  let rq =
    if not (Ditto_obs.Reqtrace.enabled ()) then None
    else
      (* Sampling hashes the run seed with a request counter — no RNG
         stream is consumed, so the simulated results of an enabled run
         are byte-identical to a disabled run's. *)
      Some (Ditto_obs.Reqtrace.create ~seed ())
  in
  let sys = { registry; tids; inj; tl; rq; scale_log = ref [] } in
  let rts =
    List.map
      (fun (tier : Spec.tier) ->
        let rt =
          {
            spec = tier;
            machine = placement tier.Spec.tier_name;
            mres = results tier.Spec.tier_name;
            rng = Rng.split root;
            epolls =
              Array.init (max 1 tier.Spec.thread_model.Spec.workers) (fun _ ->
                  Socket.Epoll.create ());
            epoll_rr = 0;
            poll_conns = [];
            pools = Hashtbl.create 4;
            breakers = Hashtbl.create 4;
            lat = Stats.create ();
            served = 0;
            inflight = 0;
            timeouts = 0;
            retries = 0;
            shed = 0;
            failures = 0;
            degraded = 0;
            replicas = [];
            rep_rr = 0;
            stopped = false;
          }
        in
        Hashtbl.add registry tier.Spec.tier_name rt;
        rt)
      app.Spec.tiers
  in
  (* Spawn server workers. *)
  List.iter
    (fun rt ->
      (match rt.spec.Spec.server_model with
      | Spec.Io_multiplexing ->
          Array.iter
            (fun epoll ->
              let tid = fresh_tid tids in
              Engine.spawn engine (fun () -> epoll_worker sys rt ~tid ~mach:rt.machine epoll))
            rt.epolls
      | Spec.Nonblocking ->
          for _ = 1 to max 1 rt.spec.Spec.thread_model.Spec.workers do
            let tid = fresh_tid tids in
            Engine.spawn engine (fun () ->
                nonblocking_worker sys rt ~tid ~mach:rt.machine ~conns:(fun () -> rt.poll_conns))
          done
      | Spec.Blocking -> (* threads spawn per connection in [attach] *) ());
      match (rt.mres.Measure.background_trace, rt.spec.Spec.thread_model.Spec.background) with
      | Some trace, bgs ->
          List.iter
            (fun (_, period) ->
              let tid = fresh_tid tids in
              Engine.spawn engine (fun () -> background_thread sys rt ~tid period trace))
            bgs
      | None, _ -> ())
    rts;
  (* Pre-scale autoscaled tiers to their policy floor so the first client
     connections already round-robin across [min_replicas] copies. *)
  List.iter
    (fun rt ->
      match rt.spec.Spec.autoscale with
      | None -> ()
      | Some pol ->
          for _ = 2 to pol.Spec.as_min_replicas do
            scale_up_one sys rt ~spawn:(Engine.spawn engine)
          done)
    rts;
  let entry = Hashtbl.find registry app.Spec.entry in
  let machines = dedupe_machines rts in
  (* Pre-run NIC/disk odometers, keyed by machine uid so the teardown pass
     below stays O(tiers) instead of re-scanning the machine list per tier. *)
  let before : (int, int * int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun m ->
      Hashtbl.replace before m.Machine.uid
        ( Nic.bytes_sent m.Machine.nic + Nic.bytes_received m.Machine.nic,
          Ditto_storage.Disk.bytes_read m.Machine.disk
          + Ditto_storage.Disk.bytes_written m.Machine.disk ))
    machines;
  (* Client connections (the load generator is its own machine). The entry
     replica is chosen per connection so surge scale-out spreads new and
     re-paired client connections across the live replica set. *)
  let client_nic = Nic.create engine ~gbps:40.0 in
  let client_pair () =
    let slot = pick_slot entry in
    let dmach = slot_machine entry slot in
    let a, b = Socket.pair engine ~a_nic:client_nic ~b_nic:dmach.Machine.nic ~latency:20e-6 in
    (match inj with
    | None -> ()
    | Some i ->
        let dst = entry.spec.Spec.tier_name in
        Socket.set_disruptor a (Some (Injector.disruptor i ~src:Plan.client_tier ~dst));
        Socket.set_disruptor b (Some (Injector.disruptor i ~src:dst ~dst:Plan.client_tier)));
    (a, b, slot)
  in
  let conns =
    Array.init (max 1 l.connections) (fun _ ->
        let a, b, slot = client_pair () in
        Engine.spawn engine (fun () -> attach_slot sys entry slot b);
        (ref a, Engine.Resource.create 1))
  in
  (match inj with Some i -> Injector.arm i ~at:(Engine.now engine) | None -> ());
  let t_start = Engine.now engine in
  let t_end = t_start +. l.duration in
  (* One controller process per autoscaled tier. With no policies this
     spawns nothing, so the event stream is untouched. *)
  List.iter
    (fun rt ->
      match rt.spec.Spec.autoscale with
      | None -> ()
      | Some pol ->
          (match tl with
          | None -> ()
          | Some ts ->
              Ditto_obs.Timeseries.record_replicas ts ~tier:rt.spec.Spec.tier_name ~at:t_start
                ~count:(replica_count rt));
          autoscaler sys rt ~engine ~t_end pol)
    rts;
  (match tl with
  | None -> ()
  | Some ts ->
      (* Fault markers come straight from the plan (injection times are
         data, not runtime events), and a zero-virtual-time read-only
         ticker samples every tier's accept-queue depth once per window.
         The ticker only shifts engine sequence numbers uniformly, so the
         relative order of all service events — and hence every simulated
         result — is unchanged by enabling telemetry. *)
      (match fault_plan with
      | None -> ()
      | Some plan ->
          List.iter
            (fun (ev : Plan.event) ->
              let label =
                match ev.Plan.kind with
                | Plan.Crash _ -> "crash"
                | Plan.Slowdown _ -> "slowdown"
                | Plan.Link _ -> "link"
                | Plan.Partition _ -> "partition"
              in
              Ditto_obs.Timeseries.mark ts ~at:(t_start +. ev.Plan.at)
                ~label:(label ^ ":" ^ ev.Plan.tier))
            plan.Plan.events);
      (* Flash-crowd onsets are events just like faults: the transient
         scorecard measures reconvergence from them too. *)
      (match l.profile with
      | Some p when not (Rate.is_constant p) ->
          List.iter
            (fun term ->
              match term with
              | Rate.Spike { at; _ } ->
                  Ditto_obs.Timeseries.mark ts ~at:(t_start +. at)
                    ~label:("surge:" ^ p.Rate.profile_name)
              | _ -> ())
            p.Rate.shape
      | _ -> ());
      let w = Ditto_obs.Timeseries.window_seconds ts in
      Engine.every engine ~start:t_start ~period:w ~until:(t_end -. (0.5 *. w)) (fun at ->
          List.iter
            (fun rt ->
              Ditto_obs.Timeseries.record_queue ts ~tier:rt.spec.Spec.tier_name ~at
                ~depth:(backlog rt))
            rts));
  let ts_client c =
    match tl with
    | None -> ()
    | Some ts ->
        Ditto_obs.Timeseries.record_counter ts ~tier:Ditto_obs.Timeseries.client_tier
          ~at:(Engine.time ()) c
  in
  let lat = Stats.create () in
  let completed = ref 0 in
  let client_errors = ref 0 in
  let client_timeouts = ref 0 in
  let client_retries_used = ref 0 in
  let gen_rng = Rng.split root in
  (* Client-side trace hooks: [root] / [rpc] are 0 for unsampled requests,
     so every helper below is a guard and nothing else on the common path. *)
  let rq_client_rpc root =
    match rq with
    | Some c when root <> 0 ->
        Rq.rpc_begin c ~parent:root ~target:entry.spec.Spec.tier_name
          ~bytes:entry.spec.Spec.request_bytes ~at:(Engine.time ())
    | _ -> 0
  in
  let rq_client_finish root outcome =
    match rq with
    | Some c when root <> 0 -> Rq.client_finish c ~span:root ~at:(Engine.time ()) outcome
    | _ -> ()
  in
  let do_request ci =
    (* The clock starts at submission: open-loop latency must include any
       wait for a free connection (coordinated-omission correction, as in
       wrk2/mutated). *)
    let t0 = Engine.time () in
    let root = match rq with Some c -> Rq.client_start c ~at:t0 | None -> 0 in
    let conn, mutex = conns.(ci) in
    Engine.Resource.with_resource mutex (fun () ->
        match l.client_timeout with
        | None ->
            let rpc = rq_client_rpc root in
            if rpc = 0 then Socket.send !conn ~bytes:entry.spec.Spec.request_bytes
            else Socket.send !conn ~meta:rpc ~bytes:entry.spec.Spec.request_bytes;
            let m = Socket.recv_msg !conn in
            rq_rpc_end sys rpc ~bytes:m.Socket.bytes
              (if m.Socket.err then Rq.Err else Rq.Ok);
            let now = Engine.time () in
            Stats.add lat (now -. t0);
            incr completed;
            rq_client_finish root (if m.Socket.err then Rq.Err else Rq.Ok);
            (match tl with
            | None -> ()
            | Some ts ->
                Ditto_obs.Timeseries.record_latency ts
                  ~tier:Ditto_obs.Timeseries.client_tier ~at:now ~seconds:(now -. t0))
        | Some timeout ->
            let rec go n =
              let rpc = rq_client_rpc root in
              if rpc = 0 then Socket.send !conn ~bytes:entry.spec.Spec.request_bytes
              else Socket.send !conn ~meta:rpc ~bytes:entry.spec.Spec.request_bytes;
              match Socket.recv_msg_timeout !conn ~timeout with
              | Some m when not m.Socket.err ->
                  rq_rpc_end sys rpc ~bytes:m.Socket.bytes Rq.Ok;
                  let now = Engine.time () in
                  Stats.add lat (now -. t0);
                  incr completed;
                  rq_client_finish root Rq.Ok;
                  (match tl with
                  | None -> ()
                  | Some ts ->
                      Ditto_obs.Timeseries.record_latency ts
                        ~tier:Ditto_obs.Timeseries.client_tier ~at:now ~seconds:(now -. t0))
              | outcome ->
                  (match outcome with
                  | None ->
                      (* Poison the timed-out connection: a late reply must
                         not answer the next request. *)
                      rq_rpc_end sys rpc Rq.Timeout;
                      incr client_timeouts;
                      ts_client Ditto_obs.Timeseries.Timeouts;
                      let a, b, slot = client_pair () in
                      attach_slot sys entry slot b;
                      conn := a
                  | Some m ->
                      (* error response; the conn stays paired *)
                      rq_rpc_end sys rpc ~bytes:m.Socket.bytes Rq.Err);
                  if n < l.client_retries then begin
                    incr client_retries_used;
                    ts_client Ditto_obs.Timeseries.Retries;
                    go (n + 1)
                  end
                  else begin
                    incr client_errors;
                    ts_client Ditto_obs.Timeseries.Failures;
                    rq_client_finish root
                      (match outcome with None -> Rq.Timeout | Some _ -> Rq.Err)
                  end
            in
            go 0)
  in
  (* A non-constant profile samples arrivals from its own stream at a fixed
     seed offset; the constant/absent branches below are the pre-profile
     code verbatim, so disabled runs stay bit-identical. *)
  let surge =
    match l.profile with Some p when not (Rate.is_constant p) -> Some p | _ -> None
  in
  (match (l.open_loop, surge) with
  | true, Some p ->
      let prng = Rng.create (seed + 224737) in
      Engine.spawn engine (fun () ->
          let i = ref 0 in
          while Engine.time () < t_end do
            let arr =
              Rate.next_arrival p prng ~base_qps:l.qps ~t:(Engine.time () -. t_start)
            in
            Engine.wait arr.Rate.gap;
            if Engine.time () < t_end then
              for _ = 1 to arr.Rate.batch do
                let ci = !i mod Array.length conns in
                incr i;
                Engine.fork (fun () -> do_request ci)
              done
          done)
  | true, None ->
      Engine.spawn engine (fun () ->
          let i = ref 0 in
          while Engine.time () < t_end do
            Engine.wait (Dist.exponential gen_rng ~mean:(1.0 /. l.qps));
            let ci = !i mod Array.length conns in
            incr i;
            Engine.fork (fun () -> do_request ci)
          done)
  | false, Some p ->
      (* Closed loop under a profile: think gaps shrink as the multiplier
         rises, still one outstanding request per connection. *)
      let prng = Rng.create (seed + 224737) in
      let per_conn = float_of_int (Array.length conns) in
      Array.iteri
        (fun ci _ ->
          Engine.spawn engine (fun () ->
              let next = ref (Engine.time ()) in
              while Engine.time () < t_end do
                let mult =
                  Float.max 1e-6 (Rate.mult_at p ~t:(Engine.time () -. t_start))
                in
                let mean = per_conn /. (l.qps *. mult) in
                next := !next +. Dist.exponential prng ~mean;
                let now = Engine.time () in
                if !next > now then Engine.wait (!next -. now);
                if Engine.time () < t_end then do_request ci
              done))
        conns
  | false, None ->
      (* Closed loop with rate throttling (YCSB-style: one outstanding request
         per connection; late responses eat into the think gap). *)
      let per_conn_mean = float_of_int (Array.length conns) /. l.qps in
      Array.iteri
        (fun ci _ ->
          Engine.spawn engine (fun () ->
              let next = ref (Engine.time ()) in
              while Engine.time () < t_end do
                next := !next +. Dist.exponential gen_rng ~mean:per_conn_mean;
                let now = Engine.time () in
                if !next > now then Engine.wait (!next -. now);
                if Engine.time () < t_end then do_request ci
              done))
        conns);
  (* iperf-style competing stream through the entry machine's NIC. *)
  if net_interference_gbps > 0.0 then begin
    let chunk = 65536 in
    let interval = float_of_int (chunk * 8) /. (net_interference_gbps *. 1e9) in
    Engine.spawn engine (fun () ->
        while Engine.time () < t_end do
          let t0 = Engine.time () in
          Nic.transmit entry.machine.Machine.nic ~bytes:chunk;
          let used = Engine.time () -. t0 in
          if used < interval then Engine.wait (interval -. used)
        done)
  end;
  Engine.run ~until:(t_end +. 0.5) engine;
  List.iter (fun rt -> rt.stopped <- true) rts;
  (* Close spans of requests still in flight at teardown (outcome
     Timeout) and freeze the trees for readers. *)
  (match rq with None -> () | Some c -> Ditto_obs.Reqtrace.finalize c ~at:(Engine.now engine));
  let elapsed = Float.max 1e-9 (Float.min (Engine.now engine) t_end -. t_start) in
  let mbps before now = float_of_int (now - before) /. elapsed /. 1e6 in
  let tiers =
    List.map
      (fun rt ->
        let m = rt.machine in
        let nic_now = Nic.bytes_sent m.Machine.nic + Nic.bytes_received m.Machine.nic in
        let disk_now =
          Ditto_storage.Disk.bytes_read m.Machine.disk
          + Ditto_storage.Disk.bytes_written m.Machine.disk
        in
        let nic_b, disk_b =
          match Hashtbl.find_opt before m.Machine.uid with Some v -> v | None -> (0, 0)
        in
        (* Replicas carry their own machines; fold their odometers (relative
           to the creation snapshot) into the tier's bandwidth totals. *)
        let rep_nic, rep_disk =
          List.fold_left
            (fun (n, d) r ->
              let rm = r.rep_machine in
              let rn =
                Nic.bytes_sent rm.Machine.nic + Nic.bytes_received rm.Machine.nic - r.rep_nic0
              in
              let rd =
                Ditto_storage.Disk.bytes_read rm.Machine.disk
                + Ditto_storage.Disk.bytes_written rm.Machine.disk
                - r.rep_disk0
              in
              (n + rn, d + rd))
            (0, 0) rt.replicas
        in
        List.iter (fun r -> Machine.release r.rep_machine) rt.replicas;
        {
          obs_name = rt.spec.Spec.tier_name;
          obs_latency = Stats.summary rt.lat;
          obs_requests = rt.served;
          obs_net_mbps = mbps nic_b (nic_now + rep_nic);
          obs_disk_mbps = mbps disk_b (disk_now + rep_disk);
          obs_timeouts = rt.timeouts;
          obs_retries = rt.retries;
          obs_shed = rt.shed;
          obs_degraded = rt.degraded;
          obs_failures = rt.failures;
          obs_replicas = replica_count rt;
          obs_breaker_transitions =
            Hashtbl.fold (fun _ br acc -> acc + Breaker.transitions br) rt.breakers 0;
          obs_link_drops =
            (match inj with
            | None -> 0
            | Some i -> Injector.drops i rt.spec.Spec.tier_name);
        })
      rts
  in
  {
    latency = Stats.summary lat;
    latency_raw = Stats.to_array lat;
    achieved_qps = float_of_int !completed /. elapsed;
    completed = !completed;
    errors = !client_errors;
    client_timeouts = !client_timeouts;
    client_retries = !client_retries_used;
    elapsed;
    tiers;
    scale_events = List.rev !(sys.scale_log);
    timeline = tl;
    reqtrace = rq;
  }
