(** DES phase: serve load against measured request traces.

    Tiers run as processes with their profiled thread/network models
    (Fig. 3's skeleton): I/O-multiplexing workers on epoll sets, blocking
    thread-per-connection servers, or non-blocking pollers. Request work is
    replayed from {!Measure} traces — on-CPU segments contend on the
    scheduler, disk segments queue on the device, downstream RPC segments
    traverse sockets to other tiers. Latency distributions, achieved
    throughput and I/O bandwidth fall out of the simulation.

    The chaos layer rides on top: an optional {!Ditto_fault.Plan} degrades
    the run (tier crashes, CPU brown-outs, lossy links, partitions) while
    each tier's {!Spec.resilience} knobs — downstream timeouts, retries,
    circuit breakers, load shedding — decide how the skeleton fights back.
    All defaults are off, keeping the fault-free path bit-identical across
    pool sizes. *)

type load = {
  qps : float;  (** offered load *)
  connections : int;
  open_loop : bool;
      (** open loop (mutated/wrk2-style: arrivals never wait) vs closed
          loop (YCSB-style: one outstanding request per connection) *)
  duration : float;  (** simulated seconds of load *)
  client_timeout : float option;
      (** end-to-end request deadline at the load generator; a timed-out
          connection is torn down and replaced *)
  client_retries : int;  (** client-side retry budget after timeout/error *)
  profile : Rate.t option;
      (** rate profile shaping the offered load over time; [None] (or a
          {!Rate.is_constant} profile) leaves the arrival process — and the
          run's event stream — bit-identical to the pre-profile code *)
}

val load :
  ?connections:int ->
  ?open_loop:bool ->
  ?duration:float ->
  ?client_timeout:float ->
  ?client_retries:int ->
  ?profile:Rate.t ->
  qps:float ->
  unit ->
  load

type tier_obs = {
  obs_name : string;
  obs_latency : Ditto_util.Stats.summary;  (** server-side per-request latency *)
  obs_requests : int;
  obs_net_mbps : float;  (** machine NIC bandwidth during the run *)
  obs_disk_mbps : float;
  obs_timeouts : int;  (** downstream calls that hit [call_timeout] *)
  obs_retries : int;  (** downstream retry attempts *)
  obs_shed : int;  (** requests answered with an error by load shedding *)
  obs_degraded : int;  (** requests served in degraded mode (cheaper response) *)
  obs_failures : int;  (** handled requests that ended in an error reply *)
  obs_replicas : int;  (** replica count at teardown (1 without autoscaling) *)
  obs_breaker_transitions : int;  (** circuit-breaker state changes, all downstreams *)
  obs_link_drops : int;  (** messages the fault plan dropped leaving this tier *)
}

(** One autoscaler actuation, on the DES clock. Available on every run —
    no telemetry required — so tests and scorecards can compare replica
    trajectories directly. *)
type scale_event = { se_at : float; se_tier : string; se_from : int; se_to : int }

type result = {
  latency : Ditto_util.Stats.summary;  (** end-to-end, at the client (successes) *)
  latency_raw : float array;
  achieved_qps : float;
  completed : int;
  errors : int;  (** client requests that failed after exhausting retries *)
  client_timeouts : int;  (** client-side deadline expiries (pre-retry) *)
  client_retries : int;  (** client retry attempts used *)
  elapsed : float;
  tiers : tier_obs list;
  scale_events : scale_event list;
      (** chronological autoscaler actuations; empty when no tier has an
          {!Spec.autoscale} policy *)
  timeline : Ditto_obs.Timeseries.t option;
      (** windowed per-tier telemetry on the DES clock (plus a
          {!Ditto_obs.Timeseries.client_tier} end-to-end series and fault
          markers from the plan); [Some] only when
          {!Ditto_obs.Timeseries.enabled} was set when the run started.
          Enabling telemetry does not perturb any other field. *)
  reqtrace : Ditto_obs.Reqtrace.t option;
      (** span trees of deterministically sampled requests, finalized
          ({!Ditto_obs.Reqtrace.traces} is ready); [Some] only when
          {!Ditto_obs.Reqtrace.enabled} was set when the run started.
          Enabling request tracing does not perturb any other field. *)
}

val run :
  engine:Ditto_sim.Engine.t ->
  app:Spec.t ->
  placement:(string -> Machine.t) ->
  results:(string -> Measure.tier_result) ->
  seed:int ->
  ?net_interference_gbps:float ->
  ?fault_plan:Ditto_fault.Plan.t ->
  load ->
  result
(** Serve [load] against the deployed app. [net_interference_gbps] runs an
    iperf-style competing stream through the entry machine's NIC (Fig. 10's
    network interference). [fault_plan] arms a {!Ditto_fault.Injector}
    against this run's engine clock; the injector's RNG is derived from
    [seed], so a (seed, plan) pair degrades the run deterministically. *)
