(** Application specifications — the runnable form of a service.

    Both "original" model applications ({!Ditto_apps}) and Ditto-generated
    synthetic clones ({!Ditto_gen}) are values of this type; the runner,
    profilers and validators treat them identically, so the cloning
    pipeline never inspects a spec's internals, only its dynamic behaviour. *)

(** One step of a request handler's work. *)
type op =
  | Compute of Ditto_isa.Block.t * int
      (** execute a user-space instruction block for N iterations *)
  | Syscall of Ditto_os.Syscall.kind
      (** kernel work only (gettime, futex, mmap, nanosleep...) *)
  | File_read of { offset : int; bytes : int; random : bool }
      (** pread: kernel work + page cache + disk on miss *)
  | File_write of { bytes : int }
  | Call of { target : string; req_bytes : int; resp_bytes : int }
      (** downstream RPC to another tier *)

(** Server-side network model (§4.3.1). *)
type server_model = Blocking | Nonblocking | Io_multiplexing

(** Client-side model for downstream calls: synchronous calls block the
    worker; asynchronous ones overlap all downstream calls of a request. *)
type client_model = Sync_client | Async_client

type thread_model = {
  workers : int;  (** worker threads (long-lived) at the profiled config *)
  dynamic_threads : bool;
      (** thread-per-connection services (e.g. MongoDB) scale threads with
          concurrent connections *)
  background : (string * float) list;
      (** timer-triggered background threads: (name, period seconds) *)
}

(** Utilization-triggered graceful degradation: past the queue threshold a
    tier serves a cheaper response (scaled CPU, dropped think-time sleeps,
    truncated reply) instead of shedding outright. *)
type degrade = {
  degrade_queue : int;  (** arm past this per-replica backlog *)
  degrade_cpu_scale : float;  (** scale on-CPU segments, in (0,1] *)
  degrade_skip_sleeps : bool;  (** drop [Sleep] trace segments *)
  degrade_response_scale : float;  (** scale the response bytes, in (0,1] *)
}

val degraded :
  ?queue:int ->
  ?cpu_scale:float ->
  ?skip_sleeps:bool ->
  ?response_scale:float ->
  unit ->
  degrade

(** RPC-resilience knobs of a tier's skeleton (the chaos layer, DESIGN.md
    §9). The defaults ({!no_resilience}) disable every mechanism, keeping
    the fault-free execution path — and therefore bit-identity across pool
    sizes — exactly as before. *)
type resilience = {
  call_timeout : float option;  (** per-downstream-call deadline, seconds *)
  max_retries : int;  (** retry budget per downstream call *)
  retry_backoff : float;
      (** base backoff, seconds; attempt n sleeps [backoff * 2^n] plus
          deterministic jitter drawn from the tier's seeded RNG *)
  breaker : Ditto_fault.Breaker.config option;
      (** per-downstream circuit breaker; open = fail fast *)
  queue_bound : int option;
      (** shed (answer with an error) when the accept queue + in-flight
          requests exceed this (scaled by the live replica count when the
          tier autoscales) *)
  degrade : degrade option;  (** serve degraded before shedding; default off *)
}

val no_resilience : resilience

val resilient :
  ?call_timeout:float ->
  ?max_retries:int ->
  ?retry_backoff:float ->
  ?breaker:Ditto_fault.Breaker.config ->
  ?queue_bound:int ->
  ?degrade:degrade ->
  unit ->
  resilience
(** All mechanisms on, with sensible defaults (10 ms timeout, 2 retries,
    2 ms base backoff, default breaker, queue bound 512; degradation stays
    off unless given). *)

(** Horizontal-autoscaling policy: a per-tier queue-depth PI controller
    evaluated on the DES clock (DESIGN.md section 14). Deterministic: pure
    arithmetic on backlog reads, no RNG draws, so two runs of the same
    (seed, policy) pair scale at identical simulated times. *)
type autoscale = {
  as_min_replicas : int;
  as_max_replicas : int;
  as_target_queue : float;  (** per-replica backlog setpoint *)
  as_kp : float;  (** proportional gain on normalised error *)
  as_ki : float;  (** integral gain; integral is clamped (anti-windup) *)
  as_interval : float;  (** controller period, simulated seconds *)
  as_cooldown : float;  (** min gap between scale events *)
  as_deadband : float;  (** hysteresis: no action within this error band *)
}

val autoscale :
  ?min_replicas:int ->
  ?max_replicas:int ->
  ?target_queue:float ->
  ?kp:float ->
  ?ki:float ->
  ?interval:float ->
  ?cooldown:float ->
  ?deadband:float ->
  unit ->
  autoscale

type tier = {
  tier_name : string;
  server_model : server_model;
  client_model : client_model;
  thread_model : thread_model;
  handler : Ditto_util.Rng.t -> int -> op list;
      (** the request-handling body: given a request id, the work list *)
  background_handler : (Ditto_util.Rng.t -> op list) option;
  request_bytes : int;  (** typical inbound request size *)
  response_bytes : int;
  heap_bytes : int;
  shared_bytes : int;
  file_bytes : int;  (** on-disk dataset size; 0 = no disk component *)
  resilience : resilience;
  autoscale : autoscale option;  (** horizontal scaling policy; default off *)
}

val tier :
  ?server_model:server_model ->
  ?client_model:client_model ->
  ?workers:int ->
  ?dynamic_threads:bool ->
  ?background:(string * float) list ->
  ?background_handler:(Ditto_util.Rng.t -> op list) ->
  ?request_bytes:int ->
  ?response_bytes:int ->
  ?heap_bytes:int ->
  ?shared_bytes:int ->
  ?file_bytes:int ->
  ?resilience:resilience ->
  ?autoscale:autoscale ->
  name:string ->
  handler:(Ditto_util.Rng.t -> int -> op list) ->
  unit ->
  tier

type t = {
  app_name : string;
  tiers : tier list;
  entry : string;
  page_cache_hint : int option;
      (** deployment hint: OS page-cache bytes needed to reproduce the
          original's cache-vs-disk balance (e.g. MongoDB's dataset exceeds
          it, making the service disk-bound) *)
}

val make : name:string -> ?entry:string -> ?page_cache_hint:int -> tier list -> t
(** [entry] defaults to the first tier. *)

val with_resilience : resilience -> t -> t
(** Deployment-level overlay: the same resilience knobs on every tier (used
    by [Pipeline.validate_under] so original and clone face failures with
    identical armour). *)

val with_autoscale : autoscale -> t -> t
(** Deployment-level overlay: the same scaling policy on every tier, so
    original and clone scale out under identical rules. *)

val has_autoscale : t -> bool

val find_tier : t -> string -> tier
val is_microservice : t -> bool

val server_model_name : server_model -> string
val client_model_name : client_model -> string
