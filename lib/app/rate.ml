module J = Ditto_util.Jsonx
module Rng = Ditto_util.Rng
module Dist = Ditto_util.Dist

(* Rate profiles as data, mirroring Ditto_fault.Plan: a profile is a
   multiplier over the load's base qps, evaluated on the DES clock
   relative to the start of load. Shapes compose multiplicatively, so
   "diurnal swing plus a flash crowd" is just both terms in the list and
   the identity profile is the empty product. *)

type term =
  | Constant
  | Sinusoid of { amplitude : float; period : float; phase : float }
  | Ramp of { to_mult : float; over : float }
  | Spike of { at : float; rise : float; hold : float; fall : float; mult : float }
  | Piecewise of (float * float) list

type burst = { batch_mean : float }
type t = { profile_name : string; shape : term list; burst : burst option }

let check_term name term =
  let bad fmt = Printf.ksprintf invalid_arg ("Ditto_app.Rate %S: " ^^ fmt) name in
  match term with
  | Constant -> ()
  | Sinusoid { amplitude; period; phase = _ } ->
      if amplitude < 0.0 || amplitude > 1.0 then
        bad "sinusoid amplitude %g outside [0,1] (rate would go negative)" amplitude;
      if period <= 0.0 then bad "sinusoid period %g must be positive" period
  | Ramp { to_mult; over } ->
      if to_mult < 0.0 then bad "ramp target multiplier %g is negative" to_mult;
      if over <= 0.0 then bad "ramp duration %g must be positive" over
  | Spike { at; rise; hold; fall; mult } ->
      if at < 0.0 then bad "spike at negative time %g" at;
      if rise < 0.0 || hold < 0.0 || fall < 0.0 then
        bad "spike rise/hold/fall must be non-negative (got %g/%g/%g)" rise hold fall;
      if rise +. hold +. fall <= 0.0 then bad "spike has zero extent";
      if mult < 0.0 then bad "spike multiplier %g is negative" mult
  | Piecewise steps ->
      if steps = [] then bad "piecewise profile has no steps";
      List.iter
        (fun (at, m) ->
          if at < 0.0 then bad "piecewise step at negative time %g" at;
          if m < 0.0 then bad "piecewise multiplier %g is negative" m)
        steps;
      let rec sorted = function
        | (a, _) :: ((b, _) :: _ as rest) ->
            if b <= a then bad "piecewise steps not strictly increasing (%g then %g)" a b;
            sorted rest
        | _ -> ()
      in
      sorted steps

let check t =
  if t.profile_name = "" then invalid_arg "Ditto_app.Rate: empty profile name";
  List.iter (check_term t.profile_name) t.shape;
  match t.burst with
  | Some { batch_mean } ->
      if batch_mean < 1.0 then
        Printf.ksprintf invalid_arg "Ditto_app.Rate %S: burst batch mean %g < 1" t.profile_name
          batch_mean
  | None -> ()

let make ?burst ~name shape =
  let t = { profile_name = name; shape; burst } in
  check t;
  t

let constant = { profile_name = "constant"; shape = []; burst = None }

let term_mult term t =
  match term with
  | Constant -> 1.0
  | Sinusoid { amplitude; period; phase } ->
      1.0 +. (amplitude *. sin ((2.0 *. Float.pi *. t /. period) +. phase))
  | Ramp { to_mult; over } ->
      if t <= 0.0 then 1.0
      else if t >= over then to_mult
      else 1.0 +. ((to_mult -. 1.0) *. t /. over)
  | Spike { at; rise; hold; fall; mult } ->
      if t <= at then 1.0
      else if t < at +. rise then 1.0 +. ((mult -. 1.0) *. (t -. at) /. rise)
      else if t <= at +. rise +. hold then mult
      else if fall > 0.0 && t < at +. rise +. hold +. fall then
        mult +. ((1.0 -. mult) *. (t -. at -. rise -. hold) /. fall)
      else 1.0
  | Piecewise steps ->
      let rec last acc = function
        | (at, m) :: rest when at <= t -> last m rest
        | _ -> acc
      in
      last 1.0 steps

let mult_at t ~t:rel =
  Float.max 0.0 (List.fold_left (fun acc term -> acc *. term_mult term rel) 1.0 t.shape)

let term_peak = function
  | Constant -> 1.0
  | Sinusoid { amplitude; _ } -> 1.0 +. amplitude
  | Ramp { to_mult; _ } -> Float.max 1.0 to_mult
  | Spike { mult; _ } -> Float.max 1.0 mult
  | Piecewise steps -> List.fold_left (fun acc (_, m) -> Float.max acc m) 1.0 steps

(* Upper bound: the per-term peaks need not align in time, so the product
   of peaks bounds (and for canonical single-term profiles equals) the
   true peak multiplier. *)
let peak_mult t = List.fold_left (fun acc term -> acc *. term_peak term) 1.0 t.shape

let is_constant t =
  t.burst = None && List.for_all (fun term -> term = Constant) t.shape

let mean_mult t ~duration =
  if is_constant t then 1.0
  else begin
    let n = 1024 in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. mult_at t ~t:((float_of_int i +. 0.5) *. duration /. float_of_int n)
    done;
    !acc /. float_of_int n
  end

(* Profile algebra: multiplicative composition and scalar scaling, both
   closed over the JSON grammar below. *)

let compose ?name a b =
  let name =
    match name with Some n -> n | None -> a.profile_name ^ "+" ^ b.profile_name
  in
  let burst =
    match (a.burst, b.burst) with
    | (Some _ as x), _ -> x
    | None, x -> x
  in
  make ?burst ~name (a.shape @ b.shape)

let scale ?name k t =
  if k < 0.0 then invalid_arg "Ditto_app.Rate.scale: negative factor";
  let name = match name with Some n -> n | None -> t.profile_name in
  make ?burst:t.burst ~name (Piecewise [ (0.0, k) ] :: t.shape)

(* --- Arrival sampling -------------------------------------------------

   Open-loop arrivals are an inhomogeneous Poisson process thinned per
   interval: the gap is drawn exponentially at the rate in force when the
   previous arrival fired (rate changes within one gap are picked up at
   the next draw, which at simulation rates means within microseconds).
   Bursty profiles batch arrivals geometrically and stretch the gap by
   the batch mean so the offered rate is preserved. One RNG draw per gap
   plus one per batch — no per-client state, so millions of simulated
   users cost nothing beyond the arrivals themselves. *)

type arrival = { gap : float; batch : int }

let next_arrival t rng ~base_qps ~t:rel =
  let rate = Float.max 1e-6 (base_qps *. mult_at t ~t:rel) in
  match t.burst with
  | None -> { gap = Dist.exponential rng ~mean:(1.0 /. rate); batch = 1 }
  | Some { batch_mean } ->
      let gap = Dist.exponential rng ~mean:(batch_mean /. rate) in
      { gap; batch = Dist.geometric rng ~mean:batch_mean }

(* JSON grammar (DESIGN.md §14):
   { "name": "...",
     "shape": [ { "kind": "constant" }
              | { "kind": "sinusoid", "amplitude": a, "period": s, "phase": r }
              | { "kind": "ramp", "to": m, "over": s }
              | { "kind": "spike", "at": s, "rise": s, "hold": s, "fall": s, "mult": m }
              | { "kind": "piecewise", "steps": [[s, m], ...] } ],
     "burst": { "batch_mean": m } }            (burst is optional) *)

let term_to_json = function
  | Constant -> J.Obj [ ("kind", J.Str "constant") ]
  | Sinusoid { amplitude; period; phase } ->
      J.Obj
        [
          ("kind", J.Str "sinusoid");
          ("amplitude", J.Num amplitude);
          ("period", J.Num period);
          ("phase", J.Num phase);
        ]
  | Ramp { to_mult; over } ->
      J.Obj [ ("kind", J.Str "ramp"); ("to", J.Num to_mult); ("over", J.Num over) ]
  | Spike { at; rise; hold; fall; mult } ->
      J.Obj
        [
          ("kind", J.Str "spike");
          ("at", J.Num at);
          ("rise", J.Num rise);
          ("hold", J.Num hold);
          ("fall", J.Num fall);
          ("mult", J.Num mult);
        ]
  | Piecewise steps ->
      J.Obj
        [
          ("kind", J.Str "piecewise");
          ("steps", J.list (fun (at, m) -> J.List [ J.Num at; J.Num m ]) steps);
        ]

let to_json t =
  J.Obj
    ([ ("name", J.Str t.profile_name); ("shape", J.list term_to_json t.shape) ]
    @
    match t.burst with
    | None -> []
    | Some { batch_mean } -> [ ("burst", J.Obj [ ("batch_mean", J.Num batch_mean) ]) ])

let term_of_json j =
  let num field = J.to_float (J.member field j) in
  match J.to_str (J.member "kind" j) with
  | "constant" -> Constant
  | "sinusoid" -> Sinusoid { amplitude = num "amplitude"; period = num "period"; phase = num "phase" }
  | "ramp" -> Ramp { to_mult = num "to"; over = num "over" }
  | "spike" ->
      Spike { at = num "at"; rise = num "rise"; hold = num "hold"; fall = num "fall"; mult = num "mult" }
  | "piecewise" ->
      Piecewise
        (J.to_list (J.member "steps" j)
        |> List.map (fun s ->
               match J.to_list s with
               | [ at; m ] -> (J.to_float at, J.to_float m)
               | _ -> raise (J.Parse_error "rate profile: piecewise step is not a [t, mult] pair")))
  | k -> raise (J.Parse_error (Printf.sprintf "rate profile: unknown shape kind %S" k))

let of_json json =
  let name = J.to_str (J.member "name" json) in
  let shape = J.to_list (J.member "shape" json) |> List.map term_of_json in
  let burst =
    match J.member "burst" json with
    | J.Null -> None
    | b -> Some { batch_mean = J.to_float (J.member "batch_mean" b) }
  in
  make ?burst ~name shape

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_json (J.of_string s)

let save ~path t =
  let oc = open_out path in
  output_string oc (J.to_string ~pretty:true (to_json t));
  output_char oc '\n';
  close_out oc
