(** Rate profiles as data: open-loop offered load over the DES clock.

    A profile multiplies the load's base qps as a function of time since
    the start of load. Shapes compose multiplicatively (the algebra's
    identity is the empty product, {!constant}), so a diurnal swing with
    a flash crowd riding on it is just both terms in {!make}'s list.
    An optional burst term batches arrivals geometrically while
    preserving the offered rate — arrival-process generation, no
    per-client state, so "millions of simulated users" is purely a rate.

    Sampling draws from whatever {!Ditto_util.Rng} stream the caller
    dedicates to it; {!Service} uses a stream derived from the run seed
    at a fixed offset so enabling a profile never perturbs tier RNGs. *)

type term =
  | Constant
  | Sinusoid of { amplitude : float; period : float; phase : float }
      (** [1 + amplitude * sin (2 pi t / period + phase)]; amplitude in [0,1]. *)
  | Ramp of { to_mult : float; over : float }
      (** linear from 1 at t=0 to [to_mult] at [over], then held. *)
  | Spike of { at : float; rise : float; hold : float; fall : float; mult : float }
      (** flash crowd: 1 until [at], linear to [mult] over [rise], held
          for [hold], linear back to 1 over [fall]. *)
  | Piecewise of (float * float) list
      (** [(start, mult)] steps, strictly increasing starts; 1 before the
          first step. *)

type burst = { batch_mean : float }
type t = private { profile_name : string; shape : term list; burst : burst option }

val make : ?burst:burst -> name:string -> term list -> t
(** Validates (raises [Invalid_argument] on malformed shapes). *)

val check : t -> unit
val constant : t
(** The identity profile: a run under it is bit-identical to a run with
    no profile at all. *)

val mult_at : t -> t:float -> float
(** Multiplier at [t] seconds after the start of load; clamped at 0. *)

val peak_mult : t -> float
(** Upper bound on {!mult_at} (product of per-term peaks; exact for the
    canonical single-term profiles). *)

val mean_mult : t -> duration:float -> float
(** Numeric mean of {!mult_at} over [0, duration]. *)

val is_constant : t -> bool
(** True iff the profile cannot change the arrival process: every term is
    [Constant] and there is no burst. *)

val compose : ?name:string -> t -> t -> t
(** Multiplicative composition; the left burst wins when both have one. *)

val scale : ?name:string -> float -> t -> t
(** Scales the whole profile by a constant factor [>= 0]. *)

type arrival = { gap : float; batch : int }

val next_arrival : t -> Ditto_util.Rng.t -> base_qps:float -> t:float -> arrival
(** Gap to the next arrival (batch) given the rate in force at [t], and
    the number of requests arriving together. One RNG draw per gap, plus
    one per batch when bursty. *)

(** {1 JSON} — same discipline as {!Ditto_fault.Plan} (DESIGN.md section 14) *)

val to_json : t -> Ditto_util.Jsonx.t
val of_json : Ditto_util.Jsonx.t -> t
val load : string -> t
val save : path:string -> t -> unit
