open Ditto_uarch

type config = {
  platform : Platform.t;
  cluster : bool;
  requests : int;
  seed : int;
  syscall_scale : float;
  stressor : (Ditto_util.Rng.t -> int -> Spec.op list) option;
  stressor_placement : [ `Same_core | `Other_core ];
  smt_pressure : float;
  net_interference_gbps : float;
  cores : int option;
  page_cache_bytes : int option;
  fault_plan : Ditto_fault.Plan.t option;
}

let config ?(cluster = false) ?(requests = 220) ?(seed = 42) ?(syscall_scale = 0.25) ?stressor
    ?(stressor_placement = `Same_core) ?(smt_pressure = 1.0) ?(net_interference_gbps = 0.0)
    ?cores ?page_cache_bytes ?fault_plan platform =
  {
    platform;
    cluster;
    requests;
    seed;
    syscall_scale;
    stressor;
    stressor_placement;
    smt_pressure;
    net_interference_gbps;
    cores;
    page_cache_bytes;
    fault_plan;
  }

let fault_timeouts_c = Ditto_obs.Obs.Metrics.counter "fault.timeouts"
let fault_retries_c = Ditto_obs.Obs.Metrics.counter "fault.retries"
let fault_shed_c = Ditto_obs.Obs.Metrics.counter "fault.shed"
let fault_drops_c = Ditto_obs.Obs.Metrics.counter "fault.link_drops"

type output = {
  app : Spec.t;
  per_tier : (string * Metrics.t) list;
  end_to_end : Ditto_util.Stats.summary;
  service : Service.result;
  measured : (string * Measure.tier_result) list;
}

(* Mean per-worker idle gap between requests: drives how much timer/idle
   kernel housekeeping pollutes the frontend. Clamped: past ~5ms more idle
   does not add per-request pollution. *)
let estimate_idle_per_request ~qps ~workers =
  if qps <= 0.0 then 5e-3
  else Float.min 5e-3 (float_of_int (max 1 workers) /. qps *. 0.8)

(* Measurement-phase memo.

   The measurement phase is a deterministic function of (spec, hosted
   tiers, platform, core count, page-cache size, measure-config scalars,
   seed, request count): it runs synchronously on the machine's cores and
   never touches the DES engine, and the service phase reads only the
   returned traces/counters (never the machine's caches or page cache).
   So identical keys — e.g. the same app re-validated under a different
   load whose idle estimate clamps to the same value — can reuse the
   measured tier results outright. Results are shared by reference; all
   consumers treat counters and traces as read-only.

   Specs contain closures, so they are identified physically via a
   domain-local uid registry (uids are monotonic and never reused, so a
   dropped registration only strands a cache entry for FIFO eviction).
   Skipped whenever a stressor is configured (the interference stream has
   its own RNG draw order) or the profiler is sampling (a memo hit would
   silently drop the run's profile). *)
let spec_registry_key : (int ref * (Spec.t * int) list ref) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> (ref 0, ref []))

let spec_uid (app : Spec.t) =
  let next, reg = Domain.DLS.get spec_registry_key in
  match List.find_opt (fun (s, _) -> s == app) !reg with
  | Some (_, uid) -> uid
  | None ->
      let uid = !next in
      incr next;
      if List.length !reg >= 256 then
        (* Keep the most recent registrations; stranded uids are never
           reused so stale cache entries just age out. *)
        reg := (app, uid) :: List.filteri (fun i _ -> i < 64) !reg
      else reg := (app, uid) :: !reg;
      uid

type measure_key = {
  mk_spec : int;
  mk_tiers : string list;
  mk_platform : Platform.t;
  mk_ncores : int;
  mk_page_cache : int option;
  mk_syscall_scale : float;
  mk_idle : float;
  mk_smt : float;
  mk_seed : int;
  mk_requests : int;
}

let measure_memo_key : (measure_key, (string * Measure.tier_result) list) Memo.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Memo.create ~max_entries:64 ())

let measure_memo_stats () = Memo.stats (Domain.DLS.get measure_memo_key)

let run_inner cfg ~load (app : Spec.t) =
  let engine = Ditto_sim.Engine.create () in
  Ditto_sim.Engine.set_profile_label engine app.Spec.app_name;
  let tiers = app.Spec.tiers in
  let page_cache_bytes =
    match cfg.page_cache_bytes with Some b -> Some b | None -> app.Spec.page_cache_hint
  in
  let make_machine () = Machine.create ?page_cache_bytes ?cores:cfg.cores engine cfg.platform in
  let placements =
    if cfg.cluster then List.map (fun (t : Spec.tier) -> (t.Spec.tier_name, make_machine ())) tiers
    else begin
      let m = make_machine () in
      List.map (fun (t : Spec.tier) -> (t.Spec.tier_name, m)) tiers
    end
  in
  let placement name = List.assoc name placements in
  let spaces =
    List.mapi
      (fun i (t : Spec.tier) ->
        ( t.Spec.tier_name,
          Layout.space ~tier_index:i ~heap_bytes:t.Spec.heap_bytes
            ~shared_bytes:t.Spec.shared_bytes ))
      tiers
  in
  (* Group tiers by machine for the measurement phase. *)
  let machines =
    List.fold_left
      (fun acc (_, m) -> if List.exists (fun m' -> m' == m) acc then acc else acc @ [ m ])
      [] placements
  in
  let avg_workers =
    let total =
      List.fold_left (fun a (t : Spec.tier) -> a + t.Spec.thread_model.Spec.workers) 0 tiers
    in
    max 1 (total / List.length tiers)
  in
  let mcfg =
    {
      Measure.default_config with
      Measure.syscall_scale = cfg.syscall_scale;
      idle_per_request = estimate_idle_per_request ~qps:load.Service.qps ~workers:avg_workers;
      stressor = cfg.stressor;
      stressor_placement = cfg.stressor_placement;
      smt_pressure = cfg.smt_pressure;
    }
  in
  let memoizable = cfg.stressor = None && not (Ditto_obs.Profiler.enabled ()) in
  let measured =
    Ditto_obs.Obs.Span.with_span ~name:"runner.measure" (fun () ->
        List.concat_map
          (fun m ->
            let hosted =
              List.filter_map
                (fun (t : Spec.tier) ->
                  if placement t.Spec.tier_name == m then
                    Some (t, List.assoc t.Spec.tier_name spaces)
                  else None)
                tiers
            in
            if hosted = [] then []
            else begin
              let do_measure () =
                Measure.run ~config:mcfg ~machine:m ~seed:cfg.seed ~requests:cfg.requests hosted
                |> List.map (fun (r : Measure.tier_result) -> (r.Measure.tier.Spec.tier_name, r))
              in
              if not memoizable then do_measure ()
              else
                let key =
                  {
                    mk_spec = spec_uid app;
                    mk_tiers = List.map (fun ((t : Spec.tier), _) -> t.Spec.tier_name) hosted;
                    mk_platform = cfg.platform;
                    mk_ncores = Machine.ncores m;
                    mk_page_cache = page_cache_bytes;
                    mk_syscall_scale = mcfg.Measure.syscall_scale;
                    mk_idle = mcfg.Measure.idle_per_request;
                    mk_smt = mcfg.Measure.smt_pressure;
                    mk_seed = cfg.seed;
                    mk_requests = cfg.requests;
                  }
                in
                Memo.find_or_add (Domain.DLS.get measure_memo_key) key do_measure
            end)
          machines)
  in
  let results name = List.assoc name measured in
  let service =
    Ditto_obs.Obs.Span.with_span ~name:"runner.service" (fun () ->
        let r =
          Service.run ~engine ~app ~placement ~results ~seed:(cfg.seed + 1)
            ~net_interference_gbps:cfg.net_interference_gbps ?fault_plan:cfg.fault_plan load
        in
        (match cfg.fault_plan with
        | None -> ()
        | Some plan ->
            let sum f = List.fold_left (fun a o -> a + f o) 0 r.Service.tiers in
            Ditto_obs.Obs.Span.add_attr "chaos_plan" (Str plan.Ditto_fault.Plan.plan_name);
            Ditto_obs.Obs.Span.add_attr "chaos_errors" (Int r.Service.errors);
            Ditto_obs.Obs.Span.add_attr "chaos_shed" (Int (sum (fun o -> o.Service.obs_shed)));
            Ditto_obs.Obs.Span.add_attr "chaos_retries"
              (Int (r.Service.client_retries + sum (fun o -> o.Service.obs_retries)));
            Ditto_obs.Obs.Span.add_attr "chaos_timeouts"
              (Int (r.Service.client_timeouts + sum (fun o -> o.Service.obs_timeouts)));
            Ditto_obs.Obs.Metrics.add fault_timeouts_c
              (r.Service.client_timeouts + sum (fun o -> o.Service.obs_timeouts));
            Ditto_obs.Obs.Metrics.add fault_retries_c
              (r.Service.client_retries + sum (fun o -> o.Service.obs_retries));
            Ditto_obs.Obs.Metrics.add fault_shed_c (sum (fun o -> o.Service.obs_shed));
            Ditto_obs.Obs.Metrics.add fault_drops_c (sum (fun o -> o.Service.obs_link_drops)));
        r)
  in
  let per_tier =
    List.map
      (fun (t : Spec.tier) ->
        let name = t.Spec.tier_name in
        let r = results name in
        let c = r.Measure.counters in
        let obs =
          List.find (fun o -> o.Service.obs_name = name) service.Service.tiers
        in
        let lat =
          (* Single-tier services are measured at the client, like the
             paper's load generators; tiers of a microservice are measured
             server-side. *)
          if List.length tiers = 1 then service.Service.latency else obs.Service.obs_latency
        in
        ( name,
          {
            Metrics.label = Printf.sprintf "%s/%s" app.Spec.app_name name;
            qps = service.Service.achieved_qps;
            ipc = Counters.ipc c;
            branch_miss_rate = Counters.branch_miss_rate c;
            l1i_miss_rate = Counters.l1i_miss_rate c;
            l1d_miss_rate = Counters.l1d_miss_rate c;
            l2_miss_rate = Counters.l2_miss_rate c;
            llc_miss_rate = Counters.llc_miss_rate c;
            net_mbps = obs.Service.obs_net_mbps;
            disk_mbps = obs.Service.obs_disk_mbps;
            lat_avg = lat.Ditto_util.Stats.mean;
            lat_p50 = lat.Ditto_util.Stats.p50;
            lat_p95 = lat.Ditto_util.Stats.p95;
            lat_p99 = lat.Ditto_util.Stats.p99;
            topdown = Counters.topdown c;
            counters = c;
            faults =
              {
                Metrics.timeouts = obs.Service.obs_timeouts;
                retries = obs.Service.obs_retries;
                shed = obs.Service.obs_shed;
                failures = obs.Service.obs_failures;
                breaker_transitions = obs.Service.obs_breaker_transitions;
                link_drops = obs.Service.obs_link_drops;
              };
          } ))
      tiers
  in
  (* Both phases are done and every consumer reads results through the
     returned traces/counters, so the machines can rejoin the free pool.
     (On an exception the machines are simply dropped — correct, just not
     reused.) *)
  List.iter Machine.release machines;
  { app; per_tier; end_to_end = service.Service.latency; service; measured }

let run cfg ~load (app : Spec.t) =
  if not (Ditto_obs.Obs.enabled ()) then run_inner cfg ~load app
  else
    Ditto_obs.Obs.Span.with_span ~name:"runner.run"
      ~attrs:
        [
          ("app", Str app.Spec.app_name);
          ("qps", Float load.Service.qps);
          ("requests", Int cfg.requests);
          ("seed", Int cfg.seed);
        ]
      (fun () -> run_inner cfg ~load app)

let tier_metrics output name =
  match List.assoc_opt name output.per_tier with
  | Some m -> m
  | None ->
      invalid_arg
        (Printf.sprintf "Runner.tier_metrics: unknown tier %S (known: %s)" name
           (String.concat ", " (List.map fst output.per_tier)))
