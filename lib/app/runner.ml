open Ditto_uarch

type config = {
  platform : Platform.t;
  cluster : bool;
  requests : int;
  seed : int;
  syscall_scale : float;
  stressor : (Ditto_util.Rng.t -> int -> Spec.op list) option;
  stressor_placement : [ `Same_core | `Other_core ];
  smt_pressure : float;
  net_interference_gbps : float;
  cores : int option;
  page_cache_bytes : int option;
  fault_plan : Ditto_fault.Plan.t option;
}

let config ?(cluster = false) ?(requests = 220) ?(seed = 42) ?(syscall_scale = 0.25) ?stressor
    ?(stressor_placement = `Same_core) ?(smt_pressure = 1.0) ?(net_interference_gbps = 0.0)
    ?cores ?page_cache_bytes ?fault_plan platform =
  {
    platform;
    cluster;
    requests;
    seed;
    syscall_scale;
    stressor;
    stressor_placement;
    smt_pressure;
    net_interference_gbps;
    cores;
    page_cache_bytes;
    fault_plan;
  }

let fault_timeouts_c = Ditto_obs.Obs.Metrics.counter "fault.timeouts"
let fault_retries_c = Ditto_obs.Obs.Metrics.counter "fault.retries"
let fault_shed_c = Ditto_obs.Obs.Metrics.counter "fault.shed"
let fault_drops_c = Ditto_obs.Obs.Metrics.counter "fault.link_drops"

type output = {
  app : Spec.t;
  per_tier : (string * Metrics.t) list;
  end_to_end : Ditto_util.Stats.summary;
  service : Service.result;
  measured : (string * Measure.tier_result) list;
}

(* Mean per-worker idle gap between requests: drives how much timer/idle
   kernel housekeeping pollutes the frontend. Clamped: past ~5ms more idle
   does not add per-request pollution. *)
let estimate_idle_per_request ~qps ~workers =
  if qps <= 0.0 then 5e-3
  else Float.min 5e-3 (float_of_int (max 1 workers) /. qps *. 0.8)

(* Measurement-phase memo.

   The measurement phase is a deterministic function of (spec, hosted
   tiers, platform, core count, page-cache size, measure-config scalars,
   seed, request count): it runs synchronously on the machine's cores and
   never touches the DES engine, and the service phase reads only the
   returned traces/counters (never the machine's caches or page cache).
   So identical keys — e.g. the same app re-validated under a different
   load whose idle estimate clamps to the same value — can reuse the
   measured tier results outright. Results are shared by reference; all
   consumers treat counters and traces as read-only.

   Specs contain closures, so they are identified physically via a
   domain-local uid registry (uids are monotonic and never reused, so a
   dropped registration only strands a cache entry for FIFO eviction).
   Skipped whenever a stressor is configured (the interference stream has
   its own RNG draw order) or the profiler is sampling (a memo hit would
   silently drop the run's profile). *)
let spec_registry_key : (int ref * (Spec.t * int) list ref) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> (ref 0, ref []))

let spec_uid (app : Spec.t) =
  let next, reg = Domain.DLS.get spec_registry_key in
  match List.find_opt (fun (s, _) -> s == app) !reg with
  | Some (_, uid) -> uid
  | None ->
      let uid = !next in
      incr next;
      if List.length !reg >= 256 then
        (* Keep the most recent registrations; stranded uids are never
           reused so stale cache entries just age out. *)
        reg := (app, uid) :: List.filteri (fun i _ -> i < 64) !reg
      else reg := (app, uid) :: !reg;
      uid

type measure_key = {
  mk_spec : int;
  mk_tiers : string list;
  mk_platform : Platform.t;
  mk_ncores : int;
  mk_page_cache : int option;
  mk_syscall_scale : float;
  mk_idle : float;
  mk_smt : float;
  mk_seed : int;
  mk_requests : int;
}

let measure_memo_key : (measure_key, (string * Measure.tier_result) list) Memo.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Memo.create ~max_entries:64 ())

let measure_memo_stats () = Memo.stats (Domain.DLS.get measure_memo_key)

(* Above this many tiers on one machine, the measurement phase is sharded
   across the Pool's domains. The threshold exceeds every hand-written app
   (social_network tops out around 30 tiers), so committed baselines keep
   their historical single-shard measurement bit-for-bit; only synthesized
   wide graphs take the sharded path. *)
let measure_shard_tiers = 32

let run_inner cfg ~load (app : Spec.t) =
  let tiers = app.Spec.tiers in
  let ntiers = List.length tiers in
  (* Pending events scale with workers + connections + in-flight requests:
     pre-size the heap so thousand-tier graphs never pay repeated array
     doubling inside the hot push path. *)
  let engine = Ditto_sim.Engine.create ~capacity:(256 + (64 * ntiers)) () in
  Ditto_sim.Engine.set_profile_label engine app.Spec.app_name;
  let page_cache_bytes =
    match cfg.page_cache_bytes with Some b -> Some b | None -> app.Spec.page_cache_hint
  in
  let make_machine () = Machine.create ?page_cache_bytes ?cores:cfg.cores engine cfg.platform in
  (* O(1) int/string-indexed routing: tier -> machine and tier -> space are
     hash lookups, never tier-list scans (those made wide graphs O(n^2)). *)
  let placement_tbl : (string, Machine.t) Hashtbl.t = Hashtbl.create (2 * ntiers) in
  let machines =
    if cfg.cluster then
      List.map
        (fun (t : Spec.tier) ->
          let m = make_machine () in
          Hashtbl.replace placement_tbl t.Spec.tier_name m;
          m)
        tiers
    else begin
      let m = make_machine () in
      List.iter (fun (t : Spec.tier) -> Hashtbl.replace placement_tbl t.Spec.tier_name m) tiers;
      [ m ]
    end
  in
  let placement name = Hashtbl.find placement_tbl name in
  let space_tbl : (string, Layout.space) Hashtbl.t = Hashtbl.create (2 * ntiers) in
  List.iteri
    (fun i (t : Spec.tier) ->
      Hashtbl.replace space_tbl t.Spec.tier_name
        (Layout.space ~tier_index:i ~heap_bytes:t.Spec.heap_bytes
           ~shared_bytes:t.Spec.shared_bytes))
    tiers;
  (* Group tiers by machine (uid-keyed, order-preserving) for measurement. *)
  let hosted_by_machine : (int, (Spec.tier * Layout.space) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (t : Spec.tier) ->
      let m = placement t.Spec.tier_name in
      let cell =
        match Hashtbl.find_opt hosted_by_machine m.Machine.uid with
        | Some c -> c
        | None ->
            let c = ref [] in
            Hashtbl.add hosted_by_machine m.Machine.uid c;
            c
      in
      cell := (t, Hashtbl.find space_tbl t.Spec.tier_name) :: !cell)
    tiers;
  let avg_workers =
    let total =
      List.fold_left (fun a (t : Spec.tier) -> a + t.Spec.thread_model.Spec.workers) 0 tiers
    in
    max 1 (total / List.length tiers)
  in
  let mcfg =
    {
      Measure.default_config with
      Measure.syscall_scale = cfg.syscall_scale;
      idle_per_request = estimate_idle_per_request ~qps:load.Service.qps ~workers:avg_workers;
      stressor = cfg.stressor;
      stressor_placement = cfg.stressor_placement;
      smt_pressure = cfg.smt_pressure;
    }
  in
  let memoizable = cfg.stressor = None && not (Ditto_obs.Profiler.enabled ()) in
  let app_uid = spec_uid app in
  let measure_on m ~seed hosted =
    let do_measure () =
      Measure.run ~config:mcfg ~machine:m ~seed ~requests:cfg.requests hosted
      |> List.map (fun (r : Measure.tier_result) -> (r.Measure.tier.Spec.tier_name, r))
    in
    if not memoizable then do_measure ()
    else
      let key =
        {
          mk_spec = app_uid;
          mk_tiers = List.map (fun ((t : Spec.tier), _) -> t.Spec.tier_name) hosted;
          mk_platform = cfg.platform;
          mk_ncores = Machine.ncores m;
          mk_page_cache = page_cache_bytes;
          mk_syscall_scale = mcfg.Measure.syscall_scale;
          mk_idle = mcfg.Measure.idle_per_request;
          mk_smt = mcfg.Measure.smt_pressure;
          mk_seed = seed;
          mk_requests = cfg.requests;
        }
      in
      Memo.find_or_add (Domain.DLS.get measure_memo_key) key do_measure
  in
  let measured =
    Ditto_obs.Obs.Span.with_span ~name:"runner.measure" (fun () ->
        List.concat_map
          (fun m ->
            let hosted =
              match Hashtbl.find_opt hosted_by_machine m.Machine.uid with
              | Some cell -> List.rev !cell
              | None -> []
            in
            if hosted = [] then []
            else if List.length hosted <= measure_shard_tiers then
              measure_on m ~seed:cfg.seed hosted
            else begin
              (* Wide graphs: shard the hosted tiers into fixed-size groups
                 and measure them across the Pool's domains, each shard on
                 its own scratch machine (per-domain machine pooling keeps
                 this cheap, and no mutable hardware state crosses domains).
                 Shard boundaries and seeds depend only on the tier list, so
                 results are bit-identical at any pool size. *)
              let shards = ref [] and cur = ref [] and k = ref 0 and si = ref 0 in
              List.iter
                (fun t ->
                  cur := t :: !cur;
                  incr k;
                  if !k = measure_shard_tiers then begin
                    shards := (!si, List.rev !cur) :: !shards;
                    incr si;
                    cur := [];
                    k := 0
                  end)
                hosted;
              if !cur <> [] then shards := (!si, List.rev !cur) :: !shards;
              let shards = List.rev !shards in
              let pool = Ditto_util.Pool.default () in
              Ditto_util.Pool.map pool
                (fun (si, shard) ->
                  let scratch_engine = Ditto_sim.Engine.create ~capacity:64 () in
                  let sm =
                    Machine.create ?page_cache_bytes ?cores:cfg.cores scratch_engine cfg.platform
                  in
                  let r = measure_on sm ~seed:(cfg.seed + (7919 * si)) shard in
                  Machine.release sm;
                  r)
                shards
              |> List.concat
            end)
          machines)
  in
  let measured_tbl : (string, Measure.tier_result) Hashtbl.t = Hashtbl.create (2 * ntiers) in
  List.iter (fun (name, r) -> Hashtbl.replace measured_tbl name r) measured;
  let results name = Hashtbl.find measured_tbl name in
  let service =
    Ditto_obs.Obs.Span.with_span ~name:"runner.service" (fun () ->
        let r =
          Service.run ~engine ~app ~placement ~results ~seed:(cfg.seed + 1)
            ~net_interference_gbps:cfg.net_interference_gbps ?fault_plan:cfg.fault_plan load
        in
        (match cfg.fault_plan with
        | None -> ()
        | Some plan ->
            let sum f = List.fold_left (fun a o -> a + f o) 0 r.Service.tiers in
            Ditto_obs.Obs.Span.add_attr "chaos_plan" (Str plan.Ditto_fault.Plan.plan_name);
            Ditto_obs.Obs.Span.add_attr "chaos_errors" (Int r.Service.errors);
            Ditto_obs.Obs.Span.add_attr "chaos_shed" (Int (sum (fun o -> o.Service.obs_shed)));
            Ditto_obs.Obs.Span.add_attr "chaos_retries"
              (Int (r.Service.client_retries + sum (fun o -> o.Service.obs_retries)));
            Ditto_obs.Obs.Span.add_attr "chaos_timeouts"
              (Int (r.Service.client_timeouts + sum (fun o -> o.Service.obs_timeouts)));
            Ditto_obs.Obs.Metrics.add fault_timeouts_c
              (r.Service.client_timeouts + sum (fun o -> o.Service.obs_timeouts));
            Ditto_obs.Obs.Metrics.add fault_retries_c
              (r.Service.client_retries + sum (fun o -> o.Service.obs_retries));
            Ditto_obs.Obs.Metrics.add fault_shed_c (sum (fun o -> o.Service.obs_shed));
            Ditto_obs.Obs.Metrics.add fault_drops_c (sum (fun o -> o.Service.obs_link_drops)));
        (if Spec.has_autoscale app then begin
           let sum f = List.fold_left (fun a o -> a + f o) 0 r.Service.tiers in
           Ditto_obs.Obs.Span.add_attr "scale_events"
             (Int (List.length r.Service.scale_events));
           Ditto_obs.Obs.Span.add_attr "degraded"
             (Int (sum (fun o -> o.Service.obs_degraded)));
           Ditto_obs.Obs.Span.add_attr "replicas_final"
             (Int (sum (fun o -> o.Service.obs_replicas)))
         end);
        (match r.Service.reqtrace with
        | None -> ()
        | Some c ->
            Ditto_obs.Obs.Span.add_attr "reqtrace_sampled" (Int (Ditto_obs.Reqtrace.sampled c));
            Ditto_obs.Obs.Span.add_attr "reqtrace_requests"
              (Int (Ditto_obs.Reqtrace.requests_seen c)));
        r)
  in
  (* The windowed timeline carries request counts; the measured
     instructions-per-request basis lets exporters derive rate-form uarch
     series (insts/s) per window without having counted during the DES
     phase. *)
  (match service.Service.timeline with
  | None -> ()
  | Some ts ->
      List.iter
        (fun (t : Spec.tier) ->
          let r = results t.Spec.tier_name in
          let insts_per_req =
            float_of_int r.Measure.counters.Counters.insts
            /. float_of_int (max 1 r.Measure.requests_measured)
          in
          Ditto_obs.Timeseries.set_rate_basis ts ~tier:t.Spec.tier_name ~insts_per_req)
        tiers);
  let obs_tbl : (string, Service.tier_obs) Hashtbl.t = Hashtbl.create (2 * ntiers) in
  List.iter (fun o -> Hashtbl.replace obs_tbl o.Service.obs_name o) service.Service.tiers;
  let per_tier =
    List.map
      (fun (t : Spec.tier) ->
        let name = t.Spec.tier_name in
        let r = results name in
        let c = r.Measure.counters in
        let obs = Hashtbl.find obs_tbl name in
        let lat =
          (* Single-tier services are measured at the client, like the
             paper's load generators; tiers of a microservice are measured
             server-side. *)
          if ntiers = 1 then service.Service.latency else obs.Service.obs_latency
        in
        ( name,
          {
            Metrics.label = Printf.sprintf "%s/%s" app.Spec.app_name name;
            qps = service.Service.achieved_qps;
            ipc = Counters.ipc c;
            branch_miss_rate = Counters.branch_miss_rate c;
            l1i_miss_rate = Counters.l1i_miss_rate c;
            l1d_miss_rate = Counters.l1d_miss_rate c;
            l2_miss_rate = Counters.l2_miss_rate c;
            llc_miss_rate = Counters.llc_miss_rate c;
            net_mbps = obs.Service.obs_net_mbps;
            disk_mbps = obs.Service.obs_disk_mbps;
            lat_avg = lat.Ditto_util.Stats.mean;
            lat_p50 = lat.Ditto_util.Stats.p50;
            lat_p95 = lat.Ditto_util.Stats.p95;
            lat_p99 = lat.Ditto_util.Stats.p99;
            topdown = Counters.topdown c;
            counters = c;
            faults =
              {
                Metrics.timeouts = obs.Service.obs_timeouts;
                retries = obs.Service.obs_retries;
                shed = obs.Service.obs_shed;
                failures = obs.Service.obs_failures;
                breaker_transitions = obs.Service.obs_breaker_transitions;
                link_drops = obs.Service.obs_link_drops;
              };
          } ))
      tiers
  in
  (* Both phases are done and every consumer reads results through the
     returned traces/counters, so the machines can rejoin the free pool.
     (On an exception the machines are simply dropped — correct, just not
     reused.) *)
  List.iter Machine.release machines;
  (* Drop the run's event storage so back-to-back wide clones never hold
     two peak-sized heaps at once. *)
  Ditto_sim.Engine.reset engine;
  { app; per_tier; end_to_end = service.Service.latency; service; measured }

let run cfg ~load (app : Spec.t) =
  if not (Ditto_obs.Obs.enabled ()) then run_inner cfg ~load app
  else
    Ditto_obs.Obs.Span.with_span ~name:"runner.run"
      ~attrs:
        [
          ("app", Str app.Spec.app_name);
          ("qps", Float load.Service.qps);
          ("requests", Int cfg.requests);
          ("seed", Int cfg.seed);
        ]
      (fun () -> run_inner cfg ~load app)

let tier_metrics output name =
  match List.assoc_opt name output.per_tier with
  | Some m -> m
  | None ->
      invalid_arg
        (Printf.sprintf "Runner.tier_metrics: unknown tier %S (known: %s)" name
           (String.concat ", " (List.map fst output.per_tier)))
