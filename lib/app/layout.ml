type space = {
  tier_index : int;
  code_base : int;
  heap : Ditto_isa.Block.region;
  shared : Ditto_isa.Block.region;
}

let max_tiers = 2048
let code_region_base = 0x1000_0000
let code_stride = 0x0100_0000 (* 16MB of text per tier *)
let heap_region_base = 0x8000_0000
let heap_stride = 0x2000_0000 (* 512MB window per tier *)

(* The legacy layout above holds 48 tiers: code [0x1000_0000, 0x4000_0000)
   and heap/shared [0x8000_0000, 0x6_8000_0000). Synthesized thousand-tier
   graphs spill into disjoint high regions — the first 48 indices keep the
   historical addresses bit-identical (committed baselines depend on them),
   indices beyond map above everything the legacy windows can reach. *)
let legacy_tiers = 48
let hi_code_region_base = 0x8_0000_0000 (* 32GB window: 2048 * 16MB text *)
let hi_heap_region_base = 0x10_0000_0000 (* 512MB heap+shared per tier, unbounded above *)

let space ~tier_index ~heap_bytes ~shared_bytes =
  assert (tier_index >= 0 && tier_index < max_tiers);
  let code_base, heap_base =
    if tier_index < legacy_tiers then
      ( code_region_base + (tier_index * code_stride),
        heap_region_base + (tier_index * heap_stride) )
    else
      let hi = tier_index - legacy_tiers in
      (hi_code_region_base + (hi * code_stride), hi_heap_region_base + (hi * heap_stride))
  in
  let shared_base = heap_base + (heap_stride / 2) in
  {
    tier_index;
    code_base;
    heap = Ditto_isa.Block.make_region ~base:heap_base ~bytes:heap_bytes ~shared:false;
    shared =
      Ditto_isa.Block.make_region ~base:shared_base ~bytes:(max 64 shared_bytes) ~shared:true;
  }

let code_window t ~index = t.code_base + (index * 4096)

let sub_heap t ~offset ~bytes =
  assert (offset + bytes <= t.heap.Ditto_isa.Block.region_bytes);
  Ditto_isa.Block.make_region
    ~base:(t.heap.Ditto_isa.Block.region_base + offset)
    ~bytes ~shared:false
