type op =
  | Compute of Ditto_isa.Block.t * int
  | Syscall of Ditto_os.Syscall.kind
  | File_read of { offset : int; bytes : int; random : bool }
  | File_write of { bytes : int }
  | Call of { target : string; req_bytes : int; resp_bytes : int }

type server_model = Blocking | Nonblocking | Io_multiplexing
type client_model = Sync_client | Async_client

type thread_model = {
  workers : int;
  dynamic_threads : bool;
  background : (string * float) list;
}

type degrade = {
  degrade_queue : int;
  degrade_cpu_scale : float;
  degrade_skip_sleeps : bool;
  degrade_response_scale : float;
}

let degraded ?(queue = 256) ?(cpu_scale = 0.5) ?(skip_sleeps = true) ?(response_scale = 0.25) () =
  if queue <= 0 then invalid_arg "Spec.degraded: non-positive queue threshold";
  if cpu_scale <= 0.0 || cpu_scale > 1.0 then invalid_arg "Spec.degraded: cpu_scale outside (0,1]";
  if response_scale <= 0.0 || response_scale > 1.0 then
    invalid_arg "Spec.degraded: response_scale outside (0,1]";
  {
    degrade_queue = queue;
    degrade_cpu_scale = cpu_scale;
    degrade_skip_sleeps = skip_sleeps;
    degrade_response_scale = response_scale;
  }

type resilience = {
  call_timeout : float option;
  max_retries : int;
  retry_backoff : float;
  breaker : Ditto_fault.Breaker.config option;
  queue_bound : int option;
  degrade : degrade option;
}

let no_resilience =
  {
    call_timeout = None;
    max_retries = 0;
    retry_backoff = 0.0;
    breaker = None;
    queue_bound = None;
    degrade = None;
  }

let resilient ?(call_timeout = 0.01) ?(max_retries = 2) ?(retry_backoff = 2e-3)
    ?(breaker = Ditto_fault.Breaker.default_config) ?(queue_bound = 512) ?degrade () =
  if call_timeout <= 0.0 then invalid_arg "Spec.resilient: non-positive call_timeout";
  if max_retries < 0 then invalid_arg "Spec.resilient: negative max_retries";
  if retry_backoff < 0.0 then invalid_arg "Spec.resilient: negative retry_backoff";
  if queue_bound <= 0 then invalid_arg "Spec.resilient: non-positive queue_bound";
  {
    call_timeout = Some call_timeout;
    max_retries;
    retry_backoff;
    breaker = Some breaker;
    queue_bound = Some queue_bound;
    degrade;
  }

(* Horizontal autoscaling policy: a queue-depth PI controller evaluated on
   the DES clock. Replica count is clamped to [min, max]; the controller
   only acts when the normalised error leaves the hysteresis deadband and
   the cooldown since the last scale event has elapsed, so small load
   wiggles do not thrash replicas. *)
type autoscale = {
  as_min_replicas : int;
  as_max_replicas : int;
  as_target_queue : float;
  as_kp : float;
  as_ki : float;
  as_interval : float;
  as_cooldown : float;
  as_deadband : float;
}

let autoscale ?(min_replicas = 1) ?(max_replicas = 4) ?(target_queue = 32.0) ?(kp = 1.0)
    ?(ki = 0.25) ?(interval = 0.05) ?(cooldown = 0.1) ?(deadband = 0.25) () =
  if min_replicas < 1 then invalid_arg "Spec.autoscale: min_replicas < 1";
  if max_replicas < min_replicas then invalid_arg "Spec.autoscale: max_replicas < min_replicas";
  if target_queue <= 0.0 then invalid_arg "Spec.autoscale: non-positive target_queue";
  if interval <= 0.0 then invalid_arg "Spec.autoscale: non-positive interval";
  if cooldown < 0.0 then invalid_arg "Spec.autoscale: negative cooldown";
  if deadband < 0.0 then invalid_arg "Spec.autoscale: negative deadband";
  {
    as_min_replicas = min_replicas;
    as_max_replicas = max_replicas;
    as_target_queue = target_queue;
    as_kp = kp;
    as_ki = ki;
    as_interval = interval;
    as_cooldown = cooldown;
    as_deadband = deadband;
  }

type tier = {
  tier_name : string;
  server_model : server_model;
  client_model : client_model;
  thread_model : thread_model;
  handler : Ditto_util.Rng.t -> int -> op list;
  background_handler : (Ditto_util.Rng.t -> op list) option;
  request_bytes : int;
  response_bytes : int;
  heap_bytes : int;
  shared_bytes : int;
  file_bytes : int;
  resilience : resilience;
  autoscale : autoscale option;
}

let tier ?(server_model = Io_multiplexing) ?(client_model = Sync_client) ?(workers = 4)
    ?(dynamic_threads = false) ?(background = []) ?background_handler ?(request_bytes = 128)
    ?(response_bytes = 512) ?(heap_bytes = 16 * 1024 * 1024) ?(shared_bytes = 1024 * 1024)
    ?(file_bytes = 0) ?(resilience = no_resilience) ?autoscale ~name ~handler () =
  {
    tier_name = name;
    server_model;
    client_model;
    thread_model = { workers; dynamic_threads; background };
    handler;
    background_handler;
    request_bytes;
    response_bytes;
    heap_bytes;
    shared_bytes;
    file_bytes;
    resilience;
    autoscale;
  }

type t = {
  app_name : string;
  tiers : tier list;
  entry : string;
  page_cache_hint : int option;
}

let make ~name ?entry ?page_cache_hint tiers =
  match tiers with
  | [] -> invalid_arg "Spec.make: no tiers"
  | first :: _ ->
      let entry = match entry with Some e -> e | None -> first.tier_name in
      { app_name = name; tiers; entry; page_cache_hint }

let with_resilience res t =
  { t with tiers = List.map (fun tier -> { tier with resilience = res }) t.tiers }

let with_autoscale pol t =
  { t with tiers = List.map (fun tier -> { tier with autoscale = Some pol }) t.tiers }

let has_autoscale t = List.exists (fun tier -> tier.autoscale <> None) t.tiers

let find_tier t name =
  match List.find_opt (fun tier -> tier.tier_name = name) t.tiers with
  | Some tier -> tier
  | None -> invalid_arg (Printf.sprintf "Spec.find_tier: unknown tier %S" name)

let is_microservice t = List.length t.tiers > 1

let server_model_name = function
  | Blocking -> "blocking"
  | Nonblocking -> "non-blocking"
  | Io_multiplexing -> "io-multiplexing"

let client_model_name = function
  | Sync_client -> "synchronous"
  | Async_client -> "asynchronous"
