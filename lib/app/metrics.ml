open Ditto_uarch

type faults = {
  timeouts : int;
  retries : int;
  shed : int;
  failures : int;
  breaker_transitions : int;
  link_drops : int;
}

let no_faults =
  { timeouts = 0; retries = 0; shed = 0; failures = 0; breaker_transitions = 0; link_drops = 0 }

let faults_total f =
  f.timeouts + f.retries + f.shed + f.failures + f.breaker_transitions + f.link_drops

type t = {
  label : string;
  qps : float;
  ipc : float;
  branch_miss_rate : float;
  l1i_miss_rate : float;
  l1d_miss_rate : float;
  l2_miss_rate : float;
  llc_miss_rate : float;
  net_mbps : float;
  disk_mbps : float;
  lat_avg : float;
  lat_p50 : float;
  lat_p95 : float;
  lat_p99 : float;
  topdown : Counters.topdown;
  counters : Counters.t;
  faults : faults;
}

let radar_axes = [ "IPC"; "Branch"; "L1i"; "L1d"; "L2"; "LLC"; "Net BW"; "Disk BW" ]

let radar_values t ~include_disk =
  let base =
    [
      ("IPC", t.ipc);
      ("Branch", t.branch_miss_rate);
      ("L1i", t.l1i_miss_rate);
      ("L1d", t.l1d_miss_rate);
      ("L2", t.l2_miss_rate);
      ("LLC", t.llc_miss_rate);
      ("Net BW", t.net_mbps);
    ]
  in
  if include_disk then base @ [ ("Disk BW", t.disk_mbps) ] else base

let error_pct ~actual ~synthetic =
  let include_disk = actual.disk_mbps > 0.0 in
  let a = radar_values actual ~include_disk and s = radar_values synthetic ~include_disk in
  List.filter_map
    (fun ((axis, av), (_, sv)) ->
      if av = 0.0 then None else Some (axis, 100.0 *. Float.abs (sv -. av) /. av))
    (List.combine a s)

let latency_error_pct ~actual ~synthetic =
  List.filter_map
    (fun (axis, av, sv) ->
      if av = 0.0 then None else Some (axis, 100.0 *. Float.abs (sv -. av) /. av))
    [
      ("avg", actual.lat_avg, synthetic.lat_avg);
      ("p95", actual.lat_p95, synthetic.lat_p95);
      ("p99", actual.lat_p99, synthetic.lat_p99);
    ]

let header =
  [ "run"; "qps"; "IPC"; "brMiss"; "L1i"; "L1d"; "L2"; "LLC"; "net MB/s"; "dsk MB/s";
    "avg ms"; "p95 ms"; "p99 ms" ]

let pct x = Printf.sprintf "%.2f%%" (100.0 *. x)
let ms x = Printf.sprintf "%.3f" (1e3 *. x)

let pp_row t =
  [
    t.label;
    Printf.sprintf "%.0f" t.qps;
    Printf.sprintf "%.3f" t.ipc;
    pct t.branch_miss_rate;
    pct t.l1i_miss_rate;
    pct t.l1d_miss_rate;
    pct t.l2_miss_rate;
    pct t.llc_miss_rate;
    Printf.sprintf "%.1f" t.net_mbps;
    Printf.sprintf "%.1f" t.disk_mbps;
    ms t.lat_avg;
    ms t.lat_p95;
    ms t.lat_p99;
  ]
