type t = {
  servers : int;
  mean : float;
  scv : float;
  samples_sorted : float array;
}

let of_samples ~servers samples =
  if Array.length samples = 0 then invalid_arg "Queueing.of_samples: empty";
  let n = float_of_int (Array.length samples) in
  let mean = Array.fold_left ( +. ) 0.0 samples /. n in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 samples /. n
  in
  let scv = if mean > 0.0 then var /. (mean *. mean) else 0.0 in
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  { servers = max 1 servers; mean; scv; samples_sorted = sorted }

let of_measure ~servers (r : Measure.tier_result) =
  of_samples ~servers (Array.map Measure.trace_cpu_seconds r.Measure.traces)

let service_mean t = t.mean
let service_scv t = t.scv
let utilization t ~qps = qps *. t.mean /. float_of_int t.servers
let capacity t = float_of_int t.servers /. t.mean

(* Erlang-C probability that an arrival waits, for M/M/c. *)
let erlang_c ~servers ~rho =
  let c = float_of_int servers in
  let a = rho *. c in
  let rec term k acc fact =
    if k > servers - 1 then (acc, fact)
    else begin
      let fact = if k = 0 then 1.0 else fact *. (a /. float_of_int k) in
      term (k + 1) (acc +. fact) fact
    end
  in
  let sum, fact_last = term 0 0.0 1.0 in
  let fact_c = fact_last *. (a /. c) in
  let top = fact_c /. (1.0 -. rho) in
  top /. (sum +. top)

let mean_wait t ~qps =
  let rho = utilization t ~qps in
  if rho >= 1.0 then infinity
  else if rho <= 0.0 then 0.0
  else begin
    let pw = erlang_c ~servers:t.servers ~rho in
    (* Allen–Cunneen: scale the M/M/c wait by (1 + scv)/2 for general
       service times. *)
    let mmc_wait = pw *. t.mean /. (float_of_int t.servers *. (1.0 -. rho)) in
    mmc_wait *. (1.0 +. t.scv) /. 2.0
  end

let mean_latency t ~qps = mean_wait t ~qps +. t.mean

let percentile_latency t ~qps q =
  if q < 0.0 || q > 100.0 then
    invalid_arg (Printf.sprintf "Queueing.percentile_latency: quantile %g not in [0, 100]" q);
  let n = Array.length t.samples_sorted in
  let rank = int_of_float (Float.round (q /. 100.0 *. float_of_int (n - 1))) in
  let service_q = t.samples_sorted.(max 0 (min (n - 1) rank)) in
  let w = mean_wait t ~qps in
  if w = infinity then infinity
  else if w <= 0.0 then service_q
  else begin
    (* Exponential-tail approximation of the waiting time. *)
    let p = Float.max 1e-9 (1.0 -. (q /. 100.0)) in
    service_q +. (w *. -.Float.log p)
  end

let saturation_qps t ~target_latency =
  if t.mean > target_latency then 0.0
  else begin
    let cap = capacity t in
    let rec bisect lo hi n =
      if n = 0 then lo
      else begin
        let mid = (lo +. hi) /. 2.0 in
        if mean_latency t ~qps:mid <= target_latency then bisect mid hi (n - 1)
        else bisect lo mid (n - 1)
      end
    in
    bisect 0.0 cap 40
  end
