type t = {
  uid : int;
  engine : Ditto_sim.Engine.t;
  platform : Ditto_uarch.Platform.t;
  mem : Ditto_uarch.Memory.t;
  cores : Ditto_uarch.Core_model.t array;
  sched : Ditto_os.Sched.t;
  nic : Ditto_net.Nic.t;
  loopback : Ditto_net.Nic.t;
  disk : Ditto_storage.Disk.t;
  page_cache : Ditto_os.Page_cache.t;
}

(* Building the (memory hierarchy, cores) pair dominates machine
   construction cost: the LLC alone is hundreds of thousands of tag/stamp
   entries, and a clone pipeline creates dozens of machines per platform.
   Released pairs are parked here (domain-local, keyed structurally on
   (platform, ncores)) and recycled by [create] after a [reset] restores
   the pristine post-create state — results stay bit-identical because
   reset is exhaustive, which the test suite pins. The engine-bearing
   components (scheduler, NICs, disk, page cache) are cheap and tied to
   the per-run engine, so they are always rebuilt. *)
type pooled = Ditto_uarch.Memory.t * Ditto_uarch.Core_model.t array

let pool_key : (Ditto_uarch.Platform.t * int, pooled list ref) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let max_pooled_per_key = 4

(* Dense per-process ids let callers key machines in int hash tables (O(1)
   tier-to-machine routing) instead of scanning lists under physical
   equality, which is what made teardown O(tiers^2) on wide graphs. *)
let next_uid = Atomic.make 0

let create ?page_cache_bytes ?cores engine (platform : Ditto_uarch.Platform.t) =
  let ncores = match cores with Some n -> n | None -> platform.Ditto_uarch.Platform.cores in
  let mem, cores =
    let tbl = Domain.DLS.get pool_key in
    match Hashtbl.find_opt tbl (platform, ncores) with
    | Some ({ contents = (mem, cores) :: rest } as cell) ->
        cell := rest;
        Ditto_uarch.Memory.reset mem;
        Array.iter Ditto_uarch.Core_model.reset cores;
        (mem, cores)
    | Some _ | None ->
        let mem = Ditto_uarch.Memory.create platform ~ncores in
        (mem, Array.init ncores (fun core -> Ditto_uarch.Core_model.create mem ~core))
  in
  let page_cache_bytes =
    match page_cache_bytes with
    | Some b -> b
    | None -> platform.Ditto_uarch.Platform.ram_gb * 1024 * 1024 * 1024 / 4
  in
  {
    uid = Atomic.fetch_and_add next_uid 1;
    engine;
    platform;
    mem;
    cores;
    sched = Ditto_os.Sched.create engine ~ncores ();
    nic = Ditto_net.Nic.create engine ~gbps:platform.Ditto_uarch.Platform.net_gbps;
    loopback = Ditto_net.Nic.create engine ~gbps:400.0;
    disk = Ditto_storage.Disk.create engine platform.Ditto_uarch.Platform.disk;
    page_cache = Ditto_os.Page_cache.create ~capacity_bytes:page_cache_bytes;
  }

let release t =
  let tbl = Domain.DLS.get pool_key in
  let key = (t.platform, Array.length t.cores) in
  let cell =
    match Hashtbl.find_opt tbl key with
    | Some c -> c
    | None ->
        let c = ref [] in
        Hashtbl.add tbl key c;
        c
  in
  if List.length !cell < max_pooled_per_key then cell := (t.mem, t.cores) :: !cell

let ncores t = Array.length t.cores

let cycles_to_seconds t cycles =
  cycles /. (t.platform.Ditto_uarch.Platform.freq_ghz *. 1e9)
