(** End-to-end run orchestration: build machines, measure instruction
    streams, serve load, and assemble per-tier {!Metrics}.

    A run is fully deterministic from [seed] and creates fresh hardware
    state, so original-vs-synthetic comparisons see identical environments.
    The same runner executes original model applications and generated
    clones — the validation harness of §6. *)

type config = {
  platform : Ditto_uarch.Platform.t;
  cluster : bool;  (** one machine per tier instead of a single node *)
  requests : int;  (** measurement-phase requests per tier *)
  seed : int;
  syscall_scale : float;
  stressor : (Ditto_util.Rng.t -> int -> Spec.op list) option;
  stressor_placement : [ `Same_core | `Other_core ];
  smt_pressure : float;
  net_interference_gbps : float;
  cores : int option;  (** override machine core count (Fig. 11) *)
  page_cache_bytes : int option;
  fault_plan : Ditto_fault.Plan.t option;
      (** arm this fault plan against the serving phase (chaos layer) *)
}

val config :
  ?cluster:bool ->
  ?requests:int ->
  ?seed:int ->
  ?syscall_scale:float ->
  ?stressor:(Ditto_util.Rng.t -> int -> Spec.op list) ->
  ?stressor_placement:[ `Same_core | `Other_core ] ->
  ?smt_pressure:float ->
  ?net_interference_gbps:float ->
  ?cores:int ->
  ?page_cache_bytes:int ->
  ?fault_plan:Ditto_fault.Plan.t ->
  Ditto_uarch.Platform.t ->
  config

type output = {
  app : Spec.t;
  per_tier : (string * Metrics.t) list;
  end_to_end : Ditto_util.Stats.summary;  (** client-observed latency *)
  service : Service.result;
  measured : (string * Measure.tier_result) list;
}

val run : config -> load:Service.load -> Spec.t -> output

val tier_metrics : output -> string -> Metrics.t
(** Raises [Invalid_argument] for unknown tier names, naming the tier and
    listing the known ones. *)

val estimate_idle_per_request : qps:float -> workers:int -> float
(** The mean per-worker idle gap used to scale kernel housekeeping
    pollution (exposed for tests). *)

val measure_memo_stats : unit -> Ditto_uarch.Memo.stats
(** Hit/miss statistics of this domain's measurement-phase memo. The
    measurement phase is a deterministic function of (spec identity,
    hosted tiers, platform, core count, page-cache size, measure scalars,
    seed, requests) and is reused across runs with identical keys; memo
    use is disabled under stressors or an active profiler. *)
