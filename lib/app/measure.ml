open Ditto_uarch
open Ditto_os

type segment =
  | Cpu of float
  | Disk_read of { bytes : int; random : bool }
  | Disk_write of { bytes : int }
  | Sleep of float
  | Downstream of { target : string; req_bytes : int; resp_bytes : int }

type trace = segment list

type tier_result = {
  tier : Spec.tier;
  space : Layout.space;
  traces : trace array;
  background_trace : trace option;
  counters : Counters.t;
  requests_measured : int;
  cpu_mean : float;
}

let trace_cpu_seconds trace =
  List.fold_left (fun acc seg -> match seg with Cpu s -> acc +. s | _ -> acc) 0.0 trace

type config = {
  warmup : int;
  syscall_scale : float;
  idle_per_request : float;
  interleave : int;
  stressor : (Ditto_util.Rng.t -> int -> Spec.op list) option;
  stressor_placement : [ `Same_core | `Other_core ];
  smt_pressure : float;
}

let default_config =
  {
    warmup = 40;
    syscall_scale = 0.25;
    idle_per_request = 0.0;
    interleave = 4;
    stressor = None;
    stressor_placement = `Same_core;
    smt_pressure = 1.0;
  }

type stream = {
  s_tier : Spec.tier;
  s_space : Layout.space;
  s_cores : int array;
  mutable s_rr : int;
  s_ctr : Counters.t;
  s_rng : Ditto_util.Rng.t;
  mutable s_remaining : int;
  mutable s_req_id : int;
  mutable s_traces : trace list;
}

(* Kernel housekeeping fires ~2000 times per idle second (timer ticks, RCU,
   softirqs), each tick evicting a slice of i-cache and predictor state. *)
let housekeeping_rate = 2000.0

(* Blocks carry mutable stream cursors; reset each block the first time a
   measurement run touches it so that runs are reproducible even for blocks
   shared across runs (memoised kernel paths, reused specs). The table is
   reinitialised at every [run]. It is domain-local: a run executes
   entirely on one domain (Ditto_util.Pool parallelism is across runs,
   never inside one), and each domain runs at most one measurement at a
   time, so per-domain state keeps concurrent runs from clobbering each
   other's touch marks. *)
let touched_key : Bytes.t ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref (Bytes.make 256 '\000'))

let exec_block core ~rng block ~iterations =
  let touched = Domain.DLS.get touched_key in
  let uid = block.Ditto_isa.Block.uid in
  let b = !touched in
  let b =
    (* Uids are a dense process-wide counter, so a byte per block stays
       small; grow geometrically when a new spec pushes past the end. *)
    if uid >= Bytes.length b then begin
      let nb = Bytes.make (max (uid + 1) (2 * Bytes.length b)) '\000' in
      Bytes.blit b 0 nb 0 (Bytes.length b);
      touched := nb;
      nb
    end
    else b
  in
  if Bytes.unsafe_get b uid = '\000' then begin
    Bytes.unsafe_set b uid '\001';
    Ditto_isa.Block.reset_state block
  end;
  Core_model.exec_block core ~rng block ~iterations

let exec_kernel cfg core rng kind =
  List.iter
    (fun (block, iterations) -> exec_block core ~rng block ~iterations)
    (Syscall.Kernel.streams ~scale:cfg.syscall_scale kind)

let run_housekeeping cfg (machine : Machine.t) core_id rng scratch =
  if cfg.idle_per_request > 0.0 then begin
    Memory.set_counter machine.Machine.mem core_id scratch;
    (* Periodic ticks plus a wake-from-idle component: once the gap exceeds
       ~50us the core enters idle and every request pays a cold-ish
       frontend on wakeup. *)
    let expected =
      (cfg.idle_per_request *. housekeeping_rate)
      +. Float.min 1.0 (cfg.idle_per_request /. 50e-6)
    in
    let ticks =
      int_of_float expected
      + (if Ditto_util.Rng.float rng 1.0 < Float.rem expected 1.0 then 1 else 0)
    in
    let block, iterations = Syscall.Kernel.housekeeping ~scale:cfg.syscall_scale () in
    let core = machine.Machine.cores.(core_id) in
    for _ = 1 to (if ticks < 64 then ticks else 64) do
      exec_block core ~rng block ~iterations
    done
  end

(* Execute one request of [stream] on its next core, attributing counters to
   [ctr], and return the request's segment trace.

   [profile] additionally samples the executing (tier -> handler phase ->
   block/syscall) stack into Ditto_obs.Profiler: every unit of work is
   followed by an attribution of the counter's cycle delta, so sampled
   weights cover exactly the cycles that [flush_cpu] turns into Cpu
   segments. Warmup requests pass [profile:false]. *)
let run_request ?(profile = false) cfg (machine : Machine.t) stream ctr =
  let core_id = stream.s_cores.(stream.s_rr mod Array.length stream.s_cores) in
  stream.s_rr <- stream.s_rr + 1;
  let core = machine.Machine.cores.(core_id) in
  let rng = stream.s_rng in
  Memory.set_counter machine.Machine.mem core_id ctr;
  let segs = ref [] in
  let last_flush = ref (Counters.cycles ctr) in
  let flush_cpu () =
    let c = Counters.cycles ctr in
    if c > !last_flush then
      segs := Cpu (Machine.cycles_to_seconds machine (c -. !last_flush)) :: !segs;
    last_flush := c
  in
  let tier_name = stream.s_tier.Spec.tier_name in
  let phase = ref "recv" in
  let last_prof = ref (Counters.cycles ctr) in
  let prof frame =
    if profile then begin
      let c = Counters.cycles ctr in
      Ditto_obs.Profiler.record ~stack:[ tier_name; !phase; frame ] ~cycles:(c -. !last_prof);
      last_prof := c
    end
  in
  let kernel kind =
    exec_kernel cfg core rng kind;
    (* Build the frame label only when profiling: this runs per syscall. *)
    if profile then prof ("syscall:" ^ Syscall.name kind)
  in
  let interp op =
    match op with
    | Spec.Compute (block, iterations) ->
        exec_block core ~rng block ~iterations;
        prof block.Ditto_isa.Block.label
    | Spec.Syscall (Syscall.Nanosleep { seconds } as k) ->
        kernel k;
        flush_cpu ();
        segs := Sleep seconds :: !segs
    | Spec.Syscall k -> kernel k
    | Spec.File_read { offset; bytes; random } ->
        kernel (Syscall.Pread { bytes; random });
        let missed =
          Page_cache.read machine.Machine.page_cache ~offset ~bytes
        in
        if missed > 0 then begin
          flush_cpu ();
          segs := Disk_read { bytes = missed; random } :: !segs
        end
    | Spec.File_write { bytes } ->
        kernel (Syscall.Pwrite { bytes });
        flush_cpu ();
        segs := Disk_write { bytes } :: !segs
    | Spec.Call { target; req_bytes; resp_bytes } ->
        kernel (Syscall.Sock_write { bytes = req_bytes });
        flush_cpu ();
        segs := Downstream { target; req_bytes; resp_bytes } :: !segs;
        kernel (Syscall.Sock_read { bytes = resp_bytes })
  in
  (* Server skeleton around the body: the network model determines the
     kernel work paid per request (§4.3.1) — epoll wakeups for
     I/O-multiplexing servers, a bare blocking read for thread-per-
     connection ones, and wasted polling probes for non-blocking ones. *)
  (match stream.s_tier.Spec.server_model with
  | Spec.Io_multiplexing -> kernel Syscall.Epoll_wait
  | Spec.Blocking -> ()
  | Spec.Nonblocking ->
      (* several empty probes precede the successful read at typical loads *)
      kernel Syscall.Gettime;
      kernel Syscall.Gettime;
      kernel Syscall.Gettime);
  kernel (Syscall.Sock_read { bytes = stream.s_tier.Spec.request_bytes });
  phase := "handler";
  let ops = stream.s_tier.Spec.handler rng stream.s_req_id in
  stream.s_req_id <- stream.s_req_id + 1;
  List.iter interp ops;
  phase := "send";
  kernel (Syscall.Sock_write { bytes = stream.s_tier.Spec.response_bytes });
  Core_model.drain core;
  prof "drain";
  flush_cpu ();
  (core_id, List.rev !segs)

let run_stressor cfg (machine : Machine.t) rng scratch core_id seq =
  match cfg.stressor with
  | None -> ()
  | Some gen ->
      let ncores = Machine.ncores machine in
      let core_id =
        match cfg.stressor_placement with
        | `Same_core -> core_id
        | `Other_core -> (core_id + (ncores / 2) + 1) mod ncores
      in
      Memory.set_counter machine.Machine.mem core_id scratch;
      let core = machine.Machine.cores.(core_id) in
      List.iter
        (fun op ->
          match op with
          | Spec.Compute (block, iterations) -> exec_block core ~rng block ~iterations
          | Spec.Syscall _ | Spec.File_read _ | Spec.File_write _ | Spec.Call _ -> ())
        (gen rng seq)

(* A tier occupies as many cores as it has worker threads (a one-worker
   Redis runs hot on one core; spreading it over a whole socket would keep
   every predictor and private cache cold). *)
let assign_cores ~ncores ~ntiers ~workers idx =
  if ntiers <= ncores then begin
    let count = max 1 (min (max 1 workers) (ncores / ntiers)) in
    Array.init count (fun k -> idx + (k * ntiers))
  end
  else [| idx mod ncores |]

let measure_background cfg machine stream =
  match stream.s_tier.Spec.background_handler with
  | None -> None
  | Some bg ->
      let core_id = stream.s_cores.(0) in
      let core = machine.Machine.cores.(core_id) in
      let rng = stream.s_rng in
      Memory.set_counter machine.Machine.mem core_id stream.s_ctr;
      let ctr = stream.s_ctr in
      let segs = ref [] in
      let last_flush = ref (Counters.cycles ctr) in
      let flush_cpu () =
        let c = Counters.cycles ctr in
        if c > !last_flush then
          segs := Cpu (Machine.cycles_to_seconds machine (c -. !last_flush)) :: !segs;
        last_flush := c
      in
      let profile = Ditto_obs.Profiler.enabled () in
      let tier_name = stream.s_tier.Spec.tier_name in
      let last_prof = ref (Counters.cycles ctr) in
      let prof frame =
        if profile then begin
          let c = Counters.cycles ctr in
          Ditto_obs.Profiler.record
            ~stack:[ tier_name; "background"; frame ]
            ~cycles:(c -. !last_prof);
          last_prof := c
        end
      in
      let kernel kind =
        exec_kernel cfg core rng kind;
        if profile then prof ("syscall:" ^ Syscall.name kind)
      in
      List.iter
        (fun op ->
          match op with
          | Spec.Compute (block, iterations) ->
              exec_block core ~rng block ~iterations;
              prof block.Ditto_isa.Block.label
          | Spec.Syscall (Syscall.Nanosleep { seconds }) ->
              flush_cpu ();
              segs := Sleep seconds :: !segs
          | Spec.Syscall k -> kernel k
          | Spec.File_read { offset; bytes; random } ->
              kernel (Syscall.Pread { bytes; random });
              let missed = Page_cache.read machine.Machine.page_cache ~offset ~bytes in
              if missed > 0 then begin
                flush_cpu ();
                segs := Disk_read { bytes = missed; random } :: !segs
              end
          | Spec.File_write { bytes } ->
              kernel (Syscall.Pwrite { bytes });
              flush_cpu ();
              segs := Disk_write { bytes } :: !segs
          | Spec.Call { target; req_bytes; resp_bytes } ->
              flush_cpu ();
              segs := Downstream { target; req_bytes; resp_bytes } :: !segs)
        (bg rng);
      Core_model.drain core;
      prof "drain";
      flush_cpu ();
      Some (List.rev !segs)

let run ?(config = default_config) ~(machine : Machine.t) ~seed ~requests tiers =
  (let t = Domain.DLS.get touched_key in
   Bytes.fill !t 0 (Bytes.length !t) '\000');
  let profile = Ditto_obs.Profiler.enabled () in
  if profile then Ditto_obs.Profiler.set_scale (Machine.cycles_to_seconds machine 1.0);
  let cfg = config in
  let ncores = Machine.ncores machine in
  let ntiers = List.length tiers in
  if ntiers = 0 then invalid_arg "Measure.run: no tiers";
  Array.iter
    (fun core -> Core_model.set_width_factor core cfg.smt_pressure)
    machine.Machine.cores;
  let root = Ditto_util.Rng.create seed in
  let scratch = Counters.create () in
  let stress_rng = Ditto_util.Rng.split root in
  let streams =
    List.mapi
      (fun idx (tier, space) ->
        {
          s_tier = tier;
          s_space = space;
          s_cores =
            assign_cores ~ncores ~ntiers ~workers:tier.Spec.thread_model.Spec.workers idx;
          s_rr = 0;
          s_ctr = Counters.create ();
          s_rng = Ditto_util.Rng.split root;
          s_remaining = requests;
          s_req_id = 0;
          s_traces = [];
        })
      tiers
  in
  (* Bring the page cache to steady state: a long-running service has it
     full. For uniform access, caching the file's first [capacity] bytes
     yields the steady-state hit ratio under LRU. *)
  List.iter
    (fun (tier, _) ->
      let file = tier.Spec.file_bytes in
      if file > 0 then
        ignore
          (Page_cache.read machine.Machine.page_cache ~offset:0 ~bytes:file))
    tiers;
  (* Warmup: fill caches, predictor and page cache; nothing recorded. *)
  List.iter
    (fun stream ->
      for _ = 1 to cfg.warmup do
        ignore (run_request cfg machine stream scratch)
      done)
    streams;
  (* Measurement: interleave tiers (and the stressor) over the cores. *)
  let stress_seq = ref 0 in
  let remaining () = List.exists (fun s -> s.s_remaining > 0) streams in
  while remaining () do
    List.iter
      (fun stream ->
        let burst =
          if cfg.interleave < stream.s_remaining then cfg.interleave else stream.s_remaining
        in
        for _ = 1 to burst do
          let core_id0 = stream.s_cores.(stream.s_rr mod Array.length stream.s_cores) in
          run_housekeeping cfg machine core_id0 stream.s_rng scratch;
          let core_id, trace = run_request ~profile cfg machine stream stream.s_ctr in
          stream.s_traces <- trace :: stream.s_traces;
          stream.s_remaining <- stream.s_remaining - 1;
          incr stress_seq;
          run_stressor cfg machine stress_rng scratch core_id !stress_seq
        done)
      streams
  done;
  List.map
    (fun stream ->
      let traces = Array.of_list (List.rev stream.s_traces) in
      let background_trace = measure_background cfg machine stream in
      let cpu_mean =
        if Array.length traces = 0 then 0.0
        else
          Array.fold_left (fun acc tr -> acc +. trace_cpu_seconds tr) 0.0 traces
          /. float_of_int (Array.length traces)
      in
      {
        tier = stream.s_tier;
        space = stream.s_space;
        traces;
        background_trace;
        counters = stream.s_ctr;
        requests_measured = Array.length traces;
        cpu_mean;
      })
    streams
