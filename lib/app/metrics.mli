(** Per-run metric bundle: the quantities plotted in Figs. 5–11. *)

(** Resilience/fault counters observed during the DES phase (all zero for a
    fault-free run with default {!Spec.resilience}). *)
type faults = {
  timeouts : int;
  retries : int;
  shed : int;
  failures : int;
  breaker_transitions : int;
  link_drops : int;
}

val no_faults : faults
val faults_total : faults -> int

type t = {
  label : string;
  qps : float;  (** achieved request throughput *)
  ipc : float;
  branch_miss_rate : float;
  l1i_miss_rate : float;
  l1d_miss_rate : float;
  l2_miss_rate : float;
  llc_miss_rate : float;
  net_mbps : float;  (** NIC bytes moved per second of simulated time *)
  disk_mbps : float;
  lat_avg : float;  (** seconds *)
  lat_p50 : float;
  lat_p95 : float;
  lat_p99 : float;
  topdown : Ditto_uarch.Counters.topdown;
  counters : Ditto_uarch.Counters.t;
  faults : faults;
}

val radar_axes : string list
(** The axes of the paper's radar plots: IPC, Branch, L1i, L1d, L2, LLC,
    Net BW (+ Disk BW where applicable). *)

val radar_values : t -> include_disk:bool -> (string * float) list

val error_pct : actual:t -> synthetic:t -> (string * float) list
(** Per-axis percentage error of the synthetic clone vs the original
    (axes with a zero actual value are skipped). *)

val latency_error_pct : actual:t -> synthetic:t -> (string * float) list
val pp_row : t -> string list
(** Cells: label qps ipc brMiss l1i l1d l2 llc net disk avg p95 p99. *)

val header : string list
