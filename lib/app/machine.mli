(** A simulated server node: memory hierarchy + cores, scheduler, NIC,
    disk and page cache, built from a {!Ditto_uarch.Platform} spec. *)

type t = {
  uid : int;  (** dense per-process id, for int-keyed machine tables *)
  engine : Ditto_sim.Engine.t;
  platform : Ditto_uarch.Platform.t;
  mem : Ditto_uarch.Memory.t;
  cores : Ditto_uarch.Core_model.t array;
  sched : Ditto_os.Sched.t;
  nic : Ditto_net.Nic.t;
  loopback : Ditto_net.Nic.t;
      (** intra-node connections use this effectively-unbounded device so
          colocated tiers do not consume real NIC bandwidth *)
  disk : Ditto_storage.Disk.t;
  page_cache : Ditto_os.Page_cache.t;
}

val create :
  ?page_cache_bytes:int -> ?cores:int -> Ditto_sim.Engine.t -> Ditto_uarch.Platform.t -> t
(** [cores] overrides the platform core count (Fig. 11's core scaling);
    [page_cache_bytes] defaults to a quarter of platform RAM. *)

val ncores : t -> int

val release : t -> unit
(** Return the machine's (memory hierarchy, cores) pair to a domain-local
    free pool keyed on (platform, core count). A later {!create} with the
    same key recycles the pair after an exhaustive reset, skipping the
    dominant allocation cost; results stay bit-identical to a fresh build.
    The caller must not use [t] after releasing it. *)

val cycles_to_seconds : t -> float -> float
(** Convert pipeline cycles to wall-clock seconds at the platform's
    frequency. *)
