(** Analytical queueing estimates — a µqsim/BigHouse-style cross-check.

    The paper's related work (§2.2) covers queueing-based estimators that
    predict high-level metrics without executing instructions. This module
    implements M/G/c approximations over a measured service-time
    distribution, used to sanity-check the DES latency results and to give
    fast what-if answers ("what load saturates k workers?") without a full
    run. *)

type t

val of_samples : servers:int -> float array -> t
(** Build a model from per-request service-time samples (seconds) served by
    [servers] parallel workers. Raises [Invalid_argument] on empty input. *)

val of_measure : servers:int -> Measure.tier_result -> t
(** Convenience: use the measurement phase's per-request CPU times. *)

val service_mean : t -> float
val service_scv : t -> float
(** Squared coefficient of variation of the service time. *)

val utilization : t -> qps:float -> float
(** Offered utilisation [rho]; >= 1 means unstable. *)

val capacity : t -> float
(** The arrival rate at which utilisation reaches 1. *)

val mean_wait : t -> qps:float -> float
(** Mean queueing delay (excluding service) by the Allen–Cunneen M/G/c
    approximation; [infinity] when unstable. *)

val mean_latency : t -> qps:float -> float
(** Wait plus mean service. *)

val percentile_latency : t -> qps:float -> float -> float
(** Approximate latency percentile: exponential-tail approximation of the
    waiting distribution added to the service percentile. The quantile must
    lie in [0, 100] or [Invalid_argument] is raised; as [qps] approaches 0
    the wait vanishes and the result reduces to the service percentile. *)

val saturation_qps : t -> target_latency:float -> float
(** Largest arrival rate whose mean latency stays at or below the target
    (bisection; 0 if even an idle system exceeds it). *)
