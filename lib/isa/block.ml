type region = { region_base : int; region_bytes : int; shared : bool }

let make_region ~base ~bytes ~shared =
  assert (base land 63 = 0);
  { region_base = base; region_bytes = bytes; shared }

type mem_pattern =
  | No_mem
  | Fixed_offset of { region : region; offset : int }
  | Seq_stride of { region : region; start : int; stride : int; span : int }
  | Rand_uniform of { region : region; start : int; span : int }
  | Chase of { region : region; start : int; span : int }

type branch_spec = { m : int; n : int; invert : bool }

(* Deterministic outcome sequence with taken fraction 2^-m and transition
   frequency 2^-n (clamped to 2^(1-m) when the rates are inconsistent).
   Within each period of 2^(n+1) executions the first 2^(n+1-m) are taken;
   when m > n+1 only one period in 2^(m-n-1) contains a single taken slot. *)
let branch_outcome ~m ~n k =
  let m = if m > 0 then m else 0 and n = if n > 0 then n else 0 in
  let period_bits = n + 1 in
  let in_period = k land ((1 lsl period_bits) - 1) in
  if m <= period_bits then in_period < 1 lsl (period_bits - m)
  else begin
    let j = k lsr period_bits in
    let skip = (1 lsl (m - period_bits)) - 1 in
    j land skip = 0 && in_period = 0
  end

type temp = {
  iform : Iform.t;
  dst : int;
  srcs : int array;
  mem : mem_pattern;
  branch : branch_spec option;
  rep_count : int;
  mutable branch_seq : int;
  mutable seq_pos : int;
  mutable seq_phase : int;
  mutable chase_cur : int;
}

let no_reg = -1

let temp ?(dst = no_reg) ?(srcs = [||]) ?(mem = No_mem) ?branch ?(rep_count = 0) iform =
  {
    iform;
    dst;
    srcs;
    mem;
    branch;
    rep_count;
    branch_seq = 0;
    seq_pos = 0;
    seq_phase = 0;
    chase_cur = -1;
  }

let set_phase temp phase =
  temp.seq_phase <- phase;
  temp.seq_pos <- phase

type t = {
  uid : int;
  label : string;
  code_base : int;
  temps : temp array;
  addrs : int array;
  code_bytes : int;
  static_insts : int;
}

(* Atomic: blocks are built concurrently by parallel clone/tune runs
   (Ditto_util.Pool); uids are identity keys only, so allocation order does
   not affect results, but duplicates would alias distinct blocks. *)
let next_uid = Atomic.make 0

let make ~label ~code_base temps =
  let temps = Array.of_list temps in
  let n = Array.length temps in
  let addrs = Array.make n 0 in
  let pc = ref code_base in
  Array.iteri
    (fun i t ->
      addrs.(i) <- !pc;
      pc := !pc + t.iform.Iform.bytes)
    temps;
  {
    uid = Atomic.fetch_and_add next_uid 1;
    label;
    code_base;
    temps;
    addrs;
    code_bytes = !pc - code_base;
    static_insts = n;
  }

let reset_state t =
  Array.iter
    (fun temp ->
      temp.branch_seq <- 0;
      temp.seq_pos <- temp.seq_phase;
      temp.chase_cur <- -1)
    t.temps

let gp i =
  assert (i >= 0 && i < 16);
  i

let xmm i =
  assert (i >= 0 && i < 16);
  16 + i

let num_regs = 32

(* Multiplicative hash onto a 64-byte-aligned slot of the window; constants
   from SplitMix64's finaliser so chains visit slots in a scattered order. *)
let chase_next region ~start ~span addr =
  let slots = if span > 64 then span / 64 else 1 in
  let h = (addr * 0x2545F4914F6CDD1D) land max_int in
  let slot = (h lsr 6) mod slots in
  region.region_base + start + (slot * 64)

(* [resolve_mem_packed] returns [(addr lsl 1) lor shared] so the
   per-instruction hot path of [Core_model.exec_block] gets address and
   sharedness without allocating a tuple; No_mem packs to -2 (addr -1,
   shared false). [resolve_mem] unpacks it for callers that want the pair. *)
let resolve_mem_packed ~rng temp =
  match temp.mem with
  | No_mem -> -2
  | Fixed_offset { region; offset } ->
      ((region.region_base + offset) lsl 1) lor Bool.to_int region.shared
  | Seq_stride { region; start; stride; span } ->
      let span = if span > 64 then span else 64 in
      let pos = temp.seq_pos in
      temp.seq_pos <- pos + 1;
      ((region.region_base + start + (pos * stride mod span)) lsl 1)
      lor Bool.to_int region.shared
  | Rand_uniform { region; start; span } ->
      let lines = if span > 64 then span / 64 else 1 in
      ((region.region_base + start + (64 * Ditto_util.Rng.int rng lines)) lsl 1)
      lor Bool.to_int region.shared
  | Chase { region; start; span } ->
      (* A chain is (re-)entered at a random node every [chain_len] hops, so
         distinct requests walk distinct but internally serialised chains. *)
      let chain_len = 64 in
      let cur =
        if temp.chase_cur < 0 || temp.seq_pos mod chain_len = 0 then
          let lines = if span > 64 then span / 64 else 1 in
          region.region_base + start + (64 * Ditto_util.Rng.int rng lines)
        else temp.chase_cur
      in
      temp.seq_pos <- temp.seq_pos + 1;
      let next = chase_next region ~start ~span cur in
      temp.chase_cur <- next;
      (cur lsl 1) lor Bool.to_int region.shared

let resolve_mem ~rng temp =
  let p = resolve_mem_packed ~rng temp in
  (p asr 1, p land 1 = 1)

type event = {
  ev_index : int;
  ev_pc : int;
  ev_temp : temp;
  ev_addr : int;
  ev_shared : bool;
  ev_taken : bool option;
  ev_iteration : int;
}

let iter_stream ~rng ~iterations t f =
  let ntemps = Array.length t.temps in
  for iteration = 0 to iterations - 1 do
    for k = 0 to ntemps - 1 do
      let temp = t.temps.(k) in
      let addr, shared = resolve_mem ~rng temp in
      let taken =
        match temp.branch with
        | Some spec ->
            let seq = temp.branch_seq in
            temp.branch_seq <- seq + 1;
            Some (branch_outcome ~m:spec.m ~n:spec.n seq <> spec.invert)
        | None -> None
      in
      f
        {
          ev_index = k;
          ev_pc = t.addrs.(k);
          ev_temp = temp;
          ev_addr = addr;
          ev_shared = shared;
          ev_taken = taken;
          ev_iteration = iteration;
        }
    done
  done
