(** Executable instruction blocks — the IR both original and synthetic
    application bodies compile to.

    A block is a static array of instruction templates executed for a given
    number of iterations, exactly like the generated
    [__asm__ __volatile__] loops in Fig. 3 of the paper. Templates carry
    register operands, a memory-address pattern, and (for conditional
    branches) the paper's bitmask taken/transition behaviour; the core model
    resolves them to dynamic instructions at simulation time. *)

(** A named byte range of the simulated address space. *)
type region = {
  region_base : int;  (** base virtual address, 64-byte aligned *)
  region_bytes : int;
  shared : bool;  (** accessed by multiple threads (coherence traffic) *)
}

val make_region : base:int -> bytes:int -> shared:bool -> region

(** How a memory-operand address evolves across dynamic executions. *)
type mem_pattern =
  | No_mem
  | Fixed_offset of { region : region; offset : int }
      (** hard-coded [\[r10 + OFFSET\]] accesses of synthetic code *)
  | Seq_stride of { region : region; start : int; stride : int; span : int }
      (** regular pattern (prefetch-friendly): wraps within [span] bytes *)
  | Rand_uniform of { region : region; start : int; span : int }
      (** irregular pattern: uniform over [span] bytes *)
  | Chase of { region : region; start : int; span : int }
      (** pointer chasing: each address is a hash of the previous one,
          serialising memory-level parallelism *)

(** Conditional-branch behaviour: taken rate [2^-m], transition rate
    [2^-n], realised as a deterministic counter pattern equivalent to the
    paper's [test r8d, BIT_MASK; jz] idiom. [invert] flips the majority
    direction (mostly-taken vs mostly-not-taken). *)
type branch_spec = { m : int; n : int; invert : bool }

val branch_outcome : m:int -> n:int -> int -> bool
(** [branch_outcome ~m ~n k] is the outcome of the [k]-th dynamic execution:
    a deterministic sequence whose long-run taken fraction is [2^-m] and
    whose direction-transition frequency is [min 2^-n (2^(1-m))]. *)

(** One instruction template. [dst = -1] means no register destination.
    The mutable fields are per-template dynamic cursors that persist across
    requests, mirroring the counter registers and pointer state of real
    generated assembly: [branch_seq] drives the bitmask outcome sequence,
    [seq_pos] advances sequential streams, [chase_cur] holds the current
    pointer of a chase chain (-1 = chain not entered). *)
type temp = {
  iform : Iform.t;
  dst : int;
  srcs : int array;
  mem : mem_pattern;
  branch : branch_spec option;
  rep_count : int;  (** repeat count for REP-prefixed iforms; 0 otherwise *)
  mutable branch_seq : int;
  mutable seq_pos : int;
  mutable seq_phase : int;
      (** hard-coded stream phase ([seq_pos]'s initial/reset value) *)
  mutable chase_cur : int;
}

val set_phase : temp -> int -> unit
(** Fix the template's sequential-stream phase (its distinct hard-coded
    offset within a shared window); survives {!reset_state}. *)

val temp :
  ?dst:int ->
  ?srcs:int array ->
  ?mem:mem_pattern ->
  ?branch:branch_spec ->
  ?rep_count:int ->
  Iform.t ->
  temp

type t = {
  uid : int;  (** process-unique block id *)
  label : string;
  code_base : int;  (** virtual address of the first instruction *)
  temps : temp array;
  addrs : int array;  (** per-template instruction addresses *)
  code_bytes : int;
  static_insts : int;
}

val make : label:string -> code_base:int -> temp list -> t

val reset_state : t -> unit
(** Reset every template's dynamic cursors (branch sequence, stream
    position, chase pointer) to their initial values. The measurement phase
    resets each block on first touch so that runs are reproducible even
    when blocks (e.g. memoised kernel paths) are shared across runs. *)

(** {1 Registers} *)

val gp : int -> int
(** General-purpose register ids 0..15. *)

val xmm : int -> int
(** SIMD register ids 16..31. *)

val num_regs : int
val no_reg : int
(** Sentinel (-1) for "no register". *)

(** {1 Address helpers} *)

val chase_next : region -> start:int -> span:int -> int -> int
(** Deterministic next pointer in a chase chain: maps the current address to
    another 64-byte-aligned address in the window. *)

val resolve_mem : rng:Ditto_util.Rng.t -> temp -> int * bool
(** Resolve a template's memory operand for its next dynamic execution,
    advancing the template's stream cursors; returns [(address, shared)] or
    [(-1, false)] when there is none. This is the single source of truth
    for address streams — the core model and the profilers both use it. *)

val resolve_mem_packed : rng:Ditto_util.Rng.t -> temp -> int
(** Allocation-free [resolve_mem]: the result is [(address lsl 1) lor
    shared] ([-2] when there is no operand). For the per-instruction hot
    path; identical stream advancement. *)

(** One dynamic instruction event, as seen by profilers. *)
type event = {
  ev_index : int;  (** template index within the block *)
  ev_pc : int;
  ev_temp : temp;
  ev_addr : int;  (** resolved address or -1 *)
  ev_shared : bool;
  ev_taken : bool option;  (** conditional-branch outcome *)
  ev_iteration : int;
}

val iter_stream :
  rng:Ditto_util.Rng.t -> iterations:int -> t -> (event -> unit) -> unit
(** Walk the dynamic instruction stream of a block — same addresses and
    branch outcomes the core model would execute — invoking the callback
    per instruction. Used by the Valgrind/SDE-style profilers. *)
