module Rate = Ditto_app.Rate

(* Canonical surge profiles, scaled to the load duration the same way
   Ditto_fault.Plan.canonical scales its event times. Fractions are chosen
   so every phase completes inside the run: the flash crowd has fully
   receded by 0.7*duration, leaving windows for reconvergence scoring. *)

let flash_crowd ?(mult = 4.0) ~duration () =
  Rate.make ~name:"flash-crowd"
    [
      Rate.Spike
        {
          at = 0.3 *. duration;
          rise = 0.05 *. duration;
          hold = 0.2 *. duration;
          fall = 0.15 *. duration;
          mult;
        };
    ]

let diurnal ?(amplitude = 0.5) ~duration () =
  Rate.make ~name:"diurnal" [ Rate.Sinusoid { amplitude; period = duration; phase = 0.0 } ]

let ramp_to_saturation ?(to_mult = 6.0) ~duration () =
  Rate.make ~name:"ramp-to-saturation" [ Rate.Ramp { to_mult; over = 0.8 *. duration } ]

let canonical ~duration =
  [ flash_crowd ~duration (); diurnal ~duration (); ramp_to_saturation ~duration () ]

let names = [ "flash-crowd"; "diurnal"; "ramp-to-saturation" ]

let by_name ~duration name =
  match name with
  | "flash-crowd" -> flash_crowd ~duration ()
  | "diurnal" -> diurnal ~duration ()
  | "ramp-to-saturation" -> ramp_to_saturation ~duration ()
  | n ->
      invalid_arg
        (Printf.sprintf "Ditto_loadgen.Profile: unknown canonical profile %S (known: %s)" n
           (String.concat ", " names))

let load = Rate.load
let save = Rate.save
