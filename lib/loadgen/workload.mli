(** Workload generators, mirroring the clients of §6.1.2.

    Each generator fixes the queueing discipline (open vs closed loop) and a
    default connection count; [to_load] instantiates it at a target QPS.
    The paper stresses that the same generator drives original and synthetic
    services — the harness does exactly that. *)

type t = {
  gen_name : string;
  open_loop : bool;
  connections : int;
}

val mutated : t
(** Open-loop key-value client (drives Memcached). *)

val tcpkali : t
(** Open-loop HTTP load generator (drives NGINX). *)

val ycsb : t
(** Closed-loop record client, one outstanding request per connection
    (drives MongoDB and Redis) — which is why their latency stays flat at
    saturation in Fig. 5. *)

val wrk2_open : t
(** wrk2 modified to open-loop, as the paper does for Social Network. *)

val to_load :
  t -> qps:float -> ?duration:float -> ?profile:Ditto_app.Rate.t -> unit -> Ditto_app.Service.load
(** [profile] shapes the offered rate over the run ({!Profile} has the
    canonical ones); omitted, the load is the flat-rate process it always
    was. *)

(** {1 Key/record access helpers for application handlers} *)

module Keys : sig
  type space
  (** A keyed dataset: [records] records of [record_bytes] each, accessed
      uniformly or with Zipfian popularity. *)

  val uniform : records:int -> record_bytes:int -> space
  val zipf : ?s:float -> records:int -> record_bytes:int -> unit -> space

  val sample_offset : space -> Ditto_util.Rng.t -> int
  (** Byte offset of a sampled record within the dataset. *)

  val record_bytes : space -> int
  val total_bytes : space -> int
end
