(** Canonical open-loop surge profiles (DESIGN.md section 14).

    Thin builders over {!Ditto_app.Rate} whose phase boundaries scale with
    the load duration, mirroring how {!Ditto_fault.Plan.canonical} scales
    its event times — so the same named scenario stresses a 2 s smoke run
    and a 60 s bench run proportionally. *)

val flash_crowd : ?mult:float -> duration:float -> unit -> Ditto_app.Rate.t
(** ["flash-crowd"]: rate spikes to [mult]× (default 4) at 30% of the run,
    holds, and recedes by 70% — the rest of the run measures recovery. *)

val diurnal : ?amplitude:float -> duration:float -> unit -> Ditto_app.Rate.t
(** ["diurnal"]: one full sinusoidal day compressed into the run,
    [1 ± amplitude] (default 0.5). *)

val ramp_to_saturation : ?to_mult:float -> duration:float -> unit -> Ditto_app.Rate.t
(** ["ramp-to-saturation"]: linear climb to [to_mult]× (default 6) over
    80% of the run, then held — finds the saturation onset. *)

val canonical : duration:float -> Ditto_app.Rate.t list
(** The three profiles above, in that order. *)

val names : string list

val by_name : duration:float -> string -> Ditto_app.Rate.t
(** Canonical profile by name; raises [Invalid_argument] on an unknown
    name (listing the known ones). *)

val load : string -> Ditto_app.Rate.t
(** Re-exports of {!Ditto_app.Rate.load} / {!Ditto_app.Rate.save}, so CLI
    and bench code can read profile files through the loadgen namespace. *)

val save : path:string -> Ditto_app.Rate.t -> unit
