type t = { gen_name : string; open_loop : bool; connections : int }

let mutated = { gen_name = "mutated"; open_loop = true; connections = 96 }
let tcpkali = { gen_name = "tcpkali"; open_loop = true; connections = 48 }
let ycsb = { gen_name = "ycsb"; open_loop = false; connections = 32 }
let wrk2_open = { gen_name = "wrk2-open"; open_loop = true; connections = 32 }

let to_load t ~qps ?(duration = 2.0) ?profile () =
  Ditto_app.Service.load ~connections:t.connections ~open_loop:t.open_loop ~duration ?profile ~qps
    ()

module Keys = struct
  type sampler = Uniform | Zipf of Ditto_util.Dist.zipf

  type space = { records : int; record_bytes : int; sampler : sampler }

  let uniform ~records ~record_bytes = { records; record_bytes; sampler = Uniform }

  let zipf ?(s = 0.99) ~records ~record_bytes () =
    { records; record_bytes; sampler = Zipf (Ditto_util.Dist.zipf ~n:records ~s) }

  let sample_offset t rng =
    let idx =
      match t.sampler with
      | Uniform -> Ditto_util.Rng.int rng t.records
      | Zipf z -> Ditto_util.Dist.zipf_sample z rng
    in
    idx * t.record_bytes

  let record_bytes t = t.record_bytes
  let total_bytes t = t.records * t.record_bytes
end
