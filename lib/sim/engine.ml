open Effect
open Effect.Deep

(* Pending events in a binary min-heap ordered by (time, sequence); the
   sequence number makes same-time events FIFO and the heap total. The
   callback is stored unapplied next to its argument (an existential pair)
   so the hot wake path never allocates a wrapper closure: [wake w v] stores
   [f] and [v] side by side instead of building [fun () -> f v]. *)
type event = Ev : { at : float; seq : int; fn : 'a -> unit; arg : 'a } -> event

type t = {
  mutable time : float;
  mutable heap : event array;
  mutable size : int;
  (* Events scheduled for the current instant bypass the heap into this
     FIFO: wake/fork chains enqueue at [t.time], and sifting them through
     the heap is pure churn. The clock cannot advance while [imm] is
     non-empty (its entries are always at the global minimum time), and
     [pop] merges [imm] against the heap top by (time, seq), so dispatch
     order is bit-identical to the heap-only scheme. *)
  imm : event Queue.t;
  mutable next_seq : int;
  mutable processed : int;
  mutable peak_live : int;
  initial_capacity : int;
  mutable profile_label : string;
}

let dummy_event = Ev { at = 0.0; seq = 0; fn = ignore; arg = () }

(* Largest event-storage high-water mark seen by any engine in this
   process, folded in when [run] returns (not on the push hot path). *)
let global_peak = Atomic.make 0

let rec fold_global_peak peak =
  let cur = Atomic.get global_peak in
  if peak > cur && not (Atomic.compare_and_set global_peak cur peak) then fold_global_peak peak

let global_peak_heap_events () = Atomic.get global_peak

let create ?(capacity = 256) () =
  let capacity = max 16 capacity in
  {
    time = 0.0;
    heap = Array.make capacity dummy_event;
    size = 0;
    imm = Queue.create ();
    next_seq = 0;
    processed = 0;
    peak_live = 0;
    initial_capacity = capacity;
    profile_label = "run";
  }

(* Drop the event arrays after a run so a pooled or still-referenced engine
   does not pin peak memory between clones. Counters survive for stats. *)
let reset t =
  fold_global_peak t.peak_live;
  t.heap <- Array.make 16 dummy_event;
  t.size <- 0;
  Queue.clear t.imm;
  t.time <- 0.0

let set_profile_label t label = t.profile_label <- label

let now t = t.time
let events_processed t = t.processed
let peak_live_events t = t.peak_live

let event_before (Ev a) (Ev b) = a.at < b.at || (a.at = b.at && a.seq < b.seq)

let push_heap t ev =
  if t.size = Array.length t.heap then begin
    (* Grow straight to at least the creation-time hint: a capacity guess
       that proved too small once should not cost log2(n) further copies. *)
    let bigger = Array.make (max (2 * t.size) t.initial_capacity) dummy_event in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  (* Sift up. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  t.heap.(!i) <- ev;
  let continue_up = ref true in
  while !continue_up && !i > 0 do
    let parent = (!i - 1) / 2 in
    if event_before t.heap.(!i) t.heap.(parent) then begin
      let tmp = t.heap.(parent) in
      t.heap.(parent) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := parent
    end
    else continue_up := false
  done

let push_app : type a. t -> float -> (a -> unit) -> a -> unit =
 fun t at fn arg ->
  let at = Float.max at t.time in
  let ev = Ev { at; seq = t.next_seq; fn; arg } in
  t.next_seq <- t.next_seq + 1;
  if at <= t.time then Queue.push ev t.imm else push_heap t ev;
  let live = t.size + Queue.length t.imm in
  if live > t.peak_live then t.peak_live <- live

let push t at fn = push_app t at fn ()

let pop_heap t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    t.heap.(t.size) <- dummy_event;
    (* Sift down. *)
    let i = ref 0 in
    let continue_down = ref true in
    while !continue_down do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.size && event_before t.heap.(l) t.heap.(!smallest) then smallest := l;
      if r < t.size && event_before t.heap.(r) t.heap.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = t.heap.(!smallest) in
        t.heap.(!smallest) <- t.heap.(!i);
        t.heap.(!i) <- tmp;
        i := !smallest
      end
      else continue_down := false
    done;
    Some top
  end

let pop t =
  match Queue.peek_opt t.imm with
  | None -> pop_heap t
  | Some iv ->
      (* A heap event at the same instant but with a lower sequence number
         predates everything in [imm]; otherwise the FIFO front is the
         global (time, seq) minimum. *)
      if t.size > 0 && event_before t.heap.(0) iv then pop_heap t
      else Some (Queue.pop t.imm)

let schedule t at fn = push t at fn

let every t ~start ~period ~until f =
  if not (period > 0.0) then invalid_arg "Engine.every: period must be positive";
  (* tick times are start + k*period, recomputed from k each arm, so a
     long chain of ticks carries no accumulated float error *)
  let rec arm k =
    let at = start +. (float_of_int k *. period) in
    if at <= until then
      push t at (fun () ->
          f at;
          arm (k + 1))
  in
  arm 0

type 'a waker = {
  engine : t;
  mutable resume : ('a -> unit) option;
  mutable woken : bool;
}

type _ Effect.t +=
  | Wait : float -> unit Effect.t
  | Suspend : ('a waker -> unit) -> 'a Effect.t
  | Fork : (unit -> unit) -> unit Effect.t
  | Now : float Effect.t

let rec exec t f =
  match_with f ()
    {
      retc = ignore;
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Wait d ->
              Some
                (fun (k : (a, _) continuation) ->
                  let d = Float.max 0.0 d in
                  push_app t (t.time +. d) (fun k -> continue k ()) k)
          | Now -> Some (fun (k : (a, _) continuation) -> continue k t.time)
          | Fork g ->
              Some
                (fun (k : (a, _) continuation) ->
                  push_app t t.time (exec t) g;
                  continue k ())
          | Suspend register ->
              Some
                (fun (k : (a, _) continuation) ->
                  let w = { engine = t; resume = None; woken = false } in
                  w.resume <- Some (fun v -> continue k v);
                  register w)
          | _ -> None);
    }

let spawn t ?at f =
  let at = match at with Some a -> a | None -> t.time in
  push_app t at (exec t) f

let events_counter = Ditto_obs.Obs.Metrics.counter "sim.events"

let run_loop ?until t =
  let continue_run = ref true in
  while !continue_run do
    match pop t with
    | None -> continue_run := false
    | Some (Ev ev) -> (
        match until with
        | Some limit when ev.at > limit ->
            (* Leave the event unprocessed conceptually; the clock stops at
               the limit. We drop it: runs with [until] are terminal. *)
            t.time <- limit;
            continue_run := false
        | _ ->
            t.time <- ev.at;
            t.processed <- t.processed + 1;
            ev.fn ev.arg)
  done

(* Profiled variant: attribute every event's virtual-time advance to the
   engine's (des -> label -> event) stack on the profiler's Sim track. Kept
   separate from [run_loop] so the unprofiled path stays branch-free. *)
let run_loop_profiled ?until t =
  let continue_run = ref true in
  while !continue_run do
    match pop t with
    | None -> continue_run := false
    | Some (Ev ev) -> (
        match until with
        | Some limit when ev.at > limit ->
            t.time <- limit;
            continue_run := false
        | _ ->
            let before = t.time in
            t.time <- ev.at;
            t.processed <- t.processed + 1;
            Ditto_obs.Profiler.record_sim
              ~stack:[ "des"; t.profile_label; "event" ]
              ~seconds:(ev.at -. before);
            ev.fn ev.arg)
  done

let run ?until t =
  let run_loop ?until t =
    if Ditto_obs.Profiler.enabled () then run_loop_profiled ?until t else run_loop ?until t
  in
  let finish_peak () = fold_global_peak t.peak_live in
  if not (Ditto_obs.Obs.enabled ()) then (
    run_loop ?until t;
    finish_peak ())
  else begin
    let before = t.processed in
    let finish () =
      finish_peak ();
      let events = t.processed - before in
      Ditto_obs.Obs.Metrics.add events_counter events;
      Ditto_obs.Obs.Span.add_attr "events" (Int events);
      Ditto_obs.Obs.Span.add_attr "sim_time" (Float t.time)
    in
    Ditto_obs.Obs.Span.with_span ~name:"sim.run" (fun () ->
        match run_loop ?until t with
        | () -> finish ()
        | exception e ->
            finish ();
            raise e)
  end

let time () = perform Now
let wait d = perform (Wait d)

let wake w v =
  if not w.woken then begin
    w.woken <- true;
    match w.resume with
    | None -> ()
    | Some f ->
        w.resume <- None;
        push_app w.engine w.engine.time f v
  end

let is_woken w = w.woken
let suspend register = perform (Suspend register)

let suspend_timeout d register =
  suspend (fun (outer : 'a option waker) ->
      let inner =
        { engine = outer.engine; resume = Some (fun v -> wake outer (Some v)); woken = false }
      in
      register inner;
      push outer.engine (outer.engine.time +. d) (fun () ->
          if not inner.woken then begin
            inner.woken <- true;
            inner.resume <- None;
            wake outer None
          end))

let fork f = perform (Fork f)

module Ivar = struct
  type 'a v = { mutable value : 'a option; mutable readers : 'a waker list }

  let create () = { value = None; readers = [] }

  let fill v x =
    match v.value with
    | Some _ -> invalid_arg "Ivar.fill: already filled"
    | None ->
        v.value <- Some x;
        List.iter (fun w -> wake w x) v.readers;
        v.readers <- []

  let read v =
    match v.value with
    | Some x -> x
    | None -> suspend (fun w -> v.readers <- w :: v.readers)

  let is_filled v = v.value <> None
end

module Mailbox = struct
  type 'a m = { q : 'a Queue.t; waiters : 'a waker Queue.t }

  let create () = { q = Queue.create (); waiters = Queue.create () }

  let rec deliver m v =
    match Queue.take_opt m.waiters with
    | None -> Queue.push v m.q
    | Some w -> if is_woken w then deliver m v else wake w v

  let send m v = deliver m v

  let recv m =
    match Queue.take_opt m.q with
    | Some v -> v
    | None -> suspend (fun w -> Queue.push w m.waiters)

  let try_recv m = Queue.take_opt m.q

  let recv_timeout m d =
    match Queue.take_opt m.q with
    | Some v -> Some v
    | None -> suspend_timeout d (fun w -> Queue.push w m.waiters)

  let length m = Queue.length m.q
end

module Resource = struct
  type r = { cap : int; mutable in_use : int; waiters : unit waker Queue.t }

  let create cap =
    if cap <= 0 then invalid_arg "Resource.create: capacity must be positive";
    { cap; in_use = 0; waiters = Queue.create () }

  let capacity r = r.cap
  let available r = r.cap - r.in_use

  let acquire r =
    if r.in_use < r.cap then r.in_use <- r.in_use + 1
    else suspend (fun w -> Queue.push w r.waiters)

  (* On release, hand the slot directly to the next live waiter so [in_use]
     stays constant across the transfer; otherwise free the slot. *)
  let rec release r =
    match Queue.take_opt r.waiters with
    | None -> r.in_use <- r.in_use - 1
    | Some w -> if is_woken w then release r else wake w ()

  let with_resource r f =
    acquire r;
    match f () with
    | result ->
        release r;
        result
    | exception e ->
        release r;
        raise e

  let queue_length r = Queue.fold (fun acc w -> if is_woken w then acc else acc + 1) 0 r.waiters
end
