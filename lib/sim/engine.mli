(** Discrete-event simulation engine with effect-based processes.

    Simulated entities (threads, NICs, disks, load generators) are ordinary
    OCaml functions that perform blocking operations — [wait], [suspend] —
    implemented with OCaml 5 effect handlers, so tier logic reads like the
    straight-line pseudo-code of Fig. 3 in the paper (epoll_wait; read;
    handle; sendmsg) while the engine interleaves processes in virtual time.

    Time is in seconds (float). All operations must be performed from within
    a process spawned on the engine. *)

type t
(** An engine instance: virtual clock plus pending-event queue. *)

val create : ?capacity:int -> unit -> t
(** [create ?capacity ()] builds an engine. [capacity] (default 256) is a
    hint for the number of simultaneously pending events: the event heap is
    pre-sized to it so wide runs (hundreds of tiers) never pay repeated
    array doubling, and an undersized guess grows straight back to the hint
    rather than by powers of two from the current size. *)

val reset : t -> unit
(** Drop the engine's event storage (heap array and immediate queue) and
    rewind the clock, releasing peak memory once a run is over so pooled or
    still-referenced engines don't pin it between back-to-back clones.
    [events_processed] and {!peak_live_events} survive for reporting. *)

val now : t -> float
(** Current virtual time. *)

val schedule : t -> float -> (unit -> unit) -> unit
(** [schedule t at f] runs callback [f] at absolute time [at] (clamped to
    now). Callbacks may spawn processes and wake suspended ones. *)

val spawn : t -> ?at:float -> (unit -> unit) -> unit
(** Start a new process at absolute time [at] (default: now). *)

val every : t -> start:float -> period:float -> until:float -> (float -> unit) -> unit
(** [every t ~start ~period ~until f] runs callback [f at] at each tick
    [at = start + k * period] for [k = 0, 1, ...] while [at <= until].
    Tick times are computed from [k] (not by accumulating [period]) so
    long chains don't drift. Like {!schedule} callbacks, [f] runs outside
    process context: it must not perform engine effects — it receives the
    tick's virtual time as its argument instead of reading the clock.
    Raises [Invalid_argument] if [period] is not positive. *)

val run : ?until:float -> t -> unit
(** Drain the event queue, advancing the clock; stop early once the clock
    would exceed [until]. *)

val events_processed : t -> int
(** Total events executed so far (for engine benchmarking). *)

val peak_live_events : t -> int
(** High-water mark of simultaneously pending events (heap + immediate
    queue) over this engine's lifetime — the number [create]'s [?capacity]
    hint should cover. *)

val global_peak_heap_events : unit -> int
(** Largest {!peak_live_events} observed by any engine in this process
    (folded in when [run] returns or [reset] is called); exported by
    [bench --json] as [engine.peak_heap_events]. *)

val set_profile_label : t -> string -> unit
(** Label under which this engine's event processing is sampled when
    {!Ditto_obs.Profiler} is enabled (stack [des;label;event] on the [Sim]
    track, weighted by virtual-time advance). Default ["run"];
    {!Ditto_app.Runner} sets it to the application name. *)

(** {1 Operations available inside processes} *)

val time : unit -> float
(** Current virtual time, from within a process. *)

val wait : float -> unit
(** Block the calling process for a (non-negative) duration. *)

type 'a waker
(** One-shot resumption handle for a suspended process. *)

val wake : 'a waker -> 'a -> unit
(** Resume the suspended process with a value, at the engine's current
    time. Waking an already-woken waker is a no-op. *)

val is_woken : 'a waker -> bool

val suspend : ('a waker -> unit) -> 'a
(** [suspend register] parks the calling process and hands a waker to
    [register]; the process resumes when someone calls [wake]. *)

val suspend_timeout : float -> ('a waker -> unit) -> 'a option
(** Like [suspend], but resumes with [None] after the timeout if not woken
    earlier. *)

val fork : (unit -> unit) -> unit
(** Spawn a sibling process on the same engine, starting now. *)

(** {1 Synchronisation primitives} *)

module Ivar : sig
  (** Write-once cell: readers block until the value is set. *)

  type 'a v

  val create : unit -> 'a v
  val fill : 'a v -> 'a -> unit
  (** Raises [Invalid_argument] if already filled. *)

  val read : 'a v -> 'a
  (** Blocks until filled. *)

  val is_filled : 'a v -> bool
end

module Mailbox : sig
  (** Unbounded FIFO channel between processes. *)

  type 'a m

  val create : unit -> 'a m
  val send : 'a m -> 'a -> unit
  (** Never blocks; wakes one waiting receiver if any. *)

  val recv : 'a m -> 'a
  (** Blocks until a message is available. *)

  val recv_timeout : 'a m -> float -> 'a option
  val try_recv : 'a m -> 'a option
  val length : 'a m -> int
end

module Resource : sig
  (** Counted resource (semaphore) with FIFO waiters — models cores, disk
      channels, NIC transmit slots. *)

  type r

  val create : int -> r
  (** [create capacity]; capacity must be positive. *)

  val capacity : r -> int
  val available : r -> int
  val acquire : r -> unit
  (** Blocks until a unit is free. *)

  val release : r -> unit
  val with_resource : r -> (unit -> 'a) -> 'a
  val queue_length : r -> int
  (** Number of processes currently blocked in [acquire]. *)
end
