(* DDSketch-style log-bucketed histogram. See the .mli for the error-bound
   argument; the key invariant here is that every operation is
   deterministic given the sequence of added values: bucket indices come
   from [log]/[ceil] on the value alone, counts are integers, and queries
   sort the bucket keys before walking them so Hashtbl iteration order
   never leaks into results. *)

(* Values at or below this threshold collapse into the zero bucket: the
   log-bucket index of a denormal-small latency would be a huge negative
   int for no informational gain. *)
let tiny = 1e-12

type t = {
  alpha : float;
  gamma : float;
  log_gamma : float;
  counts : (int, int) Hashtbl.t;
  mutable zero : int;
  mutable n : int;
  mutable vmin : float;
  mutable vmax : float;
}

let create ?(alpha = 0.01) () =
  if not (alpha > 0.0 && alpha < 1.0) then
    invalid_arg "Histogram.create: alpha must be in (0, 1)";
  let gamma = (1.0 +. alpha) /. (1.0 -. alpha) in
  {
    alpha;
    gamma;
    log_gamma = log gamma;
    counts = Hashtbl.create 64;
    zero = 0;
    n = 0;
    vmin = infinity;
    vmax = neg_infinity;
  }

let alpha t = t.alpha
let count t = t.n
let zero_count t = t.zero
let min_value t = if t.n = 0 then 0.0 else t.vmin
let max_value t = if t.n = 0 then 0.0 else t.vmax

let bucket_of t v = int_of_float (Float.ceil (log v /. t.log_gamma))

let add t v =
  t.n <- t.n + 1;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v;
  if v <= tiny then t.zero <- t.zero + 1
  else
    let i = bucket_of t v in
    let c = match Hashtbl.find_opt t.counts i with Some c -> c | None -> 0 in
    Hashtbl.replace t.counts i (c + 1)

let buckets t =
  Hashtbl.fold (fun i c acc -> (i, c) :: acc) t.counts []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Midpoint estimate for bucket [i], which covers (gamma^(i-1), gamma^i]:
   2 gamma^i / (gamma + 1) = the value x with
   x / gamma^(i-1) = gamma^i / x', i.e. equidistant in relative terms from
   both bucket edges, giving relative error <= alpha at either edge. *)
let estimate t i = 2.0 *. (t.gamma ** float_of_int i) /. (t.gamma +. 1.0)

let quantile t q =
  if not (q >= 0.0 && q <= 1.0) then invalid_arg "Histogram.quantile: q outside [0, 1]";
  if t.n = 0 then 0.0
  else
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int t.n))) in
    if rank <= t.zero then 0.0
    else
      let rec walk acc = function
        | [] -> t.vmax (* all counts consumed: the rank is the maximum *)
        | (i, c) :: rest ->
            let acc = acc + c in
            if acc >= rank then estimate t i else walk acc rest
      in
      walk t.zero (buckets t)

let merge a b =
  if a.alpha <> b.alpha then invalid_arg "Histogram.merge: alpha mismatch";
  let t = create ~alpha:a.alpha () in
  let blend src =
    Hashtbl.iter
      (fun i c ->
        let c0 = match Hashtbl.find_opt t.counts i with Some c0 -> c0 | None -> 0 in
        Hashtbl.replace t.counts i (c0 + c))
      src.counts;
    t.zero <- t.zero + src.zero;
    t.n <- t.n + src.n;
    if src.n > 0 then begin
      if src.vmin < t.vmin then t.vmin <- src.vmin;
      if src.vmax > t.vmax then t.vmax <- src.vmax
    end
  in
  blend a;
  blend b;
  t
