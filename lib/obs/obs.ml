(* Self-tracing and telemetry for the cloning pipeline itself.

   The design mirrors what the pipeline ingests: Jaeger-style spans with
   parent/child references. Recording is per-domain — each domain owns a
   ring buffer reached through Domain.DLS, so the hot path never takes a
   lock or touches another domain's cache lines; buffers are merged (and
   sorted by start time) only at export. When tracing is disabled every
   entry point reduces to a single Atomic.get on the global flag. *)

module J = Ditto_util.Jsonx

(* {1 Global switch} *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag

(* {1 Attributes} *)

type attr = Str of string | Float of float | Int of int | Bool of bool

let attr_to_json = function
  | Str s -> J.Str s
  | Float f -> J.Num f
  | Int i -> J.int i
  | Bool b -> J.Bool b

(* {1 Spans and per-domain ring buffers} *)

type completed = {
  trace_id : int;
  span_id : int;
  parent_id : int option;
  name : string;
  domain : int;
  start_ns : int64;
  dur_ns : int64;
  attrs : (string * attr) list;
}

(* An open span: lives on its domain's stack until [with_span] returns. *)
type frame = {
  f_trace : int;
  f_span : int;
  f_parent : int option;
  f_name : string;
  f_start : int64;
  mutable f_attrs : (string * attr) list; (* reversed accumulation *)
}

type buffer = {
  dom : int; (* registration index, used as span-id namespace and tid *)
  mutable ring : completed array;
  mutable widx : int; (* total spans ever written; ring slot is widx mod cap *)
  mutable stack : frame list;
  mutable next_span : int;
  mutable next_trace : int;
}

let dummy_completed =
  {
    trace_id = 0;
    span_id = 0;
    parent_id = None;
    name = "";
    domain = 0;
    start_ns = 0L;
    dur_ns = 0L;
    attrs = [];
  }

let default_capacity = 65536
let capacity = Atomic.make default_capacity
let set_capacity n = Atomic.set capacity (max 1 n)

(* Registered once per domain, on that domain's first recording; the
   mutex guards registration and export only, never span recording. *)
let registry : buffer list ref = ref []
let registry_mutex = Mutex.create ()

let buffer_key =
  Domain.DLS.new_key (fun () ->
      Mutex.lock registry_mutex;
      let b =
        {
          dom = List.length !registry;
          ring = Array.make (Atomic.get capacity) dummy_completed;
          widx = 0;
          stack = [];
          next_span = 1;
          next_trace = 1;
        }
      in
      registry := !registry @ [ b ];
      Mutex.unlock registry_mutex;
      b)

let buffer () = Domain.DLS.get buffer_key

let buffers () =
  Mutex.lock registry_mutex;
  let bs = !registry in
  Mutex.unlock registry_mutex;
  bs

let dropped_spans () =
  List.fold_left (fun acc b -> acc + max 0 (b.widx - Array.length b.ring)) 0 (buffers ())

let record b c =
  let cap = Array.length b.ring in
  b.ring.(b.widx mod cap) <- c;
  b.widx <- b.widx + 1

(* Ids carry the owning domain in the high bits so allocation is
   contention-free yet globally unique. *)
let id_of b local = (b.dom lsl 32) lor local

type context = { ctx_trace : int; ctx_span : int; ctx_name : string }

let current () =
  if not (enabled ()) then None
  else
    match (buffer ()).stack with
    | [] -> None
    | fr :: _ -> Some { ctx_trace = fr.f_trace; ctx_span = fr.f_span; ctx_name = fr.f_name }

let now_ns () = Monotonic_clock.now ()

module Span = struct
  let with_span ?parent ?(attrs = []) ~name f =
    if not (enabled ()) then f ()
    else begin
      let b = buffer () in
      let trace, parent_id =
        match parent with
        | Some c -> (c.ctx_trace, Some c.ctx_span)
        | None -> (
            match b.stack with
            | fr :: _ -> (fr.f_trace, Some fr.f_span)
            | [] ->
                let t = id_of b b.next_trace in
                b.next_trace <- b.next_trace + 1;
                (t, None))
      in
      let span_id = id_of b b.next_span in
      b.next_span <- b.next_span + 1;
      let fr =
        {
          f_trace = trace;
          f_span = span_id;
          f_parent = parent_id;
          f_name = name;
          f_start = now_ns ();
          f_attrs = List.rev attrs;
        }
      in
      b.stack <- fr :: b.stack;
      let finish () =
        let stop = now_ns () in
        (match b.stack with
        | top :: rest when top == fr -> b.stack <- rest
        | stack -> b.stack <- List.filter (fun f' -> not (f' == fr)) stack);
        record b
          {
            trace_id = fr.f_trace;
            span_id = fr.f_span;
            parent_id = fr.f_parent;
            name = fr.f_name;
            domain = b.dom;
            start_ns = fr.f_start;
            dur_ns = Int64.max 0L (Int64.sub stop fr.f_start);
            attrs = List.rev fr.f_attrs;
          }
      in
      match f () with
      | v ->
          finish ();
          v
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          finish ();
          Printexc.raise_with_backtrace e bt
    end

  let add_attr name v =
    if enabled () then
      match (buffer ()).stack with
      | [] -> ()
      | fr :: _ -> fr.f_attrs <- (name, v) :: fr.f_attrs
end

(* {1 Metrics registry} *)

module Metrics = struct
  type counter = { c_name : string; c_cell : int Atomic.t }

  let lock = Mutex.create ()
  let counters : (string, counter) Hashtbl.t = Hashtbl.create 16
  let gauges : (string, unit -> float) Hashtbl.t = Hashtbl.create 16

  let counter name =
    Mutex.lock lock;
    let c =
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
          let c = { c_name = name; c_cell = Atomic.make 0 } in
          Hashtbl.replace counters name c;
          c
    in
    Mutex.unlock lock;
    c

  let add c n = if enabled () then ignore (Atomic.fetch_and_add c.c_cell n)
  let incr c = add c 1
  let value c = Atomic.get c.c_cell
  let name c = c.c_name

  let register_gauge gname f =
    Mutex.lock lock;
    Hashtbl.replace gauges gname f;
    Mutex.unlock lock

  let snapshot () =
    Mutex.lock lock;
    let cs =
      Hashtbl.fold (fun n c acc -> (n, float_of_int (Atomic.get c.c_cell)) :: acc) counters []
    in
    let gs = Hashtbl.fold (fun n f acc -> (n, f ()) :: acc) gauges [] in
    Mutex.unlock lock;
    List.sort (fun (a, _) (b, _) -> compare a b) (cs @ gs)

  let reset () =
    Mutex.lock lock;
    Hashtbl.iter (fun _ c -> Atomic.set c.c_cell 0) counters;
    Mutex.unlock lock
end

(* {1 Pool instrumentation hook}

   Ditto_util sits below this library, so the pool exposes a neutral
   task-wrapping hook and we install the span-creating wrapper here. The
   hook runs at submission time, which is exactly what lets a task record
   its submitter's span as parent even though it executes on another
   domain. *)

let pool_task_hook task =
  if not (enabled ()) then task
  else begin
    let parent = current () in
    let name =
      match parent with Some c -> "pool.task:" ^ c.ctx_name | None -> "pool.task"
    in
    fun () -> Span.with_span ?parent ~name task
  end

let hooks_installed = Atomic.make false

let install_hooks () =
  if not (Atomic.exchange hooks_installed true) then begin
    Ditto_util.Pool.set_task_hook pool_task_hook;
    let pool_gauge field =
      Metrics.register_gauge ("pool." ^ field) (fun () ->
          let s = Ditto_util.Pool.stats () in
          float_of_int
            (match field with
            | "tasks_queued" -> s.Ditto_util.Pool.tasks_queued
            | "tasks_stolen" -> s.Ditto_util.Pool.tasks_stolen
            | _ -> s.Ditto_util.Pool.tasks_by_workers))
    in
    List.iter pool_gauge [ "tasks_queued"; "tasks_stolen"; "tasks_by_workers" ];
    Metrics.register_gauge "obs.spans_dropped" (fun () -> float_of_int (dropped_spans ()))
  end

let enable () =
  install_hooks ();
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false

(* {1 Exporters} *)

module Export = struct
  let spans () =
    List.concat_map
      (fun b ->
        let cap = Array.length b.ring in
        let n = min b.widx cap in
        List.init n (fun i -> b.ring.((b.widx - n + i) mod cap)))
      (buffers ())
    |> List.sort (fun a b ->
           compare (a.start_ns, a.domain, a.span_id) (b.start_ns, b.domain, b.span_id))

  let dropped = dropped_spans

  let clear () =
    List.iter
      (fun b ->
        b.widx <- 0;
        b.ring <- Array.make (Atomic.get capacity) dummy_completed)
      (buffers ())

  let us_of_ns ns = Int64.to_float ns /. 1e3
  let hex = Printf.sprintf "%x"

  let to_chrome () =
    let spans = spans () in
    let base =
      match spans with [] -> 0L | s :: _ -> s.start_ns
      (* spans are sorted by start time, so the head is the origin *)
    in
    let events =
      List.map
        (fun b ->
          J.Obj
            [
              ("name", J.Str "thread_name");
              ("ph", J.Str "M");
              ("pid", J.int 1);
              ("tid", J.int b.dom);
              ("args", J.Obj [ ("name", J.Str (Printf.sprintf "domain %d" b.dom)) ]);
            ])
        (buffers ())
      @ List.map
          (fun s ->
            J.Obj
              [
                ("name", J.Str s.name);
                ("cat", J.Str "ditto");
                ("ph", J.Str "X");
                ("ts", J.Num (us_of_ns (Int64.sub s.start_ns base)));
                ("dur", J.Num (us_of_ns s.dur_ns));
                ("pid", J.int 1);
                ("tid", J.int s.domain);
                ( "args",
                  J.Obj
                    (("trace", J.Str (hex s.trace_id))
                    :: List.map (fun (k, v) -> (k, attr_to_json v)) s.attrs) );
              ])
          spans
    in
    J.Obj
      [
        ("traceEvents", J.List events);
        ("displayTimeUnit", J.Str "ms");
        ("dittoMetrics", J.Obj (List.map (fun (k, v) -> (k, J.Num v)) (Metrics.snapshot ())));
      ]

  let jaeger_tag (k, v) =
    let ty, jv =
      match v with
      | Str s -> ("string", J.Str s)
      | Float f -> ("float64", J.Num f)
      | Int i -> ("int64", J.int i)
      | Bool b -> ("bool", J.Bool b)
    in
    J.Obj [ ("key", J.Str k); ("type", J.Str ty); ("value", jv) ]

  let to_jaeger ?(service = "ditto") () =
    let spans = spans () in
    let traces : (int, completed list ref) Hashtbl.t = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun s ->
        match Hashtbl.find_opt traces s.trace_id with
        | Some r -> r := s :: !r
        | None ->
            Hashtbl.add traces s.trace_id (ref [ s ]);
            order := s.trace_id :: !order)
      spans;
    let span_json s =
      J.Obj
        [
          ("traceID", J.Str (hex s.trace_id));
          ("spanID", J.Str (hex s.span_id));
          ("operationName", J.Str s.name);
          ( "references",
            match s.parent_id with
            | None -> J.List []
            | Some p ->
                J.List
                  [
                    J.Obj
                      [
                        ("refType", J.Str "CHILD_OF");
                        ("traceID", J.Str (hex s.trace_id));
                        ("spanID", J.Str (hex p));
                      ];
                  ] );
          ("startTime", J.Num (us_of_ns s.start_ns));
          ("duration", J.Num (us_of_ns s.dur_ns));
          ("processID", J.Str (Printf.sprintf "p%d" s.domain));
          ("tags", J.List (List.map jaeger_tag s.attrs));
        ]
    in
    let trace_json tid =
      let ss = List.rev !(Hashtbl.find traces tid) in
      let domains = List.sort_uniq compare (List.map (fun s -> s.domain) ss) in
      J.Obj
        [
          ("traceID", J.Str (hex tid));
          ("spans", J.list span_json ss);
          ( "processes",
            J.Obj
              (List.map
                 (fun d -> (Printf.sprintf "p%d" d, J.Obj [ ("serviceName", J.Str service) ]))
                 domains) );
        ]
    in
    J.Obj [ ("data", J.list trace_json (List.rev !order)) ]

  let write path json =
    let oc = open_out path in
    output_string oc (J.to_string ~pretty:true json);
    output_char oc '\n';
    close_out oc

  let write_chrome path = write path (to_chrome ())
  let write_jaeger ?service path = write path (to_jaeger ?service ())
end
