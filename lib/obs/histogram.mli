(** Log-bucketed streaming quantile histogram (DDSketch-style).

    Positive values are mapped to geometric buckets: with
    [gamma = (1 + alpha) / (1 - alpha)], value [v > 0] lands in bucket
    [i = ceil (log_gamma v)], i.e. the bucket covering
    [(gamma^(i-1), gamma^i]]. A quantile query walks the buckets in index
    order and returns the bucket midpoint estimate
    [2 * gamma^i / (gamma + 1)].

    Error bound: for any [v] in bucket [i],
    [gamma^(i-1) < v <= gamma^i], and the estimate
    [x = 2 gamma^i / (gamma + 1)] satisfies
    [|x - v| / v <= (gamma - 1) / (gamma + 1) = alpha] — so every
    reported quantile is within relative error [alpha] of some sample at
    the same rank (the bucket walk preserves ranks exactly; only the
    representative value inside the bucket is approximate).

    Values [<= min_positive] (including zero and negatives) are counted in
    a dedicated zero bucket and reported as [0.]. Merging adds integer
    bucket counts, so [merge] is associative and commutative — unlike
    float summation — and the result is bit-identical regardless of merge
    order. All state is per-value-deterministic: no wall clock, no
    randomness, no hash-order dependence (queries sort bucket indices). *)

type t

val create : ?alpha:float -> unit -> t
(** [alpha] is the relative-error bound, default [0.01] (1%). Must be in
    (0, 1). *)

val alpha : t -> float
val add : t -> float -> unit
val count : t -> int
val min_value : t -> float
(** Exact smallest added value; [0.] when empty. *)

val max_value : t -> float
(** Exact largest added value; [0.] when empty. *)

val quantile : t -> float -> float
(** [quantile t q] with [q] in [0, 1]: nearest-rank quantile — the
    estimate for the sample at (1-based) rank
    [max 1 (ceil (q * count))]. Returns [0.] on an empty histogram.
    Raises [Invalid_argument] if [q] is outside [0, 1]. *)

val merge : t -> t -> t
(** Fresh histogram holding both inputs' samples; inputs are unchanged.
    Raises [Invalid_argument] if the two [alpha]s differ. *)

val buckets : t -> (int * int) list
(** Sorted [(bucket_index, count)] pairs, excluding the zero bucket —
    a deterministic serialisation of the sketch state. *)

val zero_count : t -> int
