(** Request-centric tracing on the simulated (DES) clock.

    Where {!Timeseries} aggregates per-window counts, [Reqtrace] follows
    individual requests through the tier DAG: a deterministically sampled
    request gets a span tree — a client root span, one RPC span per
    downstream call attempt (client-side view: send to reply/timeout) and
    one server span per tier that handled it — whose typed segments
    decompose the time: accept-queue wait, service/compute, retry
    backoff. {!Ditto_report.Critpath} folds these trees into per-tier ×
    segment latency-contribution tables.

    Off by default, same discipline as {!Profiler}/{!Timeseries}: the
    disabled path in every service hook is one atomic load, so pool-size
    bit-identity of the simulation is untouched. Sampling never draws
    from the run's RNG streams — the decision hashes the run seed with a
    per-run request sequence number — and recording never performs engine
    effects, so an enabled run's simulated results are byte-identical to
    a disabled run's. A collector is only ever touched from the single
    domain executing its run's engine; no locking.

    Trace context crosses tiers as an opaque span id riding
    [Ditto_net.Socket.msg.meta] ([0] = unsampled), so [lib/net] stays
    free of any observability dependency. *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val client_tier : string
(** Tier name of client root spans: ["client"] (same as
    {!Timeseries.client_tier}). *)

(** {1 Span model} *)

type segment_kind =
  | Queue  (** accept-queue wait: message delivery to handling start *)
  | Service  (** service/compute: CPU, disk and think segments of the replayed trace *)
  | Backoff  (** retry backoff sleeps between downstream attempts *)

val segment_name : segment_kind -> string
(** ["queue"] / ["service"] / ["backoff"]. *)

type outcome =
  | Ok
  | Err  (** error reply (downstream failure surfaced upstream) *)
  | Shed  (** rejected by load shedding before any work *)
  | Timeout  (** per-call or client deadline expired; no reply consumed *)

val outcome_name : outcome -> string

type span_kind =
  | Client  (** load-generator root: one per sampled request *)
  | Rpc  (** one call attempt, client side: send until reply/timeout *)
  | Server  (** one tier handling the request *)

type segment = { seg_kind : segment_kind; seg_start : float; seg_dur : float }

type span = {
  sp_id : int;  (** unique within the collector, > 0 *)
  sp_parent : int;  (** [0] for roots *)
  sp_kind : span_kind;
  sp_tier : string;  (** server: handling tier; rpc: target tier; client: {!client_tier} *)
  mutable sp_op : int;
      (** request type: index of the measured trace replayed at the entry
          tier; [-1] until known (propagated to the root on finish) *)
  sp_arrive : float;  (** servers: message delivery time; others: creation time *)
  sp_start : float;  (** servers: handling start; rpc: send time *)
  mutable sp_end : float;  (** [nan] while open; closed by finish/finalize *)
  mutable sp_outcome : outcome;
  mutable sp_req_bytes : int;
  mutable sp_resp_bytes : int;
  mutable sp_segs : segment list;  (** chronological *)
  mutable sp_children : span list;  (** chronological (creation order) *)
}

type t

val create : ?sample_every:int -> ?max_traces:int -> ?max_per_type:int -> seed:int -> unit -> t
(** A per-run collector. One request in [sample_every] (default 7) is
    sampled, chosen by hashing [seed] with the request's arrival sequence
    number — deterministic, independent of every simulation RNG stream.
    At most [max_traces] traces are kept per run (default 512) and at
    most [max_per_type] per request type (default 64; the quota is
    enforced when the type is known, at the root's finish). *)

(** {1 Recording hooks} ([span] = 0 means "not sampled": every recorder
    is a no-op then, so call sites stay branch-free) *)

val client_start : t -> at:float -> int
(** Called for every client request; counts it and returns the root span
    id when this request is sampled, [0] otherwise. *)

val client_finish : t -> span:int -> at:float -> outcome -> unit

val rpc_begin : t -> parent:int -> target:string -> bytes:int -> at:float -> int
(** One downstream (or client → entry) call attempt; the returned id is
    the trace context to ride the request message ([Socket.send ~meta]). *)

val rpc_end : t -> span:int -> ?bytes:int -> at:float -> outcome -> unit

val server_begin : t -> parent:int -> tier:string -> bytes:int -> arrived:float -> at:float -> int
(** Tier starts handling a sampled request ([parent] = the message's meta,
    an RPC span id). Records the accept-queue wait [at - arrived]. *)

val server_op : t -> span:int -> op:int -> unit
(** The measured-trace index the tier chose to replay (the request type,
    when recorded at the entry tier). *)

val server_end : t -> span:int -> ?bytes:int -> at:float -> outcome -> unit

val segment : t -> span:int -> segment_kind -> start:float -> dur:float -> unit
(** A typed segment on an open span (service/compute work, backoff). *)

val finalize : t -> at:float -> unit
(** End of run: closes every still-open span at [at] (a request in
    flight at teardown keeps its partial tree, outcome {!Timeout}) and
    freezes segment/child lists into chronological order. Idempotent. *)

(** {1 Reading} (valid after {!finalize}) *)

val requests_seen : t -> int
val sampled : t -> int
(** Kept traces (after per-type quota drops). *)

val traces : t -> span list
(** Root spans of the kept traces, in request order. *)

val jaeger : t -> Ditto_util.Jsonx.t
(** Jaeger JSON ({["data": [...]]}) with one trace per sampled request:
    client root + server spans (RPC spans are folded into the parent
    chain), hex ids, CHILD_OF references, [operationName] = tier,
    [req_bytes]/[resp_bytes] integer tags, start/duration in simulated
    microseconds — exactly the subset [Ditto_trace.Jaeger.of_string]
    parses, so the export round-trips through [inspect-trace]. *)

val write_jaeger : string -> t -> unit
