module J = Ditto_util.Jsonx

(* Global switch, same discipline as Profiler: the disabled path in the
   service hooks is one atomic load and nothing else, so the event stream
   of a telemetry-off run is byte-identical to pre-telemetry builds. *)
let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

let client_tier = "client"

type counter = Timeouts | Retries | Shed | Failures | Degraded

type row = {
  r_completed : int;
  r_p50 : float;
  r_p95 : float;
  r_p99 : float;
  r_timeouts : int;
  r_retries : int;
  r_shed : int;
  r_failures : int;
  r_degraded : int;
  r_cpu_seconds : float;
  r_queue_depth : int;
  r_replicas : int;
}

type series = {
  completed : int array;
  (* latency sketches are allocated lazily: most tiers see traffic in
     every window, but a crashed tier's windows stay empty *)
  lat : Histogram.t option array;
  timeouts : int array;
  retries : int array;
  shed : int array;
  failures : int array;
  degraded : int array;
  cpu : float array;
  queue : int array;
  replicas : int array;
  mutable rate_basis : float;  (* insts per request; 0. until set *)
}

type t = {
  start : float;
  window : float;
  nwin : int;
  alpha : float;
  order : string list;
  tbl : (string, series) Hashtbl.t;
  mutable marks_rev : (float * string) list;
}

let create ?(windows = 24) ?(alpha = 0.01) ~start ~duration ~tiers () =
  if windows <= 0 then invalid_arg "Timeseries.create: windows must be positive";
  if duration <= 0.0 then invalid_arg "Timeseries.create: duration must be positive";
  let order = tiers @ [ client_tier ] in
  let tbl = Hashtbl.create (List.length order) in
  List.iter
    (fun name ->
      Hashtbl.replace tbl name
        {
          completed = Array.make windows 0;
          lat = Array.make windows None;
          timeouts = Array.make windows 0;
          retries = Array.make windows 0;
          shed = Array.make windows 0;
          failures = Array.make windows 0;
          degraded = Array.make windows 0;
          cpu = Array.make windows 0.0;
          queue = Array.make windows 0;
          replicas = Array.make windows 0;
          rate_basis = 0.0;
        })
    order;
  {
    start;
    window = duration /. float_of_int windows;
    nwin = windows;
    alpha;
    order;
    tbl;
    marks_rev = [];
  }

let start_time t = t.start
let window_seconds t = t.window
let windows t = t.nwin
let tiers t = t.order
let marks t = List.rev t.marks_rev

let series t tier =
  match Hashtbl.find_opt t.tbl tier with
  | Some s -> s
  | None -> invalid_arg ("Timeseries: unknown tier " ^ tier)

(* Samples arriving during the post-load drain (at >= start + duration)
   are dropped, not clamped: clamping would inflate the last window with
   an unbounded tail and skew its error against the other side. *)
let window_index t at =
  if at < t.start then None
  else
    let i = int_of_float ((at -. t.start) /. t.window) in
    if i >= t.nwin then None else Some i

let record_latency t ~tier ~at ~seconds =
  match window_index t at with
  | None -> ()
  | Some i ->
      let s = series t tier in
      s.completed.(i) <- s.completed.(i) + 1;
      let h =
        match s.lat.(i) with
        | Some h -> h
        | None ->
            let h = Histogram.create ~alpha:t.alpha () in
            s.lat.(i) <- Some h;
            h
      in
      Histogram.add h seconds

let record_counter t ~tier ~at c =
  match window_index t at with
  | None -> ()
  | Some i -> (
      let s = series t tier in
      match c with
      | Timeouts -> s.timeouts.(i) <- s.timeouts.(i) + 1
      | Retries -> s.retries.(i) <- s.retries.(i) + 1
      | Shed -> s.shed.(i) <- s.shed.(i) + 1
      | Failures -> s.failures.(i) <- s.failures.(i) + 1
      | Degraded -> s.degraded.(i) <- s.degraded.(i) + 1)

let record_cpu t ~tier ~at ~seconds =
  match window_index t at with
  | None -> ()
  | Some i ->
      let s = series t tier in
      s.cpu.(i) <- s.cpu.(i) +. seconds

let record_queue t ~tier ~at ~depth =
  match window_index t at with
  | None -> ()
  | Some i ->
      let s = series t tier in
      if depth > s.queue.(i) then s.queue.(i) <- depth

(* Replica counts are a step function sampled by the autoscaler at each
   scale event (and at arming time): record the max seen per window and
   carry the last value forward at read time so quiet windows still show
   the live count. *)
let record_replicas t ~tier ~at ~count =
  match window_index t at with
  | None -> ()
  | Some i ->
      let s = series t tier in
      if count > s.replicas.(i) then s.replicas.(i) <- count

let mark t ~at ~label = t.marks_rev <- (at, label) :: t.marks_rev
let set_rate_basis t ~tier ~insts_per_req = (series t tier).rate_basis <- insts_per_req
let insts_per_req t ~tier = (series t tier).rate_basis

let row t ~tier i =
  if i < 0 || i >= t.nwin then invalid_arg "Timeseries.row: window out of range";
  let s = series t tier in
  let p q = match s.lat.(i) with None -> 0.0 | Some h -> Histogram.quantile h q in
  {
    r_completed = s.completed.(i);
    r_p50 = p 0.5;
    r_p95 = p 0.95;
    r_p99 = p 0.99;
    r_timeouts = s.timeouts.(i);
    r_retries = s.retries.(i);
    r_shed = s.shed.(i);
    r_failures = s.failures.(i);
    r_degraded = s.degraded.(i);
    r_cpu_seconds = s.cpu.(i);
    r_queue_depth = s.queue.(i);
    r_replicas =
      (let rec back j = if j < 0 then 0 else if s.replicas.(j) > 0 then s.replicas.(j) else back (j - 1) in
       back i);
  }

(* --- OpenMetrics text exposition ------------------------------------- *)

let escape_label v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let label_set kvs =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v)) kvs)
  ^ "}"

let openmetrics groups =
  let b = Buffer.create 4096 in
  let sample name labels value ts =
    Buffer.add_string b
      (Printf.sprintf "%s%s %.9g %.6f\n" name (label_set labels) value ts)
  in
  (* one family at a time: OpenMetrics requires all samples of a metric
     family to be contiguous *)
  let family name typ help per_window =
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name typ);
    Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
    List.iter
      (fun (labels, t) ->
        List.iter
          (fun tier ->
            for i = 0 to t.nwin - 1 do
              let ts = t.start +. (float_of_int (i + 1) *. t.window) in
              per_window ~name ~labels:(("tier", tier) :: labels) ~t ~tier ~i ~ts
                ~emit:(fun ?(extra = []) v -> sample name (("tier", tier) :: labels @ extra) v ts)
            done)
          t.order)
      groups
  in
  let simple (f : t:t -> r:row -> emit:(?extra:(string * string) list -> float -> unit) -> unit)
      ~name:_ ~labels:_ ~t ~tier ~i ~ts:_ ~emit =
    let r = row t ~tier i in
    f ~t ~r ~emit
  in
  family "ditto_window_completed" "gauge" "requests completed in the window"
    (simple (fun ~t:_ ~r ~emit -> emit (float_of_int r.r_completed)));
  family "ditto_throughput_qps" "gauge" "windowed throughput, requests per simulated second"
    (simple (fun ~t ~r ~emit -> emit (float_of_int r.r_completed /. t.window)));
  family "ditto_latency_seconds" "gauge" "windowed latency quantiles (log-bucketed sketch)"
    (simple (fun ~t:_ ~r ~emit ->
         emit ~extra:[ ("quantile", "0.5") ] r.r_p50;
         emit ~extra:[ ("quantile", "0.95") ] r.r_p95;
         emit ~extra:[ ("quantile", "0.99") ] r.r_p99));
  family "ditto_queue_depth" "gauge" "max accept-queue depth sampled in the window"
    (simple (fun ~t:_ ~r ~emit -> emit (float_of_int r.r_queue_depth)));
  family "ditto_faults" "gauge" "fault counters in the window, by kind"
    (simple (fun ~t:_ ~r ~emit ->
         emit ~extra:[ ("kind", "timeout") ] (float_of_int r.r_timeouts);
         emit ~extra:[ ("kind", "retry") ] (float_of_int r.r_retries);
         emit ~extra:[ ("kind", "shed") ] (float_of_int r.r_shed);
         emit ~extra:[ ("kind", "failure") ] (float_of_int r.r_failures);
         emit ~extra:[ ("kind", "degraded") ] (float_of_int r.r_degraded)));
  family "ditto_cpu_seconds" "gauge" "on-CPU seconds accumulated in the window"
    (simple (fun ~t:_ ~r ~emit -> emit r.r_cpu_seconds));
  (* replica counts only exist under an autoscaling policy; suppress the
     family entirely otherwise so pre-surge exports stay byte-identical *)
  (if List.exists
       (fun (_, t) -> List.exists (fun tier -> Array.exists (fun c -> c > 0) (series t tier).replicas) t.order)
       groups
   then
     family "ditto_replicas" "gauge" "live replica count (autoscaler, carried forward per window)"
       (simple (fun ~t:_ ~r ~emit -> emit (float_of_int r.r_replicas))));
  family "ditto_insts_per_sec" "gauge"
    "rate-form instruction counter: measured insts/request x windowed throughput"
    (fun ~name:_ ~labels:_ ~t ~tier ~i ~ts:_ ~emit ->
      let basis = insts_per_req t ~tier in
      if basis > 0.0 then
        let r = row t ~tier i in
        emit (basis *. float_of_int r.r_completed /. t.window));
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

let to_openmetrics ?(labels = []) t = openmetrics [ (labels, t) ]

(* --- Chrome trace counter events ------------------------------------- *)

let chrome_events ?(pid = 100) ~process_name t =
  let meta name tid args =
    J.Obj
      [
        ("name", J.Str name);
        ("ph", J.Str "M");
        ("pid", J.int pid);
        ("tid", J.int tid);
        ("args", J.Obj args);
      ]
  in
  let counter ~tid ~ts name v =
    J.Obj
      [
        ("name", J.Str name);
        ("cat", J.Str "ditto");
        ("ph", J.Str "C");
        ("pid", J.int pid);
        ("tid", J.int tid);
        ("ts", J.Num ts);
        ("args", J.Obj [ ("value", J.Num v) ]);
      ]
  in
  let header =
    meta "process_name" 0 [ ("name", J.Str process_name) ]
    :: List.mapi (fun idx tier -> meta "thread_name" (idx + 1) [ ("name", J.Str tier) ]) t.order
  in
  let counters =
    List.concat (List.mapi
      (fun idx tier ->
        let tid = idx + 1 in
        let basis = insts_per_req t ~tier in
        List.concat
          (List.init t.nwin (fun i ->
               let r = row t ~tier i in
               let ts = (t.start +. (float_of_int i *. t.window)) *. 1e6 in
               let faults = r.r_timeouts + r.r_retries + r.r_shed + r.r_failures in
               let qps = float_of_int r.r_completed /. t.window in
               counter ~tid ~ts (tier ^ " qps") qps
               :: counter ~tid ~ts (tier ^ " p95 ms") (r.r_p95 *. 1e3)
               :: counter ~tid ~ts (tier ^ " queue") (float_of_int r.r_queue_depth)
               :: counter ~tid ~ts (tier ^ " faults") (float_of_int faults)
               ::
               (if basis > 0.0 then
                  [ counter ~tid ~ts (tier ^ " Minsts/s") (basis *. qps /. 1e6) ]
                else [])))
      )
      t.order)
  in
  let markers =
    List.map
      (fun (at, label) ->
        J.Obj
          [
            ("name", J.Str label);
            ("cat", J.Str "ditto");
            ("ph", J.Str "i");
            ("s", J.Str "p");
            ("pid", J.int pid);
            ("tid", J.int 0);
            ("ts", J.Num (at *. 1e6));
          ])
      (marks t)
  in
  header @ counters @ markers
