(* Sampled stack profiler. Mirrors the Obs design: a global atomic switch,
   per-domain state behind Domain.DLS (no locks, no cross-domain writes on
   the record path), a registry merged only when samples are read. Sample
   counts are deterministic: a per-domain unit accumulator emits
   floor((acc + units) / period) - floor(acc / period) samples per record,
   so counts track the work to within one period per domain regardless of
   how it is sliced into records. Attributed seconds are exact (every
   record's full weight lands on its stack), so the profile total
   reconciles with the measured on-CPU time to float precision even when
   the workload is much smaller than the sampling period. *)

type track = Cpu | Sim

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

let cpu_period = Atomic.make 20_000
let sim_period = Atomic.make 50e-6
let set_cpu_period p = Atomic.set cpu_period (max 1 p)
let set_sim_period p = Atomic.set sim_period (Float.max 1e-12 p)

type cell = { mutable w_seconds : float; mutable w_samples : int }

type track_state = {
  mutable acc : float; (* units since the last emitted period boundary *)
  table : (string list, cell) Hashtbl.t;
}

type dstate = {
  mutable scale : float; (* seconds per cycle, Cpu track *)
  cpu : track_state;
  sim : track_state;
}

let registry : dstate list ref = ref []
let registry_mutex = Mutex.create ()

let dstate_key =
  Domain.DLS.new_key (fun () ->
      let d =
        {
          scale = 1.0;
          cpu = { acc = 0.0; table = Hashtbl.create 64 };
          sim = { acc = 0.0; table = Hashtbl.create 16 };
        }
      in
      Mutex.lock registry_mutex;
      registry := !registry @ [ d ];
      Mutex.unlock registry_mutex;
      d)

let dstate () = Domain.DLS.get dstate_key

let dstates () =
  Mutex.lock registry_mutex;
  let ds = !registry in
  Mutex.unlock registry_mutex;
  ds

let set_scale s = (dstate ()).scale <- s

(* One record: attribute the exact weight, advance the accumulator, emit
   whole-period sample counts. *)
let sample ts ~stack ~units ~period ~scale =
  if units > 0.0 then begin
    let acc = ts.acc +. units in
    let n = int_of_float (acc /. period) in
    ts.acc <- acc -. (float_of_int n *. period);
    let cell =
      match Hashtbl.find_opt ts.table stack with
      | Some c -> c
      | None ->
          let c = { w_seconds = 0.0; w_samples = 0 } in
          Hashtbl.add ts.table stack c;
          c
    in
    cell.w_seconds <- cell.w_seconds +. (units *. scale);
    cell.w_samples <- cell.w_samples + n
  end

let record ~stack ~cycles =
  if enabled () then begin
    let d = dstate () in
    sample d.cpu ~stack ~units:cycles
      ~period:(float_of_int (Atomic.get cpu_period))
      ~scale:d.scale
  end

let record_sim ~stack ~seconds =
  if enabled () then
    sample (dstate ()).sim ~stack ~units:seconds ~period:(Atomic.get sim_period) ~scale:1.0

let reset () =
  List.iter
    (fun d ->
      d.cpu.acc <- 0.0;
      d.sim.acc <- 0.0;
      Hashtbl.reset d.cpu.table;
      Hashtbl.reset d.sim.table)
    (dstates ())

type sample = { stack : string list; seconds : float; samples : int }

let samples track =
  let merged : (string list, cell) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun d ->
      let ts = match track with Cpu -> d.cpu | Sim -> d.sim in
      Hashtbl.iter
        (fun stack c ->
          match Hashtbl.find_opt merged stack with
          | Some m ->
              m.w_seconds <- m.w_seconds +. c.w_seconds;
              m.w_samples <- m.w_samples + c.w_samples
          | None -> Hashtbl.add merged stack { w_seconds = c.w_seconds; w_samples = c.w_samples })
        ts.table)
    (dstates ());
  Hashtbl.fold
    (fun stack c acc -> { stack; seconds = c.w_seconds; samples = c.w_samples } :: acc)
    merged []
  |> List.sort (fun a b -> compare a.stack b.stack)

let total_seconds track =
  List.fold_left (fun acc s -> acc +. s.seconds) 0.0 (samples track)
