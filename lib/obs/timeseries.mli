(** Windowed time-series telemetry sampled on the simulated (DES) clock.

    Off by default: the only cost on the disabled path is one atomic load
    per would-be hook (same discipline as {!Profiler} and {!Obs}), so
    pool-size bit-identity of the simulation is untouched. When enabled,
    {!Ditto_app.Service.run} allocates one collector per run and threads
    it through its request/fault hooks; a run's collector is only ever
    touched from the single domain executing that run's engine, so no
    locking is needed and enabled timelines are bit-identical across
    [DITTO_DOMAINS] pool sizes.

    The run is divided into [windows] equal windows of simulated time
    starting at [start]; every sample carries its simulated timestamp
    [at] and is binned by window. Samples outside
    [[start, start + duration)] (e.g. requests completing in the
    post-load drain phase) are dropped so the last window is not
    inflated. Per tier and window the collector keeps: completed
    requests, a log-bucketed latency sketch ({!Histogram}, 1% quantile
    error), fault counters (timeouts, retries, shed, failures), on-CPU
    seconds, and a max-sampled queue depth. A synthetic {!client_tier}
    series holds end-to-end client observations. *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val client_tier : string
(** Name of the synthetic end-to-end series: ["client"]. *)

type t

type counter = Timeouts | Retries | Shed | Failures | Degraded

type row = {
  r_completed : int;
  r_p50 : float;
  r_p95 : float;
  r_p99 : float;  (** latency quantiles in seconds; [0.] when no samples *)
  r_timeouts : int;
  r_retries : int;
  r_shed : int;
  r_failures : int;
  r_degraded : int;  (** requests served in degraded mode *)
  r_cpu_seconds : float;
  r_queue_depth : int;  (** max depth sampled in the window; [0] if never sampled *)
  r_replicas : int;
      (** live replica count: max recorded in the window, carried forward
          from earlier windows when the autoscaler was quiet; [0] when the
          tier never recorded one (no autoscaling) *)
}

val create :
  ?windows:int -> ?alpha:float -> start:float -> duration:float -> tiers:string list -> unit -> t
(** [windows] defaults to 24; [alpha] is the histogram error bound
    (default 0.01). [tiers] are the application tier names; a
    {!client_tier} series is appended automatically. *)

(** {1 Recording} (all no-ops for timestamps outside the run interval) *)

val record_latency : t -> tier:string -> at:float -> seconds:float -> unit
(** One completed request: bumps the window's completed count and feeds
    its latency sketch. *)

val record_counter : t -> tier:string -> at:float -> counter -> unit
val record_cpu : t -> tier:string -> at:float -> seconds:float -> unit

val record_queue : t -> tier:string -> at:float -> depth:int -> unit
(** Keeps the max depth seen in the window. *)

val record_replicas : t -> tier:string -> at:float -> count:int -> unit
(** Autoscaler hook: the tier's live replica count after a scale event.
    Keeps the max per window; reads carry the last value forward. *)

val mark : t -> at:float -> label:string -> unit
(** Timeline event marker (fault injections, profile spikes, scale
    events — the latter prefixed ["scale:"] so transient-fidelity scoring
    can tell them from faults). Kept even when [at] falls outside the
    windowed interval. *)

val set_rate_basis : t -> tier:string -> insts_per_req:float -> unit
(** Post-run: measured instructions per request for the tier, letting
    exporters derive a rate-form uarch series
    (insts/s = insts_per_req * throughput) from the windowed counts. *)

(** {1 Reading} *)

val start_time : t -> float
val window_seconds : t -> float
val windows : t -> int
val tiers : t -> string list
(** Application tiers in creation order, then {!client_tier}. *)

val row : t -> tier:string -> int -> row
(** Raises [Invalid_argument] on an unknown tier or window out of range. *)

val marks : t -> (float * string) list
(** Markers in recording order (absolute simulated time). *)

val insts_per_req : t -> tier:string -> float
(** [0.] until {!set_rate_basis} is called for the tier. *)

(** {1 Exporters} *)

val openmetrics : ((string * string) list * t) list -> string
(** OpenMetrics / Prometheus text exposition for one or more labelled
    collectors (e.g. [[(["side", "actual"], a); (["side", "clone"], c)]]);
    samples of the same metric family are grouped as the format requires,
    each stamped with its window-end simulated time, and the document
    ends with [# EOF]. *)

val to_openmetrics : ?labels:(string * string) list -> t -> string
(** [openmetrics [(labels, t)]]. *)

val chrome_events : ?pid:int -> process_name:string -> t -> Ditto_util.Jsonx.t list
(** Chrome trace-event objects: one process-name/thread-name metadata
    block ([pid] defaults to 100; tid = 1 + tier index so each tier gets
    its own track) plus ["ph": "C"] counter events per tier and window
    (throughput qps, p95 ms, queue depth, faults, and Minsts/s when a
    rate basis is set), timestamped in simulated microseconds. Append
    them to a trace's [traceEvents] to render alongside {!Obs} spans. *)
