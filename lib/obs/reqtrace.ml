module J = Ditto_util.Jsonx

(* Global switch, same discipline as Profiler/Timeseries: the disabled
   path in the service hooks is one atomic load and nothing else, so the
   event stream of a tracing-off run is byte-identical to pre-tracing
   builds, at any pool size. *)
let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

let client_tier = "client"

type segment_kind = Queue | Service | Backoff

let segment_name = function Queue -> "queue" | Service -> "service" | Backoff -> "backoff"

type outcome = Ok | Err | Shed | Timeout

let outcome_name = function
  | Ok -> "ok"
  | Err -> "err"
  | Shed -> "shed"
  | Timeout -> "timeout"

type span_kind = Client | Rpc | Server

type segment = { seg_kind : segment_kind; seg_start : float; seg_dur : float }

type span = {
  sp_id : int;
  sp_parent : int;
  sp_kind : span_kind;
  sp_tier : string;
  mutable sp_op : int;
  sp_arrive : float;
  sp_start : float;
  mutable sp_end : float;
  mutable sp_outcome : outcome;
  mutable sp_req_bytes : int;
  mutable sp_resp_bytes : int;
  mutable sp_segs : segment list;  (* reversed until finalize *)
  mutable sp_children : span list;  (* reversed until finalize *)
}

type t = {
  seed : int;
  sample_every : int;
  max_traces : int;
  max_per_type : int;
  spans : (int, span) Hashtbl.t;
  per_type : (int, int) Hashtbl.t;  (* request type -> kept traces *)
  mutable roots_rev : span list;  (* provisional, creation order *)
  mutable nroots : int;
  mutable dropped : int list;  (* root ids over a per-type quota *)
  mutable next_id : int;
  mutable seen : int;
  mutable finalized : bool;
}

let create ?(sample_every = 7) ?(max_traces = 512) ?(max_per_type = 64) ~seed () =
  if sample_every <= 0 then invalid_arg "Reqtrace.create: sample_every must be positive";
  if max_traces <= 0 then invalid_arg "Reqtrace.create: max_traces must be positive";
  {
    seed;
    sample_every;
    max_traces;
    max_per_type = max 1 max_per_type;
    spans = Hashtbl.create 256;
    per_type = Hashtbl.create 8;
    roots_rev = [];
    nroots = 0;
    dropped = [];
    next_id = 1;
    seen = 0;
    finalized = false;
  }

(* SplitMix64 finalizer: the sampling decision is a pure function of
   (seed, request sequence number), so it never touches — and is never
   perturbed by — any simulation RNG stream. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let sampled_seq t seq =
  let h = mix64 (Int64.add (Int64.mul (Int64.of_int t.seed) 0x9e3779b97f4a7c15L) (Int64.of_int seq)) in
  Int64.rem (Int64.logand h 0x3fffffffffffffffL) (Int64.of_int t.sample_every) = 0L

let fresh t ~parent ~kind ~tier ~arrive ~start =
  let id = t.next_id in
  t.next_id <- id + 1;
  let sp =
    {
      sp_id = id;
      sp_parent = parent;
      sp_kind = kind;
      sp_tier = tier;
      sp_op = -1;
      sp_arrive = arrive;
      sp_start = start;
      sp_end = Float.nan;
      sp_outcome = Ok;
      sp_req_bytes = 0;
      sp_resp_bytes = 0;
      sp_segs = [];
      sp_children = [];
    }
  in
  Hashtbl.replace t.spans id sp;
  (match Hashtbl.find_opt t.spans parent with
  | Some p -> p.sp_children <- sp :: p.sp_children
  | None -> ());
  sp

let find t span = if span = 0 then None else Hashtbl.find_opt t.spans span

let client_start t ~at =
  t.seen <- t.seen + 1;
  if t.nroots >= t.max_traces then 0
  else if not (sampled_seq t t.seen) then 0
  else begin
    let sp = fresh t ~parent:0 ~kind:Client ~tier:client_tier ~arrive:at ~start:at in
    t.roots_rev <- sp :: t.roots_rev;
    t.nroots <- t.nroots + 1;
    sp.sp_id
  end

(* Per-request-type quota, enforced once the type is known (the entry
   tier's trace index, propagated to the root by [server_op]). *)
let quota_keep t (root : span) =
  let kept = Option.value ~default:0 (Hashtbl.find_opt t.per_type root.sp_op) in
  if kept >= t.max_per_type then begin
    t.dropped <- root.sp_id :: t.dropped;
    false
  end
  else begin
    Hashtbl.replace t.per_type root.sp_op (kept + 1);
    true
  end

let client_finish t ~span ~at outcome =
  match find t span with
  | None -> ()
  | Some sp ->
      sp.sp_end <- at;
      sp.sp_outcome <- outcome;
      ignore (quota_keep t sp)

let rpc_begin t ~parent ~target ~bytes ~at =
  if parent = 0 || not (Hashtbl.mem t.spans parent) then 0
  else begin
    let sp = fresh t ~parent ~kind:Rpc ~tier:target ~arrive:at ~start:at in
    sp.sp_req_bytes <- bytes;
    sp.sp_id
  end

let rpc_end t ~span ?bytes ~at outcome =
  match find t span with
  | None -> ()
  | Some sp ->
      sp.sp_end <- at;
      sp.sp_outcome <- outcome;
      (match bytes with Some b -> sp.sp_resp_bytes <- b | None -> ())

let server_begin t ~parent ~tier ~bytes ~arrived ~at =
  if parent = 0 || not (Hashtbl.mem t.spans parent) then 0
  else begin
    let sp = fresh t ~parent ~kind:Server ~tier ~arrive:arrived ~start:at in
    sp.sp_req_bytes <- bytes;
    if at > arrived then
      sp.sp_segs <- { seg_kind = Queue; seg_start = arrived; seg_dur = at -. arrived } :: sp.sp_segs;
    sp.sp_id
  end

let server_op t ~span ~op =
  match find t span with
  | None -> ()
  | Some sp ->
      sp.sp_op <- op;
      (* Propagate the request type up to the root (the walk is the span
         depth — a handful of hops). *)
      let rec up id =
        match Hashtbl.find_opt t.spans id with
        | None -> ()
        | Some p -> if p.sp_kind = Client then (if p.sp_op < 0 then p.sp_op <- op) else up p.sp_parent
      in
      up sp.sp_parent

let server_end t ~span ?bytes ~at outcome =
  match find t span with
  | None -> ()
  | Some sp ->
      sp.sp_end <- at;
      sp.sp_outcome <- outcome;
      (match bytes with Some b -> sp.sp_resp_bytes <- b | None -> ())

let segment t ~span kind ~start ~dur =
  match find t span with
  | None -> ()
  | Some sp -> sp.sp_segs <- { seg_kind = kind; seg_start = start; seg_dur = dur } :: sp.sp_segs

let finalize t ~at =
  if not t.finalized then begin
    t.finalized <- true;
    Hashtbl.iter
      (fun _ sp ->
        if Float.is_nan sp.sp_end then begin
          sp.sp_end <- Float.max at sp.sp_start;
          sp.sp_outcome <- Timeout;
          if sp.sp_kind = Client then ignore (quota_keep t sp)
        end;
        sp.sp_segs <- List.rev sp.sp_segs;
        sp.sp_children <- List.rev sp.sp_children)
      t.spans
  end

let requests_seen t = t.seen

let kept_roots t =
  List.rev
    (List.filter (fun (sp : span) -> not (List.mem sp.sp_id t.dropped)) t.roots_rev)

let sampled t = List.length (kept_roots t)
let traces t = kept_roots t

(* --- Jaeger export ---------------------------------------------------- *)

(* Only client roots and server spans are exported; RPC spans (one per
   call attempt) are folded into the parent chain so the recovered DAG is
   the tier DAG. This emits exactly the subset Ditto_trace.Jaeger.of_string
   parses: hex ids, CHILD_OF references, operationName = tier, integer
   req/resp byte tags, non-negative durations. *)

let hex id = Printf.sprintf "%x" id

let rec jaeger_parent t (sp : span) =
  match Hashtbl.find_opt t.spans sp.sp_parent with
  | None -> None
  | Some p -> ( match p.sp_kind with Rpc -> jaeger_parent t p | Client | Server -> Some p)

let us s = if Float.is_nan s then 0.0 else Float.round (s *. 1e6)

let span_json t ~trace_id (sp : span) =
  let tag key value =
    J.Obj [ ("key", J.Str key); ("type", J.Str "int64"); ("value", J.int value) ]
  in
  let references =
    match jaeger_parent t sp with
    | None -> []
    | Some p ->
        [
          J.Obj
            [
              ("refType", J.Str "CHILD_OF");
              ("traceID", J.Str (hex trace_id));
              ("spanID", J.Str (hex p.sp_id));
            ];
        ]
  in
  J.Obj
    [
      ("traceID", J.Str (hex trace_id));
      ("spanID", J.Str (hex sp.sp_id));
      ("operationName", J.Str sp.sp_tier);
      ("references", J.List references);
      ("startTime", J.Num (us sp.sp_arrive));
      ("duration", J.Num (Float.max 0.0 (us sp.sp_end -. us sp.sp_arrive)));
      ("processID", J.Str "p0");
      ( "tags",
        J.List
          [
            tag "req_bytes" sp.sp_req_bytes;
            tag "resp_bytes" sp.sp_resp_bytes;
            J.Obj
              [
                ("key", J.Str "tier");
                ("type", J.Str "string");
                ("value", J.Str sp.sp_tier);
              ];
            J.Obj
              [
                ("key", J.Str "outcome");
                ("type", J.Str "string");
                ("value", J.Str (outcome_name sp.sp_outcome));
              ];
          ] );
    ]

let jaeger t =
  let trace_json (root : span) =
    let rec collect (sp : span) acc =
      let acc = match sp.sp_kind with Client | Server -> sp :: acc | Rpc -> acc in
      List.fold_left (fun acc c -> collect c acc) acc sp.sp_children
    in
    let spans = List.rev (collect root []) in
    J.Obj
      [
        ("traceID", J.Str (hex root.sp_id));
        ("spans", J.list (span_json t ~trace_id:root.sp_id) spans);
        ("processes", J.Obj [ ("p0", J.Obj [ ("serviceName", J.Str "ditto-reqtrace") ]) ]);
      ]
  in
  J.Obj [ ("data", J.list trace_json (kept_roots t)) ]

let write_jaeger path t =
  let oc = open_out path in
  output_string oc (J.to_string ~pretty:true (jaeger t));
  output_char oc '\n';
  close_out oc
