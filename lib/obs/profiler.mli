(** Sampled stack profiler for the simulation's own execution.

    The measurement phase ({!Ditto_app.Measure}) knows, at every point, what
    it is executing on behalf of whom: a (tier, handler phase,
    block-or-syscall) stack. This module turns that knowledge into a
    cycle-sampled weighted profile, the simulated analogue of a perf-style
    sampling profiler: each domain keeps a running cycle accumulator and
    emits one sample count every [period] cycles, attributed to the stack
    that was executing when the period boundary was crossed. Weights are
    exact, not quantised — every record's full duration lands on its stack
    — so the sum of all sample weights reconciles with the measured on-CPU
    total to float precision, which is what lets `ditto_cli profile` check
    its collapsed-stack export against the measured on-CPU time (the 1%
    gate).

    Two tracks exist: [Cpu] samples are measured in seconds of simulated
    on-CPU time (recorded in cycles, converted with the per-domain
    {!set_scale}); [Sim] samples are measured in seconds of DES virtual
    time (the {!Ditto_sim.Engine} hook). Exports fold samples into
    collapsed-stack format via [Ditto_report.Flame].

    Like {!Obs}, everything is off by default; when disabled every entry
    point is a single [Atomic.get] plus a branch, and recording never
    touches RNG streams, so enabling the profiler cannot perturb simulation
    results (the bit-identity pinned by [test_parallel] is preserved).
    State is per-domain ([Domain.DLS]) and merged only at {!samples} time. *)

type track = Cpu | Sim

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Drop all recorded samples and re-arm the period accumulators on every
    registered domain. Call between profiled regions. *)

val set_cpu_period : int -> unit
(** Sampling period of the [Cpu] track in cycles (default 20_000). *)

val set_sim_period : float -> unit
(** Sampling period of the [Sim] track in simulated seconds
    (default 50e-6). *)

val set_scale : float -> unit
(** Seconds per cycle for [Cpu] samples recorded by the calling domain;
    {!Ditto_app.Measure} sets it from the machine's frequency before
    measuring. *)

val record : stack:string list -> cycles:float -> unit
(** Attribute [cycles] of on-CPU work to [stack] (outermost frame first).
    Callers should check {!enabled} first on hot paths; [record] itself is
    also guarded. *)

val record_sim : stack:string list -> seconds:float -> unit
(** Attribute [seconds] of simulated (DES) time to [stack]. *)

type sample = {
  stack : string list;  (** outermost frame first *)
  seconds : float;  (** total sampled weight *)
  samples : int;  (** number of period crossings *)
}

val samples : track -> sample list
(** Samples of one track, merged across domains and sorted by stack. *)

val total_seconds : track -> float
(** Sum of all sample weights on the track. *)
