(** Self-tracing and telemetry for the cloning pipeline itself.

    Ditto's premise is that spans plus counters characterise a service; this
    library applies the same lens to the pipeline. It records Jaeger-style
    spans of the clone/validate/tune workflow into per-domain lock-free ring
    buffers (reached through [Domain.DLS], so the hot path never contends
    across domains) and keeps a process-wide counter/gauge registry. Buffers
    are merged only at export, into either Chrome trace-event JSON (pool
    utilisation, keyed by domain id) or Jaeger JSON that
    {!Ditto_trace.Jaeger} re-ingests — so Ditto can clone Ditto.

    Everything is disabled by default: until {!enable} is called,
    {!Span.with_span} and every metric update are a single [Atomic.get]
    plus a branch, preserving the bit-identical-across-pool-sizes guarantee
    of the execution layer (tracing never touches RNG streams either way). *)

val enabled : unit -> bool

val enable : unit -> unit
(** Turn recording on. The first call also installs the
    {!Ditto_util.Pool} task hook (each pool task becomes a span parented to
    its submitter, even across domains) and registers the pool gauges. *)

val disable : unit -> unit

val set_capacity : int -> unit
(** Per-domain ring capacity (default 65536 spans) for buffers created or
    {!Export.clear}ed after the call. When a ring wraps, the oldest spans
    are overwritten and counted in {!Export.dropped}. *)

(** {1 Spans} *)

type attr = Str of string | Float of float | Int of int | Bool of bool

type context
(** Identity of an open span, used to parent spans across domains. *)

val current : unit -> context option
(** The innermost open span on the calling domain, if tracing is enabled. *)

type completed = {
  trace_id : int;
  span_id : int;
  parent_id : int option;
  name : string;
  domain : int;  (** ring-buffer (registration) index of the recording domain *)
  start_ns : int64;  (** monotonic clock *)
  dur_ns : int64;
  attrs : (string * attr) list;
}

module Span : sig
  val with_span : ?parent:context -> ?attrs:(string * attr) list -> name:string -> (unit -> 'a) -> 'a
  (** Run the thunk inside a span. Parentage: an explicit [?parent] (from
      {!current}, possibly captured on another domain) wins; otherwise the
      innermost open span on this domain; otherwise the span roots a fresh
      trace. The span is recorded when the thunk returns or raises. When
      tracing is disabled this is exactly [f ()]. *)

  val add_attr : string -> attr -> unit
  (** Attach an attribute to the innermost open span (no-op without one). *)
end

(** {1 Metrics} *)

module Metrics : sig
  type counter

  val counter : string -> counter
  (** Get or create the named counter. Call once at module init, not on hot
      paths (creation takes a lock; {!incr} does not). *)

  val incr : counter -> unit
  val add : counter -> int -> unit
  (** Updates are dropped while tracing is disabled. *)

  val value : counter -> int
  val name : counter -> string

  val register_gauge : string -> (unit -> float) -> unit
  (** A gauge is sampled at {!snapshot} time; re-registering a name
      replaces the previous gauge. *)

  val snapshot : unit -> (string * float) list
  (** Counters and gauges, merged and sorted by name. *)

  val reset : unit -> unit
  (** Zero all counters (gauges are callbacks and are left alone). *)
end

(** {1 Export}

    Exports read the ring buffers without synchronising with writers; call
    them when pipeline work is quiescent (end of run, after a batch). *)

module Export : sig
  val spans : unit -> completed list
  (** All retained spans across domains, sorted by start time. *)

  val dropped : unit -> int
  (** Spans lost to ring wrap-around since the last {!clear}. *)

  val clear : unit -> unit
  (** Drop retained spans (open spans complete into the emptied rings). *)

  val to_chrome : unit -> Ditto_util.Jsonx.t
  (** Chrome trace-event JSON ([chrome://tracing] / Perfetto): one complete
      ("ph":"X") event per span with [tid] = domain id, plus thread-name
      metadata and a [dittoMetrics] snapshot. Timestamps are microseconds
      relative to the earliest span. *)

  val to_jaeger : ?service:string -> unit -> Ditto_util.Jsonx.t
  (** Jaeger JSON export ([{"data":[{"traceID";"spans";"processes"}]}]),
      one entry per trace, CHILD_OF references for parentage — the format
      {!Ditto_trace.Jaeger} parses back into {!Ditto_trace.Span.t}s. *)

  val write_chrome : string -> unit
  val write_jaeger : ?service:string -> string -> unit
end
