open Ditto_sim

type msg = { bytes : int; err : bool; arrived : float; meta : int }
type verdict = Deliver | Delay of float | Drop

type endpoint = {
  engine : Engine.t;
  inbox : msg Queue.t;
  mutable watchers : unit Engine.waker list;
  nic : Nic.t;
  latency : float;
  mutable peer : endpoint option;
  mutable disruptor : (bytes:int -> verdict) option;
}

let make engine nic latency =
  {
    engine;
    inbox = Queue.create ();
    watchers = [];
    nic;
    latency;
    peer = None;
    disruptor = None;
  }

let pair engine ~a_nic ~b_nic ~latency =
  let a = make engine a_nic latency and b = make engine b_nic latency in
  a.peer <- Some b;
  b.peer <- Some a;
  (a, b)

let set_disruptor ep f = ep.disruptor <- f

let notify_watchers ep =
  let ws = ep.watchers in
  ep.watchers <- [];
  List.iter (fun w -> Engine.wake w ()) ws

let send ?(err = false) ?(meta = 0) ep ~bytes =
  match ep.peer with
  | None -> invalid_arg "Socket.send: unconnected"
  | Some peer -> (
      Nic.transmit ep.nic ~bytes;
      let verdict = match ep.disruptor with None -> Deliver | Some f -> f ~bytes in
      match verdict with
      | Drop -> ()
      | Deliver | Delay _ ->
          let extra = match verdict with Delay d -> d | _ -> 0.0 in
          let deliver_at = Engine.time () +. ep.latency +. extra in
          Engine.schedule ep.engine deliver_at (fun () ->
              Nic.note_received peer.nic ~bytes;
              Queue.push { bytes; err; arrived = deliver_at; meta } peer.inbox;
              notify_watchers peer))

let rec recv_msg ep =
  match Queue.take_opt ep.inbox with
  | Some msg -> msg
  | None ->
      Engine.suspend (fun w -> ep.watchers <- w :: ep.watchers);
      recv_msg ep

let recv_timed ep =
  let m = recv_msg ep in
  (m.bytes, m.arrived)

let recv ep = (recv_msg ep).bytes
let try_recv_msg ep = Queue.take_opt ep.inbox
let try_recv_timed ep = Option.map (fun m -> (m.bytes, m.arrived)) (try_recv_msg ep)
let try_recv ep = Option.map (fun m -> m.bytes) (try_recv_msg ep)

let recv_msg_timeout ep ~timeout =
  let deadline = Engine.time () +. timeout in
  let rec go () =
    match Queue.take_opt ep.inbox with
    | Some msg -> Some msg
    | None ->
        let left = deadline -. Engine.time () in
        if left <= 0.0 then None
        else (
          match Engine.suspend_timeout left (fun w -> ep.watchers <- w :: ep.watchers) with
          | None -> None
          | Some () -> go ())
  in
  go ()

let pending ep = Queue.length ep.inbox

module Epoll = struct
  type t = { mutable endpoints : endpoint list; mutable waiters : unit Engine.waker list }

  let create () = { endpoints = []; waiters = [] }

  (* A connection can be added while a worker is already parked in [wait];
     the pending waiters must hear about traffic on the new endpoint (or be
     woken immediately if it is already readable). *)
  let add t ep =
    t.endpoints <- ep :: t.endpoints;
    let live = List.filter (fun w -> not (Engine.is_woken w)) t.waiters in
    t.waiters <- live;
    if Queue.is_empty ep.inbox then ep.watchers <- live @ ep.watchers
    else List.iter (fun w -> Engine.wake w ()) live

  let ready t = List.filter (fun ep -> not (Queue.is_empty ep.inbox)) t.endpoints

  let pending_total t =
    List.fold_left (fun acc ep -> acc + Queue.length ep.inbox) 0 t.endpoints

  let register t w =
    t.waiters <- w :: List.filter (fun w' -> not (Engine.is_woken w')) t.waiters;
    List.iter (fun ep -> ep.watchers <- w :: ep.watchers) t.endpoints

  let rec wait ?timeout t =
    match ready t with
    | _ :: _ as rs -> rs
    | [] -> (
        match timeout with
        | None ->
            Engine.suspend (fun w -> register t w);
            wait t
        (* timeout:0. is a poll: report emptiness without suspending (no
           engine effect is performed, so this is callable anywhere). *)
        | Some d when d <= 0.0 -> []
        | Some d -> (
            match Engine.suspend_timeout d (fun w -> register t w) with
            | None -> []
            | Some () -> wait ?timeout t))
end
