(** Bidirectional message sockets with epoll-style readiness.

    Messages carry only sizes (no payload — the clone never ships real
    data). A send serialises through the local NIC, crosses the link
    latency, then lands in the peer's receive queue and wakes any epoll
    waiter — giving the I/O-multiplexing server model of §4.3.1 its real
    blocking structure.

    For the chaos layer ({!Ditto_fault}), deliveries additionally carry an
    error flag (a load-shed or failed RPC answers with [err = true]) and can
    be vetoed or delayed per message by an installed {!set_disruptor}
    callback. *)

type endpoint

type msg = { bytes : int; err : bool; arrived : float; meta : int }
(** [arrived] is the delivery time — the instant the message entered the
    receive queue, for measuring server-side queueing. [meta] is an
    opaque application token carried verbatim with the message ([0] when
    the sender set none); {!Ditto_obs.Reqtrace} rides trace context on it
    without this layer depending on the observability stack. *)

type verdict = Deliver | Delay of float | Drop
(** Fate of one delivery, decided by a disruptor: deliver normally, deliver
    after an extra one-way delay (seconds), or silently drop. The sender's
    NIC still serialises dropped messages (the bytes left the host). *)

val pair :
  Ditto_sim.Engine.t ->
  a_nic:Nic.t ->
  b_nic:Nic.t ->
  latency:float ->
  endpoint * endpoint
(** A connected socket; [latency] is the one-way propagation delay. *)

val set_disruptor : endpoint -> (bytes:int -> verdict) option -> unit
(** Install (or clear) a per-send delivery verdict for this direction of the
    link. [None] (the default) delivers everything. *)

val send : ?err:bool -> ?meta:int -> endpoint -> bytes:int -> unit
(** Blocking send from within a process (NIC queueing + serialisation).
    [err] marks the message as an application-level error response;
    [meta] (default [0]) is an opaque token delivered with the message. *)

val recv : endpoint -> int
(** Blocking receive; returns the message size. *)

val recv_timed : endpoint -> int * float
(** Blocking receive returning (size, delivery time). *)

val recv_msg : endpoint -> msg
(** Blocking receive of the full message record. *)

val recv_msg_timeout : endpoint -> timeout:float -> msg option
(** Blocking receive with a deadline; [None] once [timeout] seconds pass
    without a delivery. *)

val try_recv : endpoint -> int option
val try_recv_timed : endpoint -> (int * float) option
val try_recv_msg : endpoint -> msg option
val pending : endpoint -> int

(** {1 I/O multiplexing} *)

module Epoll : sig
  type t

  val create : unit -> t
  val add : t -> endpoint -> unit

  val wait : ?timeout:float -> t -> endpoint list
  (** Block until at least one registered endpoint is readable; returns the
      ready endpoints ([] only on timeout). A non-positive [timeout] polls:
      it returns the currently ready endpoints — possibly [] — without
      blocking or yielding. *)

  val pending_total : t -> int
  (** Total queued messages across all registered endpoints (the tier's
      accept-queue depth, used for load shedding). *)
end
