open Ditto_isa

type kind =
  | Pread of { bytes : int; random : bool }
  | Pwrite of { bytes : int }
  | Sock_read of { bytes : int }
  | Sock_write of { bytes : int }
  | Epoll_wait
  | Accept
  | Futex_wait
  | Futex_wake
  | Mmap of { bytes : int }
  | Clone
  | Nanosleep of { seconds : float }
  | Gettime

let name = function
  | Pread _ -> "pread"
  | Pwrite _ -> "pwrite"
  | Sock_read _ -> "sock_read"
  | Sock_write _ -> "sock_write"
  | Epoll_wait -> "epoll_wait"
  | Accept -> "accept"
  | Futex_wait -> "futex_wait"
  | Futex_wake -> "futex_wake"
  | Mmap _ -> "mmap"
  | Clone -> "clone"
  | Nanosleep _ -> "nanosleep"
  | Gettime -> "gettime"

let payload_bytes = function
  | Pread { bytes; _ } | Pwrite { bytes } | Sock_read { bytes } | Sock_write { bytes }
  | Mmap { bytes } ->
      bytes
  | Epoll_wait | Accept | Futex_wait | Futex_wake | Clone | Nanosleep _ | Gettime -> 0

(* (index, nominal path length, code footprint bytes). Path lengths follow
   published syscall microbenchmarks in relative magnitude: network sends
   are the longest hot paths, clock reads the shortest. *)
let profile = function
  | Pread _ -> (0, 3000, 24 * 1024)
  | Pwrite _ -> (1, 3500, 24 * 1024)
  | Sock_read _ -> (2, 4000, 32 * 1024)
  | Sock_write _ -> (3, 5000, 40 * 1024)
  | Epoll_wait -> (4, 1500, 12 * 1024)
  | Accept -> (5, 4000, 24 * 1024)
  | Futex_wait -> (6, 800, 6 * 1024)
  | Futex_wake -> (7, 800, 6 * 1024)
  | Mmap _ -> (8, 2500, 16 * 1024)
  | Clone -> (9, 8000, 48 * 1024)
  | Nanosleep _ -> (10, 600, 6 * 1024)
  | Gettime -> (11, 200, 2 * 1024)

let path_insts k =
  let _, n, _ = profile k in
  n

let is_blocking = function
  | Epoll_wait | Accept | Futex_wait | Nanosleep _ -> true
  | Pread _ | Pwrite _ | Sock_read _ | Sock_write _ | Futex_wake | Mmap _ | Clone | Gettime
    ->
      false

module Kernel = struct
  let code_base = 0x0100_0000
  let code_stride = 0x0002_0000
  let data_base = 0x0400_0000
  let data_stride = 0x0001_0000
  let copy_base = 0x0600_0000

  let copy_region = Block.make_region ~base:copy_base ~bytes:(1 lsl 20) ~shared:false

  (* Synthesizes a kernel code block: branch-heavy, load/store-rich over a
     per-syscall kernel data window, with occasional atomics — the flavour
     of kernel hot paths that makes cloud services frontend-bound. *)
  let build_path_block ~label ~idx ~footprint_bytes ~insts =
    let rng = Ditto_util.Rng.create (0x05 + idx) in
    let data =
      Block.make_region ~base:(data_base + (idx * data_stride)) ~bytes:data_stride
        ~shared:false
    in
    let n_templates = max 8 (min insts (footprint_bytes * 2 / 7)) in
    let temps =
      List.init n_templates (fun i ->
          let r = Ditto_util.Rng.int rng 100 in
          let reg a = Block.gp (a mod 8) in
          if r < 38 then
            Block.temp
              (Iform.by_name "ADD_GPR64_GPR64")
              ~dst:(reg i) ~srcs:[| reg i; reg (i + 1) |]
          else if r < 52 then
            let span = 1 lsl (9 + Ditto_util.Rng.int rng 7) in
            Block.temp (Iform.by_name "MOV_GPR64_MEM") ~dst:(reg i)
              ~srcs:[| reg (i + 2) |]
              ~mem:
                (Block.Rand_uniform
                   { region = data; start = 0; span = min span data.Block.region_bytes })
          else if r < 62 then
            Block.temp (Iform.by_name "MOV_MEM_GPR64")
              ~srcs:[| reg i |]
              ~mem:
                (Block.Seq_stride { region = data; start = 0; stride = 64; span = 16384 })
          else if r < 78 then
            Block.temp (Iform.by_name "JNZ_REL")
              ~branch:
                {
                  Block.m = 2 + Ditto_util.Rng.int rng 6;
                  n = 3 + Ditto_util.Rng.int rng 5;
                  invert = Ditto_util.Rng.bool rng;
                }
          else if r < 86 then
            Block.temp (Iform.by_name "CMP_GPR64_GPR64") ~srcs:[| reg i; reg (i + 3) |]
          else if r < 90 then
            Block.temp (Iform.by_name "LEA_GPR64_AGEN") ~dst:(reg i) ~srcs:[| reg (i + 1) |]
          else if r < 93 then
            Block.temp
              (Iform.by_name "LOCK_ADD_MEM_GPR64")
              ~srcs:[| reg i |]
              ~mem:(Block.Fixed_offset { region = data; offset = 64 * (i mod 32) })
          else if r < 97 then
            Block.temp (Iform.by_name "SHL_GPR64_IMM") ~dst:(reg i) ~srcs:[| reg i |]
          else Block.temp (Iform.by_name "MOV_GPR64_IMM") ~dst:(reg i))
    in
    Block.make ~label ~code_base:(code_base + (idx * code_stride)) temps

  let copy_block ~bytes =
    Block.make ~label:"kernel_copy" ~code_base:(code_base + (14 * code_stride))
      [
        Block.temp (Iform.by_name "REP_MOVSB") ~rep_count:bytes
          ~srcs:[| Block.gp 6 |]
          ~mem:(Block.Seq_stride { region = copy_region; start = 0; stride = 64; span = 65536 });
      ]

  let bucket bytes = if bytes <= 0 then 0 else Ditto_util.Histogram.log2_bin bytes

  (* Kernel path blocks carry mutable stream cursors, so the memo tables
     are domain-local: each domain builds (deterministically) and mutates
     its own copies, keeping parallel runs (Ditto_util.Pool) from racing on
     shared cursor state. Within a domain the usual touch-reset in
     Measure keeps sequential runs reproducible. *)
  let memo_key : (int, (Block.t * int) list) Hashtbl.t Domain.DLS.key =
    Domain.DLS.new_key (fun () -> Hashtbl.create 64)

  let streams ?(scale = 0.25) kind =
    let memo = Domain.DLS.get memo_key in
    let idx, insts, footprint = profile kind in
    let bytes = payload_bytes kind in
    (* Packed int key: [idx] is unique per syscall kind, the payload bucket
       is a log2 bin (< 2^8) and the scale a permille (< 2^24). [streams]
       runs once per simulated syscall, so formatting a string key here
       cost an allocation and a string hash on the hottest kernel path. *)
    let key = (idx lsl 32) lor (bucket bytes lsl 24) lor int_of_float (scale *. 1000.) in
    match Hashtbl.find_opt memo key with
    | Some s -> s
    | None ->
        let scaled_insts = max 32 (int_of_float (float_of_int insts *. scale)) in
        let scaled_footprint = max 512 (int_of_float (float_of_int footprint *. scale)) in
        let path = build_path_block ~label:(name kind) ~idx ~footprint_bytes:scaled_footprint ~insts:scaled_insts in
        let iters = max 1 (scaled_insts / max 1 path.Block.static_insts) in
        let s =
          if bytes > 0 then [ (path, iters); (copy_block ~bytes, 1) ] else [ (path, iters) ]
        in
        Hashtbl.add memo key s;
        s

  let housekeeping_memo_key : (int, Block.t * int) Hashtbl.t Domain.DLS.key =
    Domain.DLS.new_key (fun () -> Hashtbl.create 4)

  let housekeeping ?(scale = 0.25) () =
    let housekeeping_memo = Domain.DLS.get housekeeping_memo_key in
    let key = int_of_float (scale *. 1000.) in
    match Hashtbl.find_opt housekeeping_memo key with
    | Some b -> b
    | None ->
        let insts = max 64 (int_of_float (2000. *. scale)) in
        let block =
          build_path_block ~label:"housekeeping" ~idx:13
            ~footprint_bytes:(max 1024 (int_of_float (32_768. *. scale)))
            ~insts
        in
        let b = (block, max 1 (insts / max 1 block.Block.static_insts)) in
        Hashtbl.add housekeeping_memo key b;
        b
end
