(** Compiles a {!Plan} against a DES engine.

    [arm] schedules the plan's start/end callbacks as ordinary engine events,
    so fault state flips at deterministic points of the (single-threaded)
    event order. Random drop decisions come from the injector's own
    [Rng] stream — seeded from the run seed — and are drawn in engine event
    order, so a given (seed, plan) pair degrades a run bit-identically
    regardless of the host domain-pool size. *)

type t

val create : engine:Ditto_sim.Engine.t -> seed:int -> Plan.t -> t
val plan : t -> Plan.t

val arm : t -> at:float -> unit
(** Schedule every plan event relative to absolute engine time [at] (the
    start of the load phase). *)

val tier_up : t -> string -> bool
(** False while a [Crash] window covers the tier. *)

val slow_factor : t -> string -> float
(** Product of active [Slowdown] factors for the tier (1.0 when healthy). *)

val disruptor : t -> src:string -> dst:string -> bytes:int -> Ditto_net.Socket.verdict
(** Delivery verdict for one message on the [src] -> [dst] link: [Drop] if
    either side is partitioned, else a seeded coin-flip against the combined
    drop probability, else [Delay] by the summed added latencies. Partial
    application ([disruptor t ~src ~dst]) is the closure handed to
    [Socket.set_disruptor]. *)

val drops : t -> string -> int
(** Messages dropped so far on links whose source is the given tier. *)

val total_drops : t -> int
