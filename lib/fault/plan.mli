(** Declarative fault plans: a timed schedule of failures to inject into one
    service run.

    A plan is data, not behaviour — it is compiled against the DES clock by
    {!Injector}, so the same plan + the same seed produces bit-identical
    degraded results regardless of the host pool size. Times are in seconds
    relative to the start of the load phase; tiers are referenced by their
    [Spec] tier name (the pseudo-tier {!client_tier} names the load
    generator's side of the entry link). *)

type kind =
  | Crash of { down_for : float }
      (** The tier's process dies at [at] and restarts [down_for] seconds
          later. In-flight and arriving requests queue at the (still-open)
          listen socket, so the restart sees the accumulated backlog. *)
  | Slowdown of { factor : float; lasts : float }
      (** CPU brown-out: every on-CPU segment of the tier runs [factor]×
          slower for [lasts] seconds. Overlapping slowdowns compose
          multiplicatively. *)
  | Link of { add_latency : float; drop : float; lasts : float }
      (** Degrade every link touching the tier: each delivery gains
          [add_latency] seconds and is dropped with probability [drop]
          (drawn from the injector's own seeded RNG). *)
  | Partition of { lasts : float }
      (** NIC partition: every delivery to or from the tier is dropped for
          [lasts] seconds. *)

type event = { at : float; tier : string; kind : kind }
type t = { plan_name : string; events : event list }

val client_tier : string
(** Reserved tier name ["client"] for the load-generator end of links. *)

val make : name:string -> event list -> t
(** Events are kept sorted by [at] (stable). Raises [Invalid_argument] on a
    negative time, factor < 1, drop outside [0,1], or non-positive
    duration. *)

val validate : ?duration:float -> ?strict:bool -> tiers:string list -> t -> unit
(** Raises [Invalid_argument] naming the first event whose [tier] is neither
    in [tiers] nor {!client_tier}. With [duration], an event scheduled at or
    past it (which can never fire) is reported: a warning on stderr by
    default, [Invalid_argument] under [strict] (default false). *)

(** {1 Canonical plans}

    The three scenarios exercised by [ditto_cli chaos] and [bench --chaos].
    [duration] is the load duration the plan should fit inside; event times
    scale with it. [tiers] must be in [Spec.t] order (entry first). *)

val kill_mid_tier : ?down_frac:float -> duration:float -> tiers:string list -> unit -> t
val brownout_leaf : ?factor:float -> duration:float -> tiers:string list -> unit -> t
val flaky_link : ?drop:float -> ?add_latency:float -> duration:float -> tiers:string list -> unit -> t

val canonical : duration:float -> tiers:string list -> t list
(** The three plans above, in that order. *)

(** {1 JSON} *)

val to_json : t -> Ditto_util.Jsonx.t
val of_json : Ditto_util.Jsonx.t -> t
(** Raises [Jsonx.Parse_error] on shape errors and [Invalid_argument] on
    out-of-range values (via {!make}). *)

val load : string -> t
(** Read a plan from a JSON file. *)

val save : path:string -> t -> unit
