open Ditto_sim
module Rng = Ditto_util.Rng

type tier_state = {
  mutable down : int;  (* nesting count of active crash windows *)
  mutable slow : float;  (* product of active slowdown factors *)
  mutable add_latency : float;  (* summed active link latencies *)
  mutable drop : float;  (* combined drop probability of active link events *)
  mutable drop_factors : float list;  (* per-event (1 - drop) survival terms *)
  mutable partitioned : int;
  mutable drops : int;  (* messages dropped with this tier as source *)
}

type t = {
  plan : Plan.t;
  engine : Engine.t;
  rng : Rng.t;
  tiers : (string, tier_state) Hashtbl.t;
}

let create ~engine ~seed plan =
  { plan; engine; rng = Rng.create seed; tiers = Hashtbl.create 16 }

let plan t = t.plan

let state t name =
  match Hashtbl.find_opt t.tiers name with
  | Some s -> s
  | None ->
      let s =
        {
          down = 0;
          slow = 1.0;
          add_latency = 0.0;
          drop = 0.0;
          drop_factors = [];
          partitioned = 0;
          drops = 0;
        }
      in
      Hashtbl.add t.tiers name s;
      s

(* Recompute the combined drop probability from the active survival terms
   rather than dividing factors back out — repeated float division would let
   "no active event" drift away from exactly 0. *)
let refresh_drop s =
  s.drop <- 1.0 -. List.fold_left ( *. ) 1.0 s.drop_factors

let remove_one x xs =
  let rec go = function [] -> [] | y :: ys -> if y = x then ys else y :: go ys in
  go xs

let arm t ~at =
  List.iter
    (fun (e : Plan.event) ->
      let s = state t e.tier in
      let start = at +. e.at in
      match e.kind with
      | Plan.Crash { down_for } ->
          Engine.schedule t.engine start (fun () -> s.down <- s.down + 1);
          Engine.schedule t.engine (start +. down_for) (fun () -> s.down <- s.down - 1)
      | Plan.Slowdown { factor; lasts } ->
          Engine.schedule t.engine start (fun () -> s.slow <- s.slow *. factor);
          Engine.schedule t.engine (start +. lasts) (fun () -> s.slow <- s.slow /. factor)
      | Plan.Link { add_latency; drop; lasts } ->
          let survival = 1.0 -. drop in
          Engine.schedule t.engine start (fun () ->
              s.add_latency <- s.add_latency +. add_latency;
              s.drop_factors <- survival :: s.drop_factors;
              refresh_drop s);
          Engine.schedule t.engine (start +. lasts) (fun () ->
              s.add_latency <- s.add_latency -. add_latency;
              s.drop_factors <- remove_one survival s.drop_factors;
              refresh_drop s)
      | Plan.Partition { lasts } ->
          Engine.schedule t.engine start (fun () -> s.partitioned <- s.partitioned + 1);
          Engine.schedule t.engine (start +. lasts) (fun () ->
              s.partitioned <- s.partitioned - 1))
    t.plan.Plan.events

let tier_up t name = (state t name).down = 0
let slow_factor t name = (state t name).slow

let disruptor t ~src ~dst ~bytes:_ =
  let a = state t src and b = state t dst in
  if a.partitioned > 0 || b.partitioned > 0 then begin
    a.drops <- a.drops + 1;
    Ditto_net.Socket.Drop
  end
  else
    let p = 1.0 -. ((1.0 -. a.drop) *. (1.0 -. b.drop)) in
    if p > 0.0 && Rng.float t.rng 1.0 < p then begin
      a.drops <- a.drops + 1;
      Ditto_net.Socket.Drop
    end
    else
      let d = a.add_latency +. b.add_latency in
      if d > 0.0 then Ditto_net.Socket.Delay d else Ditto_net.Socket.Deliver

let drops t name = (state t name).drops
let total_drops t = Hashtbl.fold (fun _ s acc -> acc + s.drops) t.tiers 0
