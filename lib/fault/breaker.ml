type config = {
  failure_threshold : float;
  window : int;
  cooldown : float;
  half_open_probes : int;
}

let default_config =
  { failure_threshold = 0.5; window = 16; cooldown = 0.05; half_open_probes = 2 }

type state = Closed | Open | Half_open

type t = {
  config : config;
  mutable state : state;
  outcomes : bool Queue.t;  (* sliding window of call successes, Closed only *)
  mutable failures : int;  (* count of [false] entries in [outcomes] *)
  mutable opened_at : float;
  mutable probes_admitted : int;
  mutable probe_successes : int;
  mutable transitions : int;
}

let create ?(config = default_config) () =
  if config.failure_threshold <= 0.0 || config.failure_threshold > 1.0 then
    invalid_arg "Breaker.create: failure_threshold outside (0,1]";
  if config.window <= 0 then invalid_arg "Breaker.create: window must be positive";
  if config.cooldown < 0.0 then invalid_arg "Breaker.create: negative cooldown";
  if config.half_open_probes <= 0 then
    invalid_arg "Breaker.create: half_open_probes must be positive";
  {
    config;
    state = Closed;
    outcomes = Queue.create ();
    failures = 0;
    opened_at = neg_infinity;
    probes_admitted = 0;
    probe_successes = 0;
    transitions = 0;
  }

let state t = t.state
let transitions t = t.transitions

let transition t state =
  t.state <- state;
  t.transitions <- t.transitions + 1;
  Queue.clear t.outcomes;
  t.failures <- 0;
  t.probes_admitted <- 0;
  t.probe_successes <- 0

let allow t ~now =
  match t.state with
  | Closed -> true
  | Open ->
      if now -. t.opened_at >= t.config.cooldown then begin
        transition t Half_open;
        t.probes_admitted <- 1;
        true
      end
      else false
  | Half_open ->
      if t.probes_admitted < t.config.half_open_probes then begin
        t.probes_admitted <- t.probes_admitted + 1;
        true
      end
      else false

let record t ~now ~ok =
  match t.state with
  | Open -> ()
  | Half_open ->
      if not ok then begin
        transition t Open;
        t.opened_at <- now
      end
      else begin
        t.probe_successes <- t.probe_successes + 1;
        if t.probe_successes >= t.config.half_open_probes then transition t Closed
      end
  | Closed ->
      Queue.push ok t.outcomes;
      if not ok then t.failures <- t.failures + 1;
      if Queue.length t.outcomes > t.config.window then
        if not (Queue.pop t.outcomes) then t.failures <- t.failures - 1;
      let n = Queue.length t.outcomes in
      if
        n >= t.config.window
        && float_of_int t.failures /. float_of_int n >= t.config.failure_threshold
      then begin
        transition t Open;
        t.opened_at <- now
      end
