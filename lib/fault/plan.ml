module J = Ditto_util.Jsonx

type kind =
  | Crash of { down_for : float }
  | Slowdown of { factor : float; lasts : float }
  | Link of { add_latency : float; drop : float; lasts : float }
  | Partition of { lasts : float }

type event = { at : float; tier : string; kind : kind }
type t = { plan_name : string; events : event list }

let client_tier = "client"

let check_event e =
  let bad fmt = Printf.ksprintf invalid_arg ("Ditto_fault.Plan: " ^^ fmt) in
  if e.at < 0.0 then bad "event on %S has negative time %g" e.tier e.at;
  match e.kind with
  | Crash { down_for } ->
      if down_for <= 0.0 then bad "crash of %S has non-positive down_for %g" e.tier down_for
  | Slowdown { factor; lasts } ->
      if factor < 1.0 then bad "slowdown of %S has factor %g < 1" e.tier factor;
      if lasts <= 0.0 then bad "slowdown of %S has non-positive duration %g" e.tier lasts
  | Link { add_latency; drop; lasts } ->
      if add_latency < 0.0 then bad "link event on %S has negative latency %g" e.tier add_latency;
      if drop < 0.0 || drop > 1.0 then bad "link event on %S has drop %g outside [0,1]" e.tier drop;
      if lasts <= 0.0 then bad "link event on %S has non-positive duration %g" e.tier lasts
  | Partition { lasts } ->
      if lasts <= 0.0 then bad "partition of %S has non-positive duration %g" e.tier lasts

let make ~name events =
  List.iter check_event events;
  { plan_name = name; events = List.stable_sort (fun a b -> compare a.at b.at) events }

let validate ?duration ?(strict = false) ~tiers t =
  List.iter
    (fun e ->
      if e.tier <> client_tier && not (List.mem e.tier tiers) then
        invalid_arg
          (Printf.sprintf "Ditto_fault.Plan %S: unknown tier %S (known: %s)" t.plan_name e.tier
             (String.concat ", " (client_tier :: tiers)));
      match duration with
      | Some d when e.at >= d ->
          let msg =
            Printf.sprintf
              "Ditto_fault.Plan %S: event on %S at %gs is at/past the %gs load duration and will \
               never fire"
              t.plan_name e.tier e.at d
          in
          if strict then invalid_arg msg else Printf.eprintf "warning: %s\n%!" msg
      | _ -> ())
    t.events

(* Canonical plans. The mid tier splits the graph; the leaf is the last tier
   of the spec (deepest dependency for the entry's fan-out). *)

let nth_tier tiers i =
  match List.nth_opt tiers i with
  | Some t -> t
  | None -> invalid_arg "Ditto_fault.Plan: canonical plan needs a non-empty tier list"

let kill_mid_tier ?(down_frac = 0.25) ~duration ~tiers () =
  let mid = nth_tier tiers (List.length tiers / 2) in
  make ~name:"kill-mid-tier"
    [ { at = 0.3 *. duration; tier = mid; kind = Crash { down_for = down_frac *. duration } } ]

let brownout_leaf ?(factor = 3.0) ~duration ~tiers () =
  let leaf = nth_tier tiers (List.length tiers - 1) in
  make ~name:"brownout-leaf"
    [ { at = 0.2 *. duration; tier = leaf; kind = Slowdown { factor; lasts = 0.5 *. duration } } ]

let flaky_link ?(drop = 0.08) ?(add_latency = 200e-6) ~duration ~tiers () =
  let entry = nth_tier tiers 0 in
  make ~name:"flaky-link"
    [
      {
        at = 0.15 *. duration;
        tier = entry;
        kind = Link { add_latency; drop; lasts = 0.6 *. duration };
      };
    ]

let canonical ~duration ~tiers =
  [
    kill_mid_tier ~duration ~tiers ();
    brownout_leaf ~duration ~tiers ();
    flaky_link ~duration ~tiers ();
  ]

(* JSON grammar (DESIGN.md §9):
   { "name": "...",
     "events": [ { "at": s, "tier": "...", "kind": "crash", "down_for": s }
               | { ..., "kind": "slowdown", "factor": x, "for": s }
               | { ..., "kind": "link", "add_latency": s, "drop": p, "for": s }
               | { ..., "kind": "partition", "for": s } ] } *)

let kind_to_json = function
  | Crash { down_for } -> [ ("kind", J.Str "crash"); ("down_for", J.Num down_for) ]
  | Slowdown { factor; lasts } ->
      [ ("kind", J.Str "slowdown"); ("factor", J.Num factor); ("for", J.Num lasts) ]
  | Link { add_latency; drop; lasts } ->
      [
        ("kind", J.Str "link");
        ("add_latency", J.Num add_latency);
        ("drop", J.Num drop);
        ("for", J.Num lasts);
      ]
  | Partition { lasts } -> [ ("kind", J.Str "partition"); ("for", J.Num lasts) ]

let to_json t =
  J.Obj
    [
      ("name", J.Str t.plan_name);
      ( "events",
        J.list
          (fun e -> J.Obj ([ ("at", J.Num e.at); ("tier", J.Str e.tier) ] @ kind_to_json e.kind))
          t.events );
    ]

let kind_of_json j =
  let num field = J.to_float (J.member field j) in
  match J.to_str (J.member "kind" j) with
  | "crash" -> Crash { down_for = num "down_for" }
  | "slowdown" -> Slowdown { factor = num "factor"; lasts = num "for" }
  | "link" -> Link { add_latency = num "add_latency"; drop = num "drop"; lasts = num "for" }
  | "partition" -> Partition { lasts = num "for" }
  | k -> raise (J.Parse_error (Printf.sprintf "fault plan: unknown event kind %S" k))

let of_json json =
  let name = J.to_str (J.member "name" json) in
  let events =
    J.to_list (J.member "events" json)
    |> List.map (fun j ->
           {
             at = J.to_float (J.member "at" j);
             tier = J.to_str (J.member "tier" j);
             kind = kind_of_json j;
           })
  in
  make ~name events

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_json (J.of_string s)

let save ~path t =
  let oc = open_out path in
  output_string oc (J.to_string ~pretty:true (to_json t));
  output_char oc '\n';
  close_out oc
