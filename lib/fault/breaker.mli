(** Per-downstream circuit breaker: closed / open / half-open.

    Pure state machine — the caller passes the clock in, so it works
    identically under the DES virtual clock and in unit tests. In [Closed]
    it tracks a sliding window of the last [window] call outcomes and trips
    to [Open] when the observed failure rate reaches [failure_threshold]
    (once the window is full). [Open] fast-fails every call until [cooldown]
    seconds have passed, then moves to [Half_open], which admits up to
    [half_open_probes] probe calls: any probe failure re-opens the breaker,
    [half_open_probes] consecutive successes close it. *)

type config = {
  failure_threshold : float;  (** trip when failures/window >= this, in (0,1] *)
  window : int;  (** sliding window length, > 0 *)
  cooldown : float;  (** seconds spent [Open] before probing *)
  half_open_probes : int;  (** probe budget in [Half_open], > 0 *)
}

val default_config : config
(** [{ failure_threshold = 0.5; window = 16; cooldown = 0.05; half_open_probes = 2 }] *)

type state = Closed | Open | Half_open
type t

val create : ?config:config -> unit -> t
(** Raises [Invalid_argument] on an out-of-range config. *)

val state : t -> state

val allow : t -> now:float -> bool
(** May the caller attempt a call at time [now]? Performs the
    [Open] -> [Half_open] transition once the cooldown has elapsed, and
    accounts admitted half-open probes against the probe budget. *)

val record : t -> now:float -> ok:bool -> unit
(** Report the outcome of a call admitted by {!allow}. *)

val transitions : t -> int
(** Number of state changes so far (reported per tier via [Metrics]). *)
