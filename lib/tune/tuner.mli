(** Fine tuning (§4.5): feedback calibration of generator knobs.

    Runs the synthetic application, compares PMU-style counters against the
    original, and adjusts grouped knobs with a linear feedback heuristic —
    frontend knobs (i-footprint, branch bins) against L1i/branch misses,
    data knobs (working-set scale) against L1d/L2/LLC misses, and the work
    knob (instruction scale) against per-request instruction counts.
    Typically converges within ten iterations to >95% accuracy.

    Tuning is {e speculative}: each iteration evaluates the damped
    adjustment plus [speculation] jittered knob vectors — independent runs
    dispatched on a {!Ditto_util.Pool} — and keeps the best objective. The
    candidate set is derived from the seed alone, so the search trajectory
    (and the returned clone) is bit-identical whatever the pool size. *)

type iteration = {
  iter : int;
  worst_error : float;  (** max relative error across tuned counters *)
  errors : (string * float) list;  (** per "tier/metric" *)
  objective : float;  (** ranking objective of the kept candidate *)
  winner : int;
      (** index of the kept candidate: 0 = damped adjustment, >= 1 = the
          [winner]-th speculative perturbation *)
  params : (string * Ditto_gen.Params.t) list;  (** kept knob vector, per tier *)
}

type report = {
  iterations : iteration list;
  converged : bool;
  final_params : (string * Ditto_gen.Params.t) list;
  speculation : int;  (** extra candidate vectors evaluated per iteration *)
  attribution : (string * float) list;
      (** residual error per "tier/group" knob group (worst member metric),
          e.g. [("redis/frontend", 0.031)] — lets scorecards name the knobs
          that own each row's remaining error *)
}

val tune :
  ?max_iterations:int ->
  ?target_error:float ->
  ?seed:int ->
  ?speculation:int ->
  ?pool:Ditto_util.Pool.t ->
  config:Ditto_app.Runner.config ->
  load:Ditto_app.Service.load ->
  reference:Ditto_app.Runner.output ->
  profile:Ditto_profile.Tier_profile.app ->
  unit ->
  Ditto_app.Spec.t * report
(** [reference] is the original's run at the profiling load. Returns the
    calibrated synthetic spec and the tuning report. Tuning runs use a
    shortened load duration — calibration needs counters, not tails.

    [speculation] (default 2) is K, the number of perturbed knob vectors
    evaluated alongside the damped adjustment each iteration; [pool]
    (default {!Ditto_util.Pool.default}) supplies the domains the K+1
    candidate runs execute on. [speculation:0] recovers the paper's plain
    §4.5 feedback loop. *)

val counter_errors :
  original:Ditto_uarch.Counters.t ->
  synthetic:Ditto_uarch.Counters.t ->
  orig_requests:int ->
  synth_requests:int ->
  (string * float) list
(** Relative errors for ipc / insts-per-request / branch / l1i / l1d / l2 /
    llc (exposed for tests). *)

val attribution_of_errors : (string * float) list -> (string * float) list
(** Folds "tier/metric" errors into per "tier/group" residuals, keeping the
    worst error among each knob group's metrics (exposed for tests). *)

(** {1 Telemetry}

    Stable JSON projections of the tuning trajectory, used by
    [bench --json] and embedded as span attributes by the observability
    layer. *)

val params_to_json : Ditto_gen.Params.t -> Ditto_util.Jsonx.t
val iteration_to_json : iteration -> Ditto_util.Jsonx.t
val report_to_json : report -> Ditto_util.Jsonx.t
