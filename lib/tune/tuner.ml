open Ditto_uarch
open Ditto_app
module P = Ditto_profile
module Params = Ditto_gen.Params
module Obs = Ditto_obs.Obs
module J = Ditto_util.Jsonx

type iteration = {
  iter : int;
  worst_error : float;
  errors : (string * float) list;
  objective : float;
  winner : int;
  params : (string * Params.t) list;
}

type report = {
  iterations : iteration list;
  converged : bool;
  final_params : (string * Params.t) list;
  speculation : int;
  attribution : (string * float) list;
}

(* Per-knob-group residual attribution: fold the final iterate's
   "tier/metric" errors down to "tier/group" (group = the knob group that
   owns the metric, per Params.group_of_metric), keeping the worst residual
   in each group. This is what lets a scorecard row name the knobs that own
   its remaining error. *)
let attribution_of_errors errors =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (key, e) ->
      match String.index_opt key '/' with
      | None -> ()
      | Some i -> (
          let tier = String.sub key 0 i in
          let metric = String.sub key (i + 1) (String.length key - i - 1) in
          match Params.group_of_metric metric with
          | None -> ()
          | Some g ->
              let gkey = tier ^ "/" ^ Params.group_name g in
              let cur = Option.value ~default:0.0 (Hashtbl.find_opt tbl gkey) in
              Hashtbl.replace tbl gkey (Float.max cur e)))
    errors;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let c_won = Obs.Metrics.counter "tuner.candidates_won"
let c_lost = Obs.Metrics.counter "tuner.candidates_lost"

let params_to_json (p : Params.t) =
  J.Obj
    [
      ("inst_scale", J.Num p.Params.inst_scale);
      ("i_ws_scale", J.Num p.Params.i_ws_scale);
      ("d_ws_scale", J.Num p.Params.d_ws_scale);
      ("big_mass_scale", J.Num p.Params.big_mass_scale);
      ("branch_m_shift", J.int p.Params.branch_m_shift);
      ("branch_n_shift", J.int p.Params.branch_n_shift);
      ("chase_scale", J.Num p.Params.chase_scale);
    ]

let iteration_to_json it =
  J.Obj
    [
      ("iter", J.int it.iter);
      ("worst_error", J.Num it.worst_error);
      ("objective", J.Num it.objective);
      ("winner", J.int it.winner);
      ("errors", J.Obj (List.map (fun (k, e) -> (k, J.Num e)) it.errors));
      ("params", J.Obj (List.map (fun (k, p) -> (k, params_to_json p)) it.params));
    ]

let report_to_json r =
  J.Obj
    [
      ("converged", J.Bool r.converged);
      ("speculation", J.int r.speculation);
      ("iterations", J.List (List.map iteration_to_json r.iterations));
      ("final_params", J.Obj (List.map (fun (k, p) -> (k, params_to_json p)) r.final_params));
      ("attribution", J.Obj (List.map (fun (k, e) -> (k, J.Num e)) r.attribution));
    ]

(* Flatten the per-tier knob vector into span attributes ("tier.knob"). *)
let knob_attrs params =
  List.concat_map
    (fun (name, (p : Params.t)) ->
      [
        (name ^ ".inst_scale", Obs.Float p.Params.inst_scale);
        (name ^ ".i_ws_scale", Obs.Float p.Params.i_ws_scale);
        (name ^ ".d_ws_scale", Obs.Float p.Params.d_ws_scale);
        (name ^ ".big_mass_scale", Obs.Float p.Params.big_mass_scale);
        (name ^ ".branch_m_shift", Obs.Int p.Params.branch_m_shift);
        (name ^ ".chase_scale", Obs.Float p.Params.chase_scale);
      ])
    params

let rel_err actual synth = if actual = 0.0 then 0.0 else Float.abs (synth -. actual) /. actual

let counter_errors ~original ~synthetic ~orig_requests ~synth_requests =
  let per_req c n = float_of_int c.Counters.insts /. float_of_int (max 1 n) in
  [
    ("ipc", rel_err (Counters.ipc original) (Counters.ipc synthetic));
    ("insts", rel_err (per_req original orig_requests) (per_req synthetic synth_requests));
    ("branch", rel_err (Counters.branch_miss_rate original) (Counters.branch_miss_rate synthetic));
    ("l1i", rel_err (Counters.l1i_miss_rate original) (Counters.l1i_miss_rate synthetic));
    ("l1d", rel_err (Counters.l1d_miss_rate original) (Counters.l1d_miss_rate synthetic));
    ("l2", rel_err (Counters.l2_miss_rate original) (Counters.l2_miss_rate synthetic));
    ("llc", rel_err (Counters.llc_miss_rate original) (Counters.llc_miss_rate synthetic));
  ]

let clamp lo hi x = Float.max lo (Float.min hi x)

(* One feedback step for a tier's knobs: multiplicative correction toward
   the original's counter, damped for stability (the knob-to-counter
   relationships are roughly linear, §4.5). *)
let adjust (p : Params.t) ~(orig : Counters.t) ~(synth : Counters.t) ~orig_requests
    ~synth_requests =
  let ratio f =
    let a = f orig and s = f synth in
    if a <= 0.0 && s <= 0.0 then 1.0
    else if s <= 0.0 then 2.0 (* synthetic shows none of the events: push up *)
    else if a <= 0.0 then 0.5
    else Float.min 8.0 (Float.max 0.125 (a /. s))
  in
  let damp ?(k = 0.6) r = r ** k in
  let inst_ratio =
    let a = float_of_int orig.Counters.insts /. float_of_int (max 1 orig_requests) in
    let s = float_of_int synth.Counters.insts /. float_of_int (max 1 synth_requests) in
    if s <= 0.0 then 1.0 else a /. s
  in
  let i_ratio = ratio Counters.l1i_miss_rate in
  let cpi_ratio =
    let a = Counters.cpi orig and s = Counters.cpi synth in
    if a <= 0.0 || s <= 0.0 then 1.0 else Float.min 4.0 (Float.max 0.25 (a /. s))
  in
  let d_ratio = ratio Counters.l1d_miss_rate in
  let big_ratio =
    (* LLC traffic responds to how many accesses hit the large sets. *)
    let r2 = ratio Counters.l2_miss_rate and r3 = ratio Counters.llc_miss_rate in
    (r2 ** 0.4) *. (r3 ** 0.6)
  in
  let br_a = Counters.branch_miss_rate orig and br_s = Counters.branch_miss_rate synth in
  let m_shift =
    (* More mispredicts needed -> lower m (more volatile minority). *)
    if br_s > br_a *. 1.25 then p.Params.branch_m_shift + 1
    else if br_s < br_a /. 1.25 then p.Params.branch_m_shift - 1
    else p.Params.branch_m_shift
  in
  {
    p with
    Params.inst_scale = clamp 0.25 4.0 (p.Params.inst_scale *. damp inst_ratio);
    i_ws_scale = clamp 0.25 64.0 (p.Params.i_ws_scale *. damp ~k:0.35 i_ratio);
    d_ws_scale = clamp 0.25 16.0 (p.Params.d_ws_scale *. damp d_ratio);
    (* LLC misses alone do not pin this knob down (streaming misses can be
       traded between rep bursts and scattered accesses at equal counts but
       very different cost); the CPI residual breaks the tie. *)
    big_mass_scale =
      clamp 0.1 8.0
        (p.Params.big_mass_scale *. damp ~k:0.7 big_ratio *. damp ~k:0.4 cpi_ratio);
    branch_m_shift = max (-4) (min 4 m_shift);
    (* Pointer chasing trades MLP for serialisation: steer it with the CPI
       residual the other knobs do not explain (the paper sets it from
       measured MLP). *)
    chase_scale = clamp 0.0 4.0 (p.Params.chase_scale *. damp ~k:0.7 cpi_ratio);
  }

(* One evaluated knob assignment: the per-tier calibration measurements
   and the derived error terms. Candidates are evaluated on pool domains,
   so everything here is built inside the evaluation — no mutable state is
   shared between concurrent evaluations. [e_synth] is only populated on
   the legacy whole-app path; the isolated path regenerates the winning
   spec once at the end. *)
type evaluation = {
  e_params : (string * Params.t) list;
  e_synth : Spec.t option;
  e_measured : (string * Measure.tier_result) list;
  e_errors : (string * float) list;
  e_worst : float;
  e_objective : float;
}

(* Objective for ranking candidates and keeping the best iterate: mean
   error with IPC counted twice (the headline metric); the convergence
   check stays on the worst single counter, per the paper's ">95%
   accuracy". Keys are "tier/metric", so match the "/ipc" suffix exactly —
   a bare suffix check on "ipc" would also double-weight any tier metric
   merely ending in those letters. *)
let objective_of errors =
  let sum, n =
    List.fold_left
      (fun (s, n) (key, e) ->
        let w = if String.ends_with ~suffix:"/ipc" key then 2.0 else 1.0 in
        (s +. (w *. e), n +. w))
      (0.0, 0.0) errors
  in
  sum /. Float.max 1.0 n

let tune ?(max_iterations = 10) ?(target_error = 0.05) ?(seed = 1009) ?(speculation = 2)
    ?pool ~config ~load ~reference ~(profile : P.Tier_profile.app) () =
  Obs.Span.with_span ~name:"tune"
    ~attrs:[ ("speculation", Obs.Int (max 0 speculation)); ("seed", Obs.Int seed) ]
  @@ fun () ->
  let pool = match pool with Some p -> p | None -> Ditto_util.Pool.default () in
  let speculation = max 0 speculation in
  (* Counter calibration only needs a short run. *)
  let tune_load = { load with Service.duration = Float.min load.Service.duration 0.4 } in
  let tiers = profile.P.Tier_profile.tiers in
  let ntiers = List.length tiers in
  (* Isolated calibration: the tier is generated and measured alone on a
     pooled machine, so a repeated knob vector re-simulates nothing
     (identical (tier, params) keys hit the memo below) and the
     service/DES phase — which tuning never reads — is skipped entirely.
     This is only sound for single-tier apps: a non-cluster Runner hosts
     every tier on ONE machine and measures them together, so multi-tier
     counters include cross-tier cache/TLB/page-cache contention that an
     isolated measurement cannot reproduce. Multi-tier apps, cluster
     placements and stressor configs therefore keep the legacy whole-app
     evaluation, whose machine sharing is the thing being modelled. *)
  let isolated =
    ntiers = 1 && (not config.Runner.cluster) && config.Runner.stressor = None
  in
  let measure_config ~avg_workers =
    {
      Measure.default_config with
      Measure.syscall_scale = config.Runner.syscall_scale;
      idle_per_request =
        Runner.estimate_idle_per_request ~qps:tune_load.Service.qps ~workers:avg_workers;
      smt_pressure = config.Runner.smt_pressure;
    }
  in
  let avg_workers_of total = max 1 (total / ntiers) in
  (* Measure one tier alone, replicating exactly what Runner does for a
     single hosted tier: same measure config, seed, request count, layout
     space (at the tier's app-level index) and machine construction. *)
  let measure_isolated ~mcfg ~page_cache_hint ~tier ~space =
    let engine = Ditto_sim.Engine.create () in
    let page_cache_bytes =
      match config.Runner.page_cache_bytes with Some b -> Some b | None -> page_cache_hint
    in
    let machine =
      Machine.create ?page_cache_bytes ?cores:config.Runner.cores engine config.Runner.platform
    in
    let r =
      Measure.run ~config:mcfg ~machine ~seed:config.Runner.seed
        ~requests:config.Runner.requests [ (tier, space) ]
    in
    Machine.release machine;
    List.hd r
  in
  (* Calibration targets: for a single-tier app the reference's own
     measurement already is the one-hosted-tier run the isolated path
     replays, bit-identically; the legacy path compares against it
     directly. *)
  let orig_targets = reference.Runner.measured in
  let orig_measured name = List.assoc name orig_targets in
  (* Per-(tier index, knob vector) measurement memo, scoped to this tune
     call so the profile never needs to appear in the key. Guarded by a
     mutex because candidates evaluate on pool domains; on a miss the
     measurement runs outside the lock (a racing duplicate computes the
     same value, so a double store is harmless). *)
  let memo : (int * Params.t, Measure.tier_result) Memo.t = Memo.create ~max_entries:256 () in
  let memo_mutex = Mutex.create () in
  let with_lock f =
    Mutex.lock memo_mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock memo_mutex) f
  in
  let synth_mcfg =
    lazy
      (let total =
         List.fold_left
           (fun a (tp : P.Tier_profile.t) ->
             a + tp.P.Tier_profile.skeleton.P.Skeleton.worker_threads)
           0 tiers
       in
       measure_config ~avg_workers:(avg_workers_of total))
  in
  let measure_synth_tier i (tp : P.Tier_profile.t) (p : Params.t) =
    let key = (i, p) in
    match with_lock (fun () -> Memo.find_opt memo key) with
    | Some r -> r
    | None ->
        let name = tp.P.Tier_profile.tier_name in
        let space =
          Layout.space ~tier_index:i ~heap_bytes:tp.P.Tier_profile.heap_bytes
            ~shared_bytes:tp.P.Tier_profile.shared_bytes
        in
        let downstream =
          match profile.P.Tier_profile.dag with
          | None -> []
          | Some dag -> Ditto_trace.Dag.downstreams dag name
        in
        let tier =
          Ditto_gen.Clone.synth_tier ~params:p ~seed:(seed + (17 * i)) ~profile:tp ~space
            ~downstream ()
        in
        let r =
          measure_isolated ~mcfg:(Lazy.force synth_mcfg)
            ~page_cache_hint:profile.P.Tier_profile.page_cache_hint ~tier ~space
        in
        with_lock (fun () -> Memo.add memo key r);
        r
  in
  let errors_of measured =
    List.concat_map
      (fun (tp : P.Tier_profile.t) ->
        let name = tp.P.Tier_profile.tier_name in
        let o = orig_measured name and s = List.assoc name measured in
        counter_errors ~original:o.Measure.counters ~synthetic:s.Measure.counters
          ~orig_requests:o.Measure.requests_measured
          ~synth_requests:s.Measure.requests_measured
        |> List.map (fun (metric, e) -> (name ^ "/" ^ metric, e)))
      tiers
  in
  let evaluation_of ~synth ~measured params =
    let errors = errors_of measured in
    let worst = List.fold_left (fun acc (_, e) -> Float.max acc e) 0.0 errors in
    {
      e_params = params;
      e_synth = synth;
      e_measured = measured;
      e_errors = errors;
      e_worst = worst;
      e_objective = objective_of errors;
    }
  in
  let evaluate params =
    Obs.Span.with_span ~name:"tune.evaluate" @@ fun () ->
    if isolated then begin
      let measured =
        List.mapi
          (fun i (tp : P.Tier_profile.t) ->
            let name = tp.P.Tier_profile.tier_name in
            let p = Option.value ~default:Params.default (List.assoc_opt name params) in
            (name, measure_synth_tier i tp p))
          tiers
      in
      evaluation_of ~synth:None ~measured params
    end
    else begin
      let param_fn name =
        Option.value ~default:Params.default (List.assoc_opt name params)
      in
      let synth = Ditto_gen.Clone.synth_app ~params:param_fn ~seed profile in
      let out = Runner.run config ~load:tune_load synth in
      evaluation_of ~synth:(Some synth) ~measured:out.Runner.measured params
    end
  in
  (* A tier whose every calibrated counter is already within the target
     has nothing left to learn: freeze its knobs so adjustment/perturbation
     stop touching them — its (tier, params) key then hits the memo and the
     tier is never re-simulated (the per-group attribution of a frozen
     tier is simply carried forward). Only meaningful on the isolated
     path; the single-tier case never freezes while the loop runs (an
     unconverged worst error is that tier's error). *)
  let tier_within_target name errors =
    let prefix = name ^ "/" in
    List.for_all (fun (k, e) -> (not (String.starts_with ~prefix k)) || e <= target_error) errors
  in
  let is_frozen_in (ev : evaluation) name = isolated && tier_within_target name ev.e_errors in
  let adjust_all (ev : evaluation) =
    List.map
      (fun (tp : P.Tier_profile.t) ->
        let name = tp.P.Tier_profile.tier_name in
        let p = Option.value ~default:Params.default (List.assoc_opt name ev.e_params) in
        if is_frozen_in ev name then (name, p)
        else
          let o = orig_measured name and s = List.assoc name ev.e_measured in
          ( name,
            adjust p ~orig:o.Measure.counters ~synth:s.Measure.counters
              ~orig_requests:o.Measure.requests_measured
              ~synth_requests:s.Measure.requests_measured ))
      tiers
  in
  (* Speculative candidates: multiplicative jitter around the damped
     adjustment, from an RNG keyed on (seed, iteration, candidate) so the
     candidate set — and hence the whole search trajectory — is identical
     whatever the pool size. Frozen tiers keep their knobs and consume no
     draws, so freezing one tier does not scramble the others' jitter. *)
  let perturb ~iter ~k ~frozen params =
    let rng = Ditto_util.Rng.create (seed lxor ((iter * 73856093) + ((k + 1) * 19349663))) in
    let jitter () = 2.0 ** (Ditto_util.Rng.float rng 0.5 -. 0.25) in
    List.map
      (fun (name, (p : Params.t)) ->
        if frozen name then (name, p)
        else
          let m_shift =
            if Ditto_util.Rng.int rng 4 = 0 then
              p.Params.branch_m_shift + (if Ditto_util.Rng.bool rng then 1 else -1)
            else p.Params.branch_m_shift
          in
          ( name,
            {
              p with
              Params.inst_scale = clamp 0.25 4.0 (p.Params.inst_scale *. jitter ());
              i_ws_scale = clamp 0.25 64.0 (p.Params.i_ws_scale *. jitter ());
              d_ws_scale = clamp 0.25 16.0 (p.Params.d_ws_scale *. jitter ());
              big_mass_scale = clamp 0.1 8.0 (p.Params.big_mass_scale *. jitter ());
              branch_m_shift = max (-4) (min 4 m_shift);
              chase_scale = clamp 0.0 4.0 (p.Params.chase_scale *. jitter ());
            } ))
      params
  in
  let initial =
    List.map (fun (tp : P.Tier_profile.t) -> (tp.P.Tier_profile.tier_name, Params.default)) tiers
  in
  let record_iteration ~iter ~winner (ev : evaluation) =
    {
      iter;
      worst_error = ev.e_worst;
      errors = ev.e_errors;
      objective = ev.e_objective;
      winner;
      params = ev.e_params;
    }
  in
  let current = ref (evaluate initial) in
  let iterations = ref [ record_iteration ~iter:1 ~winner:0 !current ] in
  let best = ref !current in
  let converged = ref (!current.e_worst <= target_error) in
  let iter = ref 1 in
  while (not !converged) && !iter < max_iterations do
    incr iter;
    Obs.Span.with_span ~name:"tune.iteration" ~attrs:[ ("iter", Obs.Int !iter) ]
    @@ fun () ->
    let base = adjust_all !current in
    let frozen = is_frozen_in !current in
    let candidates =
      base :: List.init speculation (fun k -> perturb ~iter:!iter ~k ~frozen base)
    in
    let evals = Ditto_util.Pool.map pool evaluate candidates in
    (* Keep the candidate with the lowest objective; ties break toward the
       damped adjustment (list head), so speculation only ever helps. *)
    let chosen, winner =
      let folded =
        List.fold_left
          (fun (acc, wi, i) ev ->
            if ev.e_objective < acc.e_objective then (ev, i, i + 1) else (acc, wi, i + 1))
          (List.hd evals, 0, 1) (List.tl evals)
      in
      let ev, wi, _ = folded in
      (ev, wi)
    in
    (if winner > 0 then Obs.Metrics.incr c_won);
    Obs.Metrics.add c_lost (List.length evals - 1 - if winner > 0 then 1 else 0);
    if Obs.enabled () then begin
      Obs.Span.add_attr "worst_error" (Obs.Float chosen.e_worst);
      Obs.Span.add_attr "objective" (Obs.Float chosen.e_objective);
      Obs.Span.add_attr "winner" (Obs.Int winner);
      List.iter (fun (k, a) -> Obs.Span.add_attr k a) (knob_attrs chosen.e_params)
    end;
    current := chosen;
    iterations := record_iteration ~iter:!iter ~winner chosen :: !iterations;
    if chosen.e_objective < !best.e_objective then best := chosen;
    if chosen.e_worst <= target_error then converged := true
  done;
  (* The response surface is not perfectly monotonic (set conflicts flip
     L1i behaviour at capacity edges); keep the best iterate, not the last. *)
  let final = if !best.e_objective <= !current.e_objective then !best else !current in
  let final_params = List.sort (fun (a, _) (b, _) -> compare a b) final.e_params in
  if Obs.enabled () then begin
    Obs.Span.add_attr "converged" (Obs.Bool !converged);
    Obs.Span.add_attr "iterations" (Obs.Int (List.length !iterations));
    Obs.Span.add_attr "final_worst_error" (Obs.Float final.e_worst)
  end;
  (* The isolated path never generated whole apps during the search; build
     the winning spec once from the final knob vector (generation is a
     pure function of (params, seed, profile), so this equals what the
     legacy path would have carried through the search). *)
  let final_synth =
    match final.e_synth with
    | Some s -> s
    | None ->
        let param_fn name =
          Option.value ~default:Params.default (List.assoc_opt name final.e_params)
        in
        Ditto_gen.Clone.synth_app ~params:param_fn ~seed profile
  in
  ( final_synth,
    {
      iterations = List.rev !iterations;
      converged = !converged;
      final_params;
      speculation;
      attribution = attribution_of_errors final.e_errors;
    } )
