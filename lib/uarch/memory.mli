(** Multi-level memory hierarchy: per-core L1i/L1d/L2, a shared LLC,
    stride prefetchers, and directory-style coherence for shared lines.

    Latencies are load-to-use cycle counts from the {!Platform} spec. All
    accesses are attributed to the requesting core's {!Counters} record —
    the simulated analogue of per-core PMU events. *)

type t

val create : Platform.t -> ncores:int -> t
val ncores : t -> int
val platform : t -> Platform.t

val counters : t -> int -> Counters.t
(** The per-core counter record (shared with the core model). *)

val set_counter : t -> int -> Counters.t -> unit
(** Swap the counter record accesses on core [i] are attributed to. The
    runner points this at the record of whichever tier currently executes
    on the core, so colocated tiers are measured separately — the simulated
    analogue of per-process PMU multiplexing. *)

val access_data : t -> core:int -> addr:int -> write:bool -> shared:bool -> int
(** Demand data access; returns load-to-use latency in cycles and updates
    hit/miss counters, prefetchers, and (for [shared] lines) the coherence
    directory. [addr] is a byte address; the access touches one line. *)

val access_inst : t -> core:int -> addr:int -> int
(** Instruction-fetch access for the line containing [addr]; returns the
    extra fetch latency in cycles (0 for an L1i hit). *)

val flush : t -> unit
(** Cold-start all caches, prefetcher state and the directory (counters are
    preserved). *)

val reset : t -> unit
(** {!flush} plus fresh per-core counter records — the pristine
    post-{!create} state, for recycling a hierarchy across runs. *)
