(* Keyed result caches for the simulation hot path.

   A cache is a structural-key hashtable with FIFO eviction, hit/miss
   accounting and an explicit invalidation hook. Keys are compared with
   full structural equality — [Hashtbl.hash] quality only affects lookup
   speed, never correctness — so callers can key on whole tuples
   (platform record, seed, request count, parameter fingerprint) without
   collision hazards.

   Caches are expected to be domain-local (e.g. held in [Domain.DLS]);
   there is no internal locking. The global [set_enabled] switch turns
   every cache into a pass-through, which the test suite uses to pin
   memoized results bit-identical to cold recomputation. *)

type stats = { hits : int; misses : int; invalidations : int; entries : int }

type ('k, 'v) t = {
  table : ('k, 'v) Hashtbl.t;
  order : 'k Queue.t; (* insertion order, for FIFO eviction *)
  max_entries : int;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
}

let enabled_flag =
  Atomic.make
    (match Sys.getenv_opt "DITTO_MEMO" with
    | Some ("0" | "false" | "off") -> false
    | Some _ | None -> true)

let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let create ?(max_entries = 512) () =
  {
    table = Hashtbl.create 64;
    order = Queue.create ();
    max_entries = max 1 max_entries;
    hits = 0;
    misses = 0;
    invalidations = 0;
  }

(* Drop oldest inserted keys until under the cap. A queued key may have
   been invalidated already, in which case popping it frees nothing and we
   keep going. *)
let rec evict_to_cap t =
  if Hashtbl.length t.table >= t.max_entries && not (Queue.is_empty t.order) then begin
    let k = Queue.pop t.order in
    if Hashtbl.mem t.table k then Hashtbl.remove t.table k;
    evict_to_cap t
  end

let find_opt t key =
  if not (enabled ()) then None
  else
    match Hashtbl.find_opt t.table key with
    | Some v ->
        t.hits <- t.hits + 1;
        Some v
    | None -> None

let add t key v =
  if enabled () then begin
    t.misses <- t.misses + 1;
    evict_to_cap t;
    Hashtbl.replace t.table key v;
    Queue.push key t.order
  end

let find_or_add t key f =
  if not (enabled ()) then f ()
  else
    match Hashtbl.find_opt t.table key with
    | Some v ->
        t.hits <- t.hits + 1;
        v
    | None ->
        let v = f () in
        t.misses <- t.misses + 1;
        evict_to_cap t;
        Hashtbl.replace t.table key v;
        Queue.push key t.order;
        v

let invalidate t pred =
  let doomed = Hashtbl.fold (fun k _ acc -> if pred k then k :: acc else acc) t.table [] in
  List.iter (Hashtbl.remove t.table) doomed;
  let n = List.length doomed in
  t.invalidations <- t.invalidations + n;
  n

let clear t =
  let n = Hashtbl.length t.table in
  Hashtbl.reset t.table;
  Queue.clear t.order;
  t.invalidations <- t.invalidations + n

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    invalidations = t.invalidations;
    entries = Hashtbl.length t.table;
  }
