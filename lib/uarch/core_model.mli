(** Interval-style out-of-order core model.

    Executes {!Ditto_isa.Block} instruction streams against the memory
    hierarchy and a branch predictor, resolving per-instruction issue times
    under issue-width, dependency, execution-port, ROB and MSHR constraints
    — the level of abstraction used by interval simulators such as Sniper,
    which is sufficient to reproduce IPC, miss-rate and top-down trends.

    The pipeline clock is virtual and monotonic per core; callers measure
    per-segment cycles via {!Counters} snapshots. *)

type t

val create : Memory.t -> core:int -> t
(** A core bound to slot [core] of the hierarchy (which also holds its
    counters). *)

val counters : t -> Counters.t
val platform : t -> Platform.t

val reset : t -> unit
(** Restore the pristine post-{!create} state (issue cursors, ROB, ports,
    MSHRs, branch predictor, width factor) so the core can be recycled
    across runs with bit-identical results. Cores that executed nothing
    since the last reset return immediately. *)

val set_width_factor : t -> float -> unit
(** Scale effective issue width (e.g. 0.5 when an SMT sibling is active,
    Fig. 10's hyperthreading interference). *)

val exec_block : t -> rng:Ditto_util.Rng.t -> Ditto_isa.Block.t -> iterations:int -> unit
(** Run [iterations] passes over the block's templates, updating counters
    (instructions, cycles, misses, top-down slots). *)

val now : t -> float
(** Current virtual pipeline time in cycles. *)

val drain : t -> unit
(** Advance the issue cursor past all outstanding completions (end of a
    request's computation). *)
