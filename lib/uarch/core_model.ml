open Ditto_isa

type t = {
  mem : Memory.t;
  plat : Platform.t;
  core : int;
  bp : Branch_pred.t;
  reg_ready : float array;
  port_free : float array;
  rob : float array;
  mutable rob_pos : int;
  mshr : float array;
  mutable next_issue : float;
  mutable fetch_avail : float;
  mutable resteer_until : float;
  mutable max_done : float;
  mutable last_fetch_line : int;
  mutable last_lock_done : float;
  mutable width_factor : float;
  (* Whether any block executed since the last [reset]; untouched cores
     skip the (large) predictor/ROB array fills on reset. *)
  mutable used : bool;
}

let create mem ~core =
  let plat = Memory.platform mem in
  {
    mem;
    plat;
    core;
    bp =
      Branch_pred.create ~entries:plat.Platform.predictor_entries
        ~btb_entries:plat.Platform.btb_entries ();
    reg_ready = Array.make Block.num_regs 0.0;
    port_free = Array.make Iform.port_count 0.0;
    rob = Array.make plat.Platform.rob_size 0.0;
    rob_pos = 0;
    mshr = Array.make 10 0.0;
    next_issue = 0.0;
    fetch_avail = 0.0;
    resteer_until = 0.0;
    max_done = 0.0;
    last_fetch_line = -1;
    last_lock_done = 0.0;
    width_factor = 1.0;
    used = false;
  }

(* Restore the pristine post-[create] state. Kept bit-identical to a fresh
   core: every mutable field and array returns to its initial value, so a
   recycled core (see [Ditto_app.Machine]) measures exactly like a new one. *)
let reset t =
  if t.used then begin
    Array.fill t.reg_ready 0 (Array.length t.reg_ready) 0.0;
    Array.fill t.port_free 0 (Array.length t.port_free) 0.0;
    Array.fill t.rob 0 (Array.length t.rob) 0.0;
    Array.fill t.mshr 0 (Array.length t.mshr) 0.0;
    Branch_pred.flush t.bp;
    t.used <- false
  end;
  t.rob_pos <- 0;
  t.next_issue <- 0.0;
  t.fetch_avail <- 0.0;
  t.resteer_until <- 0.0;
  t.max_done <- 0.0;
  t.last_fetch_line <- -1;
  t.last_lock_done <- 0.0;
  t.width_factor <- 1.0

let counters t = Memory.counters t.mem t.core
let platform t = t.plat
let set_width_factor t f = t.width_factor <- Float.max 0.1 f

(* Branchy float max/min for the hot loop: [Stdlib.Float.max] handles NaN
   and signed zeros (via [signbit]) that simulated timestamps — finite,
   non-negative, never produced as [-0.] — cannot exhibit, so these are
   value-identical here and compile to a compare and a move. *)
let[@inline] fmax (a : float) (b : float) = if a > b then a else b
let[@inline] fmin (a : float) (b : float) = if a < b then a else b
let now t = fmax t.next_issue t.max_done
let drain t = t.next_issue <- now t

let effective_width t = float_of_int t.plat.Platform.issue_width *. t.width_factor

let choose_port t mask =
  let best = ref 0 and best_t = ref infinity in
  for p = 0 to Iform.port_count - 1 do
    if mask land (1 lsl p) <> 0 && Array.unsafe_get t.port_free p < !best_t then begin
      best_t := Array.unsafe_get t.port_free p;
      best := p
    end
  done;
  !best

(* Off-core misses contend for a finite set of miss-status registers,
   bounding memory-level parallelism. Returns the adjusted start time. *)
let mshr_admit t start latency =
  let best = ref 0 and best_t = ref infinity in
  for i = 0 to Array.length t.mshr - 1 do
    if Array.unsafe_get t.mshr i < !best_t then begin
      best_t := Array.unsafe_get t.mshr i;
      best := i
    end
  done;
  let start = fmax start !best_t in
  Array.unsafe_set t.mshr !best (start +. latency);
  start

let exec_rep_string t ~width addr shared ~write_only ~count start =
  let ctr = Memory.counters t.mem t.core in
  let cs = ctr.Counters.s in
  let chunks = max 1 (count / Cache.line_bytes) in
  let issue = ref start and done_t = ref start in
  for i = 0 to chunks - 1 do
    let a = addr + (Cache.line_bytes * i) in
    let rl =
      if write_only then 1
      else Memory.access_data t.mem ~core:t.core ~addr:a ~write:false ~shared
    in
    ignore (Memory.access_data t.mem ~core:t.core ~addr:(a + 0x40000) ~write:true ~shared:false);
    done_t := fmax !done_t (!issue +. float_of_int rl);
    issue := !issue +. (2.0 /. width);
    cs.Counters.retiring <- cs.Counters.retiring +. 2.0;
    ctr.Counters.uops <- ctr.Counters.uops + 2
  done;
  (!issue, !done_t)

let exec_block t ~rng (block : Block.t) ~iterations =
  t.used <- true;
  let width = effective_width t in
  let plat = t.plat in
  let ctr = Memory.counters t.mem t.core in
  let cs = ctr.Counters.s in
  let rob_len = Array.length t.rob in
  let ntemps = Array.length block.Block.temps in
  let before = now t in
  for _iteration = 0 to iterations - 1 do
    for k = 0 to ntemps - 1 do
      let temp = Array.unsafe_get block.Block.temps k in
      let iform = temp.Block.iform in
      let pc = Array.unsafe_get block.Block.addrs k in
      let base = t.next_issue in
      (* Instruction fetch: one i-cache access per new line. *)
      let line = pc land lnot (Cache.line_bytes - 1) in
      if line <> t.last_fetch_line then begin
        t.last_fetch_line <- line;
        let bubble = Memory.access_inst t.mem ~core:t.core ~addr:pc in
        if bubble > 0 then t.fetch_avail <- fmax t.fetch_avail base +. float_of_int bubble
      end;
      let f = fmax base t.fetch_avail in
      (* Attribute the fetch gap: resteer shadow counts as bad speculation. *)
      let gap = f -. base in
      if gap > 0.0 then begin
        let bad = fmax 0.0 (fmin f t.resteer_until -. base) in
        cs.Counters.bad_spec <- cs.Counters.bad_spec +. (bad *. width);
        cs.Counters.frontend <- cs.Counters.frontend +. ((gap -. bad) *. width)
      end;
      (* Register dependencies. *)
      let ready = ref f in
      let srcs = temp.Block.srcs in
      for s = 0 to Array.length srcs - 1 do
        let r = Array.unsafe_get srcs s in
        (* Registers are validated at template construction (< num_regs). *)
        if r >= 0 && Array.unsafe_get t.reg_ready r > !ready then
          ready := Array.unsafe_get t.reg_ready r
      done;
      (* ROB backpressure: cannot dispatch past the window. *)
      let rob_head = Array.unsafe_get t.rob t.rob_pos in
      if rob_head > !ready then ready := rob_head;
      (* Execution port. *)
      let port = choose_port t iform.Iform.ports in
      if Array.unsafe_get t.port_free port > !ready then
        ready := Array.unsafe_get t.port_free port;
      let start = !ready in
      cs.Counters.backend <- cs.Counters.backend +. ((start -. f) *. width);
      let klass = iform.Iform.klass in
      ctr.Counters.insts <- ctr.Counters.insts + 1;
      let issue_after, done_t =
        if klass = Iclass.Rep_string then begin
          let packed = Block.resolve_mem_packed ~rng temp in
          let addr = packed asr 1 and shared = packed land 1 = 1 in
          let addr = if addr < 0 then 0 else addr in
          let write_only = temp.Block.srcs = [||] in
          exec_rep_string t ~width addr shared ~write_only
            ~count:(max Cache.line_bytes temp.Block.rep_count)
            start
        end
        else begin
          (* Memory operand. *)
          let mem_lat =
            match temp.Block.mem with
            | Block.No_mem -> 0
            | _ ->
                let packed = Block.resolve_mem_packed ~rng temp in
                let addr = packed asr 1 and shared = packed land 1 = 1 in
                let write = Iclass.is_memory_write klass && not (Iclass.is_memory_read klass) in
                let lat = Memory.access_data t.mem ~core:t.core ~addr ~write ~shared in
                if klass = Iclass.Lock_rmw then
                  ignore (Memory.access_data t.mem ~core:t.core ~addr ~write:true ~shared)
                else ();
                if write then 0 (* store latency hidden by the store buffer *) else lat
          in
          let start =
            if mem_lat > plat.Platform.lat_l2 then mshr_admit t start (float_of_int mem_lat)
            else start
          in
          let start =
            if klass = Iclass.Lock_rmw then begin
              let s = fmax start t.last_lock_done in
              s
            end
            else start
          in
          let exec_lat = float_of_int (iform.Iform.latency + mem_lat) in
          let done_t = start +. fmax 1.0 exec_lat in
          if klass = Iclass.Lock_rmw then t.last_lock_done <- done_t;
          (* Port occupancy: dividers are unpipelined. *)
          let occupancy =
            match klass with
            | Iclass.Int_div | Iclass.Float_div -> float_of_int iform.Iform.latency *. 0.6
            | _ -> 1.0
          in
          Array.unsafe_set t.port_free port (start +. occupancy);
          ctr.Counters.uops <- ctr.Counters.uops + iform.Iform.uops;
          cs.Counters.retiring <- cs.Counters.retiring +. float_of_int iform.Iform.uops;
          (start +. (float_of_int iform.Iform.uops /. width), done_t)
        end
      in
      (* Branch resolution. *)
      (match temp.Block.branch with
      | Some spec when klass = Iclass.Branch_cond ->
          ctr.Counters.branches <- ctr.Counters.branches + 1;
          let seq = temp.Block.branch_seq in
          temp.Block.branch_seq <- seq + 1;
          let outcome =
            Block.branch_outcome ~m:spec.Block.m ~n:spec.Block.n seq <> spec.Block.invert
          in
          (match Branch_pred.predict_and_update t.bp ~pc ~taken:outcome with
          | `Correct -> ()
          | `Mispredict ->
              ctr.Counters.mispredicts <- ctr.Counters.mispredicts + 1;
              let redirect = done_t +. float_of_int plat.Platform.mispredict_penalty in
              t.fetch_avail <- fmax t.fetch_avail redirect;
              t.resteer_until <- fmax t.resteer_until redirect
          | `Btb_miss ->
              ctr.Counters.btb_misses <- ctr.Counters.btb_misses + 1;
              let redirect = start +. float_of_int plat.Platform.btb_miss_penalty in
              t.fetch_avail <- fmax t.fetch_avail redirect)
      | Some _ | None ->
          if Iclass.is_control klass then begin
            ctr.Counters.branches <- ctr.Counters.branches + 1;
            match Branch_pred.note_unconditional t.bp ~pc with
            | `Correct -> ()
            | `Btb_miss ->
                ctr.Counters.btb_misses <- ctr.Counters.btb_misses + 1;
                let redirect = start +. float_of_int plat.Platform.btb_miss_penalty in
                t.fetch_avail <- fmax t.fetch_avail redirect
          end);
      (* Writeback and retirement bookkeeping. *)
      if temp.Block.dst >= 0 then Array.unsafe_set t.reg_ready temp.Block.dst done_t;
      Array.unsafe_set t.rob t.rob_pos done_t;
      let rp = t.rob_pos + 1 in
      t.rob_pos <- (if rp = rob_len then 0 else rp);
      if done_t > t.max_done then t.max_done <- done_t;
      t.next_issue <- fmax t.next_issue issue_after
    done
  done;
  cs.Counters.cycles <- cs.Counters.cycles +. fmax 0.0 (now t -. before)
