(* Tournament predictor (Alpha 21264-style): a per-branch local-history
   predictor — which captures the periodic bitmask patterns synthetic and
   kernel branches exhibit — competes with a gshare global predictor, with
   a per-branch meta chooser. A BTB models target-buffer capacity, so large
   code footprints still pay resteers on taken branches. *)

type t = {
  gshare : int array; (* 2-bit counters *)
  gshare_mask : int;
  local_hist : int array; (* per-branch local history *)
  local_mask : int;
  local_pattern : int array; (* 2-bit counters indexed by local history *)
  pattern_mask : int;
  meta : int array; (* 2-bit chooser: >=2 prefers local *)
  btb : int array;
  btb_mask : int;
  history_bits : int;
  mutable history : int;
  mutable dirty : bool;
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ?(history_bits = 12) ~entries ~btb_entries () =
  let entries = pow2_at_least (max 2 entries) 2 in
  let btb_entries = pow2_at_least (max 2 btb_entries) 2 in
  let local_entries = max 2 (entries / 4) in
  let pattern_entries = max 2 entries in
  {
    gshare = Array.make entries 1;
    gshare_mask = entries - 1;
    local_hist = Array.make local_entries 0;
    local_mask = local_entries - 1;
    local_pattern = Array.make pattern_entries 1;
    pattern_mask = pattern_entries - 1;
    meta = Array.make local_entries 2;
    btb = Array.make btb_entries (-1);
    btb_mask = btb_entries - 1;
    history_bits;
    history = 0;
    dirty = false;
  }

let btb_lookup_update t pc =
  t.dirty <- true;
  let idx = (pc lsr 2) land t.btb_mask in
  let hit = Array.unsafe_get t.btb idx = pc in
  if not hit then Array.unsafe_set t.btb idx pc;
  hit

(* Saturating 2-bit update; int compares, not the polymorphic [min]/[max]
   (which call the generic compare on every predictor lookup). *)
let train counter taken =
  if taken then if counter >= 3 then 3 else counter + 1
  else if counter <= 0 then 0
  else counter - 1

(* All indices below are masked into range, so the predictor tables are
   read and trained without bounds checks. *)
let predict_and_update t ~pc ~taken =
  t.dirty <- true;
  let gidx = ((pc lsr 2) lxor t.history) land t.gshare_mask in
  let lidx = (pc lsr 2) land t.local_mask in
  let lhist = Array.unsafe_get t.local_hist lidx in
  let pidx = (lhist lxor (pc lsr 2)) land t.pattern_mask in
  let g_ctr = Array.unsafe_get t.gshare gidx in
  let l_ctr = Array.unsafe_get t.local_pattern pidx in
  let g_pred = g_ctr >= 2 in
  let l_pred = l_ctr >= 2 in
  let use_local = Array.unsafe_get t.meta lidx >= 2 in
  let predicted = if use_local then l_pred else g_pred in
  (* Train both components, the chooser, and the histories. *)
  Array.unsafe_set t.gshare gidx (train g_ctr taken);
  Array.unsafe_set t.local_pattern pidx (train l_ctr taken);
  (if g_pred <> l_pred then
     let local_right = l_pred = taken in
     Array.unsafe_set t.meta lidx (train (Array.unsafe_get t.meta lidx) local_right));
  Array.unsafe_set t.local_hist lidx (((lhist lsl 1) lor (if taken then 1 else 0)) land 1023);
  t.history <-
    ((t.history lsl 1) lor (if taken then 1 else 0)) land ((1 lsl t.history_bits) - 1);
  if predicted <> taken then `Mispredict
  else if taken && not (btb_lookup_update t pc) then `Btb_miss
  else `Correct

let note_unconditional t ~pc = if btb_lookup_update t pc then `Correct else `Btb_miss

let flush t =
  if t.dirty then begin
    Array.fill t.gshare 0 (Array.length t.gshare) 1;
    Array.fill t.local_hist 0 (Array.length t.local_hist) 0;
    Array.fill t.local_pattern 0 (Array.length t.local_pattern) 1;
    Array.fill t.meta 0 (Array.length t.meta) 2;
    Array.fill t.btb 0 (Array.length t.btb) (-1);
    t.history <- 0;
    t.dirty <- false
  end
