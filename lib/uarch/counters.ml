(* The float counters live in their own all-float record: OCaml stores such
   records flat (unboxed doubles), so the per-instruction updates in
   [Core_model.exec_block] are raw double stores — no box allocation, no
   write barrier. Keeping them in the mixed int/float record cost one minor
   allocation plus [caml_modify] per update, which dominated GC pressure in
   the measurement hot loop. *)
type slots = {
  mutable cycles : float;
  mutable retiring : float;
  mutable frontend : float;
  mutable bad_spec : float;
  mutable backend : float;
}

type t = {
  mutable insts : int;
  mutable uops : int;
  mutable branches : int;
  mutable mispredicts : int;
  mutable btb_misses : int;
  mutable itlb_misses : int;
  mutable dtlb_misses : int;
  mutable l1i_accesses : int;
  mutable l1i_misses : int;
  mutable l1d_accesses : int;
  mutable l1d_misses : int;
  mutable l2_accesses : int;
  mutable l2_misses : int;
  mutable llc_accesses : int;
  mutable llc_misses : int;
  mutable coherence_misses : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  s : slots;
}

let create () =
  {
    insts = 0;
    uops = 0;
    branches = 0;
    mispredicts = 0;
    btb_misses = 0;
    itlb_misses = 0;
    dtlb_misses = 0;
    l1i_accesses = 0;
    l1i_misses = 0;
    l1d_accesses = 0;
    l1d_misses = 0;
    l2_accesses = 0;
    l2_misses = 0;
    llc_accesses = 0;
    llc_misses = 0;
    coherence_misses = 0;
    bytes_read = 0;
    bytes_written = 0;
    s = { cycles = 0.0; retiring = 0.0; frontend = 0.0; bad_spec = 0.0; backend = 0.0 };
  }

let reset t =
  t.insts <- 0;
  t.uops <- 0;
  t.branches <- 0;
  t.mispredicts <- 0;
  t.btb_misses <- 0;
  t.itlb_misses <- 0;
  t.dtlb_misses <- 0;
  t.l1i_accesses <- 0;
  t.l1i_misses <- 0;
  t.l1d_accesses <- 0;
  t.l1d_misses <- 0;
  t.l2_accesses <- 0;
  t.l2_misses <- 0;
  t.llc_accesses <- 0;
  t.llc_misses <- 0;
  t.coherence_misses <- 0;
  t.bytes_read <- 0;
  t.bytes_written <- 0;
  t.s.cycles <- 0.0;
  t.s.retiring <- 0.0;
  t.s.frontend <- 0.0;
  t.s.bad_spec <- 0.0;
  t.s.backend <- 0.0

(* The nested slots record is mutable, so a copy must not alias it. *)
let copy t = { t with s = { t.s with cycles = t.s.cycles } }

let sub a b =
  {
    insts = a.insts - b.insts;
    uops = a.uops - b.uops;
    branches = a.branches - b.branches;
    mispredicts = a.mispredicts - b.mispredicts;
    btb_misses = a.btb_misses - b.btb_misses;
    itlb_misses = a.itlb_misses - b.itlb_misses;
    dtlb_misses = a.dtlb_misses - b.dtlb_misses;
    l1i_accesses = a.l1i_accesses - b.l1i_accesses;
    l1i_misses = a.l1i_misses - b.l1i_misses;
    l1d_accesses = a.l1d_accesses - b.l1d_accesses;
    l1d_misses = a.l1d_misses - b.l1d_misses;
    l2_accesses = a.l2_accesses - b.l2_accesses;
    l2_misses = a.l2_misses - b.l2_misses;
    llc_accesses = a.llc_accesses - b.llc_accesses;
    llc_misses = a.llc_misses - b.llc_misses;
    coherence_misses = a.coherence_misses - b.coherence_misses;
    bytes_read = a.bytes_read - b.bytes_read;
    bytes_written = a.bytes_written - b.bytes_written;
    s =
      {
        cycles = a.s.cycles -. b.s.cycles;
        retiring = a.s.retiring -. b.s.retiring;
        frontend = a.s.frontend -. b.s.frontend;
        bad_spec = a.s.bad_spec -. b.s.bad_spec;
        backend = a.s.backend -. b.s.backend;
      };
  }

let acc into d =
  into.insts <- into.insts + d.insts;
  into.uops <- into.uops + d.uops;
  into.branches <- into.branches + d.branches;
  into.mispredicts <- into.mispredicts + d.mispredicts;
  into.btb_misses <- into.btb_misses + d.btb_misses;
  into.itlb_misses <- into.itlb_misses + d.itlb_misses;
  into.dtlb_misses <- into.dtlb_misses + d.dtlb_misses;
  into.l1i_accesses <- into.l1i_accesses + d.l1i_accesses;
  into.l1i_misses <- into.l1i_misses + d.l1i_misses;
  into.l1d_accesses <- into.l1d_accesses + d.l1d_accesses;
  into.l1d_misses <- into.l1d_misses + d.l1d_misses;
  into.l2_accesses <- into.l2_accesses + d.l2_accesses;
  into.l2_misses <- into.l2_misses + d.l2_misses;
  into.llc_accesses <- into.llc_accesses + d.llc_accesses;
  into.llc_misses <- into.llc_misses + d.llc_misses;
  into.coherence_misses <- into.coherence_misses + d.coherence_misses;
  into.bytes_read <- into.bytes_read + d.bytes_read;
  into.bytes_written <- into.bytes_written + d.bytes_written;
  into.s.cycles <- into.s.cycles +. d.s.cycles;
  into.s.retiring <- into.s.retiring +. d.s.retiring;
  into.s.frontend <- into.s.frontend +. d.s.frontend;
  into.s.bad_spec <- into.s.bad_spec +. d.s.bad_spec;
  into.s.backend <- into.s.backend +. d.s.backend

let cycles t = t.s.cycles

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den
let ipc t = if t.s.cycles = 0.0 then 0.0 else float_of_int t.insts /. t.s.cycles
let cpi t = if t.insts = 0 then 0.0 else t.s.cycles /. float_of_int t.insts
let branch_mpki t = if t.insts = 0 then 0.0 else 1000.0 *. ratio t.mispredicts t.insts
let branch_miss_rate t = ratio t.mispredicts t.branches
let itlb_mpki t = if t.insts = 0 then 0.0 else 1000.0 *. ratio t.itlb_misses t.insts
let dtlb_mpki t = if t.insts = 0 then 0.0 else 1000.0 *. ratio t.dtlb_misses t.insts
let l1i_miss_rate t = ratio t.l1i_misses t.l1i_accesses
let l1d_miss_rate t = ratio t.l1d_misses t.l1d_accesses
let l2_miss_rate t = ratio t.l2_misses t.l2_accesses
let llc_miss_rate t = ratio t.llc_misses t.llc_accesses

type topdown = { retiring : float; frontend : float; bad_speculation : float; backend : float }

let topdown t =
  let total = t.s.retiring +. t.s.frontend +. t.s.bad_spec +. t.s.backend in
  if total <= 0.0 then { retiring = 0.; frontend = 0.; bad_speculation = 0.; backend = 0. }
  else
    {
      retiring = t.s.retiring /. total;
      frontend = t.s.frontend /. total;
      bad_speculation = t.s.bad_spec /. total;
      backend = t.s.backend /. total;
    }

let topdown_cpi t =
  let frac = topdown t in
  let c = cpi t in
  {
    retiring = frac.retiring *. c;
    frontend = frac.frontend *. c;
    bad_speculation = frac.bad_speculation *. c;
    backend = frac.backend *. c;
  }
