(** Per-core performance counters — the simulated equivalent of the PMU
    metrics Ditto reads with Perf/VTune, plus top-down pipeline-slot
    accounting (Yasin's methodology, Fig. 2 of the paper). *)

type slots = {
  mutable cycles : float;
  mutable retiring : float;
  mutable frontend : float;
  mutable bad_spec : float;
  mutable backend : float;
}
(** The float counters, kept in an all-float record so OCaml stores them
    flat: updating one from the simulation hot loop is a raw double store
    (no box allocation, no write barrier). Mixed into the int record below
    each update would allocate. *)

type t = {
  mutable insts : int;
  mutable uops : int;
  mutable branches : int;
  mutable mispredicts : int;
  mutable btb_misses : int;
  mutable itlb_misses : int;
  mutable dtlb_misses : int;
  mutable l1i_accesses : int;
  mutable l1i_misses : int;
  mutable l1d_accesses : int;
  mutable l1d_misses : int;
  mutable l2_accesses : int;
  mutable l2_misses : int;
  mutable llc_accesses : int;
  mutable llc_misses : int;
  mutable coherence_misses : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  s : slots;  (** cycle count and top-down slot accumulators *)
}

val create : unit -> t
val reset : t -> unit

val copy : t -> t
(** Deep copy: the nested [slots] record is duplicated, never aliased. *)

val sub : t -> t -> t
(** [sub later earlier] is the counter delta between two snapshots. *)

val acc : t -> t -> unit
(** [acc into delta] accumulates [delta] into [into]. *)

val cycles : t -> float
(** [cycles t] is [t.s.cycles]. *)

(** Derived metrics, as reported in the paper's figures. *)

val ipc : t -> float
val cpi : t -> float
val branch_mpki : t -> float
val branch_miss_rate : t -> float
val itlb_mpki : t -> float
val dtlb_mpki : t -> float
val l1i_miss_rate : t -> float
val l1d_miss_rate : t -> float
val l2_miss_rate : t -> float
val llc_miss_rate : t -> float

type topdown = { retiring : float; frontend : float; bad_speculation : float; backend : float }

val topdown : t -> topdown
(** Normalised slot fractions (sums to 1 when any slots were recorded). *)

val topdown_cpi : t -> topdown
(** Breakdown scaled to CPI contributions, as in Fig. 8's stacked bars. *)
