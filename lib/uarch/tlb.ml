let page_bytes = 4096

type t = {
  l1 : Cache.t;
  stlb : Cache.t;
  stlb_penalty : int;
  walk_cycles : int;
  mutable lookups : int;
  mutable misses : int;
}

(* Reuse the set-associative tag store: one "line" per page by feeding it
   page-granular pseudo-addresses. *)
let page_key addr = addr / page_bytes * Cache.line_bytes

let create ?(l1_entries = 64) ?(stlb_entries = 1536) ?(walk_cycles = 30) () =
  {
    l1 = Cache.create ~size_bytes:(l1_entries * Cache.line_bytes) ~assoc:4 ();
    stlb = Cache.create ~size_bytes:(stlb_entries * Cache.line_bytes) ~assoc:12 ();
    stlb_penalty = 7;
    walk_cycles;
    lookups = 0;
    misses = 0;
  }

let access t addr =
  let key = page_key addr in
  t.lookups <- t.lookups + 1;
  let hit = ref false in
  Cache.access t.l1 key ~hit;
  if !hit then 0
  else begin
    Cache.access t.stlb key ~hit;
    if !hit then t.stlb_penalty
    else begin
      t.misses <- t.misses + 1;
      t.walk_cycles
    end
  end

let lookups t = t.lookups
let misses t = t.misses

let flush t =
  Cache.flush t.l1;
  Cache.flush t.stlb;
  t.lookups <- 0;
  t.misses <- 0
