(** Server platform specifications — Table 1 of the paper.

    Three heterogeneous x86 servers; all run the same ISA but differ in CPU
    generation, memory hierarchy, storage and network. The [scale] values
    below deliberately mirror Table 1 (L2 1MB on A vs 256KB on B/C, LLC
    30.25/25/8 MB, SSD on A vs HDD on B/C, 10GbE on A vs 1GbE). *)

type disk_kind = Ssd | Hdd

type t = {
  name : string;
  cpu_model : string;
  family : string;  (** Skylake / Haswell *)
  freq_ghz : float;  (** base frequency; Fig. 11 sweeps this *)
  cores : int;  (** usable physical cores (per deployment) *)
  sockets : int;
  smt : int;  (** hardware threads per core *)
  l1i_bytes : int;
  l1d_bytes : int;
  l2_bytes : int;
  llc_bytes : int;
  l1_assoc : int;
  l2_assoc : int;
  llc_assoc : int;
  lat_l1 : int;  (** load-to-use latencies, cycles *)
  lat_l2 : int;
  lat_llc : int;
  lat_mem : int;  (** DRAM, cycles at base frequency *)
  issue_width : int;
  rob_size : int;
  mispredict_penalty : int;  (** cycles *)
  btb_miss_penalty : int;
  predictor_entries : int;
  btb_entries : int;
  ram_gb : int;
  disk : disk_kind;
  net_gbps : float;
}

val a : t
(** Platform A: 2× Gold 6152 (Skylake, 22c), L2 1MB, LLC 30.25MB,
    192GB\@2666, 1TB SSD, 10GbE, 2.1GHz. *)

val b : t
(** Platform B: 2× E5-2660 v3 (Haswell, 10c), L2 256KB, LLC 25MB,
    128GB\@2400, 2TB HDD, 1GbE, 2.6GHz. *)

val c : t
(** Platform C: 1× E3-1240 v5 (Skylake, 4c), L2 256KB, LLC 8MB,
    32GB\@2133, 1TB HDD, 1GbE, 3.5GHz. *)

val all : t list

val by_name : string -> t
(** Lookup by [name] ("A" | "B" | "C"); raises [Not_found] otherwise. *)

val with_frequency : t -> float -> t
(** Frequency-scaled copy (memory latency in cycles rescales so absolute
    DRAM time is invariant), used by the Fig. 11 power-management sweep. *)

val with_cores : t -> int -> t

val fingerprint : t -> int
(** Structural hash over every field. Changing any platform parameter
    (frequency, cache geometry, core count, ...) changes the fingerprint,
    so memo keys embedding it cannot survive a platform change. Collisions
    are possible as with any hash; caches that must be exact key on the
    whole record structurally and use this only as a cheap component. *)

val table1_rows : string list list
(** Rows for re-printing Table 1. *)
