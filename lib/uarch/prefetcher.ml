type entry = { mutable last_addr : int; mutable stride : int; mutable confidence : int }

type t = { entries : entry array; mask : int; degree : int; mutable dirty : bool }

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ?(table_entries = 64) ?(degree = 2) () =
  let n = pow2_at_least (max 2 table_entries) 2 in
  {
    entries = Array.init n (fun _ -> { last_addr = -1; stride = 0; confidence = 0 });
    mask = n - 1;
    degree;
    dirty = false;
  }

let observe t ~pc ~addr fill =
  t.dirty <- true;
  let e = t.entries.((pc lsr 2) land t.mask) in
  if e.last_addr >= 0 then begin
    let stride = addr - e.last_addr in
    if stride <> 0 && stride = e.stride then begin
      if e.confidence < 3 then e.confidence <- e.confidence + 1
    end
    else begin
      e.stride <- stride;
      e.confidence <- 0
    end;
    if e.confidence >= 2 && e.stride <> 0 then
      for k = 1 to t.degree do
        fill (addr + (k * e.stride))
      done
  end;
  e.last_addr <- addr

let flush t =
  if t.dirty then begin
    Array.iter
      (fun e ->
        e.last_addr <- -1;
        e.stride <- 0;
        e.confidence <- 0)
      t.entries;
    t.dirty <- false
  end
