type replacement = Lru | Plru

let line_bytes = 64

type t = {
  replacement : replacement;
  sets : int;
  assoc : int;
  size_bytes : int;
  (* Precomputed at [create] so the per-access path never re-derives them:
     tree-PLRU only applies to power-of-two associativities >= 2, and the
     tree depth is log2(assoc). *)
  use_plru : bool;
  plru_levels : int;
  tags : int array; (* sets * assoc; -1 = invalid *)
  stamps : int array; (* LRU timestamps, parallel to [tags] *)
  plru : int array; (* per-set tree bits *)
  mutable tick : int;
  (* Set on the first state-changing operation since the last flush, so
     [flush] can skip the (large) array fills on caches a run never
     touched — most private caches of a many-core machine stay pristine. *)
  mutable dirty : bool;
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let is_pow2 n = n land (n - 1) = 0

let create ?(replacement = Lru) ~size_bytes ~assoc () =
  if assoc <= 0 then invalid_arg "Cache.create: assoc";
  let sets = pow2_at_least (max 1 (size_bytes / (line_bytes * assoc))) 1 in
  let levels = ref 1 and tmp = ref assoc in
  while !tmp > 2 do
    incr levels;
    tmp := !tmp / 2
  done;
  {
    replacement;
    sets;
    assoc;
    size_bytes;
    use_plru = replacement = Plru && is_pow2 assoc && assoc >= 2;
    plru_levels = !levels;
    tags = Array.make (sets * assoc) (-1);
    stamps = Array.make (sets * assoc) 0;
    plru = Array.make sets 0;
    tick = 0;
    dirty = false;
  }

let size_bytes t = t.size_bytes
let assoc t = t.assoc
let sets t = t.sets

(* line_bytes = 64; addresses are non-negative, so the divisions are
   logical shifts. *)
let set_of t addr = (addr lsr 6) land (t.sets - 1)
let tag_of addr = addr lsr 6

(* Indices are in range by construction ([set] is masked, [w < assoc]),
   so the way scan — the single hottest loop in the cache model — skips
   bounds checks. *)
let find_way t set tag =
  let base = set * t.assoc in
  let tags = t.tags in
  let rec go w =
    if w >= t.assoc then -1
    else if Array.unsafe_get tags (base + w) = tag then w
    else go (w + 1)
  in
  go 0

(* Tree-PLRU: follow the direction bits down a (log2 assoc)-deep tree to the
   victim leaf; touching a way repoints the bits on its path away from it. *)
let plru_touch t set way =
  let bits = ref t.plru.(set) in
  let node = ref 0 in
  for level = t.plru_levels - 1 downto 0 do
    let dir = (way lsr level) land 1 in
    (* Point away from the accessed way. *)
    if dir = 1 then bits := !bits land lnot (1 lsl !node) else bits := !bits lor (1 lsl !node);
    node := (2 * !node) + 1 + dir
  done;
  t.plru.(set) <- !bits

let plru_victim t set =
  let bits = t.plru.(set) in
  let node = ref 0 and way = ref 0 in
  for _ = 1 to t.plru_levels do
    let dir = (bits lsr !node) land 1 in
    way := (2 * !way) + dir;
    node := (2 * !node) + 1 + dir
  done;
  !way

let lru_victim t set =
  let base = set * t.assoc in
  let victim = ref 0 and oldest = ref max_int in
  for w = 0 to t.assoc - 1 do
    if Array.unsafe_get t.tags (base + w) = -1 then begin
      (* Prefer an invalid way outright. *)
      if !oldest > -1 then begin
        oldest := -1;
        victim := w
      end
    end
    else if !oldest >= 0 && Array.unsafe_get t.stamps (base + w) < !oldest then begin
      oldest := Array.unsafe_get t.stamps (base + w);
      victim := w
    end
  done;
  !victim

let touch t set way =
  t.tick <- t.tick + 1;
  Array.unsafe_set t.stamps ((set * t.assoc) + way) t.tick;
  if t.use_plru then plru_touch t set way

let access t addr ~hit =
  t.dirty <- true;
  let set = set_of t addr and tag = tag_of addr in
  let way = find_way t set tag in
  if way >= 0 then begin
    hit := true;
    touch t set way
  end
  else begin
    hit := false;
    let victim =
      if t.use_plru then begin
        let base = set * t.assoc in
        let rec first_invalid w =
          if w >= t.assoc then plru_victim t set
          else if t.tags.(base + w) = -1 then w
          else first_invalid (w + 1)
        in
        first_invalid 0
      end
      else lru_victim t set
    in
    t.tags.((set * t.assoc) + victim) <- tag;
    touch t set victim
  end

let probe t addr =
  let set = set_of t addr and tag = tag_of addr in
  find_way t set tag >= 0

let invalidate t addr =
  let set = set_of t addr and tag = tag_of addr in
  let way = find_way t set tag in
  if way >= 0 then begin
    t.dirty <- true;
    t.tags.((set * t.assoc) + way) <- -1;
    true
  end
  else false

let flush t =
  if t.dirty then begin
    Array.fill t.tags 0 (Array.length t.tags) (-1);
    Array.fill t.stamps 0 (Array.length t.stamps) 0;
    Array.fill t.plru 0 (Array.length t.plru) 0;
    t.tick <- 0;
    t.dirty <- false
  end
