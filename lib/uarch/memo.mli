(** Keyed result caches for the simulation hot path.

    Structural-key hashtables with FIFO eviction and hit/miss accounting.
    Keys are compared with full structural equality, so callers key on
    whole tuples (platform record, seed, request count, parameter
    fingerprint) without collision hazards — hash quality only affects
    lookup speed.

    Caches carry no internal locking; keep each instance domain-local
    (e.g. in [Domain.DLS]). *)

type ('k, 'v) t

type stats = { hits : int; misses : int; invalidations : int; entries : int }

val create : ?max_entries:int -> unit -> ('k, 'v) t
(** [max_entries] bounds the table (default 512); oldest insertions are
    evicted first. *)

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** Return the cached value for the key, or compute, store and return it.
    When memoization is globally disabled the thunk always runs and
    nothing is stored. *)

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** Lookup half of {!find_or_add}, for callers that must compute outside a
    lock; counts a hit on success and always misses when disabled. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Store half of {!find_or_add}; counts a miss and applies the entry cap.
    A no-op when memoization is disabled. *)

val invalidate : ('k, 'v) t -> ('k -> bool) -> int
(** Drop every entry whose key satisfies the predicate; returns the count
    dropped. Used when a knob group changes the parameters a key covers. *)

val clear : ('k, 'v) t -> unit

val stats : ('k, 'v) t -> stats

val set_enabled : bool -> unit
(** Globally enable/disable all memo caches (also settable via the
    [DITTO_MEMO=0] environment variable). Disabling turns every cache
    into a pass-through, which tests use to pin memoized results
    bit-identical to cold recomputation. *)

val enabled : unit -> bool
