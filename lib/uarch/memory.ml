(* Coherence directory for shared lines: line -> (owner core, dirty),
   packed as [owner lsl 1 lor dirty] in an open-addressed int table. The
   directory sits on the per-access hot path; a Hashtbl here cost a
   polymorphic hash, an option plus a tuple allocation per lookup and a
   bucket rewrite per replace. Keys store [line + 1] so 0 can mean empty. *)
type directory = {
  mutable dir_keys : int array;
  mutable dir_vals : int array;
  mutable dir_mask : int;
  mutable dir_count : int;
}

let dir_create n =
  { dir_keys = Array.make n 0; dir_vals = Array.make n 0; dir_mask = n - 1; dir_count = 0 }

let[@inline] dir_hash line mask =
  let h = line * 0x9E3779B1 in
  (h lxor (h lsr 16)) land mask

let rec dir_slot keys mask key i =
  let k = Array.unsafe_get keys i in
  if k = 0 || k = key then i else dir_slot keys mask key ((i + 1) land mask)

(* Packed (owner, dirty) for [line], or -1 if the line has no owner. *)
let dir_find d line =
  let key = line + 1 in
  let i = dir_slot d.dir_keys d.dir_mask key (dir_hash line d.dir_mask) in
  if Array.unsafe_get d.dir_keys i = 0 then -1 else Array.unsafe_get d.dir_vals i

let dir_resize d =
  let old_keys = d.dir_keys and old_vals = d.dir_vals in
  let n = (d.dir_mask + 1) * 2 in
  d.dir_keys <- Array.make n 0;
  d.dir_vals <- Array.make n 0;
  d.dir_mask <- n - 1;
  Array.iteri
    (fun i k ->
      if k <> 0 then begin
        let j = dir_slot d.dir_keys d.dir_mask k (dir_hash (k - 1) d.dir_mask) in
        d.dir_keys.(j) <- k;
        d.dir_vals.(j) <- old_vals.(i)
      end)
    old_keys

let dir_replace d line v =
  let key = line + 1 in
  let i = dir_slot d.dir_keys d.dir_mask key (dir_hash line d.dir_mask) in
  if Array.unsafe_get d.dir_keys i = 0 then begin
    d.dir_keys.(i) <- key;
    d.dir_vals.(i) <- v;
    d.dir_count <- d.dir_count + 1;
    if d.dir_count * 2 > d.dir_mask then dir_resize d
  end
  else d.dir_vals.(i) <- v

let dir_reset d =
  if d.dir_count > 0 then begin
    Array.fill d.dir_keys 0 (Array.length d.dir_keys) 0;
    d.dir_count <- 0
  end

type t = {
  plat : Platform.t;
  n : int;
  l1i : Cache.t array;
  l1d : Cache.t array;
  l2 : Cache.t array;
  llc : Cache.t;
  prefetchers : Prefetcher.t array;
  itlbs : Tlb.t array;
  dtlbs : Tlb.t array;
  ctrs : Counters.t array;
  directory : directory;
  hit_scratch : bool ref;
  (* Per-core prefetch-fill callbacks, built once at [create] so
     [Prefetcher.observe] on an L1d miss does not allocate a closure. *)
  mutable prefetch_cb : (int -> unit) array;
}

let line_of addr = addr land lnot (Cache.line_bytes - 1)

let prefetch_fill t core addr =
  if not (Cache.probe t.l2.(core) addr) then begin
    Cache.access t.llc addr ~hit:t.hit_scratch;
    Cache.access t.l2.(core) addr ~hit:t.hit_scratch
  end

let create (plat : Platform.t) ~ncores =
  let mk_l1 bytes = Cache.create ~size_bytes:bytes ~assoc:plat.Platform.l1_assoc () in
  let t =
    {
      plat;
      n = ncores;
      l1i = Array.init ncores (fun _ -> mk_l1 plat.Platform.l1i_bytes);
      l1d = Array.init ncores (fun _ -> mk_l1 plat.Platform.l1d_bytes);
      l2 =
        Array.init ncores (fun _ ->
            Cache.create ~size_bytes:plat.Platform.l2_bytes ~assoc:plat.Platform.l2_assoc ());
      llc =
        Cache.create ~replacement:Cache.Plru ~size_bytes:plat.Platform.llc_bytes
          ~assoc:plat.Platform.llc_assoc ();
      prefetchers = Array.init ncores (fun _ -> Prefetcher.create ());
      itlbs = Array.init ncores (fun _ -> Tlb.create ~l1_entries:128 ());
      dtlbs = Array.init ncores (fun _ -> Tlb.create ());
      ctrs = Array.init ncores (fun _ -> Counters.create ());
      directory = dir_create 4096;
      hit_scratch = ref false;
      prefetch_cb = [||];
    }
  in
  t.prefetch_cb <- Array.init ncores (fun c -> fun addr -> prefetch_fill t c addr);
  t

let ncores t = t.n
let platform t = t.plat
let counters t core = t.ctrs.(core)

let set_counter t core ctr = t.ctrs.(core) <- ctr

(* Invalidate a shared line in every other core's private caches (the
   directory does not track exact sharers; core counts are small). *)
let invalidate_others t core addr =
  for c = 0 to t.n - 1 do
    if c <> core then begin
      ignore (Cache.invalidate t.l1d.(c) addr);
      ignore (Cache.invalidate t.l2.(c) addr)
    end
  done

let access_data t ~core ~addr ~write ~shared =
  let p = t.plat in
  let ctr = t.ctrs.(core) in
  let line = line_of addr in
  (* Coherence: a shared line dirty in another core forces a miss in the
     requester's private caches (the copy is stale). *)
  let coherence_steal =
    shared
    &&
    let v = dir_find t.directory line in
    v >= 0 && v lsr 1 <> core && (v land 1 = 1 || write)
  in
  if coherence_steal then begin
    ignore (Cache.invalidate t.l1d.(core) line);
    ignore (Cache.invalidate t.l2.(core) line)
  end;
  ctr.Counters.l1d_accesses <- ctr.Counters.l1d_accesses + 1;
  if write then ctr.Counters.bytes_written <- ctr.Counters.bytes_written + 8
  else ctr.Counters.bytes_read <- ctr.Counters.bytes_read + 8;
  let tlb_lat = Tlb.access t.dtlbs.(core) addr in
  if tlb_lat >= 30 then ctr.Counters.dtlb_misses <- ctr.Counters.dtlb_misses + 1;
  let hit = t.hit_scratch in
  Cache.access t.l1d.(core) line ~hit;
  let latency =
    if !hit then p.Platform.lat_l1 + tlb_lat
    else begin
      ctr.Counters.l1d_misses <- ctr.Counters.l1d_misses + 1;
      ctr.Counters.l2_accesses <- ctr.Counters.l2_accesses + 1;
      Prefetcher.observe t.prefetchers.(core) ~pc:addr ~addr:line t.prefetch_cb.(core);
      Cache.access t.l2.(core) line ~hit;
      if !hit then p.Platform.lat_l2 + tlb_lat
      else begin
        ctr.Counters.l2_misses <- ctr.Counters.l2_misses + 1;
        ctr.Counters.llc_accesses <- ctr.Counters.llc_accesses + 1;
        Cache.access t.llc line ~hit;
        if !hit then
          if coherence_steal then begin
            ctr.Counters.coherence_misses <- ctr.Counters.coherence_misses + 1;
            p.Platform.lat_llc + 12 + tlb_lat (* cross-core snoop/transfer *)
          end
          else p.Platform.lat_llc + tlb_lat
        else begin
          ctr.Counters.llc_misses <- ctr.Counters.llc_misses + 1;
          p.Platform.lat_mem + tlb_lat
        end
      end
    end
  in
  (* Update directory ownership for shared lines. *)
  if shared then begin
    if write then begin
      let v = dir_find t.directory line in
      if v >= 0 && v lsr 1 <> core then invalidate_others t core line;
      dir_replace t.directory line ((core lsl 1) lor 1)
    end
    else begin
      let v = dir_find t.directory line in
      if v < 0 then dir_replace t.directory line (core lsl 1)
      else if v land 1 = 1 && v lsr 1 <> core then
        (* Downgrade: the reader now has a clean copy. *)
        dir_replace t.directory line (core lsl 1)
    end
  end;
  latency

let access_inst t ~core ~addr =
  let p = t.plat in
  let ctr = t.ctrs.(core) in
  let line = line_of addr in
  ctr.Counters.l1i_accesses <- ctr.Counters.l1i_accesses + 1;
  let tlb_lat = Tlb.access t.itlbs.(core) addr in
  if tlb_lat >= 30 then ctr.Counters.itlb_misses <- ctr.Counters.itlb_misses + 1;
  let hit = t.hit_scratch in
  Cache.access t.l1i.(core) line ~hit;
  if !hit then tlb_lat
  else begin
    ctr.Counters.l1i_misses <- ctr.Counters.l1i_misses + 1;
    ctr.Counters.l2_accesses <- ctr.Counters.l2_accesses + 1;
    Cache.access t.l2.(core) line ~hit;
    if !hit then p.Platform.lat_l2 - p.Platform.lat_l1 + tlb_lat
    else begin
      ctr.Counters.l2_misses <- ctr.Counters.l2_misses + 1;
      ctr.Counters.llc_accesses <- ctr.Counters.llc_accesses + 1;
      Cache.access t.llc line ~hit;
      if !hit then p.Platform.lat_llc - p.Platform.lat_l1 + tlb_lat
      else begin
        ctr.Counters.llc_misses <- ctr.Counters.llc_misses + 1;
        p.Platform.lat_mem - p.Platform.lat_l1 + tlb_lat
      end
    end
  end

let flush t =
  Array.iter Cache.flush t.l1i;
  Array.iter Cache.flush t.l1d;
  Array.iter Cache.flush t.l2;
  Cache.flush t.llc;
  Array.iter Prefetcher.flush t.prefetchers;
  Array.iter Tlb.flush t.itlbs;
  Array.iter Tlb.flush t.dtlbs;
  dir_reset t.directory

let reset t =
  flush t;
  (* Fresh counter records, exactly like [create]: the previous run's
     results may still alias the old ones. *)
  for i = 0 to t.n - 1 do
    t.ctrs.(i) <- Counters.create ()
  done;
  t.hit_scratch := false
