type disk_kind = Ssd | Hdd

type t = {
  name : string;
  cpu_model : string;
  family : string;
  freq_ghz : float;
  cores : int;
  sockets : int;
  smt : int;
  l1i_bytes : int;
  l1d_bytes : int;
  l2_bytes : int;
  llc_bytes : int;
  l1_assoc : int;
  l2_assoc : int;
  llc_assoc : int;
  lat_l1 : int;
  lat_l2 : int;
  lat_llc : int;
  lat_mem : int;
  issue_width : int;
  rob_size : int;
  mispredict_penalty : int;
  btb_miss_penalty : int;
  predictor_entries : int;
  btb_entries : int;
  ram_gb : int;
  disk : disk_kind;
  net_gbps : float;
}

let kb n = n * 1024
let mb n = n * 1024 * 1024

let a =
  {
    name = "A";
    cpu_model = "Gold 6152";
    family = "Skylake";
    freq_ghz = 2.10;
    cores = 22;
    sockets = 2;
    smt = 2;
    l1i_bytes = kb 32;
    l1d_bytes = kb 32;
    l2_bytes = mb 1;
    llc_bytes = mb 30 + kb 256;
    l1_assoc = 8;
    l2_assoc = 16;
    llc_assoc = 11;
    lat_l1 = 4;
    lat_l2 = 14;
    lat_llc = 44;
    lat_mem = 190;
    issue_width = 4;
    rob_size = 224;
    mispredict_penalty = 16;
    btb_miss_penalty = 8;
    predictor_entries = 16384;
    btb_entries = 4096;
    ram_gb = 192;
    disk = Ssd;
    net_gbps = 10.0;
  }

let b =
  {
    name = "B";
    cpu_model = "E5-2660 v3";
    family = "Haswell";
    freq_ghz = 2.60;
    cores = 10;
    sockets = 2;
    smt = 2;
    l1i_bytes = kb 32;
    l1d_bytes = kb 32;
    l2_bytes = kb 256;
    llc_bytes = mb 25;
    l1_assoc = 8;
    l2_assoc = 8;
    llc_assoc = 20;
    lat_l1 = 4;
    lat_l2 = 12;
    lat_llc = 40;
    lat_mem = 230;
    issue_width = 3;
    rob_size = 192;
    mispredict_penalty = 18;
    btb_miss_penalty = 9;
    predictor_entries = 8192;
    btb_entries = 2048;
    ram_gb = 128;
    disk = Hdd;
    net_gbps = 1.0;
  }

let c =
  {
    name = "C";
    cpu_model = "E3-1240 v5";
    family = "Skylake";
    freq_ghz = 3.50;
    cores = 4;
    sockets = 1;
    smt = 2;
    l1i_bytes = kb 32;
    l1d_bytes = kb 32;
    l2_bytes = kb 256;
    llc_bytes = mb 8;
    l1_assoc = 8;
    l2_assoc = 4;
    llc_assoc = 16;
    lat_l1 = 4;
    lat_l2 = 12;
    lat_llc = 38;
    lat_mem = 280;
    issue_width = 4;
    rob_size = 224;
    mispredict_penalty = 16;
    btb_miss_penalty = 8;
    predictor_entries = 16384;
    btb_entries = 4096;
    ram_gb = 32;
    disk = Hdd;
    net_gbps = 1.0;
  }

let all = [ a; b; c ]

let by_name n =
  match List.find_opt (fun p -> p.name = n) all with Some p -> p | None -> raise Not_found

let with_frequency p freq =
  let ratio = freq /. p.freq_ghz in
  {
    p with
    freq_ghz = freq;
    lat_mem = max 1 (int_of_float (Float.round (float_of_int p.lat_mem *. ratio)));
  }

let with_cores p cores = { p with cores }

(* Structural hash over every field (the record is all scalars and
   strings). A cheap component for memo keys and reports; correctness-
   critical caches key on the full record structurally and only use this
   for display/bucketing. *)
let fingerprint (p : t) = Hashtbl.hash_param 64 256 p

let disk_to_string = function Ssd -> "SSD" | Hdd -> "HDD"

let table1_rows =
  let row label f = label :: List.map f all in
  [
    row "CPU model" (fun p -> p.cpu_model);
    row "Base Frequency" (fun p -> Printf.sprintf "%.2fGHz" p.freq_ghz);
    row "CPU cores" (fun p -> string_of_int p.cores);
    row "CPU family" (fun p -> p.family);
    row "Sockets" (fun p -> string_of_int p.sockets);
    row "L1i/L1d" (fun p -> Printf.sprintf "%dKB/%dKB" (p.l1i_bytes / 1024) (p.l1d_bytes / 1024));
    row "L2" (fun p ->
        if p.l2_bytes >= 1024 * 1024 then Printf.sprintf "%dMB" (p.l2_bytes / 1024 / 1024)
        else Printf.sprintf "%dKB" (p.l2_bytes / 1024));
    row "LLC" (fun p -> Printf.sprintf "%.2fMB" (float_of_int p.llc_bytes /. 1024. /. 1024.));
    row "RAM" (fun p -> Printf.sprintf "%dGB" p.ram_gb);
    row "Disk" (fun p -> disk_to_string p.disk);
    row "Network" (fun p -> Printf.sprintf "%gGbe" p.net_gbps);
  ]
