module Ts = Ditto_obs.Timeseries
module Table = Ditto_util.Table

type window_row = {
  w_index : int;
  w_start : float;
  w_actual_qps : float;
  w_clone_qps : float;
  w_actual_p95 : float;
  w_clone_p95 : float;
  w_err_pct : float;
}

type fault_row = {
  f_at : float;
  f_label : string;
  f_reconverged : bool;
  f_reconverge_seconds : float;
}

type t = {
  app : string;
  plan : string option;
  window_seconds : float;
  threshold_pct : float;
  rows : window_row list;
  worst_window_err_pct : float;
  mean_window_err_pct : float;
  fault_at : float option;
  reconverged : bool;
  reconverge_seconds : float;
  faults : fault_row list;
  tier_worst : (string * float) list;
}

(* Same relative-error convention as Scorecard: an actual of zero scores 0
   when the clone agrees and 100 when it does not, so crashed windows
   (both sides serving nothing) count as perfect agreement instead of a
   division by zero. *)
let err_pct ~actual ~synthetic =
  if actual = 0.0 then if synthetic = 0.0 then 0.0 else 100.0
  else 100.0 *. Float.abs (synthetic -. actual) /. actual

let of_timelines ~app ?plan ?(threshold_pct = 25.0) ~actual ~clone () =
  let n = Ts.windows actual in
  if Ts.windows clone <> n || Ts.window_seconds clone <> Ts.window_seconds actual then
    invalid_arg "Timeline.of_timelines: window grids differ";
  let w = Ts.window_seconds actual in
  let rows =
    List.init n (fun i ->
        let a = Ts.row actual ~tier:Ts.client_tier i in
        let c = Ts.row clone ~tier:Ts.client_tier i in
        let a_qps = float_of_int a.Ts.r_completed /. w in
        let c_qps = float_of_int c.Ts.r_completed /. w in
        let qps_err = err_pct ~actual:a_qps ~synthetic:c_qps in
        let p95_err = err_pct ~actual:a.Ts.r_p95 ~synthetic:c.Ts.r_p95 in
        {
          w_index = i;
          w_start = float_of_int i *. w;
          w_actual_qps = a_qps;
          w_clone_qps = c_qps;
          w_actual_p95 = a.Ts.r_p95;
          w_clone_p95 = c.Ts.r_p95;
          w_err_pct = Float.max qps_err p95_err;
        })
  in
  let errs = List.map (fun r -> r.w_err_pct) rows in
  let worst = List.fold_left Float.max 0.0 errs in
  let mean =
    if errs = [] then 0.0 else List.fold_left ( +. ) 0.0 errs /. float_of_int (List.length errs)
  in
  let marks =
    (* "scale:" marks record autoscaler actuations — responses, not
       disturbances — so they never open a reconvergence measurement.
       Fault marks and "surge:" (flash-crowd onset) marks do. *)
    Ts.marks actual
    |> List.filter (fun (_, label) -> not (String.length label >= 6 && String.sub label 0 6 = "scale:"))
    |> List.map (fun (at, label) -> (at -. Ts.start_time actual, label))
    |> List.sort compare
  in
  let fault_at = match marks with [] -> None | (f, _) :: _ -> Some f in
  let arr = Array.of_list rows in
  let reconverge_from f =
    (* first window whose span contains (or follows) the fault *)
    let wf = max 0 (min (n - 1) (int_of_float (f /. w))) in
    let compliant i = arr.(i).w_err_pct <= threshold_pct in
    let rec find j =
      if j >= n then None
      else if compliant j && (j + 1 >= n || compliant (j + 1)) then Some j
      else find (j + 1)
    in
    (* reconvergence = fault time -> end of the first window opening a
       compliant streak; always >= the remainder of the fault window,
       hence strictly positive *)
    match find wf with
    | Some j -> (true, (float_of_int (j + 1) *. w) -. f)
    | None -> (false, (float_of_int n *. w) -. f)
  in
  (* One row per fault marker: multi-event plans (flaky-link's repeated
     down/up toggles) get a reconvergence time per event, not just for
     the first. *)
  let faults =
    List.map
      (fun (f, label) ->
        let ok, secs = reconverge_from f in
        { f_at = f; f_label = label; f_reconverged = ok; f_reconverge_seconds = secs })
      marks
  in
  let reconverged, reconverge_seconds =
    match faults with
    | [] -> (true, 0.0)
    | f :: _ -> (f.f_reconverged, f.f_reconverge_seconds)
  in
  let tier_worst =
    List.filter_map
      (fun tier ->
        if tier = Ts.client_tier then None
        else
          let worst = ref 0.0 in
          for i = 0 to n - 1 do
            let a = float_of_int (Ts.row actual ~tier i).Ts.r_completed /. w in
            let c = float_of_int (Ts.row clone ~tier i).Ts.r_completed /. w in
            worst := Float.max !worst (err_pct ~actual:a ~synthetic:c)
          done;
          Some (tier, !worst))
      (Ts.tiers actual)
  in
  {
    app;
    plan;
    window_seconds = w;
    threshold_pct;
    rows;
    worst_window_err_pct = worst;
    mean_window_err_pct = mean;
    fault_at;
    reconverged;
    reconverge_seconds;
    faults;
    tier_worst;
  }

let print t =
  let fault_windows =
    List.map (fun f -> int_of_float (f.f_at /. t.window_seconds)) t.faults
  in
  let rows =
    List.map
      (fun r ->
        [
          Printf.sprintf "%s%.0f ms"
            (if List.mem r.w_index fault_windows then "*" else "")
            (r.w_start *. 1e3);
          Table.fmt_float r.w_actual_qps;
          Table.fmt_float r.w_clone_qps;
          Printf.sprintf "%.3f" (r.w_actual_p95 *. 1e3);
          Printf.sprintf "%.3f" (r.w_clone_p95 *. 1e3);
          Table.fmt_pct r.w_err_pct;
        ])
      t.rows
  in
  let title =
    Printf.sprintf "transient fidelity: %s%s (%d windows x %.1f ms)" t.app
      (match t.plan with None -> "" | Some p -> " under " ^ p)
      (List.length t.rows) (t.window_seconds *. 1e3)
  in
  Table.print ~title
    ~header:[ "window"; "qps actual"; "qps clone"; "p95 actual (ms)"; "p95 clone (ms)"; "err" ]
    rows;
  List.iter
    (fun f ->
      Printf.printf "  fault %-18s at %.0f ms (window %d, flagged *): %s after %.0f ms\n"
        f.f_label (f.f_at *. 1e3)
        (int_of_float (f.f_at /. t.window_seconds))
        (if f.f_reconverged then "reconverged" else "NOT reconverged by run end")
        (f.f_reconverge_seconds *. 1e3))
    t.faults;
  Printf.printf "  worst window %.1f%%, mean %.1f%% (threshold %.0f%%)\n" t.worst_window_err_pct
    t.mean_window_err_pct t.threshold_pct;
  List.iter
    (fun (tier, e) -> Printf.printf "  tier %-14s worst window throughput err %.1f%%\n" tier e)
    t.tier_worst

let flat t =
  let plan = Option.value ~default:"steady" t.plan in
  let key m = Printf.sprintf "%s/%s/%s" t.app plan m in
  let per_fault =
    (* Multi-event plans gate each marker's reconvergence; a single-fault
       plan's marker is already the reconverge_seconds key above. *)
    if List.length t.faults <= 1 then []
    else
      List.mapi
        (fun i f ->
          (key (Printf.sprintf "fault%d/reconverge_seconds" i), f.f_reconverge_seconds))
        t.faults
  in
  [
    (key "worst_window_err_pct", t.worst_window_err_pct);
    (key "mean_window_err_pct", t.mean_window_err_pct);
    (key "reconverge_seconds", t.reconverge_seconds);
  ]
  @ per_fault
