module Ts = Ditto_obs.Timeseries
module Table = Ditto_util.Table

type window_row = {
  w_index : int;
  w_start : float;
  w_actual_qps : float;
  w_clone_qps : float;
  w_actual_p95 : float;
  w_clone_p95 : float;
  w_err_pct : float;
}

type t = {
  app : string;
  plan : string option;
  window_seconds : float;
  threshold_pct : float;
  rows : window_row list;
  worst_window_err_pct : float;
  mean_window_err_pct : float;
  fault_at : float option;
  reconverged : bool;
  reconverge_seconds : float;
  tier_worst : (string * float) list;
}

(* Same relative-error convention as Scorecard: an actual of zero scores 0
   when the clone agrees and 100 when it does not, so crashed windows
   (both sides serving nothing) count as perfect agreement instead of a
   division by zero. *)
let err_pct ~actual ~synthetic =
  if actual = 0.0 then if synthetic = 0.0 then 0.0 else 100.0
  else 100.0 *. Float.abs (synthetic -. actual) /. actual

let of_timelines ~app ?plan ?(threshold_pct = 25.0) ~actual ~clone () =
  let n = Ts.windows actual in
  if Ts.windows clone <> n || Ts.window_seconds clone <> Ts.window_seconds actual then
    invalid_arg "Timeline.of_timelines: window grids differ";
  let w = Ts.window_seconds actual in
  let rows =
    List.init n (fun i ->
        let a = Ts.row actual ~tier:Ts.client_tier i in
        let c = Ts.row clone ~tier:Ts.client_tier i in
        let a_qps = float_of_int a.Ts.r_completed /. w in
        let c_qps = float_of_int c.Ts.r_completed /. w in
        let qps_err = err_pct ~actual:a_qps ~synthetic:c_qps in
        let p95_err = err_pct ~actual:a.Ts.r_p95 ~synthetic:c.Ts.r_p95 in
        {
          w_index = i;
          w_start = float_of_int i *. w;
          w_actual_qps = a_qps;
          w_clone_qps = c_qps;
          w_actual_p95 = a.Ts.r_p95;
          w_clone_p95 = c.Ts.r_p95;
          w_err_pct = Float.max qps_err p95_err;
        })
  in
  let errs = List.map (fun r -> r.w_err_pct) rows in
  let worst = List.fold_left Float.max 0.0 errs in
  let mean =
    if errs = [] then 0.0 else List.fold_left ( +. ) 0.0 errs /. float_of_int (List.length errs)
  in
  let fault_at =
    match Ts.marks actual with
    | [] -> None
    | (at, _) :: rest ->
        let first = List.fold_left (fun acc (a, _) -> Float.min acc a) at rest in
        Some (first -. Ts.start_time actual)
  in
  let arr = Array.of_list rows in
  let reconverged, reconverge_seconds =
    match fault_at with
    | None -> (true, 0.0)
    | Some f ->
        (* first window whose span contains (or follows) the fault *)
        let wf = max 0 (min (n - 1) (int_of_float (f /. w))) in
        let compliant i = arr.(i).w_err_pct <= threshold_pct in
        let rec find j =
          if j >= n then None
          else if compliant j && (j + 1 >= n || compliant (j + 1)) then Some j
          else find (j + 1)
        in
        (* reconvergence = fault time -> end of the first window opening a
           compliant streak; always >= the remainder of the fault window,
           hence strictly positive *)
        (match find wf with
        | Some j -> (true, (float_of_int (j + 1) *. w) -. f)
        | None -> (false, (float_of_int n *. w) -. f))
  in
  let tier_worst =
    List.filter_map
      (fun tier ->
        if tier = Ts.client_tier then None
        else
          let worst = ref 0.0 in
          for i = 0 to n - 1 do
            let a = float_of_int (Ts.row actual ~tier i).Ts.r_completed /. w in
            let c = float_of_int (Ts.row clone ~tier i).Ts.r_completed /. w in
            worst := Float.max !worst (err_pct ~actual:a ~synthetic:c)
          done;
          Some (tier, !worst))
      (Ts.tiers actual)
  in
  {
    app;
    plan;
    window_seconds = w;
    threshold_pct;
    rows;
    worst_window_err_pct = worst;
    mean_window_err_pct = mean;
    fault_at;
    reconverged;
    reconverge_seconds;
    tier_worst;
  }

let print t =
  let fault_window =
    match t.fault_at with
    | None -> -1
    | Some f -> int_of_float (f /. t.window_seconds)
  in
  let rows =
    List.map
      (fun r ->
        [
          Printf.sprintf "%s%.0f ms" (if r.w_index = fault_window then "*" else "") (r.w_start *. 1e3);
          Table.fmt_float r.w_actual_qps;
          Table.fmt_float r.w_clone_qps;
          Printf.sprintf "%.3f" (r.w_actual_p95 *. 1e3);
          Printf.sprintf "%.3f" (r.w_clone_p95 *. 1e3);
          Table.fmt_pct r.w_err_pct;
        ])
      t.rows
  in
  let title =
    Printf.sprintf "transient fidelity: %s%s (%d windows x %.1f ms)" t.app
      (match t.plan with None -> "" | Some p -> " under " ^ p)
      (List.length t.rows) (t.window_seconds *. 1e3)
  in
  Table.print ~title
    ~header:[ "window"; "qps actual"; "qps clone"; "p95 actual (ms)"; "p95 clone (ms)"; "err" ]
    rows;
  (match t.fault_at with
  | None -> ()
  | Some f ->
      Printf.printf "  fault at %.0f ms (window %d, flagged *): %s after %.0f ms\n" (f *. 1e3)
        fault_window
        (if t.reconverged then "reconverged" else "NOT reconverged by run end")
        (t.reconverge_seconds *. 1e3));
  Printf.printf "  worst window %.1f%%, mean %.1f%% (threshold %.0f%%)\n" t.worst_window_err_pct
    t.mean_window_err_pct t.threshold_pct;
  List.iter
    (fun (tier, e) -> Printf.printf "  tier %-14s worst window throughput err %.1f%%\n" tier e)
    t.tier_worst

let flat t =
  let plan = Option.value ~default:"steady" t.plan in
  let key m = Printf.sprintf "%s/%s/%s" t.app plan m in
  [
    (key "worst_window_err_pct", t.worst_window_err_pct);
    (key "mean_window_err_pct", t.mean_window_err_pct);
    (key "reconverge_seconds", t.reconverge_seconds);
  ]
