module Profiler = Ditto_obs.Profiler
module Table = Ditto_util.Table

let fold samples =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (s : Profiler.sample) ->
      let key = String.concat ";" s.Profiler.stack in
      let cur = Option.value ~default:0.0 (Hashtbl.find_opt tbl key) in
      Hashtbl.replace tbl key (cur +. s.Profiler.seconds))
    samples;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (ka, a) (kb, b) ->
         match compare b a with 0 -> compare ka kb | c -> c)

let write_collapsed ~path samples =
  let oc = open_out path in
  let written =
    List.fold_left
      (fun n (stack, seconds) ->
        let us = int_of_float ((seconds *. 1e6) +. 0.5) in
        if us > 0 then begin
          Printf.fprintf oc "%s %d\n" stack us;
          n + 1
        end
        else n)
      0 (fold samples)
  in
  close_out oc;
  written

let top_rows ~n samples =
  let folded = fold samples in
  let total = List.fold_left (fun a (_, s) -> a +. s) 0.0 folded in
  let counts = Hashtbl.create 64 in
  List.iter
    (fun (s : Profiler.sample) ->
      let key = String.concat ";" s.Profiler.stack in
      let cur = Option.value ~default:0 (Hashtbl.find_opt counts key) in
      Hashtbl.replace counts key (cur + s.Profiler.samples))
    samples;
  List.filteri (fun i _ -> i < n) folded
  |> List.map (fun (stack, seconds) ->
         [
           stack;
           string_of_int (Option.value ~default:0 (Hashtbl.find_opt counts stack));
           Printf.sprintf "%.3f" (1e3 *. seconds);
           (if total > 0.0 then Table.fmt_pct (100.0 *. seconds /. total) else "-");
         ])

let print_top ~n samples =
  Table.print ~title:(Printf.sprintf "Top %d stacks by attributed time" n)
    ~header:[ "stack"; "samples"; "ms"; "share" ]
    (top_rows ~n samples)
