module J = Ditto_util.Jsonx

let schema_version = 9

(* Per-experiment scheduling telemetry (v5): how long the stage took, how
   many domains the pool offered it, and what fraction of (domains x wall)
   was spent executing tasks. *)
type experiment = {
  exp_name : string;
  exp_seconds : float;
  exp_domains : int;
  exp_parallel_efficiency : float;
}

(* v6 additions: the engine's process-wide event-heap high-water mark (the
   synth scaling work pins DES memory behaviour) and each cloned app's
   tier count, so wide-graph runs are self-describing. v7 adds the flat
   transient-fidelity keys from the windowed telemetry layer
   (timeline/<app>/<plan>/{worst_window_err_pct,mean_window_err_pct,
   reconverge_seconds}). v8 adds the flat critical-path divergence keys
   from the request-tracing layer
   (critpath/<app>/<plan>/<tier>/<segment>/share_err_pp plus per-app
   worst/mean summaries). v9 adds the flat overload-fidelity keys from
   surge runs (surge/<app>/<profile>/{worst_window_err_pct,
   mean_window_err_pct,reconverge_seconds,shed_fraction_err_pp,
   worst_shed_window_err_pp,replica_traj_err_pp,saturation_onset_err_s}). *)
type input = {
  domains : int;
  total_seconds : float;
  experiments : experiment list;
  clone_seconds : (string * float) list;
  mean_error_pct : (string * float) list;
  tuning : (string * J.t) list;
  metrics : (string * float) list;
  scorecards : Scorecard.t list;
  chaos : (string * float) list;
  timeline : (string * float) list;
  critpath : (string * float) list;
  surge : (string * float) list;
  peak_heap_events : int;
  tier_counts : (string * int) list;
}

let num_obj kvs = J.Obj (List.map (fun (k, v) -> (k, J.Num v)) kvs)

let assemble i =
  J.Obj
    [
      ("schema_version", J.int schema_version);
      ("domains", J.int i.domains);
      ("total_seconds", J.Num i.total_seconds);
      ( "experiments",
        J.List
          (List.map
             (fun e ->
               J.Obj
                 [
                   ("name", J.Str e.exp_name);
                   ("seconds", J.Num e.exp_seconds);
                   ("domains", J.int e.exp_domains);
                   ("parallel_efficiency", J.Num e.exp_parallel_efficiency);
                 ])
             i.experiments) );
      ("clone_seconds", num_obj i.clone_seconds);
      ("mean_error_pct", num_obj i.mean_error_pct);
      ("tuning", J.Obj i.tuning);
      ("metrics", num_obj i.metrics);
      ( "scorecards",
        J.Obj (List.map (fun (s : Scorecard.t) -> (s.Scorecard.app, Scorecard.to_json s)) i.scorecards)
      );
      ("chaos", num_obj i.chaos);
      ("timeline", num_obj i.timeline);
      ("critpath", num_obj i.critpath);
      ("surge", num_obj i.surge);
      ("engine", J.Obj [ ("peak_heap_events", J.int i.peak_heap_events) ]);
      ("tier_counts", J.Obj (List.map (fun (k, v) -> (k, J.int v)) i.tier_counts));
    ]

(* Shape checking: a tiny combinator layer over Jsonx keeps the error
   message pointed at the offending path. *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field path json name shape =
  match J.member name json with
  | J.Null -> Error (Printf.sprintf "%s.%s: missing" path name)
  | v -> shape (path ^ "." ^ name) v

let num path = function J.Num _ -> Ok () | _ -> Error (path ^ ": expected number")
let str path = function J.Str _ -> Ok () | _ -> Error (path ^ ": expected string")
let bool path = function J.Bool _ -> Ok () | _ -> Error (path ^ ": expected bool")

let obj_of shape path = function
  | J.Obj kvs ->
      List.fold_left
        (fun acc (k, v) ->
          let* () = acc in
          shape (path ^ "." ^ k) v)
        (Ok ()) kvs
  | _ -> Error (path ^ ": expected object")

let list_of shape path = function
  | J.List vs ->
      List.fold_left
        (fun (acc, i) v ->
          (( let* () = acc in
             shape (Printf.sprintf "%s[%d]" path i) v ),
            i + 1))
        (Ok (), 0) vs
      |> fst
  | _ -> Error (path ^ ": expected list")

let any _ _ = Ok ()

let experiment path v =
  let* () = field path v "name" str in
  let* () = field path v "seconds" num in
  let* () = field path v "domains" num in
  field path v "parallel_efficiency" num

let scorecard_row path v =
  let* () = field path v "tier" str in
  let* () = field path v "metric" str in
  let* () = field path v "actual" num in
  let* () = field path v "synthetic" num in
  let* () = field path v "err_pct" num in
  let* () = field path v "pass" bool in
  match J.member "knob_group" v with
  | J.Null | J.Str _ -> Ok ()
  | _ -> Error (path ^ ".knob_group: expected string or null")

let scorecard path v =
  let* () = field path v "app" str in
  let* () = field path v "label" str in
  let* () = field path v "target_pct" num in
  let* () = field path v "passed" bool in
  let* () = field path v "rows" (list_of scorecard_row) in
  field path v "attribution" (obj_of num)

let validate json =
  let path = "$" in
  let* () =
    match J.member "schema_version" json with
    | J.Num v when int_of_float v = schema_version -> Ok ()
    | J.Num v -> Error (Printf.sprintf "$.schema_version: expected %d, got %g" schema_version v)
    | _ -> Error "$.schema_version: missing or not a number"
  in
  let* () = field path json "domains" num in
  let* () = field path json "total_seconds" num in
  let* () = field path json "experiments" (list_of experiment) in
  let* () = field path json "clone_seconds" (obj_of num) in
  let* () = field path json "mean_error_pct" (obj_of num) in
  let* () = field path json "tuning" (obj_of any) in
  let* () = field path json "metrics" (obj_of num) in
  let* () = field path json "scorecards" (obj_of scorecard) in
  let* () = field path json "chaos" (obj_of num) in
  let* () = field path json "timeline" (obj_of num) in
  let* () = field path json "critpath" (obj_of num) in
  let* () = field path json "surge" (obj_of num) in
  let* () =
    field path json "engine" (fun path v -> field path v "peak_heap_events" num)
  in
  field path json "tier_counts" (obj_of num)
