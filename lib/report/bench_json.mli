(** Schema and assembly of the [bench --json] document.

    Schema version 3 added the embedded clone-accuracy scorecards (keyed
    by app under ["scorecards"]); version 4 adds the flat ["chaos"] section
    (fidelity-under-failure metrics keyed ["<app>/<plan>/<metric>"]);
    version 5 turns each ["experiments"] entry into an object carrying
    scheduling telemetry ([domains], [parallel_efficiency]) alongside its
    wall seconds; version 6 adds the ["engine"] section (the process-wide
    event-heap high-water mark) and the ["tier_counts"] object (per cloned
    app), so wide synthetic-graph runs are self-describing; version 7 adds
    the flat ["timeline"] section (transient-fidelity metrics from the
    windowed telemetry layer, keyed ["<app>/<plan>/<metric>"]); version 8
    adds the flat ["critpath"] section (critical-path divergence metrics
    from the request-tracing layer, keyed
    ["<app>/<plan>/<tier>/<segment>/share_err_pp"] plus per-app
    [worst_share_err_pp]/[mean_share_err_pp] summaries); version 9 adds
    the flat ["surge"] section (overload-fidelity metrics from
    profile-driven runs, keyed ["<app>/<profile>/<metric>"],
    {!Surge.flat}).
    {!validate} is the shape check the test suite and downstream tooling
    run against emitted files, so schema drift fails loudly instead of
    silently. *)

val schema_version : int  (** 9 *)

type experiment = {
  exp_name : string;
  exp_seconds : float;  (** stage wall-clock *)
  exp_domains : int;  (** pool parallelism offered to the stage *)
  exp_parallel_efficiency : float;
      (** pool busy-time delta / (domains x wall); 1.0 = every domain was
          executing tasks for the stage's whole duration *)
}

type input = {
  domains : int;
  total_seconds : float;
  experiments : experiment list;  (** in run order *)
  clone_seconds : (string * float) list;
  mean_error_pct : (string * float) list;
  tuning : (string * Ditto_util.Jsonx.t) list;
      (** app -> {!Ditto_tune.Tuner.report_to_json} *)
  metrics : (string * float) list;  (** {!Ditto_obs.Obs.Metrics.snapshot} *)
  scorecards : Scorecard.t list;
  chaos : (string * float) list;
      (** "<app>/<plan>/<metric>" -> value, from [bench --chaos]; empty
          when the chaos experiment did not run *)
  timeline : (string * float) list;
      (** "<app>/<plan>/<metric>" -> value ({!Timeline.flat}), from
          [bench timeline]; empty when that experiment did not run *)
  critpath : (string * float) list;
      (** "<app>/<plan>/..." -> value ({!Critpath.flat}), from
          [bench critpath]; empty when that experiment did not run *)
  surge : (string * float) list;
      (** "<app>/<profile>/<metric>" -> value ({!Surge.flat}), from
          [bench surge]; empty when that experiment did not run *)
  peak_heap_events : int;
      (** {!Ditto_sim.Engine.global_peak_heap_events} at document time *)
  tier_counts : (string * int) list;  (** app -> tiers in the original spec *)
}

val assemble : input -> Ditto_util.Jsonx.t

val validate : Ditto_util.Jsonx.t -> (unit, string) result
(** Checks every required field and its shape, including per-row scorecard
    fields; the error names the offending path. *)
