(** Benchmark baseline store and regression gate.

    A baseline is a committed snapshot of the harness's accuracy metrics
    (the mean per-axis validation errors plus per-scorecard-row errors),
    each in percentage points, with per-metric tolerances. [bench --check]
    diffs the current run against it and exits non-zero on regression, so
    CI catches fidelity drift the way it catches test failures. *)

type t = {
  tolerance_pp : (string * float) list;
      (** allowed worsening in percentage points; keyed by full metric key
          or by its last ['/']-component, with a ["default"] fallback *)
  metrics : (string * float) list;  (** metric key -> error percent *)
}

type regression = {
  key : string;
  current : float;
  baseline : float;
  allowed_pp : float;  (** tolerance applied to this key *)
}

val default_tolerances : (string * float) list
(** 2.0pp default; looser for the noisiest axes (LLC, branch) and for tail
    latency. *)

val tolerance_for : t -> string -> float
(** Exact key match first, then the last ['/']-component, then
    ["default"] (2.0pp if absent). *)

val flatten : Ditto_util.Jsonx.t -> (string * float) list
(** Extract comparable metrics from a [bench --json] document:
    ["mean_error_pct/<axis>"] entries,
    ["scorecards/<app>/<tier>/<metric>"] row errors, and
    ["chaos/<app>/<plan>/<metric>"] failure-fidelity errors. *)

val make : ?tolerance_pp:(string * float) list -> (string * float) list -> t
(** A baseline with the given metrics. *)

val merge : into:t -> (string * float) list -> t
(** Overlay freshly measured metrics onto an existing baseline: keys in
    [current] replace or extend [into]'s metrics, keys only in [into] are
    kept — so a partial run (e.g. [--apps] or a chaos-only pass) can update
    its slice without discarding the rest of the committed baseline.
    Tolerances pinned by [into] are preserved; default tolerances for
    metric families [into] predates are filled in. *)

val diff : t -> (string * float) list -> regression list * int
(** [diff baseline current] returns the regressions (current error exceeds
    baseline + tolerance) and the number of keys compared. Keys present on
    only one side are skipped — adding or removing a metric is not a
    regression. *)

val load : string -> t
(** Raises {!Ditto_util.Jsonx.Parse_error} on malformed input. *)

val save : path:string -> t -> unit
val to_json : t -> Ditto_util.Jsonx.t
val of_json : Ditto_util.Jsonx.t -> t
