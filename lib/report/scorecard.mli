(** Clone-accuracy scorecards: per-tier, per-counter comparison of an
    original service against its synthetic clone, with relative errors, a
    95%-accuracy pass/fail verdict per row (the paper's §6.2 accuracy bar)
    and — when a tuning report is available — per-knob-group attribution of
    the residual error, so a failing row names the knobs that own it. *)

type row = {
  tier : string;
  metric : string;
      (** "ipc" | "insts" (per request) | "branch" (MPKI) | "l1i" | "l1d" |
          "l2" | "llc" (miss rates) | "throughput" (qps) | "lat_avg" |
          "lat_p95" | "lat_p99" (seconds) *)
  actual : float;
  synthetic : float;
  err_pct : float;  (** 100 * |synthetic - actual| / actual *)
  pass : bool;  (** err_pct <= target_pct *)
  knob_group : string option;
      (** owning tuner knob group ("frontend" | "data" | "work") for
          counters the §4.5 loop calibrates; [None] for derived
          service-level rows (throughput, latency) *)
}

(** One row of the failure-fidelity section (chaos runs): rates compare in
    percentage points, latency/throughput in relative percent, resilience
    counters (timeouts, retries, shed, breaker transitions, link drops)
    with a lenient count slack. *)
type failure_row = {
  f_metric : string;
      (** "error_rate" | "lat_p99" | "throughput" | "client_timeouts" |
          "client_retries" | "<tier>/<counter>" *)
  f_actual : float;
  f_synthetic : float;
  f_delta : float;  (** pp, relative %, or absolute count difference *)
  f_pass : bool;
}

type failure_section = { fail_plan : string; failure_rows : failure_row list }

type t = {
  app : string;
  label : string;  (** validation label, e.g. the load point *)
  target_pct : float;
  rows : row list;
  attribution : (string * float) list;
      (** residual tuning error (percent) per "tier/group", from
          {!Ditto_tune.Tuner.report.attribution} *)
  failure : failure_section option;
      (** present for {!of_chaos} scorecards: how faithfully the clone
          degrades under the fault plan *)
}

val of_comparison :
  ?target_pct:float ->
  app:string ->
  ?tuning:Ditto_tune.Tuner.report ->
  Ditto_core.Pipeline.comparison ->
  t
(** Build the scorecard from a {!Ditto_core.Pipeline.validate} result.
    [target_pct] defaults to 5.0 (the paper's 95% accuracy bar). *)

val of_chaos :
  ?target_pct:float ->
  app:string ->
  ?tuning:Ditto_tune.Tuner.report ->
  Ditto_core.Pipeline.chaos ->
  t
(** Scorecard for a {!Ditto_core.Pipeline.validate_under} run: the usual
    degraded counter rows plus a {!failure_section} comparing error rate
    (pp), degraded p99 / throughput (relative %) and per-tier resilience
    counters between original and clone. *)

val passed : t -> bool
(** True when every counter row (those with a [knob_group]) passes;
    service-level rows are informational. *)

val to_json : t -> Ditto_util.Jsonx.t
val print : t -> unit
(** Terminal rendering via {!Ditto_util.Table}. *)
