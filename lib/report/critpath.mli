(** Critical-path latency attribution from sampled request traces.

    Takes the span trees a {!Ditto_obs.Reqtrace} collector recorded and,
    per trace, extracts the critical path: the chain of activities the
    end-to-end latency actually waited on. Folding the sampled paths
    gives per-tier × segment latency-contribution tables, and comparing
    an actual run's table with the clone's gives a divergence scorecard
    that ranks tier × segment pairs by contribution error — turning
    "clone p99 is 8% high" into "the clone's [nginx → memcached] RPC wait
    under-contributes by 6 pp".

    The walk is backward from each span's end: repeatedly pick the
    latest-ending activity (own typed segment, or a child RPC interval)
    not after the cursor, attribute uncovered gaps to the span's tier as
    ["other"], and descend into a child RPC — its wait minus the callee's
    server-span duration is network ("rpc:<target>" on the caller), the
    rest recurses into the callee. With async fan-out the latest-ending
    child is exactly what the join waited on. Ties (equal activity ends)
    break toward the later-starting, then later-recorded activity, so
    extraction is deterministic for a deterministic trace. *)

type cell = {
  c_tier : string;
  c_segment : string;
      (** ["queue"], ["service"], ["backoff"], ["rpc:<target>"] (network +
          unattributed remote wait, on the caller), or ["other"]
          (uncovered gaps: scheduling, epoll latency) *)
  c_mean : float;  (** seconds contributed per sampled request (zeros included) *)
  c_p95 : float;
  c_p99 : float;
  c_share_pct : float;  (** [c_mean] as % of the mean end-to-end latency *)
}

type table = {
  t_samples : int;
  t_mean_e2e : float;  (** mean end-to-end latency of the sampled traces, seconds *)
  t_cells : cell list;  (** sorted by share, descending *)
}

val contributions : Ditto_obs.Reqtrace.span -> (string * string * float) list
(** One trace's critical path, folded to [(tier, segment, seconds)] in
    descending-seconds order. Exposed for tests. *)

val of_traces : Ditto_obs.Reqtrace.span list -> table
(** Fold sampled traces (client root spans) into a contribution table.
    An empty list gives an empty table. *)

type div_row = {
  d_tier : string;
  d_segment : string;
  d_actual_mean : float;
  d_clone_mean : float;  (** seconds *)
  d_actual_share_pct : float;
  d_clone_share_pct : float;
  d_err_pp : float;  (** clone share − actual share, percentage points (signed) *)
}

type divergence = {
  v_app : string;
  v_plan : string option;
  v_actual : table;
  v_clone : table;
  v_rows : div_row list;  (** union of both tables' cells, ranked by |err_pp| desc *)
}

val divergence : app:string -> ?plan:string -> actual:table -> clone:table -> unit -> divergence

val of_comparison :
  app:string -> ?plan:string -> Ditto_core.Pipeline.comparison -> divergence
(** Build the scorecard straight from a validation run whose two sides
    carried {!Ditto_obs.Reqtrace} collectors. Raises [Invalid_argument]
    when either side has none (request tracing was not enabled). *)

val worst : divergence -> div_row option
(** Highest-|err_pp| row — the tier × segment the tuner should look at. *)

val print : divergence -> unit
(** Terminal table (both sides' mean contribution and share per tier ×
    segment, ranked by divergence) plus a greppable
    [CRITPATH worst=<tier>/<segment> err_pp=...] summary line. *)

val flat : divergence -> (string * float) list
(** Flat gate keys for the [critpath] section of [bench --json] (schema
    v8), gated through {!Baseline}:
    [<app>/<plan>/<tier>/<segment>/share_err_pp] (absolute pp) per row
    plus [<app>/<plan>/{worst_share_err_pp,mean_share_err_pp}]. [plan]
    falls back to ["steady"]. *)
