(** Transient-fidelity scorecard: does the clone track the original
    *through* events, not just at steady state?

    Built from the two windowed {!Ditto_obs.Timeseries} collectors of a
    {!Ditto_core.Pipeline.validate_under} run (actual and clone side).
    Per window it compares end-to-end throughput and p95 latency and
    keeps the worse of the two relative errors; the summary is the worst
    and mean window error plus the time-to-reconvergence after each
    fault marker — the delay until both sides agree again (two
    consecutive windows within [threshold_pct]), which by construction is
    at least one window length whenever a fault fired. Multi-event plans
    (e.g. flaky-link's repeated down/up toggles) get one [faults] row per
    marker; the legacy [fault_at]/[reconverge_seconds] fields keep
    reporting the first. *)

type window_row = {
  w_index : int;
  w_start : float;  (** seconds from run start *)
  w_actual_qps : float;
  w_clone_qps : float;
  w_actual_p95 : float;
  w_clone_p95 : float;  (** seconds *)
  w_err_pct : float;  (** max of the qps and p95 relative errors *)
}

type fault_row = {
  f_at : float;  (** marker time, seconds from run start *)
  f_label : string;  (** the fault plan's marker label *)
  f_reconverged : bool;
  f_reconverge_seconds : float;
      (** same convention as [reconverge_seconds], measured from this
          marker *)
}

type t = {
  app : string;
  plan : string option;
  window_seconds : float;
  threshold_pct : float;
  rows : window_row list;  (** one per window, in time order *)
  worst_window_err_pct : float;
  mean_window_err_pct : float;
  fault_at : float option;  (** first fault marker, seconds from run start *)
  reconverged : bool;
  reconverge_seconds : float;
      (** fault marker -> end of the first window of two consecutive
          compliant windows; [0.] when no fault fired; capped at the end
          of the run (with [reconverged = false]) when agreement never
          returns *)
  faults : fault_row list;
      (** one row per fault marker, in time order; empty for steady runs *)
  tier_worst : (string * float) list;
      (** per application tier: worst window throughput error *)
}

val of_timelines :
  app:string ->
  ?plan:string ->
  ?threshold_pct:float ->
  actual:Ditto_obs.Timeseries.t ->
  clone:Ditto_obs.Timeseries.t ->
  unit ->
  t
(** [threshold_pct] (default 25) is the reconvergence criterion. Raises
    [Invalid_argument] if the two collectors have different window
    grids. *)

val print : t -> unit
(** Terminal table: per-window qps/p95 for both sides with the window
    error (fault windows flagged), then the summary line. *)

val flat : t -> (string * float) list
(** Flat gate keys
    [<app>/<plan>/{worst_window_err_pct,mean_window_err_pct,reconverge_seconds}]
    for the [timeline] section of [bench --json] (schema v7), gated
    through {!Baseline}. [plan] falls back to ["steady"]. Plans with more
    than one fault marker additionally emit
    [<app>/<plan>/fault<i>/reconverge_seconds] per marker. *)
