(** Surge-fidelity scorecard: does the clone overload like the original?

    Built from a {!Ditto_core.Pipeline.validate_under} run driven by a
    rate profile (DESIGN.md section 14). On top of the windowed
    {!Timeline} comparison it scores the three behaviours that only exist
    under overload: how much load each side sheds (and when shedding
    starts), and whether the autoscaler's replica-count trajectory
    matches window for window. *)

type t = {
  app : string;
  scenario : string;  (** {!Ditto_core.Pipeline.scenario_name} of the run *)
  timeline : Timeline.t;  (** the windowed qps/p95 comparison underneath *)
  shed_fraction_actual : float;  (** whole-run shed / (shed + completed) *)
  shed_fraction_clone : float;
  shed_fraction_err_pp : float;  (** |actual - clone| in percentage points *)
  worst_shed_window_err_pp : float;  (** worst single-window shed-rate gap *)
  replica_traj_err_pp : float;
      (** share of (tier x window) cells whose live replica counts differ *)
  saturation_onset_actual : float option;
      (** start of the first shedding window, seconds from run start;
          [None] when the side never shed *)
  saturation_onset_clone : float option;
  saturation_onset_err_s : float;
      (** |actual - clone| onset, a never-shedding side counting as the
          run horizon *)
  scale_out_actual : int;  (** autoscaler actuations that added a replica *)
  scale_out_clone : int;
  scale_in_actual : int;
  scale_in_clone : int;
  shed_total_actual : int;
  shed_total_clone : int;
}

val of_chaos : app:string -> ?threshold_pct:float -> Ditto_core.Pipeline.chaos -> t
(** Raises [Invalid_argument] unless both sides carry windowed telemetry
    ({!Ditto_obs.Timeseries.enable} before the run). [threshold_pct] is
    {!Timeline.of_timelines}'s reconvergence criterion. *)

val print : t -> unit
(** The {!Timeline} table followed by the surge rows. *)

val flat : t -> (string * float) list
(** Flat gate keys
    [<app>/<scenario>/{worst_window_err_pct,mean_window_err_pct,
    reconverge_seconds,shed_fraction_err_pp,worst_shed_window_err_pp,
    replica_traj_err_pp,saturation_onset_err_s}] for the [surge] section
    of [bench --json] (schema v9), gated through {!Baseline}. *)
