(** Collapsed-stack rendering of {!Ditto_obs.Profiler} samples.

    The on-disk format is one line per distinct stack,
    ["frame;frame;frame <count>"], with integer counts in microseconds of
    attributed time — directly consumable by Brendan Gregg's flamegraph.pl
    or inferno ([flamegraph.pl profile.folded > profile.svg]). *)

val fold : Ditto_obs.Profiler.sample list -> (string * float) list
(** Merge samples into [("a;b;c", seconds)] pairs, one per distinct stack,
    sorted by descending weight. *)

val write_collapsed : path:string -> Ditto_obs.Profiler.sample list -> int
(** Write the collapsed-stack file; returns the number of lines written
    (stacks whose weight rounds to zero microseconds are dropped). *)

val top_rows : n:int -> Ditto_obs.Profiler.sample list -> string list list
(** The [n] heaviest stacks as table cells: stack, samples, ms, share of
    total profile time. *)

val print_top : n:int -> Ditto_obs.Profiler.sample list -> unit
(** [top_rows] rendered through {!Ditto_util.Table}. *)
