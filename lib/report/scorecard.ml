open Ditto_app
module Pipeline = Ditto_core.Pipeline
module Counters = Ditto_uarch.Counters
module Params = Ditto_gen.Params
module Table = Ditto_util.Table
module J = Ditto_util.Jsonx

type row = {
  tier : string;
  metric : string;
  actual : float;
  synthetic : float;
  err_pct : float;
  pass : bool;
  knob_group : string option;
}

type t = {
  app : string;
  label : string;
  target_pct : float;
  rows : row list;
  attribution : (string * float) list;
}

let err_pct ~actual ~synthetic =
  if actual = 0.0 then if synthetic = 0.0 then 0.0 else 100.0
  else 100.0 *. Float.abs (synthetic -. actual) /. Float.abs actual

let insts_per_req (r : Measure.tier_result) =
  float_of_int r.Measure.counters.Counters.insts
  /. float_of_int (max 1 r.Measure.requests_measured)

let of_comparison ?(target_pct = 5.0) ~app ?tuning (c : Pipeline.comparison) =
  let mk tier metric actual synthetic =
    let e = err_pct ~actual ~synthetic in
    {
      tier;
      metric;
      actual;
      synthetic;
      err_pct = e;
      pass = e <= target_pct;
      knob_group = Option.map Params.group_name (Params.group_of_metric metric);
    }
  in
  let rows =
    List.concat_map
      (fun (tier, (a : Metrics.t)) ->
        let s = List.assoc tier c.Pipeline.synthetic in
        let measured_rows =
          match
            ( List.assoc_opt tier c.Pipeline.actual_measured,
              List.assoc_opt tier c.Pipeline.synthetic_measured )
          with
          | Some am, Some sm -> [ mk tier "insts" (insts_per_req am) (insts_per_req sm) ]
          | _ -> []
        in
        [ mk tier "ipc" a.Metrics.ipc s.Metrics.ipc ]
        @ measured_rows
        @ [
            mk tier "branch"
              (Counters.branch_mpki a.Metrics.counters)
              (Counters.branch_mpki s.Metrics.counters);
            mk tier "l1i" a.Metrics.l1i_miss_rate s.Metrics.l1i_miss_rate;
            mk tier "l1d" a.Metrics.l1d_miss_rate s.Metrics.l1d_miss_rate;
            mk tier "l2" a.Metrics.l2_miss_rate s.Metrics.l2_miss_rate;
            mk tier "llc" a.Metrics.llc_miss_rate s.Metrics.llc_miss_rate;
            mk tier "throughput" a.Metrics.qps s.Metrics.qps;
            mk tier "lat_avg" a.Metrics.lat_avg s.Metrics.lat_avg;
            mk tier "lat_p95" a.Metrics.lat_p95 s.Metrics.lat_p95;
            mk tier "lat_p99" a.Metrics.lat_p99 s.Metrics.lat_p99;
          ])
      c.Pipeline.actual
  in
  let attribution =
    match tuning with
    | None -> []
    | Some (r : Ditto_tune.Tuner.report) ->
        List.map (fun (k, e) -> (k, 100.0 *. e)) r.Ditto_tune.Tuner.attribution
  in
  { app; label = c.Pipeline.label; target_pct; rows; attribution }

let passed t =
  List.for_all (fun r -> match r.knob_group with Some _ -> r.pass | None -> true) t.rows

let row_to_json r =
  J.Obj
    [
      ("tier", J.Str r.tier);
      ("metric", J.Str r.metric);
      ("actual", J.Num r.actual);
      ("synthetic", J.Num r.synthetic);
      ("err_pct", J.Num r.err_pct);
      ("pass", J.Bool r.pass);
      ("knob_group", match r.knob_group with Some g -> J.Str g | None -> J.Null);
    ]

let to_json t =
  J.Obj
    [
      ("app", J.Str t.app);
      ("label", J.Str t.label);
      ("target_pct", J.Num t.target_pct);
      ("passed", J.Bool (passed t));
      ("rows", J.List (List.map row_to_json t.rows));
      ("attribution", J.Obj (List.map (fun (k, e) -> (k, J.Num e)) t.attribution));
    ]

let print t =
  let cells r =
    [
      r.tier;
      r.metric;
      Table.fmt_float r.actual;
      Table.fmt_float r.synthetic;
      Table.fmt_pct r.err_pct;
      (if r.pass then "ok" else "FAIL");
      (match r.knob_group with Some g -> g | None -> "-");
    ]
  in
  Table.print
    ~title:
      (Printf.sprintf "Scorecard — %s (%s, target %.0f%%: %s)" t.app t.label t.target_pct
         (if passed t then "PASS" else "FAIL"))
    ~header:[ "tier"; "metric"; "actual"; "synthetic"; "err"; "95%"; "knobs" ]
    (List.map cells t.rows);
  if t.attribution <> [] then begin
    Printf.printf "  residual tuning error by knob group:";
    List.iter (fun (k, e) -> Printf.printf " %s=%.1f%%" k e) t.attribution;
    print_newline ()
  end
