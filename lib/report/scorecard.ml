open Ditto_app
module Pipeline = Ditto_core.Pipeline
module Counters = Ditto_uarch.Counters
module Params = Ditto_gen.Params
module Table = Ditto_util.Table
module J = Ditto_util.Jsonx

type row = {
  tier : string;
  metric : string;
  actual : float;
  synthetic : float;
  err_pct : float;
  pass : bool;
  knob_group : string option;
}

type failure_row = {
  f_metric : string;
  f_actual : float;
  f_synthetic : float;
  f_delta : float;
  f_pass : bool;
}

type failure_section = { fail_plan : string; failure_rows : failure_row list }

type t = {
  app : string;
  label : string;
  target_pct : float;
  rows : row list;
  attribution : (string * float) list;
  failure : failure_section option;
}

let err_pct ~actual ~synthetic =
  if actual = 0.0 then if synthetic = 0.0 then 0.0 else 100.0
  else 100.0 *. Float.abs (synthetic -. actual) /. Float.abs actual

let insts_per_req (r : Measure.tier_result) =
  float_of_int r.Measure.counters.Counters.insts
  /. float_of_int (max 1 r.Measure.requests_measured)

let of_comparison ?(target_pct = 5.0) ~app ?tuning (c : Pipeline.comparison) =
  let mk tier metric actual synthetic =
    let e = err_pct ~actual ~synthetic in
    {
      tier;
      metric;
      actual;
      synthetic;
      err_pct = e;
      pass = e <= target_pct;
      knob_group = Option.map Params.group_name (Params.group_of_metric metric);
    }
  in
  (* Index the per-tier lists once; the assoc scans inside the per-tier
     loop are O(tiers^2) on wide synthetic graphs. *)
  let index pairs =
    let tbl = Hashtbl.create 64 in
    List.iter (fun (name, v) -> Hashtbl.replace tbl name v) pairs;
    tbl
  in
  let synth_tbl = index c.Pipeline.synthetic in
  let am_tbl = index c.Pipeline.actual_measured in
  let sm_tbl = index c.Pipeline.synthetic_measured in
  let rows =
    List.concat_map
      (fun (tier, (a : Metrics.t)) ->
        let s = Hashtbl.find synth_tbl tier in
        let measured_rows =
          match (Hashtbl.find_opt am_tbl tier, Hashtbl.find_opt sm_tbl tier) with
          | Some am, Some sm -> [ mk tier "insts" (insts_per_req am) (insts_per_req sm) ]
          | _ -> []
        in
        [ mk tier "ipc" a.Metrics.ipc s.Metrics.ipc ]
        @ measured_rows
        @ [
            mk tier "branch"
              (Counters.branch_mpki a.Metrics.counters)
              (Counters.branch_mpki s.Metrics.counters);
            mk tier "l1i" a.Metrics.l1i_miss_rate s.Metrics.l1i_miss_rate;
            mk tier "l1d" a.Metrics.l1d_miss_rate s.Metrics.l1d_miss_rate;
            mk tier "l2" a.Metrics.l2_miss_rate s.Metrics.l2_miss_rate;
            mk tier "llc" a.Metrics.llc_miss_rate s.Metrics.llc_miss_rate;
            mk tier "throughput" a.Metrics.qps s.Metrics.qps;
            mk tier "lat_avg" a.Metrics.lat_avg s.Metrics.lat_avg;
            mk tier "lat_p95" a.Metrics.lat_p95 s.Metrics.lat_p95;
            mk tier "lat_p99" a.Metrics.lat_p99 s.Metrics.lat_p99;
          ])
      c.Pipeline.actual
  in
  let attribution =
    match tuning with
    | None -> []
    | Some (r : Ditto_tune.Tuner.report) ->
        List.map (fun (k, e) -> (k, 100.0 *. e)) r.Ditto_tune.Tuner.attribution
  in
  { app; label = c.Pipeline.label; target_pct; rows; attribution; failure = None }

(* Failure-fidelity rows. Rates compare in percentage points, latency and
   throughput in relative percent; raw resilience counters (timeouts, shed,
   ...) are noisy per-event tallies, so they pass within 50% of the larger
   side or an absolute slack of 10 events. *)
let of_chaos ?(target_pct = 5.0) ~app ?tuning (ch : Pipeline.chaos) =
  let base = of_comparison ~target_pct ~app ?tuning ch.Pipeline.comparison in
  let a_svc = ch.Pipeline.actual_service and s_svc = ch.Pipeline.synthetic_service in
  let rate_row metric a s =
    let delta = 100.0 *. Float.abs (s -. a) in
    { f_metric = metric; f_actual = a; f_synthetic = s; f_delta = delta; f_pass = delta <= target_pct }
  in
  let rel_row metric a s =
    let delta = err_pct ~actual:a ~synthetic:s in
    { f_metric = metric; f_actual = a; f_synthetic = s; f_delta = delta; f_pass = delta <= target_pct }
  in
  let count_row metric a s =
    let a = float_of_int a and s = float_of_int s in
    let delta = Float.abs (s -. a) in
    let slack = Float.max 10.0 (0.5 *. Float.max a s) in
    { f_metric = metric; f_actual = a; f_synthetic = s; f_delta = delta; f_pass = delta <= slack }
  in
  let app_rows =
    [
      rate_row "error_rate" (Pipeline.error_rate a_svc) (Pipeline.error_rate s_svc);
      rel_row "lat_p99" a_svc.Service.latency.Ditto_util.Stats.p99
        s_svc.Service.latency.Ditto_util.Stats.p99;
      rel_row "throughput" a_svc.Service.achieved_qps s_svc.Service.achieved_qps;
      count_row "client_timeouts" a_svc.Service.client_timeouts s_svc.Service.client_timeouts;
      count_row "client_retries" a_svc.Service.client_retries s_svc.Service.client_retries;
    ]
  in
  let s_obs_tbl = Hashtbl.create 64 in
  List.iter
    (fun (o : Service.tier_obs) -> Hashtbl.replace s_obs_tbl o.Service.obs_name o)
    s_svc.Service.tiers;
  let tier_rows =
    List.concat_map
      (fun (a_obs : Service.tier_obs) ->
        match Hashtbl.find_opt s_obs_tbl a_obs.Service.obs_name with
        | None -> []
        | Some s_obs ->
            let tier = a_obs.Service.obs_name in
            List.filter_map
              (fun (metric, a, s) ->
                if a = 0 && s = 0 then None
                else Some (count_row (tier ^ "/" ^ metric) a s))
              [
                ("timeouts", a_obs.Service.obs_timeouts, s_obs.Service.obs_timeouts);
                ("retries", a_obs.Service.obs_retries, s_obs.Service.obs_retries);
                ("shed", a_obs.Service.obs_shed, s_obs.Service.obs_shed);
                ("degraded", a_obs.Service.obs_degraded, s_obs.Service.obs_degraded);
                ("failures", a_obs.Service.obs_failures, s_obs.Service.obs_failures);
                ( "breaker_transitions",
                  a_obs.Service.obs_breaker_transitions,
                  s_obs.Service.obs_breaker_transitions );
                ("link_drops", a_obs.Service.obs_link_drops, s_obs.Service.obs_link_drops);
              ])
      a_svc.Service.tiers
  in
  {
    base with
    label = ch.Pipeline.chaos_label;
    failure =
      Some
        {
          fail_plan = Pipeline.scenario_name ?plan:ch.Pipeline.plan ?surge:ch.Pipeline.surge ();
          failure_rows = app_rows @ tier_rows;
        };
  }

let passed t =
  List.for_all (fun r -> match r.knob_group with Some _ -> r.pass | None -> true) t.rows

let row_to_json r =
  J.Obj
    [
      ("tier", J.Str r.tier);
      ("metric", J.Str r.metric);
      ("actual", J.Num r.actual);
      ("synthetic", J.Num r.synthetic);
      ("err_pct", J.Num r.err_pct);
      ("pass", J.Bool r.pass);
      ("knob_group", match r.knob_group with Some g -> J.Str g | None -> J.Null);
    ]

let failure_row_to_json r =
  J.Obj
    [
      ("metric", J.Str r.f_metric);
      ("actual", J.Num r.f_actual);
      ("synthetic", J.Num r.f_synthetic);
      ("delta", J.Num r.f_delta);
      ("pass", J.Bool r.f_pass);
    ]

let to_json t =
  J.Obj
    ([
       ("app", J.Str t.app);
       ("label", J.Str t.label);
       ("target_pct", J.Num t.target_pct);
       ("passed", J.Bool (passed t));
       ("rows", J.List (List.map row_to_json t.rows));
       ("attribution", J.Obj (List.map (fun (k, e) -> (k, J.Num e)) t.attribution));
     ]
    @
    match t.failure with
    | None -> []
    | Some f ->
        [
          ( "failure",
            J.Obj
              [
                ("plan", J.Str f.fail_plan);
                ("rows", J.List (List.map failure_row_to_json f.failure_rows));
              ] );
        ])

let print t =
  let cells r =
    [
      r.tier;
      r.metric;
      Table.fmt_float r.actual;
      Table.fmt_float r.synthetic;
      Table.fmt_pct r.err_pct;
      (if r.pass then "ok" else "FAIL");
      (match r.knob_group with Some g -> g | None -> "-");
    ]
  in
  Table.print
    ~title:
      (Printf.sprintf "Scorecard — %s (%s, target %.0f%%: %s)" t.app t.label t.target_pct
         (if passed t then "PASS" else "FAIL"))
    ~header:[ "tier"; "metric"; "actual"; "synthetic"; "err"; "95%"; "knobs" ]
    (List.map cells t.rows);
  if t.attribution <> [] then begin
    Printf.printf "  residual tuning error by knob group:";
    List.iter (fun (k, e) -> Printf.printf " %s=%.1f%%" k e) t.attribution;
    print_newline ()
  end;
  match t.failure with
  | None -> ()
  | Some f ->
      Table.print
        ~title:(Printf.sprintf "Failure fidelity — %s under %s" t.app f.fail_plan)
        ~header:[ "metric"; "actual"; "synthetic"; "delta"; "ok" ]
        (List.map
           (fun r ->
             [
               r.f_metric;
               Table.fmt_float r.f_actual;
               Table.fmt_float r.f_synthetic;
               Table.fmt_float r.f_delta;
               (if r.f_pass then "ok" else "FAIL");
             ])
           f.failure_rows)
