module Ts = Ditto_obs.Timeseries
module Pipeline = Ditto_core.Pipeline
module Table = Ditto_util.Table
open Ditto_app

type t = {
  app : string;
  scenario : string;
  timeline : Timeline.t;
  shed_fraction_actual : float;
  shed_fraction_clone : float;
  shed_fraction_err_pp : float;
  worst_shed_window_err_pp : float;
  replica_traj_err_pp : float;
  saturation_onset_actual : float option;
  saturation_onset_clone : float option;
  saturation_onset_err_s : float;
  scale_out_actual : int;
  scale_out_clone : int;
  scale_in_actual : int;
  scale_in_clone : int;
  shed_total_actual : int;
  shed_total_clone : int;
}

(* Per-window shed fraction: shed requests (summed over application tiers)
   over offered arrivals (end-to-end completions + shed). Both sides of
   the comparison use the same definition, so the error is in percentage
   points of offered load. *)
let shed_by_window ts =
  let n = Ts.windows ts in
  let app_tiers = List.filter (fun t -> t <> Ts.client_tier) (Ts.tiers ts) in
  Array.init n (fun i ->
      let shed =
        List.fold_left (fun acc tier -> acc + (Ts.row ts ~tier i).Ts.r_shed) 0 app_tiers
      in
      let completed = (Ts.row ts ~tier:Ts.client_tier i).Ts.r_completed in
      (shed, completed))

let frac (shed, completed) =
  let total = shed + completed in
  if total = 0 then 0.0 else float_of_int shed /. float_of_int total

let onset w cells =
  let n = Array.length cells in
  let rec go i = if i >= n then None else if fst cells.(i) > 0 then Some (float_of_int i *. w) else go (i + 1) in
  go 0

let count_scale dir events =
  List.length
    (List.filter
       (fun (e : Service.scale_event) ->
         if dir > 0 then e.Service.se_to > e.Service.se_from
         else e.Service.se_to < e.Service.se_from)
       events)

let of_chaos ~app ?threshold_pct (ch : Pipeline.chaos) =
  let actual, clone =
    match
      (ch.Pipeline.actual_service.Service.timeline, ch.Pipeline.synthetic_service.Service.timeline)
    with
    | Some a, Some c -> (a, c)
    | _ ->
        invalid_arg
          "Surge.of_chaos: needs windowed telemetry on both sides (enable Timeseries before the \
           run)"
  in
  let scenario = Pipeline.scenario_name ?plan:ch.Pipeline.plan ?surge:ch.Pipeline.surge () in
  let timeline = Timeline.of_timelines ~app ~plan:scenario ?threshold_pct ~actual ~clone () in
  let n = Ts.windows actual in
  let w = Ts.window_seconds actual in
  let a_cells = shed_by_window actual and c_cells = shed_by_window clone in
  let total cells =
    Array.fold_left (fun (s, c) (shed, completed) -> (s + shed, c + completed)) (0, 0) cells
  in
  let a_shed, a_comp = total a_cells and c_shed, c_comp = total c_cells in
  let shed_fraction_actual = frac (a_shed, a_comp) in
  let shed_fraction_clone = frac (c_shed, c_comp) in
  let worst_shed_window_err_pp =
    let worst = ref 0.0 in
    for i = 0 to n - 1 do
      worst := Float.max !worst (100.0 *. Float.abs (frac a_cells.(i) -. frac c_cells.(i)))
    done;
    !worst
  in
  (* Replica trajectory: the windowed replica gauge (carried forward) on
     both sides, compared cell by cell over (application tier x window) —
     the error is the share of cells where the live replica counts
     disagree, i.e. how often "kubectl get pods" would differ. *)
  let replica_traj_err_pp =
    let app_tiers = List.filter (fun t -> t <> Ts.client_tier) (Ts.tiers actual) in
    let cells = ref 0 and off = ref 0 in
    List.iter
      (fun tier ->
        if List.mem tier (Ts.tiers clone) then
          for i = 0 to n - 1 do
            incr cells;
            if (Ts.row actual ~tier i).Ts.r_replicas <> (Ts.row clone ~tier i).Ts.r_replicas then
              incr off
          done)
      app_tiers;
    if !cells = 0 then 0.0 else 100.0 *. float_of_int !off /. float_of_int !cells
  in
  let saturation_onset_actual = onset w a_cells in
  let saturation_onset_clone = onset w c_cells in
  let saturation_onset_err_s =
    let horizon = float_of_int n *. w in
    match (saturation_onset_actual, saturation_onset_clone) with
    | None, None -> 0.0
    | a, c ->
        Float.abs (Option.value ~default:horizon a -. Option.value ~default:horizon c)
  in
  {
    app;
    scenario;
    timeline;
    shed_fraction_actual;
    shed_fraction_clone;
    shed_fraction_err_pp = 100.0 *. Float.abs (shed_fraction_actual -. shed_fraction_clone);
    worst_shed_window_err_pp;
    replica_traj_err_pp;
    saturation_onset_actual;
    saturation_onset_clone;
    saturation_onset_err_s;
    scale_out_actual = count_scale 1 ch.Pipeline.actual_service.Service.scale_events;
    scale_out_clone = count_scale 1 ch.Pipeline.synthetic_service.Service.scale_events;
    scale_in_actual = count_scale (-1) ch.Pipeline.actual_service.Service.scale_events;
    scale_in_clone = count_scale (-1) ch.Pipeline.synthetic_service.Service.scale_events;
    shed_total_actual = a_shed;
    shed_total_clone = c_shed;
  }

let print t =
  Timeline.print t.timeline;
  let onset_str = function None -> "never" | Some s -> Printf.sprintf "%.0f ms" (s *. 1e3) in
  Table.print
    ~title:(Printf.sprintf "surge fidelity: %s under %s" t.app t.scenario)
    ~header:[ "metric"; "actual"; "clone"; "err" ]
    [
      [
        "shed fraction";
        Printf.sprintf "%.2f%%" (100.0 *. t.shed_fraction_actual);
        Printf.sprintf "%.2f%%" (100.0 *. t.shed_fraction_clone);
        Printf.sprintf "%.2f pp" t.shed_fraction_err_pp;
      ];
      [
        "shed requests";
        string_of_int t.shed_total_actual;
        string_of_int t.shed_total_clone;
        Printf.sprintf "%.2f pp worst window" t.worst_shed_window_err_pp;
      ];
      [
        "scale-out / scale-in";
        Printf.sprintf "%d / %d" t.scale_out_actual t.scale_in_actual;
        Printf.sprintf "%d / %d" t.scale_out_clone t.scale_in_clone;
        Printf.sprintf "%.1f%% windows differ" t.replica_traj_err_pp;
      ];
      [
        "saturation onset";
        onset_str t.saturation_onset_actual;
        onset_str t.saturation_onset_clone;
        Printf.sprintf "%.0f ms" (t.saturation_onset_err_s *. 1e3);
      ];
    ]

let flat t =
  let key m = Printf.sprintf "%s/%s/%s" t.app t.scenario m in
  [
    (key "worst_window_err_pct", t.timeline.Timeline.worst_window_err_pct);
    (key "mean_window_err_pct", t.timeline.Timeline.mean_window_err_pct);
    (key "reconverge_seconds", t.timeline.Timeline.reconverge_seconds);
    (key "shed_fraction_err_pp", t.shed_fraction_err_pp);
    (key "worst_shed_window_err_pp", t.worst_shed_window_err_pp);
    (key "replica_traj_err_pp", t.replica_traj_err_pp);
    (key "saturation_onset_err_s", t.saturation_onset_err_s);
  ]
