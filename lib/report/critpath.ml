module Rq = Ditto_obs.Reqtrace
module Stats = Ditto_util.Stats
module Table = Ditto_util.Table

let eps = 1e-12

(* --- Critical-path extraction ----------------------------------------- *)

(* An activity is anything a span's elapsed time can be attributed to: one
   of its own typed segments, or a child RPC interval (send to
   reply/timeout). The index keeps tie-breaking deterministic: equal
   (end, start) resolves toward the later-recorded activity. *)
type activity = Seg of Rq.segment | Child of Rq.span

let interval = function
  | Seg s -> (s.Rq.seg_start, s.Rq.seg_start +. s.Rq.seg_dur)
  | Child c -> (c.Rq.sp_start, c.Rq.sp_end)

let rec walk (sp : Rq.span) add =
  let acts =
    List.mapi (fun i s -> (i, Seg s)) sp.Rq.sp_segs
    @ List.mapi
        (fun i c -> (10000 + i, Child c))
        (List.filter (fun (c : Rq.span) -> c.Rq.sp_kind = Rq.Rpc) sp.Rq.sp_children)
  in
  let floor = sp.Rq.sp_arrive in
  let cursor = ref sp.Rq.sp_end in
  let remaining = ref acts in
  let running = ref true in
  while !running do
    (* Latest-ending activity at/before the cursor; ties break toward the
       later start, then the higher index. *)
    let best =
      List.fold_left
        (fun best (idx, act) ->
          let a_start, a_end = interval act in
          if a_end > !cursor +. eps then best
          else
            let key = (a_end, a_start, idx) in
            match best with
            | Some (_, _, _, bkey) when bkey >= key -> best
            | _ -> Some (idx, act, (a_start, a_end), key))
        None !remaining
    in
    match best with
    | None ->
        if !cursor -. floor > eps then add sp.Rq.sp_tier "other" (!cursor -. floor);
        running := false
    | Some (idx, act, (a_start, a_end), _) ->
        remaining := List.filter (fun (i, _) -> i <> idx) !remaining;
        if !cursor -. a_end > eps then add sp.Rq.sp_tier "other" (!cursor -. a_end);
        (match act with
        | Seg s -> add sp.Rq.sp_tier (Rq.segment_name s.Rq.seg_kind) s.Rq.seg_dur
        | Child c ->
            let rpc_dur = Float.max 0.0 (c.Rq.sp_end -. c.Rq.sp_start) in
            let server =
              List.find_opt (fun (ch : Rq.span) -> ch.Rq.sp_kind = Rq.Server) c.Rq.sp_children
            in
            (match server with
            | Some s ->
                (* Network + serialisation: the caller's wait minus the
                   callee's server-side time; the rest recurses. *)
                let sdur = Float.max 0.0 (s.Rq.sp_end -. s.Rq.sp_arrive) in
                let net = Float.max 0.0 (rpc_dur -. sdur) in
                if net > eps then add sp.Rq.sp_tier ("rpc:" ^ c.Rq.sp_tier) net;
                walk s add
            | None ->
                (* The callee never began handling (crash, drop): the whole
                   wait is the caller's RPC time. *)
                add sp.Rq.sp_tier ("rpc:" ^ c.Rq.sp_tier) rpc_dur));
        cursor := Float.max floor a_start;
        if !cursor -. floor <= eps then running := false
  done

let contributions root =
  let tbl : (string * string, float) Hashtbl.t = Hashtbl.create 16 in
  let add tier segment seconds =
    if seconds > 0.0 then
      let key = (tier, segment) in
      Hashtbl.replace tbl key (seconds +. Option.value ~default:0.0 (Hashtbl.find_opt tbl key))
  in
  walk root add;
  Hashtbl.fold (fun (tier, segment) v acc -> (tier, segment, v) :: acc) tbl []
  |> List.sort (fun (t1, s1, v1) (t2, s2, v2) -> compare (v2, t1, s1) (v1, t2, s2))

(* --- Contribution tables ---------------------------------------------- *)

type cell = {
  c_tier : string;
  c_segment : string;
  c_mean : float;
  c_p95 : float;
  c_p99 : float;
  c_share_pct : float;
}

type table = { t_samples : int; t_mean_e2e : float; t_cells : cell list }

let of_traces roots =
  let n = List.length roots in
  if n = 0 then { t_samples = 0; t_mean_e2e = 0.0; t_cells = [] }
  else begin
    let per_trace = List.map (fun r -> (r, contributions r)) roots in
    let keys = ref [] in
    List.iter
      (fun (_, cs) ->
        List.iter (fun (tier, seg, _) -> if not (List.mem (tier, seg) !keys) then keys := (tier, seg) :: !keys) cs)
      per_trace;
    let keys = List.sort compare !keys in
    let e2e =
      List.fold_left (fun a (r : Rq.span) -> a +. Float.max 0.0 (r.Rq.sp_end -. r.Rq.sp_start)) 0.0 roots
      /. float_of_int n
    in
    let cells =
      List.map
        (fun (tier, seg) ->
          let st = Stats.create () in
          List.iter
            (fun (_, cs) ->
              let v =
                List.fold_left
                  (fun acc (t, s, x) -> if t = tier && s = seg then acc +. x else acc)
                  0.0 cs
              in
              Stats.add st v)
            per_trace;
          let s = Stats.summary st in
          {
            c_tier = tier;
            c_segment = seg;
            c_mean = s.Stats.mean;
            c_p95 = s.Stats.p95;
            c_p99 = s.Stats.p99;
            c_share_pct = (if e2e > 0.0 then 100.0 *. s.Stats.mean /. e2e else 0.0);
          })
        keys
      |> List.sort (fun a b -> compare (b.c_share_pct, a.c_tier, a.c_segment) (a.c_share_pct, b.c_tier, b.c_segment))
    in
    { t_samples = n; t_mean_e2e = e2e; t_cells = cells }
  end

(* --- Actual-vs-clone divergence --------------------------------------- *)

type div_row = {
  d_tier : string;
  d_segment : string;
  d_actual_mean : float;
  d_clone_mean : float;
  d_actual_share_pct : float;
  d_clone_share_pct : float;
  d_err_pp : float;
}

type divergence = {
  v_app : string;
  v_plan : string option;
  v_actual : table;
  v_clone : table;
  v_rows : div_row list;
}

let divergence ~app ?plan ~actual ~clone () =
  let cell_tbl (t : table) =
    let tbl = Hashtbl.create 32 in
    List.iter (fun c -> Hashtbl.replace tbl (c.c_tier, c.c_segment) c) t.t_cells;
    tbl
  in
  let a_tbl = cell_tbl actual and c_tbl = cell_tbl clone in
  let keys =
    List.sort_uniq compare
      (List.map (fun c -> (c.c_tier, c.c_segment)) (actual.t_cells @ clone.t_cells))
  in
  let rows =
    List.map
      (fun (tier, seg) ->
        let mean tbl = match Hashtbl.find_opt tbl (tier, seg) with Some c -> c.c_mean | None -> 0.0 in
        let share tbl =
          match Hashtbl.find_opt tbl (tier, seg) with Some c -> c.c_share_pct | None -> 0.0
        in
        let a_share = share a_tbl and c_share = share c_tbl in
        {
          d_tier = tier;
          d_segment = seg;
          d_actual_mean = mean a_tbl;
          d_clone_mean = mean c_tbl;
          d_actual_share_pct = a_share;
          d_clone_share_pct = c_share;
          d_err_pp = c_share -. a_share;
        })
      keys
    |> List.sort (fun a b ->
           compare
             (Float.abs b.d_err_pp, a.d_tier, a.d_segment)
             (Float.abs a.d_err_pp, b.d_tier, b.d_segment))
  in
  { v_app = app; v_plan = plan; v_actual = actual; v_clone = clone; v_rows = rows }

let of_comparison ~app ?plan (c : Ditto_core.Pipeline.comparison) =
  let traces side (r : Ditto_app.Service.result) =
    match r.Ditto_app.Service.reqtrace with
    | Some rq -> Rq.traces rq
    | None ->
        invalid_arg
          (Printf.sprintf
             "Critpath.of_comparison: the %s run carried no Reqtrace collector (enable \
              Ditto_obs.Reqtrace before validating)"
             side)
  in
  let actual = of_traces (traces "actual" c.Ditto_core.Pipeline.actual_service) in
  let clone = of_traces (traces "clone" c.Ditto_core.Pipeline.synthetic_service) in
  divergence ~app ?plan ~actual ~clone ()

let worst d = match d.v_rows with [] -> None | r :: _ -> Some r

let print d =
  let ms v = Printf.sprintf "%.3f" (v *. 1e3) in
  let rows =
    List.map
      (fun r ->
        [
          r.d_tier;
          r.d_segment;
          ms r.d_actual_mean;
          ms r.d_clone_mean;
          Printf.sprintf "%.1f%%" r.d_actual_share_pct;
          Printf.sprintf "%.1f%%" r.d_clone_share_pct;
          Printf.sprintf "%+.1f" r.d_err_pp;
        ])
      d.v_rows
  in
  let title =
    Printf.sprintf "critical-path divergence: %s%s (%d actual / %d clone traces, mean e2e %.2f / %.2f ms)"
      d.v_app
      (match d.v_plan with None -> "" | Some p -> " under " ^ p)
      d.v_actual.t_samples d.v_clone.t_samples (d.v_actual.t_mean_e2e *. 1e3)
      (d.v_clone.t_mean_e2e *. 1e3)
  in
  Table.print ~title
    ~header:[ "tier"; "segment"; "actual (ms)"; "clone (ms)"; "actual share"; "clone share"; "err pp" ]
    rows;
  match worst d with
  | None -> Printf.printf "  CRITPATH worst=none err_pp=0.0 (no sampled traces)\n"
  | Some r ->
      Printf.printf "  CRITPATH worst=%s/%s err_pp=%+.2f (%s %s: actual %.1f%% vs clone %.1f%% of e2e)\n"
        r.d_tier r.d_segment r.d_err_pp r.d_tier r.d_segment r.d_actual_share_pct
        r.d_clone_share_pct

let flat d =
  let plan = Option.value ~default:"steady" d.v_plan in
  let key rest = Printf.sprintf "%s/%s/%s" d.v_app plan rest in
  let abs_rows = List.map (fun r -> (r, Float.abs r.d_err_pp)) d.v_rows in
  let worst_pp = List.fold_left (fun a (_, e) -> Float.max a e) 0.0 abs_rows in
  let mean_pp =
    match abs_rows with
    | [] -> 0.0
    | _ ->
        List.fold_left (fun a (_, e) -> a +. e) 0.0 abs_rows
        /. float_of_int (List.length abs_rows)
  in
  List.map
    (fun (r, e) -> (key (Printf.sprintf "%s/%s/share_err_pp" r.d_tier r.d_segment), e))
    abs_rows
  @ [ (key "worst_share_err_pp", worst_pp); (key "mean_share_err_pp", mean_pp) ]
