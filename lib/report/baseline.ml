module J = Ditto_util.Jsonx

type t = { tolerance_pp : (string * float) list; metrics : (string * float) list }
type regression = { key : string; current : float; baseline : float; allowed_pp : float }

let default_tolerances =
  [
    ("default", 2.0);
    (* counter axes: LLC and branch are the paper's own noisiest counters
       (§6.2.1 reports 12.1% and 9.9% there) *)
    ("llc", 4.0);
    ("LLC", 4.0);
    ("branch", 3.0);
    ("Branch", 3.0);
    (* service-level rows move with queueing, so the tail gets more slack *)
    ("throughput", 3.0);
    ("lat_avg", 10.0);
    ("lat_p95", 12.0);
    ("lat_p99", 15.0);
    ("latency avg", 10.0);
    ("latency p95", 12.0);
    ("latency p99", 15.0);
    (* chaos keys: failure-mode fidelity moves with every queueing shift,
       so the gate is wider than the steady-state rows *)
    ("error_rate_pp", 4.0);
    ("p99_err_pct", 20.0);
    ("throughput_err_pct", 10.0);
    (* timeline keys: single-window errors are noisier than whole-run
       aggregates (a 25 ms window holds ~1/24 of the samples), and
       reconvergence moves in whole windows — its tolerance is absolute
       seconds, sized to ~10 windows of a default 0.6 s run *)
    ("worst_window_err_pct", 30.0);
    ("mean_window_err_pct", 10.0);
    ("reconverge_seconds", 0.25);
    (* critpath keys: per-cell critical-path shares ride on a few hundred
       sampled requests, so a single-cell share swing is noisier than the
       whole-run counter rows; the worst-cell summary gets a bit more
       slack than the mean *)
    ("share_err_pp", 3.0);
    ("worst_share_err_pp", 4.0);
    ("mean_share_err_pp", 2.0);
    (* surge keys: overload behaviour rides on when queues tip over, so a
       one-window shift moves the shed-rate and trajectory cells by whole
       windows; onset error is absolute seconds (~4 windows of a default
       0.6 s run) *)
    ("shed_fraction_err_pp", 5.0);
    ("worst_shed_window_err_pp", 15.0);
    ("replica_traj_err_pp", 20.0);
    ("saturation_onset_err_s", 0.1);
    (* wall-clock budgets (absolute seconds of slack over the pinned
       value, not percentage points): per-experiment stage budget, with a
       wider gate on the whole-bench total since its noise is the sum of
       the stages' *)
    ("wall_seconds", 15.0);
    ("experiments/total/wall_seconds", 45.0);
    (* synth-scale stages run for minutes, not seconds, so the 15s default
       would gate them at ~2% — tighter than run-to-run engine variance.
       Give them ~15% of their pinned walls instead. *)
    ("experiments/synth100/wall_seconds", 120.0);
    ("experiments/synth500/wall_seconds", 60.0);
    ("experiments/synth1000/wall_seconds", 120.0);
  ]

let last_component key =
  match String.rindex_opt key '/' with
  | None -> key
  | Some i -> String.sub key (i + 1) (String.length key - i - 1)

let tolerance_for t key =
  match List.assoc_opt key t.tolerance_pp with
  | Some v -> v
  | None -> (
      match List.assoc_opt (last_component key) t.tolerance_pp with
      | Some v -> v
      | None -> Option.value ~default:2.0 (List.assoc_opt "default" t.tolerance_pp))

let obj_entries = function J.Obj kvs -> kvs | _ -> []

let flatten json =
  let errors =
    obj_entries (J.member "mean_error_pct" json)
    |> List.map (fun (axis, v) -> ("mean_error_pct/" ^ axis, J.to_float v))
  in
  let scorecards =
    obj_entries (J.member "scorecards" json)
    |> List.concat_map (fun (app, card) ->
           match J.member "rows" card with
           | J.List rows ->
               List.map
                 (fun row ->
                   ( Printf.sprintf "scorecards/%s/%s/%s" app
                       (J.to_str (J.member "tier" row))
                       (J.to_str (J.member "metric" row)),
                     J.to_float (J.member "err_pct" row) ))
                 rows
           | _ -> [])
  in
  let chaos =
    obj_entries (J.member "chaos" json)
    |> List.map (fun (key, v) -> ("chaos/" ^ key, J.to_float v))
  in
  let timeline =
    obj_entries (J.member "timeline" json)
    |> List.map (fun (key, v) -> ("timeline/" ^ key, J.to_float v))
  in
  let critpath =
    obj_entries (J.member "critpath" json)
    |> List.map (fun (key, v) -> ("critpath/" ^ key, J.to_float v))
  in
  let surge =
    obj_entries (J.member "surge" json)
    |> List.map (fun (key, v) -> ("surge/" ^ key, J.to_float v))
  in
  (* Wall-clock budgets: per-experiment stage seconds plus the bench
     total, so `bench --check` gates performance regressions alongside
     fidelity ones. The keys end in "wall_seconds" to pick up the
     absolute-seconds tolerance entries. *)
  let wall =
    let per_experiment =
      match J.member "experiments" json with
      | J.List rows ->
          List.map
            (fun row ->
              ( Printf.sprintf "experiments/%s/wall_seconds" (J.to_str (J.member "name" row)),
                J.to_float (J.member "seconds" row) ))
            rows
      | _ -> []
    in
    match J.member "total_seconds" json with
    | J.Num s -> per_experiment @ [ ("experiments/total/wall_seconds", s) ]
    | _ -> per_experiment
  in
  errors @ scorecards @ chaos @ timeline @ critpath @ surge @ wall

let make ?(tolerance_pp = default_tolerances) metrics = { tolerance_pp; metrics }

let merge ~into:base current =
  (* Tolerances the baseline pinned win, but metric families introduced
     after the baseline was written (e.g. the chaos keys) get their
     code-default slack instead of silently falling back to "default". *)
  let tolerance_pp =
    base.tolerance_pp
    @ List.filter (fun (k, _) -> not (List.mem_assoc k base.tolerance_pp)) default_tolerances
  in
  (* Hash-index both sides: with per-tier scorecard rows from synth-scale
     graphs the metric list runs to thousands of keys, and the pairwise
     assoc scans go quadratic. *)
  let current_tbl = Hashtbl.create 256 in
  List.iter (fun (k, v) -> Hashtbl.replace current_tbl k v) current;
  let base_keys = Hashtbl.create 256 in
  List.iter (fun (k, _) -> Hashtbl.replace base_keys k ()) base.metrics;
  let metrics =
    List.map
      (fun (k, v) ->
        (k, match Hashtbl.find_opt current_tbl k with Some v' -> v' | None -> v))
      base.metrics
    @ List.filter (fun (k, _) -> not (Hashtbl.mem base_keys k)) current
  in
  { tolerance_pp; metrics }

let diff t current =
  let current_tbl = Hashtbl.create 256 in
  List.iter (fun (k, v) -> Hashtbl.replace current_tbl k v) current;
  let regressions, checked =
    List.fold_left
      (fun (regs, n) (key, base) ->
        match Hashtbl.find_opt current_tbl key with
        | None -> (regs, n)
        | Some cur ->
            let allowed_pp = tolerance_for t key in
            if cur > base +. allowed_pp then
              ({ key; current = cur; baseline = base; allowed_pp } :: regs, n + 1)
            else (regs, n + 1))
      ([], 0) t.metrics
  in
  (List.sort (fun a b -> compare a.key b.key) regressions, checked)

let num_obj kvs = J.Obj (List.map (fun (k, v) -> (k, J.Num v)) kvs)

let to_json t =
  J.Obj
    [
      ("schema_version", J.int 1);
      ("tolerance_pp", num_obj t.tolerance_pp);
      ("metrics", num_obj t.metrics);
    ]

let of_json json =
  {
    tolerance_pp =
      obj_entries (J.member "tolerance_pp" json) |> List.map (fun (k, v) -> (k, J.to_float v));
    metrics =
      obj_entries (J.member "metrics" json) |> List.map (fun (k, v) -> (k, J.to_float v));
  }

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_json (J.of_string s)

let save ~path t =
  let oc = open_out path in
  output_string oc (J.to_string ~pretty:true (to_json t));
  output_char oc '\n';
  close_out oc
