test/test_queueing.ml: Alcotest Array Ditto_app Ditto_apps Ditto_core Ditto_trace Ditto_uarch Ditto_util Float List Measure Metrics Queueing Runner Service Spec
