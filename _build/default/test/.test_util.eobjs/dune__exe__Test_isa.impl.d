test/test_isa.ml: Alcotest Array Block Ditto_isa Ditto_util Float Hashtbl Iclass Iform List Printf QCheck QCheck_alcotest
