test/test_os.ml: Alcotest Ditto_isa Ditto_os Ditto_sim Engine Float List Page_cache Sched Syscall
