test/test_util.ml: Alcotest Array Cluster Dist Ditto_util Float Fun Gen Histogram List Printf QCheck QCheck_alcotest Rng Stats String Table Tree_edit
