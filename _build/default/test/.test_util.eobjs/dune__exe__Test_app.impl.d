test/test_app.ml: Alcotest Array Block Ditto_app Ditto_isa Ditto_sim Ditto_uarch Ditto_util Iform Layout List Machine Measure Metrics Runner Service Spec
