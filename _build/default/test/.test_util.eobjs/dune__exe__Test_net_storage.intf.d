test/test_net_storage.mli:
