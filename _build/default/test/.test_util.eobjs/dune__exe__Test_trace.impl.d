test/test_trace.ml: Alcotest Collector Dag Ditto_app Ditto_apps Ditto_trace Ditto_uarch Format List Printf Runner Service Span Spec String
