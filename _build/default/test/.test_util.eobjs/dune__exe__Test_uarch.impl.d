test/test_uarch.ml: Alcotest Block Branch_pred Cache Core_model Counters Ditto_isa Ditto_uarch Ditto_util Float Iform List Memory Platform Prefetcher
