test/test_net_storage.ml: Alcotest Ditto_net Ditto_sim Ditto_storage Ditto_uarch Engine Float List Nic Socket
