test/test_integration.ml: Alcotest Ditto_app Ditto_apps Ditto_core Ditto_trace Ditto_tune Ditto_uarch Ditto_util Float Lazy List Metrics Printf Runner Service Spec
