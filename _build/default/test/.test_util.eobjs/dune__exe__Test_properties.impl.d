test/test_properties.ml: Alcotest Array Block Ditto_isa Ditto_profile Ditto_sim Ditto_util Float Gen Iform List QCheck QCheck_alcotest
