test/test_extensions.ml: Alcotest Array Ditto_app Ditto_apps Ditto_gen Ditto_profile Ditto_trace Ditto_uarch Ditto_util Filename Float Lazy List Printf Runner Service Spec String Sys Unix
