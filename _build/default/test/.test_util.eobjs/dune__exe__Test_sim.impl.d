test/test_sim.ml: Alcotest Ditto_sim Engine List Option
