(* Tests for the extension modules: JSON, profile serialisation, TLBs,
   KS distance, memory-trace export. *)
module J = Ditto_util.Jsonx
module Stats = Ditto_util.Stats
module Tlb = Ditto_uarch.Tlb
open Ditto_app

let check_close msg tolerance expected actual =
  if Float.abs (expected -. actual) > tolerance then
    Alcotest.failf "%s: expected %g within %g, got %g" msg expected tolerance actual

(* {1 Jsonx} *)

let roundtrip v = J.of_string (J.to_string v)
let roundtrip_pretty v = J.of_string (J.to_string ~pretty:true v)

let sample =
  J.Obj
    [
      ("name", J.Str "a \"quoted\" string\nwith newline");
      ("count", J.int 42);
      ("pi", J.Num 3.14159);
      ("neg", J.Num (-2.5e-3));
      ("flag", J.Bool true);
      ("nothing", J.Null);
      ("items", J.List [ J.int 1; J.int 2; J.Str "x" ]);
      ("nested", J.Obj [ ("inner", J.List []) ]);
    ]

let test_json_roundtrip () =
  Alcotest.(check bool) "compact" true (roundtrip sample = sample);
  Alcotest.(check bool) "pretty" true (roundtrip_pretty sample = sample)

let test_json_accessors () =
  Alcotest.(check int) "member int" 42 (J.to_int (J.member "count" sample));
  Alcotest.(check bool) "member bool" true (J.to_bool (J.member "flag" sample));
  Alcotest.(check bool) "absent is Null" true (J.member "missing" sample = J.Null);
  Alcotest.(check int) "list length" 3 (List.length (J.to_list (J.member "items" sample)))

let test_json_parse_basics () =
  Alcotest.(check bool) "null" true (J.of_string "null" = J.Null);
  Alcotest.(check bool) "spaces" true (J.of_string "  [ 1 , 2 ]  " = J.List [ J.int 1; J.int 2 ]);
  Alcotest.(check bool) "exp notation" true (J.of_string "1e3" = J.Num 1000.0);
  Alcotest.(check bool) "escape" true (J.of_string {|"a\nb"|} = J.Str "a\nb")

let test_json_parse_errors () =
  List.iter
    (fun bad ->
      match J.of_string bad with
      | exception J.Parse_error _ -> ()
      | _ -> Alcotest.failf "should reject %S" bad)
    [ ""; "{"; "[1,"; "tru"; "\"unterminated"; "{\"a\" 1}"; "[1] trailing" ]

let test_json_float_roundtrip () =
  List.iter
    (fun f ->
      let v = roundtrip (J.Num f) in
      check_close (Printf.sprintf "float %g" f) (Float.abs f *. 1e-12) f (J.to_float v))
    [ 0.0; 1.0; -1.5; 3.14159265358979; 1e-9; 12345678.9 ]

(* {1 Profile serialisation} *)

let mongodb_profile =
  lazy
    (let app = Ditto_apps.Mongodb.spec () in
     Ditto_profile.Tier_profile.profile_app ~requests:40 ~seed:5 app)

let test_profile_roundtrip () =
  let p = Lazy.force mongodb_profile in
  let json = Ditto_profile.Profile_io.to_json p in
  let p2 = Ditto_profile.Profile_io.of_json json in
  (* Serialisation is stable: a second encode of the decoded value is
     byte-identical (structural equality of the records does not hold for
     closures, so compare the canonical JSON). *)
  let json2 = Ditto_profile.Profile_io.to_json p2 in
  Alcotest.(check string) "canonical JSON stable" (J.to_string json) (J.to_string json2);
  Alcotest.(check int) "tier count" 1 (List.length p2.Ditto_profile.Tier_profile.tiers);
  let t1 = List.hd p.Ditto_profile.Tier_profile.tiers in
  let t2 = List.hd p2.Ditto_profile.Tier_profile.tiers in
  check_close "insts preserved" 1e-9
    t1.Ditto_profile.Tier_profile.instmix.Ditto_profile.Instmix.insts_per_request
    t2.Ditto_profile.Tier_profile.instmix.Ditto_profile.Instmix.insts_per_request;
  Alcotest.(check bool) "background preserved" true
    (t2.Ditto_profile.Tier_profile.background <> None)

let test_profile_file_roundtrip () =
  let p = Lazy.force mongodb_profile in
  let path = Filename.temp_file "ditto_test" ".json" in
  Ditto_profile.Profile_io.save path p;
  let p2 = Ditto_profile.Profile_io.load path in
  Sys.remove path;
  Alcotest.(check string) "app name" p.Ditto_profile.Tier_profile.app_name
    p2.Ditto_profile.Tier_profile.app_name

let test_profile_clone_from_loaded () =
  let p = Lazy.force mongodb_profile in
  let path = Filename.temp_file "ditto_test" ".json" in
  Ditto_profile.Profile_io.save path p;
  let clone = Ditto_gen.Clone.synth_app (Ditto_profile.Profile_io.load path) in
  Sys.remove path;
  Alcotest.(check string) "clone from file" "mongodb_synth" clone.Spec.app_name;
  (* and it runs *)
  let load = Service.load ~qps:500.0 ~open_loop:false ~duration:0.3 () in
  let out = Runner.run (Runner.config Ditto_uarch.Platform.a) ~load clone in
  Alcotest.(check bool) "serves requests" true
    (out.Runner.end_to_end.Ditto_util.Stats.count > 50)

let test_profile_version_check () =
  let p = Lazy.force mongodb_profile in
  let json = Ditto_profile.Profile_io.to_json p in
  let doctored =
    match json with
    | J.Obj fields ->
        J.Obj (List.map (fun (k, v) -> if k = "version" then (k, J.int 999) else (k, v)) fields)
    | _ -> Alcotest.fail "expected object"
  in
  (match Ditto_profile.Profile_io.of_json doctored with
  | exception J.Parse_error _ -> ()
  | _ -> Alcotest.fail "future version must be rejected");
  match Ditto_profile.Profile_io.of_json (J.Obj [ ("format", J.Str "nope") ]) with
  | exception J.Parse_error _ -> ()
  | _ -> Alcotest.fail "wrong format must be rejected"

let test_profile_dag_roundtrip () =
  let app = Ditto_apps.Social_network.spec () in
  let cfg = Runner.config ~requests:30 ~seed:9 Ditto_uarch.Platform.a in
  let load = Service.load ~qps:300.0 ~duration:0.3 () in
  let out = Runner.run cfg ~load app in
  let results name = List.assoc name out.Runner.measured in
  let spans = Ditto_trace.Collector.collect ~entry:"frontend" ~results ~samples:64 ~seed:3 in
  let dag = Ditto_trace.Dag.of_spans spans in
  let profile =
    Ditto_profile.Tier_profile.profile_app ~requests:20 ~seed:4 ~dag app
  in
  let p2 = Ditto_profile.Profile_io.of_json (Ditto_profile.Profile_io.to_json profile) in
  match p2.Ditto_profile.Tier_profile.dag with
  | Some d2 ->
      Alcotest.(check int) "edges preserved"
        (List.length dag.Ditto_trace.Dag.edges)
        (List.length d2.Ditto_trace.Dag.edges)
  | None -> Alcotest.fail "dag lost in round trip"

(* {1 TLB} *)

let test_tlb_hit_after_fill () =
  let t = Tlb.create () in
  Alcotest.(check bool) "first access walks" true (Tlb.access t 0x1000 >= 30);
  Alcotest.(check int) "second access free" 0 (Tlb.access t 0x1000);
  Alcotest.(check int) "same page free" 0 (Tlb.access t 0x1fff);
  Alcotest.(check bool) "different page walks" true (Tlb.access t 0x2000 > 0)

let test_tlb_capacity () =
  let t = Tlb.create ~l1_entries:4 ~stlb_entries:8 () in
  (* touch 16 pages: beyond both levels *)
  for p = 0 to 15 do
    ignore (Tlb.access t (p * 4096))
  done;
  (* revisiting the oldest pages walks again *)
  Alcotest.(check bool) "oldest evicted" true (Tlb.access t 0 > 0);
  Alcotest.(check bool) "misses counted" true (Tlb.misses t >= 16);
  Alcotest.(check int) "lookups counted" 17 (Tlb.lookups t)

let test_tlb_stlb_tier () =
  let t = Tlb.create ~l1_entries:2 ~stlb_entries:64 ~walk_cycles:30 () in
  (* fill more pages than L1 but fewer than STLB; revisit -> intermediate cost *)
  for p = 0 to 7 do
    ignore (Tlb.access t (p * 4096))
  done;
  let c = Tlb.access t 0 in
  Alcotest.(check bool) "stlb hit costs less than a walk" true (c > 0 && c < 30)

let test_tlb_flush () =
  let t = Tlb.create () in
  ignore (Tlb.access t 0);
  Tlb.flush t;
  Alcotest.(check bool) "walk after flush" true (Tlb.access t 0 >= 30)

let test_memory_counts_tlb_misses () =
  let mem = Ditto_uarch.Memory.create Ditto_uarch.Platform.a ~ncores:1 in
  (* stream 1000 distinct pages *)
  for p = 0 to 999 do
    ignore (Ditto_uarch.Memory.access_data mem ~core:0 ~addr:(p * 4096) ~write:false ~shared:false)
  done;
  let c = Ditto_uarch.Memory.counters mem 0 in
  Alcotest.(check bool) "dtlb misses recorded" true (c.Ditto_uarch.Counters.dtlb_misses > 500)

(* {1 KS distance} *)

let test_ks_identical () =
  let a = Array.init 100 float_of_int in
  check_close "identical samples" 1e-9 0.0 (Stats.ks_distance a a)

let test_ks_disjoint () =
  let a = Array.init 50 float_of_int in
  let b = Array.init 50 (fun i -> float_of_int (i + 1000)) in
  check_close "disjoint samples" 1e-9 1.0 (Stats.ks_distance a b)

let test_ks_shifted () =
  let a = Array.init 1000 (fun i -> float_of_int (i mod 100)) in
  let b = Array.init 1000 (fun i -> float_of_int (i mod 100) +. 20.0) in
  let d = Stats.ks_distance a b in
  check_close "20% shift of uniform(0,100)" 0.03 0.2 d

let test_ks_symmetric () =
  let rng = Ditto_util.Rng.create 3 in
  let a = Array.init 200 (fun _ -> Ditto_util.Rng.float rng 10.0) in
  let b = Array.init 300 (fun _ -> Ditto_util.Rng.float rng 12.0) in
  check_close "symmetry" 1e-9 (Stats.ks_distance a b) (Stats.ks_distance b a)

let test_ks_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.ks_distance: empty") (fun () ->
      ignore (Stats.ks_distance [||] [| 1.0 |]))

(* {1 Trace export} *)

let test_trace_export () =
  let app = Ditto_apps.Redis.spec () in
  let tier = List.hd app.Spec.tiers in
  let accesses = Ditto_gen.Trace_export.collect ~tier ~requests:10 ~seed:1 ~max_accesses:5000 in
  Alcotest.(check bool) "accesses collected" true (List.length accesses > 100);
  Alcotest.(check bool) "bounded" true (List.length accesses <= 5000);
  let has_write = List.exists (fun a -> a.Ditto_gen.Trace_export.write) accesses in
  let has_read = List.exists (fun a -> not a.Ditto_gen.Trace_export.write) accesses in
  Alcotest.(check bool) "reads and writes" true (has_read && has_write);
  let text = Ditto_gen.Trace_export.to_ramulator accesses in
  let lines = String.split_on_char '\n' (String.trim text) in
  Alcotest.(check int) "one line per access" (List.length accesses) (List.length lines);
  List.iter
    (fun line ->
      Alcotest.(check bool)
        (Printf.sprintf "line format: %s" line)
        true
        (String.length line > 4
        && String.sub line 0 2 = "0x"
        && (String.sub line (String.length line - 1) 1 = "R"
           || String.sub line (String.length line - 1) 1 = "W")))
    lines

let test_trace_export_file () =
  let app = Ditto_apps.Redis.spec () in
  let tier = List.hd app.Spec.tiers in
  let path = Filename.temp_file "ditto_trace" ".txt" in
  let n = Ditto_gen.Trace_export.save ~path ~tier ~requests:5 ~seed:2 ~max_accesses:1000 () in
  let size = (Unix.stat path).Unix.st_size in
  Sys.remove path;
  Alcotest.(check bool) "file written" true (n > 0 && size > n * 5)

let () =
  Alcotest.run "extensions"
    [
      ( "jsonx",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
          Alcotest.test_case "parse basics" `Quick test_json_parse_basics;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "float roundtrip" `Quick test_json_float_roundtrip;
        ] );
      ( "profile_io",
        [
          Alcotest.test_case "roundtrip" `Quick test_profile_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_profile_file_roundtrip;
          Alcotest.test_case "clone from file" `Quick test_profile_clone_from_loaded;
          Alcotest.test_case "version check" `Quick test_profile_version_check;
          Alcotest.test_case "dag roundtrip" `Slow test_profile_dag_roundtrip;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "hit after fill" `Quick test_tlb_hit_after_fill;
          Alcotest.test_case "capacity" `Quick test_tlb_capacity;
          Alcotest.test_case "stlb tier" `Quick test_tlb_stlb_tier;
          Alcotest.test_case "flush" `Quick test_tlb_flush;
          Alcotest.test_case "memory integration" `Quick test_memory_counts_tlb_misses;
        ] );
      ( "ks",
        [
          Alcotest.test_case "identical" `Quick test_ks_identical;
          Alcotest.test_case "disjoint" `Quick test_ks_disjoint;
          Alcotest.test_case "shifted" `Quick test_ks_shifted;
          Alcotest.test_case "symmetric" `Quick test_ks_symmetric;
          Alcotest.test_case "empty" `Quick test_ks_empty_rejected;
        ] );
      ( "trace_export",
        [
          Alcotest.test_case "collect/format" `Quick test_trace_export;
          Alcotest.test_case "file" `Quick test_trace_export_file;
        ] );
    ]
