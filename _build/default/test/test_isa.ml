(* Tests for the ISA layer: iform catalog invariants, block construction,
   bitmask branch sequences, memory-pattern resolution. *)
open Ditto_isa
module Rng = Ditto_util.Rng

let check_close msg tolerance expected actual =
  if Float.abs (expected -. actual) > tolerance then
    Alcotest.failf "%s: expected %g within %g, got %g" msg expected tolerance actual

(* {1 Iform catalog} *)

let test_catalog_ids_dense () =
  Array.iteri
    (fun i f -> Alcotest.(check int) ("id of " ^ f.Iform.name) i f.Iform.id)
    Iform.catalog

let test_catalog_unique_names () =
  let names = Array.to_list (Array.map (fun f -> f.Iform.name) Iform.catalog) in
  Alcotest.(check int) "no duplicate names"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let test_catalog_sane_fields () =
  Array.iter
    (fun f ->
      Alcotest.(check bool) (f.Iform.name ^ " uops > 0") true (f.Iform.uops > 0);
      Alcotest.(check bool) (f.Iform.name ^ " bytes > 0") true (f.Iform.bytes > 0);
      Alcotest.(check bool) (f.Iform.name ^ " has a port") true (f.Iform.ports <> 0);
      Alcotest.(check bool) (f.Iform.name ^ " latency >= 0") true (f.Iform.latency >= 0))
    Iform.catalog

let test_memory_iforms_have_width () =
  List.iter
    (fun (f : Iform.t) ->
      Alcotest.(check bool) (f.Iform.name ^ " load width") true (f.Iform.mem_width > 0))
    Iform.loads;
  List.iter
    (fun (f : Iform.t) ->
      Alcotest.(check bool) (f.Iform.name ^ " store width") true (f.Iform.mem_width > 0))
    Iform.stores

let test_by_name () =
  let f = Iform.by_name "ADD_GPR64_GPR64" in
  Alcotest.(check bool) "class" true (f.Iform.klass = Iclass.Int_alu);
  Alcotest.check_raises "unknown" Not_found (fun () -> ignore (Iform.by_name "BOGUS"))

let test_branch_iforms_on_port6 () =
  List.iter
    (fun (f : Iform.t) ->
      Alcotest.(check bool) (f.Iform.name ^ " uses p6") true
        (f.Iform.ports land Iform.port_p6 <> 0))
    Iform.branches

let test_feature_distance_metric () =
  let a = Iform.by_name "ADD_GPR64_GPR64"
  and b = Iform.by_name "SUB_GPR64_GPR64"
  and c = Iform.by_name "DIVSD_XMM_XMM" in
  Alcotest.(check (float 1e-9)) "self distance" 0.0 (Iform.feature_distance a a);
  Alcotest.(check bool) "symmetry" true
    (Iform.feature_distance a c = Iform.feature_distance c a);
  Alcotest.(check bool) "similar closer than different" true
    (Iform.feature_distance a b < Iform.feature_distance a c)

let test_iclass_predicates () =
  Alcotest.(check bool) "load reads" true (Iclass.is_memory_read Iclass.Load);
  Alcotest.(check bool) "store writes" true (Iclass.is_memory_write Iclass.Store);
  Alcotest.(check bool) "lock both" true
    (Iclass.is_memory_read Iclass.Lock_rmw && Iclass.is_memory_write Iclass.Lock_rmw);
  Alcotest.(check bool) "branch" true (Iclass.is_branch Iclass.Branch_cond);
  Alcotest.(check bool) "call is control not branch" true
    (Iclass.is_control Iclass.Call && not (Iclass.is_branch Iclass.Call));
  Alcotest.(check int) "all classes listed" 21 (List.length Iclass.all)

(* {1 Blocks} *)

let region = Block.make_region ~base:0x1000_0000 ~bytes:(1 lsl 20) ~shared:false

let test_block_addresses () =
  let t1 = Block.temp (Iform.by_name "ADD_GPR64_GPR64") ~dst:0 ~srcs:[| 1 |] in
  let t2 = Block.temp (Iform.by_name "MOV_GPR64_IMM") ~dst:2 in
  let b = Block.make ~label:"t" ~code_base:0x4000 [ t1; t2 ] in
  Alcotest.(check int) "first addr" 0x4000 b.Block.addrs.(0);
  Alcotest.(check int) "second addr offset by size" (0x4000 + 3) b.Block.addrs.(1);
  Alcotest.(check int) "code bytes"
    (t1.Block.iform.Iform.bytes + t2.Block.iform.Iform.bytes)
    b.Block.code_bytes;
  Alcotest.(check int) "static insts" 2 b.Block.static_insts

let test_region_alignment () =
  let raised =
    try
      ignore (Block.make_region ~base:0x1001 ~bytes:64 ~shared:false);
      false
    with Assert_failure _ -> true
  in
  Alcotest.(check bool) "unaligned base rejected" true raised

(* {1 Branch outcome sequences (the bitmask idiom)} *)

let measure_rates ~m ~n count =
  let taken = ref 0 and transitions = ref 0 and last = ref None in
  for k = 0 to count - 1 do
    let t = Block.branch_outcome ~m ~n k in
    if t then incr taken;
    (match !last with Some p when p <> t -> incr transitions | _ -> ());
    last := Some t
  done;
  (float_of_int !taken /. float_of_int count, float_of_int !transitions /. float_of_int count)

let test_branch_rates_exact () =
  List.iter
    (fun (m, n) ->
      let taken, trans = measure_rates ~m ~n 65536 in
      check_close (Printf.sprintf "taken m=%d n=%d" m n) 0.01 (2.0 ** float_of_int (-m)) taken;
      let expected_trans =
        if m = 0 then 0.0 (* constant direction: no transitions *)
        else Float.min (2.0 ** float_of_int (-n)) (2.0 ** float_of_int (1 - m))
      in
      check_close (Printf.sprintf "transition m=%d n=%d" m n) 0.01 expected_trans trans)
    [ (1, 1); (1, 4); (2, 3); (3, 5); (5, 2); (0, 3); (4, 8) ]

let prop_branch_taken_rate =
  QCheck.Test.make ~name:"taken rate ~ 2^-m" ~count:60
    QCheck.(pair (int_range 0 8) (int_range 0 8))
    (fun (m, n) ->
      let taken, _ = measure_rates ~m ~n 65536 in
      Float.abs (taken -. (2.0 ** float_of_int (-m))) < 0.02)

let test_branch_deterministic () =
  for k = 0 to 100 do
    Alcotest.(check bool) "pure function" (Block.branch_outcome ~m:2 ~n:3 k)
      (Block.branch_outcome ~m:2 ~n:3 k)
  done

(* {1 Memory pattern resolution} *)

let resolve temp rng = Block.resolve_mem ~rng temp

let test_fixed_offset () =
  let t =
    Block.temp (Iform.by_name "MOV_GPR64_MEM") ~dst:0 ~srcs:[| 1 |]
      ~mem:(Block.Fixed_offset { region; offset = 256 })
  in
  let rng = Rng.create 1 in
  let a1, sh = resolve t rng in
  let a2, _ = resolve t rng in
  Alcotest.(check int) "fixed" (0x1000_0000 + 256) a1;
  Alcotest.(check int) "stable" a1 a2;
  Alcotest.(check bool) "not shared" false sh

let test_no_mem () =
  let t = Block.temp (Iform.by_name "ADD_GPR64_GPR64") ~dst:0 ~srcs:[| 1 |] in
  let rng = Rng.create 1 in
  Alcotest.(check (pair int bool)) "none" (-1, false) (resolve t rng)

let test_seq_stride_advances_and_wraps () =
  let t =
    Block.temp (Iform.by_name "MOV_GPR64_MEM") ~dst:0 ~srcs:[| 1 |]
      ~mem:(Block.Seq_stride { region; start = 0; stride = 64; span = 192 })
  in
  let rng = Rng.create 1 in
  let base = region.Block.region_base in
  Alcotest.(check int) "pos 0" base (fst (resolve t rng));
  Alcotest.(check int) "pos 1" (base + 64) (fst (resolve t rng));
  Alcotest.(check int) "pos 2" (base + 128) (fst (resolve t rng));
  Alcotest.(check int) "wraps" base (fst (resolve t rng))

let test_rand_uniform_within_span () =
  let t =
    Block.temp (Iform.by_name "MOV_GPR64_MEM") ~dst:0 ~srcs:[| 1 |]
      ~mem:(Block.Rand_uniform { region; start = 4096; span = 8192 })
  in
  let rng = Rng.create 2 in
  for _ = 1 to 500 do
    let a, _ = resolve t rng in
    Alcotest.(check bool) "within window" true
      (a >= region.Block.region_base + 4096 && a < region.Block.region_base + 4096 + 8192);
    Alcotest.(check int) "line aligned" 0 (a land 63)
  done

let test_chase_serial_and_bounded () =
  let t =
    Block.temp (Iform.by_name "MOV_GPR64_MEM") ~dst:11 ~srcs:[| 11 |]
      ~mem:(Block.Chase { region; start = 0; span = 65536 })
  in
  let rng = Rng.create 3 in
  let seen = Hashtbl.create 64 in
  for _ = 1 to 200 do
    let a, _ = resolve t rng in
    Alcotest.(check bool) "in window" true
      (a >= region.Block.region_base && a < region.Block.region_base + 65536);
    Hashtbl.replace seen a ()
  done;
  Alcotest.(check bool) "chain visits many lines" true (Hashtbl.length seen > 32)

let test_shared_region_flag () =
  let shared = Block.make_region ~base:0x2000_0000 ~bytes:4096 ~shared:true in
  let t =
    Block.temp (Iform.by_name "MOV_MEM_GPR64") ~srcs:[| 1 |]
      ~mem:(Block.Fixed_offset { region = shared; offset = 0 })
  in
  let rng = Rng.create 4 in
  Alcotest.(check bool) "shared propagated" true (snd (resolve t rng))

(* {1 iter_stream} *)

let test_iter_stream_counts () =
  let temps =
    [
      Block.temp (Iform.by_name "ADD_GPR64_GPR64") ~dst:0 ~srcs:[| 1 |];
      Block.temp (Iform.by_name "JNZ_REL") ~branch:{ Block.m = 1; n = 2; invert = false };
    ]
  in
  let b = Block.make ~label:"s" ~code_base:0x8000 temps in
  let events = ref 0 and branches = ref 0 in
  Block.iter_stream ~rng:(Rng.create 5) ~iterations:10 b (fun ev ->
      incr events;
      if ev.Block.ev_taken <> None then incr branches);
  Alcotest.(check int) "2 insts x 10 iters" 20 !events;
  Alcotest.(check int) "10 branch events" 10 !branches

let test_iter_stream_matches_outcome () =
  (* The streamed outcomes continue the template's persistent sequence. *)
  let t = Block.temp (Iform.by_name "JZ_REL") ~branch:{ Block.m = 2; n = 2; invert = false } in
  let b = Block.make ~label:"b" ~code_base:0x9000 [ t ] in
  let taken = ref 0 in
  Block.iter_stream ~rng:(Rng.create 6) ~iterations:4096 b (fun ev ->
      if ev.Block.ev_taken = Some true then incr taken);
  check_close "rate 2^-2" 0.02 0.25 (float_of_int !taken /. 4096.0)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "isa"
    [
      ( "iform",
        [
          Alcotest.test_case "dense ids" `Quick test_catalog_ids_dense;
          Alcotest.test_case "unique names" `Quick test_catalog_unique_names;
          Alcotest.test_case "sane fields" `Quick test_catalog_sane_fields;
          Alcotest.test_case "memory widths" `Quick test_memory_iforms_have_width;
          Alcotest.test_case "by_name" `Quick test_by_name;
          Alcotest.test_case "branches on p6" `Quick test_branch_iforms_on_port6;
          Alcotest.test_case "feature distance" `Quick test_feature_distance_metric;
          Alcotest.test_case "iclass predicates" `Quick test_iclass_predicates;
        ] );
      ( "block",
        [
          Alcotest.test_case "addresses" `Quick test_block_addresses;
          Alcotest.test_case "region alignment" `Quick test_region_alignment;
        ] );
      ( "branch_outcome",
        [
          Alcotest.test_case "exact rates" `Quick test_branch_rates_exact;
          Alcotest.test_case "deterministic" `Quick test_branch_deterministic;
          qt prop_branch_taken_rate;
        ] );
      ( "resolve_mem",
        [
          Alcotest.test_case "fixed offset" `Quick test_fixed_offset;
          Alcotest.test_case "no mem" `Quick test_no_mem;
          Alcotest.test_case "seq stride" `Quick test_seq_stride_advances_and_wraps;
          Alcotest.test_case "rand uniform" `Quick test_rand_uniform_within_span;
          Alcotest.test_case "chase" `Quick test_chase_serial_and_bounded;
          Alcotest.test_case "shared flag" `Quick test_shared_region_flag;
        ] );
      ( "iter_stream",
        [
          Alcotest.test_case "counts" `Quick test_iter_stream_counts;
          Alcotest.test_case "branch rates" `Quick test_iter_stream_matches_outcome;
        ] );
    ]
