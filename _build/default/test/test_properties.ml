(* Cross-cutting property tests: randomised invariants over the substrate
   (engine ordering, JSON round-trips, metric properties of distances,
   conservation laws of the working-set equations, address-stream bounds). *)
module J = Ditto_util.Jsonx
module Rng = Ditto_util.Rng
module Stats = Ditto_util.Stats
open Ditto_isa

let qt = QCheck_alcotest.to_alcotest

(* {1 Engine: random workloads keep virtual time causal} *)

let prop_engine_causal =
  QCheck.Test.make ~name:"engine: processes finish at spawn+waits" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 20) (float_range 0.0 10.0))
    (fun waits ->
      let engine = Ditto_sim.Engine.create () in
      let ok = ref true in
      List.iteri
        (fun i w ->
          Ditto_sim.Engine.spawn engine (fun () ->
              Ditto_sim.Engine.wait w;
              Ditto_sim.Engine.wait w;
              let expected = 2.0 *. w in
              if Float.abs (Ditto_sim.Engine.time () -. expected) > 1e-9 then ok := false;
              ignore i))
        waits;
      Ditto_sim.Engine.run engine;
      !ok)

let prop_resource_never_oversubscribed =
  QCheck.Test.make ~name:"resource: concurrency never exceeds capacity" ~count:30
    QCheck.(pair (int_range 1 4) (int_range 1 30))
    (fun (cap, jobs) ->
      let engine = Ditto_sim.Engine.create () in
      let r = Ditto_sim.Engine.Resource.create cap in
      let active = ref 0 and peak = ref 0 in
      for _ = 1 to jobs do
        Ditto_sim.Engine.spawn engine (fun () ->
            Ditto_sim.Engine.Resource.with_resource r (fun () ->
                incr active;
                if !active > !peak then peak := !active;
                Ditto_sim.Engine.wait 1.0;
                decr active))
      done;
      Ditto_sim.Engine.run engine;
      !peak <= cap)

(* {1 Jsonx: random documents round-trip} *)

let json_gen =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        return J.Null;
        map (fun b -> J.Bool b) bool;
        map (fun i -> J.int i) (int_range (-1000000) 1000000);
        map (fun f -> J.Num f) (float_bound_inclusive 1e6);
        map (fun s -> J.Str s) (string_size ~gen:printable (int_range 0 12));
      ]
  in
  let rec doc depth =
    if depth = 0 then leaf
    else
      oneof
        [
          leaf;
          map (fun l -> J.List l) (list_size (int_range 0 4) (doc (depth - 1)));
          map
            (fun kvs -> J.Obj kvs)
            (list_size (int_range 0 4)
               (pair (string_size ~gen:printable (int_range 1 8)) (doc (depth - 1))));
        ]
  in
  doc 3

let prop_json_roundtrip =
  QCheck.Test.make ~name:"jsonx: parse (print v) = v" ~count:300
    (QCheck.make json_gen)
    (fun v ->
      (* duplicate object keys are legal JSON but not preserved as-is;
         normalise by first-wins lookup semantics: compare prints. *)
      let s = J.to_string v in
      J.to_string (J.of_string s) = s)

let prop_json_pretty_equiv =
  QCheck.Test.make ~name:"jsonx: pretty and compact parse identically" ~count:200
    (QCheck.make json_gen)
    (fun v -> J.of_string (J.to_string ~pretty:true v) = J.of_string (J.to_string v))

(* {1 KS distance: metric-ish properties} *)

let float_array = QCheck.(array_of_size (QCheck.Gen.int_range 1 100) (float_range (-50.) 50.))

let prop_ks_bounds =
  QCheck.Test.make ~name:"ks: in [0,1]" ~count:200
    QCheck.(pair float_array float_array)
    (fun (a, b) ->
      let d = Stats.ks_distance a b in
      d >= 0.0 && d <= 1.0)

let prop_ks_self_zero =
  QCheck.Test.make ~name:"ks: d(a,a) = 0" ~count:200 float_array
    (fun a -> Stats.ks_distance a a < 1e-12)

let prop_ks_symmetric =
  QCheck.Test.make ~name:"ks: symmetric" ~count:200
    QCheck.(pair float_array float_array)
    (fun (a, b) -> Float.abs (Stats.ks_distance a b -. Stats.ks_distance b a) < 1e-12)

(* {1 Tree edit distance: metric properties on random trees} *)

let tree_gen =
  let open QCheck.Gen in
  let rec t depth =
    if depth = 0 then map (fun l -> Ditto_util.Tree_edit.leaf l) (int_range 0 3)
    else
      map2
        (fun l cs -> Ditto_util.Tree_edit.node l cs)
        (int_range 0 3)
        (list_size (int_range 0 3) (t (depth - 1)))
  in
  t 2

let prop_tree_edit_metric =
  QCheck.Test.make ~name:"tree edit: identity, symmetry, triangle" ~count:60
    (QCheck.make QCheck.Gen.(triple tree_gen tree_gen tree_gen))
    (fun (a, b, c) ->
      let d = Ditto_util.Tree_edit.distance in
      d a a = 0.0
      && d a b = d b a
      && d a b <= d a c +. d c b +. 1e-9)

(* {1 Working-set equations: conservation} *)

(* Monotone hit profile (caches only gain hits as they grow) from random
   per-size increments. *)
let monotone_profile raw =
  let acc = ref 0 in
  List.mapi
    (fun i h ->
      acc := !acc + h;
      (i + 6, !acc))
    raw

let prop_eq1_conserves_hits =
  QCheck.Test.make ~name:"eq1: sum of A_d equals hits at the largest size" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 10) (int_range 0 10000))
    (fun raw ->
      let profile = monotone_profile raw in
      let requests = 4 in
      let a = Ditto_profile.Working_set.eq1 ~requests profile in
      let total = List.fold_left (fun s (_, x) -> s +. x) 0.0 a in
      let h_max = float_of_int (List.fold_left (fun _ (_, h) -> h) 0 profile) in
      Float.abs (total -. (h_max /. float_of_int requests)) < 1e-6)

let prop_eq2_nonnegative =
  QCheck.Test.make ~name:"eq2: all executions non-negative" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 10) (int_range 0 10000))
    (fun raw ->
      let e = Ditto_profile.Working_set.eq2 ~requests:2 (monotone_profile raw) in
      List.for_all (fun (_, x) -> x >= 0.0) e)

(* {1 Memory patterns: addresses stay within their regions} *)

let region = Block.make_region ~base:0x2000_0000 ~bytes:(1 lsl 22) ~shared:false

let pattern_gen =
  let open QCheck.Gen in
  let aligned_span = map (fun l -> 64 * max 1 l) (int_range 1 1000) in
  oneof
    [
      map (fun o -> Block.Fixed_offset { region; offset = o land lnot 63 }) (int_range 0 ((1 lsl 22) - 64));
      map2
        (fun start span ->
          let start = min start ((1 lsl 22) - span) land lnot 63 in
          Block.Seq_stride { region; start = max 0 start; stride = 64; span })
        (int_range 0 (1 lsl 21))
        aligned_span;
      map2
        (fun start span ->
          let start = min start ((1 lsl 22) - span) land lnot 63 in
          Block.Rand_uniform { region; start = max 0 start; span })
        (int_range 0 (1 lsl 21))
        aligned_span;
      map (fun span -> Block.Chase { region; start = 0; span }) aligned_span;
    ]

let prop_resolve_within_region =
  QCheck.Test.make ~name:"resolve_mem: addresses inside the region" ~count:200
    (QCheck.make pattern_gen)
    (fun mem ->
      let temp = Block.temp (Iform.by_name "MOV_GPR64_MEM") ~dst:0 ~srcs:[| 1 |] ~mem in
      let rng = Rng.create 7 in
      let ok = ref true in
      for _ = 1 to 200 do
        let addr, _ = Block.resolve_mem ~rng temp in
        if
          addr < region.Block.region_base
          || addr >= region.Block.region_base + region.Block.region_bytes
        then ok := false
      done;
      !ok)

(* {1 Discrete distribution: sampling frequencies track weights} *)

let prop_discrete_frequencies =
  QCheck.Test.make ~name:"discrete: frequencies within 5% of weights" ~count:20
    QCheck.(list_of_size (Gen.int_range 2 6) (float_range 0.5 10.0))
    (fun weights ->
      let d = Ditto_util.Dist.discrete (List.mapi (fun i w -> (i, w)) weights) in
      let rng = Rng.create 11 in
      let n = 20000 in
      let counts = Array.make (List.length weights) 0 in
      for _ = 1 to n do
        let i = Ditto_util.Dist.discrete_sample d rng in
        counts.(i) <- counts.(i) + 1
      done;
      let total = List.fold_left ( +. ) 0.0 weights in
      List.for_all
        (fun (i, w) ->
          Float.abs ((float_of_int counts.(i) /. float_of_int n) -. (w /. total)) < 0.05)
        (List.mapi (fun i w -> (i, w)) weights))

(* {1 Block.reset_state restores the initial stream} *)

let prop_reset_state_restores =
  QCheck.Test.make ~name:"reset_state: replays the identical stream" ~count:50
    (QCheck.make pattern_gen)
    (fun mem ->
      let temp = Block.temp (Iform.by_name "MOV_GPR64_MEM") ~dst:0 ~srcs:[| 1 |] ~mem in
      Block.set_phase temp 5;
      let b = Block.make ~label:"p" ~code_base:0x9000 [ temp ] in
      let collect () =
        let out = ref [] in
        (* fixed rng seed: Rand_uniform consumes randomness deterministically *)
        Block.iter_stream ~rng:(Rng.create 3) ~iterations:50 b (fun ev ->
            out := ev.Block.ev_addr :: !out);
        List.rev !out
      in
      let first = collect () in
      Block.reset_state b;
      let second = collect () in
      first = second)

let () =
  Alcotest.run "properties"
    [
      ( "engine",
        [ qt prop_engine_causal; qt prop_resource_never_oversubscribed ] );
      ("jsonx", [ qt prop_json_roundtrip; qt prop_json_pretty_equiv ]);
      ("ks", [ qt prop_ks_bounds; qt prop_ks_self_zero; qt prop_ks_symmetric ]);
      ("tree_edit", [ qt prop_tree_edit_metric ]);
      ("working_set", [ qt prop_eq1_conserves_hits; qt prop_eq2_nonnegative ]);
      ("patterns", [ qt prop_resolve_within_region; qt prop_reset_state_restores ]);
      ("dist", [ qt prop_discrete_frequencies ]);
    ]
