(* Tests for the OS layer: syscall kernel streams, page cache, scheduler. *)
open Ditto_os
open Ditto_sim

let check_close msg tolerance expected actual =
  if Float.abs (expected -. actual) > tolerance then
    Alcotest.failf "%s: expected %g within %g, got %g" msg expected tolerance actual

(* {1 Syscall} *)

let test_syscall_names_unique () =
  let kinds =
    [
      Syscall.Pread { bytes = 1; random = true };
      Syscall.Pwrite { bytes = 1 };
      Syscall.Sock_read { bytes = 1 };
      Syscall.Sock_write { bytes = 1 };
      Syscall.Epoll_wait;
      Syscall.Accept;
      Syscall.Futex_wait;
      Syscall.Futex_wake;
      Syscall.Mmap { bytes = 1 };
      Syscall.Clone;
      Syscall.Nanosleep { seconds = 1.0 };
      Syscall.Gettime;
    ]
  in
  let names = List.map Syscall.name kinds in
  Alcotest.(check int) "unique" (List.length names) (List.length (List.sort_uniq compare names))

let test_syscall_blocking_classification () =
  Alcotest.(check bool) "epoll blocks" true (Syscall.is_blocking Syscall.Epoll_wait);
  Alcotest.(check bool) "pread does not" false
    (Syscall.is_blocking (Syscall.Pread { bytes = 4096; random = true }))

let test_syscall_path_lengths_ordered () =
  Alcotest.(check bool) "sendmsg > gettime" true
    (Syscall.path_insts (Syscall.Sock_write { bytes = 100 }) > Syscall.path_insts Syscall.Gettime)

let test_kernel_streams_structure () =
  let streams = Syscall.Kernel.streams ~scale:0.25 (Syscall.Sock_read { bytes = 4096 }) in
  Alcotest.(check bool) "path + copy" true (List.length streams = 2);
  let path, iters = List.hd streams in
  Alcotest.(check bool) "path has templates" true (path.Ditto_isa.Block.static_insts > 0);
  Alcotest.(check bool) "iterations positive" true (iters > 0)

let test_kernel_streams_memoised () =
  let a = Syscall.Kernel.streams ~scale:0.25 Syscall.Epoll_wait in
  let b = Syscall.Kernel.streams ~scale:0.25 Syscall.Epoll_wait in
  Alcotest.(check bool) "same physical value" true (a == b)

let test_kernel_scale_shrinks () =
  let big = Syscall.Kernel.streams ~scale:1.0 Syscall.Clone in
  let small = Syscall.Kernel.streams ~scale:0.1 Syscall.Clone in
  let insts s =
    List.fold_left (fun a (b, i) -> a + (b.Ditto_isa.Block.static_insts * i)) 0 s
  in
  Alcotest.(check bool) "scaled path shorter" true (insts small < insts big)

let test_kernel_distinct_code_windows () =
  let a, _ = List.hd (Syscall.Kernel.streams Syscall.Epoll_wait) in
  let b, _ = List.hd (Syscall.Kernel.streams (Syscall.Sock_write { bytes = 64 })) in
  Alcotest.(check bool) "different kernel text regions" true
    (a.Ditto_isa.Block.code_base <> b.Ditto_isa.Block.code_base)

let test_housekeeping () =
  let block, iters = Syscall.Kernel.housekeeping ~scale:0.25 () in
  Alcotest.(check bool) "nonempty" true (block.Ditto_isa.Block.static_insts > 0 && iters >= 1)

(* {1 Page cache} *)

let test_page_cache_miss_then_hit () =
  let pc = Page_cache.create ~capacity_bytes:(1 lsl 20) in
  let missed = Page_cache.read pc ~offset:0 ~bytes:8192 in
  Alcotest.(check int) "cold read misses both pages" 8192 missed;
  let again = Page_cache.read pc ~offset:0 ~bytes:8192 in
  Alcotest.(check int) "warm read free" 0 again

let test_page_cache_partial () =
  let pc = Page_cache.create ~capacity_bytes:(1 lsl 20) in
  ignore (Page_cache.read pc ~offset:0 ~bytes:4096);
  let missed = Page_cache.read pc ~offset:0 ~bytes:8192 in
  Alcotest.(check int) "only the second page fetched" 4096 missed

let test_page_cache_lru_eviction () =
  let pc = Page_cache.create ~capacity_bytes:(4 * 4096) in
  ignore (Page_cache.read pc ~offset:0 ~bytes:(4 * 4096));
  (* Touch page 0 so page 1 is LRU, then insert a new page. *)
  ignore (Page_cache.read pc ~offset:0 ~bytes:1);
  ignore (Page_cache.read pc ~offset:(4 * 4096) ~bytes:1);
  Alcotest.(check int) "page 0 still resident" 0 (Page_cache.read pc ~offset:0 ~bytes:1);
  Alcotest.(check int) "page 1 evicted" 4096 (Page_cache.read pc ~offset:4096 ~bytes:1)

let test_page_cache_stats () =
  let pc = Page_cache.create ~capacity_bytes:(1 lsl 20) in
  ignore (Page_cache.read pc ~offset:0 ~bytes:4096);
  ignore (Page_cache.read pc ~offset:0 ~bytes:4096);
  Alcotest.(check int) "lookups" 2 (Page_cache.lookups pc);
  Alcotest.(check int) "misses" 1 (Page_cache.misses pc);
  Alcotest.(check (float 1e-9)) "hit rate" 0.5 (Page_cache.hit_rate pc);
  Page_cache.reset_stats pc;
  Alcotest.(check int) "stats reset" 0 (Page_cache.lookups pc)

let test_page_cache_flush () =
  let pc = Page_cache.create ~capacity_bytes:(1 lsl 20) in
  ignore (Page_cache.read pc ~offset:0 ~bytes:4096);
  Page_cache.flush pc;
  Alcotest.(check int) "cold after flush" 4096 (Page_cache.read pc ~offset:0 ~bytes:4096)

let test_page_cache_zero_bytes () =
  let pc = Page_cache.create ~capacity_bytes:4096 in
  Alcotest.(check int) "empty read" 0 (Page_cache.read pc ~offset:0 ~bytes:0)

(* {1 Scheduler} *)

let test_sched_single_thread_timing () =
  let engine = Engine.create () in
  let sched = Sched.create engine ~ncores:2 () in
  let finished = ref 0.0 in
  Engine.spawn engine (fun () ->
      Sched.run_oncpu sched ~thread:1 0.0105;
      finished := Engine.time ());
  Engine.run engine;
  (* 10.5ms of work plus one context switch. *)
  check_close "duration" 1e-4 0.0105 !finished

let test_sched_contention () =
  let engine = Engine.create () in
  let sched = Sched.create engine ~ncores:1 ~ctx_switch_cost:0.0 () in
  let finish = ref [] in
  for i = 1 to 2 do
    Engine.spawn engine (fun () ->
        Sched.run_oncpu sched ~thread:i 0.010;
        finish := Engine.time () :: !finish)
  done;
  Engine.run engine;
  let latest = List.fold_left Float.max 0.0 !finish in
  check_close "two 10ms jobs on one core" 1e-4 0.020 latest

let test_sched_parallel_cores () =
  let engine = Engine.create () in
  let sched = Sched.create engine ~ncores:2 ~ctx_switch_cost:0.0 () in
  let finish = ref [] in
  for i = 1 to 2 do
    Engine.spawn engine (fun () ->
        Sched.run_oncpu sched ~thread:i 0.010;
        finish := Engine.time () :: !finish)
  done;
  Engine.run engine;
  List.iter (fun t -> check_close "parallel" 1e-4 0.010 t) !finish

let test_sched_fair_slicing () =
  (* With quantum slicing, a short job submitted alongside a long one
     should not wait for the long job to finish completely. *)
  let engine = Engine.create () in
  let sched = Sched.create engine ~ncores:1 ~quantum:1e-3 ~ctx_switch_cost:0.0 () in
  let short_done = ref infinity in
  Engine.spawn engine (fun () -> Sched.run_oncpu sched ~thread:1 0.050);
  Engine.spawn engine (fun () ->
      Sched.run_oncpu sched ~thread:2 0.001;
      short_done := Engine.time ());
  Engine.run engine;
  Alcotest.(check bool) "short job preempts long one" true (!short_done < 0.010)

let test_sched_stats () =
  let engine = Engine.create () in
  let sched = Sched.create engine ~ncores:1 () in
  Engine.spawn engine (fun () -> Sched.run_oncpu sched ~thread:1 0.002);
  Engine.spawn engine (fun () -> Sched.run_oncpu sched ~thread:2 0.002);
  Engine.run engine;
  Alcotest.(check bool) "context switches counted" true (Sched.context_switches sched >= 2);
  Alcotest.(check bool) "busy time accumulated" true (Sched.busy_seconds sched >= 0.004);
  Alcotest.(check int) "ncores" 1 (Sched.ncores sched)

let () =
  Alcotest.run "os"
    [
      ( "syscall",
        [
          Alcotest.test_case "unique names" `Quick test_syscall_names_unique;
          Alcotest.test_case "blocking classes" `Quick test_syscall_blocking_classification;
          Alcotest.test_case "path ordering" `Quick test_syscall_path_lengths_ordered;
          Alcotest.test_case "stream structure" `Quick test_kernel_streams_structure;
          Alcotest.test_case "memoised" `Quick test_kernel_streams_memoised;
          Alcotest.test_case "scale" `Quick test_kernel_scale_shrinks;
          Alcotest.test_case "distinct windows" `Quick test_kernel_distinct_code_windows;
          Alcotest.test_case "housekeeping" `Quick test_housekeeping;
        ] );
      ( "page_cache",
        [
          Alcotest.test_case "miss then hit" `Quick test_page_cache_miss_then_hit;
          Alcotest.test_case "partial" `Quick test_page_cache_partial;
          Alcotest.test_case "lru eviction" `Quick test_page_cache_lru_eviction;
          Alcotest.test_case "stats" `Quick test_page_cache_stats;
          Alcotest.test_case "flush" `Quick test_page_cache_flush;
          Alcotest.test_case "zero bytes" `Quick test_page_cache_zero_bytes;
        ] );
      ( "sched",
        [
          Alcotest.test_case "single thread" `Quick test_sched_single_thread_timing;
          Alcotest.test_case "contention" `Quick test_sched_contention;
          Alcotest.test_case "parallel cores" `Quick test_sched_parallel_cores;
          Alcotest.test_case "fair slicing" `Quick test_sched_fair_slicing;
          Alcotest.test_case "stats" `Quick test_sched_stats;
        ] );
    ]
