(* Tests for the discrete-event engine: virtual time, process semantics,
   synchronisation primitives. *)
open Ditto_sim

let check_float = Alcotest.(check (float 1e-9))

let run_collect f =
  let engine = Engine.create () in
  let log = ref [] in
  let emit tag = log := (tag, Engine.now engine) :: !log in
  f engine emit;
  Engine.run engine;
  List.rev !log

let test_time_advances () =
  let log =
    run_collect (fun engine emit ->
        Engine.spawn engine (fun () ->
            emit "start";
            Engine.wait 1.5;
            emit "mid";
            Engine.wait 0.5;
            emit "end"))
  in
  Alcotest.(check (list (pair string (float 1e-9))))
    "timeline"
    [ ("start", 0.0); ("mid", 1.5); ("end", 2.0) ]
    log

let test_fifo_same_time () =
  let log =
    run_collect (fun engine emit ->
        Engine.spawn engine (fun () -> emit "a");
        Engine.spawn engine (fun () -> emit "b");
        Engine.spawn engine (fun () -> emit "c"))
  in
  Alcotest.(check (list string)) "FIFO order" [ "a"; "b"; "c" ] (List.map fst log)

let test_interleaving () =
  let log =
    run_collect (fun engine emit ->
        Engine.spawn engine (fun () ->
            Engine.wait 1.0;
            emit "slow");
        Engine.spawn engine (fun () ->
            Engine.wait 0.25;
            emit "fast"))
  in
  Alcotest.(check (list string)) "ordered by time" [ "fast"; "slow" ] (List.map fst log)

let test_spawn_at () =
  let log =
    run_collect (fun engine emit -> Engine.spawn engine ~at:3.0 (fun () -> emit "later"))
  in
  check_float "starts at 3" 3.0 (snd (List.hd log))

let test_run_until () =
  let engine = Engine.create () in
  let fired = ref false in
  Engine.spawn engine (fun () ->
      Engine.wait 10.0;
      fired := true);
  Engine.run ~until:5.0 engine;
  Alcotest.(check bool) "event beyond limit dropped" false !fired;
  check_float "clock stopped at limit" 5.0 (Engine.now engine)

let test_negative_wait_clamped () =
  let log =
    run_collect (fun engine emit ->
        Engine.spawn engine (fun () ->
            Engine.wait (-5.0);
            emit "now"))
  in
  check_float "negative wait is zero" 0.0 (snd (List.hd log))

let test_fork () =
  let log =
    run_collect (fun engine emit ->
        Engine.spawn engine (fun () ->
            Engine.fork (fun () ->
                Engine.wait 1.0;
                emit "child");
            emit "parent"))
  in
  Alcotest.(check (list string)) "parent continues first" [ "parent"; "child" ]
    (List.map fst log)

let test_suspend_wake () =
  let engine = Engine.create () in
  let waker = ref None in
  let got = ref 0 in
  Engine.spawn engine (fun () -> got := Engine.suspend (fun w -> waker := Some w));
  Engine.spawn engine (fun () ->
      Engine.wait 2.0;
      match !waker with Some w -> Engine.wake w 99 | None -> Alcotest.fail "no waker");
  Engine.run engine;
  Alcotest.(check int) "woken with value" 99 !got

let test_double_wake_ignored () =
  let engine = Engine.create () in
  let waker = ref None in
  let count = ref 0 in
  Engine.spawn engine (fun () ->
      let v = Engine.suspend (fun w -> waker := Some w) in
      count := !count + v);
  Engine.spawn engine (fun () ->
      let w = Option.get !waker in
      Engine.wake w 1;
      Engine.wake w 100);
  Engine.run engine;
  Alcotest.(check int) "only first wake delivers" 1 !count

let test_suspend_timeout_fires () =
  let engine = Engine.create () in
  let result = ref (Some 0) in
  Engine.spawn engine (fun () -> result := Engine.suspend_timeout 1.0 (fun _ -> ()));
  Engine.run engine;
  Alcotest.(check bool) "timed out" true (!result = None)

let test_suspend_timeout_wakes () =
  let engine = Engine.create () in
  let result = ref None in
  let waker = ref None in
  Engine.spawn engine (fun () -> result := Engine.suspend_timeout 10.0 (fun w -> waker := Some w));
  Engine.spawn engine (fun () ->
      Engine.wait 0.5;
      Engine.wake (Option.get !waker) 7);
  Engine.run engine;
  Alcotest.(check bool) "woken before timeout" true (!result = Some 7)

let test_ivar () =
  let engine = Engine.create () in
  let iv = Engine.Ivar.create () in
  let seen = ref [] in
  for i = 1 to 3 do
    Engine.spawn engine (fun () ->
        (* bind first: [::] must not snapshot [!seen] before the blocking read *)
        let v = Engine.Ivar.read iv in
        seen := (i, v) :: !seen)
  done;
  Engine.spawn engine (fun () ->
      Engine.wait 1.0;
      Engine.Ivar.fill iv "v");
  Engine.run engine;
  Alcotest.(check int) "all readers woken" 3 (List.length !seen);
  Alcotest.(check bool) "filled" true (Engine.Ivar.is_filled iv)

let test_ivar_double_fill () =
  let engine = Engine.create () in
  Engine.spawn engine (fun () ->
      let iv = Engine.Ivar.create () in
      Engine.Ivar.fill iv 1;
      Alcotest.check_raises "double fill" (Invalid_argument "Ivar.fill: already filled")
        (fun () -> Engine.Ivar.fill iv 2));
  Engine.run engine

let test_mailbox_fifo () =
  let engine = Engine.create () in
  let m = Engine.Mailbox.create () in
  let got = ref [] in
  Engine.spawn engine (fun () ->
      for _ = 1 to 3 do
        got := Engine.Mailbox.recv m :: !got
      done);
  Engine.spawn engine (fun () ->
      Engine.Mailbox.send m 1;
      Engine.Mailbox.send m 2;
      Engine.Mailbox.send m 3);
  Engine.run engine;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !got)

let test_mailbox_blocking_recv () =
  let engine = Engine.create () in
  let m = Engine.Mailbox.create () in
  let at = ref 0.0 in
  Engine.spawn engine (fun () ->
      ignore (Engine.Mailbox.recv m);
      at := Engine.time ());
  Engine.spawn engine (fun () ->
      Engine.wait 4.0;
      Engine.Mailbox.send m ());
  Engine.run engine;
  check_float "recv completed at send time" 4.0 !at

let test_mailbox_try_recv () =
  let engine = Engine.create () in
  Engine.spawn engine (fun () ->
      let m = Engine.Mailbox.create () in
      Alcotest.(check (option int)) "empty" None (Engine.Mailbox.try_recv m);
      Engine.Mailbox.send m 5;
      Alcotest.(check int) "length" 1 (Engine.Mailbox.length m);
      Alcotest.(check (option int)) "take" (Some 5) (Engine.Mailbox.try_recv m));
  Engine.run engine

let test_mailbox_recv_timeout () =
  let engine = Engine.create () in
  let r = ref (Some 1) in
  Engine.spawn engine (fun () ->
      let m : int Engine.Mailbox.m = Engine.Mailbox.create () in
      r := Engine.Mailbox.recv_timeout m 0.5);
  Engine.run engine;
  Alcotest.(check (option int)) "timeout returns None" None !r

let test_resource_serialises () =
  let engine = Engine.create () in
  let r = Engine.Resource.create 1 in
  let finish = ref [] in
  for i = 1 to 3 do
    Engine.spawn engine (fun () ->
        Engine.Resource.with_resource r (fun () -> Engine.wait 1.0);
        finish := (i, Engine.time ()) :: !finish)
  done;
  Engine.run engine;
  let times = List.rev_map snd !finish |> List.sort compare in
  Alcotest.(check (list (float 1e-9))) "serialised" [ 1.0; 2.0; 3.0 ] times

let test_resource_parallel () =
  let engine = Engine.create () in
  let r = Engine.Resource.create 3 in
  let finish = ref [] in
  for _ = 1 to 3 do
    Engine.spawn engine (fun () ->
        Engine.Resource.with_resource r (fun () -> Engine.wait 1.0);
        finish := Engine.time () :: !finish)
  done;
  Engine.run engine;
  List.iter (fun t -> check_float "all parallel" 1.0 t) !finish

let test_resource_queue_length () =
  let engine = Engine.create () in
  let r = Engine.Resource.create 1 in
  Engine.spawn engine (fun () -> Engine.Resource.with_resource r (fun () -> Engine.wait 5.0));
  Engine.spawn engine (fun () -> Engine.Resource.with_resource r (fun () -> ()));
  Engine.spawn engine (fun () ->
      Engine.wait 1.0;
      Alcotest.(check int) "one waiter" 1 (Engine.Resource.queue_length r);
      Alcotest.(check int) "none available" 0 (Engine.Resource.available r));
  Engine.run engine

let test_resource_release_on_exception () =
  let engine = Engine.create () in
  let r = Engine.Resource.create 1 in
  let ok = ref false in
  Engine.spawn engine (fun () ->
      (try Engine.Resource.with_resource r (fun () -> raise Exit) with Exit -> ());
      Engine.Resource.acquire r;
      ok := true;
      Engine.Resource.release r);
  Engine.run engine;
  Alcotest.(check bool) "released after exception" true !ok

let test_events_processed () =
  let engine = Engine.create () in
  Engine.spawn engine (fun () -> Engine.wait 1.0);
  Engine.run engine;
  Alcotest.(check bool) "counted" true (Engine.events_processed engine >= 2)

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "time advances" `Quick test_time_advances;
          Alcotest.test_case "fifo same time" `Quick test_fifo_same_time;
          Alcotest.test_case "interleaving" `Quick test_interleaving;
          Alcotest.test_case "spawn at" `Quick test_spawn_at;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "negative wait" `Quick test_negative_wait_clamped;
          Alcotest.test_case "fork" `Quick test_fork;
          Alcotest.test_case "events processed" `Quick test_events_processed;
        ] );
      ( "suspend",
        [
          Alcotest.test_case "suspend/wake" `Quick test_suspend_wake;
          Alcotest.test_case "double wake" `Quick test_double_wake_ignored;
          Alcotest.test_case "timeout fires" `Quick test_suspend_timeout_fires;
          Alcotest.test_case "timeout beaten" `Quick test_suspend_timeout_wakes;
        ] );
      ( "ivar",
        [
          Alcotest.test_case "broadcast" `Quick test_ivar;
          Alcotest.test_case "double fill" `Quick test_ivar_double_fill;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "fifo" `Quick test_mailbox_fifo;
          Alcotest.test_case "blocking recv" `Quick test_mailbox_blocking_recv;
          Alcotest.test_case "try recv" `Quick test_mailbox_try_recv;
          Alcotest.test_case "recv timeout" `Quick test_mailbox_recv_timeout;
        ] );
      ( "resource",
        [
          Alcotest.test_case "serialises" `Quick test_resource_serialises;
          Alcotest.test_case "parallel" `Quick test_resource_parallel;
          Alcotest.test_case "queue length" `Quick test_resource_queue_length;
          Alcotest.test_case "release on exception" `Quick test_resource_release_on_exception;
        ] );
    ]
