(* End-to-end integration tests of the cloning pipeline: profile an
   original service, generate a tuned clone, and validate that the clone's
   counters, bandwidth and latency land near the original (loose bounds —
   these are correctness gates, not the accuracy evaluation, which lives in
   the benchmark harness). *)
open Ditto_app
module Pipeline = Ditto_core.Pipeline
module Platform = Ditto_uarch.Platform

let clone_redis =
  lazy
    (let app = Ditto_apps.Redis.spec () in
     let load = Service.load ~qps:25000.0 ~open_loop:false ~duration:0.8 () in
     (load, Pipeline.clone ~requests:150 ~profile_requests:100 ~platform:Platform.a ~load app))

let test_clone_produces_synthetic () =
  let _, r = Lazy.force clone_redis in
  Alcotest.(check string) "synthetic name" "redis_synth" r.Pipeline.synthetic.Spec.app_name;
  Alcotest.(check int) "same tier count"
    (List.length r.Pipeline.original.Spec.tiers)
    (List.length r.Pipeline.synthetic.Spec.tiers);
  Alcotest.(check bool) "single tier: no dag" true (r.Pipeline.dag = None);
  Alcotest.(check bool) "tuning ran" true (r.Pipeline.tuning <> None)

let test_clone_tuning_bounded_iterations () =
  let _, r = Lazy.force clone_redis in
  match r.Pipeline.tuning with
  | Some report ->
      Alcotest.(check bool) "at most 10 iterations" true
        (List.length report.Ditto_tune.Tuner.iterations <= 10)
  | None -> Alcotest.fail "no tuning report"

let test_validation_accuracy () =
  let load, r = Lazy.force clone_redis in
  let c = Pipeline.validate ~platform:Platform.a ~load ~label:"medium" r in
  let errs = List.assoc "redis" (Pipeline.comparison_errors c) in
  (* Loose gates: the paper reports single-digit average errors with wide
     per-app variance; these bounds catch regressions without flakiness. *)
  List.iter
    (fun (axis, e) ->
      Alcotest.(check bool) (Printf.sprintf "%s error %.1f%% < 65%%" axis e) true (e < 65.0))
    errs;
  let mean = List.fold_left (fun a (_, e) -> a +. e) 0.0 errs /. float_of_int (List.length errs) in
  Alcotest.(check bool) (Printf.sprintf "mean error %.1f%% < 30%%" mean) true (mean < 30.0);
  (* IPC, the headline metric, should be tight. *)
  Alcotest.(check bool) "IPC error < 20%" true (List.assoc "IPC" errs < 20.0)

let test_validation_latency_shape () =
  let load, r = Lazy.force clone_redis in
  let c = Pipeline.validate ~platform:Platform.a ~load ~label:"lat" r in
  let a = c.Pipeline.actual_end_to_end and s = c.Pipeline.synthetic_end_to_end in
  let rel x y = Float.abs (x -. y) /. x in
  Alcotest.(check bool) "avg latency within 30%" true
    (rel a.Ditto_util.Stats.mean s.Ditto_util.Stats.mean < 0.30);
  Alcotest.(check bool) "p99 within 50%" true
    (rel a.Ditto_util.Stats.p99 s.Ditto_util.Stats.p99 < 0.50)

let test_portability_platform_b () =
  (* Profiled on A only; both original and synthetic move to B and should
     shift the same way (Fig. 7's claim). *)
  let load, r = Lazy.force clone_redis in
  let on_a = Pipeline.validate ~platform:Platform.a ~load ~label:"A" r in
  let on_b = Pipeline.validate ~platform:Platform.b ~load ~label:"B" r in
  let ipc c tier_list = (List.assoc tier_list c).Metrics.ipc in
  let a_act = ipc on_a.Pipeline.actual "redis" and b_act = ipc on_b.Pipeline.actual "redis" in
  let a_syn = ipc on_a.Pipeline.synthetic "redis" and b_syn = ipc on_b.Pipeline.synthetic "redis" in
  (* Platform B (older, narrower) lowers IPC for both. *)
  Alcotest.(check bool) "original slower on B" true (b_act < a_act);
  Alcotest.(check bool) "synthetic tracks the platform change" true (b_syn < a_syn)

let test_clone_multi_tier_social () =
  let app = Ditto_apps.Social_network.spec () in
  let load = Service.load ~qps:500.0 ~duration:0.5 () in
  let r =
    Pipeline.clone ~tune:false ~requests:60 ~profile_requests:40 ~platform:Platform.a ~load app
  in
  (match r.Pipeline.dag with
  | Some dag ->
      Alcotest.(check int) "dag covers all tiers" 22
        (List.length dag.Ditto_trace.Dag.services)
  | None -> Alcotest.fail "microservice must yield a DAG");
  Alcotest.(check int) "22 synthetic tiers" 22 (List.length r.Pipeline.synthetic.Spec.tiers);
  (* The synthetic graph serves traffic end to end. *)
  let c = Pipeline.validate ~platform:Platform.a ~load ~label:"sn" r in
  Alcotest.(check bool) "synthetic served requests" true
    (c.Pipeline.synthetic_end_to_end.Ditto_util.Stats.count > 50);
  let rel =
    Float.abs
      (c.Pipeline.synthetic_end_to_end.Ditto_util.Stats.mean
      -. c.Pipeline.actual_end_to_end.Ditto_util.Stats.mean)
    /. c.Pipeline.actual_end_to_end.Ditto_util.Stats.mean
  in
  Alcotest.(check bool) "end-to-end mean within 50%" true (rel < 0.5)

let test_interference_direction () =
  (* Under cache interference both original and synthetic lose IPC
     (Fig. 10): an L1d antagonist on the sibling hyperthread evicts the hot
     working set of whatever runs there. *)
  let load, r = Lazy.force clone_redis in
  let quiet = Pipeline.validate ~platform:Platform.a ~load ~label:"quiet" r in
  let noisy =
    Pipeline.validate
      ~config_of:(fun p ->
        Runner.config ~stressor:(Ditto_apps.Stressors.by_name "L1d")
          ~stressor_placement:`Same_core ~smt_pressure:0.6 p)
      ~platform:Platform.a ~load ~label:"noisy" r
  in
  let ipc c = (List.assoc "redis" c).Metrics.ipc in
  Alcotest.(check bool) "original hurt by LLC stress" true
    (ipc noisy.Pipeline.actual < ipc quiet.Pipeline.actual);
  Alcotest.(check bool) "synthetic hurt too" true
    (ipc noisy.Pipeline.synthetic < ipc quiet.Pipeline.synthetic)

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "clone produced" `Slow test_clone_produces_synthetic;
          Alcotest.test_case "tuning bounded" `Slow test_clone_tuning_bounded_iterations;
          Alcotest.test_case "validation accuracy" `Slow test_validation_accuracy;
          Alcotest.test_case "latency shape" `Slow test_validation_latency_shape;
          Alcotest.test_case "portability to B" `Slow test_portability_platform_b;
          Alcotest.test_case "multi-tier social" `Slow test_clone_multi_tier_social;
          Alcotest.test_case "interference direction" `Slow test_interference_direction;
        ] );
    ]
