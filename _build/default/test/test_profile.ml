(* Tests for the profilers: instruction mix, working sets (Eqs. 1/2),
   branches, dependencies, syscalls, skeleton detection. *)
open Ditto_profile
open Ditto_isa
open Ditto_app
module Rng = Ditto_util.Rng

let check_close msg tolerance expected actual =
  if Float.abs (expected -. actual) > tolerance then
    Alcotest.failf "%s: expected %g within %g, got %g" msg expected tolerance actual

let space = Layout.space ~tier_index:0 ~heap_bytes:(1 lsl 22) ~shared_bytes:(1 lsl 16)

let tier_of_blocks ?(request_bytes = 64) blocks =
  let handler _rng _req = List.map (fun (b, i) -> Spec.Compute (b, i)) blocks in
  Spec.tier ~name:"t" ~request_bytes ~heap_bytes:(1 lsl 22) ~shared_bytes:(1 lsl 16) ~handler ()

(* {1 Instmix} *)

let test_instmix_counts () =
  let temps =
    [
      Block.temp (Iform.by_name "ADD_GPR64_GPR64") ~dst:0 ~srcs:[| 1 |];
      Block.temp (Iform.by_name "ADD_GPR64_GPR64") ~dst:2 ~srcs:[| 3 |];
      Block.temp (Iform.by_name "IMUL_GPR64_GPR64") ~dst:4 ~srcs:[| 5 |];
    ]
  in
  let b = Block.make ~label:"m" ~code_base:space.Layout.code_base temps in
  let obs, fin = Instmix.observer () in
  Stream.drive ~tier:(tier_of_blocks [ (b, 10) ]) ~requests:5 ~seed:1 [ obs ];
  let t = fin () in
  check_close "insts per request" 1e-9 30.0 t.Instmix.insts_per_request;
  let add = Iform.by_name "ADD_GPR64_GPR64" and mul = Iform.by_name "IMUL_GPR64_GPR64" in
  Alcotest.(check int) "adds" 100 (List.assoc add.Iform.id t.Instmix.iform_counts);
  Alcotest.(check int) "muls" 50 (List.assoc mul.Iform.id t.Instmix.iform_counts)

let test_instmix_clusters_similar_together () =
  let temps =
    [
      Block.temp (Iform.by_name "ADD_GPR64_GPR64") ~dst:0 ~srcs:[| 1 |];
      Block.temp (Iform.by_name "SUB_GPR64_GPR64") ~dst:2 ~srcs:[| 3 |];
      Block.temp (Iform.by_name "DIVSD_XMM_XMM") ~dst:16 ~srcs:[| 17 |];
    ]
  in
  let b = Block.make ~label:"c" ~code_base:space.Layout.code_base temps in
  let obs, fin = Instmix.observer () in
  Stream.drive ~tier:(tier_of_blocks [ (b, 4) ]) ~requests:4 ~seed:2 [ obs ];
  let t = fin () in
  let add = (Iform.by_name "ADD_GPR64_GPR64").Iform.id in
  let sub = (Iform.by_name "SUB_GPR64_GPR64").Iform.id in
  let divsd = (Iform.by_name "DIVSD_XMM_XMM").Iform.id in
  let cluster_of id = List.find (fun (ids, _) -> List.mem id ids) t.Instmix.clusters in
  Alcotest.(check bool) "add and sub share a cluster" true
    (fst (cluster_of add) == fst (cluster_of sub));
  Alcotest.(check bool) "divsd clusters separately" true
    (fst (cluster_of add) != fst (cluster_of divsd))

let test_instmix_rep_stats () =
  let b =
    Block.make ~label:"r" ~code_base:space.Layout.code_base
      [
        Block.temp (Iform.by_name "REP_MOVSB") ~srcs:[| 6 |] ~rep_count:2048
          ~mem:(Block.Seq_stride { region = space.Layout.heap; start = 0; stride = 64; span = 1 lsl 20 });
        Block.temp (Iform.by_name "ADD_GPR64_GPR64") ~dst:0 ~srcs:[| 1 |];
      ]
  in
  let obs, fin = Instmix.observer () in
  Stream.drive ~tier:(tier_of_blocks [ (b, 1) ]) ~requests:8 ~seed:3 [ obs ];
  let t = fin () in
  check_close "rep mean count" 1e-9 2048.0 t.Instmix.rep_mean_count;
  check_close "rep fraction" 1e-9 0.5 t.Instmix.rep_fraction

let test_instmix_sampler () =
  let temps = [ Block.temp (Iform.by_name "ADD_GPR64_GPR64") ~dst:0 ~srcs:[| 1 |] ] in
  let b = Block.make ~label:"s" ~code_base:space.Layout.code_base temps in
  let obs, fin = Instmix.observer () in
  Stream.drive ~tier:(tier_of_blocks [ (b, 4) ]) ~requests:4 ~seed:4 [ obs ];
  let t = fin () in
  let rng = Rng.create 5 in
  for _ = 1 to 20 do
    Alcotest.(check string) "only observed iform sampled" "ADD_GPR64_GPR64"
      (Instmix.sample_iform t rng).Iform.name
  done

(* {1 Working sets (Eq. 1 and Eq. 2)} *)

let test_eq1_pure () =
  (* H(64)=100, H(128)=150, H(256)=150: A(64)=100, A(128)=50, A(256)=0 *)
  let a = Working_set.eq1 ~requests:10 [ (6, 1000); (7, 1500); (8, 1500) ] in
  Alcotest.(check (list (pair int (float 1e-9))))
    "Eq.1"
    [ (6, 100.0); (7, 50.0); (8, 0.0) ]
    a

let test_eq1_residual () =
  (* 2000 total accesses, only 1500 ever hit: the 500 streaming accesses
     land on the largest working set. *)
  let a =
    Working_set.eq1 ~total_accesses:2000 ~requests:10 [ (6, 1000); (7, 1500); (8, 1500) ]
  in
  Alcotest.(check (float 1e-9)) "residual on top bin" 50.0 (List.assoc 8 a)

let test_eq2_pure () =
  (* i-hits: H(64)=10, H(128)=40, total accesses 40: E(128)=16*30=480/req...
     requests=1 for clarity. *)
  let e = Working_set.eq2 ~requests:1 [ (6, 10); (7, 40) ] in
  Alcotest.(check (float 1e-9)) "E(128)" 480.0 (List.assoc 7 e);
  (* base bucket: 16*40 - 480 = 160 *)
  Alcotest.(check (float 1e-9)) "E(64)" 160.0 (List.assoc 6 e)

let test_working_set_small_loop () =
  (* A loop over a 2KB window must land its accesses in the <=2KB bins. *)
  let temps =
    List.init 8 (fun i ->
        Block.temp (Iform.by_name "MOV_GPR64_MEM") ~dst:(i mod 8) ~srcs:[| 1 |]
          ~mem:(Block.Seq_stride { region = space.Layout.heap; start = 0; stride = 64; span = 2048 }))
  in
  let b = Block.make ~label:"w" ~code_base:space.Layout.code_base temps in
  let obs, fin = Working_set.observer ~max_log2:22 () in
  Stream.drive ~tier:(tier_of_blocks [ (b, 64) ]) ~requests:4 ~seed:6 [ obs ];
  let t = fin () in
  let small, large =
    List.partition (fun (l, _) -> l <= 11) t.Working_set.d_working_sets
  in
  let mass = List.fold_left (fun a (_, x) -> a +. x) 0.0 in
  Alcotest.(check bool) "mass concentrated at <=2KB" true (mass small > 10.0 *. mass large)

let test_working_set_streaming_residual () =
  (* Streaming a 4MB region with no reuse: accesses assigned to the top bin. *)
  let temps =
    [ Block.temp (Iform.by_name "MOV_GPR64_MEM") ~dst:0 ~srcs:[| 1 |]
        ~mem:(Block.Seq_stride { region = space.Layout.heap; start = 0; stride = 64; span = 1 lsl 22 }) ]
  in
  let b = Block.make ~label:"st" ~code_base:space.Layout.code_base temps in
  let obs, fin = Working_set.observer ~max_log2:22 () in
  Stream.drive ~tier:(tier_of_blocks [ (b, 100) ]) ~requests:4 ~seed:7 [ obs ];
  let t = fin () in
  let top = List.assoc 22 t.Working_set.d_working_sets in
  Alcotest.(check bool) "streaming mass on top bin" true (top > 50.0)

let test_working_set_ratios () =
  let regular =
    Block.temp (Iform.by_name "MOV_GPR64_MEM") ~dst:0 ~srcs:[| 1 |]
      ~mem:(Block.Seq_stride { region = space.Layout.heap; start = 0; stride = 64; span = 1 lsl 20 })
  in
  let irregular =
    Block.temp (Iform.by_name "MOV_GPR64_MEM") ~dst:2 ~srcs:[| 1 |]
      ~mem:(Block.Rand_uniform { region = space.Layout.heap; start = 0; span = 1 lsl 20 })
  in
  let store =
    Block.temp (Iform.by_name "MOV_MEM_GPR64") ~srcs:[| 3 |]
      ~mem:(Block.Fixed_offset { region = space.Layout.shared; offset = 0 })
  in
  let b = Block.make ~label:"rat" ~code_base:space.Layout.code_base [ regular; irregular; store ] in
  let obs, fin = Working_set.observer ~max_log2:22 () in
  Stream.drive ~tier:(tier_of_blocks [ (b, 200) ]) ~requests:2 ~seed:8 [ obs ];
  let t = fin () in
  check_close "half the loads are regular" 0.05 0.5 t.Working_set.regular_ratio;
  check_close "one third writes" 0.01 (1.0 /. 3.0) t.Working_set.write_ratio;
  check_close "one third shared" 0.01 (1.0 /. 3.0) t.Working_set.shared_ratio

(* {1 Branches} *)

let test_branch_quantize () =
  let s = Branches.quantize ~taken:512 ~transitions:64 ~total:1024 in
  Alcotest.(check int) "m=1 for 50%" 1 s.Branches.m;
  Alcotest.(check int) "n=4 for 1/16" 4 s.Branches.n;
  Alcotest.(check bool) "not inverted at 50%" false s.Branches.invert;
  let s2 = Branches.quantize ~taken:1000 ~transitions:8 ~total:1024 in
  Alcotest.(check bool) "mostly taken -> inverted" true s2.Branches.invert

let test_branch_profile_recovers_spec () =
  let b =
    Block.make ~label:"br" ~code_base:space.Layout.code_base
      [ Block.temp (Iform.by_name "JNZ_REL") ~branch:{ Block.m = 3; n = 5; invert = false } ]
  in
  let obs, fin = Branches.observer () in
  Stream.drive ~tier:(tier_of_blocks [ (b, 4096) ]) ~requests:2 ~seed:9 [ obs ];
  let t = fin () in
  Alcotest.(check int) "one static site" 1 t.Branches.static_branches;
  match t.Branches.sites with
  | [ (site, p) ] ->
      Alcotest.(check int) "m recovered" 3 site.Branches.m;
      Alcotest.(check int) "n recovered" 5 site.Branches.n;
      Alcotest.(check (float 1e-9)) "probability 1" 1.0 p
  | _ -> Alcotest.fail "expected a single site bin"

let test_branch_fraction () =
  let b =
    Block.make ~label:"bf" ~code_base:space.Layout.code_base
      [
        Block.temp (Iform.by_name "ADD_GPR64_GPR64") ~dst:0 ~srcs:[| 1 |];
        Block.temp (Iform.by_name "JZ_REL") ~branch:{ Block.m = 2; n = 2; invert = false };
      ]
  in
  let obs, fin = Branches.observer () in
  Stream.drive ~tier:(tier_of_blocks [ (b, 100) ]) ~requests:2 ~seed:10 [ obs ];
  let t = fin () in
  check_close "half the stream branches" 1e-9 0.5 t.Branches.branch_fraction

(* {1 Deps} *)

let test_deps_serial_chain () =
  let b =
    Block.make ~label:"chain" ~code_base:space.Layout.code_base
      [ Block.temp (Iform.by_name "ADD_GPR64_GPR64") ~dst:0 ~srcs:[| 0 |] ]
  in
  let obs, fin = Deps.observer () in
  Stream.drive ~tier:(tier_of_blocks [ (b, 500) ]) ~requests:2 ~seed:11 [ obs ];
  let t = fin () in
  Alcotest.(check bool) "RAW mass at distance 1 (bin 0)" true (t.Deps.raw.(0) > 0.9)

let test_deps_long_distance () =
  let temps =
    List.init 16 (fun i ->
        Block.temp (Iform.by_name "ADD_GPR64_GPR64") ~dst:(Block.gp (i mod 16 mod 12))
          ~srcs:[| Block.gp ((i + 1) mod 12) |])
  in
  let b = Block.make ~label:"ld" ~code_base:space.Layout.code_base temps in
  let obs, fin = Deps.observer () in
  Stream.drive ~tier:(tier_of_blocks [ (b, 100) ]) ~requests:2 ~seed:12 [ obs ];
  let t = fin () in
  Alcotest.(check bool) "long distances dominate" true (t.Deps.raw.(0) < 0.5)

let test_deps_chase_fraction () =
  let b =
    Block.make ~label:"cf" ~code_base:space.Layout.code_base
      [
        Block.temp (Iform.by_name "MOV_GPR64_MEM") ~dst:11 ~srcs:[| 11 |]
          ~mem:(Block.Chase { region = space.Layout.heap; start = 0; span = 1 lsl 20 });
        Block.temp (Iform.by_name "MOV_GPR64_MEM") ~dst:0 ~srcs:[| 1 |]
          ~mem:(Block.Rand_uniform { region = space.Layout.heap; start = 0; span = 1 lsl 20 });
      ]
  in
  let obs, fin = Deps.observer () in
  Stream.drive ~tier:(tier_of_blocks [ (b, 200) ]) ~requests:2 ~seed:13 [ obs ];
  let t = fin () in
  check_close "half the loads chase" 1e-9 0.5 t.Deps.chase_fraction

let test_deps_bins () =
  Alcotest.(check int) "11 bins" 11 Deps.bins;
  Alcotest.(check int) "distance 1 -> bin 0" 0 (Deps.bin_of_distance 1);
  Alcotest.(check int) "distance 1024 -> bin 10" 10 (Deps.bin_of_distance 1024);
  Alcotest.(check int) "clamped" 10 (Deps.bin_of_distance 1_000_000)

(* {1 Syscalls} *)

let test_syscall_profile () =
  let handler rng req =
    [
      Spec.File_read { offset = 4096 * (req mod 100); bytes = 8192; random = true };
      Spec.Syscall Ditto_os.Syscall.Futex_wake;
    ]
    @ if Rng.float rng 1.0 < 0.5 then [ Spec.File_write { bytes = 1000 } ] else []
  in
  let tier = Spec.tier ~name:"s" ~handler () in
  let obs, fin = Syscalls.observer () in
  Stream.drive ~tier ~requests:200 ~seed:14 [ obs ];
  let t = fin () in
  (match t.Syscalls.file with
  | Some f ->
      check_close "reads per request" 1e-9 1.0 f.Syscalls.reads_per_request;
      Alcotest.(check int) "read bytes" 8192 f.Syscalls.read_bytes_mean;
      check_close "random ratio" 1e-9 1.0 f.Syscalls.random_ratio;
      check_close "writes per request" 0.1 0.5 f.Syscalls.writes_per_request;
      Alcotest.(check bool) "span covers offsets" true (f.Syscalls.offset_span >= 99 * 4096)
  | None -> Alcotest.fail "file profile missing");
  let futex =
    List.find
      (fun (k, _) -> Ditto_os.Syscall.name k = "futex_wake")
      t.Syscalls.misc
  in
  check_close "futex count" 1e-9 1.0 (snd futex)

let test_syscall_profile_empty () =
  let tier = Spec.tier ~name:"e" ~handler:(fun _ _ -> []) () in
  let obs, fin = Syscalls.observer () in
  Stream.drive ~tier ~requests:10 ~seed:15 [ obs ];
  let t = fin () in
  Alcotest.(check bool) "no file profile" true (t.Syscalls.file = None);
  Alcotest.(check int) "no misc" 0 (List.length t.Syscalls.misc)

(* {1 Skeleton} *)

let test_skeleton_call_tree () =
  let ops = [ Spec.Call { target = "x"; req_bytes = 1; resp_bytes = 1 } ] in
  let tree = Skeleton.call_tree_of_ops ~skeleton:[ "epoll_wait" ] ops in
  Alcotest.(check int) "root + epoll + rpc(+2 nested)" 5 (Ditto_util.Tree_edit.size tree)

let test_skeleton_detects_models () =
  let mk server =
    Spec.tier ~name:"d" ~server_model:server ~workers:3 ~handler:(fun _ _ -> []) ()
  in
  let d = Skeleton.detect (mk Spec.Io_multiplexing) ~samples:8 ~seed:16 in
  Alcotest.(check bool) "io multiplexing" true (d.Skeleton.server_model = Spec.Io_multiplexing);
  Alcotest.(check int) "workers" 3 d.Skeleton.worker_threads;
  let d2 = Skeleton.detect (mk Spec.Blocking) ~samples:8 ~seed:17 in
  Alcotest.(check bool) "blocking" true (d2.Skeleton.server_model = Spec.Blocking);
  let d3 = Skeleton.detect (mk Spec.Nonblocking) ~samples:8 ~seed:18 in
  Alcotest.(check bool) "nonblocking" true (d3.Skeleton.server_model = Spec.Nonblocking)

let test_skeleton_clusters_workers_and_background () =
  let tier =
    Spec.tier ~name:"bg" ~workers:4
      ~background:[ ("flush", 0.5) ]
      ~background_handler:(fun _ -> [ Spec.File_write { bytes = 100 } ])
      ~handler:(fun _ _ -> [ Spec.Syscall Ditto_os.Syscall.Gettime ])
      ()
  in
  let d = Skeleton.detect tier ~samples:16 ~seed:19 in
  Alcotest.(check int) "two thread classes: workers + timer" 2
    (List.length d.Skeleton.thread_classes);
  Alcotest.(check bool) "one class timer-triggered" true
    (List.exists (fun c -> c.Skeleton.trigger = `Timer) d.Skeleton.thread_classes);
  Alcotest.(check bool) "one class socket-triggered" true
    (List.exists (fun c -> c.Skeleton.trigger = `Socket) d.Skeleton.thread_classes)

(* {1 Tier_profile aggregate} *)

let test_tier_profile_aggregate () =
  let app = Ditto_apps.Redis.spec () in
  let tier = List.hd app.Spec.tiers in
  let p = Tier_profile.profile ~requests:60 ~seed:20 tier in
  Alcotest.(check string) "name" "redis" p.Tier_profile.tier_name;
  Alcotest.(check bool) "insts measured" true (p.Tier_profile.instmix.Instmix.insts_per_request > 100.0);
  Alcotest.(check bool) "branch sites found" true (p.Tier_profile.branches.Branches.static_branches > 10);
  Alcotest.(check bool) "d-mass present" true
    (List.exists (fun (_, a) -> a > 1.0) p.Tier_profile.working_set.Working_set.d_working_sets);
  Alcotest.(check bool) "pp renders" true
    (String.length (Format.asprintf "%a" Tier_profile.pp p) > 50)

let test_tier_profile_background () =
  let app = Ditto_apps.Mongodb.spec () in
  let tier = List.hd app.Spec.tiers in
  let p = Tier_profile.profile ~requests:30 ~seed:21 tier in
  Alcotest.(check bool) "background profiled" true (p.Tier_profile.background <> None)

let () =
  Alcotest.run "profile"
    [
      ( "instmix",
        [
          Alcotest.test_case "counts" `Quick test_instmix_counts;
          Alcotest.test_case "clusters" `Quick test_instmix_clusters_similar_together;
          Alcotest.test_case "rep stats" `Quick test_instmix_rep_stats;
          Alcotest.test_case "sampler" `Quick test_instmix_sampler;
        ] );
      ( "working_set",
        [
          Alcotest.test_case "eq1" `Quick test_eq1_pure;
          Alcotest.test_case "eq1 residual" `Quick test_eq1_residual;
          Alcotest.test_case "eq2" `Quick test_eq2_pure;
          Alcotest.test_case "small loop" `Quick test_working_set_small_loop;
          Alcotest.test_case "streaming residual" `Quick test_working_set_streaming_residual;
          Alcotest.test_case "ratios" `Quick test_working_set_ratios;
        ] );
      ( "branches",
        [
          Alcotest.test_case "quantize" `Quick test_branch_quantize;
          Alcotest.test_case "recovers spec" `Quick test_branch_profile_recovers_spec;
          Alcotest.test_case "fraction" `Quick test_branch_fraction;
        ] );
      ( "deps",
        [
          Alcotest.test_case "serial chain" `Quick test_deps_serial_chain;
          Alcotest.test_case "long distance" `Quick test_deps_long_distance;
          Alcotest.test_case "chase fraction" `Quick test_deps_chase_fraction;
          Alcotest.test_case "bins" `Quick test_deps_bins;
        ] );
      ( "syscalls",
        [
          Alcotest.test_case "profile" `Quick test_syscall_profile;
          Alcotest.test_case "empty" `Quick test_syscall_profile_empty;
        ] );
      ( "skeleton",
        [
          Alcotest.test_case "call tree" `Quick test_skeleton_call_tree;
          Alcotest.test_case "detects models" `Quick test_skeleton_detects_models;
          Alcotest.test_case "clusters threads" `Quick test_skeleton_clusters_workers_and_background;
        ] );
      ( "tier_profile",
        [
          Alcotest.test_case "aggregate" `Quick test_tier_profile_aggregate;
          Alcotest.test_case "background" `Quick test_tier_profile_background;
        ] );
    ]
