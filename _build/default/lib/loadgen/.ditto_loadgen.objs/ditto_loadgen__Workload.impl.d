lib/loadgen/workload.ml: Ditto_app Ditto_util
