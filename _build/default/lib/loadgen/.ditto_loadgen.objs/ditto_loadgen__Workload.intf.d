lib/loadgen/workload.mli: Ditto_app Ditto_util
