(** Network interface with finite transmit bandwidth.

    Transmissions serialise on the link: under saturation (or an iperf-style
    competitor, Fig. 10's "Net" interference) messages queue and latency
    grows. Receive-side bandwidth is accounted but not modelled as a
    separate queue (full duplex). *)

type t

val create : Ditto_sim.Engine.t -> gbps:float -> t

val transmit : t -> bytes:int -> unit
(** Block the calling process for queueing plus serialisation delay. *)

val note_received : t -> bytes:int -> unit
val bytes_sent : t -> int
val bytes_received : t -> int
val reset_stats : t -> unit
val gbps : t -> float
