open Ditto_sim

type endpoint = {
  engine : Engine.t;
  inbox : (int * float) Queue.t;
  mutable watchers : unit Engine.waker list;
  nic : Nic.t;
  latency : float;
  mutable peer : endpoint option;
}

let make engine nic latency =
  { engine; inbox = Queue.create (); watchers = []; nic; latency; peer = None }

let pair engine ~a_nic ~b_nic ~latency =
  let a = make engine a_nic latency and b = make engine b_nic latency in
  a.peer <- Some b;
  b.peer <- Some a;
  (a, b)

let notify_watchers ep =
  let ws = ep.watchers in
  ep.watchers <- [];
  List.iter (fun w -> Engine.wake w ()) ws

let send ep ~bytes =
  match ep.peer with
  | None -> invalid_arg "Socket.send: unconnected"
  | Some peer ->
      Nic.transmit ep.nic ~bytes;
      let deliver_at = Engine.time () +. ep.latency in
      Engine.schedule ep.engine deliver_at (fun () ->
          Nic.note_received peer.nic ~bytes;
          Queue.push (bytes, deliver_at) peer.inbox;
          notify_watchers peer)

let rec recv_timed ep =
  match Queue.take_opt ep.inbox with
  | Some msg -> msg
  | None ->
      Engine.suspend (fun w -> ep.watchers <- w :: ep.watchers);
      recv_timed ep

let recv ep = fst (recv_timed ep)
let try_recv_timed ep = Queue.take_opt ep.inbox
let try_recv ep = Option.map fst (try_recv_timed ep)
let pending ep = Queue.length ep.inbox

module Epoll = struct
  type t = { mutable endpoints : endpoint list; mutable waiters : unit Engine.waker list }

  let create () = { endpoints = []; waiters = [] }

  (* A connection can be added while a worker is already parked in [wait];
     the pending waiters must hear about traffic on the new endpoint (or be
     woken immediately if it is already readable). *)
  let add t ep =
    t.endpoints <- ep :: t.endpoints;
    let live = List.filter (fun w -> not (Engine.is_woken w)) t.waiters in
    t.waiters <- live;
    if Queue.is_empty ep.inbox then ep.watchers <- live @ ep.watchers
    else List.iter (fun w -> Engine.wake w ()) live

  let ready t = List.filter (fun ep -> not (Queue.is_empty ep.inbox)) t.endpoints

  let register t w =
    t.waiters <- w :: List.filter (fun w' -> not (Engine.is_woken w')) t.waiters;
    List.iter (fun ep -> ep.watchers <- w :: ep.watchers) t.endpoints

  let rec wait ?timeout t =
    match ready t with
    | _ :: _ as rs -> rs
    | [] -> (
        match timeout with
        | None ->
            Engine.suspend (fun w -> register t w);
            wait t
        | Some d -> (
            match Engine.suspend_timeout d (fun w -> register t w) with
            | None -> []
            | Some () -> wait ?timeout t))
end
