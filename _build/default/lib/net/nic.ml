open Ditto_sim

type t = {
  gbps : float;
  tx : Engine.Resource.r;
  mutable bytes_sent : int;
  mutable bytes_received : int;
}

let create _engine ~gbps =
  { gbps; tx = Engine.Resource.create 1; bytes_sent = 0; bytes_received = 0 }

(* Ethernet framing overhead: preamble+header+FCS+IFG ~ 38B per 1500B MTU. *)
let wire_time t bytes =
  let frames = max 1 ((bytes + 1459) / 1460) in
  let wire_bytes = bytes + (frames * 78) in
  float_of_int wire_bytes *. 8.0 /. (t.gbps *. 1e9)

let transmit t ~bytes =
  t.bytes_sent <- t.bytes_sent + bytes;
  Engine.Resource.with_resource t.tx (fun () -> Engine.wait (wire_time t bytes))

let note_received t ~bytes = t.bytes_received <- t.bytes_received + bytes
let bytes_sent t = t.bytes_sent
let bytes_received t = t.bytes_received

let reset_stats t =
  t.bytes_sent <- 0;
  t.bytes_received <- 0

let gbps t = t.gbps
