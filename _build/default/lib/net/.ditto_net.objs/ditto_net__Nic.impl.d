lib/net/nic.ml: Ditto_sim Engine
