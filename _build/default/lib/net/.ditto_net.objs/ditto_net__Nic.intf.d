lib/net/nic.mli: Ditto_sim
