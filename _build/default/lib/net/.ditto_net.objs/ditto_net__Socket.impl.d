lib/net/socket.ml: Ditto_sim Engine List Nic Option Queue
