lib/net/socket.mli: Ditto_sim Nic
