(** Bidirectional message sockets with epoll-style readiness.

    Messages carry only sizes (no payload — the clone never ships real
    data). A send serialises through the local NIC, crosses the link
    latency, then lands in the peer's receive queue and wakes any epoll
    waiter — giving the I/O-multiplexing server model of §4.3.1 its real
    blocking structure. *)

type endpoint

val pair :
  Ditto_sim.Engine.t ->
  a_nic:Nic.t ->
  b_nic:Nic.t ->
  latency:float ->
  endpoint * endpoint
(** A connected socket; [latency] is the one-way propagation delay. *)

val send : endpoint -> bytes:int -> unit
(** Blocking send from within a process (NIC queueing + serialisation). *)

val recv : endpoint -> int
(** Blocking receive; returns the message size. *)

val recv_timed : endpoint -> int * float
(** Blocking receive returning (size, delivery time) — the instant the
    message entered the receive queue, for measuring server-side queueing. *)

val try_recv : endpoint -> int option
val try_recv_timed : endpoint -> (int * float) option
val pending : endpoint -> int

(** {1 I/O multiplexing} *)

module Epoll : sig
  type t

  val create : unit -> t
  val add : t -> endpoint -> unit

  val wait : ?timeout:float -> t -> endpoint list
  (** Block until at least one registered endpoint is readable; returns the
      ready endpoints ([] only on timeout). *)
end
