(** Trace collection: sample end-to-end request trees from measured tier
    behaviour, producing the span sets a Jaeger deployment would emit.

    Sampling a bounded number of traces mirrors production practice, where
    "the performance overhead is negligible if the traces are sampled
    properly" (§4.2). *)

val collect :
  entry:string ->
  results:(string -> Ditto_app.Measure.tier_result) ->
  samples:int ->
  seed:int ->
  Span.t list
(** Simulate [samples] end-to-end requests starting at [entry], following
    each tier's measured downstream calls recursively, and emit one span
    per RPC. *)
