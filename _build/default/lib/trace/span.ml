type t = {
  trace_id : int;
  span_id : int;
  parent_span : int option;
  service : string;
  req_bytes : int;
  resp_bytes : int;
}

let root t = t.parent_span = None

let pp fmt t =
  Format.fprintf fmt "[trace %d span %d%s] %s req=%dB resp=%dB" t.trace_id t.span_id
    (match t.parent_span with Some p -> Printf.sprintf " parent %d" p | None -> " root")
    t.service t.req_bytes t.resp_bytes
