lib/trace/dag.mli: Format Span
