lib/trace/collector.mli: Ditto_app Span
