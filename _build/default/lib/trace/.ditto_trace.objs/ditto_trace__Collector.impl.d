lib/trace/collector.ml: Array Ditto_app Ditto_util List Span
