lib/trace/span.mli: Format
