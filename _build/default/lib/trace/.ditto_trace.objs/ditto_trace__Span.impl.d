lib/trace/span.ml: Format Printf
