lib/trace/dag.ml: Format Hashtbl List Option Queue Span String
