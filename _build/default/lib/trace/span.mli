(** Distributed-tracing spans (Jaeger/Dapper-style).

    Each RPC in a request tree produces a span carrying its service, its
    parent span, and message sizes. Ditto only needs the structural and
    statistical content of traces — the topology analyzer never sees
    payloads (§4.2). *)

type t = {
  trace_id : int;
  span_id : int;
  parent_span : int option;  (** [None] for the root span *)
  service : string;
  req_bytes : int;
  resp_bytes : int;
}

val root : t -> bool
val pp : Format.formatter -> t -> unit
