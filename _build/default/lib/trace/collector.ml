let collect ~entry ~results ~samples ~seed =
  let rng = Ditto_util.Rng.create seed in
  let spans = ref [] in
  let next_span = ref 0 in
  let rec visit ~trace_id ~parent ~service ~req_bytes ~resp_bytes ~depth =
    let span_id = !next_span in
    incr next_span;
    spans :=
      {
        Span.trace_id;
        span_id;
        parent_span = parent;
        service;
        req_bytes;
        resp_bytes;
      }
      :: !spans;
    if depth < 16 then begin
      let r : Ditto_app.Measure.tier_result = results service in
      let traces = r.Ditto_app.Measure.traces in
      if Array.length traces > 0 then begin
        let trace = traces.(Ditto_util.Rng.int rng (Array.length traces)) in
        List.iter
          (fun seg ->
            match seg with
            | Ditto_app.Measure.Downstream { target; req_bytes; resp_bytes } ->
                visit ~trace_id ~parent:(Some span_id) ~service:target ~req_bytes
                  ~resp_bytes ~depth:(depth + 1)
            | Ditto_app.Measure.Cpu _ | Ditto_app.Measure.Disk_read _
            | Ditto_app.Measure.Disk_write _ | Ditto_app.Measure.Sleep _ ->
                ())
          trace
      end
    end
  in
  for trace_id = 0 to samples - 1 do
    let r = results entry in
    visit ~trace_id ~parent:None ~service:entry
      ~req_bytes:r.Ditto_app.Measure.tier.Ditto_app.Spec.request_bytes
      ~resp_bytes:r.Ditto_app.Measure.tier.Ditto_app.Spec.response_bytes ~depth:0
  done;
  List.rev !spans
