type t =
  | Int_alu
  | Int_mul
  | Int_div
  | Lea
  | Shift
  | Cmov
  | Float_add
  | Float_mul
  | Float_div
  | Simd_int
  | Simd_float
  | Load
  | Store
  | Branch_cond
  | Branch_uncond
  | Call
  | Ret
  | Crc
  | Lock_rmw
  | Rep_string
  | Nop

let all =
  [
    Int_alu; Int_mul; Int_div; Lea; Shift; Cmov; Float_add; Float_mul; Float_div;
    Simd_int; Simd_float; Load; Store; Branch_cond; Branch_uncond; Call; Ret; Crc;
    Lock_rmw; Rep_string; Nop;
  ]

let to_string = function
  | Int_alu -> "int_alu"
  | Int_mul -> "int_mul"
  | Int_div -> "int_div"
  | Lea -> "lea"
  | Shift -> "shift"
  | Cmov -> "cmov"
  | Float_add -> "float_add"
  | Float_mul -> "float_mul"
  | Float_div -> "float_div"
  | Simd_int -> "simd_int"
  | Simd_float -> "simd_float"
  | Load -> "load"
  | Store -> "store"
  | Branch_cond -> "branch_cond"
  | Branch_uncond -> "branch_uncond"
  | Call -> "call"
  | Ret -> "ret"
  | Crc -> "crc"
  | Lock_rmw -> "lock_rmw"
  | Rep_string -> "rep_string"
  | Nop -> "nop"

let is_memory_read = function
  | Load | Lock_rmw | Rep_string -> true
  | Int_alu | Int_mul | Int_div | Lea | Shift | Cmov | Float_add | Float_mul
  | Float_div | Simd_int | Simd_float | Store | Branch_cond | Branch_uncond | Call
  | Ret | Crc | Nop ->
      false

let is_memory_write = function
  | Store | Lock_rmw | Rep_string -> true
  | Int_alu | Int_mul | Int_div | Lea | Shift | Cmov | Float_add | Float_mul
  | Float_div | Simd_int | Simd_float | Load | Branch_cond | Branch_uncond | Call
  | Ret | Crc | Nop ->
      false

let is_branch = function
  | Branch_cond | Branch_uncond -> true
  | Int_alu | Int_mul | Int_div | Lea | Shift | Cmov | Float_add | Float_mul
  | Float_div | Simd_int | Simd_float | Load | Store | Call | Ret | Crc | Lock_rmw
  | Rep_string | Nop ->
      false

let is_control = function
  | Branch_cond | Branch_uncond | Call | Ret -> true
  | Int_alu | Int_mul | Int_div | Lea | Shift | Cmov | Float_add | Float_mul
  | Float_div | Simd_int | Simd_float | Load | Store | Crc | Lock_rmw | Rep_string
  | Nop ->
      false

type operand_kind = Op_gpr | Op_x87 | Op_xmm | Op_mem | Op_imm | Op_none

let operand_kind_to_string = function
  | Op_gpr -> "gpr"
  | Op_x87 -> "x87"
  | Op_xmm -> "xmm"
  | Op_mem -> "mem"
  | Op_imm -> "imm"
  | Op_none -> "none"
