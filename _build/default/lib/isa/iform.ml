type t = {
  id : int;
  name : string;
  klass : Iclass.t;
  uops : int;
  latency : int;
  ports : int;
  bytes : int;
  mem_width : int;
  operands : Iclass.operand_kind array;
}

(* Port bitmask constants; bit i = execution port i. Skylake-like layout:
   0,1,5,6 integer ALUs; 0,1 FP/SIMD; 1 slow-int (mul/crc); 0 divider;
   2,3 load AGUs; 4 store data; 6 branches. *)
let port_p0 = 0b0000_0001
let port_p1 = 0b0000_0010
let port_p5 = 0b0010_0000
let port_p6 = 0b0100_0000
let port_p06 = port_p0 lor port_p6
let port_p01 = port_p0 lor port_p1
let port_p015 = port_p01 lor port_p5
let port_p0156 = port_p015 lor port_p6
let port_load = 0b0000_1100
let port_store = 0b0001_0000
let port_count = 8

open Iclass

let specs =
  (* name, class, uops, latency, ports, bytes, mem_width, operands *)
  [|
    (* Data movement *)
    ("MOV_GPR64_GPR64", Int_alu, 1, 1, port_p0156, 3, 0, [| Op_gpr; Op_gpr |]);
    ("MOV_GPR64_IMM", Int_alu, 1, 1, port_p0156, 7, 0, [| Op_gpr; Op_imm |]);
    ("MOV_GPR64_MEM", Load, 1, 0, port_load, 4, 8, [| Op_gpr; Op_mem |]);
    ("MOV_GPR32_MEM", Load, 1, 0, port_load, 3, 4, [| Op_gpr; Op_mem |]);
    ("MOV_MEM_GPR64", Store, 1, 1, port_store, 4, 8, [| Op_mem; Op_gpr |]);
    ("MOV_MEM_GPR32", Store, 1, 1, port_store, 3, 4, [| Op_mem; Op_gpr |]);
    ("MOVZX_GPR64_MEM8", Load, 1, 0, port_load, 4, 1, [| Op_gpr; Op_mem |]);
    ("PUSH_GPR64", Store, 1, 1, port_store, 2, 8, [| Op_mem; Op_gpr |]);
    ("POP_GPR64", Load, 1, 0, port_load, 2, 8, [| Op_gpr; Op_mem |]);
    ("LEA_GPR64_AGEN", Lea, 1, 1, port_p015, 4, 0, [| Op_gpr; Op_mem |]);
    ("XCHG_GPR64_GPR64", Int_alu, 3, 2, port_p0156, 3, 0, [| Op_gpr; Op_gpr |]);
    (* Integer arithmetic / logic *)
    ("ADD_GPR64_GPR64", Int_alu, 1, 1, port_p0156, 3, 0, [| Op_gpr; Op_gpr |]);
    ("ADD_GPR64_IMM", Int_alu, 1, 1, port_p0156, 4, 0, [| Op_gpr; Op_imm |]);
    ("ADD_GPR64_MEM", Load, 2, 1, port_load lor port_p0156, 4, 8, [| Op_gpr; Op_mem |]);
    ("SUB_GPR64_GPR64", Int_alu, 1, 1, port_p0156, 3, 0, [| Op_gpr; Op_gpr |]);
    ("SUB_GPR64_MEM", Load, 2, 1, port_load lor port_p0156, 4, 8, [| Op_gpr; Op_mem |]);
    ("AND_GPR64_GPR64", Int_alu, 1, 1, port_p0156, 3, 0, [| Op_gpr; Op_gpr |]);
    ("OR_GPR64_GPR64", Int_alu, 1, 1, port_p0156, 3, 0, [| Op_gpr; Op_gpr |]);
    ("XOR_GPR64_GPR64", Int_alu, 1, 1, port_p0156, 3, 0, [| Op_gpr; Op_gpr |]);
    ("CMP_GPR64_GPR64", Int_alu, 1, 1, port_p0156, 3, 0, [| Op_gpr; Op_gpr |]);
    ("CMP_GPR64_IMM", Int_alu, 1, 1, port_p0156, 4, 0, [| Op_gpr; Op_imm |]);
    ("TEST_GPR64_IMM", Int_alu, 1, 1, port_p0156, 7, 0, [| Op_gpr; Op_imm |]);
    ("INC_GPR64", Int_alu, 1, 1, port_p0156, 3, 0, [| Op_gpr |]);
    ("IMUL_GPR64_GPR64", Int_mul, 1, 3, port_p1, 4, 0, [| Op_gpr; Op_gpr |]);
    ("IMUL_GPR64_MEM", Int_mul, 2, 3, port_p1 lor port_load, 4, 8, [| Op_gpr; Op_mem |]);
    ("MUL_MEM64", Int_mul, 3, 4, port_p1 lor port_load, 4, 8, [| Op_gpr; Op_mem |]);
    ("IDIV_GPR64", Int_div, 10, 26, port_p0, 3, 0, [| Op_gpr; Op_gpr |]);
    ("SHL_GPR64_IMM", Shift, 1, 1, port_p06, 4, 0, [| Op_gpr; Op_imm |]);
    ("SHR_GPR64_CL", Shift, 2, 2, port_p06, 3, 0, [| Op_gpr; Op_gpr |]);
    ("ROL_GPR64_IMM", Shift, 1, 1, port_p06, 4, 0, [| Op_gpr; Op_imm |]);
    ("CMOVZ_GPR64_GPR64", Cmov, 1, 1, port_p06, 4, 0, [| Op_gpr; Op_gpr |]);
    ("CRC32_GPR64_GPR64", Crc, 1, 3, port_p1, 5, 0, [| Op_gpr; Op_gpr |]);
    ("POPCNT_GPR64_GPR64", Crc, 1, 3, port_p1, 5, 0, [| Op_gpr; Op_gpr |]);
    (* Floating point (scalar SSE) *)
    ("ADDSD_XMM_XMM", Float_add, 1, 4, port_p01, 4, 0, [| Op_xmm; Op_xmm |]);
    ("SUBSD_XMM_XMM", Float_add, 1, 4, port_p01, 4, 0, [| Op_xmm; Op_xmm |]);
    ("MULSD_XMM_XMM", Float_mul, 1, 4, port_p01, 4, 0, [| Op_xmm; Op_xmm |]);
    ("DIVSD_XMM_XMM", Float_div, 1, 14, port_p0, 4, 0, [| Op_xmm; Op_xmm |]);
    ("SQRTSD_XMM_XMM", Float_div, 1, 18, port_p0, 4, 0, [| Op_xmm; Op_xmm |]);
    ("CVTSI2SD_XMM_GPR64", Float_add, 2, 6, port_p01, 5, 0, [| Op_xmm; Op_gpr |]);
    (* SIMD integer / float *)
    ("PADDD_XMM_XMM", Simd_int, 1, 1, port_p015, 4, 0, [| Op_xmm; Op_xmm |]);
    ("PAND_XMM_XMM", Simd_int, 1, 1, port_p015, 4, 0, [| Op_xmm; Op_xmm |]);
    ("PCMPEQB_XMM_XMM", Simd_int, 1, 1, port_p015, 4, 0, [| Op_xmm; Op_xmm |]);
    ("PMULLD_XMM_XMM", Simd_int, 2, 10, port_p01, 5, 0, [| Op_xmm; Op_xmm |]);
    ("PSHUFB_XMM_XMM", Simd_int, 1, 1, port_p5, 5, 0, [| Op_xmm; Op_xmm |]);
    ("ADDPS_XMM_XMM", Simd_float, 1, 4, port_p01, 4, 0, [| Op_xmm; Op_xmm |]);
    ("MULPS_XMM_XMM", Simd_float, 1, 4, port_p01, 4, 0, [| Op_xmm; Op_xmm |]);
    ("MOVDQU_XMM_MEM", Load, 1, 0, port_load, 5, 16, [| Op_xmm; Op_mem |]);
    ("MOVDQU_MEM_XMM", Store, 1, 1, port_store, 5, 16, [| Op_mem; Op_xmm |]);
    (* Control flow *)
    ("JZ_REL", Branch_cond, 1, 1, port_p6, 2, 0, [| Op_imm |]);
    ("JNZ_REL", Branch_cond, 1, 1, port_p6, 2, 0, [| Op_imm |]);
    ("JL_REL", Branch_cond, 1, 1, port_p6, 2, 0, [| Op_imm |]);
    ("JMP_REL", Branch_uncond, 1, 1, port_p6, 2, 0, [| Op_imm |]);
    ("CALL_REL", Call, 2, 2, port_p6 lor port_store, 5, 8, [| Op_imm |]);
    ("RET_NEAR", Ret, 2, 2, port_p6 lor port_load, 1, 8, [| Op_none |]);
    (* Atomics and string ops *)
    ("LOCK_ADD_MEM_GPR64", Lock_rmw, 8, 20, port_p0156 lor port_load lor port_store, 5, 8,
     [| Op_mem; Op_gpr |]);
    ("LOCK_CMPXCHG_MEM_GPR64", Lock_rmw, 10, 22, port_p0156 lor port_load lor port_store, 6, 8,
     [| Op_mem; Op_gpr |]);
    ("XADD_LOCK_MEM_GPR64", Lock_rmw, 9, 21, port_p0156 lor port_load lor port_store, 5, 8,
     [| Op_mem; Op_gpr |]);
    ("REP_MOVSB", Rep_string, 2, 3, port_load lor port_store lor port_p0156, 2, 16,
     [| Op_mem; Op_mem |]);
    ("REP_STOSB", Rep_string, 2, 3, port_store lor port_p0156, 2, 16, [| Op_mem; Op_imm |]);
    (* Misc *)
    ("NOP", Nop, 1, 0, port_p0156, 1, 0, [| Op_none |]);
    ("PAUSE", Nop, 4, 10, port_p0156, 2, 0, [| Op_none |]);
  |]

let catalog =
  Array.mapi
    (fun id (name, klass, uops, latency, ports, bytes, mem_width, operands) ->
      { id; name; klass; uops; latency; ports; bytes; mem_width; operands })
    specs

let count = Array.length catalog

let name_index =
  let tbl = Hashtbl.create 64 in
  Array.iter (fun f -> Hashtbl.add tbl f.name f) catalog;
  tbl

let by_name n = match Hashtbl.find_opt name_index n with Some f -> f | None -> raise Not_found
let of_id i = catalog.(i)

(* Feature vector: one-hot over five paper-level functionality groups,
   operand-kind indicators, port-usage indicators, plus scaled latency and
   uop count. *)
let functionality_group f =
  match f.klass with
  | Load | Store | Lea | Nop -> 0 (* data movement *)
  | Int_alu | Int_mul | Int_div | Shift | Cmov | Float_add | Float_mul | Float_div
  | Simd_int | Simd_float | Crc ->
      1 (* arithmetic/logic *)
  | Branch_cond | Branch_uncond | Call | Ret -> 2 (* control flow *)
  | Lock_rmw -> 3
  | Rep_string -> 4

let features f =
  let v = Array.make 18 0.0 in
  v.(functionality_group f) <- 1.0;
  let has kind = Array.exists (fun o -> o = kind) f.operands in
  if has Iclass.Op_gpr then v.(5) <- 1.0;
  if has Iclass.Op_x87 then v.(6) <- 1.0;
  if has Iclass.Op_xmm then v.(7) <- 1.0;
  if has Iclass.Op_mem then v.(8) <- 1.0;
  for p = 0 to port_count - 1 do
    if f.ports land (1 lsl p) <> 0 then v.(9 + p) <- 0.5
  done;
  v.(17) <- Float.min 2.0 (float_of_int f.latency /. 10.0);
  v

let feature_distance a b =
  let fa = features a and fb = features b in
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. ((x -. fb.(i)) ** 2.0)) fa;
  sqrt !acc

let filter_class pred = Array.to_list catalog |> List.filter (fun f -> pred f.klass)
let loads = filter_class (fun k -> k = Load)
let stores = filter_class (fun k -> k = Store)
let branches = filter_class Iclass.is_branch

let simple_int =
  Array.to_list catalog
  |> List.filter (fun f -> f.klass = Int_alu && f.mem_width = 0 && f.uops = 1)
