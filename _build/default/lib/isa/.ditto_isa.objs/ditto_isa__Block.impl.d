lib/isa/block.ml: Array Ditto_util Iform
