lib/isa/iform.mli: Iclass
