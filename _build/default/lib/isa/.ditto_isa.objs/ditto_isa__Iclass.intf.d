lib/isa/iclass.mli:
