lib/isa/iclass.ml:
