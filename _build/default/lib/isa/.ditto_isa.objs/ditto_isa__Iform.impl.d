lib/isa/iform.ml: Array Float Hashtbl Iclass List
