lib/isa/block.mli: Ditto_util Iform
