(** Instruction forms (iforms): concrete instructions with static operand
    signatures, in the spirit of Intel XED iforms which Ditto counts with
    Intel SDE (§4.4.2). Each iform carries the microarchitectural facts the
    core model needs — uop count, execution latency, legal execution ports,
    memory width — loosely following the Skylake numbers from uops.info /
    Agner Fog that the paper cites. *)

type t = {
  id : int;  (** dense index into [catalog] *)
  name : string;  (** e.g. ["ADD_GPR64_GPR64"] *)
  klass : Iclass.t;
  uops : int;
  latency : int;  (** execution latency in cycles, excluding memory *)
  ports : int;  (** bitmask over execution ports 0..7 *)
  bytes : int;  (** encoded length, drives i-footprint *)
  mem_width : int;  (** bytes read/written per access; 0 if no memory op *)
  operands : Iclass.operand_kind array;
}

val catalog : t array
(** All iforms, indexed by [id]. *)

val count : int
val by_name : string -> t
(** Raises [Not_found] for unknown names. *)

val of_id : int -> t

(** {1 Port masks} (exposed for the core model and tests) *)

val port_p0 : int
val port_p1 : int
val port_p5 : int
val port_p6 : int
val port_p06 : int
val port_p01 : int
val port_p015 : int
val port_p0156 : int
val port_load : int
(** AGU/load ports 2,3. *)

val port_store : int
(** Store-data port 4. *)

val port_count : int
(** Number of distinct ports modelled (8). *)

(** {1 Feature vectors for clustering (§4.4.2)} *)

val features : t -> float array
(** Numeric feature vector combining functionality category, operand kinds
    and ALU/port usage, used by hierarchical clustering so that each cluster
    has similar hardware resource requirements. *)

val feature_distance : t -> t -> float
(** Euclidean distance between feature vectors. *)

(** {1 Convenient groups} *)

val loads : t list
val stores : t list
val branches : t list
val simple_int : t list
(** Plain GPR ALU iforms with no memory operand. *)
