(** Functional classes of instructions.

    Mirrors the categorisation Ditto derives when it clusters x86 iforms
    "by functionality (data movement, arithmetic/logic, control-flow,
    lock-prefixed, and repeat string operations), operands, and ALU usage"
    (§4.4.2). *)

type t =
  | Int_alu  (** add/sub/and/or/xor/cmp/test on GPRs *)
  | Int_mul
  | Int_div
  | Lea
  | Shift
  | Cmov
  | Float_add
  | Float_mul
  | Float_div
  | Simd_int
  | Simd_float
  | Load
  | Store
  | Branch_cond
  | Branch_uncond
  | Call
  | Ret
  | Crc  (** checksum-style single-port instructions (CRC32) *)
  | Lock_rmw  (** LOCK-prefixed read-modify-write *)
  | Rep_string  (** REP MOVS/STOS — cost scales with repeat count *)
  | Nop

val all : t list
val to_string : t -> string

val is_memory_read : t -> bool
(** Classes whose execution reads memory ([Load], [Lock_rmw], [Rep_string]). *)

val is_memory_write : t -> bool
val is_branch : t -> bool
val is_control : t -> bool
(** Branches plus call/ret. *)

(** Coarse operand category used in iform feature vectors. *)
type operand_kind = Op_gpr | Op_x87 | Op_xmm | Op_mem | Op_imm | Op_none

val operand_kind_to_string : operand_kind -> string
