lib/sim/engine.ml: Array Effect Float List Queue
