lib/sim/engine.mli:
