(** Block-device models: SSD and HDD service times with request queueing.

    MongoDB's latency advantage on platform A comes from "the low random
    access latency of SSDs" (§6.2.2); the two device models reproduce that
    gap: HDDs pay a multi-millisecond seek on random access and serialise on
    a single actuator, SSDs serve requests in tens of microseconds across
    multiple channels. *)

type t

val create : Ditto_sim.Engine.t -> Ditto_uarch.Platform.disk_kind -> t

val read : t -> bytes:int -> random:bool -> unit
(** Blocking read from within a process: queues on the device, waits the
    service time. [random] selects seek-dominated vs sequential service. *)

val write : t -> bytes:int -> unit
(** Blocking write (writes are buffered: sequential-ish service). *)

val service_time : t -> bytes:int -> random:bool -> float
(** The raw service time model without queueing (exposed for tests). *)

val bytes_read : t -> int
val bytes_written : t -> int
val reset_stats : t -> unit
